package steward

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
	"lonviz/internal/lbone"
	"lonviz/internal/lors"
)

// rig is a small depot farm whose depots share one skewable clock, so
// tests can march leases toward expiry without sleeping.
type rig struct {
	addrs   []string
	servers []*ibp.Server
	skew    atomic.Int64 // nanoseconds added to real time
}

func (r *rig) now() time.Time { return time.Now().Add(time.Duration(r.skew.Load())) }

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{}
	for i := 0; i < n; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 22, MaxLease: time.Hour, Clock: r.now})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		r.addrs = append(r.addrs, addr)
		r.servers = append(r.servers, srv)
	}
	return r
}

func testPayload(n int, seed int64) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

// fixedLocator returns the given depots, honoring the exclusion set.
func fixedLocator(addrs ...string) LocateFunc {
	return func(_ context.Context, n int, _ int64, exclude map[string]bool) ([]string, error) {
		var out []string
		for _, a := range addrs {
			if !exclude[a] {
				out = append(out, a)
			}
		}
		if n > 0 && len(out) > n {
			out = out[:n]
		}
		return out, nil
	}
}

// eventLog collects steward events thread-safely.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) record(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) count(t EventType) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Type == t {
			n++
		}
	}
	return n
}

func TestStewardRenewsExpiringLeases(t *testing.T) {
	r := newRig(t, 2)
	data := testPayload(96*1024, 1)
	ex, err := lors.Upload(context.Background(), "obj", data, lors.UploadOptions{
		Depots: r.addrs, Replicas: 2, StripeSize: 32 * 1024, Lease: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	var log eventLog
	s := New(Config{
		ReplicationTarget: 2,
		RenewalWindow:     5 * time.Minute,
		LeaseTerm:         30 * time.Minute,
		VerifyPerCycle:    -1,
		Clock:             r.now,
		OnEvent:           log.record,
	})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}

	// Everything fresh: nothing should be renewed or repaired.
	rep, err := s.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeasesRenewed != 0 || rep.RepairsAttempted != 0 || rep.Dead != 0 {
		t.Fatalf("fresh cycle did work: %+v", rep)
	}
	if !rep.FullyReplicated {
		t.Fatalf("fresh cycle not fully replicated: %+v", rep)
	}

	// 7 minutes later the 10m leases fall inside the 5m renewal window.
	r.skew.Store(int64(7 * time.Minute))
	rep, err = s.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantReplicas := 0
	for _, x := range ex.Extents {
		wantReplicas += len(x.Replicas)
	}
	if rep.LeasesRenewed != wantReplicas {
		t.Fatalf("renewed %d leases, want %d (report %+v)", rep.LeasesRenewed, wantReplicas, rep)
	}
	if got := log.count(EventRenew); got != wantReplicas {
		t.Errorf("renew events = %d, want %d", got, wantReplicas)
	}

	// The steward's copy must record the new expiries: all beyond the
	// original 10m horizon.
	cur := s.ExNode("obj")
	horizon := cur.LeaseHorizon()
	if !horizon.After(time.Now().Add(15 * time.Minute)) {
		t.Errorf("lease horizon %v not pushed out by renewal", horizon)
	}

	// 11 minutes in, the original leases would be dead; renewed ones live.
	r.skew.Store(int64(11 * time.Minute))
	got, _, err := lors.Download(context.Background(), cur, lors.DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("post-renewal download mismatch")
	}

	st := s.Stats()
	if st.Cycles != 2 || st.LeasesRenewed != int64(wantReplicas) || st.RenewFailures != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStewardRepairsUnderReplication(t *testing.T) {
	r := newRig(t, 3)
	data := testPayload(96*1024, 2)
	// Stripes round-robin over the first two depots; the third is spare.
	ex, err := lors.Upload(context.Background(), "obj", data, lors.UploadOptions{
		Depots: r.addrs[:2], Replicas: 2, StripeSize: 32 * 1024, Lease: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	numExtents := len(ex.Extents)

	var log eventLog
	published := make(map[string]*exnode.ExNode)
	var pubMu sync.Mutex
	s := New(Config{
		ReplicationTarget: 2,
		LeaseTerm:         30 * time.Minute,
		PruneAfter:        1,
		VerifyPerCycle:    -1,
		Locate:            fixedLocator(r.addrs...),
		Publish: func(_ context.Context, name string, ex *exnode.ExNode) error {
			pubMu.Lock()
			published[name] = ex
			pubMu.Unlock()
			return nil
		},
		OnEvent: log.record,
	})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}

	// Kill depot 0: every extent drops to one replica.
	dead := r.addrs[0]
	r.servers[0].Close()

	rep, err := s.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicasPruned != numExtents {
		t.Errorf("pruned %d, want %d", rep.ReplicasPruned, numExtents)
	}
	if rep.RepairsSucceeded != numExtents {
		t.Errorf("repaired %d, want %d (report %+v)", rep.RepairsSucceeded, numExtents, rep)
	}

	cur := s.ExNode("obj")
	if got := cur.ReplicationFactor(); got != 2 {
		t.Errorf("replication factor = %d, want 2", got)
	}
	for _, d := range cur.Depots() {
		if d == dead {
			t.Errorf("dead depot %s still referenced", dead)
		}
	}
	if err := cur.Validate(); err != nil {
		t.Error(err)
	}

	// The repaired layout must have been republished and be downloadable.
	pubMu.Lock()
	pubEx := published["obj"]
	pubMu.Unlock()
	if pubEx == nil {
		t.Fatal("repaired exNode was not republished")
	}
	got, _, err := lors.Download(context.Background(), pubEx, lors.DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("post-repair download mismatch")
	}

	if log.count(EventRepair) != numExtents || log.count(EventPrune) != numExtents {
		t.Errorf("events: repair=%d prune=%d, want %d each",
			log.count(EventRepair), log.count(EventPrune), numExtents)
	}

	// Next cycle: healthy steady state, nothing to do.
	rep, err = s.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullyReplicated || rep.RepairsAttempted != 0 || rep.ReplicasPruned != 0 {
		t.Errorf("steady-state cycle did work: %+v", rep)
	}
}

func TestStewardPruneGracePeriod(t *testing.T) {
	r := newRig(t, 2)
	data := testPayload(16*1024, 3)
	ex, err := lors.Upload(context.Background(), "obj", data, lors.UploadOptions{
		Depots: r.addrs, Replicas: 2, Lease: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{
		ReplicationTarget: 2,
		PruneAfter:        2,
		VerifyPerCycle:    -1,
		// No locator: repair disabled, isolating the prune policy.
	})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}
	r.servers[0].Close()

	// First cycle: unreachable but within grace — still referenced.
	rep, err := s.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicasPruned != 0 || rep.Dead != 0 {
		t.Fatalf("first unreachable cycle pruned: %+v", rep)
	}
	if len(s.ExNode("obj").Depots()) != 2 {
		t.Fatal("replica dropped during grace period")
	}

	// Second consecutive unreachable cycle: now it is dead and pruned.
	rep, err = s.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicasPruned != len(ex.Extents) {
		t.Errorf("pruned %d, want %d", rep.ReplicasPruned, len(ex.Extents))
	}
	if rep.RepairsAttempted != 0 {
		t.Errorf("repairs attempted with nil locator: %+v", rep)
	}
	cur := s.ExNode("obj")
	if got := cur.ReplicationFactor(); got != 1 {
		t.Errorf("replication factor = %d, want 1", got)
	}
}

func TestStewardVerifyCatchesCorruption(t *testing.T) {
	r := newRig(t, 3)
	good := testPayload(8*1024, 4)
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff

	// Handcraft a 2-replica extent where the first replica's depot holds
	// corrupted bytes: only payload sampling can tell, since probes and
	// leases are all healthy.
	ctx := context.Background()
	store := func(addr string, payload []byte) exnode.Replica {
		t.Helper()
		cl := &ibp.Client{Addr: addr}
		caps, err := cl.Allocate(ctx, int64(len(payload)), time.Hour, ibp.Stable)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Store(ctx, caps.Write, 0, payload); err != nil {
			t.Fatal(err)
		}
		return exnode.Replica{Depot: addr, ReadCap: caps.Read, ManageCap: caps.Manage}
	}
	ex := &exnode.ExNode{
		Name:   "obj",
		Length: int64(len(good)),
		Extents: []exnode.Extent{{
			Offset:   0,
			Length:   int64(len(good)),
			Checksum: exnode.ChecksumOf(good),
			Replicas: []exnode.Replica{store(r.addrs[0], bad), store(r.addrs[1], good)},
		}},
	}

	var log eventLog
	s := New(Config{
		ReplicationTarget: 2,
		VerifyPerCycle:    1,
		// Offer only the spare depot, so the repair demonstrably moves the
		// data off the corrupt allocation's depot.
		Locate:  fixedLocator(r.addrs[2]),
		OnEvent: log.record,
	})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}

	rep, err := s.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.VerifyFailures != 1 {
		t.Fatalf("verify failures = %d, want 1 (report %+v)", st.VerifyFailures, rep)
	}
	if rep.ReplicasPruned != 1 || rep.RepairsSucceeded != 1 {
		t.Fatalf("corrupt replica not replaced: %+v", rep)
	}
	cur := s.ExNode("obj")
	for _, d := range cur.Depots() {
		if d == r.addrs[0] {
			t.Error("corrupt replica still referenced")
		}
	}
	got, _, err := lors.Download(context.Background(), cur, lors.DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, good) {
		t.Error("post-repair download mismatch")
	}
	if log.count(EventVerifyFailed) != 1 {
		t.Errorf("verify-failed events = %d, want 1", log.count(EventVerifyFailed))
	}
}

func TestStewardNeverPrunesLastReplica(t *testing.T) {
	r := newRig(t, 1)
	data := testPayload(4*1024, 5)
	ex, err := lors.Upload(context.Background(), "obj", data, lors.UploadOptions{
		Depots: r.addrs, Lease: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	var log eventLog
	s := New(Config{
		ReplicationTarget: 1,
		PruneAfter:        1,
		VerifyPerCycle:    -1,
		OnEvent:           log.record,
	})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}
	r.servers[0].Close()

	rep, err := s.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicasPruned != 0 {
		t.Errorf("pruned the last replica: %+v", rep)
	}
	if got := s.Stats().ExtentsLost; got != int64(len(ex.Extents)) {
		t.Errorf("extents lost = %d, want %d", got, len(ex.Extents))
	}
	if log.count(EventExtentLost) != len(ex.Extents) {
		t.Errorf("extent-lost events = %d", log.count(EventExtentLost))
	}
	// The stale replica is kept as the forensic trail.
	if len(s.ExNode("obj").Extents[0].Replicas) != 1 {
		t.Error("lost extent's replica list was emptied")
	}
}

func TestStewardRepairBudget(t *testing.T) {
	r := newRig(t, 3)
	data := testPayload(128*1024, 6)
	ex, err := lors.Upload(context.Background(), "obj", data, lors.UploadOptions{
		Depots: r.addrs[:2], Replicas: 2, StripeSize: 32 * 1024, Lease: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	numExtents := len(ex.Extents)
	if numExtents < 4 {
		t.Fatalf("want >= 4 extents, got %d", numExtents)
	}

	s := New(Config{
		ReplicationTarget: 2,
		PruneAfter:        1,
		RepairBudget:      2, // less than the damage
		VerifyPerCycle:    -1,
		Locate:            fixedLocator(r.addrs...),
	})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}
	r.servers[0].Close()

	rep, err := s.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairsSucceeded != 2 {
		t.Errorf("first cycle repaired %d, want budget-capped 2", rep.RepairsSucceeded)
	}

	// Subsequent cycles finish the job within a few budgets.
	for i := 0; i < 3 && s.ExNode("obj").ReplicationFactor() < 2; i++ {
		if _, err := s.RunCycle(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ExNode("obj").ReplicationFactor(); got != 2 {
		t.Errorf("replication factor = %d after budgeted repairs, want 2", got)
	}
}

func TestStewardAdoptValidatesAndForget(t *testing.T) {
	s := New(Config{})
	if err := s.Adopt("", &exnode.ExNode{}); err == nil {
		t.Error("empty name accepted")
	}
	broken := &exnode.ExNode{Name: "x", Length: 10} // no extents
	if err := s.Adopt("x", broken); err == nil {
		t.Error("invalid exNode accepted")
	}
	ok := &exnode.ExNode{Name: "x"}
	if err := s.Adopt("x", ok); err != nil {
		t.Fatal(err)
	}
	if got := s.Objects(); len(got) != 1 || got[0] != "x" {
		t.Errorf("objects = %v", got)
	}
	// The steward holds a private copy.
	ok.Name = "mutated"
	if s.ExNode("x").Name != "x" {
		t.Error("Adopt did not deep-copy")
	}
	s.Forget("x")
	if len(s.Objects()) != 0 || s.ExNode("x") != nil {
		t.Error("Forget left state behind")
	}
}

func TestLBoneLocator(t *testing.T) {
	dir := lbone.NewServer()
	addr, err := dir.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	for i, a := range []string{"d0:1", "d1:1", "d2:1"} {
		if err := dir.Register(lbone.DepotRecord{Addr: a, X: float64(i), Capacity: 100, Free: 50}); err != nil {
			t.Fatal(err)
		}
	}
	loc := LBoneLocator(&lbone.Client{BaseURL: "http://" + addr}, 0, 0)
	got, err := loc(context.Background(), 2, 10, map[string]bool{"d0:1": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "d1:1" || got[1] != "d2:1" {
		t.Errorf("locator returned %v", got)
	}
	// minFree beyond every depot's free space yields nothing.
	got, err = loc(context.Background(), 2, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("locator ignored minFree: %v", got)
	}
}

func TestStewardRunLoop(t *testing.T) {
	r := newRig(t, 2)
	data := testPayload(8*1024, 7)
	ex, err := lors.Upload(context.Background(), "obj", data, lors.UploadOptions{
		Depots: r.addrs, Replicas: 2, Lease: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{ScanInterval: 5 * time.Millisecond, VerifyPerCycle: -1})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Cycles < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Errorf("Run returned %v", err)
	}
	if got := s.Stats().Cycles; got < 2 {
		t.Errorf("run loop completed %d cycles", got)
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Type: EventRepairFailed, Object: "o", Offset: 64, Depot: "d:1", Err: fmt.Errorf("boom")}
	want := "repair-failed o@64 depot=d:1 err=boom"
	if got := ev.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
