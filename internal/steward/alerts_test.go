package steward

import (
	"bytes"
	"context"
	"testing"
	"time"

	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
	"lonviz/internal/lors"
	"lonviz/internal/obs/slo"
)

// corruptOneReplica handcrafts a 2-replica extent whose replica on badAddr
// holds flipped bytes, so only payload verification can find the damage.
func corruptOneReplica(t *testing.T, goodAddr, badAddr string) (*exnode.ExNode, []byte) {
	t.Helper()
	good := testPayload(8*1024, 7)
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	ctx := context.Background()
	store := func(addr string, payload []byte) exnode.Replica {
		t.Helper()
		cl := &ibp.Client{Addr: addr}
		caps, err := cl.Allocate(ctx, int64(len(payload)), time.Hour, ibp.Stable)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Store(ctx, caps.Write, 0, payload); err != nil {
			t.Fatal(err)
		}
		return exnode.Replica{Depot: addr, ReadCap: caps.Read, ManageCap: caps.Manage}
	}
	ex := &exnode.ExNode{
		Name:   "obj",
		Length: int64(len(good)),
		Extents: []exnode.Extent{{
			Offset:   0,
			Length:   int64(len(good)),
			Checksum: exnode.ChecksumOf(good),
			Replicas: []exnode.Replica{store(badAddr, bad), store(goodAddr, good)},
		}},
	}
	return ex, good
}

// TestAuditDepotVerifiesSuspectReplicas proves a targeted audit payload-
// verifies the suspect depot's replicas even with per-cycle verification
// off, and repairs what it finds.
func TestAuditDepotVerifiesSuspectReplicas(t *testing.T) {
	r := newRig(t, 3)
	ex, good := corruptOneReplica(t, r.addrs[1], r.addrs[0])

	s := New(Config{
		ReplicationTarget: 2,
		VerifyPerCycle:    -1, // periodic cycles never sample payloads
		Locate:            fixedLocator(r.addrs[2]),
	})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}

	// A periodic cycle sees healthy probes and leaves the corruption alone.
	if _, err := s.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.VerifyFailures != 0 {
		t.Fatalf("periodic cycle verified payloads with VerifyPerCycle=0: %+v", st)
	}

	// The targeted audit of the suspect depot must verify and repair.
	rep, err := s.AuditDepot(context.Background(), r.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicasPruned != 1 || rep.RepairsSucceeded != 1 {
		t.Fatalf("targeted audit report = %+v, want 1 prune + 1 repair", rep)
	}
	st := s.Stats()
	if st.AlertAudits != 1 {
		t.Errorf("AlertAudits = %d, want 1", st.AlertAudits)
	}
	if st.VerifyFailures != 1 {
		t.Errorf("VerifyFailures = %d, want 1", st.VerifyFailures)
	}
	cur := s.ExNode("obj")
	for _, d := range cur.Depots() {
		if d == r.addrs[0] {
			t.Error("suspect depot still referenced after targeted audit")
		}
	}
	got, _, err := lors.Download(context.Background(), cur, lors.DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, good) {
		t.Error("post-audit download mismatch")
	}
}

// TestAuditDepotSkipsUninvolvedObjects proves the targeted audit only
// touches objects with a replica on the suspect depot.
func TestAuditDepotSkipsUninvolvedObjects(t *testing.T) {
	r := newRig(t, 2)
	data := testPayload(4*1024, 8)
	ex, err := lors.Upload(context.Background(), "obj", data, lors.UploadOptions{
		Depots: []string{r.addrs[0]}, Lease: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{ReplicationTarget: 1})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}
	rep, err := s.AuditDepot(context.Background(), r.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExtentsAudited != 0 {
		t.Errorf("audit of uninvolved depot touched %d extents, want 0", rep.ExtentsAudited)
	}
}

// TestAlertTriggerRunsAuditBeforePeriodicCycle wires the slo->steward
// bridge: a firing depot alert must cause a targeted audit long before
// the scan interval would.
func TestAlertTriggerRunsAuditBeforePeriodicCycle(t *testing.T) {
	r := newRig(t, 3)
	ex, _ := corruptOneReplica(t, r.addrs[1], r.addrs[0])

	s := New(Config{
		ReplicationTarget: 2,
		ScanInterval:      time.Hour, // the periodic cycle never arrives
		VerifyPerCycle:    -1,
		Locate:            fixedLocator(r.addrs[2]),
	})
	if err := s.Adopt("obj", ex); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	trigger := AlertTrigger(s)
	// Non-firing states and alerts without a depot label are ignored.
	trigger(slo.Alert{Rule: "x", State: slo.StatePending, Labels: map[string]string{"depot": r.addrs[0]}})
	trigger(slo.Alert{Rule: "x", State: slo.StateResolved, Labels: map[string]string{"depot": r.addrs[0]}})
	trigger(slo.Alert{Rule: "x", State: slo.StateFiring, Severity: "warn"})
	if st := s.Stats(); st.AlertAudits != 0 {
		t.Fatalf("ignored alerts ran %d audits", st.AlertAudits)
	}

	// The real thing: firing with a depot label.
	trigger(slo.Alert{
		Rule:     "depot-latency-p99",
		Severity: "critical",
		State:    slo.StateFiring,
		Instance: "ibp.depot.ms{depot=" + r.addrs[0] + "}",
		Labels:   map[string]string{"depot": r.addrs[0]},
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.AlertAudits >= 1 {
			if st.RepairsSucceeded < 1 || st.ReplicasPruned < 1 {
				t.Fatalf("alert audit ran but did not repair: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alert-triggered audit never ran: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatalf("Run: %v", err)
	}
}
