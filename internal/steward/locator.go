package steward

import (
	"context"

	"lonviz/internal/lbone"
)

// LBoneLocator adapts an L-Bone directory client into a LocateFunc: repair
// candidates are the nearest live depots to (x, y) with enough free space,
// excluding depots that already hold a replica. This is the standard
// locator for production stewards; tests usually supply a closure over a
// fixed depot list instead.
func LBoneLocator(cl *lbone.Client, x, y float64) LocateFunc {
	return func(ctx context.Context, n int, minFree int64, exclude map[string]bool) ([]string, error) {
		ex := make([]string, 0, len(exclude))
		for addr := range exclude {
			ex = append(ex, addr)
		}
		recs, err := cl.LookupExcluding(ctx, x, y, n, minFree, ex)
		if err != nil {
			return nil, err
		}
		out := make([]string, 0, len(recs))
		for _, r := range recs {
			out = append(out, r.Addr)
		}
		return out, nil
	}
}
