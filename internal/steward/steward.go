// Package steward implements the maintenance layer the LoN substrate
// demands: IBP allocations are best-effort, time-limited leases on
// storage, so a published light-field database decays toward
// unreadability unless something renews its leases and re-replicates the
// extents that depots lose. The Steward adopts exNodes and keeps them
// healthy with a scan cycle modelled on the real LoRS maintenance tools:
//
//	audit   — probe every replica allocation (lors refresh's probe pass),
//	          verify a rotating sample of payloads against the stored
//	          CRC32, and classify replicas healthy / expiring / dead
//	renew   — Extend leases that fall inside the renewal window (refresh)
//	repair  — third-party-copy under-replicated extents from a healthy
//	          replica onto fresh depots from the locator (augment)
//	prune   — drop replicas that are gone for good (trim)
//	republish — push the updated exNode through the publish hook so
//	          browsing clients resolve the new layout
//
// Repair work runs in a bounded worker pool under a per-cycle budget so
// maintenance never starves foreground traffic, and every consequential
// action is surfaced as an Event and counted in Stats. Cycle and repair
// timings plus renewal/repair/prune/loss counters are also recorded to
// an internal/obs registry (the steward.* metrics of
// docs/OBSERVABILITY.md); RegisterMetrics bridges the full Stats struct
// onto the /metrics endpoint.
package steward

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
	"lonviz/internal/lors"
	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
)

// LocateFunc finds up to n candidate depot addresses with at least
// minFree bytes free, never returning an address in exclude. The lbone
// package is the standard backend (see LBoneLocator); tests supply
// closures.
type LocateFunc func(ctx context.Context, n int, minFree int64, exclude map[string]bool) ([]string, error)

// PublishFunc pushes a repaired/renewed exNode to whatever directory the
// browsing clients resolve from (typically dvs.Client.Replace). The
// steward passes a private copy; the hook may retain it.
type PublishFunc func(ctx context.Context, name string, ex *exnode.ExNode) error

// EventType labels one steward event.
type EventType string

// Event types, in lifecycle order.
const (
	EventRenew         EventType = "renew"
	EventRenewFailed   EventType = "renew-failed"
	EventRepair        EventType = "repair"
	EventRepairFailed  EventType = "repair-failed"
	EventPrune         EventType = "prune"
	EventVerifyFailed  EventType = "verify-failed"
	EventExtentLost    EventType = "extent-lost"
	EventPublish       EventType = "publish"
	EventPublishFailed EventType = "publish-failed"
)

// Event is one entry of the steward's structured event stream.
type Event struct {
	Type   EventType
	Object string // adopted exNode name
	Offset int64  // extent offset, -1 for object-level events
	Depot  string // depot involved, when applicable
	Err    error  // failure cause, when applicable
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s", e.Type, e.Object)
	if e.Offset >= 0 {
		s += fmt.Sprintf("@%d", e.Offset)
	}
	if e.Depot != "" {
		s += " depot=" + e.Depot
	}
	if e.Err != nil {
		s += " err=" + e.Err.Error()
	}
	return s
}

// Stats is a cumulative snapshot of steward activity.
type Stats struct {
	Cycles           int64
	ExtentsAudited   int64
	ReplicasProbed   int64
	LeasesRenewed    int64
	RenewFailures    int64
	PayloadsVerified int64
	VerifyFailures   int64
	RepairsAttempted int64
	RepairsSucceeded int64
	ReplicasPruned   int64
	ExtentsLost      int64
	Republishes      int64
	PublishFailures  int64
	// AlertAudits counts targeted audits run because an SLO alert fired,
	// ahead of the periodic cycle.
	AlertAudits int64
	// LastCycle is the wall-clock duration of the most recent scan cycle.
	LastCycle time.Duration
}

// CycleReport summarizes one scan cycle; tests use it to detect
// convergence.
type CycleReport struct {
	Objects          int
	ExtentsAudited   int
	Healthy          int // replicas classified healthy (incl. renewed)
	Expiring         int // replicas that entered the renewal window
	Dead             int // replicas classified dead this cycle
	LeasesRenewed    int
	RepairsAttempted int
	RepairsSucceeded int
	ReplicasPruned   int
	// FullyReplicated reports whether every audited extent ended the
	// cycle with at least the target number of healthy replicas.
	FullyReplicated bool
}

// Config tunes a Steward. The zero value of every field has a sensible
// default, but a useful steward needs at least Publish (to be visible)
// or Locate (to repair).
type Config struct {
	// ReplicationTarget is the number of healthy replicas every extent is
	// kept at (default 2).
	ReplicationTarget int
	// RenewalWindow: leases expiring within this window are renewed
	// (default 5m).
	RenewalWindow time.Duration
	// LeaseTerm is the lease requested on renewals and repair allocations
	// (default 30m; must not exceed the depots' MaxLease).
	LeaseTerm time.Duration
	// ScanInterval is Run's cycle period (default 1m).
	ScanInterval time.Duration
	// RepairBudget caps repair copies per cycle across all objects
	// (default 16), so a mass failure cannot monopolize the depots.
	RepairBudget int
	// RepairParallelism bounds concurrent repair transfers (default 2).
	RepairParallelism int
	// VerifyPerCycle is how many extents per object get a full payload
	// CRC verification each cycle, rotating round-robin (default 1;
	// negative disables sampling).
	VerifyPerCycle int
	// PruneAfter is how many consecutive cycles a replica must be
	// unreachable before it is pruned (default 2). Replicas whose
	// capability is positively gone — expired, revoked, unknown — are
	// pruned immediately.
	PruneAfter int
	// SkipRepairVerify skips the read-back CRC check on freshly repaired
	// replicas. Verification is on by default because a corrupt repair
	// would otherwise be advertised as healthy redundancy.
	SkipRepairVerify bool
	// TrustRecordedLeases skips probing replicas whose recorded expiry
	// (exnode.Replica.ExpiresMs) lies beyond the renewal window, except
	// on extents sampled for payload verification. Cheaper cycles, at
	// the cost of slower dead-depot detection.
	TrustRecordedLeases bool
	// Policy is the allocation policy for repairs (default Stable).
	Policy ibp.Policy
	// Dialer shapes depot connections; nil means plain TCP.
	Dialer ibp.Dialer
	// Health, when set, is consulted before probing and told every
	// outcome, so the steward neither hammers a dead depot nor repairs
	// onto one whose circuit is open.
	Health *lors.HealthTracker
	// Locate discovers fresh depots for repair; nil disables repair.
	Locate LocateFunc
	// Publish pushes updated exNodes to the directory; nil disables
	// republishing (the steward still maintains its own copies).
	Publish PublishFunc
	// OnEvent receives the structured event stream; nil discards it. It
	// is called synchronously from cycle goroutines and must not block.
	OnEvent func(Event)
	// Timeout bounds each IBP operation (0 uses the ibp default, 30s).
	Timeout time.Duration
	// Clock supplies time (for tests); nil means time.Now.
	Clock func() time.Time
	// Obs receives the steward.* metric families (cycle/repair timings,
	// renewal/repair/prune counters) and is threaded into the steward's
	// depot clients; nil records into obs.Default().
	Obs *obs.Registry
}

func (c *Config) defaults() {
	if c.ReplicationTarget <= 0 {
		c.ReplicationTarget = 2
	}
	if c.RenewalWindow <= 0 {
		c.RenewalWindow = 5 * time.Minute
	}
	if c.LeaseTerm <= 0 {
		c.LeaseTerm = 30 * time.Minute
	}
	if c.ScanInterval <= 0 {
		c.ScanInterval = time.Minute
	}
	if c.RepairBudget <= 0 {
		c.RepairBudget = 16
	}
	if c.RepairParallelism <= 0 {
		c.RepairParallelism = 2
	}
	if c.VerifyPerCycle == 0 {
		c.VerifyPerCycle = 1
	}
	if c.PruneAfter <= 0 {
		c.PruneAfter = 2
	}
	if c.Policy == "" {
		c.Policy = ibp.Stable
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// object is one adopted exNode plus the steward's per-object audit state.
type object struct {
	ex *exnode.ExNode
	// verifyCursor rotates the payload-verification sample across cycles.
	verifyCursor int
	// unreach tracks consecutive unreachable cycles per replica (keyed
	// depot+readCap), feeding the PruneAfter policy.
	unreach map[string]int
	// dirty marks a layout change that has not been published yet (set on
	// change, cleared on successful publish, so a failed publish retries
	// next cycle).
	dirty bool
}

// Steward keeps adopted exNodes healthy. Create with New, feed it
// exNodes with Adopt, and drive it with Run (or RunCycle from a test).
type Steward struct {
	cfg Config

	// cycleMu serializes scan cycles; mu guards the maps and stats and is
	// never held across network I/O.
	cycleMu sync.Mutex
	mu      sync.Mutex
	objects map[string]*object
	stats   Stats
	// trigger carries alert-triggered audit requests into Run's select: a
	// depot address for a targeted audit, "" for a full early cycle.
	// queued coalesces duplicates while one is pending.
	trigger chan string
	queued  map[string]bool
}

// New builds a Steward.
func New(cfg Config) *Steward {
	cfg.defaults()
	return &Steward{
		cfg:     cfg,
		objects: make(map[string]*object),
		trigger: make(chan string, 16),
		queued:  make(map[string]bool),
	}
}

// Adopt places an exNode under management, keyed by name (replacing any
// prior adoption of the same name). The steward works on a private deep
// copy.
func (s *Steward) Adopt(name string, ex *exnode.ExNode) error {
	if name == "" {
		return errors.New("steward: empty object name")
	}
	if err := ex.Validate(); err != nil {
		return fmt.Errorf("steward: adopting %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[name] = &object{ex: ex.Clone(), unreach: make(map[string]int)}
	return nil
}

// Forget drops an object from management.
func (s *Steward) Forget(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, name)
}

// Objects returns the adopted object names, sorted.
func (s *Steward) Objects() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.objects))
	for name := range s.objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ExNode returns a deep copy of the steward's current layout for name
// (nil if not adopted).
func (s *Steward) ExNode(name string) *exnode.ExNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[name]
	if !ok {
		return nil
	}
	return obj.ex.Clone()
}

// ReplicaCoverage reports, per adopted exNode, how many of its
// replicas are on live depots — the minimum over the object's extents,
// since the thinnest extent bounds the object's availability. up maps
// depot addresses to liveness (the fleet scraper passes the depot
// members currently in the up state); a nil map counts every replica.
// This is the fleet.replica.coverage source: layout intersected with
// live membership, so a dying depot moves coverage the moment the
// matrix marks it down, without waiting for a steward audit to probe
// capabilities.
func (s *Steward) ReplicaCoverage(up map[string]bool) map[string]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.objects))
	for name, obj := range s.objects {
		minLive := -1
		for i := range obj.ex.Extents {
			live := 0
			for _, r := range obj.ex.Extents[i].Replicas {
				if up == nil || up[r.Depot] {
					live++
				}
			}
			if minLive < 0 || live < minLive {
				minLive = live
			}
		}
		if minLive < 0 {
			continue // no extents: nothing to cover
		}
		out[name] = float64(minLive)
	}
	return out
}

// Stats returns a snapshot of cumulative counters.
func (s *Steward) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Steward) emit(ev Event) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
}

func (s *Steward) client(addr string) *ibp.Client {
	return &ibp.Client{Addr: addr, Dialer: s.cfg.Dialer, Timeout: s.cfg.Timeout, Obs: s.cfg.Obs}
}

// registry resolves the metrics destination.
func (s *Steward) registry() *obs.Registry {
	if s.cfg.Obs != nil {
		return s.cfg.Obs
	}
	return obs.Default()
}

// RegisterMetrics bridges this steward's cumulative Stats into reg
// (scraped as steward.* at /metrics). Passing nil bridges into
// obs.Default().
func (s *Steward) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	reg.RegisterSnapshot("steward", func() map[string]float64 {
		st := s.Stats()
		return map[string]float64{
			"cycles_total":      float64(st.Cycles),
			"extents_audited":   float64(st.ExtentsAudited),
			"replicas_probed":   float64(st.ReplicasProbed),
			"leases_renewed":    float64(st.LeasesRenewed),
			"renew_failures":    float64(st.RenewFailures),
			"payloads_verified": float64(st.PayloadsVerified),
			"verify_failures":   float64(st.VerifyFailures),
			"repairs_attempted": float64(st.RepairsAttempted),
			"repairs_succeeded": float64(st.RepairsSucceeded),
			"replicas_pruned":   float64(st.ReplicasPruned),
			"extents_lost_obj":  float64(st.ExtentsLost),
			"republishes":       float64(st.Republishes),
			"publish_failures":  float64(st.PublishFailures),
			"alert_audits":      float64(st.AlertAudits),
			"last_cycle_ms":     float64(st.LastCycle) / 1e6,
		}
	})
}

// Run executes scan cycles every ScanInterval until ctx is cancelled.
// Between ticks it also services alert triggers (TriggerDepotAudit /
// TriggerCycle): a firing SLO alert gets its targeted audit immediately
// instead of waiting out the interval.
func (s *Steward) Run(ctx context.Context) error {
	t := time.NewTicker(s.cfg.ScanInterval)
	defer t.Stop()
	for {
		if _, err := s.RunCycle(ctx); err != nil {
			return err
		}
	idle:
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				break idle
			case depot := <-s.trigger:
				s.dequeue(depot)
				if depot == "" {
					break idle // full early cycle
				}
				if _, err := s.AuditDepot(ctx, depot); err != nil {
					return err
				}
			}
		}
	}
}

// TriggerDepotAudit asks Run for an immediate targeted audit of every
// adopted extent holding a replica on depot. Non-blocking and
// coalescing: duplicate triggers for a depot already queued are dropped,
// and so is everything when the queue is full (the periodic cycle is the
// backstop).
func (s *Steward) TriggerDepotAudit(depot string) {
	s.mu.Lock()
	if s.queued[depot] {
		s.mu.Unlock()
		return
	}
	s.queued[depot] = true
	s.mu.Unlock()
	select {
	case s.trigger <- depot:
	default:
		s.dequeue(depot)
	}
}

// TriggerCycle asks Run for an immediate full cycle ahead of the
// interval (the reaction to an aggregate alert that names no depot).
// Non-blocking and coalescing like TriggerDepotAudit.
func (s *Steward) TriggerCycle() { s.TriggerDepotAudit("") }

func (s *Steward) dequeue(depot string) {
	s.mu.Lock()
	delete(s.queued, depot)
	s.mu.Unlock()
}

// AuditDepot runs one targeted audit: every adopted object with a
// replica on depot gets a full audit pass with payload verification
// focused on that depot's replicas, so silent corruption there is found
// and repaired now rather than when the rotating sample eventually
// lands on it. Safe to call concurrently with RunCycle (they serialize).
func (s *Steward) AuditDepot(ctx context.Context, depot string) (CycleReport, error) {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	ctx, span := obs.DefaultTracer().StartSpan(ctx, obs.SpanStewardAlertAudit)
	span.SetAttr("depot", depot)
	defer span.Finish()
	var report CycleReport
	budget := &repairBudget{left: s.cfg.RepairBudget}
	for _, name := range s.objectsOnDepot(depot) {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		s.processObject(ctx, name, depot, budget, &report)
	}
	s.addStats(func(st *Stats) { st.AlertAudits++ })
	s.registry().Counter(obs.MStewardAlertAudits).Inc()
	return report, ctx.Err()
}

// objectsOnDepot returns the adopted object names with at least one
// replica on depot, sorted.
func (s *Steward) objectsOnDepot(depot string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name, obj := range s.objects {
		for i := range obj.ex.Extents {
			found := false
			for _, rep := range obj.ex.Extents[i].Replicas {
				if rep.Depot == depot {
					out = append(out, name)
					found = true
					break
				}
			}
			if found {
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// RunCycle executes one audit → renew → repair → prune → republish pass
// over every adopted object. It returns an error only when ctx is done;
// per-replica failures are events and counters, not errors.
func (s *Steward) RunCycle(ctx context.Context) (CycleReport, error) {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	start := time.Now()
	// Root one trace per maintenance cycle: repair copies the cycle issues
	// carry its trace onto the wire, so a depot-side ibp.serve span can be
	// attributed to "the steward's 14:05 cycle" rather than to a browsing
	// client.
	ctx, span := obs.DefaultTracer().StartSpan(ctx, obs.SpanStewardCycle)
	defer span.Finish()
	var report CycleReport
	budget := &repairBudget{left: s.cfg.RepairBudget}

	for _, name := range s.Objects() {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		s.processObject(ctx, name, "", budget, &report)
	}

	report.FullyReplicated = report.ExtentsAudited > 0 &&
		report.RepairsAttempted == 0 && report.Dead == 0 &&
		report.Healthy >= report.ExtentsAudited*s.cfg.ReplicationTarget
	s.addStats(func(st *Stats) {
		st.Cycles++
		st.LastCycle = time.Since(start)
	})
	reg := s.registry()
	reg.Counter(obs.MStewardCycles).Inc()
	reg.Histogram(obs.MStewardCycleMs, obs.LatencyBucketsMs...).
		Observe(float64(time.Since(start)) / 1e6)
	return report, ctx.Err()
}

// processObject audits one adopted object and publishes the updated
// layout, folding results into report. focusDepot "" is the periodic
// cycle's behavior (rotating verification sample); a depot address
// focuses payload verification on that depot's replicas across every
// extent (the alert-triggered audit).
func (s *Steward) processObject(ctx context.Context, name, focusDepot string, budget *repairBudget, report *CycleReport) {
	// Work on a private clone so readers of ExNode/Stats never see a
	// half-audited layout.
	s.mu.Lock()
	obj, ok := s.objects[name]
	if !ok {
		s.mu.Unlock()
		return // forgotten mid-cycle
	}
	ex := obj.ex.Clone()
	cursor := obj.verifyCursor
	dirty := obj.dirty
	unreach := obj.unreach
	s.mu.Unlock()

	report.Objects++
	changed := s.auditObject(ctx, name, ex, cursor, focusDepot, unreach, budget, report)
	dirty = dirty || changed

	if dirty && s.cfg.Publish != nil {
		if err := s.cfg.Publish(ctx, name, ex.Clone()); err != nil {
			s.emit(Event{Type: EventPublishFailed, Object: name, Offset: -1, Err: err})
			s.addStats(func(st *Stats) { st.PublishFailures++ })
		} else {
			s.emit(Event{Type: EventPublish, Object: name, Offset: -1})
			s.addStats(func(st *Stats) { st.Republishes++ })
			dirty = false
		}
	} else if dirty && s.cfg.Publish == nil {
		dirty = false // nowhere to publish; don't retry forever
	}

	nextCursor := cursor
	if focusDepot == "" && s.cfg.VerifyPerCycle > 0 && len(ex.Extents) > 0 {
		nextCursor = (cursor + s.cfg.VerifyPerCycle) % len(ex.Extents)
	}
	s.mu.Lock()
	if cur, ok := s.objects[name]; ok && cur == obj {
		obj.ex = ex
		obj.verifyCursor = nextCursor
		obj.dirty = dirty
	}
	s.mu.Unlock()
}

func (s *Steward) addStats(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// repairBudget is the per-cycle cap on repair copies.
type repairBudget struct {
	mu   sync.Mutex
	left int
}

func (b *repairBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.left <= 0 {
		return false
	}
	b.left--
	return true
}

func replicaKey(r exnode.Replica) string { return r.Depot + "|" + r.ReadCap }

// replicaVerdict classifies one replica after the audit probe.
type replicaVerdict int

const (
	verdictHealthy replicaVerdict = iota
	verdictDead                   // positively gone or unreachable past PruneAfter
	verdictSuspect                // unreachable, within grace
)

// auditObject runs the full cycle for one object, mutating ex in place.
// It returns whether the layout changed (renewal timestamps, repairs,
// prunes). A non-empty focusDepot switches from the rotating
// verification sample to verifying that depot's replica on every extent
// holding one — the alert-triggered audit's corruption sweep.
func (s *Steward) auditObject(ctx context.Context, name string, ex *exnode.ExNode, cursor int, focusDepot string, unreach map[string]int, budget *repairBudget, report *CycleReport) bool {
	now := s.cfg.Clock()
	changed := false

	sampled := make(map[int]bool)
	switch {
	case focusDepot != "":
		for i := range ex.Extents {
			for _, rep := range ex.Extents[i].Replicas {
				if rep.Depot == focusDepot {
					sampled[i] = true
					break
				}
			}
		}
	case s.cfg.VerifyPerCycle > 0 && len(ex.Extents) > 0:
		for k := 0; k < s.cfg.VerifyPerCycle && k < len(ex.Extents); k++ {
			sampled[(cursor+k)%len(ex.Extents)] = true
		}
	}

	type repairJob struct {
		extIdx int
		need   int
	}
	var repairs []repairJob

	for i := range ex.Extents {
		ext := &ex.Extents[i]
		if err := ctx.Err(); err != nil {
			return changed
		}
		report.ExtentsAudited++
		s.addStats(func(st *Stats) { st.ExtentsAudited++ })

		verdicts := make([]replicaVerdict, len(ext.Replicas))
		for j := range ext.Replicas {
			verdicts[j] = s.auditReplica(ctx, name, ext, j, now, sampled[i], unreach, report, &changed)
		}

		// Payload sampling: verify one healthy replica's bytes against the
		// stored CRC32. A mismatch is depot-side corruption — the replica
		// is reclassified dead so it gets pruned and repaired like a lost
		// one.
		if sampled[i] && ext.Checksum != "" {
			for j := range ext.Replicas {
				if verdicts[j] != verdictHealthy {
					continue
				}
				// A focused audit verifies the suspect depot's replica, not
				// whichever healthy replica happens to come first.
				if focusDepot != "" && ext.Replicas[j].Depot != focusDepot {
					continue
				}
				rep := ext.Replicas[j]
				data, err := s.client(rep.Depot).Load(ctx, rep.ReadCap, rep.AllocOffset, ext.Length)
				if err == nil {
					err = ext.VerifyData(data)
				}
				if err == nil {
					s.addStats(func(st *Stats) { st.PayloadsVerified++ })
				} else {
					s.emit(Event{Type: EventVerifyFailed, Object: name, Offset: ext.Offset, Depot: rep.Depot, Err: err})
					s.addStats(func(st *Stats) { st.VerifyFailures++ })
					verdicts[j] = verdictDead
					report.Healthy--
					report.Dead++
				}
				break // one sampled replica per extent per cycle
			}
		}

		healthy := 0
		for _, v := range verdicts {
			if v == verdictHealthy {
				healthy++
			}
		}

		// Prune dead replicas, but never below one remaining replica: if
		// everything is gone the extent is lost and the stale entries are
		// the only forensic trail (and the depots might come back).
		if healthy > 0 {
			kept := ext.Replicas[:0]
			for j, rep := range ext.Replicas {
				if verdicts[j] == verdictDead {
					s.emit(Event{Type: EventPrune, Object: name, Offset: ext.Offset, Depot: rep.Depot})
					s.registry().Counter(obs.MStewardPruned).Inc()
					s.addStats(func(st *Stats) { st.ReplicasPruned++ })
					report.ReplicasPruned++
					delete(unreach, replicaKey(rep))
					changed = true
					continue
				}
				kept = append(kept, rep)
			}
			ext.Replicas = kept
		} else {
			s.emit(Event{Type: EventExtentLost, Object: name, Offset: ext.Offset})
			s.registry().Counter(obs.MStewardExtentsLost).Inc()
			s.addStats(func(st *Stats) { st.ExtentsLost++ })
			continue // no healthy source: nothing to repair from
		}

		if healthy < s.cfg.ReplicationTarget && s.cfg.Locate != nil {
			repairs = append(repairs, repairJob{extIdx: i, need: s.cfg.ReplicationTarget - healthy})
		}
	}

	// Repair pass: bounded worker pool, per-cycle budget. Each job owns
	// its extent, so concurrent appends never collide; per-job results are
	// folded into the report only after the pool drains.
	if len(repairs) > 0 {
		sem := make(chan struct{}, s.cfg.RepairParallelism)
		var wg sync.WaitGroup
		results := make([]repairResult, len(repairs))
		for k, job := range repairs {
			wg.Add(1)
			sem <- struct{}{}
			go func(k int, job repairJob) {
				defer wg.Done()
				defer func() { <-sem }()
				results[k] = s.repairExtent(ctx, name, &ex.Extents[job.extIdx], job.need, now, budget)
			}(k, job)
		}
		wg.Wait()
		for _, res := range results {
			report.RepairsAttempted += res.attempted
			report.RepairsSucceeded += res.succeeded
			changed = changed || res.succeeded > 0
		}
	}
	return changed
}

// auditReplica probes one replica, renewing its lease when it is inside
// the renewal window, and returns its verdict. It mutates the replica's
// recorded expiry in place.
func (s *Steward) auditReplica(ctx context.Context, name string, ext *exnode.Extent, j int, now time.Time, sampledExtent bool, unreach map[string]int, report *CycleReport, changed *bool) replicaVerdict {
	rep := &ext.Replicas[j]
	key := replicaKey(*rep)

	markUnreachable := func() replicaVerdict {
		unreach[key]++
		if unreach[key] >= s.cfg.PruneAfter {
			report.Dead++
			return verdictDead
		}
		return verdictSuspect
	}

	// A circuit-open depot is not probed at all: the breaker exists so
	// nobody hammers it during the cooldown. It still counts as an
	// unreachable cycle for the prune policy.
	if s.cfg.Health != nil && !s.cfg.Health.Allow(rep.Depot) {
		return markUnreachable()
	}

	// Fast path: a fresh recorded lease can be trusted without a probe
	// (except on extents sampled for payload verification, which probe so
	// corruption detection stays live).
	if s.cfg.TrustRecordedLeases && !sampledExtent {
		if exp := rep.Expiry(); !exp.IsZero() && exp.After(now.Add(s.cfg.RenewalWindow)) {
			report.Healthy++
			return verdictHealthy
		}
	}

	if rep.ManageCap == "" {
		// Read-only replica: cannot be probed or renewed. Count it
		// healthy; downloads will discover the truth.
		report.Healthy++
		return verdictHealthy
	}

	cl := s.client(rep.Depot)
	s.addStats(func(st *Stats) { st.ReplicasProbed++ })
	info, err := cl.Probe(ctx, rep.ManageCap)
	if err != nil {
		if capGone(err) {
			// The allocation is positively gone — lease expired, volatile
			// revocation, or an unknown capability. Dead immediately.
			s.cfg.Health.ReportSuccess(rep.Depot) // the depot answered
			delete(unreach, key)
			report.Dead++
			return verdictDead
		}
		s.cfg.Health.ReportFailure(rep.Depot)
		return markUnreachable()
	}
	s.cfg.Health.ReportSuccess(rep.Depot)
	delete(unreach, key)
	if rep.Expiry() != info.Expires {
		rep.SetExpiry(info.Expires)
		*changed = true
	}

	if info.Expires.Sub(now) <= s.cfg.RenewalWindow {
		report.Expiring++
		exp, err := cl.Extend(ctx, rep.ManageCap, s.cfg.LeaseTerm)
		if err != nil {
			if capGone(err) {
				report.Dead++
				return verdictDead
			}
			s.emit(Event{Type: EventRenewFailed, Object: name, Offset: ext.Offset, Depot: rep.Depot, Err: err})
			s.addStats(func(st *Stats) { st.RenewFailures++ })
			// Still alive until its lease actually runs out.
			report.Healthy++
			return verdictHealthy
		}
		rep.SetExpiry(exp)
		*changed = true
		s.emit(Event{Type: EventRenew, Object: name, Offset: ext.Offset, Depot: rep.Depot})
		s.addStats(func(st *Stats) { st.LeasesRenewed++ })
		s.registry().Counter(obs.MStewardRenewals).Inc()
		report.LeasesRenewed++
	}
	report.Healthy++
	return verdictHealthy
}

// capGone reports errors that mean the allocation no longer exists (as
// opposed to the depot being unreachable).
func capGone(err error) bool {
	return errors.Is(err, ibp.ErrNoCap) || errors.Is(err, ibp.ErrExpired) || errors.Is(err, ibp.ErrRevoked)
}

// repairResult is one repair job's contribution to the cycle report.
type repairResult struct {
	attempted, succeeded int
}

// repairExtent restores up to need replicas for one extent by third-party
// copy from a surviving replica onto fresh depots from the locator. It
// runs on a worker-pool goroutine, so it touches only its own extent and
// reports counters via the returned result, never the shared CycleReport.
func (s *Steward) repairExtent(ctx context.Context, name string, ext *exnode.Extent, need int, now time.Time, budget *repairBudget) repairResult {
	var res repairResult
	// CPU attribution: background repair traffic profiles under
	// {class=steward_repair}, so a capture taken during a user-facing
	// latency alert shows whether repair copies were competing for CPU.
	lctx := prof.Begin1(ctx, prof.KeyClass, "steward_repair")
	defer prof.End(ctx)
	ctx = lctx
	// Exclude every depot already holding this extent — healthy or not —
	// so repair increases depot diversity instead of doubling up.
	exclude := make(map[string]bool, len(ext.Replicas))
	for _, rep := range ext.Replicas {
		exclude[rep.Depot] = true
	}
	sources := allowedSources(s.cfg.Health, ext.Replicas)
	if len(sources) == 0 {
		return res
	}

	countAttempt := func() {
		res.attempted++
		s.addStats(func(st *Stats) { st.RepairsAttempted++ })
	}
	for placed := 0; placed < need; placed++ {
		if err := ctx.Err(); err != nil {
			return res
		}
		if !budget.take() {
			return res // per-cycle budget exhausted; next cycle continues
		}
		candidates, err := s.cfg.Locate(ctx, need-placed+1, ext.Length, exclude)
		if err != nil || len(candidates) == 0 {
			countAttempt()
			s.emit(Event{Type: EventRepairFailed, Object: name, Offset: ext.Offset, Err: firstErr(err, errors.New("steward: no candidate depots"))})
			return res
		}
		placedHere := false
		for _, addr := range candidates {
			if exclude[addr] {
				continue
			}
			if s.cfg.Health != nil && !s.cfg.Health.Allow(addr) {
				continue
			}
			countAttempt()
			repairStart := time.Now()
			rctx, rspan := obs.DefaultTracer().StartSpan(ctx, obs.SpanStewardRepair)
			rspan.SetAttr("object", name)
			rspan.SetAttr("depot", addr)
			rep, err := s.copyOnto(rctx, ext, sources, addr)
			if err != nil {
				rspan.SetAttr("err", err.Error())
				rspan.Finish()
				s.cfg.Health.ReportFailure(addr)
				s.registry().Counter(obs.MStewardRepairFailures).Inc()
				s.emit(Event{Type: EventRepairFailed, Object: name, Offset: ext.Offset, Depot: addr, Err: err})
				obs.DefaultLogger().Warn(rctx, obs.EvStewardRepairDone,
					"dataset", name, "extent", strconv.FormatInt(ext.Offset, 10),
					"depot", addr, "ok", "false")
				continue
			}
			rspan.Finish()
			s.cfg.Health.ReportSuccess(addr)
			reg := s.registry()
			reg.Counter(obs.MStewardRepairs).Inc()
			reg.Histogram(obs.MStewardRepairMs, obs.LatencyBucketsMs...).
				Observe(float64(time.Since(repairStart)) / 1e6)
			obs.DefaultLogger().Info(rctx, obs.EvStewardRepairDone,
				"dataset", name, "extent", strconv.FormatInt(ext.Offset, 10),
				"depot", addr, "ok", "true")
			rep.SetExpiry(now.Add(s.cfg.LeaseTerm))
			ext.Replicas = append(ext.Replicas, rep)
			exclude[addr] = true
			s.emit(Event{Type: EventRepair, Object: name, Offset: ext.Offset, Depot: addr})
			s.addStats(func(st *Stats) { st.RepairsSucceeded++ })
			res.succeeded++
			placedHere = true
			break
		}
		if !placedHere {
			return res // no candidate worked; retry next cycle
		}
	}
	return res
}

// copyOnto allocates on addr and third-party-copies the extent there from
// the first source that succeeds, verifying the payload CRC unless
// disabled. On failure the target allocation is freed rather than leaked.
func (s *Steward) copyOnto(ctx context.Context, ext *exnode.Extent, sources []exnode.Replica, addr string) (exnode.Replica, error) {
	target := s.client(addr)
	caps, err := target.Allocate(ctx, ext.Length, s.cfg.LeaseTerm, s.cfg.Policy)
	if err != nil {
		return exnode.Replica{}, fmt.Errorf("allocate: %w", err)
	}
	free := func() { _ = target.Free(context.WithoutCancel(ctx), caps.Manage) }

	var lastErr error
	copied := false
	for _, src := range sources {
		if err := s.client(src.Depot).Copy(ctx, src.ReadCap, src.AllocOffset, ext.Length, addr, caps.Write, 0); err != nil {
			lastErr = err
			continue
		}
		copied = true
		break
	}
	if !copied {
		free()
		return exnode.Replica{}, fmt.Errorf("copy: %w", lastErr)
	}
	if !s.cfg.SkipRepairVerify && ext.Checksum != "" {
		data, err := target.Load(ctx, caps.Read, 0, ext.Length)
		if err == nil {
			err = ext.VerifyData(data)
		}
		if err != nil {
			free()
			return exnode.Replica{}, fmt.Errorf("verify: %w", err)
		}
	}
	return exnode.Replica{Depot: addr, ReadCap: caps.Read, ManageCap: caps.Manage}, nil
}

// allowedSources filters replicas to plausibly readable copy sources.
func allowedSources(h *lors.HealthTracker, reps []exnode.Replica) []exnode.Replica {
	out := make([]exnode.Replica, 0, len(reps))
	for _, r := range reps {
		if h != nil && !h.Allow(r.Depot) {
			continue
		}
		out = append(out, r)
	}
	return out
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
