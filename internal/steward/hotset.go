package steward

import (
	"context"
	"errors"
	"sync"
	"time"

	"lonviz/internal/edge"
	"lonviz/internal/obs"
)

// HotSetConfig wires demand-driven hot-set replication: the steward
// subscribes to the edge tier's popularity feed and pushes the hottest
// view sets toward the edge ahead of client demand, so the first access
// from a new tenant is already a LAN hit.
type HotSetConfig struct {
	// Feed returns the current hottest view sets, hottest first (typically
	// edge.Cache.Popularity().Top, or a /metrics-scraping adapter when the
	// steward runs on a different host than lfedged).
	Feed func(n int) []edge.HotItem
	// Warm replicates one view set toward the edge tier. The standard
	// implementation resolves the view set's exNode and calls edge.Warm
	// with the edge address.
	Warm func(ctx context.Context, hint string) error
	// TopN is how many feed entries each pass considers (default 8).
	TopN int
	// MinCount ignores feed entries below this decayed access count, so a
	// single stray view doesn't trigger replication (default 2).
	MinCount float64
	// Interval is the periodic pass spacing (default 5s).
	Interval time.Duration
	// Cooldown is the minimum time between warms of the same view set
	// (default 1m); the edge's own LRU keeps hot entries resident, so
	// re-warming sooner only burns WAN bandwidth.
	Cooldown time.Duration
	// Obs receives the steward.hotset.* counters; nil records into
	// obs.Default().
	Obs *obs.Registry
}

// HotSetReplicator runs the feed→warm loop. Create with
// NewHotSetReplicator, start with Run; Trigger forces an early pass (the
// alert-plumbing hookup, mirroring the steward's audit triggers).
type HotSetReplicator struct {
	cfg     HotSetConfig
	trigger chan struct{}

	mu       sync.Mutex
	lastWarm map[string]time.Time
	warms    int64
	warmErrs int64
}

// NewHotSetReplicator validates the config and builds a replicator.
func NewHotSetReplicator(cfg HotSetConfig) (*HotSetReplicator, error) {
	if cfg.Feed == nil {
		return nil, errors.New("steward: hot-set replicator needs a popularity feed")
	}
	if cfg.Warm == nil {
		return nil, errors.New("steward: hot-set replicator needs a warm function")
	}
	if cfg.TopN <= 0 {
		cfg.TopN = 8
	}
	if cfg.MinCount <= 0 {
		cfg.MinCount = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Minute
	}
	return &HotSetReplicator{
		cfg:      cfg,
		trigger:  make(chan struct{}, 1),
		lastWarm: make(map[string]time.Time),
	}, nil
}

// registry resolves the metrics destination.
func (h *HotSetReplicator) registry() *obs.Registry {
	if h.cfg.Obs != nil {
		return h.cfg.Obs
	}
	return obs.Default()
}

// Trigger requests an early pass. It never blocks; triggers coalesce
// into the Run loop like the steward's audit triggers.
func (h *HotSetReplicator) Trigger() {
	select {
	case h.trigger <- struct{}{}:
	default:
	}
}

// Stats reports cumulative warm attempts (succeeded, failed).
func (h *HotSetReplicator) Stats() (warms, warmErrors int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.warms, h.warmErrs
}

// Run executes periodic passes until ctx ends.
func (h *HotSetReplicator) Run(ctx context.Context) {
	t := time.NewTicker(h.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		case <-h.trigger:
		}
		h.RunOnce(ctx)
	}
}

// RunOnce executes one feed→warm pass and returns how many view sets it
// warmed.
func (h *HotSetReplicator) RunOnce(ctx context.Context) int {
	reg := h.registry()
	warmed := 0
	for _, item := range h.cfg.Feed(h.cfg.TopN) {
		if item.Count < h.cfg.MinCount {
			continue // hottest-first feed: everything below is colder
		}
		now := time.Now()
		h.mu.Lock()
		last, seen := h.lastWarm[item.Hint]
		if seen && now.Sub(last) < h.cfg.Cooldown {
			h.mu.Unlock()
			continue
		}
		h.lastWarm[item.Hint] = now
		h.mu.Unlock()
		err := h.cfg.Warm(ctx, item.Hint)
		h.mu.Lock()
		if err != nil {
			h.warmErrs++
			// Let the next pass retry instead of sitting out the cooldown.
			delete(h.lastWarm, item.Hint)
		} else {
			h.warms++
			warmed++
		}
		h.mu.Unlock()
		if err != nil {
			reg.Counter(obs.MStewardHotsetWarmErrors).Inc()
			obs.DefaultLogger().Warn(ctx, obs.EvStewardHotsetWarm,
				"hint", item.Hint, "ok", "false", "err", err.Error())
			continue
		}
		reg.Counter(obs.MStewardHotsetWarms).Inc()
		obs.DefaultLogger().Info(ctx, obs.EvStewardHotsetWarm,
			"hint", item.Hint, "ok", "true")
		if ctx.Err() != nil {
			return warmed
		}
	}
	return warmed
}
