package steward

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lonviz/internal/edge"
)

func TestHotSetReplicatorValidation(t *testing.T) {
	feed := func(n int) []edge.HotItem { return nil }
	warm := func(ctx context.Context, hint string) error { return nil }
	if _, err := NewHotSetReplicator(HotSetConfig{Warm: warm}); err == nil {
		t.Fatal("missing feed accepted")
	}
	if _, err := NewHotSetReplicator(HotSetConfig{Feed: feed}); err == nil {
		t.Fatal("missing warm accepted")
	}
	if _, err := NewHotSetReplicator(HotSetConfig{Feed: feed, Warm: warm}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestHotSetReplicatorWarmsAboveThreshold(t *testing.T) {
	var mu sync.Mutex
	warmed := map[string]int{}
	h, err := NewHotSetReplicator(HotSetConfig{
		Feed: func(n int) []edge.HotItem {
			return []edge.HotItem{
				{Hint: "r00c01", Count: 9},
				{Hint: "r01c02", Count: 5},
				{Hint: "r02c03", Count: 0.5}, // below MinCount: skipped
			}
		},
		Warm: func(ctx context.Context, hint string) error {
			mu.Lock()
			warmed[hint]++
			mu.Unlock()
			return nil
		},
		MinCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.RunOnce(context.Background()); got != 2 {
		t.Fatalf("RunOnce warmed %d sets, want 2", got)
	}
	if warmed["r00c01"] != 1 || warmed["r01c02"] != 1 || warmed["r02c03"] != 0 {
		t.Fatalf("warmed = %v, want the two hot sets only", warmed)
	}
	// A second pass inside the cooldown warms nothing.
	if got := h.RunOnce(context.Background()); got != 0 {
		t.Fatalf("cooldown pass warmed %d sets, want 0", got)
	}
	if warms, errs := h.Stats(); warms != 2 || errs != 0 {
		t.Fatalf("stats = (%d, %d), want (2, 0)", warms, errs)
	}
}

func TestHotSetReplicatorCooldownExpiry(t *testing.T) {
	var mu sync.Mutex
	count := 0
	h, err := NewHotSetReplicator(HotSetConfig{
		Feed: func(n int) []edge.HotItem {
			return []edge.HotItem{{Hint: "r00c00", Count: 10}}
		},
		Warm: func(ctx context.Context, hint string) error {
			mu.Lock()
			count++
			mu.Unlock()
			return nil
		},
		Cooldown: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.RunOnce(context.Background())
	h.RunOnce(context.Background()) // inside cooldown
	time.Sleep(50 * time.Millisecond)
	h.RunOnce(context.Background()) // cooldown expired
	if count != 2 {
		t.Fatalf("warm count = %d, want 2 (cooldown gates the middle pass)", count)
	}
}

func TestHotSetReplicatorRetriesFailedWarms(t *testing.T) {
	fail := true
	h, err := NewHotSetReplicator(HotSetConfig{
		Feed: func(n int) []edge.HotItem {
			return []edge.HotItem{{Hint: "r03c04", Count: 10}}
		},
		Warm: func(ctx context.Context, hint string) error {
			if fail {
				return errors.New("origin down")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.RunOnce(context.Background()); got != 0 {
		t.Fatalf("failing warm counted as success: %d", got)
	}
	// A failed warm must not sit out the cooldown: the very next pass retries.
	fail = false
	if got := h.RunOnce(context.Background()); got != 1 {
		t.Fatalf("retry pass warmed %d sets, want 1", got)
	}
	if warms, errs := h.Stats(); warms != 1 || errs != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1)", warms, errs)
	}
}

func TestHotSetReplicatorRunLoopAndTrigger(t *testing.T) {
	var mu sync.Mutex
	count := 0
	h, err := NewHotSetReplicator(HotSetConfig{
		Feed: func(n int) []edge.HotItem {
			return []edge.HotItem{{Hint: "r04c05", Count: 10}}
		},
		Warm: func(ctx context.Context, hint string) error {
			mu.Lock()
			count++
			mu.Unlock()
			return nil
		},
		Interval: time.Hour, // only the trigger fires within the test
		Cooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { h.Run(ctx); close(done) }()
	h.Trigger()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trigger never drove a pass")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Trigger never blocks even when the loop is busy or the chan is full.
	h.Trigger()
	h.Trigger()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}
