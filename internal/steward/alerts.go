package steward

import (
	"context"

	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
)

// AlertTrigger adapts a Steward into an SLO-alert subscriber
// (slo.Engine.Subscribe / slo.Stack.Subscribe): a firing alert that
// names a depot (the per-depot latency rules label instances with
// depot=host:port) queues an immediate targeted audit of that depot's
// replicas; a firing critical alert with no depot queues an early full
// cycle. Resolved alerts are ignored — the repair already ran. The
// callback never blocks: triggers coalesce into the steward's Run loop.
func AlertTrigger(s *Steward) func(slo.Alert) {
	return func(a slo.Alert) {
		if s == nil || a.State != slo.StateFiring {
			return
		}
		if depot := a.Labels["depot"]; depot != "" {
			obs.DefaultLogger().Info(context.Background(), obs.EvStewardAlertTrigger,
				"rule", a.Rule, "depot", depot)
			s.TriggerDepotAudit(depot)
			return
		}
		if a.Severity == slo.SeverityCritical {
			obs.DefaultLogger().Info(context.Background(), obs.EvStewardAlertTrigger,
				"rule", a.Rule, "depot", "")
			s.TriggerCycle()
		}
	}
}
