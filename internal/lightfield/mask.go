package lightfield

import "sync"

// maskCacheT memoizes occlusion masks per Params value. Params is a
// comparable struct, so it keys a map directly.
type maskCacheT struct {
	mu sync.Mutex
	m  map[Params]*Bitmask
}

var maskCache = &maskCacheT{m: make(map[Params]*Bitmask)}

func (c *maskCacheT) get(p Params) (*Bitmask, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.m[p]; ok {
		return m, nil
	}
	m, err := computeMask(p)
	if err != nil {
		return nil, err
	}
	c.m[p] = m
	return m, nil
}

// MaskFraction returns the fraction of pixels stored per view under the
// occlusion mask — the raw (pre-zlib) storage saving of the spherical
// parameterization is 1 minus this value.
func (p Params) MaskFraction() (float64, error) {
	m, err := p.ViewMask(0, 0)
	if err != nil {
		return 0, err
	}
	return float64(m.Count()) / float64(m.Len()), nil
}
