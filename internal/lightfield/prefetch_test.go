package lightfield

import (
	"math"
	"testing"
	"testing/quick"

	"lonviz/internal/geom"
)

func TestQuadrantPrefetchDirections(t *testing.T) {
	p := ScaledParams(10, 3, 8) // sets: 6 rows x 12 cols
	// Build a direction in the top-left quadrant of interior set (3,5):
	// lattice rows 9..11, cols 15..17. Top-left quadrant means fractional
	// position < 0.5 in both -> row 9, col 15 area.
	sp := p.CameraAngles(9, 15)
	got := p.QuadrantPrefetch(sp)
	want := map[ViewSetID]bool{
		{R: 2, C: 5}: true, // above
		{R: 3, C: 4}: true, // left
		{R: 2, C: 4}: true, // diagonal
	}
	if len(got) != 3 {
		t.Fatalf("prefetch = %v, want 3 sets", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected prefetch target %v", id)
		}
	}
	// Bottom-right quadrant of the same set.
	sp = p.CameraAngles(11, 17)
	got = p.QuadrantPrefetch(sp)
	want = map[ViewSetID]bool{
		{R: 4, C: 5}: true,
		{R: 3, C: 6}: true,
		{R: 4, C: 6}: true,
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("bottom-right: unexpected prefetch target %v", id)
		}
	}
}

func TestQuadrantPrefetchAtPole(t *testing.T) {
	p := ScaledParams(10, 3, 8)
	// Near the north pole, top quadrant: the row neighbor above does not
	// exist, so fewer sets are returned, and none invalid.
	sp := geom.Spherical{Theta: 0.01, Phi: 0.1}
	got := p.QuadrantPrefetch(sp)
	if len(got) == 0 {
		t.Fatal("no prefetch targets at pole")
	}
	for _, id := range got {
		if !p.ValidID(id) {
			t.Errorf("invalid prefetch target %v", id)
		}
	}
}

func TestQuadrantPrefetchWrapsColumns(t *testing.T) {
	p := ScaledParams(10, 3, 8)
	// Left quadrant of column 0 must wrap to the last set column.
	sp := p.CameraAngles(9, 0)
	found := false
	for _, id := range p.QuadrantPrefetch(sp) {
		if id.C == p.SetCols()-1 {
			found = true
		}
	}
	if !found {
		t.Error("prefetch did not wrap across phi = 0")
	}
}

// Properties from DESIGN.md: the prediction is always a subset of the
// 8-neighborhood and always includes the quadrant's straight neighbors
// when they exist.
func TestQuadrantPrefetchPropertyQuick(t *testing.T) {
	p := ScaledParams(10, 3, 8)
	f := func(thetaRaw, phiRaw float64) bool {
		theta := math.Mod(math.Abs(thetaRaw), math.Pi)
		phi := math.Mod(math.Abs(phiRaw), 2*math.Pi)
		if math.IsNaN(theta) || math.IsNaN(phi) {
			return true
		}
		sp := geom.Spherical{Theta: theta, Phi: phi}
		i, j := p.NearestCamera(sp)
		cur := p.ViewSetOf(i, j)
		neighbors := map[ViewSetID]bool{}
		for _, n := range p.Neighbors(cur) {
			neighbors[n] = true
		}
		preds := p.QuadrantPrefetch(sp)
		if len(preds) == 0 || len(preds) > 3 {
			return false
		}
		for _, id := range preds {
			if id == cur || !neighbors[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStagingOrderSortsByProximity(t *testing.T) {
	p := ScaledParams(15, 3, 8)
	sp := geom.Spherical{Theta: math.Pi / 2, Phi: math.Pi}
	order := p.StagingOrder(sp)
	if len(order) != p.NumViewSets() {
		t.Fatalf("order covers %d sets, want %d", len(order), p.NumViewSets())
	}
	prev := -1.0
	for _, id := range order {
		d := p.AngularDistToSet(sp, id)
		if d < prev-1e-12 {
			t.Fatalf("staging order not sorted: %v at %v after %v", id, d, prev)
		}
		prev = d
	}
	// First element is the current view set (distance ~0).
	i, j := p.NearestCamera(sp)
	if order[0] != p.ViewSetOf(i, j) {
		t.Errorf("first staged set = %v, want current %v", order[0], p.ViewSetOf(i, j))
	}
	// Every set appears exactly once.
	seen := map[ViewSetID]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate %v in staging order", id)
		}
		seen[id] = true
	}
}

func TestStagingOrderDeterministic(t *testing.T) {
	p := ScaledParams(15, 3, 8)
	sp := geom.Spherical{Theta: 1.0, Phi: 2.0}
	a := p.StagingOrder(sp)
	b := p.StagingOrder(sp)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("staging order not deterministic")
		}
	}
}
