package lightfield

import (
	"math"
	"sort"

	"lonviz/internal/geom"
)

// QuadrantPrefetch implements the paper's prefetch policy (Figure 4): given
// the current view direction, determine the containing view set and the
// quadrant of its angular span that the cursor occupies, and return the
// neighboring view sets on that side — the row neighbor, the column
// neighbor, and the diagonal between them. Row neighbors clamp at the
// poles; column neighbors wrap.
//
// The returned slice never includes the current view set, contains no
// duplicates, and is ordered by likelihood (straight neighbors before the
// diagonal).
func (p Params) QuadrantPrefetch(sp geom.Spherical) []ViewSetID {
	row, col := p.LatticeCoords(sp)
	i := int(math.Round(row))
	if i < 0 {
		i = 0
	}
	if i >= p.Rows() {
		i = p.Rows() - 1
	}
	j := int(math.Round(col)) % p.Cols()
	if j < 0 {
		j += p.Cols()
	}
	cur := p.ViewSetOf(i, j)

	// Fractional position of the cursor within the view set's angular span.
	fr := (row - float64(cur.R*p.ViewSetL)) / float64(p.ViewSetL)
	fc := (col - float64(cur.C*p.ViewSetL)) / float64(p.ViewSetL)

	dr := -1
	if fr >= 0.5 {
		dr = 1
	}
	dc := -1
	if fc >= 0.5 {
		dc = 1
	}

	wrapC := func(c int) int {
		c %= p.SetCols()
		if c < 0 {
			c += p.SetCols()
		}
		return c
	}
	var out []ViewSetID
	add := func(r, c int) {
		if r < 0 || r >= p.SetRows() {
			return
		}
		id := ViewSetID{R: r, C: wrapC(c)}
		if id == cur {
			return
		}
		out = append(out, id)
	}
	add(cur.R+dr, cur.C)    // vertical neighbor on the cursor's side
	add(cur.R, cur.C+dc)    // horizontal neighbor on the cursor's side
	add(cur.R+dr, cur.C+dc) // the diagonal between them
	return dedupIDs(out)
}

// StagingOrder returns all view sets ordered by angular distance from the
// cursor direction — the order in which the client agent's aggressive
// prestaging stage copies them to the LAN depot (Figure 5: "ordered by
// proximity to cursor ... updated dynamically as the cursor moves"). Ties
// break in row-major ID order so the ordering is deterministic.
func (p Params) StagingOrder(sp geom.Spherical) []ViewSetID {
	ids := p.AllViewSets()
	dist := make(map[ViewSetID]float64, len(ids))
	for _, id := range ids {
		dist[id] = p.AngularDistToSet(sp, id)
	}
	sort.Slice(ids, func(x, y int) bool {
		a, b := ids[x], ids[y]
		da, db := dist[a], dist[b]
		if da != db {
			return da < db
		}
		if a.R != b.R {
			return a.R < b.R
		}
		return a.C < b.C
	})
	return ids
}
