package lightfield

import (
	"math"
	"testing"

	"lonviz/internal/geom"
)

func TestPaperParams(t *testing.T) {
	p := PaperParams(200)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rows() != 72 || p.Cols() != 144 {
		t.Errorf("lattice = %dx%d, want 72x144", p.Rows(), p.Cols())
	}
	if p.SetRows() != 12 || p.SetCols() != 24 {
		t.Errorf("view sets = %dx%d, want 12x24", p.SetRows(), p.SetCols())
	}
	if p.NumViewSets() != 288 {
		t.Errorf("NumViewSets = %d, want 288", p.NumViewSets())
	}
}

func TestParamsValidate(t *testing.T) {
	base := ScaledParams(15, 3, 16)
	if err := base.Validate(); err != nil {
		t.Fatalf("base params invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero step", func(p *Params) { p.AngularStepDeg = 0 }},
		{"uneven step", func(p *Params) { p.AngularStepDeg = 7 }},
		{"zero L", func(p *Params) { p.ViewSetL = 0 }},
		{"L does not tile", func(p *Params) { p.ViewSetL = 5 }},
		{"zero res", func(p *Params) { p.Res = 0 }},
		{"inner >= outer", func(p *Params) { p.InnerRadius = p.OuterRadius }},
		{"negative inner", func(p *Params) { p.InnerRadius = -1 }},
		{"fov out of range", func(p *Params) { p.FovYDeg = 200 }},
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestPaperScaleDBBytesMatchPaper(t *testing.T) {
	// Figure 7 reports ~1.5 GB at 200^2 and ~14 GB at 600^2 uncompressed.
	if got := float64(PaperParams(200).PaperDBBytes()) / 1e9; got < 1.3 || got > 1.9 {
		t.Errorf("200^2 DB = %.2f GB, paper reports ~1.5", got)
	}
	if got := float64(PaperParams(600).PaperDBBytes()) / 1e9; got < 12 || got > 16 {
		t.Errorf("600^2 DB = %.2f GB, paper reports ~14", got)
	}
}

func TestCameraAnglesRanges(t *testing.T) {
	p := ScaledParams(10, 3, 8)
	for i := 0; i < p.Rows(); i++ {
		th := p.ThetaOf(i)
		if th <= 0 || th >= math.Pi {
			t.Errorf("row %d theta %v touches a pole", i, th)
		}
	}
	for j := 0; j < p.Cols(); j++ {
		ph := p.PhiOf(j)
		if ph < 0 || ph >= 2*math.Pi {
			t.Errorf("col %d phi %v out of range", j, ph)
		}
	}
}

func TestNearestCameraRoundTrip(t *testing.T) {
	p := ScaledParams(10, 3, 8)
	for i := 0; i < p.Rows(); i++ {
		for j := 0; j < p.Cols(); j++ {
			gi, gj := p.NearestCamera(p.CameraAngles(i, j))
			if gi != i || gj != j {
				t.Fatalf("NearestCamera(angles(%d,%d)) = (%d,%d)", i, j, gi, gj)
			}
		}
	}
}

func TestNearestCameraClampsAndWraps(t *testing.T) {
	p := ScaledParams(10, 3, 8)
	// Exactly at the north pole: row clamps to 0.
	i, _ := p.NearestCamera(geom.Spherical{Theta: 0, Phi: 1})
	if i != 0 {
		t.Errorf("pole row = %d", i)
	}
	i, _ = p.NearestCamera(geom.Spherical{Theta: math.Pi, Phi: 1})
	if i != p.Rows()-1 {
		t.Errorf("south pole row = %d", i)
	}
	// Phi just below 2*pi maps near column 0 (wrap).
	_, j := p.NearestCamera(geom.Spherical{Theta: math.Pi / 2, Phi: 2*math.Pi - 1e-9})
	if j != 0 && j != p.Cols()-1 {
		t.Errorf("wrap column = %d", j)
	}
}

func TestCameraOnOuterSphere(t *testing.T) {
	p := ScaledParams(15, 3, 8)
	cam, err := p.Camera(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cam.Eye.Dist(p.Center)-p.OuterRadius) > 1e-9 {
		t.Errorf("camera eye %v not on outer sphere", cam.Eye)
	}
	if _, err := p.Camera(-1, 0); err == nil {
		t.Error("expected error for out-of-range lattice position")
	}
	if _, err := p.Camera(0, p.Cols()); err == nil {
		t.Error("expected error for out-of-range column")
	}
}

func TestSizeAccounting(t *testing.T) {
	p := ScaledParams(15, 3, 10)
	if p.BytesPerView() != 300 {
		t.Errorf("BytesPerView = %d", p.BytesPerView())
	}
	if p.BytesPerViewSet() != 300*9 {
		t.Errorf("BytesPerViewSet = %d", p.BytesPerViewSet())
	}
	if p.UncompressedDBBytes() != 300*int64(p.Rows()*p.Cols()) {
		t.Errorf("UncompressedDBBytes = %d", p.UncompressedDBBytes())
	}
}

func TestFovDefaultCoversInnerSphere(t *testing.T) {
	p := ScaledParams(15, 3, 8)
	want := 2 * math.Asin(p.InnerRadius/p.OuterRadius)
	if math.Abs(p.FovY()-want) > 1e-12 {
		t.Errorf("FovY = %v, want %v", p.FovY(), want)
	}
	p.FovYDeg = 30
	if math.Abs(p.FovY()-geom.Radians(30)) > 1e-12 {
		t.Errorf("explicit FovY = %v", p.FovY())
	}
}

func TestViewSetOfTilesLattice(t *testing.T) {
	p := ScaledParams(10, 6, 8) // 18x36 lattice, 3x6 sets
	counts := make(map[ViewSetID]int)
	for i := 0; i < p.Rows(); i++ {
		for j := 0; j < p.Cols(); j++ {
			id := p.ViewSetOf(i, j)
			if !p.ValidID(id) {
				t.Fatalf("ViewSetOf(%d,%d) = %v invalid", i, j, id)
			}
			counts[id]++
		}
	}
	if len(counts) != p.NumViewSets() {
		t.Fatalf("covered %d view sets, want %d", len(counts), p.NumViewSets())
	}
	for id, n := range counts {
		if n != p.ViewSetL*p.ViewSetL {
			t.Errorf("view set %v has %d cameras, want %d", id, n, p.ViewSetL*p.ViewSetL)
		}
	}
}

func TestNeighborsInterior(t *testing.T) {
	p := ScaledParams(10, 3, 8) // sets: 6 rows x 12 cols
	n := p.Neighbors(ViewSetID{R: 3, C: 5})
	if len(n) != 8 {
		t.Fatalf("interior neighbors = %d, want 8", len(n))
	}
	seen := map[ViewSetID]bool{}
	for _, id := range n {
		if seen[id] {
			t.Fatalf("duplicate neighbor %v", id)
		}
		seen[id] = true
		if id == (ViewSetID{R: 3, C: 5}) {
			t.Fatal("neighbors include self")
		}
	}
}

func TestNeighborsPoleAndWrap(t *testing.T) {
	p := ScaledParams(10, 3, 8)
	// Top row: no row above -> 5 neighbors.
	if n := p.Neighbors(ViewSetID{R: 0, C: 5}); len(n) != 5 {
		t.Errorf("top-row neighbors = %d, want 5", len(n))
	}
	// Column wraps: neighbor of col 0 includes col SetCols-1.
	found := false
	for _, id := range p.Neighbors(ViewSetID{R: 3, C: 0}) {
		if id.C == p.SetCols()-1 {
			found = true
		}
	}
	if !found {
		t.Error("column did not wrap in neighbors")
	}
}

func TestAllViewSetsEnumeration(t *testing.T) {
	p := ScaledParams(15, 3, 8) // 4x8 sets
	ids := p.AllViewSets()
	if len(ids) != p.NumViewSets() {
		t.Fatalf("AllViewSets len = %d", len(ids))
	}
	seen := map[ViewSetID]bool{}
	for _, id := range ids {
		if !p.ValidID(id) || seen[id] {
			t.Fatalf("bad or duplicate id %v", id)
		}
		seen[id] = true
	}
}

func TestSetCenterAngles(t *testing.T) {
	p := ScaledParams(10, 3, 8) // odd L: center camera is exact
	id := ViewSetID{R: 2, C: 4}
	center := p.SetCenterAngles(id)
	ci, cj := id.R*p.ViewSetL+1, id.C*p.ViewSetL+1
	want := p.CameraAngles(ci, cj)
	if math.Abs(center.Theta-want.Theta) > 1e-12 || math.Abs(center.Phi-want.Phi) > 1e-12 {
		t.Errorf("center = %+v, want %+v", center, want)
	}
	// Even L: center between the two middle cameras.
	p2 := ScaledParams(15, 6, 8)
	id2 := ViewSetID{R: 0, C: 0}
	c2 := p2.SetCenterAngles(id2)
	if c2.Theta <= p2.ThetaOf(2) || c2.Theta >= p2.ThetaOf(3) {
		t.Errorf("even-L theta center %v not between middle cameras", c2.Theta)
	}
}
