package lightfield

import (
	"context"
	"testing"

	"lonviz/internal/codec"
)

func TestEncodeDecodeViewSet(t *testing.T) {
	p := smallParams()
	gen, _ := NewProceduralGenerator(p, 17)
	vs, err := gen.GenerateViewSet(context.Background(), ViewSetID{R: 0, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeViewSet(vs, p, codec.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeViewSet(frame, p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(vs) {
		t.Error("encode/decode round trip mismatch")
	}
	if len(frame) >= int(p.BytesPerViewSet()) {
		t.Errorf("compressed frame %d bytes >= raw %d", len(frame), p.BytesPerViewSet())
	}
}

func TestDecodeViewSetRejectsCorruption(t *testing.T) {
	p := smallParams()
	gen, _ := NewProceduralGenerator(p, 17)
	vs, _ := gen.GenerateViewSet(context.Background(), ViewSetID{R: 0, C: 0})
	frame, err := EncodeViewSet(vs, p, codec.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)/2] ^= 0xff
	if _, err := DecodeViewSet(frame, p); err == nil {
		t.Error("corrupted frame decoded without error")
	}
}

// TestCompressionRatioRealistic pins the procedural generator's zlib ratio
// to the paper's reported 5-7x band (section 4.1) at a moderately sized
// view. The band here is generous (3.5-9x) to stay robust across zlib
// versions while still catching generator regressions that would distort
// Figure 7.
func TestCompressionRatioRealistic(t *testing.T) {
	p := ScaledParams(30, 3, 64)
	gen, _ := NewProceduralGenerator(p, 4)
	vs, err := gen.GenerateViewSet(context.Background(), ViewSetID{R: 1, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeViewSet(vs, p, codec.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(p.BytesPerViewSet()) / float64(len(frame))
	if ratio < 3.5 || ratio > 9 {
		t.Errorf("compression ratio %.2f outside the realistic band [3.5, 9]", ratio)
	}
}
