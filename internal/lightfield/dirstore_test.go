package lightfield

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"lonviz/internal/codec"
)

func TestDirStoreRoundTrip(t *testing.T) {
	p := smallParams()
	store, err := NewDirStore(t.TempDir(), p)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := NewProceduralGenerator(p, 3)
	build, err := BuildDatabase(context.Background(), gen, 0)
	if err != nil {
		t.Fatal(err)
	}
	total, err := store.WriteAll(build, codec.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatal("WriteAll wrote nothing")
	}
	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != p.NumViewSets() {
		t.Fatalf("listed %d of %d", len(ids), p.NumViewSets())
	}
	// DirGenerator returns content identical to the original build.
	dg := &DirGenerator{Store: store}
	for _, id := range p.AllViewSets() {
		vs, err := dg.GenerateViewSet(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if !vs.Equal(build.Sets[id]) {
			t.Fatalf("stored view set %v differs from build", id)
		}
	}
}

func TestDirStoreValidation(t *testing.T) {
	p := smallParams()
	if _, err := NewDirStore("", p); err == nil {
		t.Error("empty dir accepted")
	}
	bad := p
	bad.Res = 0
	if _, err := NewDirStore(t.TempDir(), bad); err == nil {
		t.Error("bad params accepted")
	}
	store, _ := NewDirStore(t.TempDir(), p)
	if err := store.WriteFrame(ViewSetID{R: 99, C: 0}, []byte("x")); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := store.ReadFrame(ViewSetID{R: 0, C: 0}); err == nil {
		t.Error("missing frame read succeeded")
	}
	if store.Has(ViewSetID{R: 0, C: 0}) {
		t.Error("Has true for missing frame")
	}
}

func TestFallbackGeneratorWritesThrough(t *testing.T) {
	p := smallParams()
	store, _ := NewDirStore(t.TempDir(), p)
	live, _ := NewProceduralGenerator(p, 9)
	fg := &FallbackGenerator{Store: store, Live: live, Level: codec.DefaultCompression}
	id := ViewSetID{R: 1, C: 2}
	if store.Has(id) {
		t.Fatal("store should start empty")
	}
	vs1, err := fg.GenerateViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !store.Has(id) {
		t.Error("write-through did not happen")
	}
	// Second call serves from disk and matches.
	vs2, err := fg.GenerateViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !vs1.Equal(vs2) {
		t.Error("disk-served view set differs")
	}
}

func TestDirStoreListIgnoresJunk(t *testing.T) {
	p := smallParams()
	dir := t.TempDir()
	store, _ := NewDirStore(dir, p)
	gen, _ := NewProceduralGenerator(p, 1)
	vs, _ := gen.GenerateViewSet(context.Background(), ViewSetID{R: 0, C: 0})
	frame, _ := EncodeViewSet(vs, p, codec.BestSpeed)
	if err := store.WriteFrame(ViewSetID{R: 0, C: 0}, frame); err != nil {
		t.Fatal(err)
	}
	// Junk files that must not confuse List.
	for _, name := range []string{"MANIFEST", "notes.txt", "r99c99.lvz", "rXcY.lvz"} {
		if err := writeJunk(dir, name); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != (ViewSetID{R: 0, C: 0}) {
		t.Errorf("List = %v", ids)
	}
}

func writeJunk(dir, name string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644)
}
