package lightfield

import (
	"io"

	"lonviz/internal/codec"
)

// EncodeViewSet marshals and losslessly compresses a view set for network
// transfer or depot storage — the wire representation used throughout the
// streaming system. level is a codec compression level
// (codec.DefaultCompression when unsure).
func EncodeViewSet(vs *ViewSet, p Params, level int) ([]byte, error) {
	raw, err := vs.Marshal(p)
	if err != nil {
		return nil, err
	}
	return codec.Compress(raw, level)
}

// DecodeViewSet reverses EncodeViewSet, validating the checksum.
func DecodeViewSet(frame []byte, p Params) (*ViewSet, error) {
	raw, err := codec.Decompress(frame)
	if err != nil {
		return nil, err
	}
	return UnmarshalViewSet(raw, p)
}

// DecodeViewSetFrom is DecodeViewSet over an incrementally arriving
// frame: inflation proceeds as r delivers bytes, so a reader backed by an
// in-flight download overlaps decompression with communication.
func DecodeViewSetFrom(r io.Reader, p Params) (*ViewSet, error) {
	raw, err := codec.DecompressFrom(r)
	if err != nil {
		return nil, err
	}
	return UnmarshalViewSet(raw, p)
}
