package lightfield

import "lonviz/internal/codec"

// EncodeViewSet marshals and losslessly compresses a view set for network
// transfer or depot storage — the wire representation used throughout the
// streaming system. level is a codec compression level
// (codec.DefaultCompression when unsure).
func EncodeViewSet(vs *ViewSet, p Params, level int) ([]byte, error) {
	raw, err := vs.Marshal(p)
	if err != nil {
		return nil, err
	}
	return codec.Compress(raw, level)
}

// DecodeViewSet reverses EncodeViewSet, validating the checksum.
func DecodeViewSet(frame []byte, p Params) (*ViewSet, error) {
	raw, err := codec.Decompress(frame)
	if err != nil {
		return nil, err
	}
	return UnmarshalViewSet(raw, p)
}
