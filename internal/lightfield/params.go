// Package lightfield implements the paper's primary contribution: a light
// field database (LFD) with spherical two-sphere parameterization, organized
// into view sets for network transfer, plus generation (sampling a volume
// renderer over a camera lattice) and client-side novel-view rendering by
// 4-D table lookup and interpolation.
//
// Parameterization (paper section 3.2): two concentric spheres surround the
// volume. Any viewing ray that can see the volume pierces both spheres; its
// intersection with the outer sphere gives the camera-lattice coordinate
// (u,v) and its intersection with the inner (focal) sphere gives (s,t). The
// camera lattice of Rows x Cols sample views sits on the outer sphere at
// AngularStep degree intervals; blocks of L x L adjacent sample views form a
// view set — the unit of compression and transmission.
package lightfield

import (
	"fmt"
	"math"

	"lonviz/internal/geom"
)

// Params fully describes a light field database's geometry.
type Params struct {
	// AngularStepDeg is the lattice spacing in degrees in both angular
	// directions. The paper uses 2.5.
	AngularStepDeg float64
	// ViewSetL is the side length l of a view set block. The paper uses 6,
	// so a view set spans 15 degrees.
	ViewSetL int
	// Res is the pixel resolution r of each (square) sample view.
	Res int
	// InnerRadius and OuterRadius are the focal and camera sphere radii.
	InnerRadius, OuterRadius float64
	// Center is the common center of both spheres.
	Center geom.Vec3
	// FovYDeg is the sample cameras' vertical field of view in degrees.
	// Zero means "tight": just enough to cover the inner sphere.
	FovYDeg float64
}

// PaperParams returns the configuration used in the paper's experiments at
// the given sample-view resolution: a 2.5 degree lattice (72 x 144 cameras),
// view sets of 6 x 6 (15 degrees), giving 12 x 24 = 288 view sets.
func PaperParams(res int) Params {
	return Params{
		AngularStepDeg: 2.5,
		ViewSetL:       6,
		Res:            res,
		InnerRadius:    0.87, // just outside the unit-cube volume's bounding sphere
		OuterRadius:    2.5,
	}
}

// ScaledParams returns a reduced lattice for fast tests and CI-scale
// experiments: step degrees spacing with the same view-set structure.
func ScaledParams(stepDeg float64, l, res int) Params {
	p := PaperParams(res)
	p.AngularStepDeg = stepDeg
	p.ViewSetL = l
	return p
}

// Validate checks structural invariants and returns a descriptive error on
// the first violation.
func (p Params) Validate() error {
	if p.AngularStepDeg <= 0 {
		return fmt.Errorf("lightfield: non-positive angular step %v", p.AngularStepDeg)
	}
	rows := 180 / p.AngularStepDeg
	cols := 360 / p.AngularStepDeg
	if rows != math.Trunc(rows) || cols != math.Trunc(cols) {
		return fmt.Errorf("lightfield: angular step %v does not evenly divide the sphere", p.AngularStepDeg)
	}
	if p.ViewSetL <= 0 {
		return fmt.Errorf("lightfield: non-positive view set size %d", p.ViewSetL)
	}
	if int(rows)%p.ViewSetL != 0 || int(cols)%p.ViewSetL != 0 {
		return fmt.Errorf("lightfield: view set size %d does not tile the %dx%d lattice",
			p.ViewSetL, int(rows), int(cols))
	}
	if p.Res <= 0 {
		return fmt.Errorf("lightfield: non-positive view resolution %d", p.Res)
	}
	if p.InnerRadius <= 0 || p.OuterRadius <= p.InnerRadius {
		return fmt.Errorf("lightfield: need 0 < inner (%v) < outer (%v) radius", p.InnerRadius, p.OuterRadius)
	}
	if p.FovYDeg < 0 || p.FovYDeg >= 180 {
		return fmt.Errorf("lightfield: field of view %v out of range", p.FovYDeg)
	}
	return nil
}

// Rows returns the number of lattice rows (theta direction, covering 180
// degrees).
func (p Params) Rows() int { return int(180 / p.AngularStepDeg) }

// Cols returns the number of lattice columns (phi direction, covering 360
// degrees).
func (p Params) Cols() int { return int(360 / p.AngularStepDeg) }

// SetRows returns the number of view set rows.
func (p Params) SetRows() int { return p.Rows() / p.ViewSetL }

// SetCols returns the number of view set columns.
func (p Params) SetCols() int { return p.Cols() / p.ViewSetL }

// NumViewSets returns the total number of view sets in the database.
func (p Params) NumViewSets() int { return p.SetRows() * p.SetCols() }

// FovY returns the sample-camera vertical field of view in radians,
// defaulting to the tightest view that covers the whole inner sphere.
func (p Params) FovY() float64 {
	if p.FovYDeg > 0 {
		return geom.Radians(p.FovYDeg)
	}
	return 2 * math.Asin(p.InnerRadius/p.OuterRadius)
}

// InnerSphere returns the focal sphere.
func (p Params) InnerSphere() geom.Sphere {
	return geom.Sphere{Center: p.Center, Radius: p.InnerRadius}
}

// OuterSphere returns the camera sphere.
func (p Params) OuterSphere() geom.Sphere {
	return geom.Sphere{Center: p.Center, Radius: p.OuterRadius}
}

// ThetaOf returns the colatitude (radians) of lattice row i. Rows are
// cell-centered so no camera sits exactly on a pole.
func (p Params) ThetaOf(i int) float64 {
	return (float64(i) + 0.5) * math.Pi / float64(p.Rows())
}

// PhiOf returns the longitude (radians) of lattice column j.
func (p Params) PhiOf(j int) float64 {
	return (float64(j) + 0.5) * 2 * math.Pi / float64(p.Cols())
}

// CameraAngles returns the spherical angles of the sample camera at lattice
// position (i, j).
func (p Params) CameraAngles(i, j int) geom.Spherical {
	return geom.Spherical{Theta: p.ThetaOf(i), Phi: p.PhiOf(j)}
}

// LatticeCoords returns continuous lattice coordinates (row, col) for a
// direction given in spherical angles; integer values fall on camera
// positions. col wraps modulo Cols.
func (p Params) LatticeCoords(sp geom.Spherical) (row, col float64) {
	row = sp.Theta/math.Pi*float64(p.Rows()) - 0.5
	col = sp.Phi/(2*math.Pi)*float64(p.Cols()) - 0.5
	if col < 0 {
		col += float64(p.Cols())
	}
	return row, col
}

// NearestCamera returns the lattice indices of the sample camera closest to
// the given direction. Row clamps at the poles, column wraps.
func (p Params) NearestCamera(sp geom.Spherical) (i, j int) {
	row, col := p.LatticeCoords(sp)
	i = int(math.Round(row))
	if i < 0 {
		i = 0
	}
	if i >= p.Rows() {
		i = p.Rows() - 1
	}
	j = int(math.Round(col)) % p.Cols()
	if j < 0 {
		j += p.Cols()
	}
	return i, j
}

// Camera builds the sample camera at lattice position (i, j), sitting on
// the outer sphere and looking at the center.
func (p Params) Camera(i, j int) (*geom.Camera, error) {
	if i < 0 || i >= p.Rows() || j < 0 || j >= p.Cols() {
		return nil, fmt.Errorf("lightfield: lattice position (%d,%d) outside %dx%d", i, j, p.Rows(), p.Cols())
	}
	return geom.OrbitCamera(p.Center, p.OuterRadius, p.CameraAngles(i, j), p.FovY(), p.Res)
}

// BytesPerView returns the uncompressed size of one sample view (RGB).
func (p Params) BytesPerView() int64 { return int64(3 * p.Res * p.Res) }

// BytesPerViewSet returns the uncompressed pixel payload of one view set.
func (p Params) BytesPerViewSet() int64 {
	return p.BytesPerView() * int64(p.ViewSetL*p.ViewSetL)
}

// UncompressedDBBytes returns the uncompressed size of the whole database's
// pixel payload.
func (p Params) UncompressedDBBytes() int64 {
	return p.BytesPerView() * int64(p.Rows()*p.Cols())
}

// PaperDBBytes reports the database size using the paper's 4 bytes/pixel
// accounting (their reported 1.5 GB at 200^2 up to 14 GB at 600^2 matches
// RGBA storage); used by the Figure 7 analytic series.
func (p Params) PaperDBBytes() int64 {
	return int64(4*p.Res*p.Res) * int64(p.Rows()*p.Cols())
}
