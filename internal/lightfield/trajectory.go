package lightfield

import (
	"math"
	"sync"

	"lonviz/internal/geom"
)

// TrajectoryPredictor extrapolates the cursor's motion on the view sphere
// and names the view sets the cursor is about to enter, so the client
// agent can prefetch along the predicted path instead of the static
// quadrant (BigDataViewer's demand-shaped fetching applied to the paper's
// view-sphere browsing). Velocity is the per-sample angle delta — no wall
// clock is consulted, so a given cursor path always yields the same
// prediction sequence (determinism the tests pin down).
type TrajectoryPredictor struct {
	p         Params
	lookahead int

	mu           sync.Mutex
	prev         geom.Spherical
	havePrev     bool
	dTheta, dPhi float64
	haveVel      bool
}

// NewTrajectoryPredictor builds a predictor extrapolating lookahead
// velocity steps ahead (default 3 when non-positive).
func NewTrajectoryPredictor(p Params, lookahead int) *TrajectoryPredictor {
	if lookahead <= 0 {
		lookahead = 3
	}
	return &TrajectoryPredictor{p: p, lookahead: lookahead}
}

// Advance records one cursor sample and returns the predicted view sets
// along the extrapolated path, nearest first, deduplicated, excluding the
// set the cursor is currently in. A cursor with no velocity yet (first
// sample, or two identical samples) predicts nothing — callers keep their
// static fallback policy for that case.
func (t *TrajectoryPredictor) Advance(sp geom.Spherical) []ViewSetID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.havePrev {
		t.dTheta = sp.Theta - t.prev.Theta
		t.dPhi = wrapDeltaPhi(sp.Phi - t.prev.Phi)
		t.haveVel = true
	}
	t.prev = sp
	t.havePrev = true
	if !t.haveVel || (t.dTheta == 0 && t.dPhi == 0) {
		return nil
	}
	ci, cj := t.p.NearestCamera(sp)
	cur := t.p.ViewSetOf(ci, cj)
	theta, phi := sp.Theta, sp.Phi
	var out []ViewSetID
	for k := 0; k < t.lookahead; k++ {
		theta += t.dTheta
		phi += t.dPhi
		rt, rp := reflectSphere(theta, phi)
		i, j := t.p.NearestCamera(geom.Spherical{Theta: rt, Phi: rp})
		id := t.p.ViewSetOf(i, j)
		if id != cur && t.p.ValidID(id) {
			out = append(out, id)
		}
	}
	return dedupIDs(out)
}

// wrapDeltaPhi maps an azimuth delta into (-π, π] so a cursor crossing
// the φ=0 seam reads as a small step, not a near-full revolution.
func wrapDeltaPhi(d float64) float64 {
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// reflectSphere folds an extrapolated (θ, φ) back onto the sphere: a path
// crossing a pole continues down the far side (θ reflects, φ gains π),
// and φ wraps into [0, 2π).
func reflectSphere(theta, phi float64) (float64, float64) {
	for theta < 0 || theta > math.Pi {
		if theta < 0 {
			theta = -theta
		} else {
			theta = 2*math.Pi - theta
		}
		phi += math.Pi
	}
	phi = math.Mod(phi, 2*math.Pi)
	if phi < 0 {
		phi += 2 * math.Pi
	}
	return theta, phi
}
