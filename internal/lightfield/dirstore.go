package lightfield

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DirStore reads and writes a generated database as one compressed frame
// file per view set ("rRRcCC.lvz") plus a MANIFEST — the on-disk layout
// produced by cmd/lfgen. A server agent can serve a pre-generated database
// through DirGenerator without re-rendering anything, separating the
// paper's offline cluster generation step from online publication.
type DirStore struct {
	Dir string
	P   Params
}

// NewDirStore validates the geometry and ensures the directory exists.
func NewDirStore(dir string, p Params) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("lightfield: empty store directory")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lightfield: creating store: %w", err)
	}
	return &DirStore{Dir: dir, P: p}, nil
}

func (s *DirStore) path(id ViewSetID) string {
	return filepath.Join(s.Dir, id.String()+".lvz")
}

// WriteFrame stores one view set's compressed frame.
func (s *DirStore) WriteFrame(id ViewSetID, frame []byte) error {
	if !s.P.ValidID(id) {
		return fmt.Errorf("lightfield: view set %v outside database", id)
	}
	return os.WriteFile(s.path(id), frame, 0o644)
}

// ReadFrame loads one view set's compressed frame.
func (s *DirStore) ReadFrame(id ViewSetID) ([]byte, error) {
	if !s.P.ValidID(id) {
		return nil, fmt.Errorf("lightfield: view set %v outside database", id)
	}
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("lightfield: reading frame %v: %w", id, err)
	}
	return data, nil
}

// Has reports whether the frame file for id exists.
func (s *DirStore) Has(id ViewSetID) bool {
	_, err := os.Stat(s.path(id))
	return err == nil
}

// List returns the IDs of all stored frames.
func (s *DirStore) List() ([]ViewSetID, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, err
	}
	var out []ViewSetID
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".lvz") {
			continue
		}
		var r, c int
		if _, err := fmt.Sscanf(strings.TrimSuffix(name, ".lvz"), "r%dc%d", &r, &c); err != nil {
			continue
		}
		id := ViewSetID{R: r, C: c}
		if s.P.ValidID(id) {
			out = append(out, id)
		}
	}
	return out, nil
}

// WriteAll encodes and stores a full in-memory build.
func (s *DirStore) WriteAll(build *BuildResult, level int) (int64, error) {
	var total int64
	for id, vs := range build.Sets {
		frame, err := EncodeViewSet(vs, s.P, level)
		if err != nil {
			return total, err
		}
		if err := s.WriteFrame(id, frame); err != nil {
			return total, err
		}
		total += int64(len(frame))
	}
	return total, nil
}

// DirGenerator adapts a DirStore to the Generator interface: GenerateViewSet
// decodes the stored frame instead of rendering. Misses surface as errors,
// so a server agent backed by it serves exactly the pre-generated database.
type DirGenerator struct {
	Store *DirStore
}

// Params implements Generator.
func (g *DirGenerator) Params() Params { return g.Store.P }

// GenerateViewSet implements Generator by loading from disk.
func (g *DirGenerator) GenerateViewSet(ctx context.Context, id ViewSetID) (*ViewSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	frame, err := g.Store.ReadFrame(id)
	if err != nil {
		return nil, err
	}
	return DecodeViewSet(frame, g.Store.P)
}

// FallbackGenerator serves from a store when possible and falls back to a
// live generator for view sets not yet on disk, writing them through — the
// paper's mixed mode where most view sets are precomputed offline but
// close-up requests render at run time.
type FallbackGenerator struct {
	Store *DirStore
	Live  Generator
	// Level is the codec level for write-through (codec default if 0 is
	// passed to EncodeViewSet via -1 semantics; use codec.DefaultCompression).
	Level int
}

// Params implements Generator.
func (g *FallbackGenerator) Params() Params { return g.Store.P }

// GenerateViewSet implements Generator with store-first semantics.
func (g *FallbackGenerator) GenerateViewSet(ctx context.Context, id ViewSetID) (*ViewSet, error) {
	if g.Store.Has(id) {
		return (&DirGenerator{Store: g.Store}).GenerateViewSet(ctx, id)
	}
	vs, err := g.Live.GenerateViewSet(ctx, id)
	if err != nil {
		return nil, err
	}
	frame, err := EncodeViewSet(vs, g.Store.P, g.Level)
	if err != nil {
		return nil, err
	}
	if err := g.Store.WriteFrame(id, frame); err != nil {
		return nil, err
	}
	return vs, nil
}
