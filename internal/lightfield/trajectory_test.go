package lightfield

import (
	"math"
	"reflect"
	"testing"

	"lonviz/internal/geom"
)

// trajParams is a small lattice (18x36 cameras, 6x12 view sets) used by
// the predictor tests.
func trajParams(t *testing.T) Params {
	t.Helper()
	p := ScaledParams(10, 3, 16)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrajectoryZeroVelocity(t *testing.T) {
	p := trajParams(t)
	tp := NewTrajectoryPredictor(p, 3)
	sp := geom.Spherical{Theta: math.Pi / 2, Phi: 1.0}
	if got := tp.Advance(sp); got != nil {
		t.Fatalf("first sample (no velocity yet) predicted %v, want nil", got)
	}
	if got := tp.Advance(sp); got != nil {
		t.Fatalf("still cursor predicted %v, want nil", got)
	}
	// Movement resumes prediction; stopping again silences it.
	moved := geom.Spherical{Theta: math.Pi / 2, Phi: 1.4}
	if got := tp.Advance(moved); len(got) == 0 {
		t.Fatal("moving cursor predicted nothing")
	}
	if got := tp.Advance(moved); got != nil {
		t.Fatalf("re-stopped cursor predicted %v, want nil", got)
	}
}

func TestTrajectoryFollowsMotion(t *testing.T) {
	p := trajParams(t)
	tp := NewTrajectoryPredictor(p, 3)
	// Eastward along the equator: predictions must sit east of the cursor's
	// current view set, not behind it.
	tp.Advance(geom.Spherical{Theta: math.Pi / 2, Phi: 0.3})
	preds := tp.Advance(geom.Spherical{Theta: math.Pi / 2, Phi: 0.5})
	if len(preds) == 0 {
		t.Fatal("eastward motion predicted nothing")
	}
	ci, cj := p.NearestCamera(geom.Spherical{Theta: math.Pi / 2, Phi: 0.5})
	cur := p.ViewSetOf(ci, cj)
	for _, id := range preds {
		if !p.ValidID(id) {
			t.Fatalf("prediction %v outside database", id)
		}
		if id == cur {
			t.Fatalf("prediction %v is the current set", id)
		}
		if id.C <= cur.C {
			t.Fatalf("eastward motion predicted westward/current set %v (current %v)", id, cur)
		}
	}
}

func TestTrajectoryDirectionReversal(t *testing.T) {
	p := trajParams(t)
	tp := NewTrajectoryPredictor(p, 3)
	// East first...
	tp.Advance(geom.Spherical{Theta: math.Pi / 2, Phi: 1.0})
	east := tp.Advance(geom.Spherical{Theta: math.Pi / 2, Phi: 1.2})
	// ...then reverse west. The prediction set must flip sides.
	west := tp.Advance(geom.Spherical{Theta: math.Pi / 2, Phi: 1.0})
	if len(east) == 0 || len(west) == 0 {
		t.Fatalf("expected predictions both ways, got east=%v west=%v", east, west)
	}
	ci, cj := p.NearestCamera(geom.Spherical{Theta: math.Pi / 2, Phi: 1.0})
	cur := p.ViewSetOf(ci, cj)
	for _, id := range west {
		if id.C >= cur.C && id.C < cur.C+p.SetCols()/2 {
			t.Fatalf("westward motion predicted eastward set %v (current %v)", id, cur)
		}
	}
	for _, e := range east {
		for _, w := range west {
			if e == w {
				t.Fatalf("prediction %v survived a direction reversal", e)
			}
		}
	}
}

func TestTrajectoryPoleWraparound(t *testing.T) {
	p := trajParams(t)
	tp := NewTrajectoryPredictor(p, 3)
	// Straight over the north pole: the extrapolated path crosses θ=0 and
	// must continue down the far side (φ shifted by π), never producing an
	// out-of-range view set.
	tp.Advance(geom.Spherical{Theta: 0.35, Phi: 0.5})
	preds := tp.Advance(geom.Spherical{Theta: 0.15, Phi: 0.5})
	if len(preds) == 0 {
		t.Fatal("pole-crossing motion predicted nothing")
	}
	farSide := false
	ci, cj := p.NearestCamera(geom.Spherical{Theta: 0.15, Phi: 0.5})
	cur := p.ViewSetOf(ci, cj)
	for _, id := range preds {
		if !p.ValidID(id) {
			t.Fatalf("pole crossing predicted out-of-range set %v", id)
		}
		if id.C == (cur.C+p.SetCols()/2)%p.SetCols() {
			farSide = true
		}
	}
	if !farSide {
		t.Fatalf("pole crossing never reached the far side of the sphere: %v (current %v)", preds, cur)
	}
}

func TestTrajectoryDeterminism(t *testing.T) {
	p := trajParams(t)
	path := []geom.Spherical{
		{Theta: 1.2, Phi: 0.1},
		{Theta: 1.25, Phi: 0.5},
		{Theta: 1.3, Phi: 0.9},
		{Theta: 1.2, Phi: 1.4},
		{Theta: 0.9, Phi: 1.4},
		{Theta: 0.4, Phi: 2.0},
	}
	a, b := NewTrajectoryPredictor(p, 3), NewTrajectoryPredictor(p, 3)
	for i, sp := range path {
		pa, pb := a.Advance(sp), b.Advance(sp)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("step %d: same path diverged: %v vs %v", i, pa, pb)
		}
	}
}
