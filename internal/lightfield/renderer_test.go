package lightfield

import (
	"context"
	"math"
	"testing"

	"lonviz/internal/geom"
)

// buildSmallDB builds a complete procedural database for renderer tests.
func buildSmallDB(t *testing.T, p Params) MapProvider {
	t.Helper()
	gen, err := NewProceduralGenerator(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildDatabase(context.Background(), gen, 0)
	if err != nil {
		t.Fatal(err)
	}
	return MapProvider(res.Sets)
}

func TestNewRendererValidation(t *testing.T) {
	p := smallParams()
	if _, err := NewRenderer(p, nil); err == nil {
		t.Error("expected error for nil provider")
	}
	bad := p
	bad.Res = 0
	if _, err := NewRenderer(bad, MapProvider{}); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestRenderViewFromFullDB(t *testing.T) {
	p := smallParams()
	prov := buildSmallDB(t, p)
	r, err := NewRenderer(p, prov)
	if err != nil {
		t.Fatal(err)
	}
	sp := geom.Spherical{Theta: math.Pi / 2, Phi: 1.0}
	cam, err := p.ViewerCamera(sp, p.OuterRadius*1.5, 48)
	if err != nil {
		t.Fatal(err)
	}
	im, stats, err := r.RenderView(cam)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pixels != 48*48 {
		t.Errorf("Pixels = %d", stats.Pixels)
	}
	if stats.MissingSet != 0 {
		t.Errorf("MissingSet = %d with a full DB", stats.MissingSet)
	}
	if stats.Filled == 0 {
		t.Error("no pixels filled")
	}
	if stats.Background == 0 {
		t.Error("expected some background pixels around the silhouette")
	}
	// Center pixel sees the volume.
	if r8, g8, b8 := im.At(24, 24); r8 == 0 && g8 == 0 && b8 == 0 {
		t.Error("center pixel black")
	}
}

func TestRenderViewSingleViewSetSupportsItsWindow(t *testing.T) {
	// Paper: "the user console only needs to have the view set that
	// encompasses the current view angle". Rendering from the view set's
	// center direction with only that set plus nothing else must fill the
	// bulk of the image; some boundary pixels may blend into neighbor sets.
	p := smallParams()
	full := buildSmallDB(t, p)
	id := ViewSetID{R: 1, C: 2}
	only := MapProvider{id: full[id]}
	r, err := NewRenderer(p, only)
	if err != nil {
		t.Fatal(err)
	}
	center := p.SetCenterAngles(id)
	cam, err := p.ViewerCamera(center, p.OuterRadius*2, 32)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := r.RenderView(cam)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Filled == 0 {
		t.Fatal("single current view set filled nothing")
	}
	nonBG := stats.Filled + stats.MissingSet
	if nonBG == 0 || float64(stats.Filled)/float64(nonBG) < 0.5 {
		t.Errorf("current view set filled only %d of %d non-background pixels", stats.Filled, nonBG)
	}
}

func TestRenderViewMissingSetsCounted(t *testing.T) {
	p := smallParams()
	r, err := NewRenderer(p, MapProvider{}) // empty provider
	if err != nil {
		t.Fatal(err)
	}
	cam, err := p.ViewerCamera(geom.Spherical{Theta: math.Pi / 2, Phi: 0.3}, p.OuterRadius*1.5, 24)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := r.RenderView(cam)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Filled != 0 {
		t.Errorf("Filled = %d with empty provider", stats.Filled)
	}
	if stats.MissingSet == 0 {
		t.Error("missing sets not counted")
	}
}

func TestNearestVsBlendModes(t *testing.T) {
	p := smallParams()
	prov := buildSmallDB(t, p)
	r, _ := NewRenderer(p, prov)
	cam, _ := p.ViewerCamera(geom.Spherical{Theta: 1.4, Phi: 2.0}, p.OuterRadius*1.7, 24)
	r.Blend = true
	a, _, err := r.RenderView(cam)
	if err != nil {
		t.Fatal(err)
	}
	r.Blend = false
	b, _, err := r.RenderView(cam)
	if err != nil {
		t.Fatal(err)
	}
	// Both render content; they generally differ slightly.
	if a.Equal(b) {
		t.Log("blend and nearest identical (acceptable on tiny DB, but unusual)")
	}
}

func TestCurrentViewSetIDMatchesNearestCamera(t *testing.T) {
	p := smallParams()
	r, _ := NewRenderer(p, MapProvider{})
	for _, sp := range []geom.Spherical{
		{Theta: 0.2, Phi: 0.1},
		{Theta: math.Pi / 2, Phi: math.Pi},
		{Theta: 3.0, Phi: 6.0},
	} {
		i, j := p.NearestCamera(sp)
		if got := r.CurrentViewSetID(sp); got != p.ViewSetOf(i, j) {
			t.Errorf("CurrentViewSetID(%+v) = %v", sp, got)
		}
	}
}

func TestViewerCameraValidation(t *testing.T) {
	p := smallParams()
	if _, err := p.ViewerCamera(geom.Spherical{Theta: 1}, p.OuterRadius*0.5, 16); err == nil {
		t.Error("expected error for viewer inside outer sphere")
	}
}

func TestProjectInvertsPrimaryRay(t *testing.T) {
	p := smallParams()
	cam, err := p.Camera(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, px := range []int{0, 5, p.Res - 1} {
		for _, py := range []int{0, 7, p.Res - 1} {
			ray := cam.PrimaryRay(px, py)
			gx, gy, ok := cam.Project(ray.At(2.0))
			if !ok {
				t.Fatalf("Project failed for pixel (%d,%d)", px, py)
			}
			if math.Abs(gx-float64(px)) > 1e-9 || math.Abs(gy-float64(py)) > 1e-9 {
				t.Fatalf("Project(%d,%d) = (%v,%v)", px, py, gx, gy)
			}
		}
	}
}
