package lightfield

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallParams() Params {
	return ScaledParams(30, 3, 12) // 6x12 lattice, 2x4 sets, 12px views
}

func TestNewViewSetValidation(t *testing.T) {
	if _, err := NewViewSet(ViewSetID{}, 0, 8); err == nil {
		t.Error("expected error for zero L")
	}
	if _, err := NewViewSet(ViewSetID{}, 3, -1); err == nil {
		t.Error("expected error for negative res")
	}
	vs, err := NewViewSet(ViewSetID{R: 1, C: 2}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs.Views) != 9 {
		t.Errorf("views = %d", len(vs.Views))
	}
	for _, v := range vs.Views {
		if v == nil || v.Res != 8 {
			t.Fatal("views not allocated")
		}
	}
}

func TestViewAccessorsAndLatticePos(t *testing.T) {
	vs, _ := NewViewSet(ViewSetID{R: 1, C: 2}, 3, 8)
	if _, err := vs.View(3, 0); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := vs.View(0, -1); err == nil {
		t.Error("expected out-of-range error")
	}
	v, err := vs.View(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != vs.Views[2*3+1] {
		t.Error("View returned wrong image")
	}
	i, j := vs.LatticePos(2, 1)
	if i != 1*3+2 || j != 2*3+1 {
		t.Errorf("LatticePos = (%d,%d)", i, j)
	}
}

func TestViewSetIDString(t *testing.T) {
	if got := (ViewSetID{R: 3, C: 11}).String(); got != "r03c11" {
		t.Errorf("String = %q", got)
	}
}

// fillRandomMasked fills all masked-in pixels with random data and leaves
// masked-out pixels black, as a generator would.
func fillRandomMasked(t *testing.T, vs *ViewSet, p Params, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for a := 0; a < vs.L; a++ {
		for b := 0; b < vs.L; b++ {
			i, j := vs.LatticePos(a, b)
			mask, err := p.ViewMask(i, j)
			if err != nil {
				t.Fatal(err)
			}
			im := vs.Views[a*vs.L+b]
			for idx := 0; idx < vs.Res*vs.Res; idx++ {
				if mask.Get(idx) {
					im.Pix[3*idx] = byte(rng.Intn(256))
					im.Pix[3*idx+1] = byte(rng.Intn(256))
					im.Pix[3*idx+2] = byte(rng.Intn(256))
				}
			}
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := smallParams()
	vs, err := NewViewSet(ViewSetID{R: 1, C: 3}, p.ViewSetL, p.Res)
	if err != nil {
		t.Fatal(err)
	}
	fillRandomMasked(t, vs, p, 99)
	data, err := vs.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalViewSet(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(vs) {
		t.Error("round trip not equal")
	}
}

func TestMarshalSavesMaskedPixels(t *testing.T) {
	p := smallParams()
	vs, _ := NewViewSet(ViewSetID{}, p.ViewSetL, p.Res)
	data, err := vs.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := p.MaskFraction()
	if err != nil {
		t.Fatal(err)
	}
	if frac >= 1 {
		t.Fatalf("mask fraction %v gives no savings", frac)
	}
	raw := int(p.BytesPerViewSet())
	if len(data) >= raw {
		t.Errorf("marshaled %d bytes >= raw %d; occlusion culling not applied", len(data), raw)
	}
	wantPixels := int(float64(raw) * frac)
	if diff := len(data) - wantPixels; diff < 0 || diff > 64 {
		t.Errorf("marshaled %d bytes, expected about %d + small header", len(data), wantPixels)
	}
}

func TestMarshalParamMismatch(t *testing.T) {
	p := smallParams()
	vs, _ := NewViewSet(ViewSetID{}, p.ViewSetL+1, p.Res)
	if _, err := vs.Marshal(p); err == nil {
		t.Error("expected error for L mismatch")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := smallParams()
	vs, _ := NewViewSet(ViewSetID{R: 0, C: 1}, p.ViewSetL, p.Res)
	data, err := vs.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalViewSet(data[:5], p); err == nil {
		t.Error("expected error for truncated payload")
	}
	if _, err := UnmarshalViewSet(data[:len(data)-7], p); err == nil {
		t.Error("expected error for truncated pixels")
	}
	if _, err := UnmarshalViewSet(append(append([]byte{}, data...), 0xAA), p); err == nil {
		t.Error("expected error for trailing bytes")
	}
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := UnmarshalViewSet(bad, p); err == nil {
		t.Error("expected error for bad magic")
	}
	// Mismatched params on decode.
	other := p
	other.Res = p.Res + 4
	if _, err := UnmarshalViewSet(data, other); err == nil {
		t.Error("expected error for params mismatch on decode")
	}
	// Out-of-range ID in the header.
	bad2 := append([]byte{}, data...)
	bad2[len(viewSetMagic)] = 0xFF // R = huge
	if _, err := UnmarshalViewSet(bad2, p); err == nil {
		t.Error("expected error for out-of-range view set ID")
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	p := ScaledParams(45, 2, 6) // tiny: 4x8 lattice, 2x4 sets
	f := func(seed int64, rIdx, cIdx uint8) bool {
		id := ViewSetID{R: int(rIdx) % p.SetRows(), C: int(cIdx) % p.SetCols()}
		vs, err := NewViewSet(id, p.ViewSetL, p.Res)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for a := 0; a < vs.L; a++ {
			for b := 0; b < vs.L; b++ {
				i, j := vs.LatticePos(a, b)
				mask, err := p.ViewMask(i, j)
				if err != nil {
					return false
				}
				im := vs.Views[a*vs.L+b]
				for idx := 0; idx < vs.Res*vs.Res; idx++ {
					if mask.Get(idx) {
						im.Pix[3*idx] = byte(rng.Intn(256))
					}
				}
			}
		}
		data, err := vs.Marshal(p)
		if err != nil {
			return false
		}
		got, err := UnmarshalViewSet(data, p)
		return err == nil && got.Equal(vs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBitmask(t *testing.T) {
	m := NewBitmask(130)
	if m.Len() != 130 || m.Count() != 0 {
		t.Fatalf("fresh mask len=%d count=%d", m.Len(), m.Count())
	}
	m.Set(0, true)
	m.Set(64, true)
	m.Set(129, true)
	if !m.Get(0) || !m.Get(64) || !m.Get(129) || m.Get(1) {
		t.Error("Get/Set mismatch")
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d", m.Count())
	}
	m.Set(64, false)
	if m.Get(64) || m.Count() != 2 {
		t.Error("clearing bit failed")
	}
}

func TestViewMaskGeometry(t *testing.T) {
	p := smallParams()
	m, err := p.ViewMask(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With the default tight FOV the projected inner sphere touches the
	// frame, so the center pixel is inside and the corner outside.
	c := p.Res / 2
	if !m.Get(c*p.Res + c) {
		t.Error("center pixel masked out")
	}
	if m.Get(0) {
		t.Error("corner pixel masked in")
	}
	// Same mask for every lattice position (rotational symmetry).
	m2, err := p.ViewMask(p.Rows()-1, p.Cols()-1)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Count() != m.Count() {
		t.Error("mask differs across lattice positions")
	}
}

func TestGeneratedViewSetRespectsMask(t *testing.T) {
	// The procedural generator must leave masked-out pixels background, or
	// Marshal would silently drop content.
	p := smallParams()
	gen, err := NewProceduralGenerator(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := gen.GenerateViewSet(context.Background(), ViewSetID{R: 1, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := vs.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalViewSet(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(vs) {
		t.Error("procedural view set not mask-clean: marshal round trip lost pixels")
	}
}
