package lightfield

import (
	"context"
	"testing"

	"lonviz/internal/volume"
)

func TestProceduralGeneratorDeterministic(t *testing.T) {
	p := smallParams()
	gen, err := NewProceduralGenerator(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := gen.GenerateViewSet(context.Background(), ViewSetID{R: 1, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.GenerateViewSet(context.Background(), ViewSetID{R: 1, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("procedural generation not deterministic")
	}
	// Different seed gives different content.
	gen2, _ := NewProceduralGenerator(p, 43)
	c, err := gen2.GenerateViewSet(context.Background(), ViewSetID{R: 1, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different seeds produced identical view sets")
	}
}

func TestProceduralGeneratorRejectsBadID(t *testing.T) {
	gen, _ := NewProceduralGenerator(smallParams(), 1)
	if _, err := gen.GenerateViewSet(context.Background(), ViewSetID{R: 99, C: 0}); err == nil {
		t.Error("expected error for out-of-range view set")
	}
}

func TestProceduralViewCoherence(t *testing.T) {
	// Adjacent sample views within a view set must be similar (view
	// coherence is what view sets exploit); distant views must differ.
	p := smallParams()
	gen, _ := NewProceduralGenerator(p, 5)
	vs, err := gen.GenerateViewSet(context.Background(), ViewSetID{R: 1, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := vs.View(0, 0)
	v1, _ := vs.View(0, 1)
	v2, _ := vs.View(vs.L-1, vs.L-1)
	dAdj := meanAbsDiff(v0.Pix, v1.Pix)
	dFar := meanAbsDiff(v0.Pix, v2.Pix)
	if dAdj >= dFar {
		t.Errorf("adjacent views (diff %v) should be closer than far views (diff %v)", dAdj, dFar)
	}
}

func meanAbsDiff(a, b []byte) float64 {
	var sum float64
	for i := range a {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return sum / float64(len(a))
}

func TestRaycastGeneratorEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("raycast generation is slow")
	}
	p := ScaledParams(45, 2, 10) // tiny DB
	vol, err := volume.NegHip(16)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewRaycastGenerator(p, vol, volume.DefaultNegHipTF())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := gen.GenerateViewSet(context.Background(), ViewSetID{R: 1, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rendered content must survive the masked marshal round trip: all
	// non-background pixels live inside the occlusion mask.
	data, err := vs.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalViewSet(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(vs) {
		t.Error("raycast view set lost pixels under occlusion mask")
	}
	// At least one pixel is non-black (the volume is visible).
	nonBlack := 0
	for _, v := range vs.Views {
		for _, px := range v.Pix {
			if px != 0 {
				nonBlack++
			}
		}
	}
	if nonBlack == 0 {
		t.Error("raycast generator produced all-black view set")
	}
}

func TestRaycastGeneratorRejectsOversizeVolume(t *testing.T) {
	p := ScaledParams(45, 2, 8)
	p.InnerRadius = 0.3 // smaller than the unit cube's bounding sphere
	vol, _ := volume.New(8, 8, 8)
	if _, err := NewRaycastGenerator(p, vol, volume.DefaultNegHipTF()); err == nil {
		t.Error("expected error when volume exceeds inner sphere")
	}
}

func TestBuildDatabaseComplete(t *testing.T) {
	p := ScaledParams(45, 2, 6) // 2x4 sets = 8
	gen, _ := NewProceduralGenerator(p, 3)
	res, err := BuildDatabase(context.Background(), gen, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != p.NumViewSets() {
		t.Fatalf("built %d sets, want %d", len(res.Sets), p.NumViewSets())
	}
	for _, id := range p.AllViewSets() {
		vs, ok := res.Sets[id]
		if !ok || vs.ID != id {
			t.Fatalf("missing or mislabeled view set %v", id)
		}
	}
	if res.UncompressedBytes != p.BytesPerViewSet()*int64(p.NumViewSets()) {
		t.Errorf("UncompressedBytes = %d", res.UncompressedBytes)
	}
}

func TestBuildDatabaseParallelMatchesSerial(t *testing.T) {
	p := ScaledParams(45, 2, 6)
	gen, _ := NewProceduralGenerator(p, 11)
	serial, err := BuildDatabase(context.Background(), gen, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildDatabase(context.Background(), gen, 8)
	if err != nil {
		t.Fatal(err)
	}
	for id, vs := range serial.Sets {
		if !parallel.Sets[id].Equal(vs) {
			t.Fatalf("view set %v differs between worker counts", id)
		}
	}
}

func TestBuildDatabaseCancellation(t *testing.T) {
	p := ScaledParams(15, 3, 16) // larger so cancellation lands mid-build
	gen, _ := NewProceduralGenerator(p, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildDatabase(ctx, gen, 2); err == nil {
		t.Error("expected error from canceled build")
	}
}
