package lightfield

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"lonviz/internal/geom"
	"lonviz/internal/render"
)

// Provider supplies view sets to the client-side renderer. The simplest
// provider is a map of everything (local browsing); the streaming client
// wraps its agent cache in this interface.
type Provider interface {
	// ViewSet returns the view set with the given ID if locally available.
	ViewSet(id ViewSetID) (*ViewSet, bool)
}

// MapProvider is an in-memory Provider.
type MapProvider map[ViewSetID]*ViewSet

// ViewSet implements Provider.
func (m MapProvider) ViewSet(id ViewSetID) (*ViewSet, bool) {
	vs, ok := m[id]
	return vs, ok
}

// RenderStats reports what happened during one novel-view render.
type RenderStats struct {
	Pixels     int // total pixels rendered
	Background int // rays that missed the focal sphere (guaranteed empty)
	Filled     int // pixels reconstructed from sample views
	MissingSet int // pixels that needed an unavailable view set
}

// Renderer reconstructs novel views from a light field database by 4-D
// table lookup (paper section 3.1): each display ray is mapped to
// (s,t,u,v), the nearest sample cameras on the (u,v) sphere are found, the
// ray's focal-sphere point (s,t) is projected into each, and the results
// are blended — quadrilinear interpolation overall. No volume data and no
// graphics acceleration are touched at view time; this is why the paper's
// client runs on PDAs.
type Renderer struct {
	P    Params
	Prov Provider
	// Blend selects camera blending: true (default via NewRenderer) blends
	// the 4 nearest sample cameras; false uses nearest-camera lookup only.
	Blend bool

	// cams caches sample cameras per lattice index; building a camera per
	// ray would dominate render time.
	camsOnce sync.Once
	cams     []*geom.Camera
	camsErr  error
}

// NewRenderer validates params and returns a blending renderer.
func NewRenderer(p Params, prov Provider) (*Renderer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if prov == nil {
		return nil, fmt.Errorf("lightfield: nil provider")
	}
	return &Renderer{P: p, Prov: prov, Blend: true}, nil
}

// camera returns the cached sample camera at lattice (i, j).
func (r *Renderer) camera(i, j int) (*geom.Camera, error) {
	r.camsOnce.Do(func() {
		rows, cols := r.P.Rows(), r.P.Cols()
		r.cams = make([]*geom.Camera, rows*cols)
		for ci := 0; ci < rows; ci++ {
			for cj := 0; cj < cols; cj++ {
				cam, err := r.P.Camera(ci, cj)
				if err != nil {
					r.camsErr = err
					return
				}
				r.cams[ci*cols+cj] = cam
			}
		}
	})
	if r.camsErr != nil {
		return nil, r.camsErr
	}
	return r.cams[i*r.P.Cols()+j], nil
}

// CurrentViewSetID returns the view set that supports viewing from
// direction sp — the one containing the nearest sample camera.
func (r *Renderer) CurrentViewSetID(sp geom.Spherical) ViewSetID {
	i, j := r.P.NearestCamera(sp)
	return r.P.ViewSetOf(i, j)
}

// RenderView reconstructs the view seen by cam. The camera should be
// outside the outer sphere looking toward the volume (the paper's external
// browsing regime). Scanlines render in parallel across GOMAXPROCS
// goroutines; lookups touch only immutable data, so no locking is needed.
func (r *Renderer) RenderView(cam *geom.Camera) (*render.Image, RenderStats, error) {
	im, err := render.NewImage(cam.Res)
	if err != nil {
		return nil, RenderStats{}, err
	}
	// Force the camera cache to build once before fan-out.
	if _, err := r.camera(0, 0); err != nil {
		return nil, RenderStats{}, err
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > cam.Res {
		nw = cam.Res
	}
	perWorker := make([]RenderStats, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &perWorker[w]
			var memo providerMemo
			for y := w; y < cam.Res; y += nw {
				for x := 0; x < cam.Res; x++ {
					cr, cg, cb, class := r.lookupRay(cam.PrimaryRayRaw(x, y), &memo)
					switch class {
					case rayBackground:
						st.Background++
					case rayFilled:
						st.Filled++
					case rayMissingSet:
						st.MissingSet++
					}
					im.Set(x, y, cr, cg, cb)
				}
			}
		}(w)
	}
	wg.Wait()
	stats := RenderStats{Pixels: cam.Res * cam.Res}
	for _, st := range perWorker {
		stats.Background += st.Background
		stats.Filled += st.Filled
		stats.MissingSet += st.MissingSet
	}
	return im, stats, nil
}

type rayClass int

const (
	rayBackground rayClass = iota
	rayFilled
	rayMissingSet
)

// providerMemo caches the last provider answer; neighboring pixels almost
// always need the same view set, so this removes a map lookup per tap.
type providerMemo struct {
	id    ViewSetID
	vs    *ViewSet
	ok    bool
	valid bool
}

func (m *providerMemo) get(prov Provider, id ViewSetID) (*ViewSet, bool) {
	if m.valid && m.id == id {
		return m.vs, m.ok
	}
	vs, ok := prov.ViewSet(id)
	m.id, m.vs, m.ok, m.valid = id, vs, ok, true
	return vs, ok
}

// lookupRay maps one display ray through the 4-D database.
func (r *Renderer) lookupRay(ray geom.Ray, memo *providerMemo) (cr, cg, cb byte, class rayClass) {
	inner := r.P.InnerSphere()
	outer := r.P.OuterSphere()

	// (s,t): entry point on the focal sphere. Rays that miss it can never
	// see the volume (same predicate as the storage occlusion mask).
	tn, tf, ok := inner.IntersectRayGeneral(ray)
	if !ok || tf <= 0 {
		return 0, 0, 0, rayBackground
	}
	if tn < 0 {
		tn = 0
	}
	focal := ray.At(tn)

	// (u,v): intersection with the camera sphere on the viewer's side.
	un, uf, ok := outer.IntersectRayGeneral(ray)
	if !ok {
		return 0, 0, 0, rayBackground
	}
	tuv := un
	if tuv < 0 {
		tuv = uf // viewer inside the camera sphere: use the exit point
	}
	if tuv < 0 {
		return 0, 0, 0, rayBackground
	}
	uv := outer.SphericalOf(ray.At(tuv))

	row, col := r.P.LatticeCoords(uv)
	var sumW, sumR, sumG, sumB float64
	missing := false
	taps, nTaps := r.cameraTaps(row, col)
	for _, s := range taps[:nTaps] {
		vsID := r.P.ViewSetOf(s.i, s.j)
		vs, ok := memo.get(r.Prov, vsID)
		if !ok {
			missing = true
			continue
		}
		cam, err := r.camera(s.i, s.j)
		if err != nil {
			continue
		}
		px, py, ok := cam.Project(focal)
		if !ok {
			continue
		}
		if px < 0 || py < 0 || px > float64(r.P.Res-1) || py > float64(r.P.Res-1) {
			continue // focal point outside this sample view's frame
		}
		a := s.i - vs.ID.R*vs.L
		b := s.j - vs.ID.C*vs.L
		view, err := vs.View(a, b)
		if err != nil {
			continue
		}
		var pr, pg, pb float64
		if r.Blend {
			pr, pg, pb = view.SampleBilinear(px, py)
		} else {
			// Pure table lookup: the nearest stored sample (paper 3.1 —
			// "simply a sequence of table lookup operations").
			xr, yr := int(px+0.5), int(py+0.5)
			r8, g8, b8 := view.At(xr, yr)
			pr, pg, pb = float64(r8), float64(g8), float64(b8)
		}
		sumR += s.w * pr
		sumG += s.w * pg
		sumB += s.w * pb
		sumW += s.w
	}
	if sumW == 0 {
		if missing {
			return 0, 0, 0, rayMissingSet
		}
		return 0, 0, 0, rayBackground
	}
	inv := 1 / sumW
	return clampByte(sumR * inv), clampByte(sumG * inv), clampByte(sumB * inv), rayFilled
}

// tap is one sample camera contribution with its bilinear weight.
type tap struct {
	i, j int
	w    float64
}

// cameraTaps returns the sample cameras blended for continuous lattice
// coordinates (row, col). The fixed-size return avoids a per-pixel heap
// allocation on the rendering hot path.
func (r *Renderer) cameraTaps(row, col float64) ([4]tap, int) {
	rows, cols := r.P.Rows(), r.P.Cols()
	clampRow := func(i int) int {
		if i < 0 {
			return 0
		}
		if i >= rows {
			return rows - 1
		}
		return i
	}
	wrapCol := func(j int) int {
		j %= cols
		if j < 0 {
			j += cols
		}
		return j
	}
	var out [4]tap
	if !r.Blend {
		out[0] = tap{i: clampRow(int(math.Round(row))), j: wrapCol(int(math.Round(col))), w: 1}
		return out, 1
	}
	i0 := int(math.Floor(row))
	j0 := int(math.Floor(col))
	ft := row - float64(i0)
	fp := col - float64(j0)
	out[0] = tap{i: clampRow(i0), j: wrapCol(j0), w: (1 - ft) * (1 - fp)}
	out[1] = tap{i: clampRow(i0 + 1), j: wrapCol(j0), w: ft * (1 - fp)}
	out[2] = tap{i: clampRow(i0), j: wrapCol(j0 + 1), w: (1 - ft) * fp}
	out[3] = tap{i: clampRow(i0 + 1), j: wrapCol(j0 + 1), w: ft * fp}
	return out, 4
}

func clampByte(x float64) byte {
	if x <= 0 {
		return 0
	}
	if x >= 255 {
		return 255
	}
	return byte(x + 0.5)
}

// ViewerCamera builds a client camera at distance dist from the database
// center along direction sp, looking at the center — the standard external
// browsing camera.
func (p Params) ViewerCamera(sp geom.Spherical, dist float64, res int) (*geom.Camera, error) {
	if dist <= p.OuterRadius {
		return nil, fmt.Errorf("lightfield: viewer distance %v must exceed outer radius %v", dist, p.OuterRadius)
	}
	return geom.OrbitCamera(p.Center, dist, sp, p.FovY()*p.OuterRadius/dist, res)
}
