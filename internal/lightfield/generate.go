package lightfield

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"lonviz/internal/geom"
	"lonviz/internal/render"
	"lonviz/internal/volume"
)

// Generator produces the sample views of one view set. The server's
// generator renders with the parallel ray caster; tests and
// transfer-focused experiments use the procedural generator, which is
// orders of magnitude faster while preserving realistic sizes and zlib
// compressibility.
type Generator interface {
	// GenerateViewSet renders all L x L sample views of the view set id.
	GenerateViewSet(ctx context.Context, id ViewSetID) (*ViewSet, error)
	// Params returns the database geometry this generator produces.
	Params() Params
}

// RaycastGenerator renders sample views with render.Raycaster — the paper's
// parallel ray-casting generator.
type RaycastGenerator struct {
	P  Params
	RC *render.Raycaster
}

// NewRaycastGenerator wires a volume and transfer function to a database
// geometry. The volume must fit inside the inner sphere; otherwise rays
// outside the occlusion mask could see data and marshaling would lose it.
func NewRaycastGenerator(p Params, vol *volume.Volume, tf *volume.TransferFunction) (*RaycastGenerator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rc, err := render.NewRaycaster(vol, tf)
	if err != nil {
		return nil, err
	}
	bs := vol.Bounds().BoundingSphere()
	if bs.Center.Dist(p.Center)+bs.Radius > p.InnerRadius+1e-9 {
		return nil, fmt.Errorf("lightfield: volume bounding sphere (r=%.3g) exceeds inner sphere (r=%.3g)",
			bs.Radius, p.InnerRadius)
	}
	return &RaycastGenerator{P: p, RC: rc}, nil
}

// Params implements Generator.
func (g *RaycastGenerator) Params() Params { return g.P }

// GenerateViewSet implements Generator.
func (g *RaycastGenerator) GenerateViewSet(ctx context.Context, id ViewSetID) (*ViewSet, error) {
	if !g.P.ValidID(id) {
		return nil, fmt.Errorf("lightfield: view set %v outside database", id)
	}
	vs, err := NewViewSet(id, g.P.ViewSetL, g.P.Res)
	if err != nil {
		return nil, err
	}
	for a := 0; a < vs.L; a++ {
		for b := 0; b < vs.L; b++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			i, j := vs.LatticePos(a, b)
			cam, err := g.P.Camera(i, j)
			if err != nil {
				return nil, err
			}
			im, err := g.RC.Render(ctx, cam)
			if err != nil {
				return nil, err
			}
			vs.Views[a*vs.L+b] = im
		}
	}
	return vs, nil
}

// ProceduralGenerator synthesizes sample views directly from smooth
// analytic functions of the ray geometry plus deterministic detail noise.
// The images look like a rendered blobby dataset, vary smoothly across the
// lattice (view coherence), and compress with zlib at roughly the paper's
// 5-7x ratio, so transfer experiments behave like the real pipeline without
// paying full ray-casting cost.
type ProceduralGenerator struct {
	P Params
	// Detail in [0,1] adds high-frequency content; higher means less
	// compressible. The default lands near the paper's compression ratios.
	Detail float64
	// Seed decorrelates databases generated with the same geometry.
	Seed int64
}

// NewProceduralGenerator validates p and returns a generator with the
// default detail level.
func NewProceduralGenerator(p Params, seed int64) (*ProceduralGenerator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &ProceduralGenerator{P: p, Detail: 0.55, Seed: seed}, nil
}

// Params implements Generator.
func (g *ProceduralGenerator) Params() Params { return g.P }

// GenerateViewSet implements Generator.
func (g *ProceduralGenerator) GenerateViewSet(ctx context.Context, id ViewSetID) (*ViewSet, error) {
	if !g.P.ValidID(id) {
		return nil, fmt.Errorf("lightfield: view set %v outside database", id)
	}
	vs, err := NewViewSet(id, g.P.ViewSetL, g.P.Res)
	if err != nil {
		return nil, err
	}
	inner := g.P.InnerSphere()
	for a := 0; a < vs.L; a++ {
		for b := 0; b < vs.L; b++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			i, j := vs.LatticePos(a, b)
			cam, err := g.P.Camera(i, j)
			if err != nil {
				return nil, err
			}
			im := vs.Views[a*vs.L+b]
			g.fillView(cam, inner, im)
		}
	}
	return vs, nil
}

// fillView paints one sample view. Pixels whose rays miss the inner sphere
// stay background (respecting the occlusion mask contract of Marshal).
func (g *ProceduralGenerator) fillView(cam *geom.Camera, inner geom.Sphere, im *render.Image) {
	seedF := float64(g.Seed%997) * 0.137
	for y := 0; y < im.Res; y++ {
		for x := 0; x < im.Res; x++ {
			r := cam.PrimaryRay(x, y)
			tn, tf, ok := inner.IntersectRay(r)
			if !ok || tf <= 0 {
				continue
			}
			if tn < 0 {
				tn = 0
			}
			// Entry point on the inner sphere drives smooth shading; the
			// chord length modulates apparent density.
			pEntry := r.At(tn).Sub(inner.Center).Scale(1 / inner.Radius)
			chord := (tf - tn) / (2 * inner.Radius)
			base := 0.5 + 0.5*math.Sin(3*pEntry.X+seedF)*math.Cos(2.5*pEntry.Y-seedF)*math.Sin(2*pEntry.Z)
			lobes := 0.5 + 0.5*math.Sin(7*pEntry.X*pEntry.Y+4*pEntry.Z+seedF)
			v := geom.Clamp(base*0.65+lobes*0.35*chord, 0, 1)
			// Quantize to 32 levels: rendered imagery is piecewise smooth,
			// so zlib finds long matches. Sparse per-pixel detail bumps a
			// Detail fraction of pixels by one level, bounding the ratio
			// from above — together these land in the paper's 5-7x band.
			q := math.Floor(v*31) / 31
			if hashNoise(x, y, int(g.Seed)) < g.Detail*0.25 {
				q = geom.Clamp(q+1.0/31, 0, 1)
			}
			// Map through a potential-like palette: cool lows, warm highs.
			im.Set(x, y,
				byte(255*geom.Clamp(q*1.2-0.1, 0, 1)),
				byte(255*geom.Clamp(0.3+0.5*math.Floor(chord*15)/15*q, 0, 1)),
				byte(255*geom.Clamp(1.1-q, 0, 1)),
			)
		}
	}
}

// hashNoise returns a deterministic pseudo-random value in [0,1) from the
// pixel coordinates; cheap integer hashing keeps generation fast.
func hashNoise(x, y, seed int) float64 {
	h := uint32(x*374761393 + y*668265263 + seed*2147483647)
	h = (h ^ (h >> 13)) * 1274126177
	h ^= h >> 16
	return float64(h%1024) / 1024
}

// BuildResult summarizes a database build.
type BuildResult struct {
	Sets              map[ViewSetID]*ViewSet
	UncompressedBytes int64
}

// BuildDatabase generates every view set of the database in parallel using
// a worker pool of the given size (0 means GOMAXPROCS) — the in-process
// analogue of the paper's 32-processor generation cluster.
func BuildDatabase(ctx context.Context, gen Generator, workers int) (*BuildResult, error) {
	p := gen.Params()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ids := p.AllViewSets()
	jobs := make(chan ViewSetID)
	type rendered struct {
		vs  *ViewSet
		err error
	}
	results := make(chan rendered, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				vs, err := gen.GenerateViewSet(ctx, id)
				results <- rendered{vs, err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, id := range ids {
			select {
			case <-ctx.Done():
				return
			case jobs <- id:
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	out := &BuildResult{Sets: make(map[ViewSetID]*ViewSet, len(ids))}
	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		out.Sets[r.vs.ID] = r.vs
		out.UncompressedBytes += p.BytesPerViewSet()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(out.Sets) != len(ids) {
		return nil, fmt.Errorf("lightfield: built %d of %d view sets", len(out.Sets), len(ids))
	}
	return out, nil
}

// NewClippedRaycastGenerator builds a generator for a station database
// whose focal sphere covers only part of the volume (interior navigation:
// "To allow user navigation through the interior of a volume, multiple
// light field databases are needed, but the same framework ... can be
// reused", paper section 3.2). Ray marching is clipped to the inner
// sphere, so samples outside never contribute and the occlusion-mask
// guarantee — rays missing the focal sphere see nothing — holds exactly.
func NewClippedRaycastGenerator(p Params, vol *volume.Volume, tf *volume.TransferFunction) (*RaycastGenerator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rc, err := render.NewRaycaster(vol, tf)
	if err != nil {
		return nil, err
	}
	clip := p.InnerSphere()
	rc.Clip = &clip
	return &RaycastGenerator{P: p, RC: rc}, nil
}
