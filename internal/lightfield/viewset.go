package lightfield

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"lonviz/internal/geom"
	"lonviz/internal/render"
)

// ViewSetID identifies a view set by its block position in the lattice:
// R in [0, SetRows), C in [0, SetCols).
type ViewSetID struct {
	R, C int
}

// String renders the ID in the "r12c05" form used as dictionary keys.
func (id ViewSetID) String() string { return fmt.Sprintf("r%02dc%02d", id.R, id.C) }

// ViewSetOf returns the view set containing lattice camera (i, j).
func (p Params) ViewSetOf(i, j int) ViewSetID {
	return ViewSetID{R: i / p.ViewSetL, C: j / p.ViewSetL}
}

// ValidID reports whether id addresses a view set inside this database.
func (p Params) ValidID(id ViewSetID) bool {
	return id.R >= 0 && id.R < p.SetRows() && id.C >= 0 && id.C < p.SetCols()
}

// AllViewSets enumerates every view set ID in row-major order.
func (p Params) AllViewSets() []ViewSetID {
	out := make([]ViewSetID, 0, p.NumViewSets())
	for r := 0; r < p.SetRows(); r++ {
		for c := 0; c < p.SetCols(); c++ {
			out = append(out, ViewSetID{R: r, C: c})
		}
	}
	return out
}

// Neighbors returns the up-to-8 neighboring view sets of id. The column
// direction wraps (phi is periodic); the row direction clamps at the poles.
func (p Params) Neighbors(id ViewSetID) []ViewSetID {
	var out []ViewSetID
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			r := id.R + dr
			if r < 0 || r >= p.SetRows() {
				continue
			}
			c := (id.C + dc) % p.SetCols()
			if c < 0 {
				c += p.SetCols()
			}
			n := ViewSetID{R: r, C: c}
			if n != id { // tiny lattices can wrap onto themselves
				out = append(out, n)
			}
		}
	}
	return dedupIDs(out)
}

func dedupIDs(ids []ViewSetID) []ViewSetID {
	seen := make(map[ViewSetID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// SetCenterAngles returns the spherical direction at the center of a view
// set's angular span.
func (p Params) SetCenterAngles(id ViewSetID) geom.Spherical {
	i := id.R*p.ViewSetL + p.ViewSetL/2
	j := id.C*p.ViewSetL + p.ViewSetL/2
	// For even L the "center" camera is offset half a step; average the two
	// middle positions for a true center.
	theta := (p.ThetaOf(i-1) + p.ThetaOf(i)) / 2
	phi := (p.PhiOf(j-1) + p.PhiOf(j)) / 2
	if p.ViewSetL%2 == 1 {
		theta = p.ThetaOf(id.R*p.ViewSetL + p.ViewSetL/2)
		phi = p.PhiOf(id.C*p.ViewSetL + p.ViewSetL/2)
	}
	return geom.Spherical{Theta: theta, Phi: phi}
}

// AngularDistToSet returns the great-circle angle between a direction and
// the center of view set id. The client agent's prestaging stage orders
// transfers by this distance ("proximity to cursor", Figure 5).
func (p Params) AngularDistToSet(sp geom.Spherical, id ViewSetID) float64 {
	return geom.AngularDist(sp, p.SetCenterAngles(id))
}

// ViewSet is an l x l block of sample views — the unit of network transfer.
type ViewSet struct {
	ID    ViewSetID
	L     int
	Res   int
	Views []*render.Image // row-major L*L, never nil after generation
}

// NewViewSet allocates a view set with black images.
func NewViewSet(id ViewSetID, l, res int) (*ViewSet, error) {
	if l <= 0 || res <= 0 {
		return nil, fmt.Errorf("lightfield: invalid view set dims l=%d res=%d", l, res)
	}
	vs := &ViewSet{ID: id, L: l, Res: res, Views: make([]*render.Image, l*l)}
	for i := range vs.Views {
		im, err := render.NewImage(res)
		if err != nil {
			return nil, err
		}
		vs.Views[i] = im
	}
	return vs, nil
}

// View returns the sample view at local position (a, b) within the block,
// a, b in [0, L).
func (vs *ViewSet) View(a, b int) (*render.Image, error) {
	if a < 0 || a >= vs.L || b < 0 || b >= vs.L {
		return nil, fmt.Errorf("lightfield: view (%d,%d) outside %dx%d view set", a, b, vs.L, vs.L)
	}
	return vs.Views[a*vs.L+b], nil
}

// LatticePos returns the global lattice indices of local view (a, b).
func (vs *ViewSet) LatticePos(a, b int) (i, j int) {
	return vs.ID.R*vs.L + a, vs.ID.C*vs.L + b
}

// Equal reports deep equality of two view sets.
func (vs *ViewSet) Equal(other *ViewSet) bool {
	if other == nil || vs.ID != other.ID || vs.L != other.L || vs.Res != other.Res {
		return false
	}
	for i := range vs.Views {
		if !vs.Views[i].Equal(other.Views[i]) {
			return false
		}
	}
	return true
}

const viewSetMagic = "LVVS1\x00"

// Marshal serializes the view set using the occlusion mask implied by the
// database geometry (paper: "we can naturally save storage by not storing
// portions of the 4D database that will remain empty"). Pixels whose primary
// ray misses the inner (focal) sphere can never see the volume; they are
// omitted from the byte stream and restored as background on Unmarshal. Both
// sides recompute the mask from Params, so it costs no wire bytes.
func (vs *ViewSet) Marshal(p Params) ([]byte, error) {
	if vs.L != p.ViewSetL || vs.Res != p.Res {
		return nil, fmt.Errorf("lightfield: view set %dx%d/r%d does not match params %dx%d/r%d",
			vs.L, vs.L, vs.Res, p.ViewSetL, p.ViewSetL, p.Res)
	}
	buf := make([]byte, 0, len(viewSetMagic)+10+int(p.BytesPerViewSet()))
	buf = append(buf, viewSetMagic...)
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(vs.ID.R))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(vs.ID.C))
	hdr[4] = byte(vs.L)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(vs.Res))
	hdr[9] = 0 // format flags, reserved
	buf = append(buf, hdr[:]...)

	for a := 0; a < vs.L; a++ {
		for b := 0; b < vs.L; b++ {
			i, j := vs.LatticePos(a, b)
			mask, err := p.ViewMask(i, j)
			if err != nil {
				return nil, err
			}
			im := vs.Views[a*vs.L+b]
			for idx := 0; idx < vs.Res*vs.Res; idx++ {
				if mask.Get(idx) {
					buf = append(buf, im.Pix[3*idx], im.Pix[3*idx+1], im.Pix[3*idx+2])
				}
			}
		}
	}
	return buf, nil
}

// UnmarshalViewSet reconstructs a view set serialized by Marshal. Masked-out
// pixels are restored as black background.
func UnmarshalViewSet(data []byte, p Params) (*ViewSet, error) {
	if len(data) < len(viewSetMagic)+10 {
		return nil, errors.New("lightfield: view set payload truncated")
	}
	if string(data[:len(viewSetMagic)]) != viewSetMagic {
		return nil, errors.New("lightfield: bad view set magic")
	}
	h := data[len(viewSetMagic):]
	id := ViewSetID{
		R: int(binary.LittleEndian.Uint16(h[0:])),
		C: int(binary.LittleEndian.Uint16(h[2:])),
	}
	l := int(h[4])
	res := int(binary.LittleEndian.Uint32(h[5:]))
	if l != p.ViewSetL || res != p.Res {
		return nil, fmt.Errorf("lightfield: payload dims l=%d res=%d do not match params l=%d res=%d",
			l, res, p.ViewSetL, p.Res)
	}
	if !p.ValidID(id) {
		return nil, fmt.Errorf("lightfield: payload view set %v outside database", id)
	}
	vs, err := NewViewSet(id, l, res)
	if err != nil {
		return nil, err
	}
	pos := len(viewSetMagic) + 10
	for a := 0; a < l; a++ {
		for b := 0; b < l; b++ {
			i, j := vs.LatticePos(a, b)
			mask, err := p.ViewMask(i, j)
			if err != nil {
				return nil, err
			}
			im := vs.Views[a*l+b]
			for idx := 0; idx < res*res; idx++ {
				if !mask.Get(idx) {
					continue
				}
				if pos+3 > len(data) {
					return nil, errors.New("lightfield: view set payload truncated in pixel data")
				}
				im.Pix[3*idx] = data[pos]
				im.Pix[3*idx+1] = data[pos+1]
				im.Pix[3*idx+2] = data[pos+2]
				pos += 3
			}
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("lightfield: %d trailing bytes in view set payload", len(data)-pos)
	}
	return vs, nil
}

// Bitmask is a simple bit set over pixel indices.
type Bitmask struct {
	n    int
	bits []uint64
}

// NewBitmask allocates an all-false mask of n bits.
func NewBitmask(n int) *Bitmask {
	return &Bitmask{n: n, bits: make([]uint64, (n+63)/64)}
}

// Get reports bit i.
func (m *Bitmask) Get(i int) bool { return m.bits[i/64]&(1<<(i%64)) != 0 }

// Set sets bit i to v.
func (m *Bitmask) Set(i int, v bool) {
	if v {
		m.bits[i/64] |= 1 << (i % 64)
	} else {
		m.bits[i/64] &^= 1 << (i % 64)
	}
}

// Count returns the number of set bits.
func (m *Bitmask) Count() int {
	total := 0
	for _, w := range m.bits {
		total += popcount(w)
	}
	return total
}

// Len returns the mask size in bits.
func (m *Bitmask) Len() int { return m.n }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// ViewMask returns the occlusion mask for the sample camera at lattice
// (i, j): bit idx is set iff the primary ray of pixel idx intersects the
// inner sphere and therefore may see the volume. Masks are cached per
// lattice row — by symmetry all cameras in a row share the same mask.
func (p Params) ViewMask(i, j int) (*Bitmask, error) {
	// All orbit cameras are related by rotation about the sphere center,
	// and the mask depends only on the camera-to-center geometry, which is
	// identical for every lattice position. Compute once per Params value.
	return maskCache.get(p)
}

// computeMask builds the mask for the canonical camera.
func computeMask(p Params) (*Bitmask, error) {
	cam, err := geom.OrbitCamera(p.Center, p.OuterRadius,
		geom.Spherical{Theta: math.Pi / 2, Phi: 0}, p.FovY(), p.Res)
	if err != nil {
		return nil, err
	}
	inner := p.InnerSphere()
	m := NewBitmask(p.Res * p.Res)
	for y := 0; y < p.Res; y++ {
		for x := 0; x < p.Res; x++ {
			r := cam.PrimaryRay(x, y)
			if _, tf, ok := inner.IntersectRay(r); ok && tf > 0 {
				m.Set(y*p.Res+x, true)
			}
		}
	}
	return m, nil
}
