package render

import (
	"bytes"
	"context"
	"image/png"
	"strings"
	"testing"

	"lonviz/internal/geom"
	"lonviz/internal/volume"
)

func testCaster(t *testing.T) *Raycaster {
	t.Helper()
	vol, err := volume.Shell(16, 0.3, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := volume.NewTransferFunction([]volume.TFPoint{
		{Value: 0, A: 0},
		{Value: 0.5, A: 0},
		{Value: 1, R: 1, G: 1, B: 1, A: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRaycaster(vol, tf)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func TestImageBasics(t *testing.T) {
	if _, err := NewImage(0); err == nil {
		t.Error("expected error for zero resolution")
	}
	im, err := NewImage(4)
	if err != nil {
		t.Fatal(err)
	}
	im.Set(1, 2, 10, 20, 30)
	if r, g, b := im.At(1, 2); r != 10 || g != 20 || b != 30 {
		t.Errorf("At = %d,%d,%d", r, g, b)
	}
	cl := im.Clone()
	if !im.Equal(cl) {
		t.Error("clone not equal")
	}
	cl.Set(0, 0, 1, 1, 1)
	if im.Equal(cl) {
		t.Error("mutating clone changed original equality")
	}
	if im.Equal(nil) {
		t.Error("Equal(nil) should be false")
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	im, _ := NewImage(8)
	im.Set(3, 4, 200, 100, 50)
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b, _ := decoded.At(3, 4).RGBA()
	if r>>8 != 200 || g>>8 != 100 || b>>8 != 50 {
		t.Errorf("decoded pixel = %d,%d,%d", r>>8, g>>8, b>>8)
	}
}

func TestWritePPMHeader(t *testing.T) {
	im, _ := NewImage(4)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n4 4\n255\n") {
		t.Errorf("PPM header wrong: %q", buf.String()[:20])
	}
	if buf.Len() != len("P6\n4 4\n255\n")+3*16 {
		t.Errorf("PPM size = %d", buf.Len())
	}
}

func TestNewRaycasterValidation(t *testing.T) {
	vol, _ := volume.New(4, 4, 4)
	tf := volume.DefaultNegHipTF()
	if _, err := NewRaycaster(nil, tf); err == nil {
		t.Error("expected error for nil volume")
	}
	if _, err := NewRaycaster(vol, nil); err == nil {
		t.Error("expected error for nil transfer function")
	}
}

func TestRenderShellSilhouette(t *testing.T) {
	rc := testCaster(t)
	cam, err := geom.LookAt(geom.V(0, -2, 0), geom.V(0, 0, 0), geom.V(0, 0, 1), geom.Radians(40), 33)
	if err != nil {
		t.Fatal(err)
	}
	im, err := rc.Render(context.Background(), cam)
	if err != nil {
		t.Fatal(err)
	}
	// Center pixel looks through the shell: must be lit.
	r, g, b := im.At(16, 16)
	if r == 0 && g == 0 && b == 0 {
		t.Error("center pixel black; shell not rendered")
	}
	// Corner pixel misses the volume: must be background black.
	if r, g, b := im.At(0, 0); r != 0 || g != 0 || b != 0 {
		t.Errorf("corner pixel = %d,%d,%d, want background", r, g, b)
	}
}

func TestRenderDeterministicAcrossWorkerCounts(t *testing.T) {
	rc := testCaster(t)
	cam, _ := geom.LookAt(geom.V(1.5, -1.5, 0.8), geom.V(0, 0, 0), geom.V(0, 0, 1), geom.Radians(35), 24)
	rc.Workers = 1
	a, err := rc.Render(context.Background(), cam)
	if err != nil {
		t.Fatal(err)
	}
	rc.Workers = 8
	b, err := rc.Render(context.Background(), cam)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("render differs between 1 and 8 workers")
	}
}

func TestRenderCancellation(t *testing.T) {
	rc := testCaster(t)
	cam, _ := geom.LookAt(geom.V(0, -2, 0), geom.V(0, 0, 0), geom.V(0, 0, 1), geom.Radians(40), 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rc.Render(ctx, cam); err == nil {
		t.Error("expected context error")
	}
}

func TestBackgroundColor(t *testing.T) {
	rc := testCaster(t)
	rc.Background = [3]byte{10, 20, 30}
	cam, _ := geom.LookAt(geom.V(0, -2, 0), geom.V(0, 0, 0), geom.V(0, 0, 1), geom.Radians(40), 17)
	im, err := rc.Render(context.Background(), cam)
	if err != nil {
		t.Fatal(err)
	}
	if r, g, b := im.At(0, 0); r != 10 || g != 20 || b != 30 {
		t.Errorf("background pixel = %d,%d,%d", r, g, b)
	}
}

func TestSemiTransparencyAccumulates(t *testing.T) {
	// A uniform semi-transparent volume: a longer path through the cube
	// accumulates more opacity, so the center (longest chord) is brighter
	// than near the silhouette edge.
	vol, _ := volume.New(8, 8, 8)
	for i := range vol.Data {
		vol.Data[i] = 1
	}
	tf, err := volume.NewTransferFunction([]volume.TFPoint{
		{Value: 0, A: 0},
		{Value: 1, R: 1, G: 1, B: 1, A: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	rc, _ := NewRaycaster(vol, tf)
	rc.Shade = false
	// Axis-aligned chord through the center has length 1; the XY diagonal
	// through the center has length sqrt(2) and so accumulates more.
	axisR, _, _ := rc.CastRay(geom.NewRay(geom.V(0, -3, 0), geom.V(0, 1, 0)))
	diagR, _, _ := rc.CastRay(geom.NewRay(geom.V(-3, -3, 0), geom.V(1, 1, 0)))
	if diagR <= axisR {
		t.Errorf("diagonal %d not brighter than axis chord %d", diagR, axisR)
	}
}

func TestEarlyRayTermination(t *testing.T) {
	// Opaque volume: the result with a tight cutoff equals the result with
	// a looser one (the surface saturates immediately either way), but
	// must not be black.
	vol, _ := volume.New(8, 8, 8)
	for i := range vol.Data {
		vol.Data[i] = 1
	}
	tf, _ := volume.NewTransferFunction([]volume.TFPoint{
		{Value: 0, A: 0},
		{Value: 1, R: 0.5, G: 0.5, B: 0.5, A: 1},
	})
	rc, _ := NewRaycaster(vol, tf)
	rc.Shade = false
	r, _, _ := rc.CastRay(geom.NewRay(geom.V(0, -3, 0), geom.V(0, 1, 0)))
	if r == 0 {
		t.Error("opaque volume rendered black")
	}
}

func TestClipSphereRestrictsMarching(t *testing.T) {
	// A solid opaque cube with a clip sphere in its center: rays that miss
	// the clip sphere render pure background even though they cross the
	// volume.
	vol, _ := volume.New(8, 8, 8)
	for i := range vol.Data {
		vol.Data[i] = 1
	}
	tf, _ := volume.NewTransferFunction([]volume.TFPoint{
		{Value: 0, A: 0},
		{Value: 1, R: 1, G: 1, B: 1, A: 1},
	})
	rc, _ := NewRaycaster(vol, tf)
	rc.Shade = false
	clip := geom.Sphere{Center: geom.V(0, 0, 0), Radius: 0.2}
	rc.Clip = &clip
	// Through the clip sphere: lit.
	if r, _, _ := rc.CastRay(geom.NewRay(geom.V(0, -3, 0), geom.V(0, 1, 0))); r == 0 {
		t.Error("ray through clip sphere rendered background")
	}
	// Through the cube but outside the clip sphere: background.
	if r, g, b := rc.CastRay(geom.NewRay(geom.V(0.4, -3, 0.4), geom.V(0, 1, 0))); r != 0 || g != 0 || b != 0 {
		t.Errorf("ray outside clip sphere rendered %d,%d,%d", r, g, b)
	}
	// Entirely missing the volume still renders background with clip set.
	if r, _, _ := rc.CastRay(geom.NewRay(geom.V(5, -3, 5), geom.V(0, 1, 0))); r != 0 {
		t.Error("miss rendered content")
	}
}

func TestRaycasterParameterDefaults(t *testing.T) {
	vol, _ := volume.New(4, 8, 16)
	rc, _ := NewRaycaster(vol, volume.DefaultNegHipTF())
	// step uses the smallest voxel extent; NX=4 means X voxels are the
	// biggest, NZ=16 the smallest.
	if got, want := rc.step(), 0.8*(1.0/16); got != want {
		t.Errorf("step = %v, want %v", got, want)
	}
	rc.StepScale = 0.5
	if got, want := rc.step(), 0.5*(1.0/16); got != want {
		t.Errorf("custom step = %v, want %v", got, want)
	}
	if rc.cutoff() != 0.98 {
		t.Errorf("default cutoff = %v", rc.cutoff())
	}
	rc.OpacityCutoff = 0.5
	if rc.cutoff() != 0.5 {
		t.Errorf("custom cutoff = %v", rc.cutoff())
	}
	if rc.workers() <= 0 {
		t.Error("default workers not positive")
	}
	rc.Workers = 32 // the paper's cluster width
	if rc.workers() != 32 {
		t.Errorf("workers = %d", rc.workers())
	}
}

func TestSampleBilinearCorners(t *testing.T) {
	im, _ := NewImage(2)
	im.Set(0, 0, 0, 0, 0)
	im.Set(1, 0, 100, 0, 0)
	im.Set(0, 1, 0, 100, 0)
	im.Set(1, 1, 100, 100, 0)
	r, g, _ := im.SampleBilinear(0.5, 0.5)
	if r != 50 || g != 50 {
		t.Errorf("center bilinear = %v,%v", r, g)
	}
	// Out-of-range coordinates clamp to the border.
	r, _, _ = im.SampleBilinear(-3, -3)
	if r != 0 {
		t.Errorf("clamped low = %v", r)
	}
	r, g, _ = im.SampleBilinear(99, 99)
	if r != 100 || g != 100 {
		t.Errorf("clamped high = %v,%v", r, g)
	}
}
