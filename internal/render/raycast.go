package render

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"lonviz/internal/geom"
	"lonviz/internal/volume"
)

// Raycaster renders a volume through a transfer function by front-to-back
// alpha compositing along primary rays.
type Raycaster struct {
	Vol *volume.Volume
	TF  *volume.TransferFunction

	// StepScale is the ray-march step as a fraction of the smallest voxel
	// extent. Defaults to 0.8 when zero.
	StepScale float64
	// OpacityCutoff triggers early ray termination when accumulated alpha
	// exceeds it. Defaults to 0.98 when zero.
	OpacityCutoff float64
	// Workers is the size of the rendering worker pool. Defaults to
	// GOMAXPROCS when zero. The paper used a 32-processor cluster for this
	// stage; Workers=32 reproduces that configuration on a large host.
	Workers int
	// Shade enables simple headlight diffuse shading from the gradient.
	Shade bool
	// Background is the background color (default black).
	Background [3]byte
	// Clip, when non-nil, restricts ray marching to the inside of this
	// sphere: samples outside contribute nothing, and rays that miss it
	// entirely render pure background. Interior-navigation station
	// databases use it so each station captures exactly the sub-volume its
	// focal sphere can contain.
	Clip *geom.Sphere
}

// NewRaycaster returns a ray caster with default parameters.
func NewRaycaster(vol *volume.Volume, tf *volume.TransferFunction) (*Raycaster, error) {
	if vol == nil {
		return nil, fmt.Errorf("render: nil volume")
	}
	if tf == nil {
		return nil, fmt.Errorf("render: nil transfer function")
	}
	return &Raycaster{Vol: vol, TF: tf, Shade: true}, nil
}

func (rc *Raycaster) step() float64 {
	s := rc.StepScale
	if s <= 0 {
		s = 0.8
	}
	vx := rc.Vol.Size.X / float64(rc.Vol.NX)
	vy := rc.Vol.Size.Y / float64(rc.Vol.NY)
	vz := rc.Vol.Size.Z / float64(rc.Vol.NZ)
	m := vx
	if vy < m {
		m = vy
	}
	if vz < m {
		m = vz
	}
	return s * m
}

func (rc *Raycaster) cutoff() float32 {
	if rc.OpacityCutoff <= 0 {
		return 0.98
	}
	return float32(rc.OpacityCutoff)
}

func (rc *Raycaster) workers() int {
	if rc.Workers > 0 {
		return rc.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Render renders the full camera view into a new image, parallelizing over
// scanlines. ctx cancels a long render early; the partial image is
// discarded and ctx.Err() returned.
func (rc *Raycaster) Render(ctx context.Context, cam *geom.Camera) (*Image, error) {
	im, err := NewImage(cam.Res)
	if err != nil {
		return nil, err
	}
	rows := make(chan int)
	var wg sync.WaitGroup
	nw := rc.workers()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for y := range rows {
				rc.renderRow(cam, im, y)
			}
		}()
	}
	err = nil
feed:
	for y := 0; y < cam.Res; y++ {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		case rows <- y:
		}
	}
	close(rows)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return im, nil
}

// renderRow casts all rays of scanline y.
func (rc *Raycaster) renderRow(cam *geom.Camera, im *Image, y int) {
	for x := 0; x < cam.Res; x++ {
		r, g, b := rc.CastRay(cam.PrimaryRay(x, y))
		im.Set(x, y, r, g, b)
	}
}

// CastRay composites the volume along one ray and returns the final pixel
// color over the background.
func (rc *Raycaster) CastRay(ray geom.Ray) (r, g, b byte) {
	tn, tf, ok := rc.Vol.Bounds().IntersectRay(ray)
	if !ok || tf <= 0 {
		return rc.Background[0], rc.Background[1], rc.Background[2]
	}
	if rc.Clip != nil {
		cn, cf, cok := rc.Clip.IntersectRay(ray)
		if !cok || cf <= 0 {
			return rc.Background[0], rc.Background[1], rc.Background[2]
		}
		if cn > tn {
			tn = cn
		}
		if cf < tf {
			tf = cf
		}
		if tn >= tf {
			return rc.Background[0], rc.Background[1], rc.Background[2]
		}
	}
	if tn < 0 {
		tn = 0
	}
	step := rc.step()
	cutoff := rc.cutoff()

	var accR, accG, accB, accA float32
	for t := tn + step/2; t < tf; t += step {
		p := ray.At(t)
		s := rc.Vol.Sample(p)
		c := rc.TF.Lookup(s)
		if c.A <= 0 {
			continue
		}
		// Opacity correction for step size relative to unit reference.
		alpha := 1 - pow32(1-c.A, float32(step*float64(rc.Vol.NX)))
		if alpha <= 0 {
			continue
		}
		cr, cg, cb := c.R, c.G, c.B
		if rc.Shade {
			grad := rc.Vol.Gradient(p)
			if l := grad.Len(); l > 1e-6 {
				// Headlight diffuse: light from the eye direction.
				diff := float32(abs64(grad.Norm().Dot(ray.Dir)))
				shade := 0.35 + 0.65*diff
				cr *= shade
				cg *= shade
				cb *= shade
			}
		}
		// Front-to-back compositing with premultiplied colors.
		w := (1 - accA) * alpha
		accR += w * cr
		accG += w * cg
		accB += w * cb
		accA += w
		if accA >= cutoff {
			break
		}
	}
	bg := rc.Background
	accR += (1 - accA) * float32(bg[0]) / 255
	accG += (1 - accA) * float32(bg[1]) / 255
	accB += (1 - accA) * float32(bg[2]) / 255
	return toByte(accR), toByte(accG), toByte(accB)
}

func toByte(x float32) byte {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 255
	}
	return byte(x*255 + 0.5)
}

func pow32(base, exp float32) float32 {
	// Small fast-path: exp near 1 is the common case.
	if base <= 0 {
		return 0
	}
	if base >= 1 {
		return 1
	}
	return float32(math.Pow(float64(base), float64(exp)))
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
