// Package render implements the light field generator's volume renderer: a
// front-to-back compositing ray caster parallelized over scanlines with a
// worker pool. The paper generated sample views on a 32-processor cluster;
// here the same embarrassingly parallel structure runs on GOMAXPROCS
// goroutines (see DESIGN.md, substitutions).
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// Image is a square RGB image with 8-bit channels, stored row-major as
// R,G,B triples. It is the pixel payload of one sample view.
type Image struct {
	Res int
	Pix []byte // 3 * Res * Res
}

// NewImage allocates a black image of the given square resolution.
func NewImage(res int) (*Image, error) {
	if res <= 0 {
		return nil, fmt.Errorf("render: non-positive resolution %d", res)
	}
	return &Image{Res: res, Pix: make([]byte, 3*res*res)}, nil
}

// At returns the pixel at (x, y); (0,0) is top-left.
func (im *Image) At(x, y int) (r, g, b byte) {
	i := 3 * (y*im.Res + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set stores the pixel at (x, y).
func (im *Image) Set(x, y int, r, g, b byte) {
	i := 3 * (y*im.Res + x)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	pix := make([]byte, len(im.Pix))
	copy(pix, im.Pix)
	return &Image{Res: im.Res, Pix: pix}
}

// Equal reports whether two images have identical resolution and pixels.
func (im *Image) Equal(other *Image) bool {
	if other == nil || im.Res != other.Res {
		return false
	}
	for i := range im.Pix {
		if im.Pix[i] != other.Pix[i] {
			return false
		}
	}
	return true
}

// WritePNG encodes the image as PNG.
func (im *Image) WritePNG(w io.Writer) error {
	out := image.NewRGBA(image.Rect(0, 0, im.Res, im.Res))
	for y := 0; y < im.Res; y++ {
		for x := 0; x < im.Res; x++ {
			r, g, b := im.At(x, y)
			out.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 0xff})
		}
	}
	return png.Encode(w, out)
}

// WritePPM encodes the image as binary PPM (P6), handy for quick viewing
// without an image library.
func (im *Image) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.Res, im.Res); err != nil {
		return err
	}
	_, err := w.Write(im.Pix)
	return err
}

// SampleBilinear returns the bilinearly interpolated color at continuous
// pixel coordinates (fx, fy), clamping to the image border.
func (im *Image) SampleBilinear(fx, fy float64) (r, g, b float64) {
	clampf := func(v float64, hi int) float64 {
		if v < 0 {
			return 0
		}
		if v > float64(hi) {
			return float64(hi)
		}
		return v
	}
	fx = clampf(fx, im.Res-1)
	fy = clampf(fy, im.Res-1)
	x0, y0 := int(fx), int(fy)
	x1, y1 := x0+1, y0+1
	if x1 >= im.Res {
		x1 = im.Res - 1
	}
	if y1 >= im.Res {
		y1 = im.Res - 1
	}
	tx, ty := fx-float64(x0), fy-float64(y0)
	lerp2 := func(c00, c10, c01, c11 byte) float64 {
		top := float64(c00) + (float64(c10)-float64(c00))*tx
		bot := float64(c01) + (float64(c11)-float64(c01))*tx
		return top + (bot-top)*ty
	}
	i00 := 3 * (y0*im.Res + x0)
	i10 := 3 * (y0*im.Res + x1)
	i01 := 3 * (y1*im.Res + x0)
	i11 := 3 * (y1*im.Res + x1)
	r = lerp2(im.Pix[i00], im.Pix[i10], im.Pix[i01], im.Pix[i11])
	g = lerp2(im.Pix[i00+1], im.Pix[i10+1], im.Pix[i01+1], im.Pix[i11+1])
	b = lerp2(im.Pix[i00+2], im.Pix[i10+2], im.Pix[i01+2], im.Pix[i11+2])
	return r, g, b
}
