package volume

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransferFunctionValidation(t *testing.T) {
	if _, err := NewTransferFunction(nil); err == nil {
		t.Error("expected error for no points")
	}
	if _, err := NewTransferFunction([]TFPoint{{Value: 0.5}}); err == nil {
		t.Error("expected error for one point")
	}
	if _, err := NewTransferFunction([]TFPoint{{Value: 0.5}, {Value: 0.5}}); err == nil {
		t.Error("expected error for coincident points")
	}
}

func TestTransferFunctionEndpointsAndClamp(t *testing.T) {
	tf, err := NewTransferFunction([]TFPoint{
		{Value: 0.2, R: 1, A: 0.1},
		{Value: 0.8, B: 1, A: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	lo := tf.Lookup(0)
	if lo.R != 1 || lo.A != 0.1 {
		t.Errorf("below-range lookup = %+v", lo)
	}
	hi := tf.Lookup(1)
	if hi.B != 1 || hi.A != 0.9 {
		t.Errorf("above-range lookup = %+v", hi)
	}
	mid := tf.Lookup(0.5)
	if math.Abs(float64(mid.A-0.5)) > 0.01 {
		t.Errorf("midpoint alpha = %v, want ~0.5", mid.A)
	}
	if math.Abs(float64(mid.R-0.5)) > 0.01 || math.Abs(float64(mid.B-0.5)) > 0.01 {
		t.Errorf("midpoint color = %+v", mid)
	}
}

func TestTransferFunctionSortsPoints(t *testing.T) {
	// Same function given shuffled control points.
	pts := []TFPoint{
		{Value: 0.9, A: 0.9},
		{Value: 0.1, A: 0.1},
		{Value: 0.5, A: 0.7},
	}
	tf, err := NewTransferFunction(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := tf.Lookup(0.5); math.Abs(float64(got.A-0.7)) > 0.01 {
		t.Errorf("Lookup(0.5).A = %v, want 0.7", got.A)
	}
}

func TestTransferLookupInRangeQuick(t *testing.T) {
	tf := DefaultNegHipTF()
	f := func(x float32) bool {
		c := tf.Lookup(x)
		ok := func(v float32) bool { return v >= 0 && v <= 1 && !math.IsNaN(float64(v)) }
		return ok(c.R) && ok(c.G) && ok(c.B) && ok(c.A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultNegHipTFShape(t *testing.T) {
	tf := DefaultNegHipTF()
	if a := tf.Lookup(0.5).A; a > 0.02 {
		t.Errorf("neutral potential should be transparent, alpha = %v", a)
	}
	if a := tf.Lookup(0.0).A; a < 0.5 {
		t.Errorf("strong negative potential should be nearly opaque, alpha = %v", a)
	}
	if a := tf.Lookup(1.0).A; a < 0.5 {
		t.Errorf("strong positive potential should be nearly opaque, alpha = %v", a)
	}
	// Negative side is blue-ish, positive side red-ish.
	if c := tf.Lookup(0.05); c.B < c.R {
		t.Errorf("negative potential not blue: %+v", c)
	}
	if c := tf.Lookup(0.95); c.R < c.B {
		t.Errorf("positive potential not red: %+v", c)
	}
}

func TestIsosurfaceTF(t *testing.T) {
	tf, err := IsosurfaceTF(0.5, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a := tf.Lookup(0.1).A; a != 0 {
		t.Errorf("below iso alpha = %v, want 0", a)
	}
	if a := tf.Lookup(0.9).A; a != 1 {
		t.Errorf("above iso alpha = %v, want 1", a)
	}
	// Edge iso values must not error out even when the ramp clamps.
	if _, err := IsosurfaceTF(0.0, 1, 0, 0); err != nil {
		t.Errorf("iso at 0: %v", err)
	}
	if _, err := IsosurfaceTF(1.0, 1, 0, 0); err != nil {
		t.Errorf("iso at 1: %v", err)
	}
}
