package volume

import (
	"fmt"
	"sort"
)

// RGBA is a premultiplied-alpha color sample produced by a transfer
// function, components in [0,1].
type RGBA struct {
	R, G, B, A float32
}

// TFPoint is one control point of a piecewise-linear transfer function.
type TFPoint struct {
	Value      float32 // scalar value in [0,1]
	R, G, B, A float32
}

// TransferFunction maps scalar values to color and opacity by piecewise
// linear interpolation between control points, with a precomputed lookup
// table for speed on the rendering hot path.
type TransferFunction struct {
	points []TFPoint
	lut    []RGBA
}

const tfLUTSize = 1024

// NewTransferFunction builds a transfer function from control points. At
// least two points are required; they are sorted by Value and must span
// distinct values.
func NewTransferFunction(points []TFPoint) (*TransferFunction, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("volume: transfer function needs >= 2 control points, got %d", len(points))
	}
	ps := make([]TFPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Value < ps[j].Value })
	if ps[0].Value == ps[len(ps)-1].Value {
		return nil, fmt.Errorf("volume: transfer function control points all at value %v", ps[0].Value)
	}
	tf := &TransferFunction{points: ps, lut: make([]RGBA, tfLUTSize)}
	for i := range tf.lut {
		x := float32(i) / float32(tfLUTSize-1)
		tf.lut[i] = tf.eval(x)
	}
	return tf, nil
}

// eval interpolates the control points directly (used to build the LUT).
func (tf *TransferFunction) eval(x float32) RGBA {
	ps := tf.points
	if x <= ps[0].Value {
		p := ps[0]
		return RGBA{p.R, p.G, p.B, p.A}
	}
	if x >= ps[len(ps)-1].Value {
		p := ps[len(ps)-1]
		return RGBA{p.R, p.G, p.B, p.A}
	}
	// Find the segment containing x.
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Value >= x }) // first >= x
	a, b := ps[i-1], ps[i]
	if b.Value == a.Value {
		return RGBA{b.R, b.G, b.B, b.A}
	}
	t := (x - a.Value) / (b.Value - a.Value)
	return RGBA{
		R: a.R + (b.R-a.R)*t,
		G: a.G + (b.G-a.G)*t,
		B: a.B + (b.B-a.B)*t,
		A: a.A + (b.A-a.A)*t,
	}
}

// Lookup returns the color/opacity for scalar value x in [0,1] from the
// precomputed table. Values outside [0,1] clamp.
func (tf *TransferFunction) Lookup(x float32) RGBA {
	if x <= 0 {
		return tf.lut[0]
	}
	if x >= 1 {
		return tf.lut[tfLUTSize-1]
	}
	return tf.lut[int(x*float32(tfLUTSize-1)+0.5)]
}

// DefaultNegHipTF returns the preset used in the experiments: neutral
// potential (around 0.5) is transparent, negative potential renders as
// semi-transparent cool blues deepening to opaque, positive as warm
// oranges/reds. This mirrors the usual potential-field presets and gives
// the mix of translucency and opacity visible in the paper's Figure 6.
func DefaultNegHipTF() *TransferFunction {
	tf, err := NewTransferFunction([]TFPoint{
		{Value: 0.00, R: 0.1, G: 0.2, B: 0.9, A: 0.95},
		{Value: 0.20, R: 0.2, G: 0.4, B: 0.9, A: 0.55},
		{Value: 0.40, R: 0.5, G: 0.7, B: 0.9, A: 0.12},
		{Value: 0.50, R: 0.9, G: 0.9, B: 0.9, A: 0.0},
		{Value: 0.62, R: 0.95, G: 0.8, B: 0.4, A: 0.18},
		{Value: 0.80, R: 0.95, G: 0.5, B: 0.15, A: 0.65},
		{Value: 1.00, R: 0.9, G: 0.15, B: 0.1, A: 0.98},
	})
	if err != nil {
		panic("volume: invalid built-in transfer function: " + err.Error())
	}
	return tf
}

// IsosurfaceTF returns a transfer function approximating an opaque
// isosurface at iso with the given color, useful for the fully-opaque
// viewing regime.
func IsosurfaceTF(iso float32, r, g, b float32) (*TransferFunction, error) {
	const w = 0.02
	return NewTransferFunction([]TFPoint{
		{Value: 0, A: 0},
		{Value: clamp01(iso - w), A: 0},
		{Value: iso, R: r, G: g, B: b, A: 1},
		{Value: clamp01(iso + w), R: r, G: g, B: b, A: 1},
		{Value: 1, R: r, G: g, B: b, A: 1},
	})
}

func clamp01(x float32) float32 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
