package volume

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lonviz/internal/geom"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 4); err == nil {
		t.Error("expected error for zero dimension")
	}
	if _, err := New(4, -1, 4); err == nil {
		t.Error("expected error for negative dimension")
	}
	v, err := New(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Data) != 24 {
		t.Errorf("data length = %d, want 24", len(v.Data))
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	v, _ := New(3, 4, 5)
	if err := v.Set(2, 3, 4, 0.75); err != nil {
		t.Fatal(err)
	}
	if got := v.At(2, 3, 4); got != 0.75 {
		t.Errorf("At = %v", got)
	}
	if err := v.Set(3, 0, 0, 1); err == nil {
		t.Error("expected out-of-range error")
	}
	// At clamps rather than panicking.
	if got := v.At(99, -5, 2); got != v.At(2, 0, 2) {
		t.Errorf("clamped At mismatch: %v", got)
	}
}

func TestSampleAtVoxelCenters(t *testing.T) {
	v, _ := New(4, 4, 4)
	for i := range v.Data {
		v.Data[i] = float32(i) / float32(len(v.Data))
	}
	// World position of voxel center (1,2,3).
	p := geom.V(
		v.Origin.X+(1+0.5)/4*v.Size.X,
		v.Origin.Y+(2+0.5)/4*v.Size.Y,
		v.Origin.Z+(3+0.5)/4*v.Size.Z,
	)
	want := v.At(1, 2, 3)
	if got := v.Sample(p); math.Abs(float64(got-want)) > 1e-6 {
		t.Errorf("Sample at voxel center = %v, want %v", got, want)
	}
}

func TestSampleOutside(t *testing.T) {
	v, _ := New(4, 4, 4)
	for i := range v.Data {
		v.Data[i] = 1
	}
	if got := v.Sample(geom.V(2, 0, 0)); got != 0 {
		t.Errorf("outside sample = %v, want 0", got)
	}
	if got := v.Sample(geom.V(0, 0, 0)); got != 1 {
		t.Errorf("inside sample = %v, want 1", got)
	}
}

func TestSampleInterpolatesMonotonically(t *testing.T) {
	// Linear ramp along X must sample as a monotone function of x.
	v, _ := New(8, 2, 2)
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 8; i++ {
				v.Data[v.index(i, j, k)] = float32(i) / 7
			}
		}
	}
	prev := float32(-1)
	for s := 0; s <= 100; s++ {
		x := v.Origin.X + 0.05 + float64(s)/100*0.9*v.Size.X
		got := v.Sample(geom.V(x, 0, 0))
		if got < prev-1e-6 {
			t.Fatalf("sample not monotone at x=%v: %v < %v", x, got, prev)
		}
		prev = got
	}
}

func TestGradientOfLinearRamp(t *testing.T) {
	v, _ := New(16, 16, 16)
	forEachVoxel(v, func(i, j, k int, p geom.Vec3) float32 {
		return float32(p.X) + 0.5 // ramp with slope 1 along X
	})
	g := v.Gradient(geom.V(0, 0, 0))
	if math.Abs(g.X-1) > 0.05 || math.Abs(g.Y) > 0.05 || math.Abs(g.Z) > 0.05 {
		t.Errorf("gradient = %v, want ~(1,0,0)", g)
	}
}

func TestMinMaxNormalize(t *testing.T) {
	v, _ := New(2, 2, 2)
	copy(v.Data, []float32{-3, 1, 5, 2, 0, -1, 4, 3})
	lo, hi := v.MinMax()
	if lo != -3 || hi != 5 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	v.Normalize()
	lo, hi = v.MinMax()
	if lo != 0 || hi != 1 {
		t.Errorf("after Normalize MinMax = %v, %v", lo, hi)
	}
	// Constant volume becomes zeros, not NaNs.
	c, _ := New(2, 2, 2)
	for i := range c.Data {
		c.Data[i] = 7
	}
	c.Normalize()
	for _, x := range c.Data {
		if x != 0 {
			t.Fatalf("constant volume normalized to %v", x)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	v, _ := New(5, 3, 2)
	rng := rand.New(rand.NewSource(1))
	for i := range v.Data {
		v.Data[i] = rng.Float32()
	}
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NX != 5 || got.NY != 3 || got.NZ != 2 {
		t.Fatalf("dims = %dx%dx%d", got.NX, got.NY, got.NZ)
	}
	if got.Origin != v.Origin || got.Size != v.Size {
		t.Error("origin/size mismatch")
	}
	for i := range v.Data {
		if got.Data[i] != v.Data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, got.Data[i], v.Data[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a volume at all......"))); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestNegHipProperties(t *testing.T) {
	v, err := NegHip(32)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric normalization: values live in [0,1] and the strongest
	// charge touches one end exactly (negHip is net negative, so 0).
	lo, hi := v.MinMax()
	if lo < 0 || hi > 1 {
		t.Errorf("NegHip outside [0,1]: [%v, %v]", lo, hi)
	}
	if lo != 0 && hi != 1 {
		t.Errorf("NegHip symmetric normalization touches neither end: [%v, %v]", lo, hi)
	}
	// Empty corners sit on the neutral midpoint (transparent).
	if c := v.At(0, 0, 0); c < 0.45 || c > 0.55 {
		t.Errorf("corner potential %v, want ~0.5 (neutral)", c)
	}
	// Deterministic across calls.
	v2, _ := NegHip(32)
	for i := range v.Data {
		if v.Data[i] != v2.Data[i] {
			t.Fatal("NegHip not deterministic")
		}
	}
	// Must have both sub-neutral and super-neutral regions (negative and
	// positive potential).
	var below, above int
	for _, x := range v.Data {
		if x < 0.4 {
			below++
		}
		if x > 0.6 {
			above++
		}
	}
	if below == 0 || above == 0 {
		t.Errorf("NegHip lacks charge structure: below=%d above=%d", below, above)
	}
}

func TestBlobsAndShell(t *testing.T) {
	b, err := Blobs(16, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := b.MinMax(); lo != 0 || hi != 1 {
		t.Errorf("Blobs not normalized: [%v,%v]", lo, hi)
	}
	b2, _ := Blobs(16, 5, 42)
	for i := range b.Data {
		if b.Data[i] != b2.Data[i] {
			t.Fatal("Blobs not deterministic for fixed seed")
		}
	}
	s, err := Shell(16, 0.35, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Shell: center and corner are near zero, points at radius are high.
	if s.Sample(geom.V(0, 0, 0)) > 0.2 {
		t.Error("shell center not hollow")
	}
	if s.Sample(geom.V(0.35, 0, 0)) < 0.5 {
		t.Error("shell surface not dense")
	}
}

func TestBoundsContainVolume(t *testing.T) {
	v, _ := New(4, 4, 4)
	b := v.Bounds()
	if b.Min != geom.V(-0.5, -0.5, -0.5) || b.Max != geom.V(0.5, 0.5, 0.5) {
		t.Errorf("bounds = %+v", b)
	}
}

func TestClipToSphere(t *testing.T) {
	v, _ := New(16, 16, 16)
	for i := range v.Data {
		v.Data[i] = 1
	}
	s := geom.Sphere{Center: geom.V(0.2, 0, 0), Radius: 0.2}
	clipped := v.ClipToSphere(s, 0.5)
	// Original untouched.
	if v.Data[0] != 1 {
		t.Fatal("ClipToSphere mutated the source volume")
	}
	// Inside keeps data, outside gets the fill value.
	if got := clipped.Sample(geom.V(0.2, 0, 0)); got != 1 {
		t.Errorf("inside sample = %v", got)
	}
	if got := clipped.Sample(geom.V(-0.4, 0.4, 0.4)); got != 0.5 {
		t.Errorf("outside sample = %v, want fill", got)
	}
}
