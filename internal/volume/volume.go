// Package volume provides regular scalar volume datasets, trilinear
// sampling, central-difference gradients, and piecewise-linear transfer
// functions — the substrate the light field generator renders from.
//
// The paper's test dataset, negHip (the electrical potential of a negative
// high-energy protein at 64x64x64), is not redistributable, so NegHip
// synthesizes a stand-in: a superposition of positive and negative Gaussian
// charges arranged like a small molecule, producing the same mixture of
// semi-transparent lobes and opaque cores that the paper renders.
package volume

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"lonviz/internal/geom"
)

// Volume is a regular grid of scalar samples in [0,1], laid out x-fastest.
// The volume occupies the world-space axis-aligned box [Origin,
// Origin+Size].
type Volume struct {
	NX, NY, NZ int
	Origin     geom.Vec3
	Size       geom.Vec3
	Data       []float32
}

// New allocates a zero-filled volume with the given dimensions occupying
// the unit cube centered at the world origin.
func New(nx, ny, nz int) (*Volume, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("volume: non-positive dimensions %dx%dx%d", nx, ny, nz)
	}
	return &Volume{
		NX:     nx,
		NY:     ny,
		NZ:     nz,
		Origin: geom.V(-0.5, -0.5, -0.5),
		Size:   geom.V(1, 1, 1),
		Data:   make([]float32, nx*ny*nz),
	}, nil
}

// Bounds returns the world-space bounding box of the volume.
func (v *Volume) Bounds() geom.Box {
	return geom.Box{Min: v.Origin, Max: v.Origin.Add(v.Size)}
}

// index returns the flat index of voxel (i,j,k). Callers must pass in-range
// coordinates.
func (v *Volume) index(i, j, k int) int { return (k*v.NY+j)*v.NX + i }

// At returns the voxel value at (i,j,k), clamping coordinates to the grid.
func (v *Volume) At(i, j, k int) float32 {
	i = clampInt(i, 0, v.NX-1)
	j = clampInt(j, 0, v.NY-1)
	k = clampInt(k, 0, v.NZ-1)
	return v.Data[v.index(i, j, k)]
}

// Set stores value at voxel (i,j,k). Out-of-range coordinates are an error.
func (v *Volume) Set(i, j, k int, val float32) error {
	if i < 0 || i >= v.NX || j < 0 || j >= v.NY || k < 0 || k >= v.NZ {
		return fmt.Errorf("volume: voxel (%d,%d,%d) out of range %dx%dx%d", i, j, k, v.NX, v.NY, v.NZ)
	}
	v.Data[v.index(i, j, k)] = val
	return nil
}

// Sample returns the trilinearly interpolated scalar value at world point p.
// Points outside the volume sample as 0.
func (v *Volume) Sample(p geom.Vec3) float32 {
	// Convert to continuous voxel coordinates with samples at voxel centers.
	gx := (p.X - v.Origin.X) / v.Size.X * float64(v.NX)
	gy := (p.Y - v.Origin.Y) / v.Size.Y * float64(v.NY)
	gz := (p.Z - v.Origin.Z) / v.Size.Z * float64(v.NZ)
	if gx < 0 || gy < 0 || gz < 0 || gx > float64(v.NX) || gy > float64(v.NY) || gz > float64(v.NZ) {
		return 0
	}
	gx -= 0.5
	gy -= 0.5
	gz -= 0.5
	i0 := int(math.Floor(gx))
	j0 := int(math.Floor(gy))
	k0 := int(math.Floor(gz))
	fx := float32(gx - float64(i0))
	fy := float32(gy - float64(j0))
	fz := float32(gz - float64(k0))

	c000 := v.At(i0, j0, k0)
	c100 := v.At(i0+1, j0, k0)
	c010 := v.At(i0, j0+1, k0)
	c110 := v.At(i0+1, j0+1, k0)
	c001 := v.At(i0, j0, k0+1)
	c101 := v.At(i0+1, j0, k0+1)
	c011 := v.At(i0, j0+1, k0+1)
	c111 := v.At(i0+1, j0+1, k0+1)

	c00 := c000 + (c100-c000)*fx
	c10 := c010 + (c110-c010)*fx
	c01 := c001 + (c101-c001)*fx
	c11 := c011 + (c111-c011)*fx
	c0 := c00 + (c10-c00)*fy
	c1 := c01 + (c11-c01)*fy
	return c0 + (c1-c0)*fz
}

// Gradient estimates the scalar-field gradient at world point p by central
// differences in world space. It is used for shading during generation.
func (v *Volume) Gradient(p geom.Vec3) geom.Vec3 {
	hx := v.Size.X / float64(v.NX)
	hy := v.Size.Y / float64(v.NY)
	hz := v.Size.Z / float64(v.NZ)
	dx := float64(v.Sample(p.Add(geom.V(hx, 0, 0)))-v.Sample(p.Sub(geom.V(hx, 0, 0)))) / (2 * hx)
	dy := float64(v.Sample(p.Add(geom.V(0, hy, 0)))-v.Sample(p.Sub(geom.V(0, hy, 0)))) / (2 * hy)
	dz := float64(v.Sample(p.Add(geom.V(0, 0, hz)))-v.Sample(p.Sub(geom.V(0, 0, hz)))) / (2 * hz)
	return geom.V(dx, dy, dz)
}

// MinMax returns the smallest and largest scalar values in the volume.
func (v *Volume) MinMax() (lo, hi float32) {
	if len(v.Data) == 0 {
		return 0, 0
	}
	lo, hi = v.Data[0], v.Data[0]
	for _, x := range v.Data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Normalize rescales the data linearly so that values span [0,1]. A
// constant volume becomes all zeros.
func (v *Volume) Normalize() {
	lo, hi := v.MinMax()
	span := hi - lo
	if span == 0 {
		for i := range v.Data {
			v.Data[i] = 0
		}
		return
	}
	inv := 1 / span
	for i, x := range v.Data {
		v.Data[i] = (x - lo) * inv
	}
}

// NormalizeSymmetric rescales a signed field so that raw 0 maps exactly to
// 0.5 and the largest magnitude maps to 0 or 1 — the right normalization
// for potential fields whose neutral value must land on the transfer
// function's transparent midpoint. An all-zero volume becomes all 0.5.
func (v *Volume) NormalizeSymmetric() {
	var maxAbs float32
	for _, x := range v.Data {
		a := x
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range v.Data {
			v.Data[i] = 0.5
		}
		return
	}
	inv := 0.5 / maxAbs
	for i, x := range v.Data {
		v.Data[i] = 0.5 + x*inv
	}
}

const volumeMagic = "LVVOL1\n"

// WriteTo serializes the volume in a simple binary format:
// magic, dims (3x int32), origin+size (6x float64), raw float32 data LE.
func (v *Volume) WriteTo(w io.Writer) (int64, error) {
	var n int64
	m, err := io.WriteString(w, volumeMagic)
	n += int64(m)
	if err != nil {
		return n, err
	}
	hdr := []interface{}{
		int32(v.NX), int32(v.NY), int32(v.NZ),
		v.Origin.X, v.Origin.Y, v.Origin.Z,
		v.Size.X, v.Size.Y, v.Size.Z,
	}
	for _, f := range hdr {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return n, err
		}
	}
	n += 3*4 + 6*8
	if err := binary.Write(w, binary.LittleEndian, v.Data); err != nil {
		return n, err
	}
	n += int64(4 * len(v.Data))
	return n, nil
}

// Read deserializes a volume written by WriteTo.
func Read(r io.Reader) (*Volume, error) {
	magic := make([]byte, len(volumeMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("volume: reading magic: %w", err)
	}
	if string(magic) != volumeMagic {
		return nil, errors.New("volume: bad magic")
	}
	var nx, ny, nz int32
	for _, p := range []*int32{&nx, &ny, &nz} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if nx <= 0 || ny <= 0 || nz <= 0 || int64(nx)*int64(ny)*int64(nz) > 1<<30 {
		return nil, fmt.Errorf("volume: implausible dimensions %dx%dx%d", nx, ny, nz)
	}
	var o, s [3]float64
	for i := range o {
		if err := binary.Read(r, binary.LittleEndian, &o[i]); err != nil {
			return nil, err
		}
	}
	for i := range s {
		if err := binary.Read(r, binary.LittleEndian, &s[i]); err != nil {
			return nil, err
		}
	}
	v := &Volume{
		NX: int(nx), NY: int(ny), NZ: int(nz),
		Origin: geom.V(o[0], o[1], o[2]),
		Size:   geom.V(s[0], s[1], s[2]),
		Data:   make([]float32, int(nx)*int(ny)*int(nz)),
	}
	if err := binary.Read(r, binary.LittleEndian, v.Data); err != nil {
		return nil, err
	}
	return v, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClipToSphere returns a copy of v with every voxel whose center lies
// outside the sphere set to the fill value. Interior navigation builds one
// light field database per track station from the sub-volume its focal
// sphere can contain (paper section 3.2: multiple databases, same
// framework).
func (v *Volume) ClipToSphere(s geom.Sphere, fill float32) *Volume {
	out := &Volume{
		NX: v.NX, NY: v.NY, NZ: v.NZ,
		Origin: v.Origin, Size: v.Size,
		Data: make([]float32, len(v.Data)),
	}
	copy(out.Data, v.Data)
	forEachVoxel(out, func(i, j, k int, p geom.Vec3) float32 {
		if p.Sub(s.Center).Len2() > s.Radius*s.Radius {
			return fill
		}
		return out.Data[out.index(i, j, k)]
	})
	return out
}
