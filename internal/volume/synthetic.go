package volume

import (
	"math"
	"math/rand"

	"lonviz/internal/geom"
)

// charge is one Gaussian charge of the synthetic potential field.
type charge struct {
	pos   geom.Vec3
	q     float64 // signed magnitude
	sigma float64 // Gaussian radius
}

// NegHip synthesizes the stand-in for the paper's negHip dataset: the
// electrical potential of a negative high-energy protein, 64^3 by default.
// It superposes positive and negative Gaussian charges arranged as a short
// helical backbone with pendant side groups, then normalizes to [0,1] so
// 0.5 is neutral potential. The result mixes broad semi-transparent lobes
// with compact high-magnitude cores, exercising the same rendering regime
// (semi-transparency + full opaqueness) as the original dataset.
func NegHip(n int) (*Volume, error) {
	v, err := New(n, n, n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(0x6e654869)) // "neHi" — fixed for reproducibility

	var charges []charge
	// Helical backbone of alternating charges.
	const backbone = 14
	for i := 0; i < backbone; i++ {
		t := float64(i) / float64(backbone-1) // 0..1
		ang := t * 4 * math.Pi
		pos := geom.V(
			0.28*math.Cos(ang),
			0.28*math.Sin(ang),
			0.7*(t-0.5),
		)
		q := 1.0
		if i%2 == 1 {
			q = -1.2 // net negative, as the name says
		}
		charges = append(charges, charge{pos: pos, q: q, sigma: 0.06 + 0.02*rng.Float64()})
	}
	// Pendant side groups: small strong negative cores.
	for i := 0; i < 10; i++ {
		dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Norm()
		base := charges[rng.Intn(backbone)].pos
		charges = append(charges, charge{
			pos:   base.Add(dir.Scale(0.08 + 0.06*rng.Float64())),
			q:     -2.0 + 0.5*rng.Float64(),
			sigma: 0.03 + 0.01*rng.Float64(),
		})
	}
	// A diffuse positive halo to give the outer semi-transparent shell.
	charges = append(charges, charge{pos: geom.V(0, 0, 0), q: 0.4, sigma: 0.22})

	fillCharges(v, charges)
	// Symmetric normalization keeps neutral potential on the transfer
	// function's transparent midpoint, so empty space renders empty.
	v.NormalizeSymmetric()
	return v, nil
}

// Blobs synthesizes a field of nBlobs random Gaussian blobs; handy as a
// second test dataset with different spatial frequency content. seed makes
// the dataset reproducible.
func Blobs(n, nBlobs int, seed int64) (*Volume, error) {
	v, err := New(n, n, n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	charges := make([]charge, 0, nBlobs)
	for i := 0; i < nBlobs; i++ {
		charges = append(charges, charge{
			pos: geom.V(
				(rng.Float64()-0.5)*0.8,
				(rng.Float64()-0.5)*0.8,
				(rng.Float64()-0.5)*0.8,
			),
			q:     0.5 + rng.Float64(),
			sigma: 0.05 + 0.1*rng.Float64(),
		})
	}
	fillCharges(v, charges)
	v.Normalize()
	return v, nil
}

// Shell synthesizes a hollow spherical shell — a worst case for occlusion
// culling (every external ray through the bounding sphere hits data) and a
// best case for view coherence.
func Shell(n int, radius, thickness float64) (*Volume, error) {
	v, err := New(n, n, n)
	if err != nil {
		return nil, err
	}
	forEachVoxel(v, func(i, j, k int, p geom.Vec3) float32 {
		d := p.Len() - radius
		return float32(math.Exp(-d * d / (2 * thickness * thickness)))
	})
	v.Normalize()
	return v, nil
}

// fillCharges evaluates the superposed Gaussian charges into v.
func fillCharges(v *Volume, charges []charge) {
	forEachVoxel(v, func(i, j, k int, p geom.Vec3) float32 {
		var sum float64
		for _, c := range charges {
			d2 := p.Sub(c.pos).Len2()
			sum += c.q * math.Exp(-d2/(2*c.sigma*c.sigma))
		}
		return float32(sum)
	})
}

// forEachVoxel calls f with every voxel index and its world-space center,
// storing the returned value.
func forEachVoxel(v *Volume, f func(i, j, k int, p geom.Vec3) float32) {
	for k := 0; k < v.NZ; k++ {
		z := v.Origin.Z + (float64(k)+0.5)/float64(v.NZ)*v.Size.Z
		for j := 0; j < v.NY; j++ {
			y := v.Origin.Y + (float64(j)+0.5)/float64(v.NY)*v.Size.Y
			for i := 0; i < v.NX; i++ {
				x := v.Origin.X + (float64(i)+0.5)/float64(v.NX)*v.Size.X
				v.Data[v.index(i, j, k)] = f(i, j, k, geom.V(x, y, z))
			}
		}
	}
}
