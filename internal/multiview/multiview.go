// Package multiview implements interior navigation with multiple light
// field databases (paper section 3.2: "To allow user navigation through
// the interior of a volume, multiple light field databases are needed
// [16], but the same framework for remote visualization can be reused").
//
// A Track places stations along a camera path through the volume. Each
// station is an ordinary spherical light field database — its own Params
// with a local center and small radii — published under a derived dataset
// name, streamed by the ordinary agents, and rendered by the ordinary
// renderer. The Browser glues them together: given a viewer position it
// selects the station whose database supports that viewpoint and delegates
// to that station's viewer, so walking the track is a sequence of plain
// external-browsing sessions.
package multiview

import (
	"context"
	"fmt"
	"math"

	"lonviz/internal/agent"
	"lonviz/internal/geom"
	"lonviz/internal/lightfield"
	"lonviz/internal/render"
	"lonviz/internal/volume"
)

// Station is one light field database along a track.
type Station struct {
	// Index is the station's position on the track.
	Index int
	// Dataset is the derived dataset name (base + "#sNN").
	Dataset string
	// P is the station's database geometry: the template with a local
	// center and scaled radii.
	P lightfield.Params
}

// Track is an ordered sequence of stations along a path through the
// volume's interior.
type Track struct {
	Base     string
	Stations []Station
}

// NewTrack builds stations from a template geometry: one per path point,
// each with the template's lattice but centered at the point with radii
// scaled by radiusScale (so stations cover local neighborhoods rather than
// the whole volume).
func NewTrack(base string, template lightfield.Params, path []geom.Vec3, radiusScale float64) (*Track, error) {
	if base == "" {
		return nil, fmt.Errorf("multiview: empty base dataset name")
	}
	if len(path) == 0 {
		return nil, fmt.Errorf("multiview: empty path")
	}
	if radiusScale <= 0 || radiusScale > 1 {
		return nil, fmt.Errorf("multiview: radius scale %v out of (0, 1]", radiusScale)
	}
	if err := template.Validate(); err != nil {
		return nil, err
	}
	t := &Track{Base: base}
	for i, c := range path {
		p := template
		p.Center = c
		p.InnerRadius = template.InnerRadius * radiusScale
		p.OuterRadius = template.OuterRadius * radiusScale
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("multiview: station %d: %w", i, err)
		}
		t.Stations = append(t.Stations, Station{
			Index:   i,
			Dataset: StationDataset(base, i),
			P:       p,
		})
	}
	return t, nil
}

// StationDataset derives the DVS dataset name for station i of base.
func StationDataset(base string, i int) string {
	return fmt.Sprintf("%s#s%02d", base, i)
}

// StationFor returns the station that best supports a viewer at pos: the
// nearest station center whose outer sphere does not contain the viewer
// (the external-browsing requirement). ok is false when the viewer is
// inside every station's camera sphere.
func (t *Track) StationFor(pos geom.Vec3) (Station, bool) {
	best := Station{}
	bestDist := math.Inf(1)
	found := false
	for _, s := range t.Stations {
		d := pos.Dist(s.P.Center)
		if d <= s.P.OuterRadius {
			continue // inside this station's camera sphere
		}
		if d < bestDist {
			bestDist = d
			best = s
			found = true
		}
	}
	return best, found
}

// SourceFactory builds the view set source (typically a client agent or a
// remote proxy) for one station. The multiview framework is deliberately
// agnostic: the same LoN streaming stack serves every station.
type SourceFactory func(st Station) (agent.ViewSetSource, error)

// Browser walks a track, lazily constructing one viewer per station.
type Browser struct {
	Track   *Track
	Factory SourceFactory

	viewers map[int]*agent.Viewer
}

// NewBrowser validates inputs and returns an empty browser.
func NewBrowser(t *Track, f SourceFactory) (*Browser, error) {
	if t == nil || len(t.Stations) == 0 {
		return nil, fmt.Errorf("multiview: browser needs a track")
	}
	if f == nil {
		return nil, fmt.Errorf("multiview: browser needs a source factory")
	}
	return &Browser{Track: t, Factory: f, viewers: make(map[int]*agent.Viewer)}, nil
}

// viewer returns (building if needed) the viewer for a station.
func (b *Browser) viewer(st Station) (*agent.Viewer, error) {
	if v, ok := b.viewers[st.Index]; ok {
		return v, nil
	}
	src, err := b.Factory(st)
	if err != nil {
		return nil, fmt.Errorf("multiview: station %d source: %w", st.Index, err)
	}
	v, err := agent.NewViewer(st.P, src)
	if err != nil {
		return nil, err
	}
	b.viewers[st.Index] = v
	return v, nil
}

// MoveResult reports one interior move.
type MoveResult struct {
	Station Station
	Record  agent.AccessRecord
}

// MoveTo processes a viewer position: select the supporting station,
// convert the position to that station's viewing direction, and fetch the
// covering view set through the station's own streaming stack.
func (b *Browser) MoveTo(ctx context.Context, pos geom.Vec3) (MoveResult, error) {
	st, ok := b.Track.StationFor(pos)
	if !ok {
		return MoveResult{}, fmt.Errorf("multiview: position %v inside every station's camera sphere", pos)
	}
	v, err := b.viewer(st)
	if err != nil {
		return MoveResult{}, err
	}
	sp := st.P.OuterSphere().SphericalOf(pos)
	rec, err := v.MoveTo(ctx, sp)
	if err != nil {
		return MoveResult{}, err
	}
	return MoveResult{Station: st, Record: rec}, nil
}

// Render reconstructs the view from pos toward the active station's
// center at the given display resolution.
func (b *Browser) Render(pos geom.Vec3, res int) (*render.Image, lightfield.RenderStats, error) {
	st, ok := b.Track.StationFor(pos)
	if !ok {
		return nil, lightfield.RenderStats{}, fmt.Errorf("multiview: unsupported position %v", pos)
	}
	v, err := b.viewer(st)
	if err != nil {
		return nil, lightfield.RenderStats{}, err
	}
	sp := st.P.OuterSphere().SphericalOf(pos)
	return v.Render(sp, pos.Dist(st.P.Center), res)
}

// StationGenerators builds a clipped ray-cast generator per station from
// one shared volume — the offline generation plan for an interior track.
func StationGenerators(t *Track, vol *volume.Volume, tf *volume.TransferFunction) (map[string]lightfield.Generator, error) {
	out := make(map[string]lightfield.Generator, len(t.Stations))
	for _, st := range t.Stations {
		gen, err := lightfield.NewClippedRaycastGenerator(st.P, vol, tf)
		if err != nil {
			return nil, fmt.Errorf("multiview: station %d generator: %w", st.Index, err)
		}
		out[st.Dataset] = gen
	}
	return out, nil
}
