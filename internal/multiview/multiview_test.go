package multiview

import (
	"context"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/volume"
)

func trackTemplate() lightfield.Params {
	p := lightfield.ScaledParams(45, 2, 8) // tiny station DBs
	p.InnerRadius = 0.6
	p.OuterRadius = 1.5
	return p
}

func testPath() []geom.Vec3 {
	return []geom.Vec3{
		geom.V(-0.3, 0, 0),
		geom.V(0, 0, 0),
		geom.V(0.3, 0, 0),
	}
}

func TestNewTrackValidation(t *testing.T) {
	tpl := trackTemplate()
	if _, err := NewTrack("", tpl, testPath(), 0.5); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := NewTrack("d", tpl, nil, 0.5); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := NewTrack("d", tpl, testPath(), 0); err == nil {
		t.Error("zero radius scale accepted")
	}
	if _, err := NewTrack("d", tpl, testPath(), 1.5); err == nil {
		t.Error("radius scale > 1 accepted")
	}
	tr, err := NewTrack("neghip", tpl, testPath(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stations) != 3 {
		t.Fatalf("stations = %d", len(tr.Stations))
	}
	if tr.Stations[1].Dataset != "neghip#s01" {
		t.Errorf("dataset name = %q", tr.Stations[1].Dataset)
	}
	if tr.Stations[2].P.Center != geom.V(0.3, 0, 0) {
		t.Errorf("station center = %v", tr.Stations[2].P.Center)
	}
	if tr.Stations[0].P.OuterRadius != tpl.OuterRadius*0.4 {
		t.Errorf("station radius = %v", tr.Stations[0].P.OuterRadius)
	}
}

func TestStationForSelection(t *testing.T) {
	tr, err := NewTrack("d", trackTemplate(), testPath(), 0.4) // outer radius 0.6
	if err != nil {
		t.Fatal(err)
	}
	// A viewer to the left, outside station 0's sphere: picks station 0.
	st, ok := tr.StationFor(geom.V(-1.2, 0, 0))
	if !ok || st.Index != 0 {
		t.Errorf("left viewer -> station %d (ok=%v)", st.Index, ok)
	}
	// A viewer above the middle: the nearest non-containing station.
	st, ok = tr.StationFor(geom.V(0, 0.9, 0))
	if !ok || st.Index != 1 {
		t.Errorf("top viewer -> station %d (ok=%v)", st.Index, ok)
	}
	// A viewer inside station 1's sphere but outside 0's and 2's still
	// resolves (to one of the neighbors).
	st, ok = tr.StationFor(geom.V(0, 0.55, 0))
	if !ok {
		t.Error("near-center viewer unsupported")
	}
	_ = st
}

func TestStationGeneratorsClip(t *testing.T) {
	tr, err := NewTrack("d", trackTemplate(), testPath(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := volume.NegHip(16)
	if err != nil {
		t.Fatal(err)
	}
	gens, err := StationGenerators(tr, vol, volume.DefaultNegHipTF())
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("generators = %d", len(gens))
	}
	// A generated station view set survives the masked marshal round trip
	// (the clip restored the occlusion guarantee).
	gen := gens["d#s00"]
	vs, err := gen.GenerateViewSet(context.Background(), lightfield.ViewSetID{R: 1, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := vs.Marshal(gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	got, err := lightfield.UnmarshalViewSet(data, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(vs) {
		t.Error("clipped station view set lost pixels under the occlusion mask")
	}
}

// stationRig deploys the ordinary streaming stack for every station of a
// track — demonstrating the paper's "same framework reused" claim.
func stationRig(t *testing.T, tr *Track) SourceFactory {
	t.Helper()
	// Shared depots and DVS across stations.
	var depots []string
	for i := 0; i < 2; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		depots = append(depots, addr)
	}
	dvsSrv := dvs.NewServer("")
	dvsAddr, err := dvsSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dvsSrv.Close() })

	// One server agent per station dataset, all publishing up front.
	for _, st := range tr.Stations {
		gen, err := lightfield.NewProceduralGenerator(st.P, int64(st.Index))
		if err != nil {
			t.Fatal(err)
		}
		sa, err := agent.NewServerAgent(agent.ServerAgentConfig{
			Dataset: st.Dataset,
			Gen:     gen,
			Depots:  depots,
			DVS:     &dvs.Client{Addr: dvsAddr},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sa.Close() })
		if _, err := sa.PrecomputeAll(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// The factory hands each station its own client agent over the shared
	// DVS.
	return func(st Station) (agent.ViewSetSource, error) {
		ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
			Dataset: st.Dataset,
			Params:  st.P,
			DVS:     &dvs.Client{Addr: dvsAddr},
		})
		if err != nil {
			return nil, err
		}
		t.Cleanup(ca.Close)
		return ca, nil
	}
}

func TestBrowserWalkthrough(t *testing.T) {
	tr, err := NewTrack("interior", trackTemplate(), testPath(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	factory := stationRig(t, tr)
	b, err := NewBrowser(tr, factory)
	if err != nil {
		t.Fatal(err)
	}
	// Walk a path crossing station territories.
	walk := []geom.Vec3{
		geom.V(-1.4, 0.1, 0),
		geom.V(-1.0, 0.6, 0.2),
		geom.V(0, 1.0, 0.3),
		geom.V(1.0, 0.6, 0.2),
		geom.V(1.4, 0.1, 0),
	}
	stationsSeen := map[int]bool{}
	for i, pos := range walk {
		res, err := b.MoveTo(context.Background(), pos)
		if err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		stationsSeen[res.Station.Index] = true
		if res.Record.Bytes == 0 && res.Record.Class != agent.AccessHit {
			t.Errorf("move %d: empty non-hit record %+v", i, res.Record)
		}
	}
	if len(stationsSeen) < 2 {
		t.Errorf("walk used %d stations, want >= 2 (no hand-off happened)", len(stationsSeen))
	}
	// Rendering from the last position works through the station's viewer.
	im, stats, err := b.Render(walk[len(walk)-1], 24)
	if err != nil {
		t.Fatal(err)
	}
	if im.Res != 24 || stats.Filled == 0 {
		t.Errorf("render stats = %+v", stats)
	}
}

func TestBrowserUnsupportedPosition(t *testing.T) {
	tr, err := NewTrack("d", trackTemplate(), []geom.Vec3{geom.V(0, 0, 0)}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBrowser(tr, func(st Station) (agent.ViewSetSource, error) {
		t.Fatal("factory should not be called")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inside the single station's outer sphere: unsupported.
	if _, err := b.MoveTo(context.Background(), geom.V(0.1, 0, 0)); err == nil {
		t.Error("interior position accepted")
	}
}

func TestNewBrowserValidation(t *testing.T) {
	if _, err := NewBrowser(nil, nil); err == nil {
		t.Error("nil track accepted")
	}
	tr, _ := NewTrack("d", trackTemplate(), testPath(), 0.5)
	if _, err := NewBrowser(tr, nil); err == nil {
		t.Error("nil factory accepted")
	}
}
