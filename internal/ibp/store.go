package ibp

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// blockStore abstracts allocation backing storage: memory for small test
// depots, sparse files for production-sized ones.
type blockStore interface {
	writeAt(data []byte, off int64) error
	readAt(dst []byte, off int64) error
	destroy() error
}

// memStore keeps the bytes in RAM.
type memStore struct {
	data []byte
}

func (m *memStore) writeAt(data []byte, off int64) error {
	copy(m.data[off:], data)
	return nil
}

func (m *memStore) readAt(dst []byte, off int64) error {
	copy(dst, m.data[off:off+int64(len(dst))])
	return nil
}

func (m *memStore) destroy() error {
	m.data = nil
	return nil
}

// fileStore backs the allocation with one sparse file.
type fileStore struct {
	f    *os.File
	path string
}

var fileStoreSeq atomic.Uint64

// newStore picks the backing store per depot configuration.
func (d *Depot) newStore(size int64) (blockStore, error) {
	if d.cfg.Dir == "" {
		return &memStore{data: make([]byte, size)}, nil
	}
	path := filepath.Join(d.cfg.Dir, fmt.Sprintf("alloc-%016x.dat", fileStoreSeq.Add(1)))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ibp: creating allocation file: %w", err)
	}
	// A sparse file of the full allocation size: unwritten regions read as
	// zeros, matching the memory store's semantics.
	if err := f.Truncate(size); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("ibp: sizing allocation file: %w", err)
	}
	return &fileStore{f: f, path: path}, nil
}

func (s *fileStore) writeAt(data []byte, off int64) error {
	if _, err := s.f.WriteAt(data, off); err != nil {
		return fmt.Errorf("ibp: allocation write: %w", err)
	}
	return nil
}

func (s *fileStore) readAt(dst []byte, off int64) error {
	if _, err := s.f.ReadAt(dst, off); err != nil {
		return fmt.Errorf("ibp: allocation read: %w", err)
	}
	return nil
}

func (s *fileStore) destroy() error {
	s.f.Close()
	return os.Remove(s.path)
}
