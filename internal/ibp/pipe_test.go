package ibp

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lonviz/internal/obs"
)

// allocStore is the usual setup: one allocation filled with a known
// pattern through the serial client.
func allocStore(t *testing.T, cl *Client, n int) (Capabilities, []byte) {
	t.Helper()
	ctx := context.Background()
	caps, err := cl.Allocate(ctx, int64(n), time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := cl.Store(ctx, caps.Write, 0, data); err != nil {
		t.Fatal(err)
	}
	return caps, data
}

func TestPipelinedLoadRoundTrip(t *testing.T) {
	addr, cl, _ := startDepotServer(t, 1<<20)
	caps, data := allocStore(t, cl, 64*1024)

	ctx := context.Background()
	p, err := DialPipe(ctx, addr, nil, 8, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Window() != 8 {
		t.Fatalf("granted window = %d, want 8", p.Window())
	}
	// Many concurrent loads over one connection, each into its own
	// destination slice.
	var wg sync.WaitGroup
	errs := make([]error, 32)
	got := make([][]byte, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := (i % 16) * 4096
			dst := make([]byte, 4096)
			errs[i] = p.Load(ctx, caps.Read, int64(off), dst)
			got[i] = dst
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		off := (i % 16) * 4096
		if !bytes.Equal(got[i], data[off:off+4096]) {
			t.Fatalf("load %d: payload mismatch", i)
		}
	}
}

func TestPipelinedStoreAndProbe(t *testing.T) {
	addr, cl, _ := startDepotServer(t, 1<<20)
	ctx := context.Background()
	caps, err := cl.Allocate(ctx, 8192, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DialPipe(ctx, addr, nil, 4, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	payload := []byte(strings.Repeat("x", 8192))
	if err := p.Store(ctx, caps.Write, 0, payload); err != nil {
		t.Fatal(err)
	}
	info, err := p.Probe(ctx, caps.Manage)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 8192 {
		t.Fatalf("probe size = %d", info.Size)
	}
	// Verify through the serial path that the pipelined STORE landed.
	back, err := cl.Load(ctx, caps.Read, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("pipelined STORE payload mismatch")
	}
}

func TestPipelinedErrorsAreTypedAndNonFatal(t *testing.T) {
	addr, cl, _ := startDepotServer(t, 1<<20)
	caps, data := allocStore(t, cl, 4096)
	ctx := context.Background()
	p, err := DialPipe(ctx, addr, nil, 4, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// A bad capability fails just that request with the typed error...
	err = p.Load(ctx, "nosuchcap", 0, make([]byte, 16))
	if !errors.Is(err, ErrNoCap) {
		t.Fatalf("bad cap error = %v, want ErrNoCap", err)
	}
	// ...and the pipe keeps working.
	dst := make([]byte, 4096)
	if err := p.Load(ctx, caps.Read, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("payload mismatch after error")
	}
}

// TestPipelinedOutOfOrderResponses drives the client against a scripted
// server that answers tags in reverse order, proving the tag matcher
// does not assume FIFO completion.
func TestPipelinedOutOfOrderResponses(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		line, _ := br.ReadString('\n') // PIPELINE handshake
		if !strings.HasPrefix(line, "PIPELINE") {
			return
		}
		fmt.Fprintf(c, "OK 8\n")
		// Collect two tagged LOADs, then answer them newest-first.
		type req struct {
			tag string
			n   int
		}
		var reqs []req
		for len(reqs) < 2 {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			f := strings.Fields(line)
			// LOAD <cap> <off> <len> tag=<n>
			var n int
			fmt.Sscanf(f[3], "%d", &n)
			tag := strings.TrimPrefix(f[4], "tag=")
			reqs = append(reqs, req{tag: tag, n: n})
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			fmt.Fprintf(c, "T%s OK %d\n", reqs[i].tag, reqs[i].n)
			c.Write(bytes.Repeat([]byte{byte('A' + i)}, reqs[i].n))
		}
		// Hold the connection open until the client is done.
		br.ReadString('\n')
	}()

	ctx := context.Background()
	p, err := DialPipe(ctx, l.Addr().String(), nil, 8, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	dsts := [][]byte{make([]byte, 100), make([]byte, 200)}
	errs := make([]error, 2)
	for i := range dsts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Issue in tag order by staggering: tag assignment is inside
			// do(), so serialize issuance while letting both wait.
			errs[i] = p.Load(ctx, "cap", 0, dsts[i])
		}(i)
		time.Sleep(50 * time.Millisecond) // ensure deterministic tag order 1,2
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("loads failed: %v %v", errs[0], errs[1])
	}
	// Tag 1 (len 100) was answered second with byte 'A'; tag 2 (len 200)
	// first with byte 'B'.
	if dsts[0][0] != 'A' || dsts[0][99] != 'A' {
		t.Fatalf("first request got wrong payload byte %q", dsts[0][0])
	}
	if dsts[1][0] != 'B' || dsts[1][199] != 'B' {
		t.Fatalf("second request got wrong payload byte %q", dsts[1][0])
	}
}

// TestPipeWindowBackpressure proves the client-side window bounds
// in-flight requests: with a window of 2 and a server that stalls, a
// third request must block until a slot frees, then fail cleanly when
// the pipe is torn down.
func TestPipeWindowBackpressure(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	released := make(chan struct{})
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		br.ReadString('\n')
		fmt.Fprintf(c, "OK 2\n")
		// Swallow requests without answering until released.
		go func() {
			for {
				if _, err := br.ReadString('\n'); err != nil {
					return
				}
			}
		}()
		<-released
	}()
	ctx := context.Background()
	p, err := DialPipe(ctx, l.Addr().String(), nil, 2, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer close(released)
	defer p.Close()

	// Fill the window with two requests that will never be answered.
	for i := 0; i < 2; i++ {
		go p.Load(ctx, "cap", 0, make([]byte, 8))
	}
	time.Sleep(100 * time.Millisecond)

	// The third must still be waiting for a slot when its short ctx
	// expires — proving it never hit the wire past the window.
	sctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	var third atomic.Value
	done := make(chan struct{})
	go func() {
		third.Store(p.Load(sctx, "cap", 0, make([]byte, 8)))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("third request did not return after ctx expiry")
	}
	if err, _ := third.Load().(error); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("third request error = %v, want ctx deadline (blocked on window)", err)
	}
}

// TestPipeMidstreamDrop kills the connection (via netsim fault
// injection) while loads are in flight: every waiter must fail with
// ErrPipeBroken, and a PipePool must recover by redialing.
func TestPipeMidstreamDrop(t *testing.T) {
	addr, cl, _ := startDepotServer(t, 1<<20)
	caps, _ := allocStore(t, cl, 256*1024)
	ctx := context.Background()

	// Dial directly with a raw dialer we can sever: wrap the conn.
	sever := &severDialer{}
	p, err := DialPipe(ctx, addr, sever, 8, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Cut the wire, then issue loads: all must fail with ErrPipeBroken
	// (either on write or via the reader's failure fanout).
	var wg sync.WaitGroup
	errs := make([]error, 4)
	sever.sever()
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.Load(ctx, caps.Read, 0, make([]byte, 4096))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("load %d succeeded over a severed pipe", i)
		}
		if !errors.Is(err, ErrPipeBroken) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("load %d error = %v, want ErrPipeBroken", i, err)
		}
	}
	if p.Broken() == nil {
		t.Fatal("pipe not marked broken after connection drop")
	}

	// A pool recovers: the broken pipe is dropped and the next op
	// redials a healthy connection.
	pool := &PipePool{Window: 8, Obs: obs.NewRegistry()}
	dst := make([]byte, 4096)
	if err := pool.LoadInto(ctx, addr, caps.Read, 0, dst); err != nil {
		t.Fatalf("pool load after drop: %v", err)
	}
	if pool.Mode(addr) != "pipelined" {
		t.Fatalf("pool mode = %q, want pipelined", pool.Mode(addr))
	}
}

// severDialer hands out connections whose underlying socket it can
// close on demand.
type severDialer struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (d *severDialer) Dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.conns = append(d.conns, c)
	d.mu.Unlock()
	return c, nil
}

func (d *severDialer) sever() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.conns {
		c.Close()
	}
	d.conns = nil
}

// TestPipePoolSerialFallback pins the back-compat contract: against a
// depot that predates PIPELINE (simulated by a server with pipelining
// disabled), the pool detects the refusal once, pins the depot serial,
// and every subsequent load still succeeds over one-shot connections.
func TestPipePoolSerialFallback(t *testing.T) {
	d, err := NewDepot(DepotConfig{Capacity: 1 << 20, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	srv.PipelineWindow = -1 // old-protocol behavior: PIPELINE answers ERR
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := &Client{Addr: addr}
	caps, data := allocStore(t, cl, 4096)

	reg := obs.NewRegistry()
	pool := &PipePool{Window: 8, Obs: reg}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		dst := make([]byte, 4096)
		if err := pool.LoadInto(ctx, addr, caps.Read, 0, dst); err != nil {
			t.Fatalf("serial-fallback load %d: %v", i, err)
		}
		if !bytes.Equal(dst, data) {
			t.Fatalf("serial-fallback load %d: payload mismatch", i)
		}
	}
	if pool.Mode(addr) != "serial" {
		t.Fatalf("pool mode = %q, want serial", pool.Mode(addr))
	}
	// Exactly one handshake attempt, three serial ops.
	if got := reg.Counter(obs.MIBPPipeFallbacks).Value(); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
	if got := reg.Counter(obs.Label(obs.MIBPPipeOps, "mode", "serial")).Value(); got != 3 {
		t.Fatalf("serial ops = %d, want 3", got)
	}
}

// TestPipelinedShedKeepsConnection proves a pipelined BUSY shed answers
// the one tagged request and leaves the connection (and the other
// in-flight work) intact — the serial loop must hang up instead.
func TestPipelinedShedKeepsConnection(t *testing.T) {
	d, err := NewDepot(DepotConfig{Capacity: 1 << 20, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := &Client{Addr: addr}
	caps, data := allocStore(t, cl, 4096)

	p, err := DialPipe(context.Background(), addr, nil, 4, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// An exhausted propagated deadline sheds server-side even with no
	// admission gate configured.
	obs.SetPropagation(true)
	defer obs.SetPropagation(false)
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err = p.Load(expired, caps.Read, 0, make([]byte, 4096))
	if err == nil {
		t.Fatal("expired-budget load succeeded, want BUSY shed")
	}
	// The caller may observe its own ctx error or the server's BUSY;
	// either way the pipe must survive for the next request.
	dst := make([]byte, 4096)
	if err := p.Load(context.Background(), caps.Read, 0, dst); err != nil {
		t.Fatalf("load after shed: %v", err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("payload mismatch after shed")
	}
}
