package ibp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
)

// Client performs IBP operations against one depot address. Each operation
// opens its own connection, so independent operations parallelize across
// sockets (the LoRS download algorithms rely on this). Every operation
// takes a context: cancellation interrupts in-flight transfers (the
// connection deadline is yanked), and a context deadline tightens the
// per-operation timeout. The zero value is not usable; set Addr.
type Client struct {
	// Addr is the depot's host:port.
	Addr string
	// Dialer establishes connections; nil means plain TCP.
	Dialer Dialer
	// Timeout bounds one whole operation (default 30s). The effective
	// deadline is min(ctx deadline, now+Timeout).
	Timeout time.Duration
	// Obs receives per-operation latency histograms, byte counters, and
	// error counts; nil records into obs.Default(). See
	// docs/OBSERVABILITY.md for the ibp.* metric catalog.
	Obs *obs.Registry
}

// registry resolves the metrics destination.
func (c *Client) registry() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default()
}

// observeOp records one operation's outcome: latency into the per-verb
// and per-depot histograms (with the request's trace ID as the exemplar,
// so a slow tail links back to its merged trace), payload bytes into the
// direction counters, and failures into the per-verb error counter.
func (c *Client) observeOp(ctx context.Context, verb string, elapsed time.Duration, sent, received int, err error) {
	reg := c.registry()
	ms := float64(elapsed) / 1e6
	tid := obs.TraceIDFrom(ctx)
	reg.Histogram(obs.Label(obs.MIBPOpMs, "op", verb), obs.LatencyBucketsMs...).ObserveTrace(ms, tid)
	reg.Histogram(obs.Label(obs.MIBPDepotMs, "depot", c.Addr), obs.LatencyBucketsMs...).ObserveTrace(ms, tid)
	reg.Counter(obs.MIBPBytesOut).Add(int64(sent))
	reg.Counter(obs.MIBPBytesIn).Add(int64(received))
	if err != nil {
		reg.Counter(obs.Label(obs.MIBPOpErrors, "op", verb)).Inc()
	}
}

// dial connects and arms the operation deadline. The dial itself runs in a
// goroutine so a cancelled context abandons (and closes) a slow connect
// instead of waiting it out.
func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d := c.Dialer
	if d == nil {
		d = NetDialer{}
	}
	type dialResult struct {
		conn net.Conn
		err  error
	}
	ch := make(chan dialResult, 1)
	go func() {
		conn, err := d.Dial(c.Addr)
		ch <- dialResult{conn, err}
	}()
	var conn net.Conn
	select {
	case <-ctx.Done():
		go func() {
			if r := <-ch; r.conn != nil {
				r.conn.Close()
			}
		}()
		return nil, ctx.Err()
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		conn = r.conn
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	_ = conn.SetDeadline(deadline)
	return conn, nil
}

// roundTrip sends one request (line + optional payload) and parses the
// response status line. Context cancellation mid-operation forces the
// connection deadline into the past, which unblocks any in-flight read or
// write; the operation then reports ctx.Err().
func (c *Client) roundTrip(ctx context.Context, req string, payload []byte) (fields []string, body []byte, err error) {
	return c.roundTripInto(ctx, req, payload, nil)
}

// roundTripInto is roundTrip with an optional caller-provided LOAD
// destination: with dst non-nil the response body is read directly into
// it (and must be exactly len(dst) bytes), eliminating the per-load
// allocation and copy.
func (c *Client) roundTripInto(ctx context.Context, req string, payload, dst []byte) (fields []string, body []byte, err error) {
	verb := req
	if i := strings.IndexAny(req, " \n"); i >= 0 {
		verb = req[:i]
	}
	// Propagate the caller's context as optional trailing tokens: a
	// deadline=<ms> remaining-budget token (overload control: the depot
	// drops work whose client has moved on) and a trace=<tid>/<sid> token
	// (tracing). LineTokens returns "" (no allocation) when propagation
	// is off or ctx carries neither, so unpropagated deployments send
	// byte-identical request lines to pre-propagation ones.
	if toks := obs.LineTokens(ctx); toks != "" {
		if n := len(req); n > 0 && req[n-1] == '\n' {
			req = req[:n-1] + toks + "\n"
		}
	}
	start := time.Now()
	defer func() {
		c.observeOp(ctx, verb, time.Since(start), len(payload), len(body), err)
	}()
	// CPU attribution: client-side depot I/O shows up in profiles sliced
	// by {class=ibp_client, verb, depot}, so a slow depot is identifiable
	// from the caller's own capture bundle.
	lctx := prof.Begin3(ctx, prof.KeyClass, "ibp_client",
		prof.KeyVerb, verb, prof.KeyDepot, c.Addr)
	defer prof.End(ctx)
	ctx = lctx
	conn, err := c.dial(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()
	opDone := make(chan struct{})
	defer close(opDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Unix(1, 0))
		case <-opDone:
		}
	}()
	fields, body, err = c.exchange(conn, req, payload, dst)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, nil, ctxErr
		}
		return nil, nil, err
	}
	return fields, body, nil
}

// exchange performs the wire conversation on an established connection.
func (c *Client) exchange(conn net.Conn, req string, payload, dst []byte) ([]string, []byte, error) {
	bw := bufio.NewWriterSize(conn, 64*1024)
	if _, err := bw.WriteString(req); err != nil {
		return nil, nil, err
	}
	if len(payload) > 0 {
		if _, err := bw.Write(payload); err != nil {
			return nil, nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(conn, 64*1024)
	line, err := readLine(br)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: reading response: %v", ErrProto, err)
	}
	f := parseFields(line)
	if len(f) == 0 {
		return nil, nil, fmt.Errorf("%w: empty response", ErrProto)
	}
	switch f[0] {
	case "OK":
		// Responses with a body declare its length as the first OK field
		// only for LOAD; the caller decides whether to read a body.
		var body []byte
		if err := c.maybeReadBody(br, req, f[1:], dst, &body); err != nil {
			return nil, nil, err
		}
		return f[1:], body, nil
	case "ERR":
		if len(f) < 2 {
			return nil, nil, fmt.Errorf("%w: malformed error", ErrProto)
		}
		msg := ""
		if len(f) > 2 {
			for i := 2; i < len(f); i++ {
				if i > 2 {
					msg += " "
				}
				msg += f[i]
			}
		}
		return nil, nil, errOf(f[1], msg)
	default:
		return nil, nil, fmt.Errorf("%w: unexpected response %q", ErrProto, f[0])
	}
}

// maybeReadBody reads the binary body for verbs that have one (LOAD).
// With dst non-nil the body lands directly in the caller's buffer (and
// its length must match exactly) instead of a fresh allocation.
func (c *Client) maybeReadBody(br *bufio.Reader, req string, okFields []string, dst []byte, out *[]byte) error {
	if len(req) < 4 || req[:4] != "LOAD" {
		return nil
	}
	if len(okFields) < 1 {
		return fmt.Errorf("%w: LOAD response missing length", ErrProto)
	}
	n, err := strconv.ParseInt(okFields[0], 10, 64)
	if err != nil || n < 0 || n > maxTransfer {
		return fmt.Errorf("%w: bad LOAD length", ErrProto)
	}
	buf := dst
	if buf == nil {
		buf = make([]byte, n)
	} else if n != int64(len(dst)) {
		return fmt.Errorf("%w: LOAD returned %d of %d bytes", ErrProto, n, len(dst))
	}
	if _, err := io.ReadFull(br, buf); err != nil {
		return fmt.Errorf("%w: reading LOAD body: %v", ErrProto, err)
	}
	*out = buf
	return nil
}

// Allocate requests an allocation on the depot.
func (c *Client) Allocate(ctx context.Context, size int64, lease time.Duration, policy Policy) (Capabilities, error) {
	f, _, err := c.roundTrip(ctx, fmt.Sprintf("ALLOCATE %d %d %s\n", size, lease.Milliseconds(), policy), nil)
	if err != nil {
		return Capabilities{}, err
	}
	if len(f) != 3 {
		return Capabilities{}, fmt.Errorf("%w: ALLOCATE response fields", ErrProto)
	}
	return Capabilities{Read: f[0], Write: f[1], Manage: f[2]}, nil
}

// Store writes data at offset through a write capability.
func (c *Client) Store(ctx context.Context, writeCap string, offset int64, data []byte) error {
	_, _, err := c.roundTrip(ctx, fmt.Sprintf("STORE %s %d %d\n", writeCap, offset, len(data)), data)
	return err
}

// Load reads length bytes at offset through a read capability.
func (c *Client) Load(ctx context.Context, readCap string, offset, length int64) ([]byte, error) {
	_, body, err := c.roundTrip(ctx, fmt.Sprintf("LOAD %s %d %d\n", readCap, offset, length), nil)
	if err != nil {
		return nil, err
	}
	if int64(len(body)) != length {
		return nil, fmt.Errorf("%w: LOAD returned %d of %d bytes", ErrProto, len(body), length)
	}
	return body, nil
}

// LoadInto reads exactly len(dst) bytes at offset through a read
// capability, directly into dst — the zero-copy serial load (the
// pipelined equivalent lives on Pipe/PipePool).
func (c *Client) LoadInto(ctx context.Context, readCap string, offset int64, dst []byte) error {
	_, _, err := c.roundTripInto(ctx, fmt.Sprintf("LOAD %s %d %d\n", readCap, offset, len(dst)), nil, dst)
	return err
}

// Probe returns allocation metadata through a manage capability.
func (c *Client) Probe(ctx context.Context, manageCap string) (AllocInfo, error) {
	f, _, err := c.roundTrip(ctx, fmt.Sprintf("PROBE %s\n", manageCap), nil)
	if err != nil {
		return AllocInfo{}, err
	}
	if len(f) != 3 {
		return AllocInfo{}, fmt.Errorf("%w: PROBE response fields", ErrProto)
	}
	size, err1 := strconv.ParseInt(f[0], 10, 64)
	expMs, err2 := strconv.ParseInt(f[1], 10, 64)
	if err1 != nil || err2 != nil {
		return AllocInfo{}, fmt.Errorf("%w: PROBE response numbers", ErrProto)
	}
	return AllocInfo{Size: size, Expires: time.UnixMilli(expMs), Policy: Policy(f[2])}, nil
}

// Extend renews the allocation lease.
func (c *Client) Extend(ctx context.Context, manageCap string, lease time.Duration) (time.Time, error) {
	f, _, err := c.roundTrip(ctx, fmt.Sprintf("EXTEND %s %d\n", manageCap, lease.Milliseconds()), nil)
	if err != nil {
		return time.Time{}, err
	}
	if len(f) != 1 {
		return time.Time{}, fmt.Errorf("%w: EXTEND response fields", ErrProto)
	}
	ms, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("%w: EXTEND response number", ErrProto)
	}
	return time.UnixMilli(ms), nil
}

// Free releases the allocation immediately.
func (c *Client) Free(ctx context.Context, manageCap string) error {
	_, _, err := c.roundTrip(ctx, fmt.Sprintf("FREE %s\n", manageCap), nil)
	return err
}

// Copy asks this depot to transfer an extent directly to a write
// capability on another depot (third-party copy).
func (c *Client) Copy(ctx context.Context, readCap string, offset, length int64, targetAddr, targetWriteCap string, targetOffset int64) error {
	_, _, err := c.roundTrip(ctx, fmt.Sprintf("COPY %s %d %d %s %s %d\n",
		readCap, offset, length, targetAddr, targetWriteCap, targetOffset), nil)
	return err
}

// Status returns the depot's capacity accounting.
func (c *Client) Status(ctx context.Context) (capacity, used int64, allocations int, err error) {
	f, _, err := c.roundTrip(ctx, "STATUS\n", nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(f) != 3 {
		return 0, 0, 0, fmt.Errorf("%w: STATUS response fields", ErrProto)
	}
	capacity, err1 := strconv.ParseInt(f[0], 10, 64)
	used, err2 := strconv.ParseInt(f[1], 10, 64)
	allocs, err3 := strconv.Atoi(f[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, 0, fmt.Errorf("%w: STATUS response numbers", ErrProto)
	}
	return capacity, used, allocs, nil
}
