package ibp

// Pipelined (tagged multiplexed) server mode. A client that negotiates
// PIPELINE keeps one connection open and issues many requests without
// waiting for responses; the server executes up to the granted window
// concurrently and writes responses back tagged, in whatever order they
// finish. Payload-bearing requests (STORE) are consumed synchronously in
// the reader loop, so the byte stream stays framed no matter how
// execution interleaves — which is also what lets admission-control
// sheds answer with a tagged ERR BUSY and KEEP the connection, where the
// serial loop has to hang up.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"lonviz/internal/bufpool"
	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
	"lonviz/internal/overload"
)

// pipelineGrant validates a PIPELINE handshake and returns the granted
// window, or a non-empty refusal message (sent as ERR PROTO, which
// old-and-new clients alike read as "serial only").
func (s *Server) pipelineGrant(f []string) (int, string) {
	if s.PipelineWindow < 0 {
		return 0, "pipelining disabled"
	}
	if len(f) != 2 {
		return 0, "PIPELINE wants 1 arg"
	}
	req, err := strconv.Atoi(f[1])
	if err != nil || req <= 0 {
		return 0, "bad PIPELINE window"
	}
	max := s.PipelineWindow
	if max == 0 {
		max = DefaultPipelineWindow
	}
	granted := min(req, max, maxPipelineWindow)
	return granted, ""
}

// tagWriter serializes tagged responses from concurrently-finishing
// request goroutines onto one connection.
type tagWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// write emits one "T<tag> <head>[body]" response and flushes. head must
// end with \n. The first write error sticks and poisons the writer.
func (w *tagWriter) write(tag uint64, head, body []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	fmt.Fprintf(w.bw, "T%d ", tag)
	if _, err := w.bw.Write(head); err != nil {
		w.err = err
		return err
	}
	if len(body) > 0 {
		if _, err := w.bw.Write(body); err != nil {
			w.err = err
			return err
		}
	}
	w.err = w.bw.Flush()
	return w.err
}

// servePipelined runs the tagged multiplexed loop on an upgraded
// connection until the client hangs up or commits a protocol error.
func (s *Server) servePipelined(c net.Conn, br *bufio.Reader, window int) {
	reg := s.registry()
	tw := &tagWriter{bw: bufio.NewWriterSize(c, 64*1024)}
	slots := make(chan struct{}, window)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		line, err := readLine(br)
		if err != nil {
			return
		}
		// Strip order mirrors emission order (tag, then deadline, then
		// trace, reading the line right to left): trace= is last on the
		// wire, deadline= before it, tag= before both.
		f := parseFields(line)
		f, tc, traced := obs.StripTraceToken(f)
		f, budget, hasBudget := obs.StripDeadlineToken(f)
		f, tag, tagged := StripTagToken(f)
		if !tagged || len(f) == 0 {
			// An untagged request on a pipelined connection cannot even
			// be answered addressably; drop the connection so the
			// client resynchronizes by redialing.
			return
		}
		// STORE payloads are consumed here, in order, so stream framing
		// never depends on execution order. The parse must succeed
		// before the payload length is known; a malformed STORE is
		// protocol-fatal exactly like in serial mode.
		var payload []byte
		var storeOffset int64
		if f[0] == "STORE" {
			if len(f) != 4 {
				tw.write(tag, errRespLine(ErrProto, "STORE wants 3 args"), nil)
				return
			}
			offset, err1 := strconv.ParseInt(f[2], 10, 64)
			length, err2 := strconv.ParseInt(f[3], 10, 64)
			if err1 != nil || err2 != nil || length < 0 || length > maxTransfer {
				tw.write(tag, errRespLine(ErrProto, "bad STORE numbers"), nil)
				return
			}
			storeOffset = offset
			payload = bufpool.Get(int(length))
			if _, err := io.ReadFull(br, payload); err != nil {
				bufpool.Put(payload)
				return
			}
		}
		// Window backpressure: past the granted window the reader stops
		// pulling requests, which backs up into the client's TCP stream
		// and ultimately blocks its sender — the client-side Pipe also
		// bounds itself, so this only bites misbehaving clients.
		slots <- struct{}{}
		wg.Add(1)
		go func(f []string, tag uint64, storeOffset int64, payload []byte,
			tc obs.TraceContext, traced bool, budget time.Duration, hasBudget bool) {
			defer wg.Done()
			defer func() { <-slots }()
			s.servePipelinedOne(tw, reg, c, f, tag, storeOffset, payload, tc, traced, budget, hasBudget)
		}(f, tag, storeOffset, payload, tc, traced, budget, hasBudget)
	}
}

// servePipelinedOne executes one tagged request and writes its response.
func (s *Server) servePipelinedOne(tw *tagWriter, reg *obs.Registry, c net.Conn,
	f []string, tag uint64, storeOffset int64, payload []byte,
	tc obs.TraceContext, traced bool, budget time.Duration, hasBudget bool) {
	if payload != nil {
		defer bufpool.Put(payload)
	}
	verb := f[0]
	var span *obs.Span
	sctx := context.Background()
	if traced {
		sctx, span = s.tracer().StartSpan(obs.ContextWithRemote(sctx, tc), obs.SpanIBPServe)
		span.SetAttr("op", verb)
		span.SetAttr("peer", c.RemoteAddr().String())
	}
	rctx, cancel := obs.DeadlineContext(sctx, budget, hasBudget)
	start := time.Now()
	var head, body []byte
	release, admitErr := s.acquire(rctx, reg)
	if admitErr != nil {
		// Unlike the serial loop, a pipelined shed keeps the connection:
		// any payload is already consumed, so the stream is still
		// framed and the other in-flight requests are unaffected.
		reason := overload.Reason(admitErr)
		reg.Counter(obs.Label(obs.MIBPShed, "reason", reason)).Inc()
		obs.DefaultLogger().Warn(context.Background(), obs.EvShed,
			"component", "ibp", "reason", reason, "op", verb)
		head = errRespLine(ErrBusy, reason)
	} else {
		// Same CPU attribution as the serial loop; here the label also
		// tags the worker goroutine in goroutine dumps, so a stuck
		// pipelined request names its verb in a capture bundle.
		lctx := prof.Begin2(rctx, prof.KeyClass, "ibp", prof.KeyVerb, verb)
		head, body = s.execTagged(lctx, f, storeOffset, payload)
		prof.End(rctx)
		release()
	}
	cancel()
	err := tw.write(tag, head, body)
	if body != nil {
		bufpool.Put(body)
	}
	reg.Histogram(obs.Label(obs.MIBPServerOpMs, "op", verb), obs.LatencyBucketsMs...).
		Observe(float64(time.Since(start)) / 1e6)
	if bytes.HasPrefix(head, []byte("ERR")) {
		reg.Counter(obs.Label(obs.MIBPServerErrors, "op", verb)).Inc()
		span.SetAttr("err", "1")
		obs.DefaultLogger().Warn(sctx, obs.EvIBPServeErr,
			"op", verb, "peer", c.RemoteAddr().String())
	}
	span.Finish()
	if err != nil {
		c.Close() // poisoned writer: tear the pipe down, client redials
	}
}

// execTagged executes one pipelined request, returning the response head
// (status line, \n-terminated) and an optional pooled LOAD body that the
// caller must bufpool.Put after writing.
func (s *Server) execTagged(ctx context.Context, f []string, storeOffset int64, payload []byte) (head, body []byte) {
	if f[0] == "LOAD" {
		return s.execLoad(f)
	}
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 256)
	switch f[0] {
	case "ALLOCATE":
		s.doAllocate(bw, f)
	case "STORE":
		s.doStoreData(bw, f, storeOffset, payload)
	case "PROBE":
		s.doProbe(bw, f)
	case "EXTEND":
		s.doExtend(bw, f)
	case "FREE":
		s.doFree(bw, f)
	case "COPY":
		s.doCopy(ctx, bw, f)
	case "STATUS":
		s.doStatus(bw, f)
	default:
		writeErr(bw, ErrProto, "unknown verb "+f[0])
	}
	bw.Flush()
	return buf.Bytes(), nil
}

// execLoad is doLoad for the pipelined path: the body comes back as a
// separate pooled buffer so it is written to the socket exactly once,
// with no intermediate response buffer.
func (s *Server) execLoad(f []string) (head, body []byte) {
	if len(f) != 4 {
		return errRespLine(ErrProto, "LOAD wants 3 args"), nil
	}
	offset, err1 := strconv.ParseInt(f[2], 10, 64)
	length, err2 := strconv.ParseInt(f[3], 10, 64)
	if err1 != nil || err2 != nil || length < 0 || length > maxTransfer {
		return errRespLine(ErrProto, "bad LOAD numbers"), nil
	}
	data := bufpool.Get(int(length))
	if err := s.Depot.LoadInto(f[1], offset, data); err != nil {
		bufpool.Put(data)
		return errRespLine(err, ""), nil
	}
	return []byte(fmt.Sprintf("OK %d\n", len(data))), data
}

// errRespLine renders one "ERR <CODE> <msg>\n" response as bytes.
func errRespLine(err error, context string) []byte {
	var buf bytes.Buffer
	writeErr(&buf, err, context)
	return buf.Bytes()
}
