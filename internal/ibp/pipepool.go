package ibp

import (
	"context"
	"errors"
	"sync"
	"time"

	"lonviz/internal/obs"
)

// PipePool manages one pipelined connection per depot address and falls
// back to serial one-shot connections against depots that refuse the
// PIPELINE handshake. It is the data-plane entry point lors and the edge
// cache use for reads: LoadInto goes through the depot's pipe when it
// has one, redials once if the pipe broke, and remembers old-protocol
// depots so they are never handshaken twice.
type PipePool struct {
	// Dialer establishes connections; nil means plain TCP.
	Dialer Dialer
	// Window is the in-flight window requested per depot connection
	// (the depot may grant less). 0 means DefaultPipelineWindow;
	// negative disables pipelining, making every operation serial —
	// the ablation/compatibility switch.
	Window int
	// Timeout bounds one operation when the caller's context has no
	// deadline (default 30s), matching Client.Timeout semantics.
	Timeout time.Duration
	// Obs receives the ibp.pipe.* families; nil records into
	// obs.Default().
	Obs *obs.Registry

	mu      sync.Mutex
	entries map[string]*pipeEntry
}

// pipeEntry is the per-depot state: the live pipe, or the verdict that
// this depot only speaks serial.
type pipeEntry struct {
	mu     sync.Mutex
	pipe   *Pipe
	serial bool
}

func (pp *PipePool) registry() *obs.Registry {
	if pp.Obs != nil {
		return pp.Obs
	}
	return obs.Default()
}

func (pp *PipePool) timeout() time.Duration {
	if pp.Timeout > 0 {
		return pp.Timeout
	}
	return 30 * time.Second
}

func (pp *PipePool) entry(addr string) *pipeEntry {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.entries == nil {
		pp.entries = make(map[string]*pipeEntry)
	}
	e := pp.entries[addr]
	if e == nil {
		e = &pipeEntry{serial: pp.Window < 0}
		pp.entries[addr] = e
	}
	return e
}

// pipe returns the live pipe for addr, dialing and handshaking if
// needed. serial=true means the depot is pinned to serial mode.
func (pp *PipePool) pipe(ctx context.Context, addr string) (p *Pipe, serial bool, err error) {
	e := pp.entry(addr)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.serial {
		return nil, true, nil
	}
	if e.pipe != nil && e.pipe.Broken() == nil {
		return e.pipe, false, nil
	}
	reg := pp.registry()
	p, err = DialPipe(ctx, addr, pp.Dialer, pp.Window, reg)
	switch {
	case err == nil:
		reg.Counter(obs.MIBPPipeDials).Inc()
		e.pipe = p
		return p, false, nil
	case errors.Is(err, errSerialOnly):
		reg.Counter(obs.MIBPPipeFallbacks).Inc()
		e.serial = true
		return nil, true, nil
	default:
		return nil, false, err
	}
}

// serialClient builds the one-shot fallback client for addr.
func (pp *PipePool) serialClient(addr string) *Client {
	return &Client{Addr: addr, Dialer: pp.Dialer, Timeout: pp.Timeout, Obs: pp.Obs}
}

// opCtx applies the pool timeout when the caller's ctx is unbounded.
func (pp *PipePool) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, pp.timeout())
}

// LoadInto reads exactly len(dst) bytes at offset through readCap on the
// depot at addr, directly into dst. Pipelined when the depot allows it
// (one redial if the pipe broke under us), serial otherwise.
func (pp *PipePool) LoadInto(ctx context.Context, addr, readCap string, offset int64, dst []byte) error {
	ctx, cancel := pp.opCtx(ctx)
	defer cancel()
	reg := pp.registry()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		p, serial, err := pp.pipe(ctx, addr)
		if err != nil {
			return err
		}
		if serial {
			reg.Counter(obs.Label(obs.MIBPPipeOps, "mode", "serial")).Inc()
			return pp.serialClient(addr).LoadInto(ctx, readCap, offset, dst)
		}
		reg.Counter(obs.Label(obs.MIBPPipeOps, "mode", "pipelined")).Inc()
		err = p.Load(ctx, readCap, offset, dst)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrPipeBroken) || ctx.Err() != nil {
			return err
		}
		// The pipe died mid-flight (depot restart, watchdog): count it,
		// drop the entry, and retry once on a fresh connection before
		// surfacing a failed attempt to lors.
		reg.Counter(obs.MIBPPipeBroken).Inc()
		pp.dropBroken(addr, p)
		lastErr = err
	}
	return lastErr
}

// dropBroken forgets a dead pipe so the next operation redials.
func (pp *PipePool) dropBroken(addr string, dead *Pipe) {
	e := pp.entry(addr)
	e.mu.Lock()
	if e.pipe == dead {
		e.pipe = nil
	}
	e.mu.Unlock()
}

// Mode reports how the pool currently reaches addr: "pipelined",
// "serial", or "" when the depot has not been contacted yet.
func (pp *PipePool) Mode(addr string) string {
	pp.mu.Lock()
	e := pp.entries[addr]
	pp.mu.Unlock()
	if e == nil {
		return ""
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case e.serial:
		return "serial"
	case e.pipe != nil:
		return "pipelined"
	default:
		return ""
	}
}

// Close tears down every live pipe. The pool remains usable; subsequent
// operations redial.
func (pp *PipePool) Close() error {
	pp.mu.Lock()
	entries := make([]*pipeEntry, 0, len(pp.entries))
	for _, e := range pp.entries {
		entries = append(entries, e)
	}
	pp.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.pipe != nil {
			e.pipe.Close()
			e.pipe = nil
		}
		e.mu.Unlock()
	}
	return nil
}
