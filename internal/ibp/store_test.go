package ibp

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func newDiskDepot(t *testing.T, capacity int64) (*Depot, string, *fakeClock) {
	t.Helper()
	dir := t.TempDir()
	clk := newFakeClock()
	d, err := NewDepot(DepotConfig{Capacity: capacity, MaxLease: time.Hour, Clock: clk.Now, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return d, dir, clk
}

func allocFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "alloc-*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestDiskStoreRoundTrip(t *testing.T) {
	d, dir, _ := newDiskDepot(t, 1<<20)
	caps, err := d.Allocate(4096, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	if got := allocFiles(t, dir); len(got) != 1 {
		t.Fatalf("allocation files = %v", got)
	}
	payload := bytes.Repeat([]byte("disk"), 256)
	if err := d.Store(caps.Write, 128, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.Load(caps.Read, 128, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("disk round trip mismatch")
	}
	// Unwritten sparse region reads as zeros.
	zeros, err := d.Load(caps.Read, 2048, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range zeros {
		if b != 0 {
			t.Fatal("sparse region not zero")
		}
	}
}

func TestDiskStoreFreeRemovesFile(t *testing.T) {
	d, dir, _ := newDiskDepot(t, 1<<20)
	caps, _ := d.Allocate(1024, time.Minute, Stable)
	if err := d.Free(caps.Manage); err != nil {
		t.Fatal(err)
	}
	if got := allocFiles(t, dir); len(got) != 0 {
		t.Errorf("files after free: %v", got)
	}
}

func TestDiskStoreExpiryRemovesFile(t *testing.T) {
	d, dir, clk := newDiskDepot(t, 1<<20)
	if _, err := d.Allocate(1024, time.Minute, Stable); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	d.Stat() // triggers GC
	if got := allocFiles(t, dir); len(got) != 0 {
		t.Errorf("files after expiry: %v", got)
	}
}

func TestDiskStoreRevocationRemovesFile(t *testing.T) {
	d, dir, _ := newDiskDepot(t, 1000)
	v, _ := d.Allocate(800, time.Minute, Volatile)
	if _, err := d.Allocate(800, time.Minute, Stable); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load(v.Read, 0, 1); !errors.Is(err, ErrRevoked) {
		t.Errorf("revoked read = %v", err)
	}
	if got := allocFiles(t, dir); len(got) != 1 {
		t.Errorf("files after revocation: %v", got)
	}
}

func TestDiskDepotOverWire(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDepot(DepotConfig{Capacity: 1 << 20, MaxLease: time.Hour, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: addr}
	caps, err := cl.Allocate(context.Background(), 8192, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 8192)
	if err := cl.Store(context.Background(), caps.Write, 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Load(context.Background(), caps.Read, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("wire disk round trip mismatch")
	}
}

func TestNewDepotBadDir(t *testing.T) {
	// A file where the directory should be.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDepot(DepotConfig{Capacity: 100, Dir: filepath.Join(f, "sub")}); err == nil {
		t.Error("depot created under a file path")
	}
}
