package ibp

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
)

// The wire protocol is a text command line followed by optional binary
// payload, one request/response pair at a time on a persistent connection:
//
//	ALLOCATE <size> <leaseMs> <policy>          -> OK <read> <write> <manage>
//	STORE <writeCap> <offset> <len> + <len> raw -> OK <len>
//	LOAD <readCap> <offset> <len>               -> OK <len> + <len> raw
//	PROBE <manageCap>                           -> OK <size> <expiresUnixMs> <policy>
//	EXTEND <manageCap> <leaseMs>                -> OK <expiresUnixMs>
//	FREE <manageCap>                            -> OK 0
//	COPY <readCap> <off> <len> <addr> <wCap> <tOff> -> OK <len>
//	STATUS                                      -> OK <capacity> <used> <allocs>
//	PIPELINE <window>                           -> OK <window>  (mode switch)
//
// Errors: "ERR <CODE> <message>". Codes map 1:1 to the package's typed
// errors so in-process and remote callers see identical semantics.
//
// PIPELINE switches the connection into tagged multiplexed mode: every
// subsequent request carries a trailing "tag=<n>" token (ordered before
// the optional deadline=/trace= tokens) and every response line is
// prefixed "T<n> " with the matching tag. Responses may arrive out of
// order; the server bounds concurrent execution at the granted window. A
// depot that predates the verb answers "ERR PROTO unknown verb PIPELINE"
// and drops the connection, which the client reads as "speak serial
// here". docs/PROTOCOL.md is the authoritative reference.

const maxLineLen = 4096

// maxTransfer bounds a single STORE/LOAD/COPY payload (64 MiB) so a
// malformed length cannot balloon server memory.
const maxTransfer = 64 << 20

// wire error codes.
const (
	codeNoCap    = "NOCAP"
	codeExpired  = "EXPIRED"
	codeRevoked  = "REVOKED"
	codeNoSpace  = "NOSPACE"
	codeDuration = "DURATION"
	codeBadParam = "BADPARAM"
	codeRange    = "RANGE"
	codeProto    = "PROTO"
	codeBusy     = "BUSY"
	codeInternal = "INTERNAL"
)

// ErrProto reports a malformed request or response.
var ErrProto = errors.New("ibp: protocol error")

// ErrPipeBroken reports that a pipelined connection died while requests
// were in flight (depot restart, network drop, watchdog timeout). Every
// in-flight request on the pipe fails with it; callers treat it exactly
// like a failed replica attempt (retry elsewhere or redial), never as a
// data error.
var ErrPipeBroken = errors.New("ibp: pipelined connection broken")

// DefaultPipelineWindow is the in-flight window a pipelined connection
// uses when neither side configures one. Sized for a striped view set:
// deep enough that a whole stripe fan-out (typically 4-16 extents) rides
// one round trip, small enough to bound per-connection depot memory.
const DefaultPipelineWindow = 32

// maxPipelineWindow caps what a client may request, bounding the
// server-side buffering one connection can demand.
const maxPipelineWindow = 256

// tagPrefix marks the per-request tag token on pipelined connections.
// On the wire it is ordered before deadline= and trace=, so servers
// strip trace (last), then deadline, then tag.
const tagPrefix = "tag="

// responseTagPrefix starts every response line on a pipelined
// connection: "T<n> OK ..." / "T<n> ERR ...".
const responseTagPrefix = "T"

// StripTagToken removes a trailing tag=<n> token from parsed request
// fields. Pipelined server loops call it after StripTraceToken and
// StripDeadlineToken; ok is false when the last field is not a
// well-formed tag, which on a pipelined connection is a protocol error.
func StripTagToken(fields []string) ([]string, uint64, bool) {
	if len(fields) == 0 {
		return fields, 0, false
	}
	last := fields[len(fields)-1]
	if !strings.HasPrefix(last, tagPrefix) {
		return fields, 0, false
	}
	tag, err := strconv.ParseUint(last[len(tagPrefix):], 10, 64)
	if err != nil {
		return fields, 0, false
	}
	return fields[:len(fields)-1], tag, true
}

// parseResponseTag splits the "T<n>" prefix off a pipelined response
// line's first field.
func parseResponseTag(field string) (uint64, bool) {
	if !strings.HasPrefix(field, responseTagPrefix) {
		return 0, false
	}
	tag, err := strconv.ParseUint(field[len(responseTagPrefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return tag, true
}

// ErrBusy reports that admission control shed the request: the depot is
// overloaded (or the request's deadline budget was already exhausted on
// arrival) and the caller should retry elsewhere, not here. Pre-BUSY
// clients see it as a generic remote error, which they already treat as
// a failed attempt, so adding the code is backward compatible.
var ErrBusy = errors.New("ibp: depot busy, retry elsewhere")

// codeOf maps a typed error to its wire code.
func codeOf(err error) string {
	switch {
	case errors.Is(err, ErrNoCap):
		return codeNoCap
	case errors.Is(err, ErrExpired):
		return codeExpired
	case errors.Is(err, ErrRevoked):
		return codeRevoked
	case errors.Is(err, ErrNoSpace):
		return codeNoSpace
	case errors.Is(err, ErrDuration):
		return codeDuration
	case errors.Is(err, ErrBadParam):
		return codeBadParam
	case errors.Is(err, ErrRange):
		return codeRange
	case errors.Is(err, ErrProto):
		return codeProto
	case errors.Is(err, ErrBusy):
		return codeBusy
	default:
		return codeInternal
	}
}

// errOf maps a wire code back to the typed error, wrapping the message.
func errOf(code, msg string) error {
	base := map[string]error{
		codeNoCap:    ErrNoCap,
		codeExpired:  ErrExpired,
		codeRevoked:  ErrRevoked,
		codeNoSpace:  ErrNoSpace,
		codeDuration: ErrDuration,
		codeBadParam: ErrBadParam,
		codeRange:    ErrRange,
		codeProto:    ErrProto,
		codeBusy:     ErrBusy,
	}[code]
	if base == nil {
		return fmt.Errorf("ibp: remote error %s: %s", code, msg)
	}
	if msg == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, msg)
}

// Dialer abstracts connection establishment so tests and experiments can
// inject netsim-shaped links. *netsim.Dialer satisfies it.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// NetDialer dials plain TCP.
type NetDialer struct{}

// Dial implements Dialer.
func (NetDialer) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// parseFields splits a protocol line and validates the verb.
func parseFields(line string) []string {
	return strings.Fields(strings.TrimSpace(line))
}
