package ibp

import (
	"errors"
	"fmt"
	"net"
	"strings"
)

// The wire protocol is a text command line followed by optional binary
// payload, one request/response pair at a time on a persistent connection:
//
//	ALLOCATE <size> <leaseMs> <policy>          -> OK <read> <write> <manage>
//	STORE <writeCap> <offset> <len> + <len> raw -> OK <len>
//	LOAD <readCap> <offset> <len>               -> OK <len> + <len> raw
//	PROBE <manageCap>                           -> OK <size> <expiresUnixMs> <policy>
//	EXTEND <manageCap> <leaseMs>                -> OK <expiresUnixMs>
//	FREE <manageCap>                            -> OK 0
//	COPY <readCap> <off> <len> <addr> <wCap> <tOff> -> OK <len>
//	STATUS                                      -> OK <capacity> <used> <allocs>
//
// Errors: "ERR <CODE> <message>". Codes map 1:1 to the package's typed
// errors so in-process and remote callers see identical semantics.

const maxLineLen = 4096

// maxTransfer bounds a single STORE/LOAD/COPY payload (64 MiB) so a
// malformed length cannot balloon server memory.
const maxTransfer = 64 << 20

// wire error codes.
const (
	codeNoCap    = "NOCAP"
	codeExpired  = "EXPIRED"
	codeRevoked  = "REVOKED"
	codeNoSpace  = "NOSPACE"
	codeDuration = "DURATION"
	codeBadParam = "BADPARAM"
	codeRange    = "RANGE"
	codeProto    = "PROTO"
	codeBusy     = "BUSY"
	codeInternal = "INTERNAL"
)

// ErrProto reports a malformed request or response.
var ErrProto = errors.New("ibp: protocol error")

// ErrBusy reports that admission control shed the request: the depot is
// overloaded (or the request's deadline budget was already exhausted on
// arrival) and the caller should retry elsewhere, not here. Pre-BUSY
// clients see it as a generic remote error, which they already treat as
// a failed attempt, so adding the code is backward compatible.
var ErrBusy = errors.New("ibp: depot busy, retry elsewhere")

// codeOf maps a typed error to its wire code.
func codeOf(err error) string {
	switch {
	case errors.Is(err, ErrNoCap):
		return codeNoCap
	case errors.Is(err, ErrExpired):
		return codeExpired
	case errors.Is(err, ErrRevoked):
		return codeRevoked
	case errors.Is(err, ErrNoSpace):
		return codeNoSpace
	case errors.Is(err, ErrDuration):
		return codeDuration
	case errors.Is(err, ErrBadParam):
		return codeBadParam
	case errors.Is(err, ErrRange):
		return codeRange
	case errors.Is(err, ErrProto):
		return codeProto
	case errors.Is(err, ErrBusy):
		return codeBusy
	default:
		return codeInternal
	}
}

// errOf maps a wire code back to the typed error, wrapping the message.
func errOf(code, msg string) error {
	base := map[string]error{
		codeNoCap:    ErrNoCap,
		codeExpired:  ErrExpired,
		codeRevoked:  ErrRevoked,
		codeNoSpace:  ErrNoSpace,
		codeDuration: ErrDuration,
		codeBadParam: ErrBadParam,
		codeRange:    ErrRange,
		codeProto:    ErrProto,
		codeBusy:     ErrBusy,
	}[code]
	if base == nil {
		return fmt.Errorf("ibp: remote error %s: %s", code, msg)
	}
	if msg == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, msg)
}

// Dialer abstracts connection establishment so tests and experiments can
// inject netsim-shaped links. *netsim.Dialer satisfies it.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// NetDialer dials plain TCP.
type NetDialer struct{}

// Dial implements Dialer.
func (NetDialer) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// parseFields splits a protocol line and validates the verb.
func parseFields(line string) []string {
	return strings.Fields(strings.TrimSpace(line))
}
