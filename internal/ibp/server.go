package ibp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"lonviz/internal/bufpool"
	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
	"lonviz/internal/overload"
)

// Server exposes a Depot over the wire protocol.
type Server struct {
	Depot *Depot
	// PipelineWindow caps the in-flight window granted to clients that
	// negotiate pipelined mode with the PIPELINE verb. 0 means
	// DefaultPipelineWindow; negative disables pipelining entirely
	// (PIPELINE answers ERR PROTO and clients fall back to serial
	// one-request-per-connection mode).
	PipelineWindow int
	// Admission bounds concurrent request execution: beyond MaxInFlight
	// running plus MaxQueue waiting, requests are rejected with ERR BUSY
	// so clients fail over to another replica instead of queueing behind
	// an overloaded depot. nil admits everything. Requests arriving with
	// an exhausted deadline= budget are shed regardless (the client has
	// already moved on), so deadline enforcement works with Admission nil.
	Admission *overload.Gate
	// CopyDialer dials target depots for third-party COPY; nil means plain
	// TCP. Third-party transfers are the mechanism behind the paper's
	// aggressive prestaging: "all such LoN operations take place as third
	// party communication without consuming resources on either the client
	// or the client agent".
	CopyDialer Dialer
	// Logf logs server events; nil disables logging.
	Logf func(format string, args ...interface{})
	// Obs receives per-verb service-time histograms and error counters;
	// nil records into obs.Default().
	Obs *obs.Registry
	// Tracer receives the server-side request spans opened for traced
	// requests (those carrying a trace= token); nil records into
	// obs.DefaultTracer().
	Tracer *obs.Tracer

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool

	metricsOnce sync.Once
}

// NewServer wraps a depot.
func NewServer(d *Depot) *Server {
	return &Server{Depot: d, conns: make(map[net.Conn]bool)}
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) tracer() *obs.Tracer {
	if s.Tracer != nil {
		return s.Tracer
	}
	return obs.DefaultTracer()
}

func (s *Server) registry() *obs.Registry {
	if s.Obs != nil {
		return s.Obs
	}
	return obs.Default()
}

// initMetrics eagerly registers the overload families so /metrics shows
// them at zero on an idle depot (the check.sh smoke greps for them
// before any traffic arrives).
func (s *Server) initMetrics() {
	s.metricsOnce.Do(func() {
		reg := s.registry()
		reg.Counter(obs.Label(obs.MIBPShed, "reason", overload.ReasonQueueFull))
		reg.Gauge(obs.MIBPInflight).Set(0)
		reg.Gauge(obs.MIBPQueueDepth).Set(0)
	})
}

// shed answers one request with ERR BUSY and records why. The connection
// is closed afterwards (callers return keep=false): a shed STORE has an
// unread payload on the wire, and dropping the connection is the only
// way to stay synchronized without reading bytes on a request we refused
// to serve.
func (s *Server) shed(bw *bufio.Writer, verb, reason string) {
	reg := s.registry()
	reg.Counter(obs.Label(obs.MIBPShed, "reason", reason)).Inc()
	obs.DefaultLogger().Warn(context.Background(), obs.EvShed,
		"component", "ibp", "reason", reason, "op", verb)
	writeErr(bw, ErrBusy, reason)
}

// Serve accepts connections on l until Close. It returns when the listener
// fails (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("ibp: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.initMetrics()
	for {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = true
		s.mu.Unlock()
		go s.handle(c)
	}
}

// ListenAndServe listens on addr and serves in a new goroutine, returning
// the bound address (useful with ":0").
func (s *Server) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(l); err != nil {
			s.logf("ibp server on %s stopped: %v", l.Addr(), err)
		}
	}()
	return l.Addr().String(), nil
}

// Close stops the listener and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = make(map[net.Conn]bool)
	return err
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) handle(c net.Conn) {
	defer c.Close()
	defer s.removeConn(c)
	defer func() {
		if r := recover(); r != nil {
			log.Printf("ibp: panic handling %v: %v", c.RemoteAddr(), r)
		}
	}()
	reg := s.registry()
	s.initMetrics()
	br := bufio.NewReaderSize(c, 64*1024)
	// The response-sniffing writer sits under the bufio.Writer: the first
	// chunk flushed per request always begins with the status line, so it
	// can classify the outcome without threading a result through every
	// verb handler.
	ew := &respSniffer{w: c}
	bw := bufio.NewWriterSize(ew, 64*1024)
	for {
		line, err := readLine(br)
		if err != nil {
			return // client hung up or sent an overlong line
		}
		// Optional trailing tokens ride the request line: a
		// trace=<tid>/<sid> token names the calling client's active span,
		// and a deadline=<ms> token carries its remaining time budget.
		// Both are stripped before verb dispatch (argument-count checks
		// must not see them); the trace token parents this request's span
		// under the client's, and the deadline token bounds the request
		// context so work whose client has already moved on is dropped.
		// Requests without tokens (all pre-propagation clients) take the
		// untouched fast path.
		f := parseFields(line)
		f, tc, traced := obs.StripTraceToken(f)
		f, budget, hasBudget := obs.StripDeadlineToken(f)
		verb := ""
		if len(f) > 0 {
			verb = f[0]
		}
		var span *obs.Span
		sctx := context.Background()
		if traced {
			sctx, span = s.tracer().StartSpan(obs.ContextWithRemote(sctx, tc), obs.SpanIBPServe)
			span.SetAttr("op", verb)
			span.SetAttr("peer", c.RemoteAddr().String())
		}
		// PIPELINE is the mode switch, not a data-plane verb: grant a
		// window, answer OK, and hand the connection to the tagged
		// multiplexed loop. A refusal (disabled or malformed) is
		// protocol-fatal, exactly like an unknown verb on a pre-PIPELINE
		// depot, so clients read any ERR as "speak serial here".
		if verb == "PIPELINE" {
			granted, grantErr := s.pipelineGrant(f)
			if grantErr != "" {
				writeErr(bw, ErrProto, grantErr)
				span.Finish()
				bw.Flush()
				return
			}
			fmt.Fprintf(bw, "OK %d\n", granted)
			span.Finish()
			if bw.Flush() != nil {
				return
			}
			s.servePipelined(c, br, granted)
			return
		}
		rctx, cancel := obs.DeadlineContext(sctx, budget, hasBudget)
		ew.reset()
		start := time.Now()
		release, admitErr := s.acquire(rctx, reg)
		var keep bool
		if admitErr != nil {
			s.shed(bw, verb, overload.Reason(admitErr))
			keep = false
		} else {
			// CPU attribution: any profile of a loaded depot slices by
			// {class=ibp, verb=...}. The wrapper is a no-op (and
			// alloc-free) until -metrics-addr turns the stack on.
			lctx := prof.Begin2(rctx, prof.KeyClass, "ibp", prof.KeyVerb, verb)
			keep = s.dispatch(lctx, br, bw, f)
			prof.End(rctx)
			release()
		}
		cancel()
		flushErr := bw.Flush()
		reg.Histogram(obs.Label(obs.MIBPServerOpMs, "op", verb), obs.LatencyBucketsMs...).
			Observe(float64(time.Since(start)) / 1e6)
		if ew.sawErr {
			reg.Counter(obs.Label(obs.MIBPServerErrors, "op", verb)).Inc()
			span.SetAttr("err", "1")
			obs.DefaultLogger().Warn(sctx, obs.EvIBPServeErr,
				"op", verb, "peer", c.RemoteAddr().String())
		}
		span.Finish()
		if !keep || flushErr != nil {
			return
		}
	}
}

// acquire runs one request through admission control and keeps the load
// gauges current. With Admission nil it still sheds requests whose
// propagated deadline budget is already exhausted — the client stopped
// waiting, so serving it only burns depot capacity.
func (s *Server) acquire(ctx context.Context, reg *obs.Registry) (func(), error) {
	g := s.Admission
	if g == nil {
		if ctx.Err() != nil {
			return nil, &overload.ShedError{Reason: overload.ReasonDeadline}
		}
		return func() {}, nil
	}
	release, err := g.Acquire(ctx)
	reg.Gauge(obs.MIBPInflight).Set(g.InFlight())
	reg.Gauge(obs.MIBPQueueDepth).Set(g.Queued())
	if err != nil {
		return nil, err
	}
	return func() {
		release()
		reg.Gauge(obs.MIBPInflight).Set(g.InFlight())
		reg.Gauge(obs.MIBPQueueDepth).Set(g.Queued())
	}, nil
}

// respSniffer classifies each response by its first flushed chunk (which
// always starts with the "OK"/"ERR" status line).
type respSniffer struct {
	w      io.Writer
	wrote  bool
	sawErr bool
}

func (w *respSniffer) reset() { w.wrote, w.sawErr = false, false }

func (w *respSniffer) Write(p []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.sawErr = strings.HasPrefix(string(p[:min(3, len(p))]), "ERR")
	}
	return w.w.Write(p)
}

// readLine reads one \n-terminated line with a length cap.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", ErrProto
	}
	return line, nil
}

// dispatch executes one request (fields already parsed and tokens
// stripped; ctx carries any propagated deadline); the returned bool says
// whether to keep the connection (false after protocol-fatal errors).
func (s *Server) dispatch(ctx context.Context, br *bufio.Reader, bw *bufio.Writer, f []string) bool {
	if len(f) == 0 {
		writeErr(bw, ErrProto, "empty request")
		return false
	}
	switch f[0] {
	case "ALLOCATE":
		return s.doAllocate(bw, f)
	case "STORE":
		return s.doStore(br, bw, f)
	case "LOAD":
		return s.doLoad(bw, f)
	case "PROBE":
		return s.doProbe(bw, f)
	case "EXTEND":
		return s.doExtend(bw, f)
	case "FREE":
		return s.doFree(bw, f)
	case "COPY":
		return s.doCopy(ctx, bw, f)
	case "STATUS":
		return s.doStatus(bw, f)
	default:
		writeErr(bw, ErrProto, "unknown verb "+f[0])
		return false
	}
}

func writeErr(w io.Writer, err error, context string) {
	msg := err.Error()
	if context != "" {
		msg = context + ": " + msg
	}
	fmt.Fprintf(w, "ERR %s %s\n", codeOf(err), sanitize(msg))
}

// sanitize keeps error messages single-line.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' || s[i] == '\r' {
			out = append(out, ' ')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

func (s *Server) doAllocate(bw *bufio.Writer, f []string) bool {
	if len(f) != 4 {
		writeErr(bw, ErrProto, "ALLOCATE wants 3 args")
		return false
	}
	size, err1 := strconv.ParseInt(f[1], 10, 64)
	leaseMs, err2 := strconv.ParseInt(f[2], 10, 64)
	if err1 != nil || err2 != nil {
		writeErr(bw, ErrProto, "bad ALLOCATE numbers")
		return false
	}
	caps, err := s.Depot.Allocate(size, time.Duration(leaseMs)*time.Millisecond, Policy(f[3]))
	if err != nil {
		writeErr(bw, err, "")
		return true
	}
	fmt.Fprintf(bw, "OK %s %s %s\n", caps.Read, caps.Write, caps.Manage)
	return true
}

func (s *Server) doStore(br *bufio.Reader, bw *bufio.Writer, f []string) bool {
	if len(f) != 4 {
		writeErr(bw, ErrProto, "STORE wants 3 args")
		return false
	}
	offset, err1 := strconv.ParseInt(f[2], 10, 64)
	length, err2 := strconv.ParseInt(f[3], 10, 64)
	if err1 != nil || err2 != nil || length < 0 || length > maxTransfer {
		writeErr(bw, ErrProto, "bad STORE numbers")
		return false
	}
	// The payload must be consumed even if the store will fail, to keep
	// the connection synchronized. The wire buffer is pooled: the depot
	// copies into its backing store, so the buffer is free again as soon
	// as the store returns.
	data := bufpool.Get(int(length))
	defer bufpool.Put(data)
	if _, err := io.ReadFull(br, data); err != nil {
		return false
	}
	return s.doStoreData(bw, f, offset, data)
}

// doStoreData performs a STORE whose payload has already been consumed
// (serial path above, or the pipelined reader loop). The caller owns
// data and may recycle it once this returns.
func (s *Server) doStoreData(bw *bufio.Writer, f []string, offset int64, data []byte) bool {
	if err := s.Depot.Store(f[1], offset, data); err != nil {
		writeErr(bw, err, "")
		return true
	}
	fmt.Fprintf(bw, "OK %d\n", len(data))
	return true
}

func (s *Server) doLoad(bw *bufio.Writer, f []string) bool {
	if len(f) != 4 {
		writeErr(bw, ErrProto, "LOAD wants 3 args")
		return false
	}
	offset, err1 := strconv.ParseInt(f[2], 10, 64)
	length, err2 := strconv.ParseInt(f[3], 10, 64)
	if err1 != nil || err2 != nil || length < 0 || length > maxTransfer {
		writeErr(bw, ErrProto, "bad LOAD numbers")
		return false
	}
	// Pooled read: the depot copies from backing storage into a recycled
	// wire buffer, which goes back to the pool as soon as it has been
	// handed to the socket writer.
	data := bufpool.Get(int(length))
	defer bufpool.Put(data)
	if err := s.Depot.LoadInto(f[1], offset, data); err != nil {
		writeErr(bw, err, "")
		return true
	}
	fmt.Fprintf(bw, "OK %d\n", len(data))
	bw.Write(data)
	return true
}

func (s *Server) doProbe(bw *bufio.Writer, f []string) bool {
	if len(f) != 2 {
		writeErr(bw, ErrProto, "PROBE wants 1 arg")
		return false
	}
	info, err := s.Depot.Probe(f[1])
	if err != nil {
		writeErr(bw, err, "")
		return true
	}
	fmt.Fprintf(bw, "OK %d %d %s\n", info.Size, info.Expires.UnixMilli(), info.Policy)
	return true
}

func (s *Server) doExtend(bw *bufio.Writer, f []string) bool {
	if len(f) != 3 {
		writeErr(bw, ErrProto, "EXTEND wants 2 args")
		return false
	}
	leaseMs, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		writeErr(bw, ErrProto, "bad EXTEND lease")
		return false
	}
	exp, err := s.Depot.Extend(f[1], time.Duration(leaseMs)*time.Millisecond)
	if err != nil {
		writeErr(bw, err, "")
		return true
	}
	fmt.Fprintf(bw, "OK %d\n", exp.UnixMilli())
	return true
}

func (s *Server) doFree(bw *bufio.Writer, f []string) bool {
	if len(f) != 2 {
		writeErr(bw, ErrProto, "FREE wants 1 arg")
		return false
	}
	if err := s.Depot.Free(f[1]); err != nil {
		writeErr(bw, err, "")
		return true
	}
	fmt.Fprintf(bw, "OK 0\n")
	return true
}

// doCopy implements third-party copy: this depot reads the extent locally
// and stores it on the target depot directly, without routing bytes
// through the requesting client.
func (s *Server) doCopy(ctx context.Context, bw *bufio.Writer, f []string) bool {
	if len(f) != 7 {
		writeErr(bw, ErrProto, "COPY wants 6 args")
		return false
	}
	offset, err1 := strconv.ParseInt(f[2], 10, 64)
	length, err2 := strconv.ParseInt(f[3], 10, 64)
	targetOff, err3 := strconv.ParseInt(f[6], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || length < 0 || length > maxTransfer {
		writeErr(bw, ErrProto, "bad COPY numbers")
		return false
	}
	data := bufpool.Get(int(length))
	defer bufpool.Put(data)
	if err := s.Depot.LoadInto(f[1], offset, data); err != nil {
		writeErr(bw, err, "local read")
		return true
	}
	dialer := s.CopyDialer
	if dialer == nil {
		dialer = NetDialer{}
	}
	target := &Client{Addr: f[4], Dialer: dialer}
	// ctx carries the caller's propagated deadline (if any); the client's
	// Timeout bounds the onward store otherwise.
	if err := target.Store(ctx, f[5], targetOff, data); err != nil {
		writeErr(bw, err, "target store")
		return true
	}
	fmt.Fprintf(bw, "OK %d\n", length)
	return true
}

func (s *Server) doStatus(bw *bufio.Writer, f []string) bool {
	if len(f) != 1 {
		writeErr(bw, ErrProto, "STATUS wants no args")
		return false
	}
	st := s.Depot.Stat()
	fmt.Fprintf(bw, "OK %d %d %d\n", st.Capacity, st.Used, st.Allocations)
	return true
}
