package ibp

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"lonviz/internal/netsim"
)

// startDepotServer starts a depot server on loopback and returns its
// address and a plain client.
func startDepotServer(t *testing.T, capacity int64) (addr string, cl *Client, srv *Server) {
	t.Helper()
	d, err := NewDepot(DepotConfig{Capacity: capacity, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(d)
	addr, err = srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, &Client{Addr: addr}, srv
}

func TestWireAllocateStoreLoad(t *testing.T) {
	_, cl, _ := startDepotServer(t, 1<<20)
	caps, err := cl.Allocate(context.Background(), 1000, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("viewset!"), 100)
	if err := cl.Store(context.Background(), caps.Write, 100, payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Load(context.Background(), caps.Read, 100, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("wire round trip mismatch")
	}
}

func TestWireErrorsTyped(t *testing.T) {
	_, cl, _ := startDepotServer(t, 100)
	if _, err := cl.Allocate(context.Background(), 500, time.Minute, Stable); !errors.Is(err, ErrNoSpace) {
		t.Errorf("over-allocation over wire: %v", err)
	}
	if _, err := cl.Allocate(context.Background(), 10, 2*time.Hour, Stable); !errors.Is(err, ErrDuration) {
		t.Errorf("long lease over wire: %v", err)
	}
	if err := cl.Store(context.Background(), "bogus", 0, []byte("x")); !errors.Is(err, ErrNoCap) {
		t.Errorf("bogus cap over wire: %v", err)
	}
	caps, _ := cl.Allocate(context.Background(), 10, time.Minute, Stable)
	if _, err := cl.Load(context.Background(), caps.Read, 0, 50); !errors.Is(err, ErrRange) {
		t.Errorf("range error over wire: %v", err)
	}
}

func TestWireProbeExtendFree(t *testing.T) {
	_, cl, _ := startDepotServer(t, 1000)
	caps, _ := cl.Allocate(context.Background(), 128, time.Minute, Volatile)
	info, err := cl.Probe(context.Background(), caps.Manage)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 128 || info.Policy != Volatile {
		t.Errorf("probe = %+v", info)
	}
	if time.Until(info.Expires) <= 0 {
		t.Error("probe expiry in the past")
	}
	exp, err := cl.Extend(context.Background(), caps.Manage, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if time.Until(exp) < 25*time.Minute {
		t.Errorf("extend expiry %v", exp)
	}
	if err := cl.Free(context.Background(), caps.Manage); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Probe(context.Background(), caps.Manage); !errors.Is(err, ErrNoCap) {
		t.Errorf("probe after free: %v", err)
	}
}

func TestWireStatus(t *testing.T) {
	_, cl, _ := startDepotServer(t, 5000)
	if _, err := cl.Allocate(context.Background(), 1200, time.Minute, Stable); err != nil {
		t.Fatal(err)
	}
	capacity, used, allocs, err := cl.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if capacity != 5000 || used != 1200 || allocs != 1 {
		t.Errorf("status = %d %d %d", capacity, used, allocs)
	}
}

func TestThirdPartyCopy(t *testing.T) {
	_, clA, _ := startDepotServer(t, 1<<20) // source
	addrB, clB, _ := startDepotServer(t, 1<<20)

	src, err := clA.Allocate(context.Background(), 256, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 128)
	if err := clA.Store(context.Background(), src.Write, 0, payload); err != nil {
		t.Fatal(err)
	}
	dst, err := clB.Allocate(context.Background(), 256, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	// Client asks depot A to push bytes straight to depot B.
	if err := clA.Copy(context.Background(), src.Read, 0, 256, addrB, dst.Write, 0); err != nil {
		t.Fatal(err)
	}
	got, err := clB.Load(context.Background(), dst.Read, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("third-party copy corrupted data")
	}
}

func TestThirdPartyCopyErrors(t *testing.T) {
	addrA, clA, _ := startDepotServer(t, 1024)
	addrB, clB, _ := startDepotServer(t, 1024)
	src, _ := clA.Allocate(context.Background(), 64, time.Minute, Stable)
	dst, _ := clB.Allocate(context.Background(), 64, time.Minute, Stable)
	// Bad source cap.
	if err := clA.Copy(context.Background(), "bogus", 0, 64, addrB, dst.Write, 0); !errors.Is(err, ErrNoCap) {
		t.Errorf("copy with bogus read cap: %v", err)
	}
	// Bad target cap surfaces the remote error.
	if err := clA.Copy(context.Background(), src.Read, 0, 64, addrB, "bogus", 0); !errors.Is(err, ErrNoCap) {
		t.Errorf("copy with bogus write cap: %v", err)
	}
	// Unreachable target.
	if err := clA.Copy(context.Background(), src.Read, 0, 64, "127.0.0.1:1", dst.Write, 0); err == nil {
		t.Error("copy to dead depot succeeded")
	}
	_ = addrA
}

func TestWireOverShapedLink(t *testing.T) {
	addr, _, _ := startDepotServer(t, 1<<20)
	dialer := netsim.NewDialer(netsim.LinkProfile{Name: "testwan", Latency: 20 * time.Millisecond})
	cl := &Client{Addr: addr, Dialer: dialer}
	start := time.Now()
	caps, err := cl.Allocate(context.Background(), 100, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("shaped allocate took only %v, want >= 2x20ms", elapsed)
	}
	if err := cl.Store(context.Background(), caps.Write, 0, []byte("over the wan")); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	addr, _, _ := startDepotServer(t, 1024)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("FROBNICATE all the things\n"))
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp := string(buf[:n])
	if !strings.HasPrefix(resp, "ERR PROTO") {
		t.Errorf("response to garbage = %q", resp)
	}
}

func TestServerKeepsConnectionAcrossRequests(t *testing.T) {
	addr, _, _ := startDepotServer(t, 1<<20)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	// Two STATUS requests on one connection.
	for i := 0; i < 2; i++ {
		if _, err := conn.Write([]byte("STATUS\n")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !strings.HasPrefix(string(buf[:n]), "OK ") {
			t.Fatalf("request %d: %q", i, buf[:n])
		}
	}
}

func TestServerClose(t *testing.T) {
	addr, cl, srv := startDepotServer(t, 1024)
	if _, err := cl.Allocate(context.Background(), 10, time.Minute, Stable); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	cl2 := &Client{Addr: addr, Timeout: time.Second}
	if _, err := cl2.Allocate(context.Background(), 10, time.Minute, Stable); err == nil {
		t.Error("allocate after server close succeeded")
	}
}

func TestConcurrentWireClients(t *testing.T) {
	addr, _, _ := startDepotServer(t, 1<<22)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			cl := &Client{Addr: addr}
			caps, err := cl.Allocate(context.Background(), 4096, time.Minute, Stable)
			if err != nil {
				done <- err
				return
			}
			data := bytes.Repeat([]byte{byte(g + 1)}, 4096)
			if err := cl.Store(context.Background(), caps.Write, 0, data); err != nil {
				done <- err
				return
			}
			got, err := cl.Load(context.Background(), caps.Read, 0, 4096)
			if err != nil {
				done <- err
				return
			}
			if !bytes.Equal(got, data) {
				done <- errors.New("concurrent wire data bleed")
				return
			}
			done <- nil
		}(g)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestWireExtendErrorPaths exercises the lease-maintenance failure modes a
// steward must distinguish over the wire: a lease that already ran out, a
// renewal beyond the depot's maximum, and a capability the depot never
// issued.
func TestWireExtendErrorPaths(t *testing.T) {
	clk := newFakeClock()
	d, err := NewDepot(DepotConfig{Capacity: 1 << 16, MaxLease: time.Hour, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := &Client{Addr: addr}

	caps, err := cl.Allocate(context.Background(), 64, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	// Over-max renewal is refused while the allocation is still alive.
	if _, err := cl.Extend(context.Background(), caps.Manage, 2*time.Hour); !errors.Is(err, ErrDuration) {
		t.Errorf("over-max extend: %v", err)
	}
	// Probe and Extend on an expired allocation: first touch reports the
	// expiry, and the allocation is then gone for good.
	clk.Advance(2 * time.Minute)
	if _, err := cl.Extend(context.Background(), caps.Manage, time.Minute); !errors.Is(err, ErrExpired) {
		t.Errorf("extend after expiry: %v", err)
	}
	if _, err := cl.Probe(context.Background(), caps.Manage); !errors.Is(err, ErrNoCap) {
		t.Errorf("probe after expired extend: %v", err)
	}
	// A capability the depot never issued.
	if _, err := cl.Extend(context.Background(), "bogus-cap", time.Minute); !errors.Is(err, ErrNoCap) {
		t.Errorf("bogus manage cap: %v", err)
	}
	if _, err := cl.Probe(context.Background(), "bogus-cap"); !errors.Is(err, ErrNoCap) {
		t.Errorf("bogus probe cap: %v", err)
	}
}

// fakeDepotServer answers every request on a real TCP listener with a
// canned response line, for driving the client's response parser through
// shapes no honest depot produces.
func fakeDepotServer(t *testing.T, response string) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				c.Read(buf)
				c.Write([]byte(response))
			}(c)
		}
	}()
	return l.Addr().String()
}

func TestWireMalformedResponses(t *testing.T) {
	cases := []struct {
		name       string
		response   string
		skipExtend bool // "OK 1" is a well-formed Extend reply but a short Probe one
	}{
		{name: "missing fields", response: "OK\n"},
		{name: "non-numeric expiry", response: "OK abc\n"},
		{name: "unknown status word", response: "BOGUS 1 2 3\n"},
		{name: "err without code", response: "ERR\n"},
		{name: "probe short field count", response: "OK 1\n", skipExtend: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl := &Client{Addr: fakeDepotServer(t, tc.response), Timeout: 2 * time.Second}
			if !tc.skipExtend {
				if _, err := cl.Extend(context.Background(), "cap", time.Minute); !errors.Is(err, ErrProto) {
					t.Errorf("Extend on %q: %v", tc.response, err)
				}
			}
			if _, err := cl.Probe(context.Background(), "cap"); !errors.Is(err, ErrProto) {
				t.Errorf("Probe on %q: %v", tc.response, err)
			}
		})
	}
}
