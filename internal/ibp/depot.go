// Package ibp implements the Internet Backplane Protocol substrate of
// Logistical Networking: storage depots that expose time-limited,
// best-effort byte-array allocations to the network, with the standard
// operations — allocate, store, load, manage, and third-party copy — over
// a TCP line protocol (Plank et al., "Managing Data Storage in the
// Network", IEEE Internet Computing 2001; paper section 2.2).
//
// Semantics follow the paper's description of IBP's weak guarantees:
// allocations carry leases and expire; a depot may refuse an allocation
// for capacity or duration ("admission decisions"); volatile ("soft")
// allocations may be revoked at any time to make room for new ones.
package ibp

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Policy selects the allocation durability class.
type Policy string

const (
	// Stable allocations survive until their lease expires or they are
	// explicitly freed.
	Stable Policy = "stable"
	// Volatile allocations are "soft" storage: the depot may revoke them
	// whenever it needs space for new allocations.
	Volatile Policy = "volatile"
)

// Error codes surfaced over the wire and as typed errors in-process.
var (
	ErrNoCap    = errors.New("ibp: unknown or wrong-type capability")
	ErrExpired  = errors.New("ibp: allocation lease expired")
	ErrRevoked  = errors.New("ibp: volatile allocation revoked")
	ErrNoSpace  = errors.New("ibp: allocation refused: insufficient capacity")
	ErrDuration = errors.New("ibp: allocation refused: lease too long")
	ErrBadParam = errors.New("ibp: bad parameter")
	ErrRange    = errors.New("ibp: extent outside allocation")
)

// Capabilities are the three unforgeable keys to one allocation.
type Capabilities struct {
	Read, Write, Manage string
}

// AllocInfo is the manage/probe view of an allocation.
type AllocInfo struct {
	Size    int64
	Expires time.Time
	Policy  Policy
}

// DepotConfig bounds a depot's resources.
type DepotConfig struct {
	// Capacity is the total byte budget across allocations.
	Capacity int64
	// MaxLease bounds allocation duration; requests beyond it are refused
	// (an IBP "admission decision" on duration). Zero means one hour.
	MaxLease time.Duration
	// Clock supplies time (for tests); nil means time.Now.
	Clock func() time.Time
	// Dir, when non-empty, backs allocations with sparse files in this
	// directory instead of memory — how a production depot serves
	// multi-gigabyte databases. The directory is created if missing.
	Dir string
}

// Depot is the storage engine. It is safe for concurrent use.
type Depot struct {
	cfg DepotConfig

	mu     sync.Mutex
	used   int64
	byRead map[string]*allocation
	byWr   map[string]*allocation
	byMg   map[string]*allocation
	// revoked remembers volatile allocations that were reclaimed so their
	// users get ErrRevoked rather than ErrNoCap.
	revoked map[string]bool
	// order tracks volatile allocations oldest-first for revocation.
	volOrder []*allocation

	// Stats counters (monotone, under mu).
	statAllocs, statRevocations, statExpirations int64
}

type allocation struct {
	caps    Capabilities
	store   blockStore
	size    int64
	expires time.Time
	policy  Policy
}

// NewDepot creates a depot with the given configuration.
func NewDepot(cfg DepotConfig) (*Depot, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("%w: capacity %d", ErrBadParam, cfg.Capacity)
	}
	if cfg.MaxLease == 0 {
		cfg.MaxLease = time.Hour
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("ibp: creating depot dir: %w", err)
		}
	}
	return &Depot{
		cfg:     cfg,
		byRead:  make(map[string]*allocation),
		byWr:    make(map[string]*allocation),
		byMg:    make(map[string]*allocation),
		revoked: make(map[string]bool),
	}, nil
}

func newCap() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("ibp: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Allocate reserves size bytes for the given lease duration. It may refuse
// on capacity (after revoking volatile allocations if the new allocation
// is itself needed) or on duration.
func (d *Depot) Allocate(size int64, lease time.Duration, policy Policy) (Capabilities, error) {
	if size <= 0 {
		return Capabilities{}, fmt.Errorf("%w: size %d", ErrBadParam, size)
	}
	if policy != Stable && policy != Volatile {
		return Capabilities{}, fmt.Errorf("%w: policy %q", ErrBadParam, policy)
	}
	if lease <= 0 || lease > d.cfg.MaxLease {
		return Capabilities{}, fmt.Errorf("%w: %v > max %v", ErrDuration, lease, d.cfg.MaxLease)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gcLocked()
	if d.used+size > d.cfg.Capacity {
		d.revokeVolatileLocked(d.used + size - d.cfg.Capacity)
	}
	if d.used+size > d.cfg.Capacity {
		return Capabilities{}, fmt.Errorf("%w: need %d, free %d", ErrNoSpace, size, d.cfg.Capacity-d.used)
	}
	store, err := d.newStore(size)
	if err != nil {
		return Capabilities{}, err
	}
	a := &allocation{
		caps: Capabilities{
			Read:   newCap(),
			Write:  newCap(),
			Manage: newCap(),
		},
		store:   store,
		size:    size,
		expires: d.cfg.Clock().Add(lease),
		policy:  policy,
	}
	d.byRead[a.caps.Read] = a
	d.byWr[a.caps.Write] = a
	d.byMg[a.caps.Manage] = a
	d.used += size
	d.statAllocs++
	if policy == Volatile {
		d.volOrder = append(d.volOrder, a)
	}
	return a.caps, nil
}

// revokeVolatileLocked frees oldest volatile allocations until `need` bytes
// are recovered or none remain.
func (d *Depot) revokeVolatileLocked(need int64) {
	for need > 0 && len(d.volOrder) > 0 {
		a := d.volOrder[0]
		d.volOrder = d.volOrder[1:]
		if _, live := d.byRead[a.caps.Read]; !live {
			continue // already freed or expired
		}
		need -= a.size
		d.removeLocked(a, true)
		d.statRevocations++
	}
}

// removeLocked deletes an allocation; markRevoked records the caps so later
// access reports ErrRevoked.
func (d *Depot) removeLocked(a *allocation, markRevoked bool) {
	delete(d.byRead, a.caps.Read)
	delete(d.byWr, a.caps.Write)
	delete(d.byMg, a.caps.Manage)
	d.used -= a.size
	_ = a.store.destroy()
	if markRevoked {
		d.revoked[a.caps.Read] = true
		d.revoked[a.caps.Write] = true
		d.revoked[a.caps.Manage] = true
	}
}

// gcLocked expires allocations whose lease has passed.
func (d *Depot) gcLocked() {
	now := d.cfg.Clock()
	for _, a := range d.byMg {
		if now.After(a.expires) {
			d.removeLocked(a, false)
			d.statExpirations++
		}
	}
}

// lookup resolves a capability of a specific kind, applying lease expiry.
func (d *Depot) lookup(m map[string]*allocation, capability string) (*allocation, error) {
	a, ok := m[capability]
	if !ok {
		if d.revoked[capability] {
			return nil, ErrRevoked
		}
		return nil, ErrNoCap
	}
	if d.cfg.Clock().After(a.expires) {
		d.removeLocked(a, false)
		d.statExpirations++
		return nil, ErrExpired
	}
	return a, nil
}

// Store writes data at offset using a write capability.
func (d *Depot) Store(writeCap string, offset int64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, err := d.lookup(d.byWr, writeCap)
	if err != nil {
		return err
	}
	if offset < 0 || offset+int64(len(data)) > a.size {
		return fmt.Errorf("%w: store [%d,%d) in %d", ErrRange, offset, offset+int64(len(data)), a.size)
	}
	return a.store.writeAt(data, offset)
}

// Load reads length bytes at offset using a read capability.
func (d *Depot) Load(readCap string, offset, length int64) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, err := d.lookup(d.byRead, readCap)
	if err != nil {
		return nil, err
	}
	if offset < 0 || length < 0 || offset+length > a.size {
		return nil, fmt.Errorf("%w: load [%d,%d) in %d", ErrRange, offset, offset+length, a.size)
	}
	out := make([]byte, length)
	if err := a.store.readAt(out, offset); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadInto reads len(dst) bytes at offset into a caller-provided buffer
// using a read capability. It is Load without the allocation: the wire
// server passes pooled buffers here so a served LOAD touches no
// per-request heap.
func (d *Depot) LoadInto(readCap string, offset int64, dst []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, err := d.lookup(d.byRead, readCap)
	if err != nil {
		return err
	}
	length := int64(len(dst))
	if offset < 0 || offset+length > a.size {
		return fmt.Errorf("%w: load [%d,%d) in %d", ErrRange, offset, offset+length, a.size)
	}
	return a.store.readAt(dst, offset)
}

// Probe returns allocation metadata using a manage capability.
func (d *Depot) Probe(manageCap string) (AllocInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, err := d.lookup(d.byMg, manageCap)
	if err != nil {
		return AllocInfo{}, err
	}
	return AllocInfo{Size: a.size, Expires: a.expires, Policy: a.policy}, nil
}

// Extend renews the lease to now+lease (subject to MaxLease).
func (d *Depot) Extend(manageCap string, lease time.Duration) (time.Time, error) {
	if lease <= 0 || lease > d.cfg.MaxLease {
		return time.Time{}, fmt.Errorf("%w: %v > max %v", ErrDuration, lease, d.cfg.MaxLease)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	a, err := d.lookup(d.byMg, manageCap)
	if err != nil {
		return time.Time{}, err
	}
	a.expires = d.cfg.Clock().Add(lease)
	return a.expires, nil
}

// Free releases the allocation immediately.
func (d *Depot) Free(manageCap string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, err := d.lookup(d.byMg, manageCap)
	if err != nil {
		return err
	}
	d.removeLocked(a, false)
	return nil
}

// Status reports capacity accounting.
type Status struct {
	Capacity, Used int64
	Allocations    int
	TotalAllocs    int64
	Revocations    int64
	Expirations    int64
}

// Stat returns a consistent snapshot of depot status.
func (d *Depot) Stat() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gcLocked()
	return Status{
		Capacity:    d.cfg.Capacity,
		Used:        d.used,
		Allocations: len(d.byMg),
		TotalAllocs: d.statAllocs,
		Revocations: d.statRevocations,
		Expirations: d.statExpirations,
	}
}
