package ibp

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"lonviz/internal/obs"
)

// TestWireTracePropagation proves the tentpole contract at the IBP layer:
// a client-side span's trace context crosses the wire as the trailing
// trace= token, and the depot's server-side span joins the same trace,
// parented under the calling span.
func TestWireTracePropagation(t *testing.T) {
	obs.SetPropagation(true)
	defer obs.SetPropagation(false)

	_, cl, srv := startDepotServer(t, 1<<20)
	serverTracer := obs.NewTracer(64)
	srv.Tracer = serverTracer

	clientTracer := obs.NewTracer(64)
	ctx, span := clientTracer.StartSpan(context.Background(), "test.client")
	caps, err := cl.Allocate(ctx, 100, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Store(ctx, caps.Write, 0, []byte("traced payload")); err != nil {
		t.Fatal(err)
	}
	span.Finish()

	recs := serverTracer.Export(span.TraceID)
	if len(recs) != 2 {
		t.Fatalf("server spans in trace %x = %d, want 2 (ALLOCATE+STORE): %+v",
			span.TraceID, len(recs), recs)
	}
	ops := map[string]bool{}
	for _, r := range recs {
		if r.Name != obs.SpanIBPServe {
			t.Errorf("server span name = %q, want %q", r.Name, obs.SpanIBPServe)
		}
		if r.TraceID != span.TraceID {
			t.Errorf("server span trace = %x, want client trace %x", r.TraceID, span.TraceID)
		}
		if r.ParentID != span.ID {
			t.Errorf("server span parent = %x, want client span %x", r.ParentID, span.ID)
		}
		if !r.Remote {
			t.Error("server span not marked remote-parented")
		}
		ops[r.Attrs["op"]] = true
	}
	if !ops["ALLOCATE"] || !ops["STORE"] {
		t.Errorf("server span ops = %v, want ALLOCATE and STORE", ops)
	}
}

// TestWireNoTokenWhenPropagationOff asserts the gate: without obs.Serve
// (propagation off), requests carry no trace token and the depot records
// no serve spans, even when the caller has an active span.
func TestWireNoTokenWhenPropagationOff(t *testing.T) {
	if obs.PropagationEnabled() {
		t.Fatal("propagation unexpectedly on at test start")
	}
	_, cl, srv := startDepotServer(t, 1<<20)
	serverTracer := obs.NewTracer(64)
	srv.Tracer = serverTracer

	ctx, span := obs.NewTracer(64).StartSpan(context.Background(), "test.client")
	if _, err := cl.Allocate(ctx, 100, time.Minute, Stable); err != nil {
		t.Fatal(err)
	}
	span.Finish()
	if got := serverTracer.Completed(); len(got) != 0 {
		t.Errorf("server recorded %d spans with propagation off", len(got))
	}
}

// TestWireTokenlessBackwardCompat drives the server with raw pre-tracing
// request lines: a depot that understands trace= must keep serving
// clients that never send it.
func TestWireTokenlessBackwardCompat(t *testing.T) {
	addr, _, _ := startDepotServer(t, 4096)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("STATUS\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf[:n]), "OK ") {
		t.Fatalf("token-less STATUS = %q", buf[:n])
	}
}

// TestWireRawTraceToken speaks the wire format by hand, pinning the
// trailing-token encoding documented in docs/OBSERVABILITY.md: a server
// must parse "VERB ... trace=<tid>/<sid>" and parent its span there.
func TestWireRawTraceToken(t *testing.T) {
	addr, _, srv := startDepotServer(t, 4096)
	serverTracer := obs.NewTracer(64)
	srv.Tracer = serverTracer

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("STATUS trace=00000000000000ab/00000000000000cd\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf[:n]), "OK ") {
		t.Fatalf("STATUS with token = %q", buf[:n])
	}
	recs := serverTracer.Export(0xab)
	if len(recs) != 1 {
		t.Fatalf("server spans for trace ab = %d, want 1", len(recs))
	}
	if recs[0].ParentID != 0xcd || !recs[0].Remote {
		t.Errorf("span parent = %x remote=%v, want cd/true", recs[0].ParentID, recs[0].Remote)
	}
}
