package ibp

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"lonviz/internal/obs"
	"lonviz/internal/overload"
)

// TestAdmissionShedsBusy: with every execution slot held and the wait
// queue full, a new request is rejected with a typed ErrBusy the client
// can classify.
func TestAdmissionShedsBusy(t *testing.T) {
	_, cl, srv := startDepotServer(t, 1<<20)
	srv.Admission = overload.NewGate(1, 0, 50*time.Millisecond)

	// Occupy the single slot out-of-band so the wire request finds the
	// gate full with an empty queue.
	release, err := srv.Admission.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	_, _, _, err = cl.Status(context.Background())
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("status under full gate: %v, want ErrBusy", err)
	}
}

// TestAdmissionAdmitsAfterDrain: releasing the slot lets the next
// request through unchanged.
func TestAdmissionAdmitsAfterDrain(t *testing.T) {
	_, cl, srv := startDepotServer(t, 1<<20)
	srv.Admission = overload.NewGate(1, 2, time.Second)
	if _, _, _, err := cl.Status(context.Background()); err != nil {
		t.Fatalf("status through idle gate: %v", err)
	}
	caps, err := cl.Allocate(context.Background(), 100, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Store(context.Background(), caps.Write, 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// TestBusyWireOldClientNewDepot proves back-compat toward old clients: a
// pre-BUSY client (simulated with a raw connection that knows nothing of
// tokens or the BUSY code) receives a well-formed "ERR BUSY ..." line it
// parses as a generic error, not a protocol break.
func TestBusyWireOldClientNewDepot(t *testing.T) {
	addr, _, srv := startDepotServer(t, 1<<20)
	srv.Admission = overload.NewGate(1, 0, 50*time.Millisecond)
	release, err := srv.Admission.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("STATUS\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	f := strings.Fields(line)
	if len(f) < 2 || f[0] != "ERR" || f[1] != "BUSY" {
		t.Fatalf("shed response = %q, want ERR BUSY ...", line)
	}
}

// TestBusyWireNewClientOldDepot proves back-compat toward old depots:
// with propagation off (the default), a client holding a ctx deadline
// emits a byte-identical request line with no deadline token, so an old
// depot's strict argument-count checks still pass.
func TestBusyWireNewClientOldDepot(t *testing.T) {
	if obs.PropagationEnabled() {
		t.Fatal("propagation unexpectedly on at test start")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lines := make(chan string, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		line, _ := bufio.NewReader(c).ReadString('\n')
		lines <- line
		// An old depot's STATUS reply shape.
		c.Write([]byte("OK 100 0 0\n"))
	}()

	cl := &Client{Addr: l.Addr().String()}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, _, err := cl.Status(ctx); err != nil {
		t.Fatalf("status against old depot: %v", err)
	}
	if got := <-lines; got != "STATUS\n" {
		t.Fatalf("request line = %q, want bare STATUS (no tokens with propagation off)", got)
	}
}

// TestDeadlineTokenEnforced: with propagation on, a request arriving
// with an exhausted deadline budget is shed with BUSY even when
// admission control is disabled, and a generous budget passes the
// argument-count checks untouched.
func TestDeadlineTokenEnforced(t *testing.T) {
	addr, _, _ := startDepotServer(t, 1<<20)

	send := func(line string) []string {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
		resp, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.Fields(resp)
	}

	if f := send("STATUS deadline=0\n"); len(f) < 2 || f[0] != "ERR" || f[1] != "BUSY" {
		t.Fatalf("zero-budget request = %v, want ERR BUSY", f)
	}
	if f := send("STATUS deadline=5000\n"); len(f) != 4 || f[0] != "OK" {
		t.Fatalf("generous-budget request = %v, want OK capacity used allocs", f)
	}
}

// TestDeadlinePropagatedEndToEnd: a client ctx deadline crosses the wire
// when propagation is on, visible as depot-side enforcement: an expired
// budget never reaches the depot verb handler.
func TestDeadlinePropagatedEndToEnd(t *testing.T) {
	obs.SetPropagation(true)
	defer obs.SetPropagation(false)

	_, cl, _ := startDepotServer(t, 1<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A healthy budget round-trips normally.
	if _, _, _, err := cl.Status(ctx); err != nil {
		t.Fatalf("status with budget: %v", err)
	}
}
