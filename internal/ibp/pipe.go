package ibp

// Client side of pipelined mode. A Pipe is one upgraded depot connection
// multiplexing many tagged requests; a PipePool hands lors one call —
// LoadInto — and manages the pipe lifecycle behind it: dialing and
// handshaking on first use, remembering depots that refused PIPELINE and
// speaking serial to them forever after, redialing once transparently
// when a pipe breaks mid-download.
//
// The zero-copy contract: LoadInto reads the LOAD body directly from the
// socket buffer into the caller's destination slice (a lors extent
// window over the final frame buffer), so a pipelined download writes
// each payload byte into process memory exactly once.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lonviz/internal/obs"
)

// errSerialOnly reports that the depot answered the PIPELINE handshake
// with an error: it predates the verb or has pipelining disabled.
var errSerialOnly = errors.New("ibp: depot does not speak PIPELINE")

// pipeIdleTimeout is the reader watchdog: a pipe with requests in flight
// that sees no response bytes for this long is declared broken (the
// in-flight requests fail over through lors). An idle pipe just re-arms.
const pipeIdleTimeout = 30 * time.Second

const (
	waiterPending   = 0 // response not yet arrived, caller waiting
	waiterDelivered = 1 // reader claimed it and will deliver (possibly filling dst)
	waiterAbandoned = 2 // caller gave up (ctx done); reader discards the body
)

// pipeWaiter is one in-flight tagged request on a Pipe.
type pipeWaiter struct {
	dst   []byte // LOAD destination; reader fills it directly
	state atomic.Int32
	done  chan pipeResult // buffered(1): delivery never blocks the reader
}

type pipeResult struct {
	fields []string
	err    error
}

// Pipe is one pipelined connection to a depot. Safe for concurrent use;
// requests beyond the negotiated window block until a slot frees.
type Pipe struct {
	addr   string
	conn   net.Conn
	window int
	reg    *obs.Registry
	depth  *atomic.Int64 // shared with the owning pool, or private

	wmu sync.Mutex
	bw  *bufio.Writer

	mu      sync.Mutex
	waiters map[uint64]*pipeWaiter
	nextTag uint64
	broken  error

	slots chan struct{}
	done  chan struct{}
}

// DialPipe connects to addr, performs the PIPELINE handshake asking for
// the given window (0 means DefaultPipelineWindow), and returns the
// upgraded connection. A depot that answers the handshake with ERR
// yields errSerialOnly (the connection is gone; speak serial instead).
func DialPipe(ctx context.Context, addr string, dialer Dialer, window int, reg *obs.Registry) (*Pipe, error) {
	if window <= 0 {
		window = DefaultPipelineWindow
	}
	if reg == nil {
		reg = obs.Default()
	}
	d := dialer
	if d == nil {
		d = NetDialer{}
	}
	type dialResult struct {
		conn net.Conn
		err  error
	}
	ch := make(chan dialResult, 1)
	go func() {
		conn, err := d.Dial(addr)
		ch <- dialResult{conn, err}
	}()
	var conn net.Conn
	select {
	case <-ctx.Done():
		go func() {
			if r := <-ch; r.conn != nil {
				r.conn.Close()
			}
		}()
		return nil, ctx.Err()
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		conn = r.conn
	}
	// The handshake is one bounded round trip on the fresh connection.
	hsDeadline := time.Now().Add(10 * time.Second)
	if d, ok := ctx.Deadline(); ok && d.Before(hsDeadline) {
		hsDeadline = d
	}
	_ = conn.SetDeadline(hsDeadline)
	if _, err := fmt.Fprintf(conn, "PIPELINE %d\n", window); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 64*1024)
	line, err := readLine(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: reading PIPELINE response: %v", ErrProto, err)
	}
	f := parseFields(line)
	switch {
	case len(f) == 2 && f[0] == "OK":
		granted, err := strconv.Atoi(f[1])
		if err != nil || granted <= 0 {
			conn.Close()
			return nil, fmt.Errorf("%w: bad PIPELINE grant %q", ErrProto, line)
		}
		if granted > window {
			granted = window
		}
		_ = conn.SetDeadline(time.Time{})
		p := &Pipe{
			addr:    addr,
			conn:    conn,
			window:  granted,
			reg:     reg,
			depth:   new(atomic.Int64),
			bw:      bufio.NewWriterSize(conn, 64*1024),
			waiters: make(map[uint64]*pipeWaiter),
			slots:   make(chan struct{}, granted),
			done:    make(chan struct{}),
		}
		go p.readLoop(br)
		return p, nil
	case len(f) >= 1 && f[0] == "ERR":
		// Old-protocol depot ("unknown verb PIPELINE") or pipelining
		// disabled: either way, serial from here on.
		conn.Close()
		return nil, errSerialOnly
	default:
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected PIPELINE response %q", ErrProto, line)
	}
}

// Window returns the negotiated in-flight window.
func (p *Pipe) Window() int { return p.window }

// Broken reports the pipe's terminal error, or nil while it is usable.
func (p *Pipe) Broken() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// Close tears the pipe down; in-flight requests fail with ErrPipeBroken.
func (p *Pipe) Close() error {
	p.fail(ErrPipeBroken)
	return nil
}

// fail marks the pipe broken exactly once, closes the connection, and
// fails every in-flight waiter.
func (p *Pipe) fail(err error) {
	p.mu.Lock()
	if p.broken != nil {
		p.mu.Unlock()
		return
	}
	p.broken = err
	ws := p.waiters
	p.waiters = make(map[uint64]*pipeWaiter)
	close(p.done)
	p.mu.Unlock()
	p.conn.Close()
	if n := len(ws); n > 0 {
		p.reg.Gauge(obs.MIBPPipeDepth).Set(p.depth.Add(int64(-n)))
	}
	for _, w := range ws {
		w.done <- pipeResult{err: err}
	}
}

// inflight reports how many requests await responses.
func (p *Pipe) inflight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiters)
}

// readLoop is the single reader: it matches tagged responses to waiters,
// fills LOAD destinations directly from the socket, and turns any
// protocol corruption or connection error into a pipe-wide failure.
func (p *Pipe) readLoop(br *bufio.Reader) {
	for {
		_ = p.conn.SetReadDeadline(time.Now().Add(pipeIdleTimeout))
		line, err := readLine(br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && p.inflight() == 0 {
				// Idle watchdog tick: nothing owed, keep listening. (With
				// zero requests in flight the stream sits at a line
				// boundary, so no partial line can have been dropped.)
				continue
			}
			p.fail(fmt.Errorf("%w: %v", ErrPipeBroken, err))
			return
		}
		f := parseFields(line)
		if len(f) < 2 {
			p.fail(fmt.Errorf("%w: short pipelined response %q", ErrPipeBroken, line))
			return
		}
		tag, ok := parseResponseTag(f[0])
		if !ok {
			p.fail(fmt.Errorf("%w: untagged response %q", ErrPipeBroken, line))
			return
		}
		p.mu.Lock()
		w := p.waiters[tag]
		delete(p.waiters, tag)
		p.mu.Unlock()
		if w == nil {
			p.fail(fmt.Errorf("%w: response for unknown tag %d", ErrPipeBroken, tag))
			return
		}
		res, bodyLen, perr := p.parseResponse(f[1:], w)
		if perr != nil {
			p.fail(perr)
			return
		}
		if bodyLen >= 0 {
			// Claim the waiter before touching its dst: a caller whose
			// ctx fired is racing to abandon it, and exactly one side
			// wins the CAS. Losing means the caller is gone and dst may
			// already be reused — discard the body off the wire instead.
			if res.err == nil && w.dst != nil && w.state.CompareAndSwap(waiterPending, waiterDelivered) {
				if _, err := io.ReadFull(br, w.dst[:bodyLen]); err != nil {
					p.depthDec()
					<-p.slots
					w.done <- pipeResult{err: fmt.Errorf("%w: reading body: %v", ErrPipeBroken, err)}
					p.fail(fmt.Errorf("%w: reading body: %v", ErrPipeBroken, err))
					return
				}
			} else if _, err := io.CopyN(io.Discard, br, int64(bodyLen)); err != nil {
				p.depthDec()
				<-p.slots
				w.done <- pipeResult{err: fmt.Errorf("%w: discarding body: %v", ErrPipeBroken, err)}
				p.fail(fmt.Errorf("%w: discarding body: %v", ErrPipeBroken, err))
				return
			}
		} else {
			w.state.CompareAndSwap(waiterPending, waiterDelivered)
		}
		p.depthDec()
		<-p.slots
		w.done <- res
	}
}

func (p *Pipe) depthDec() {
	p.reg.Gauge(obs.MIBPPipeDepth).Set(p.depth.Add(-1))
}

// parseResponse interprets one tagged status line for waiter w. bodyLen
// is >= 0 when a body follows on the wire (LOAD), -1 otherwise. A
// returned error means the stream cannot be trusted any more.
func (p *Pipe) parseResponse(f []string, w *pipeWaiter) (res pipeResult, bodyLen int, fatal error) {
	switch f[0] {
	case "OK":
		ok := f[1:]
		if w.dst == nil {
			return pipeResult{fields: ok}, -1, nil
		}
		if len(ok) < 1 {
			return pipeResult{}, 0, fmt.Errorf("%w: LOAD response missing length", ErrPipeBroken)
		}
		n, err := strconv.ParseInt(ok[0], 10, 64)
		if err != nil || n < 0 || n > maxTransfer {
			return pipeResult{}, 0, fmt.Errorf("%w: bad LOAD length", ErrPipeBroken)
		}
		if n != int64(len(w.dst)) {
			// Framed but wrong-sized: consume the body to stay in sync,
			// fail only this request.
			return pipeResult{err: fmt.Errorf("%w: LOAD returned %d of %d bytes", ErrProto, n, len(w.dst))},
				int(n), nil
		}
		return pipeResult{fields: ok}, int(n), nil
	case "ERR":
		if len(f) < 2 {
			return pipeResult{}, 0, fmt.Errorf("%w: malformed pipelined error", ErrPipeBroken)
		}
		msg := ""
		for i := 2; i < len(f); i++ {
			if i > 2 {
				msg += " "
			}
			msg += f[i]
		}
		return pipeResult{err: errOf(f[1], msg)}, -1, nil
	default:
		return pipeResult{}, 0, fmt.Errorf("%w: unexpected pipelined status %q", ErrPipeBroken, f[0])
	}
}

// observeOp mirrors Client.observeOp for pipelined operations, so serial
// and pipelined traffic feed the same per-verb and per-depot latency
// series — obs.DepotLatencyBias and the depot-latency SLO rules read the
// per-depot histogram and must keep seeing every operation when a client
// upgrades to pipelined mode. Latency includes time queued for a window
// slot: that is what the caller actually experienced.
func (p *Pipe) observeOp(ctx context.Context, verb string, elapsed time.Duration, sent, received int, err error) {
	ms := float64(elapsed) / 1e6
	tid := obs.TraceIDFrom(ctx)
	p.reg.Histogram(obs.Label(obs.MIBPOpMs, "op", verb), obs.LatencyBucketsMs...).ObserveTrace(ms, tid)
	p.reg.Histogram(obs.Label(obs.MIBPDepotMs, "depot", p.addr), obs.LatencyBucketsMs...).ObserveTrace(ms, tid)
	p.reg.Counter(obs.MIBPBytesOut).Add(int64(sent))
	p.reg.Counter(obs.MIBPBytesIn).Add(int64(received))
	if err != nil {
		p.reg.Counter(obs.Label(obs.MIBPOpErrors, "op", verb)).Inc()
	}
}

// do issues one tagged request and records its client-observed outcome.
// reqLine is the verb line without tokens or newline; payload follows it
// (STORE); dst, when non-nil, receives a LOAD body of exactly len(dst)
// bytes.
func (p *Pipe) do(ctx context.Context, reqLine string, payload, dst []byte) ([]string, error) {
	verb, _, _ := strings.Cut(reqLine, " ")
	start := time.Now()
	f, err := p.doTagged(ctx, reqLine, payload, dst)
	received := 0
	if err == nil && dst != nil {
		received = len(dst)
	}
	p.observeOp(ctx, verb, time.Since(start), len(payload), received, err)
	return f, err
}

// doTagged is the transport half of do: slot acquisition, tagged write,
// and response wait.
func (p *Pipe) doTagged(ctx context.Context, reqLine string, payload, dst []byte) ([]string, error) {
	select {
	case p.slots <- struct{}{}:
	case <-p.done:
		return nil, p.Broken()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	w := &pipeWaiter{dst: dst, done: make(chan pipeResult, 1)}
	p.mu.Lock()
	if p.broken != nil {
		err := p.broken
		p.mu.Unlock()
		return nil, err
	}
	p.nextTag++
	tag := p.nextTag
	p.waiters[tag] = w
	p.mu.Unlock()
	p.reg.Gauge(obs.MIBPPipeDepth).Set(p.depth.Add(1))
	// tag= rides before the optional deadline=/trace= tokens so servers
	// can strip right-to-left: trace, deadline, tag.
	line := fmt.Sprintf("%s tag=%d%s\n", reqLine, tag, obs.LineTokens(ctx))
	p.wmu.Lock()
	_, err := p.bw.WriteString(line)
	if err == nil && len(payload) > 0 {
		_, err = p.bw.Write(payload)
	}
	if err == nil {
		err = p.bw.Flush()
	}
	p.wmu.Unlock()
	if err != nil {
		p.fail(fmt.Errorf("%w: write: %v", ErrPipeBroken, err))
		res := <-w.done // fail() delivered our registered waiter
		return nil, res.err
	}
	select {
	case res := <-w.done:
		return res.fields, res.err
	case <-ctx.Done():
		if w.state.CompareAndSwap(waiterPending, waiterAbandoned) {
			// The reader will discard the body and release the slot
			// when the response eventually arrives (or the watchdog
			// breaks the pipe).
			return nil, ctx.Err()
		}
		// The reader already claimed the waiter and is filling dst;
		// wait out the delivery so the caller never races its own
		// buffer.
		res := <-w.done
		if res.err != nil {
			return nil, res.err
		}
		return res.fields, nil
	}
}

// Load reads exactly len(dst) bytes at offset through a read capability,
// directly into dst.
func (p *Pipe) Load(ctx context.Context, readCap string, offset int64, dst []byte) error {
	_, err := p.do(ctx, fmt.Sprintf("LOAD %s %d %d", readCap, offset, len(dst)), nil, dst)
	return err
}

// Store writes data at offset through a write capability.
func (p *Pipe) Store(ctx context.Context, writeCap string, offset int64, data []byte) error {
	_, err := p.do(ctx, fmt.Sprintf("STORE %s %d %d", writeCap, offset, len(data)), data, nil)
	return err
}

// Probe returns allocation metadata through a manage capability.
func (p *Pipe) Probe(ctx context.Context, manageCap string) (AllocInfo, error) {
	f, err := p.do(ctx, "PROBE "+manageCap, nil, nil)
	if err != nil {
		return AllocInfo{}, err
	}
	if len(f) != 3 {
		return AllocInfo{}, fmt.Errorf("%w: PROBE response fields", ErrProto)
	}
	size, err1 := strconv.ParseInt(f[0], 10, 64)
	expMs, err2 := strconv.ParseInt(f[1], 10, 64)
	if err1 != nil || err2 != nil {
		return AllocInfo{}, fmt.Errorf("%w: PROBE response numbers", ErrProto)
	}
	return AllocInfo{Size: size, Expires: time.UnixMilli(expMs), Policy: Policy(f[2])}, nil
}
