package ibp

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is a controllable time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func newTestDepot(t *testing.T, capacity int64) (*Depot, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	d, err := NewDepot(DepotConfig{Capacity: capacity, MaxLease: time.Hour, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	return d, clk
}

func TestNewDepotValidation(t *testing.T) {
	if _, err := NewDepot(DepotConfig{Capacity: 0}); err == nil {
		t.Error("expected error for zero capacity")
	}
	if _, err := NewDepot(DepotConfig{Capacity: -5}); err == nil {
		t.Error("expected error for negative capacity")
	}
}

func TestAllocateStoreLoad(t *testing.T) {
	d, _ := newTestDepot(t, 1024)
	caps, err := d.Allocate(100, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	if caps.Read == "" || caps.Write == "" || caps.Manage == "" ||
		caps.Read == caps.Write || caps.Write == caps.Manage {
		t.Fatalf("bad capabilities %+v", caps)
	}
	payload := []byte("0123456789")
	if err := d.Store(caps.Write, 5, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.Load(caps.Read, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("Load = %q", got)
	}
	// Unwritten region reads as zeros.
	zero, err := d.Load(caps.Read, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, []byte{0, 0, 0, 0}) {
		t.Errorf("unwritten region = %v", zero)
	}
}

func TestCapabilityTypeEnforcement(t *testing.T) {
	d, _ := newTestDepot(t, 1024)
	caps, _ := d.Allocate(10, time.Minute, Stable)
	if err := d.Store(caps.Read, 0, []byte("x")); !errors.Is(err, ErrNoCap) {
		t.Errorf("store with read cap: %v", err)
	}
	if _, err := d.Load(caps.Write, 0, 1); !errors.Is(err, ErrNoCap) {
		t.Errorf("load with write cap: %v", err)
	}
	if _, err := d.Probe(caps.Read); !errors.Is(err, ErrNoCap) {
		t.Errorf("probe with read cap: %v", err)
	}
	if err := d.Store("no-such-cap", 0, []byte("x")); !errors.Is(err, ErrNoCap) {
		t.Errorf("store with bogus cap: %v", err)
	}
}

func TestRangeEnforcement(t *testing.T) {
	d, _ := newTestDepot(t, 1024)
	caps, _ := d.Allocate(10, time.Minute, Stable)
	if err := d.Store(caps.Write, 8, []byte("abc")); !errors.Is(err, ErrRange) {
		t.Errorf("overflowing store: %v", err)
	}
	if err := d.Store(caps.Write, -1, []byte("a")); !errors.Is(err, ErrRange) {
		t.Errorf("negative offset store: %v", err)
	}
	if _, err := d.Load(caps.Read, 5, 6); !errors.Is(err, ErrRange) {
		t.Errorf("overflowing load: %v", err)
	}
	if _, err := d.Load(caps.Read, 0, -1); !errors.Is(err, ErrRange) {
		t.Errorf("negative length load: %v", err)
	}
}

func TestAllocateValidation(t *testing.T) {
	d, _ := newTestDepot(t, 1024)
	if _, err := d.Allocate(0, time.Minute, Stable); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero size: %v", err)
	}
	if _, err := d.Allocate(10, time.Minute, Policy("bogus")); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad policy: %v", err)
	}
	if _, err := d.Allocate(10, 2*time.Hour, Stable); !errors.Is(err, ErrDuration) {
		t.Errorf("over-long lease: %v", err)
	}
	if _, err := d.Allocate(10, 0, Stable); !errors.Is(err, ErrDuration) {
		t.Errorf("zero lease: %v", err)
	}
}

func TestCapacityAdmission(t *testing.T) {
	d, _ := newTestDepot(t, 100)
	if _, err := d.Allocate(80, time.Minute, Stable); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Allocate(30, time.Minute, Stable); !errors.Is(err, ErrNoSpace) {
		t.Errorf("over-allocation: %v", err)
	}
	st := d.Stat()
	if st.Used != 80 || st.Allocations != 1 {
		t.Errorf("stat = %+v", st)
	}
}

func TestLeaseExpiry(t *testing.T) {
	d, clk := newTestDepot(t, 100)
	caps, _ := d.Allocate(50, time.Minute, Stable)
	clk.Advance(2 * time.Minute)
	if _, err := d.Load(caps.Read, 0, 1); !errors.Is(err, ErrExpired) {
		t.Errorf("expired load: %v", err)
	}
	// Space is reclaimed.
	if _, err := d.Allocate(100, time.Minute, Stable); err != nil {
		t.Errorf("allocation after expiry: %v", err)
	}
	if d.Stat().Expirations == 0 {
		t.Error("expiration not counted")
	}
}

func TestExtendLease(t *testing.T) {
	d, clk := newTestDepot(t, 100)
	caps, _ := d.Allocate(10, time.Minute, Stable)
	clk.Advance(50 * time.Second)
	exp, err := d.Extend(caps.Manage, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Equal(clk.Now().Add(time.Minute)) {
		t.Errorf("extended to %v", exp)
	}
	clk.Advance(50 * time.Second) // would be past the original lease
	if _, err := d.Load(caps.Read, 0, 1); err != nil {
		t.Errorf("load after extend: %v", err)
	}
	if _, err := d.Extend(caps.Manage, 5*time.Hour); !errors.Is(err, ErrDuration) {
		t.Errorf("over-extend: %v", err)
	}
}

func TestFree(t *testing.T) {
	d, _ := newTestDepot(t, 100)
	caps, _ := d.Allocate(60, time.Minute, Stable)
	if err := d.Free(caps.Manage); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load(caps.Read, 0, 1); !errors.Is(err, ErrNoCap) {
		t.Errorf("load after free: %v", err)
	}
	if st := d.Stat(); st.Used != 0 {
		t.Errorf("used = %d after free", st.Used)
	}
	if err := d.Free(caps.Manage); !errors.Is(err, ErrNoCap) {
		t.Errorf("double free: %v", err)
	}
}

func TestVolatileRevocation(t *testing.T) {
	d, _ := newTestDepot(t, 100)
	v1, _ := d.Allocate(40, time.Minute, Volatile)
	v2, _ := d.Allocate(40, time.Minute, Volatile)
	// A stable allocation that needs space triggers revocation of the
	// oldest volatile allocation first.
	s, err := d.Allocate(50, time.Minute, Stable)
	if err != nil {
		t.Fatalf("stable allocation should revoke volatile space: %v", err)
	}
	if _, err := d.Load(v1.Read, 0, 1); !errors.Is(err, ErrRevoked) {
		t.Errorf("v1 after revocation: %v", err)
	}
	// v2 must still be alive (only enough space was reclaimed).
	if _, err := d.Load(v2.Read, 0, 1); err != nil {
		t.Errorf("v2 should survive: %v", err)
	}
	if _, err := d.Load(s.Read, 0, 1); err != nil {
		t.Errorf("stable alloc: %v", err)
	}
	if d.Stat().Revocations != 1 {
		t.Errorf("revocations = %d", d.Stat().Revocations)
	}
}

func TestStableNeverRevoked(t *testing.T) {
	d, _ := newTestDepot(t, 100)
	s, _ := d.Allocate(80, time.Minute, Stable)
	if _, err := d.Allocate(50, time.Minute, Stable); !errors.Is(err, ErrNoSpace) {
		t.Errorf("expected NoSpace, got %v", err)
	}
	if _, err := d.Load(s.Read, 0, 1); err != nil {
		t.Errorf("stable allocation was disturbed: %v", err)
	}
}

// Property (DESIGN.md): capacity accounting never goes negative and used
// never exceeds capacity, across random operation sequences.
func TestCapacityInvariantQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		clk := newFakeClock()
		d, err := NewDepot(DepotConfig{Capacity: 500, MaxLease: time.Hour, Clock: clk.Now})
		if err != nil {
			return false
		}
		var live []Capabilities
		for _, op := range ops {
			switch op % 4 {
			case 0:
				size := int64(op%200) + 1
				pol := Stable
				if op%8 >= 4 {
					pol = Volatile
				}
				if caps, err := d.Allocate(size, time.Minute, pol); err == nil {
					live = append(live, caps)
				}
			case 1:
				if len(live) > 0 {
					d.Free(live[int(op)%len(live)].Manage)
				}
			case 2:
				clk.Advance(time.Duration(op%100) * time.Second)
			case 3:
				if len(live) > 0 {
					c := live[int(op)%len(live)]
					d.Store(c.Write, 0, []byte{1})
				}
			}
			st := d.Stat()
			if st.Used < 0 || st.Used > st.Capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: reads only ever observe bytes that were written (or zeros).
func TestReadSeesOnlyWritesQuick(t *testing.T) {
	d, _ := newTestDepot(t, 1<<20)
	caps, err := d.Allocate(4096, time.Minute, Stable)
	if err != nil {
		t.Fatal(err)
	}
	shadow := make([]byte, 4096)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		if rng.Intn(2) == 0 {
			off := rng.Intn(4000)
			n := rng.Intn(90) + 1
			data := make([]byte, n)
			rng.Read(data)
			if err := d.Store(caps.Write, int64(off), data); err != nil {
				t.Fatal(err)
			}
			copy(shadow[off:], data)
		} else {
			off := rng.Intn(4000)
			n := rng.Intn(90) + 1
			got, err := d.Load(caps.Read, int64(off), int64(n))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow[off:off+n]) {
				t.Fatalf("read at %d/%d diverges from shadow", off, n)
			}
		}
	}
}

func TestConcurrentDepotAccess(t *testing.T) {
	d, _ := newTestDepot(t, 1<<20)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			caps, err := d.Allocate(1024, time.Minute, Stable)
			if err != nil {
				errs <- err
				return
			}
			data := bytes.Repeat([]byte{byte(g)}, 512)
			for i := 0; i < 20; i++ {
				if err := d.Store(caps.Write, 0, data); err != nil {
					errs <- err
					return
				}
				got, err := d.Load(caps.Read, 0, 512)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- errors.New("cross-goroutine data bleed")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
