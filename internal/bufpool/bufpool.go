// Package bufpool is the shared buffer pool of the zero-copy data plane.
//
// Every hot-path payload in the stack — an IBP LOAD body, a lors stripe,
// a compressed view-set frame mid-decode — used to be a fresh make([]byte)
// that lived for one call and went straight to the garbage collector. The
// pool recycles those buffers through power-of-two size classes (4 KiB up
// to 16 MiB) so a steady-state session allocates its working set once.
//
// The contract is the usual one for pooled memory:
//
//   - Get(n) returns a slice of length n whose contents are arbitrary
//     (callers must not assume zeroing).
//   - Put(b) recycles the buffer. The caller must not touch b (or any
//     slice aliasing it) afterwards. Buffers whose capacity is not an
//     exact size class — subslices, appended-over slices, foreign
//     allocations — are dropped silently, so Put is always safe to call.
//   - Buffers that outlive the request (cache entries, published frames)
//     must NOT come from the pool: keep them privately allocated, or the
//     next Get would hand out aliased memory.
//
// Accounting is atomic counters bridged onto an obs registry by
// RegisterMetrics (bufpool.* families). CopyTracked is the instrumented
// replacement for copy() on data-plane paths: the bytes_copied counter it
// feeds is the residual memcpy budget of the zero-copy plane, and the
// benchmark-facing guard tests pin it near zero for pipelined downloads.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"lonviz/internal/obs"
)

const (
	// minBits..maxBits bound the pooled size classes: 1<<12 = 4 KiB
	// (smaller buffers are cheaper to allocate than to synchronize on)
	// up to 1<<24 = 16 MiB (a whole large view set).
	minBits    = 12
	maxBits    = 24
	numClasses = maxBits - minBits + 1
)

// MaxPooled is the largest request the pool will recycle; bigger Gets
// allocate directly and count as oversize.
const MaxPooled = 1 << maxBits

var classes [numClasses]sync.Pool

var (
	gets        atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	oversize    atomic.Int64
	bytesCopied atomic.Int64
)

// classFor returns the size-class index able to hold n bytes, or -1 when
// n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minBits {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b > maxBits {
		return -1
	}
	return b - minBits
}

// Get returns a buffer of length n (capacity rounded up to the size
// class). Contents are arbitrary. For n above MaxPooled it falls back to
// a plain allocation that Put will drop.
func Get(n int) []byte {
	gets.Add(1)
	c := classFor(n)
	if c < 0 {
		oversize.Add(1)
		return make([]byte, n)
	}
	if v := classes[c].Get(); v != nil {
		hits.Add(1)
		return (*(v.(*[]byte)))[:n]
	}
	misses.Add(1)
	return make([]byte, n, 1<<(c+minBits))
}

// Put recycles b for a future Get. Buffers whose capacity is not an
// exact size class are dropped, so Put never poisons a class with a
// short buffer. nil and empty buffers are ignored.
func Put(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	idx := bits.TrailingZeros(uint(c)) - minBits
	if idx < 0 || idx >= numClasses {
		return
	}
	puts.Add(1)
	b = b[:c]
	classes[idx].Put(&b)
}

// CopyTracked is copy() with accounting: every byte moved through it
// lands on the bufpool.bytes_copied counter. Data-plane code uses it at
// the few sites where a copy is still unavoidable (racing replicas,
// serial-fallback loads), so the metric measures exactly the memcpy work
// the zero-copy plane has not eliminated.
func CopyTracked(dst, src []byte) int {
	n := copy(dst, src)
	bytesCopied.Add(int64(n))
	return n
}

// Stats is a point-in-time snapshot of the pool counters.
type Stats struct {
	Gets        int64
	Hits        int64
	Misses      int64
	Puts        int64
	Oversize    int64
	BytesCopied int64
}

// ReadStats returns the current counter values.
func ReadStats() Stats {
	return Stats{
		Gets:        gets.Load(),
		Hits:        hits.Load(),
		Misses:      misses.Load(),
		Puts:        puts.Load(),
		Oversize:    oversize.Load(),
		BytesCopied: bytesCopied.Load(),
	}
}

// RegisterMetrics bridges the pool counters onto reg (scraped as
// bufpool.* at /metrics); passing nil bridges into obs.Default(). The
// pool is process-global, so one registration per process is enough.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	reg.RegisterSnapshot("bufpool", func() map[string]float64 {
		st := ReadStats()
		return map[string]float64{
			"gets":         float64(st.Gets),
			"hits":         float64(st.Hits),
			"misses":       float64(st.Misses),
			"puts":         float64(st.Puts),
			"oversize":     float64(st.Oversize),
			"bytes_copied": float64(st.BytesCopied),
		}
	})
}
