package bufpool

import (
	"testing"

	"lonviz/internal/obs"
)

func TestClassForBounds(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{1, 0},
		{1 << minBits, 0},
		{1<<minBits + 1, 1},
		{64 * 1024, 16 - minBits},
		{64*1024 + 1, 17 - minBits},
		{MaxPooled, numClasses - 1},
		{MaxPooled + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	b := Get(5000)
	if len(b) != 5000 {
		t.Fatalf("len = %d, want 5000", len(b))
	}
	if cap(b) != 8192 {
		t.Fatalf("cap = %d, want 8192 (size class)", cap(b))
	}
	b[0], b[4999] = 0xAA, 0xBB
	Put(b)
	// A subsequent Get of the same class may or may not observe the
	// recycled buffer (sync.Pool gives no guarantee), but it must have
	// the right length either way.
	b2 := Get(6000)
	if len(b2) != 6000 || cap(b2) != 8192 {
		t.Fatalf("recycled get: len=%d cap=%d", len(b2), cap(b2))
	}
	Put(b2)
}

func TestPutDropsNonClassCapacities(t *testing.T) {
	before := ReadStats().Puts
	Put(nil)
	Put(make([]byte, 100))      // cap 100: not a power of two
	Put(make([]byte, 0, 1<<8))  // below the smallest class
	Put(make([]byte, 0, 1<<30)) // above the largest class
	if got := ReadStats().Puts - before; got != 0 {
		t.Fatalf("Puts advanced by %d on non-class buffers, want 0", got)
	}
}

func TestOversizeFallsBackToAllocation(t *testing.T) {
	before := ReadStats().Oversize
	b := Get(MaxPooled + 1)
	if len(b) != MaxPooled+1 {
		t.Fatalf("oversize len = %d", len(b))
	}
	if got := ReadStats().Oversize - before; got != 1 {
		t.Fatalf("Oversize advanced by %d, want 1", got)
	}
}

func TestCopyTrackedCounts(t *testing.T) {
	before := ReadStats().BytesCopied
	dst := make([]byte, 64)
	n := CopyTracked(dst, []byte("hello"))
	if n != 5 {
		t.Fatalf("CopyTracked returned %d, want 5", n)
	}
	if got := ReadStats().BytesCopied - before; got != 5 {
		t.Fatalf("BytesCopied advanced by %d, want 5", got)
	}
}

// TestWarmPoolAllocs pins the steady-state cost of the pool: once a size
// class is warm, a Get must not allocate a payload buffer — the only
// permitted allocation per Get+Put cycle is the 24-byte slice-header box
// Put hands to sync.Pool. A regression here (e.g. Put silently dropping
// class-capacity buffers, or Get cloning) would put every view set back
// on the allocator and show up as GC pressure under fleet load.
func TestWarmPoolAllocs(t *testing.T) {
	// Warm the 64 KiB class well past any per-P pool shard.
	warm := make([][]byte, 64)
	for i := range warm {
		warm[i] = Get(64 * 1024)
	}
	for _, b := range warm {
		Put(b)
	}
	allocs := testing.AllocsPerRun(200, func() {
		b := Get(64 * 1024)
		b[0] = 1
		Put(b)
	})
	if allocs > 1 {
		t.Fatalf("warm Get+Put averaged %.1f allocs/op, want <= 1 (header box only)", allocs)
	}
}

func TestRegisterMetricsBridges(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	Get(1024) // ensure non-zero counters
	snap := reg.Snapshot()
	for _, name := range []string{
		obs.MBufpoolGets, obs.MBufpoolHits, obs.MBufpoolMisses,
		obs.MBufpoolPuts, obs.MBufpoolOversize, obs.MBufpoolBytesCopied,
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
}
