package geom

import (
	"errors"
	"math"
)

// Camera is a pinhole camera generating primary rays for a square image of
// Res x Res pixels with vertical field of view FovY.
type Camera struct {
	Eye     Vec3
	forward Vec3
	right   Vec3
	up      Vec3
	FovY    float64 // radians
	Res     int
	halfH   float64
}

// ErrDegenerateCamera is returned when eye and target coincide or the up
// vector is parallel to the view direction.
var ErrDegenerateCamera = errors.New("geom: degenerate camera configuration")

// LookAt builds a camera at eye looking toward target with the given
// approximate up vector, field of view (radians) and square resolution.
func LookAt(eye, target, up Vec3, fovY float64, res int) (*Camera, error) {
	if res <= 0 {
		return nil, errors.New("geom: camera resolution must be positive")
	}
	fwd := target.Sub(eye)
	if fwd.Len() == 0 {
		return nil, ErrDegenerateCamera
	}
	fwd = fwd.Norm()
	right := fwd.Cross(up)
	if right.Len() < 1e-12 {
		// Up is parallel to the view direction; pick any perpendicular.
		alt := V(1, 0, 0)
		if math.Abs(fwd.X) > 0.9 {
			alt = V(0, 1, 0)
		}
		right = fwd.Cross(alt)
		if right.Len() < 1e-12 {
			return nil, ErrDegenerateCamera
		}
	}
	right = right.Norm()
	trueUp := right.Cross(fwd).Norm()
	return &Camera{
		Eye:     eye,
		forward: fwd,
		right:   right,
		up:      trueUp,
		FovY:    fovY,
		Res:     res,
		halfH:   math.Tan(fovY / 2),
	}, nil
}

// Forward returns the unit view direction.
func (c *Camera) Forward() Vec3 { return c.forward }

// Right returns the unit right vector.
func (c *Camera) Right() Vec3 { return c.right }

// Up returns the unit up vector (orthogonal to Forward and Right).
func (c *Camera) Up() Vec3 { return c.up }

// PrimaryRay returns the eye ray through the center of pixel (px, py), with
// (0,0) the top-left pixel.
func (c *Camera) PrimaryRay(px, py int) Ray {
	// NDC in [-1, 1], y down in pixel space -> y up in camera space.
	u := (2*(float64(px)+0.5)/float64(c.Res) - 1) * c.halfH
	v := (1 - 2*(float64(py)+0.5)/float64(c.Res)) * c.halfH
	dir := c.forward.Add(c.right.Scale(u)).Add(c.up.Scale(v))
	return NewRay(c.Eye, dir)
}

// OrbitCamera places a camera on a sphere of radius around center at the
// given angular position, looking at the center. This is the camera-lattice
// configuration used when sampling a spherical light field.
func OrbitCamera(center Vec3, radius float64, sp Spherical, fovY float64, res int) (*Camera, error) {
	eye := Sphere{Center: center, Radius: radius}.PointOn(sp)
	// Near the poles +Z becomes parallel to the view direction; LookAt
	// handles that by picking an alternate up vector.
	return LookAt(eye, center, V(0, 0, 1), fovY, res)
}

// Project maps a world point into continuous pixel coordinates of the
// camera image. ok is false when the point is behind the camera. The result
// inverts PrimaryRay: projecting any point along a primary ray returns that
// ray's pixel coordinates.
func (c *Camera) Project(p Vec3) (px, py float64, ok bool) {
	d := p.Sub(c.Eye)
	t := d.Dot(c.forward)
	if t <= 1e-12 {
		return 0, 0, false
	}
	u := d.Dot(c.right) / t / c.halfH
	v := d.Dot(c.up) / t / c.halfH
	px = (u+1)/2*float64(c.Res) - 0.5
	py = (1-v)/2*float64(c.Res) - 0.5
	return px, py, true
}

// PrimaryRayRaw is PrimaryRay without direction normalization — for hot
// paths that intersect with the general (non-unit) quadratic and never
// interpret t as distance.
func (c *Camera) PrimaryRayRaw(px, py int) Ray {
	u := (2*(float64(px)+0.5)/float64(c.Res) - 1) * c.halfH
	v := (1 - 2*(float64(py)+0.5)/float64(c.Res)) * c.halfH
	dir := c.forward.Add(c.right.Scale(u)).Add(c.up.Scale(v))
	return Ray{Origin: c.Eye, Dir: dir}
}
