package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	a := V(1, 2, 3)
	b := V(-2, 0.5, 4)
	c := a.Cross(b)
	if math.Abs(c.Dot(a)) > 1e-12 || math.Abs(c.Dot(b)) > 1e-12 {
		t.Errorf("cross product not orthogonal: %v", c)
	}
	// Right-handedness on basis vectors.
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); !got.ApproxEq(V(0, 0, 1), 1e-15) {
		t.Errorf("x cross y = %v, want z", got)
	}
}

func TestNorm(t *testing.T) {
	v := V(3, 4, 0).Norm()
	if math.Abs(v.Len()-1) > 1e-12 {
		t.Errorf("Norm length = %v", v.Len())
	}
	if !v.ApproxEq(V(0.6, 0.8, 0), 1e-12) {
		t.Errorf("Norm = %v", v)
	}
	zero := Vec3{}
	if zero.Norm() != zero {
		t.Errorf("Norm of zero vector changed: %v", zero.Norm())
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, -10, 2)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.ApproxEq(V(5, -5, 1), 1e-12) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestMinMaxDistFinite(t *testing.T) {
	a, b := V(1, 5, -2), V(3, -1, 0)
	if got := a.Min(b); got != V(1, -1, -2) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(3, 5, 0) {
		t.Errorf("Max = %v", got)
	}
	if got := V(0, 0, 0).Dist(V(3, 4, 0)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if !a.IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() || V(0, math.Inf(1), 0).IsFinite() {
		t.Error("non-finite vector reported finite")
	}
}

func TestClamp(t *testing.T) {
	for _, tc := range []struct{ v, lo, hi, want float64 }{
		{-1, 0, 1, 0}, {2, 0, 1, 1}, {0.5, 0, 1, 0.5}, {0, 0, 0, 0},
	} {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestRayAt(t *testing.T) {
	r := NewRay(V(1, 0, 0), V(0, 2, 0)) // direction normalized
	if math.Abs(r.Dir.Len()-1) > 1e-12 {
		t.Fatalf("ray direction not normalized: %v", r.Dir)
	}
	if got := r.At(3); !got.ApproxEq(V(1, 3, 0), 1e-12) {
		t.Errorf("At(3) = %v", got)
	}
}

// Property: normalization is idempotent and produces unit length for any
// non-tiny vector.
func TestNormPropertyQuick(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := V(x, y, z)
		if !v.IsFinite() || v.Len() < 1e-9 || v.Len() > 1e18 {
			return true // skip degenerate input
		}
		n := v.Norm()
		return math.Abs(n.Len()-1) < 1e-9 && n.Norm().ApproxEq(n, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: dot product is symmetric and bilinear in scaling.
func TestDotPropertyQuick(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, s float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() || math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		if math.Abs(s) > 1e6 || a.Len() > 1e6 || b.Len() > 1e6 {
			return true // avoid float overflow noise
		}
		sym := math.Abs(a.Dot(b)-b.Dot(a)) <= 1e-6
		lin := math.Abs(a.Scale(s).Dot(b)-s*a.Dot(b)) <= 1e-4*(1+math.Abs(s*a.Dot(b)))
		return sym && lin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
