package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSphereIntersectHit(t *testing.T) {
	s := Sphere{Center: V(0, 0, 0), Radius: 2}
	r := NewRay(V(-10, 0, 0), V(1, 0, 0))
	tn, tf, ok := s.IntersectRay(r)
	if !ok {
		t.Fatal("expected hit")
	}
	if math.Abs(tn-8) > 1e-9 || math.Abs(tf-12) > 1e-9 {
		t.Errorf("tn=%v tf=%v, want 8, 12", tn, tf)
	}
}

func TestSphereIntersectMiss(t *testing.T) {
	s := Sphere{Center: V(0, 0, 0), Radius: 1}
	r := NewRay(V(-10, 5, 0), V(1, 0, 0))
	if _, _, ok := s.IntersectRay(r); ok {
		t.Error("expected miss")
	}
}

func TestSphereIntersectFromInside(t *testing.T) {
	s := Sphere{Center: V(0, 0, 0), Radius: 3}
	r := NewRay(V(0, 0, 0), V(0, 1, 0))
	tn, tf, ok := s.IntersectRay(r)
	if !ok {
		t.Fatal("expected hit from inside")
	}
	if tn >= 0 || math.Abs(tf-3) > 1e-9 {
		t.Errorf("tn=%v tf=%v, want tn<0, tf=3", tn, tf)
	}
}

func TestSphereContains(t *testing.T) {
	s := Sphere{Center: V(1, 1, 1), Radius: 2}
	if !s.Contains(V(1, 1, 1)) || !s.Contains(V(3, 1, 1)) {
		t.Error("Contains false negative")
	}
	if s.Contains(V(4, 1, 1)) {
		t.Error("Contains false positive")
	}
}

func TestSphericalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		d := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Norm()
		if d.Len() == 0 {
			continue
		}
		back := ToSpherical(d).Dir()
		if !back.ApproxEq(d, 1e-9) {
			t.Fatalf("round trip failed: %v -> %v", d, back)
		}
	}
}

func TestSphericalRanges(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := V(x, y, z)
		if !v.IsFinite() || v.Len() < 1e-9 || v.Len() > 1e9 {
			return true
		}
		sp := ToSpherical(v)
		return sp.Theta >= 0 && sp.Theta <= math.Pi && sp.Phi >= 0 && sp.Phi < 2*math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSphericalPoles(t *testing.T) {
	up := ToSpherical(V(0, 0, 1))
	if up.Theta != 0 {
		t.Errorf("+Z theta = %v", up.Theta)
	}
	down := ToSpherical(V(0, 0, -1))
	if math.Abs(down.Theta-math.Pi) > 1e-12 {
		t.Errorf("-Z theta = %v", down.Theta)
	}
	if ToSpherical(Vec3{}) != (Spherical{}) {
		t.Error("zero vector should map to (0,0)")
	}
}

func TestPointOnAndSphericalOf(t *testing.T) {
	s := Sphere{Center: V(5, -2, 1), Radius: 4}
	sp := Spherical{Theta: 1.1, Phi: 2.2}
	p := s.PointOn(sp)
	if math.Abs(p.Sub(s.Center).Len()-4) > 1e-9 {
		t.Errorf("PointOn not on sphere: %v", p)
	}
	got := s.SphericalOf(p)
	if math.Abs(got.Theta-sp.Theta) > 1e-9 || math.Abs(got.Phi-sp.Phi) > 1e-9 {
		t.Errorf("SphericalOf = %+v, want %+v", got, sp)
	}
}

func TestAngularDist(t *testing.T) {
	a := Spherical{Theta: math.Pi / 2, Phi: 0}
	b := Spherical{Theta: math.Pi / 2, Phi: math.Pi / 2}
	if d := AngularDist(a, b); math.Abs(d-math.Pi/2) > 1e-12 {
		t.Errorf("AngularDist = %v, want pi/2", d)
	}
	if d := AngularDist(a, a); d > 1e-9 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDegreesRadians(t *testing.T) {
	if Degrees(math.Pi) != 180 {
		t.Error("Degrees(pi) != 180")
	}
	if math.Abs(Radians(90)-math.Pi/2) > 1e-15 {
		t.Error("Radians(90) != pi/2")
	}
}

func TestBoxIntersect(t *testing.T) {
	b := Box{Min: V(-1, -1, -1), Max: V(1, 1, 1)}
	r := NewRay(V(-5, 0, 0), V(1, 0, 0))
	tn, tf, ok := b.IntersectRay(r)
	if !ok || math.Abs(tn-4) > 1e-9 || math.Abs(tf-6) > 1e-9 {
		t.Errorf("box hit tn=%v tf=%v ok=%v", tn, tf, ok)
	}
	if _, _, ok := b.IntersectRay(NewRay(V(-5, 2, 0), V(1, 0, 0))); ok {
		t.Error("expected box miss")
	}
	// Axis-parallel ray inside slab bounds.
	if _, _, ok := b.IntersectRay(NewRay(V(0, 0, -9), V(0, 0, 1))); !ok {
		t.Error("expected axis-aligned hit")
	}
	// Zero direction component outside slab.
	if _, _, ok := b.IntersectRay(NewRay(V(0, 5, -9), V(0, 0, 1))); ok {
		t.Error("expected miss for parallel ray outside slab")
	}
}

func TestBoundingSphereContainsCorners(t *testing.T) {
	b := Box{Min: V(-2, 0, 1), Max: V(4, 3, 5)}
	s := b.BoundingSphere()
	for _, x := range []float64{b.Min.X, b.Max.X} {
		for _, y := range []float64{b.Min.Y, b.Max.Y} {
			for _, z := range []float64{b.Min.Z, b.Max.Z} {
				if !s.Contains(V(x, y, z)) {
					t.Errorf("corner (%v,%v,%v) outside bounding sphere", x, y, z)
				}
			}
		}
	}
}

// Property: any ray that intersects an inner sphere also intersects every
// concentric outer sphere. This is the geometric fact that makes the
// two-sphere light field parameterization total (paper section 3.2).
func TestInnerHitImpliesOuterHit(t *testing.T) {
	inner := Sphere{Radius: 1}
	outer := Sphere{Radius: 2.5}
	rng := rand.New(rand.NewSource(42))
	hits := 0
	for i := 0; i < 5000; i++ {
		o := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Norm().Scale(3 + rng.Float64()*10)
		d := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if d.Len() == 0 {
			continue
		}
		r := NewRay(o, d)
		if _, _, ok := inner.IntersectRay(r); ok {
			hits++
			if _, _, ok2 := outer.IntersectRay(r); !ok2 {
				t.Fatalf("ray %+v hits inner sphere but misses outer", r)
			}
		}
	}
	if hits == 0 {
		t.Fatal("test generated no inner-sphere hits; broken sampler")
	}
}

func TestIntersectRayGeneralMatchesUnit(t *testing.T) {
	s := Sphere{Center: V(1, 2, 3), Radius: 2}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		o := V(rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5)
		d := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if d.Len() < 1e-9 {
			continue
		}
		scale := 0.1 + rng.Float64()*10
		raw := Ray{Origin: o, Dir: d.Scale(scale)}
		unit := NewRay(o, d)
		tn1, tf1, ok1 := s.IntersectRay(unit)
		tn2, tf2, ok2 := s.IntersectRayGeneral(raw)
		if ok1 != ok2 {
			t.Fatalf("hit disagreement at %+v", raw)
		}
		if !ok1 {
			continue
		}
		// Points must coincide even though parameters differ.
		if !unit.At(tn1).ApproxEq(raw.At(tn2), 1e-6) || !unit.At(tf1).ApproxEq(raw.At(tf2), 1e-6) {
			t.Fatalf("intersection points differ")
		}
	}
	// Degenerate zero direction.
	if _, _, ok := s.IntersectRayGeneral(Ray{Origin: V(0, 0, 0), Dir: Vec3{}}); ok {
		t.Error("zero-direction ray hit")
	}
}
