package geom

import (
	"math"
	"testing"
)

func TestLookAtBasis(t *testing.T) {
	c, err := LookAt(V(0, -5, 0), V(0, 0, 0), V(0, 0, 1), Radians(45), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Forward().ApproxEq(V(0, 1, 0), 1e-12) {
		t.Errorf("forward = %v", c.Forward())
	}
	// Orthonormal basis.
	if math.Abs(c.Forward().Dot(c.Right())) > 1e-12 ||
		math.Abs(c.Forward().Dot(c.Up())) > 1e-12 ||
		math.Abs(c.Right().Dot(c.Up())) > 1e-12 {
		t.Error("camera basis not orthogonal")
	}
	for _, v := range []Vec3{c.Forward(), c.Right(), c.Up()} {
		if math.Abs(v.Len()-1) > 1e-12 {
			t.Errorf("basis vector not unit: %v", v)
		}
	}
}

func TestLookAtDegenerate(t *testing.T) {
	if _, err := LookAt(V(1, 2, 3), V(1, 2, 3), V(0, 0, 1), 1, 8); err == nil {
		t.Error("expected error for eye == target")
	}
	if _, err := LookAt(V(0, 0, 0), V(0, 0, 1), V(0, 0, 1), 1, 0); err == nil {
		t.Error("expected error for non-positive resolution")
	}
	// Up parallel to view direction must be recovered, not fail.
	c, err := LookAt(V(0, 0, -5), V(0, 0, 0), V(0, 0, 1), 1, 8)
	if err != nil {
		t.Fatalf("parallel up not recovered: %v", err)
	}
	if math.Abs(c.Right().Dot(c.Forward())) > 1e-12 {
		t.Error("recovered basis not orthogonal")
	}
}

func TestPrimaryRayCenterPixel(t *testing.T) {
	// Odd resolution: the middle pixel's center ray is exactly forward.
	c, err := LookAt(V(0, -3, 0), V(0, 10, 0), V(0, 0, 1), Radians(60), 9)
	if err != nil {
		t.Fatal(err)
	}
	r := c.PrimaryRay(4, 4)
	if !r.Dir.ApproxEq(c.Forward(), 1e-12) {
		t.Errorf("center ray dir = %v, want %v", r.Dir, c.Forward())
	}
	if r.Origin != c.Eye {
		t.Errorf("ray origin = %v", r.Origin)
	}
}

func TestPrimaryRayCorners(t *testing.T) {
	c, err := LookAt(V(0, 0, 0), V(0, 0, -1), V(0, 1, 0), Radians(90), 100)
	if err != nil {
		t.Fatal(err)
	}
	topLeft := c.PrimaryRay(0, 0)
	bottomRight := c.PrimaryRay(99, 99)
	// Top-left must point up-left relative to forward; bottom-right opposite.
	if topLeft.Dir.Dot(c.Up()) <= 0 {
		t.Error("top-left ray does not point up")
	}
	if bottomRight.Dir.Dot(c.Up()) >= 0 {
		t.Error("bottom-right ray does not point down")
	}
	if topLeft.Dir.Dot(c.Right()) >= 0 {
		t.Error("top-left ray does not point left")
	}
}

func TestOrbitCameraLooksAtCenter(t *testing.T) {
	center := V(1, 2, 3)
	for _, sp := range []Spherical{
		{Theta: 0.01, Phi: 0},
		{Theta: math.Pi / 2, Phi: 1},
		{Theta: math.Pi - 0.01, Phi: 4},
		{Theta: 0, Phi: 0}, // exactly at the pole
	} {
		c, err := OrbitCamera(center, 5, sp, Radians(30), 16)
		if err != nil {
			t.Fatalf("OrbitCamera(%+v): %v", sp, err)
		}
		if math.Abs(c.Eye.Dist(center)-5) > 1e-9 {
			t.Errorf("eye not on orbit sphere: %v", c.Eye)
		}
		want := center.Sub(c.Eye).Norm()
		if !c.Forward().ApproxEq(want, 1e-9) {
			t.Errorf("forward = %v, want %v", c.Forward(), want)
		}
	}
}

func TestProjectBehindCamera(t *testing.T) {
	c, err := LookAt(V(0, 0, 0), V(0, 1, 0), V(0, 0, 1), Radians(45), 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Project(V(0, -5, 0)); ok {
		t.Error("point behind the camera projected")
	}
	if _, _, ok := c.Project(c.Eye); ok {
		t.Error("the eye itself projected")
	}
}

func TestPrimaryRayRawMatchesPrimaryRay(t *testing.T) {
	c, err := LookAt(V(1, -3, 2), V(0, 0, 0), V(0, 0, 1), Radians(50), 33)
	if err != nil {
		t.Fatal(err)
	}
	for _, px := range []int{0, 16, 32} {
		for _, py := range []int{0, 16, 32} {
			a := c.PrimaryRay(px, py)
			b := c.PrimaryRayRaw(px, py)
			if a.Origin != b.Origin {
				t.Fatal("origins differ")
			}
			if !a.Dir.ApproxEq(b.Dir.Norm(), 1e-12) {
				t.Fatalf("directions differ at (%d,%d)", px, py)
			}
		}
	}
}
