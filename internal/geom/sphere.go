package geom

import "math"

// Sphere is a sphere centered at Center with radius Radius.
type Sphere struct {
	Center Vec3
	Radius float64
}

// IntersectRay returns the ray parameters at which r enters and leaves the
// sphere. ok is false when the ray misses. tNear may be negative when the
// ray origin is inside the sphere or the sphere is behind the origin.
func (s Sphere) IntersectRay(r Ray) (tNear, tFar float64, ok bool) {
	oc := r.Origin.Sub(s.Center)
	// Dir is unit length, so a == 1.
	b := 2 * oc.Dot(r.Dir)
	c := oc.Len2() - s.Radius*s.Radius
	disc := b*b - 4*c
	if disc < 0 {
		return 0, 0, false
	}
	sq := math.Sqrt(disc)
	return (-b - sq) / 2, (-b + sq) / 2, true
}

// Contains reports whether p lies inside or on the sphere.
func (s Sphere) Contains(p Vec3) bool {
	return p.Sub(s.Center).Len2() <= s.Radius*s.Radius+1e-12
}

// Spherical holds the angular components of spherical coordinates:
// Theta (colatitude from +Z) in [0, pi], Phi (longitude from +X) in
// [0, 2*pi).
type Spherical struct {
	Theta, Phi float64
}

// ToSpherical converts a direction (need not be unit) to angular spherical
// coordinates. The zero vector maps to (0, 0).
func ToSpherical(d Vec3) Spherical {
	l := d.Len()
	if l == 0 {
		return Spherical{}
	}
	theta := math.Acos(Clamp(d.Z/l, -1, 1))
	phi := math.Atan2(d.Y, d.X)
	if phi < 0 {
		phi += 2 * math.Pi
	}
	return Spherical{Theta: theta, Phi: phi}
}

// Dir converts spherical angles back to a unit direction vector.
func (sp Spherical) Dir() Vec3 {
	st, ct := math.Sincos(sp.Theta)
	sf, cf := math.Sincos(sp.Phi)
	return Vec3{st * cf, st * sf, ct}
}

// PointOn returns the point at angles sp on sphere s.
func (s Sphere) PointOn(sp Spherical) Vec3 {
	return s.Center.Add(sp.Dir().Scale(s.Radius))
}

// SphericalOf returns the angular coordinates of p as seen from the sphere
// center. p need not lie on the sphere surface.
func (s Sphere) SphericalOf(p Vec3) Spherical {
	return ToSpherical(p.Sub(s.Center))
}

// AngularDist returns the great-circle angle in radians between two
// spherical directions.
func AngularDist(a, b Spherical) float64 {
	return math.Acos(Clamp(a.Dir().Dot(b.Dir()), -1, 1))
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// Box is an axis-aligned box.
type Box struct {
	Min, Max Vec3
}

// IntersectRay returns the entry and exit parameters of r against the box
// using the slab method. ok is false when the ray misses the box entirely.
func (b Box) IntersectRay(r Ray) (tNear, tFar float64, ok bool) {
	tNear = math.Inf(-1)
	tFar = math.Inf(1)
	for i := 0; i < 3; i++ {
		var o, d, lo, hi float64
		switch i {
		case 0:
			o, d, lo, hi = r.Origin.X, r.Dir.X, b.Min.X, b.Max.X
		case 1:
			o, d, lo, hi = r.Origin.Y, r.Dir.Y, b.Min.Y, b.Max.Y
		default:
			o, d, lo, hi = r.Origin.Z, r.Dir.Z, b.Min.Z, b.Max.Z
		}
		if d == 0 {
			if o < lo || o > hi {
				return 0, 0, false
			}
			continue
		}
		t0 := (lo - o) / d
		t1 := (hi - o) / d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tNear {
			tNear = t0
		}
		if t1 < tFar {
			tFar = t1
		}
		if tNear > tFar {
			return 0, 0, false
		}
	}
	return tNear, tFar, true
}

// Center returns the box centroid.
func (b Box) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Diagonal returns Max - Min.
func (b Box) Diagonal() Vec3 { return b.Max.Sub(b.Min) }

// BoundingSphere returns the smallest sphere centered at the box center that
// contains the box.
func (b Box) BoundingSphere() Sphere {
	return Sphere{Center: b.Center(), Radius: b.Diagonal().Len() / 2}
}

// IntersectRayGeneral is IntersectRay for rays whose direction need not be
// unit length; the returned parameters are in units of |Dir|.
func (s Sphere) IntersectRayGeneral(r Ray) (tNear, tFar float64, ok bool) {
	oc := r.Origin.Sub(s.Center)
	a := r.Dir.Dot(r.Dir)
	if a == 0 {
		return 0, 0, false
	}
	b := 2 * oc.Dot(r.Dir)
	c := oc.Len2() - s.Radius*s.Radius
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, 0, false
	}
	sq := math.Sqrt(disc)
	return (-b - sq) / (2 * a), (-b + sq) / (2 * a), true
}
