// Package geom provides the small computational-geometry kernel used by the
// light field system: 3-vectors, rays, spherical coordinates, pinhole
// cameras, and ray/sphere and ray/box intersection.
//
// Conventions: right-handed coordinates, angles in radians unless a name
// says otherwise, and spherical coordinates (theta, phi) with theta in
// [0, pi] measured from +Z (colatitude) and phi in [0, 2*pi) measured from
// +X toward +Y (longitude).
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector of float64.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a * s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Mul returns the component-wise product of a and b.
func (a Vec3) Mul(b Vec3) Vec3 { return Vec3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Neg returns -a.
func (a Vec3) Neg() Vec3 { return Vec3{-a.X, -a.Y, -a.Z} }

// Dot returns the dot product of a and b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a x b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean length of a.
func (a Vec3) Len() float64 { return math.Sqrt(a.Dot(a)) }

// Len2 returns the squared length of a.
func (a Vec3) Len2() float64 { return a.Dot(a) }

// Norm returns a scaled to unit length. The zero vector is returned
// unchanged.
func (a Vec3) Norm() Vec3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Lerp returns the linear interpolation (1-t)*a + t*b.
func (a Vec3) Lerp(b Vec3, t float64) Vec3 {
	return Vec3{
		a.X + (b.X-a.X)*t,
		a.Y + (b.Y-a.Y)*t,
		a.Z + (b.Z-a.Z)*t,
	}
}

// Dist returns the Euclidean distance between a and b.
func (a Vec3) Dist(b Vec3) float64 { return a.Sub(b).Len() }

// Min returns the component-wise minimum of a and b.
func (a Vec3) Min(b Vec3) Vec3 {
	return Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func (a Vec3) Max(b Vec3) Vec3 {
	return Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
}

// IsFinite reports whether all components are finite numbers.
func (a Vec3) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0) &&
		!math.IsNaN(a.Z) && !math.IsInf(a.Z, 0)
}

// String implements fmt.Stringer.
func (a Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", a.X, a.Y, a.Z) }

// ApproxEq reports whether a and b agree component-wise within eps.
func (a Vec3) ApproxEq(b Vec3, eps float64) bool {
	return math.Abs(a.X-b.X) <= eps && math.Abs(a.Y-b.Y) <= eps && math.Abs(a.Z-b.Z) <= eps
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Ray is a half-line with unit-length direction.
type Ray struct {
	Origin Vec3
	Dir    Vec3
}

// NewRay constructs a Ray, normalizing dir.
func NewRay(origin, dir Vec3) Ray { return Ray{Origin: origin, Dir: dir.Norm()} }

// At returns the point Origin + t*Dir.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }
