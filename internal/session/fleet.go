// Fleet mode: many concurrent browsing sessions against one deployment,
// the multi-client load under which the overload-control layer earns its
// keep. Each simulated user runs an independent seeded script; the
// aggregate answers the questions a single session cannot — does total
// throughput hold up, does tail latency stay bounded, and is capacity
// shared fairly instead of one client starving the rest.

package session

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
)

// FleetOptions configures a multi-client run.
type FleetOptions struct {
	// Params describes the database every client browses.
	Params lightfield.Params
	// Clients is the number of concurrent viewers (default 1).
	Clients int
	// Accesses is the script length per client (default PaperAccessCount).
	Accesses int
	// Seed is the base script seed; client i walks with Seed+i, so the
	// fleet covers distinct but reproducible paths.
	Seed int64
	// ThinkTime paces each client's moves (zero = back-to-back).
	ThinkTime time.Duration
	// MoveTimeout bounds each individual access. With propagation on the
	// remaining budget rides the wire as deadline=<ms>, letting depots
	// and agents shed work for clients that have already moved on.
	MoveTimeout time.Duration
	// NewViewer builds client i's viewer (and whatever agent stack backs
	// it). The caller owns cleanup of anything the factory creates.
	NewViewer func(i int) (*agent.Viewer, error)
}

// ClientRun is one simulated user's outcome.
type ClientRun struct {
	Client  int
	Records []agent.AccessRecord // successful accesses, in order
	// Busy counts moves shed with a typed BUSY (depot, DVS, or render
	// agent overload); Expired counts moves that ran out of MoveTimeout;
	// Errors counts everything else that failed.
	Busy    int
	Expired int
	Errors  int
	// SetupErr is set when the viewer factory itself failed; the run has
	// no accesses then.
	SetupErr error
	Elapsed  time.Duration
}

// FPS is this client's successful-access throughput.
func (c ClientRun) FPS() float64 {
	if c.Elapsed <= 0 {
		return 0
	}
	return float64(len(c.Records)) / c.Elapsed.Seconds()
}

// P99Ms is this client's 99th-percentile total access latency in
// milliseconds (0 with no successful accesses).
func (c ClientRun) P99Ms() float64 {
	if len(c.Records) == 0 {
		return 0
	}
	ms := make([]float64, len(c.Records))
	for i, r := range c.Records {
		ms[i] = float64(r.Total) / 1e6
	}
	return Percentile(ms, 0.99)
}

// FleetResult aggregates every client's run.
type FleetResult struct {
	Runs    []ClientRun
	Elapsed time.Duration
}

// Accesses is the total number of successful accesses across the fleet.
func (f *FleetResult) Accesses() int {
	n := 0
	for _, r := range f.Runs {
		n += len(r.Records)
	}
	return n
}

// Shed sums the fleet's busy and expired moves.
func (f *FleetResult) Shed() int {
	n := 0
	for _, r := range f.Runs {
		n += r.Busy + r.Expired
	}
	return n
}

// AggregateFPS is the fleet-wide successful-access throughput.
func (f *FleetResult) AggregateFPS() float64 {
	if f.Elapsed <= 0 {
		return 0
	}
	return float64(f.Accesses()) / f.Elapsed.Seconds()
}

// WorstP99Ms is the slowest client's p99 total latency in milliseconds.
func (f *FleetResult) WorstP99Ms() float64 {
	worst := 0.0
	for _, r := range f.Runs {
		worst = math.Max(worst, r.P99Ms())
	}
	return worst
}

// FairnessSpread is the ratio of the fastest client's throughput to the
// slowest's (1.0 = perfectly fair; large = someone starved). Clients
// with zero successful accesses make the spread +Inf.
func (f *FleetResult) FairnessSpread() float64 {
	minFPS, maxFPS := math.Inf(1), 0.0
	for _, r := range f.Runs {
		fps := r.FPS()
		minFPS = math.Min(minFPS, fps)
		maxFPS = math.Max(maxFPS, fps)
	}
	if len(f.Runs) == 0 || maxFPS == 0 {
		return 1
	}
	if minFPS == 0 {
		return math.Inf(1)
	}
	return maxFPS / minFPS
}

// ClassCounts tallies the fleet's successful accesses by access class.
func (f *FleetResult) ClassCounts() map[agent.AccessClass]int {
	counts := make(map[agent.AccessClass]int)
	for _, r := range f.Runs {
		for _, rec := range r.Records {
			counts[rec.Class]++
		}
	}
	return counts
}

// HitRate is the share of fleet accesses served from each client's own
// local cache.
func (f *FleetResult) HitRate() float64 {
	total := f.Accesses()
	if total == 0 {
		return 0
	}
	return float64(f.ClassCounts()[agent.AccessHit]) / float64(total)
}

// CooperativeHitRate is the share of fleet accesses that never left the
// LAN: local-cache hits plus edge-tier hits. This is the fleet-aggregate
// figure the shared edge cache is judged on — an access one client
// missed but a neighbor already pulled through the edge counts.
func (f *FleetResult) CooperativeHitRate() float64 {
	total := f.Accesses()
	if total == 0 {
		return 0
	}
	counts := f.ClassCounts()
	return float64(counts[agent.AccessHit]+counts[agent.AccessEdge]) / float64(total)
}

// Percentile returns the p-quantile (0..1) of values by nearest-rank on
// a sorted copy.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// isBusyMove classifies a failed move as an overload shed from any layer.
func isBusyMove(err error) bool {
	return errors.Is(err, ibp.ErrBusy) || errors.Is(err, dvs.ErrBusy)
}

// RunFleet drives Clients concurrent seeded sessions and aggregates the
// outcome. Individual move failures do not abort a client (a shed BUSY
// is an expected overload outcome, counted, not fatal); a factory
// failure sidelines only that client.
func RunFleet(ctx context.Context, opts FleetOptions) (*FleetResult, error) {
	if opts.NewViewer == nil {
		return nil, fmt.Errorf("session: fleet needs a viewer factory")
	}
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Accesses <= 0 {
		opts.Accesses = PaperAccessCount
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	runs := make([]ClientRun, opts.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i] = runFleetClient(ctx, i, opts)
		}(i)
	}
	wg.Wait()
	return &FleetResult{Runs: runs, Elapsed: time.Since(start)}, nil
}

func runFleetClient(ctx context.Context, i int, opts FleetOptions) ClientRun {
	out := ClientRun{Client: i}
	v, err := opts.NewViewer(i)
	if err != nil {
		out.SetupErr = err
		return out
	}
	script, err := StandardScript(opts.Params, opts.Accesses, opts.Seed+int64(i))
	if err != nil {
		out.SetupErr = err
		return out
	}
	start := time.Now()
	for _, sp := range script.Moves {
		if ctx.Err() != nil {
			break
		}
		mctx, cancel := ctx, context.CancelFunc(func() {})
		if opts.MoveTimeout > 0 {
			mctx, cancel = context.WithTimeout(ctx, opts.MoveTimeout)
		}
		rec, err := v.MoveTo(mctx, sp)
		moveExpired := err != nil && mctx.Err() != nil && ctx.Err() == nil
		cancel()
		switch {
		case err == nil:
			out.Records = append(out.Records, rec)
		case isBusyMove(err):
			out.Busy++
		case moveExpired:
			out.Expired++
		default:
			out.Errors++
		}
		if opts.ThinkTime > 0 {
			select {
			case <-time.After(opts.ThinkTime):
			case <-ctx.Done():
			}
		}
	}
	out.Elapsed = time.Since(start)
	return out
}
