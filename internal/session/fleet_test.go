package session

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/codec"
	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
)

// genSource serves encoded view sets straight from a procedural
// generator — a stand-in client agent with no network underneath.
type genSource struct {
	p   lightfield.Params
	gen lightfield.Generator

	mu    sync.Mutex
	cache map[lightfield.ViewSetID][]byte
	calls int
	// busyEvery > 0 makes every busyEvery-th call fail with a typed
	// BUSY, exercising the fleet's shed accounting.
	busyEvery int
}

func newGenSource(t *testing.T, busyEvery int) *genSource {
	t.Helper()
	p := scriptParams()
	gen, err := lightfield.NewProceduralGenerator(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	return &genSource{p: p, gen: gen, cache: make(map[lightfield.ViewSetID][]byte), busyEvery: busyEvery}
}

func (s *genSource) GetViewSet(ctx context.Context, id lightfield.ViewSetID) ([]byte, agent.AccessReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.busyEvery > 0 && s.calls%s.busyEvery == 0 {
		return nil, agent.AccessReport{}, fmt.Errorf("test shed: %w", ibp.ErrBusy)
	}
	b, ok := s.cache[id]
	if !ok {
		vs, err := s.gen.GenerateViewSet(ctx, id)
		if err != nil {
			return nil, agent.AccessReport{}, err
		}
		b, err = lightfield.EncodeViewSet(vs, s.p, codec.DefaultCompression)
		if err != nil {
			return nil, agent.AccessReport{}, err
		}
		s.cache[id] = b
	}
	return b, agent.AccessReport{ID: id, Class: agent.AccessHit, Bytes: len(b)}, nil
}

func (s *genSource) OnUserMove(sp geom.Spherical) {}

func TestRunFleetAggregates(t *testing.T) {
	src := newGenSource(t, 0)
	res, err := RunFleet(context.Background(), FleetOptions{
		Params:   src.p,
		Clients:  4,
		Accesses: 10,
		Seed:     100,
		NewViewer: func(i int) (*agent.Viewer, error) {
			return agent.NewViewer(src.p, src)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	for _, r := range res.Runs {
		if r.SetupErr != nil {
			t.Fatalf("client %d setup: %v", r.Client, r.SetupErr)
		}
		if len(r.Records) != 10 || r.Busy != 0 || r.Errors != 0 {
			t.Fatalf("client %d: %d records, busy=%d errors=%d", r.Client, len(r.Records), r.Busy, r.Errors)
		}
	}
	if got := res.Accesses(); got != 40 {
		t.Fatalf("accesses = %d, want 40", got)
	}
	if res.AggregateFPS() <= 0 {
		t.Fatal("aggregate fps not positive")
	}
	spread := res.FairnessSpread()
	if math.IsInf(spread, 1) || spread < 1 {
		t.Fatalf("fairness spread = %v", spread)
	}
	if res.WorstP99Ms() <= 0 {
		t.Fatal("p99 not positive")
	}
	// Distinct seeds: at least two clients walked different paths.
	a, _ := StandardScript(src.p, 10, 100)
	b, _ := StandardScript(src.p, 10, 101)
	if a.Moves[0] == b.Moves[0] && a.Moves[5] == b.Moves[5] && a.Moves[9] == b.Moves[9] {
		t.Fatal("per-client seeds produced identical scripts")
	}
}

func TestRunFleetCountsBusySheds(t *testing.T) {
	src := newGenSource(t, 3) // every 3rd access shed
	res, err := RunFleet(context.Background(), FleetOptions{
		Params:   src.p,
		Clients:  2,
		Accesses: 9,
		Seed:     7,
		NewViewer: func(i int) (*agent.Viewer, error) {
			return agent.NewViewer(src.p, src)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed() == 0 {
		t.Fatal("no sheds counted")
	}
	for _, r := range res.Runs {
		if r.Errors != 0 {
			t.Fatalf("client %d: BUSY miscounted as error (%d)", r.Client, r.Errors)
		}
		if len(r.Records)+r.Busy != 9 {
			t.Fatalf("client %d: %d records + %d busy != 9", r.Client, len(r.Records), r.Busy)
		}
	}
}

func TestRunFleetMoveTimeout(t *testing.T) {
	src := newGenSource(t, 0)
	slow := &slowSource{inner: src, delay: 50 * time.Millisecond}
	res, err := RunFleet(context.Background(), FleetOptions{
		Params:      src.p,
		Clients:     1,
		Accesses:    3,
		MoveTimeout: 5 * time.Millisecond,
		NewViewer: func(i int) (*agent.Viewer, error) {
			return agent.NewViewer(src.p, slow)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Runs[0]
	if r.Expired != 3 {
		t.Fatalf("expired = %d (records=%d busy=%d errors=%d), want 3", r.Expired, len(r.Records), r.Busy, r.Errors)
	}
}

type slowSource struct {
	inner *genSource
	delay time.Duration
}

func (s *slowSource) GetViewSet(ctx context.Context, id lightfield.ViewSetID) ([]byte, agent.AccessReport, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, agent.AccessReport{}, ctx.Err()
	}
	return s.inner.GetViewSet(ctx, id)
}

func (s *slowSource) OnUserMove(sp geom.Spherical) {}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if got := Percentile(vals, 0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(vals, 0.99); got != 5 {
		t.Fatalf("p99 = %v", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// The input must not be reordered.
	if vals[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestRunFleetValidation(t *testing.T) {
	if _, err := RunFleet(context.Background(), FleetOptions{Params: scriptParams()}); err == nil {
		t.Error("missing factory accepted")
	}
	bad := scriptParams()
	bad.Res = 0
	if _, err := RunFleet(context.Background(), FleetOptions{
		Params:    bad,
		NewViewer: func(int) (*agent.Viewer, error) { return nil, nil },
	}); err == nil {
		t.Error("bad params accepted")
	}
}
