package session

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/geom"
	"lonviz/internal/lightfield"
)

func scriptParams() lightfield.Params { return lightfield.ScaledParams(15, 3, 8) } // 4x8 sets

func TestStandardScriptProperties(t *testing.T) {
	p := scriptParams()
	s, err := StandardScript(p, PaperAccessCount, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Moves) != 58 {
		t.Fatalf("moves = %d", len(s.Moves))
	}
	trans := s.Transitions(p)
	if len(trans) != 58 {
		t.Fatalf("transitions = %d", len(trans))
	}
	// Consecutive accesses always target different view sets (each move
	// is a real view set request).
	prev := lightfield.ViewSetID{R: -1, C: -1}
	for i, id := range trans {
		if !p.ValidID(id) {
			t.Fatalf("move %d targets invalid set %v", i, id)
		}
		if id == prev {
			t.Fatalf("move %d repeats set %v", i, id)
		}
		prev = id
	}
	// Steps are between neighboring sets (cursor continuity).
	for i := 1; i < len(trans); i++ {
		isNeighbor := false
		for _, n := range p.Neighbors(trans[i-1]) {
			if n == trans[i] {
				isNeighbor = true
			}
		}
		if !isNeighbor {
			t.Fatalf("move %d jumps from %v to %v (not neighbors)", i, trans[i-1], trans[i])
		}
	}
}

func TestStandardScriptDeterministic(t *testing.T) {
	p := scriptParams()
	a, _ := StandardScript(p, 30, 42)
	b, _ := StandardScript(p, 30, 42)
	for i := range a.Moves {
		if a.Moves[i] != b.Moves[i] {
			t.Fatal("script not deterministic")
		}
	}
	c, _ := StandardScript(p, 30, 43)
	same := true
	for i := range a.Moves {
		if a.Moves[i] != c.Moves[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical scripts")
	}
}

func TestStandardScriptValidation(t *testing.T) {
	if _, err := StandardScript(scriptParams(), 0, 1); err == nil {
		t.Error("zero accesses accepted")
	}
	bad := scriptParams()
	bad.Res = 0
	if _, err := StandardScript(bad, 10, 1); err == nil {
		t.Error("bad params accepted")
	}
}

func fakeRecords() []agent.AccessRecord {
	mk := func(class agent.AccessClass, total, comm, dec time.Duration) agent.AccessRecord {
		return agent.AccessRecord{Class: class, Total: total, Comm: comm, Decompress: dec}
	}
	return []agent.AccessRecord{
		mk(agent.AccessWAN, time.Second, 900*time.Millisecond, 50*time.Millisecond),
		mk(agent.AccessWAN, time.Second, 900*time.Millisecond, 50*time.Millisecond),
		mk(agent.AccessLANDepot, 100*time.Millisecond, 80*time.Millisecond, 10*time.Millisecond),
		mk(agent.AccessWAN, time.Second, 900*time.Millisecond, 50*time.Millisecond),
		mk(agent.AccessHit, time.Millisecond, 100*time.Microsecond, 500*time.Microsecond),
		mk(agent.AccessLANDepot, 90*time.Millisecond, 70*time.Millisecond, 10*time.Millisecond),
		mk(agent.AccessHit, time.Millisecond, 100*time.Microsecond, 500*time.Microsecond),
	}
}

func TestSeriesExtraction(t *testing.T) {
	recs := fakeRecords()
	tot := TotalSeconds(recs)
	if len(tot) != 7 || tot[0] != 1.0 {
		t.Errorf("TotalSeconds = %v", tot)
	}
	comm := CommSeconds(recs)
	if comm[2] != 0.08 {
		t.Errorf("CommSeconds[2] = %v", comm[2])
	}
	dec := DecompressSeconds(recs)
	if dec[0] != 0.05 {
		t.Errorf("DecompressSeconds[0] = %v", dec[0])
	}
}

func TestClassCountsAndRates(t *testing.T) {
	recs := fakeRecords()
	counts := ClassCounts(recs)
	if counts[agent.AccessWAN] != 3 || counts[agent.AccessLANDepot] != 2 || counts[agent.AccessHit] != 2 {
		t.Errorf("counts = %v", counts)
	}
	// Initial phase: last WAN access is index 3 -> length 4.
	if got := InitialPhaseLength(recs); got != 4 {
		t.Errorf("InitialPhaseLength = %d", got)
	}
	if got := WANRate(recs, 4); got != 0.75 {
		t.Errorf("WANRate(4) = %v", got)
	}
	if got := HitRate(recs, 7); got < 0.28 || got > 0.29 {
		t.Errorf("HitRate(7) = %v", got)
	}
	if got := WANRate(nil, 5); got != 0 {
		t.Errorf("WANRate(empty) = %v", got)
	}
	if got := InitialPhaseLength(recs[4:]); got != 0 {
		t.Errorf("no-WAN initial phase = %d", got)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, []string{"case1", "case2"},
		[]float64{0.1, 0.2}, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "access,case1,case2" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0.1") || !strings.Contains(lines[1], ",1.0") {
		t.Errorf("row = %q", lines[1])
	}
	if err := WriteSeriesCSV(&buf, nil); err == nil {
		t.Error("no series accepted")
	}
	if err := WriteSeriesCSV(&buf, []string{"a", "b"}, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("misaligned series accepted")
	}
}

func TestStandardScriptAtPaperScale(t *testing.T) {
	// The paper lattice: 12x24 view sets of 6x6 views.
	p := lightfield.PaperParams(64)
	s, err := StandardScript(p, PaperAccessCount, 3)
	if err != nil {
		t.Fatal(err)
	}
	trans := s.Transitions(p)
	distinct := map[lightfield.ViewSetID]bool{}
	for _, id := range trans {
		distinct[id] = true
	}
	// A 58-access walk over 288 sets should mostly visit distinct sets —
	// the regime behind the paper's ~30% hit rates.
	if len(distinct) < PaperAccessCount/2 {
		t.Errorf("only %d distinct sets over %d accesses", len(distinct), PaperAccessCount)
	}
}

func TestRunPropagatesMoveError(t *testing.T) {
	// A viewer whose source always fails must abort the session with a
	// positioned error.
	p := scriptParams()
	v, err := agent.NewViewer(p, failingSource{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := StandardScript(p, 5, 1)
	_, err = Run(context.Background(), v, s, RunOptions{})
	if err == nil {
		t.Fatal("failing source did not abort the run")
	}
	if !strings.Contains(err.Error(), "move 0") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestRunHonorsContext(t *testing.T) {
	p := scriptParams()
	v, err := agent.NewViewer(p, failingSource{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := StandardScript(p, 5, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, v, s, RunOptions{}); err == nil {
		t.Error("canceled run succeeded")
	}
}

type failingSource struct{}

func (failingSource) GetViewSet(ctx context.Context, id lightfield.ViewSetID) ([]byte, agent.AccessReport, error) {
	return nil, agent.AccessReport{}, errors.New("source down")
}

func (failingSource) OnUserMove(sp geom.Spherical) {}
