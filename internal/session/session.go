// Package session orchestrates reproducible browsing sessions. The paper
// drives every experiment with "a standard list of cursor movements" that
// generates a sequence of 58 view set requests; Script synthesizes such a
// list deterministically, Run executes it against a viewer, and the series
// helpers extract the per-access latency curves plotted in Figures 8-12.
package session

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/geom"
	"lonviz/internal/lightfield"
)

// Script is a deterministic list of cursor positions. Every move lands in
// a different view set than the previous one, so a viewer holding only the
// current view set issues exactly one view set request per move — the
// paper's "sequence of 58 view set requests".
type Script struct {
	Moves []geom.Spherical
}

// PaperAccessCount is the length of the paper's orchestrated sequence.
const PaperAccessCount = 58

// StandardScript generates a script of n view-set transitions over the
// database geometry p: a seeded random walk across neighboring view sets
// with directional momentum (users pan in sweeps, not white noise), never
// re-requesting the set it is already in. Jitter displaces each move
// within the target set's angular span so positions look like human cursor
// input.
func StandardScript(p lightfield.Params, n int, seed int64) (Script, error) {
	if err := p.Validate(); err != nil {
		return Script{}, err
	}
	if n <= 0 {
		return Script{}, fmt.Errorf("session: non-positive access count %d", n)
	}
	// Function-local and never shared, so the unsynchronized *rand.Rand is
	// safe even when scripts are generated from concurrent tests.
	rng := rand.New(rand.NewSource(seed))
	cur := lightfield.ViewSetID{R: p.SetRows() / 2, C: p.SetCols() / 2}
	// Momentum: keep moving the same direction with probability 0.6.
	dr, dc := 0, 1
	var moves []geom.Spherical
	for len(moves) < n {
		if rng.Float64() > 0.6 {
			dirs := [][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}, {1, 1}, {-1, -1}, {1, -1}, {-1, 1}}
			d := dirs[rng.Intn(len(dirs))]
			dr, dc = d[0], d[1]
		}
		next := lightfield.ViewSetID{R: cur.R + dr, C: cur.C + dc}
		if next.R < 0 || next.R >= p.SetRows() {
			dr = -dr // bounce off the poles
			continue
		}
		next.C = ((next.C % p.SetCols()) + p.SetCols()) % p.SetCols()
		if next == cur {
			dc = 1 - dc // tiny lattice wrapped onto itself; nudge
			continue
		}
		cur = next
		center := p.SetCenterAngles(cur)
		span := geom.Radians(p.AngularStepDeg) * float64(p.ViewSetL)
		jitter := geom.Spherical{
			Theta: geom.Clamp(center.Theta+(rng.Float64()-0.5)*span*0.4, 0.01, 3.13),
			Phi:   center.Phi + (rng.Float64()-0.5)*span*0.4,
		}
		moves = append(moves, jitter)
	}
	return Script{Moves: moves}, nil
}

// Transitions returns the view set request sequence the script will
// generate (useful for asserting the 58-access property).
func (s Script) Transitions(p lightfield.Params) []lightfield.ViewSetID {
	out := make([]lightfield.ViewSetID, 0, len(s.Moves))
	for _, sp := range s.Moves {
		i, j := p.NearestCamera(sp)
		out = append(out, p.ViewSetOf(i, j))
	}
	return out
}

// RunOptions controls session pacing.
type RunOptions struct {
	// ThinkTime is the pause between cursor movements, modeling the
	// human-generated pacing of the paper's orchestration. Zero means
	// back-to-back.
	ThinkTime time.Duration
	// OnAccess, when set, is called after each access with its record.
	OnAccess func(i int, rec agent.AccessRecord)
}

// Run executes the script against a viewer and returns one access record
// per move, in order.
func Run(ctx context.Context, v *agent.Viewer, s Script, opts RunOptions) ([]agent.AccessRecord, error) {
	records := make([]agent.AccessRecord, 0, len(s.Moves))
	for i, sp := range s.Moves {
		if err := ctx.Err(); err != nil {
			return records, err
		}
		rec, err := v.MoveTo(ctx, sp)
		if err != nil {
			return records, fmt.Errorf("session: move %d: %w", i, err)
		}
		records = append(records, rec)
		if opts.OnAccess != nil {
			opts.OnAccess(i, rec)
		}
		if opts.ThinkTime > 0 && i < len(s.Moves)-1 {
			select {
			case <-time.After(opts.ThinkTime):
			case <-ctx.Done():
				return records, ctx.Err()
			}
		}
	}
	return records, nil
}

// Seconds extracts a latency series in seconds using the given accessor.
func Seconds(records []agent.AccessRecord, f func(agent.AccessRecord) time.Duration) []float64 {
	out := make([]float64, len(records))
	for i, r := range records {
		out[i] = f(r).Seconds()
	}
	return out
}

// TotalSeconds returns the client-observed latency series (Figures 9-11).
func TotalSeconds(records []agent.AccessRecord) []float64 {
	return Seconds(records, func(r agent.AccessRecord) time.Duration { return r.Total })
}

// CommSeconds returns the communication latency series (Figure 12).
func CommSeconds(records []agent.AccessRecord) []float64 {
	return Seconds(records, func(r agent.AccessRecord) time.Duration { return r.Comm })
}

// DecompressSeconds returns the decompression time series (Figure 8).
func DecompressSeconds(records []agent.AccessRecord) []float64 {
	return Seconds(records, func(r agent.AccessRecord) time.Duration { return r.Decompress })
}

// ClassCounts tallies accesses by class over a slice of records.
func ClassCounts(records []agent.AccessRecord) map[agent.AccessClass]int {
	out := make(map[agent.AccessClass]int)
	for _, r := range records {
		out[r.Class]++
	}
	return out
}

// InitialPhaseLength returns the index after which no WAN accesses occur —
// the paper's "initial phase" boundary (section 4.3: "the initial phase
// lasts 33 accesses" at 500x500). A session with no WAN accesses has an
// initial phase of 0; one ending on a WAN access has len(records).
func InitialPhaseLength(records []agent.AccessRecord) int {
	last := 0
	for i, r := range records {
		if r.Class == agent.AccessWAN {
			last = i + 1
		}
	}
	return last
}

// WANRate returns the fraction of accesses in records[:n] served from the
// WAN (the paper's initial-phase WAN access rate).
func WANRate(records []agent.AccessRecord, n int) float64 {
	if n > len(records) {
		n = len(records)
	}
	if n == 0 {
		return 0
	}
	wan := 0
	for _, r := range records[:n] {
		if r.Class == agent.AccessWAN {
			wan++
		}
	}
	return float64(wan) / float64(n)
}

// HitRate returns the fraction of accesses in records[:n] served from the
// agent cache.
func HitRate(records []agent.AccessRecord, n int) float64 {
	if n > len(records) {
		n = len(records)
	}
	if n == 0 {
		return 0
	}
	hits := 0
	for _, r := range records[:n] {
		if r.Class == agent.AccessHit {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// WriteSeriesCSV writes "access,value" rows for one or more aligned series
// with a header, in the layout of the paper's per-access figures.
func WriteSeriesCSV(w io.Writer, header []string, series ...[]float64) error {
	if len(series) == 0 {
		return fmt.Errorf("session: no series")
	}
	n := len(series[0])
	for _, s := range series {
		if len(s) != n {
			return fmt.Errorf("session: series lengths differ")
		}
	}
	if _, err := fmt.Fprintf(w, "access"); err != nil {
		return err
	}
	for _, h := range header {
		if _, err := fmt.Fprintf(w, ",%s", h); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%d", i+1); err != nil {
			return err
		}
		for _, s := range series {
			if _, err := fmt.Fprintf(w, ",%.6f", s[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
