package agent

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/obs"
)

// gatedGen wraps a generator so tests can hold the scheduler busy: every
// GenerateViewSet blocks until the test sends on gate (or ctx ends).
type gatedGen struct {
	lightfield.Generator
	gate chan struct{}

	mu    sync.Mutex
	calls map[lightfield.ViewSetID]int
}

func newGatedGen(t *testing.T) *gatedGen {
	t.Helper()
	inner, err := lightfield.NewProceduralGenerator(tinyParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return &gatedGen{
		Generator: inner,
		gate:      make(chan struct{}),
		calls:     make(map[lightfield.ViewSetID]int),
	}
}

func (g *gatedGen) GenerateViewSet(ctx context.Context, id lightfield.ViewSetID) (*lightfield.ViewSet, error) {
	g.mu.Lock()
	g.calls[id]++
	g.mu.Unlock()
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Generator.GenerateViewSet(ctx, id)
}

func (g *gatedGen) callsFor(id lightfield.ViewSetID) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls[id]
}

// overloadAgent builds a server agent over one depot with the gated
// generator and the given pending bound.
func overloadAgent(t *testing.T, gen *gatedGen, maxPending int) *ServerAgent {
	t.Helper()
	d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := ibp.NewServer(d)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	sa, err := NewServerAgent(ServerAgentConfig{
		Dataset:    "neghip",
		Gen:        gen,
		Depots:     []string{addr},
		MaxPending: maxPending,
		Obs:        obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sa.Close() })
	return sa
}

// occupy submits a request and waits until the scheduler is inside the
// generator rendering it, so further requests pile up on the pending
// stack. The returned channel yields the request's eventual error.
func occupy(t *testing.T, sa *ServerAgent, gen *gatedGen, id lightfield.ViewSetID) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := sa.Request(context.Background(), id)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for gen.callsFor(id) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never started rendering the occupying request")
		}
		time.Sleep(time.Millisecond)
	}
	return done
}

// TestMaxPendingEvictsOldest: with the generator busy and a 1-entry
// pending bound, a newer request evicts the older queued one, whose
// waiter gets a typed BUSY; the newest request still completes.
func TestMaxPendingEvictsOldest(t *testing.T) {
	gen := newGatedGen(t)
	sa := overloadAgent(t, gen, 1)

	occupied := occupy(t, sa, gen, lightfield.ViewSetID{R: 0, C: 0})

	// First queued request fills the bound...
	evictedErr := make(chan error, 1)
	go func() {
		_, err := sa.Request(context.Background(), lightfield.ViewSetID{R: 0, C: 1})
		evictedErr <- err
	}()
	waitPending(t, sa, 1)

	// ...and the next one pushes it out, latest request first.
	survivorErr := make(chan error, 1)
	go func() {
		_, err := sa.Request(context.Background(), lightfield.ViewSetID{R: 0, C: 2})
		survivorErr <- err
	}()

	select {
	case err := <-evictedErr:
		if !errors.Is(err, ibp.ErrBusy) {
			t.Fatalf("evicted waiter got %v, want ibp.ErrBusy", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evicted waiter never answered")
	}

	close(gen.gate) // let every remaining render finish
	if err := <-occupied; err != nil {
		t.Fatalf("occupying request: %v", err)
	}
	select {
	case err := <-survivorErr:
		if err != nil {
			t.Fatalf("surviving (latest) request: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("surviving request never completed")
	}
	if gen.callsFor(lightfield.ViewSetID{R: 0, C: 1}) != 0 {
		t.Fatal("evicted request was rendered anyway")
	}
	st := sa.Stats()
	if st.Evicted != 1 {
		t.Fatalf("stats.Evicted = %d, want 1", st.Evicted)
	}
}

// TestDeadlineDropSkipsRender: a queued request whose only waiter's
// deadline expires while waiting is discarded unrendered.
func TestDeadlineDropSkipsRender(t *testing.T) {
	gen := newGatedGen(t)
	sa := overloadAgent(t, gen, 0)

	occupied := occupy(t, sa, gen, lightfield.ViewSetID{R: 0, C: 0})

	stale := lightfield.ViewSetID{R: 1, C: 0}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sa.Request(ctx, stale); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stale request returned %v, want DeadlineExceeded", err)
	}

	close(gen.gate)
	if err := <-occupied; err != nil {
		t.Fatalf("occupying request: %v", err)
	}
	// Drain the scheduler: wait for the stale entry to be considered.
	deadline := time.Now().Add(5 * time.Second)
	for sa.Stats().DeadlineDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want DeadlineDrops > 0", sa.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if n := gen.callsFor(stale); n != 0 {
		t.Fatalf("stale request rendered %d times, want 0", n)
	}
}

// TestExpiredBudgetShedsImmediately: a request arriving with its context
// already done is refused with BUSY without touching the queue.
func TestExpiredBudgetShedsImmediately(t *testing.T) {
	gen := newGatedGen(t)
	close(gen.gate)
	sa := overloadAgent(t, gen, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sa.Request(ctx, lightfield.ViewSetID{R: 0, C: 0}); !errors.Is(err, ibp.ErrBusy) {
		t.Fatalf("expired request returned %v, want ibp.ErrBusy", err)
	}
}

// TestRenderBusyWireShape pins the wire form of a shed: "ERR BUSY ...",
// and that a deadline=0 token on the request line triggers it — the
// overload reply an old client still parses as a generic error.
func TestRenderBusyWireShape(t *testing.T) {
	gen := newGatedGen(t)
	close(gen.gate)
	sa := overloadAgent(t, gen, 0)
	addr, err := sa.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "RENDER neghip r0c0 deadline=0\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR BUSY ") {
		t.Fatalf("shed reply = %q, want ERR BUSY prefix", line)
	}
}

// fakeRenderServer accepts one connection, records the request line, and
// writes reply. It returns the address and a channel yielding the line.
func fakeRenderServer(t *testing.T, reply string) (string, chan string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	lines := make(chan string, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		line, err := bufio.NewReader(c).ReadString('\n')
		if err != nil {
			return
		}
		lines <- line
		fmt.Fprint(c, reply)
	}()
	return l.Addr().String(), lines
}

// TestRequestRemoteClassifiesBusy: the client half turns an ERR BUSY
// reply into the typed ibp.ErrBusy sentinel.
func TestRequestRemoteClassifiesBusy(t *testing.T) {
	addr, _ := fakeRenderServer(t, "ERR BUSY render request shed, retry later\n")
	_, err := RequestRemote(context.Background(), nil, addr, "neghip", "r0c0")
	if !errors.Is(err, ibp.ErrBusy) {
		t.Fatalf("err = %v, want ibp.ErrBusy", err)
	}
}

// TestRequestRemoteEmitsDeadlineToken: with propagation on and a caller
// deadline, the request line carries deadline= (before any trace token);
// with propagation off the line is the bare pre-overload shape.
func TestRequestRemoteEmitsDeadlineToken(t *testing.T) {
	obs.SetPropagation(true)
	defer obs.SetPropagation(false)
	addr, lines := fakeRenderServer(t, "OK 2\nhi")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	body, err := RequestRemote(ctx, nil, addr, "neghip", "r0c0")
	if err != nil || string(body) != "hi" {
		t.Fatalf("RequestRemote = %q, %v", body, err)
	}
	line := <-lines
	if !strings.HasPrefix(line, "RENDER neghip r0c0 deadline=") {
		t.Fatalf("request line = %q, want deadline token", line)
	}

	obs.SetPropagation(false)
	addr2, lines2 := fakeRenderServer(t, "OK 2\nhi")
	if _, err := RequestRemote(ctx, nil, addr2, "neghip", "r0c0"); err != nil {
		t.Fatal(err)
	}
	if line := <-lines2; line != "RENDER neghip r0c0\n" {
		t.Fatalf("pre-overload line = %q, want bare request", line)
	}
}

// waitPending spins until the agent's pending stack reaches n entries.
func waitPending(t *testing.T, sa *ServerAgent, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sa.mu.Lock()
		depth := len(sa.pending)
		sa.mu.Unlock()
		if depth >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending depth never reached %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}
