package agent

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"lonviz/internal/dvs"
	"lonviz/internal/edge"
	"lonviz/internal/exnode"
	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
	"lonviz/internal/singleflight"
)

// AccessClass classifies where a view set request was satisfied from —
// the categories of the paper's section 4.3 analysis.
type AccessClass int

const (
	// AccessHit: served from the client agent's cache (~1e-4 s in Fig 12).
	AccessHit AccessClass = iota
	// AccessLANDepot: fetched from the prestaged LAN depot (~1e-2..1e-1 s).
	AccessLANDepot
	// AccessWAN: fetched from the server depots across the WAN (~1 s).
	AccessWAN
	// AccessEdge: every extent served by the shared edge cache tier (LAN
	// cost, but a different machine than the agent — its own class so the
	// paper's access breakdown stays honest about where bytes came from).
	AccessEdge
)

// String implements fmt.Stringer.
func (c AccessClass) String() string {
	switch c {
	case AccessHit:
		return "hit"
	case AccessLANDepot:
		return "lan-depot"
	case AccessWAN:
		return "wan"
	case AccessEdge:
		return "edge"
	default:
		return fmt.Sprintf("AccessClass(%d)", int(c))
	}
}

// AccessReport describes one satisfied view set request.
type AccessReport struct {
	ID    lightfield.ViewSetID
	Class AccessClass
	// Comm is the communication latency: time until the compressed frame
	// was in the agent's hands (Figure 12's quantity).
	Comm time.Duration
	// Bytes is the compressed frame size.
	Bytes int
}

// StageOrder selects how the prestager walks the database.
type StageOrder int

const (
	// StageByProximity stages view sets nearest the cursor first, updating
	// the order as the cursor moves (the paper's policy, Figure 5).
	StageByProximity StageOrder = iota
	// StageSequential stages in row-major ID order (ablation baseline).
	StageSequential
)

// ClientAgentConfig wires a client agent to the streaming infrastructure.
type ClientAgentConfig struct {
	// Dataset and Params describe the database being browsed.
	Dataset string
	Params  lightfield.Params
	// DVS resolves view set identifiers to exNodes.
	DVS *dvs.Client
	// Dialer shapes connections to depots/DVS; nil means plain TCP. Routes
	// determine which depots look like WAN and which like LAN.
	Dialer ibp.Dialer
	// CacheBytes is the view set cache budget (compressed frames).
	CacheBytes int64
	// ExNodeCacheBytes is the exNode cache budget.
	ExNodeCacheBytes int64
	// LANDepots, when set, enables two-stage aggressive prestaging onto
	// these depots (staged extents stripe round-robin across them, like
	// the paper's four LAN depots).
	LANDepots []string
	// StageLease is the lease for staged copies (default 10m, volatile).
	StageLease time.Duration
	// StageOrderPolicy selects staging order (default proximity).
	StageOrderPolicy StageOrder
	// SuppressStageOnMiss pauses the prestager while a client-facing WAN
	// miss is being served (the mitigation discussed in section 4.3).
	SuppressStageOnMiss bool
	// RouteMissesThroughDepot implements the paper's other suggested
	// mitigation: when a view set misses both cache and staged store, the
	// agent stages it to the LAN depot first (third-party copy) and then
	// downloads from there, so the WAN transfer is never redundant — the
	// staged copy remains for future accesses. Requires LANDepots.
	RouteMissesThroughDepot bool
	// Prefetch enables quadrant prefetching on cursor movement.
	Prefetch bool
	// PrefetchAllNeighbors prefetches the full 8-neighborhood instead of
	// the quadrant prediction (ablation baseline for Figure 4's policy:
	// more coverage, ~2.7x the extraneous transfer).
	PrefetchAllNeighbors bool
	// TrajectoryPrefetch extrapolates cursor velocity on the view sphere
	// and prefetches along the predicted path instead of the static
	// quadrant (which remains the fallback while the cursor is still and
	// the ablation baseline when this is off). Requires Prefetch.
	TrajectoryPrefetch bool
	// TrajectoryLookahead is how many velocity steps ahead the predictor
	// extrapolates (default 3).
	TrajectoryLookahead int
	// EdgeAddr, when set, routes misses through the shared edge cache tier
	// at this host:port (an lfedged instance): resolved exNodes gain a
	// preferred edge replica whose composite capability lets the edge fill
	// from the origin depot, so the first tenant's miss warms every later
	// tenant's access down to LAN cost. Origin replicas remain for
	// failover when the edge is down or sheds.
	EdgeAddr string
	// Parallelism bounds concurrent depot streams per download (default 4).
	Parallelism int
	// PipelineWindow caps in-flight requests per pipelined depot
	// connection. The agent keeps one persistent multiplexed connection
	// per depot (serial fallback for depots that don't speak PIPELINE),
	// so every stripe of a view set rides one already-open socket. 0
	// means ibp.DefaultPipelineWindow; negative forces the serial
	// one-connection-per-operation path (ablation baseline).
	PipelineWindow int
	// StageParallelism is the number of concurrent staging transfers
	// (default 4) — the aggressiveness of the prestager, which "exploits
	// every bit of available network bandwidth" while the network is
	// otherwise vacant.
	StageParallelism int
	// Health is the depot circuit breaker shared by the fetch, prefetch,
	// and prestage paths, so none of them keeps hammering a dead or
	// flapping depot during its cooldown. Nil gets a default tracker;
	// callers inject their own to share it across agents or to tune the
	// threshold and cooldown.
	Health *lors.HealthTracker
	// Budget is the retry budget shared by every download this agent
	// performs (and, when injected, across agents): it caps cluster-wide
	// retry amplification during brownouts the way Health removes
	// individually dead depots. Nil gets a default budget.
	Budget *lors.RetryBudget
	// Retries is how many replica-list passes each extent download makes
	// (default 2 so a transient fault gets one backed-off second chance).
	Retries int
	// FetchTimeout bounds one coalesced view-set fetch flight (default
	// 1m). Flights run detached from any single caller's context — one
	// impatient client must not kill the fetch other clients share — so
	// this, not the caller's deadline, is what stops a wedged flight.
	FetchTimeout time.Duration
	// Obs receives the agent.* metric families (fetch latency per access
	// class, cache hits/misses, prefetch and staging counters) and is
	// threaded through to the lors transfer layer; nil records into
	// obs.Default().
	Obs *obs.Registry
	// Tracer records one span tree per GetViewSet (agent.getviewset with
	// resolve/download/stage children); nil records into
	// obs.DefaultTracer(), visible at /debug/traces.
	Tracer *obs.Tracer
	// ReplicaBias, when set, scores depots for replica ordering in
	// downloads (lower is better); lors stable-sorts each extent's
	// shuffled replicas by it. Wire obs.DepotLatencyBias (or
	// slo.Stack.ReplicaBias) here so the agent drifts away from depots
	// whose recent p99 round-trip has regressed. Nil keeps pure shuffle.
	ReplicaBias func(depot string) float64
	// Rand seeds replica choices; nil uses a time-seeded source.
	//
	// Thread-safety: *rand.Rand is not safe for concurrent use, and the
	// agent's download workers and prestage goroutines run concurrently.
	// That is fine here because this value is only ever handed to
	// lors.DownloadOptions.Rand, and lors serializes every use of it under
	// a package-level mutex. Do not read from this Rand anywhere else in
	// the agent without adding equivalent locking.
	Rand *rand.Rand
}

// ClientAgentStats aggregates per-class access counts, including those
// made on behalf of prefetching.
type ClientAgentStats struct {
	Hits, LANFetches, WANFetches int64
	// EdgeFetches counts misses served entirely by the edge cache tier
	// (no WAN crossing by this agent; the edge may have filled once).
	EdgeFetches int64
	Prefetches  int64
	Staged      int64
	StageErrors int64
	// ReplicaTries/FailedAttempts/ChecksumErrors aggregate the transfer
	// accounting of every lors download the agent performed, so failovers
	// and detected corruption are visible at the agent level.
	ReplicaTries   int64
	FailedAttempts int64
	ChecksumErrors int64
	// Coalesced counts view-set requests that piggybacked on an identical
	// in-flight fetch instead of starting their own transfer.
	Coalesced int64
	// BusyRejections/BudgetExhausted surface the overload-control
	// accounting of the agent's downloads (depot BUSY sheds and retry
	// passes refused by the budget).
	BusyRejections  int64
	BudgetExhausted int64
}

// ClientAgent is the broker between clients and the LoN fabric: it caches
// view sets and exNodes, prefetches the quadrant neighborhood on cursor
// movement, and (when a LAN depot is configured) aggressively prestages
// the whole database by third-party copy in cursor-proximity order.
type ClientAgent struct {
	cfg    ClientAgentConfig
	cache  *LRU // id.String() -> compressed frame
	excach *LRU // id.String() -> exNode XML

	mu      sync.Mutex
	cursor  geom.Spherical
	haveCur bool
	staged  map[lightfield.ViewSetID]*exnode.ExNode
	staging map[lightfield.ViewSetID]bool // claimed by a staging worker
	wanBusy int                           // outstanding client-facing WAN fetches
	stats   ClientAgentStats
	// flights coalesces concurrent identical view-set fetches: N clients
	// browsing to the same view set cost one depot fetch. Flights detach
	// from individual callers' cancellation (see singleflight).
	flights singleflight.Group[lightfield.ViewSetID, fetchResult]
	// streams is the streaming counterpart of flights: one entry per
	// in-flight GetViewSetStream download, which later identical streaming
	// requests attach to with their own readers instead of starting a
	// duplicate transfer. Guarded by mu.
	streams map[lightfield.ViewSetID]*streamFlight
	// prefetched marks frames a prefetch loaded into the cache but no user
	// request has consumed yet; a later hit on one counts as prefetch-useful
	// (and clears the mark, so each prefetch is credited at most once).
	// Marks are also cleared when the frame is evicted before any hit —
	// otherwise entries for evicted-unconsumed frames leak forever and
	// inflate the usefulness metric's future numerator.
	prefetched map[string]bool
	// predictor extrapolates cursor motion for trajectory prefetch (nil
	// unless TrajectoryPrefetch).
	predictor *lightfield.TrajectoryPredictor

	// pipes holds one persistent pipelined connection per depot (and per
	// edge server, which speaks the same PIPELINE protocol), shared by
	// every download this agent performs.
	pipes *ibp.PipePool

	stageWake chan struct{}
	stopOnce  sync.Once
	stopCh    chan struct{}
	stageDone chan struct{}
}

// NewClientAgent validates the configuration and builds the agent. Call
// StartPrestaging to launch the aggressive staging stage.
func NewClientAgent(cfg ClientAgentConfig) (*ClientAgent, error) {
	if cfg.Dataset == "" {
		return nil, errors.New("agent: client agent needs a dataset name")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.DVS == nil {
		return nil, errors.New("agent: client agent needs a DVS client")
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.ExNodeCacheBytes <= 0 {
		cfg.ExNodeCacheBytes = 8 << 20
	}
	if cfg.StageLease == 0 {
		cfg.StageLease = 10 * time.Minute
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4
	}
	if cfg.StageParallelism <= 0 {
		cfg.StageParallelism = 4
	}
	if cfg.Health == nil {
		cfg.Health = lors.NewHealthTracker(lors.HealthConfig{})
	}
	if cfg.Budget == nil {
		cfg.Budget = lors.NewRetryBudget(0, 0)
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = time.Minute
	}
	cache, err := NewLRU(cfg.CacheBytes)
	if err != nil {
		return nil, err
	}
	excach, err := NewLRU(cfg.ExNodeCacheBytes)
	if err != nil {
		return nil, err
	}
	ca := &ClientAgent{
		cfg:        cfg,
		cache:      cache,
		excach:     excach,
		staged:     make(map[lightfield.ViewSetID]*exnode.ExNode),
		staging:    make(map[lightfield.ViewSetID]bool),
		prefetched: make(map[string]bool),
		streams:    make(map[lightfield.ViewSetID]*streamFlight),
		pipes: &ibp.PipePool{
			Dialer: cfg.Dialer,
			Window: cfg.PipelineWindow,
			Obs:    cfg.Obs,
		},
		stageWake: make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
	}
	if cfg.TrajectoryPrefetch {
		ca.predictor = lightfield.NewTrajectoryPredictor(cfg.Params, cfg.TrajectoryLookahead)
	}
	// A frame evicted before any hit consumed it must drop its prefetch
	// mark, or the map entry leaks and a much later re-fetch+hit would be
	// credited to a prefetch that no longer exists.
	cache.SetOnEvict(func(key string) {
		ca.mu.Lock()
		delete(ca.prefetched, key)
		ca.mu.Unlock()
	})
	return ca, nil
}

// registry resolves the metrics destination.
func (ca *ClientAgent) registry() *obs.Registry {
	if ca.cfg.Obs != nil {
		return ca.cfg.Obs
	}
	return obs.Default()
}

// tracer resolves the span destination.
func (ca *ClientAgent) tracer() *obs.Tracer {
	if ca.cfg.Tracer != nil {
		return ca.cfg.Tracer
	}
	return obs.DefaultTracer()
}

// RegisterMetrics bridges this agent's per-instance counters into reg
// (scraped as agent.* at /metrics), including the cache hit rate. Daemons
// call it once after constructing the agent; passing nil bridges into
// obs.Default().
func (ca *ClientAgent) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	reg.RegisterSnapshot("agent", func() map[string]float64 {
		st := ca.Stats()
		cs := ca.CacheStats()
		hitRate := 0.0
		if total := cs.Hits + cs.Misses; total > 0 {
			hitRate = float64(cs.Hits) / float64(total)
		}
		return map[string]float64{
			"hits":             float64(st.Hits),
			"lan_fetches":      float64(st.LANFetches),
			"wan_fetches":      float64(st.WANFetches),
			"edge_fetches":     float64(st.EdgeFetches),
			"prefetches":       float64(st.Prefetches),
			"staged":           float64(st.Staged),
			"stage_errors":     float64(st.StageErrors),
			"replica_tries":    float64(st.ReplicaTries),
			"failed_attempts":  float64(st.FailedAttempts),
			"checksum_errors":  float64(st.ChecksumErrors),
			"busy_rejections":  float64(st.BusyRejections),
			"budget_exhausted": float64(st.BudgetExhausted),
			"cache.hit_rate":   hitRate,
			"cache.used":       float64(cs.Used),
			"cache.entries":    float64(cs.Entries),
			"cache.evictions":  float64(cs.Evictions),
			"staged_count":     float64(ca.StagedCount()),
		}
	})
}

// Close stops background work and tears down pipelined depot connections.
func (ca *ClientAgent) Close() {
	ca.stopOnce.Do(func() {
		close(ca.stopCh)
		ca.pipes.Close()
	})
}

// Stats returns a snapshot of agent counters.
func (ca *ClientAgent) Stats() ClientAgentStats {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.stats
}

// CacheStats exposes the view set cache accounting.
func (ca *ClientAgent) CacheStats() CacheStats { return ca.cache.Stats() }

// Health exposes the agent's depot circuit breaker (never nil after
// NewClientAgent).
func (ca *ClientAgent) Health() *lors.HealthTracker { return ca.cfg.Health }

// addTransferStats folds one download's accounting into the agent stats.
func (ca *ClientAgent) addTransferStats(st lors.DownloadStats) {
	ca.mu.Lock()
	ca.stats.ReplicaTries += int64(st.ReplicaTries)
	ca.stats.FailedAttempts += int64(st.FailedAttempts)
	ca.stats.ChecksumErrors += int64(st.ChecksumErrors)
	ca.stats.BusyRejections += int64(st.BusyRejections)
	ca.stats.BudgetExhausted += int64(st.BudgetExhausted)
	ca.mu.Unlock()
}

// copyOpts builds the staging options for this agent.
func (ca *ClientAgent) copyOpts() lors.CopyOptions {
	return lors.CopyOptions{
		Lease:  ca.cfg.StageLease,
		Policy: ibp.Volatile,
		Dialer: ca.cfg.Dialer,
		Health: ca.cfg.Health,
		Obs:    ca.cfg.Obs,
	}
}

// stage runs one third-party staging copy under its own span.
func (ca *ClientAgent) stage(ctx context.Context, ex *exnode.ExNode) (*exnode.ExNode, error) {
	_, span := ca.tracer().StartSpan(ctx, obs.SpanStage)
	defer span.Finish()
	staged, err := lors.CopyToStriped(ctx, ex, ca.cfg.LANDepots, ca.copyOpts())
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	return staged, err
}

// download runs one lors download under its own span.
func (ca *ClientAgent) download(ctx context.Context, ex *exnode.ExNode, dl lors.DownloadOptions) ([]byte, lors.DownloadStats, error) {
	_, span := ca.tracer().StartSpan(ctx, obs.SpanDownload)
	defer span.Finish()
	frame, st, err := lors.Download(ctx, ex, dl)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	return frame, st, err
}

// resolveExNodes returns the exNode replicas for a view set, consulting
// the exNode cache before the DVS.
func (ca *ClientAgent) resolveExNodes(ctx context.Context, id lightfield.ViewSetID) ([]*exnode.ExNode, error) {
	ctx, span := ca.tracer().StartSpan(ctx, obs.SpanResolve)
	defer span.Finish()
	key := id.String()
	if xml, ok := ca.excach.Get(key); ok {
		ex, err := exnode.Unmarshal(xml)
		if err == nil {
			return []*exnode.ExNode{ex}, nil
		}
		ca.excach.Remove(key) // cached garbage: drop and refetch
	}
	docs, err := ca.cfg.DVS.Get(ctx, dvs.Key{Dataset: ca.cfg.Dataset, ViewSet: key})
	if err != nil {
		return nil, err
	}
	out := make([]*exnode.ExNode, 0, len(docs))
	for _, doc := range docs {
		ex, err := exnode.Unmarshal(doc)
		if err != nil {
			continue
		}
		out = append(out, ex)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("agent: no valid exNodes for %v", id)
	}
	_ = ca.excach.Put(key, mustMarshal(out[0]))
	return out, nil
}

func mustMarshal(ex *exnode.ExNode) []byte {
	data, err := ex.Marshal()
	if err != nil {
		return nil
	}
	return data
}

// GetViewSet returns the compressed frame of a view set, serving from the
// cache, the LAN depot (if prestaged), or the WAN, in that order.
func (ca *ClientAgent) GetViewSet(ctx context.Context, id lightfield.ViewSetID) ([]byte, AccessReport, error) {
	return ca.getViewSet(ctx, id, false)
}

// getViewSet is GetViewSet plus provenance: viaPrefetch marks requests the
// prefetcher issues on its own, so their loads can be credited when a user
// request later hits them.
func (ca *ClientAgent) getViewSet(ctx context.Context, id lightfield.ViewSetID, viaPrefetch bool) (frame []byte, rep AccessReport, err error) {
	if !ca.cfg.Params.ValidID(id) {
		return nil, AccessReport{}, fmt.Errorf("agent: view set %v outside database", id)
	}
	start := time.Now()
	rep = AccessReport{ID: id}
	reg := ca.registry()
	ctx, span := ca.tracer().StartSpan(ctx, obs.SpanGetViewSet)
	span.SetAttr("id", id.String())
	defer func() {
		if err == nil {
			span.SetAttr("class", rep.Class.String())
			reg.Histogram(obs.Label(obs.MAgentFetchMs, "class", rep.Class.String()), obs.LatencyBucketsMs...).
				Observe(float64(rep.Comm) / 1e6)
			obs.DefaultLogger().Debug(ctx, obs.EvAgentFetch,
				"viewset", id.String(), "class", rep.Class.String(),
				"ms", strconv.FormatInt(rep.Comm.Milliseconds(), 10))
		} else {
			span.SetAttr("error", err.Error())
		}
		span.Finish()
	}()

	if frame, ok := ca.cache.Get(id.String()); ok {
		ca.recordHit(reg, id, viaPrefetch)
		rep.Class = AccessHit
		rep.Comm = time.Since(start)
		rep.Bytes = len(frame)
		return frame, rep, nil
	}

	// Coalesce duplicate concurrent fetches (N clients browsing to the
	// same view set, or a prefetch racing a user request) into one
	// transfer. The flight runs detached from any single caller's
	// context — bounded by FetchTimeout instead — so one canceller never
	// kills the fetch everyone else is waiting on; a caller whose own ctx
	// expires stops waiting with its ctx.Err() and the flight carries on.
	res, shared, err := ca.flights.Do(ctx, id, func(fctx context.Context) (fetchResult, error) {
		// Re-check under the flight: a just-finished fetch may have landed
		// the frame between our cache miss and winning flight leadership.
		if frame, ok := ca.cache.Get(id.String()); ok {
			ca.recordHit(reg, id, viaPrefetch)
			return fetchResult{frame: frame, class: AccessHit}, nil
		}
		fctx, cancel := context.WithTimeout(fctx, ca.cfg.FetchTimeout)
		defer cancel()
		reg.Counter(obs.MAgentMisses).Inc()
		frame, class, err := ca.fetch(fctx, id)
		if err == nil && viaPrefetch {
			ca.mu.Lock()
			ca.prefetched[id.String()] = true
			ca.mu.Unlock()
		}
		return fetchResult{frame: frame, class: class}, err
	})
	if err != nil {
		return nil, rep, err
	}
	if shared {
		// Piggybacked on another caller's transfer: this request paid no
		// depot work, so it counts as a hit in the paper's access-class
		// accounting, plus the coalesce counter overload dashboards watch.
		reg.Counter(obs.MAgentCoalesced).Inc()
		ca.mu.Lock()
		ca.stats.Coalesced++
		ca.mu.Unlock()
		ca.recordHit(reg, id, viaPrefetch)
		rep.Class = AccessHit
	} else {
		rep.Class = res.class
	}
	rep.Comm = time.Since(start)
	rep.Bytes = len(res.frame)
	return res.frame, rep, nil
}

// fetchResult is one coalesced flight's outcome.
type fetchResult struct {
	frame []byte
	class AccessClass
}

// recordHit folds one cache-served (or coalesced) access into the hit
// accounting, crediting the prefetcher when a user request consumes a
// frame a prefetch loaded.
func (ca *ClientAgent) recordHit(reg *obs.Registry, id lightfield.ViewSetID, viaPrefetch bool) {
	reg.Counter(obs.MAgentHits).Inc()
	ca.mu.Lock()
	ca.stats.Hits++
	if !viaPrefetch && ca.prefetched[id.String()] {
		delete(ca.prefetched, id.String())
		reg.Counter(obs.MAgentPrefetchUseful).Inc()
	}
	ca.mu.Unlock()
}

// downloadOpts builds the transfer options every agent download shares,
// including the persistent pipelined connection pool.
func (ca *ClientAgent) downloadOpts() lors.DownloadOptions {
	return lors.DownloadOptions{
		Dialer:      ca.cfg.Dialer,
		Parallelism: ca.cfg.Parallelism,
		Retries:     ca.cfg.Retries,
		Health:      ca.cfg.Health,
		Budget:      ca.cfg.Budget,
		Rand:        ca.cfg.Rand,
		Prefer:      ca.replicaPrefer(),
		Pipes:       ca.pipes,
		Obs:         ca.cfg.Obs,
		Tracer:      ca.cfg.Tracer,
	}
}

// fetch performs the actual transfer: LAN depot first, then WAN.
func (ca *ClientAgent) fetch(ctx context.Context, id lightfield.ViewSetID) ([]byte, AccessClass, error) {
	ca.mu.Lock()
	stagedEx := ca.staged[id]
	ca.mu.Unlock()
	dl := ca.downloadOpts()
	if stagedEx != nil {
		// CPU attribution: profiles slice agent downloads by access class
		// ({class=agent_fetch, verb=lan-depot|wan|edge}), mirroring the
		// paper's three-tier access taxonomy. The closure form is fine
		// here — a download allocates orders of magnitude more than the
		// wrapper.
		var frame []byte
		var st lors.DownloadStats
		var err error
		prof.Do(ctx, func(lctx context.Context) {
			frame, st, err = ca.download(lctx, stagedEx, dl)
		}, prof.KeyClass, "agent_fetch", prof.KeyVerb, "lan-depot")
		ca.addTransferStats(st)
		if err == nil {
			_ = ca.cache.Put(id.String(), frame)
			ca.mu.Lock()
			ca.stats.LANFetches++
			ca.mu.Unlock()
			return frame, AccessLANDepot, nil
		}
		// Staged copy gone (lease expiry/revocation): forget and fall
		// through to the WAN path.
		ca.mu.Lock()
		delete(ca.staged, id)
		ca.mu.Unlock()
	}

	ca.mu.Lock()
	ca.wanBusy++
	ca.mu.Unlock()
	defer func() {
		ca.mu.Lock()
		ca.wanBusy--
		ca.mu.Unlock()
	}()
	exs, err := ca.resolveExNodes(ctx, id)
	if err != nil {
		return nil, AccessWAN, err
	}

	if ca.cfg.RouteMissesThroughDepot && len(ca.cfg.LANDepots) > 0 {
		// Stage first, then read locally: the WAN crossing becomes a
		// third-party copy whose result stays cached on the depot.
		var staged *exnode.ExNode
		var err error
		prof.Do(ctx, func(lctx context.Context) {
			staged, err = ca.stage(lctx, exs[0])
		}, prof.KeyClass, "agent_fetch", prof.KeyVerb, "wan")
		if err == nil {
			var frame []byte
			var st lors.DownloadStats
			prof.Do(ctx, func(lctx context.Context) {
				frame, st, err = ca.download(lctx, staged, dl)
			}, prof.KeyClass, "agent_fetch", prof.KeyVerb, "wan")
			ca.addTransferStats(st)
			if err == nil {
				ca.registry().Counter(obs.MAgentStaged).Inc()
				ca.mu.Lock()
				ca.staged[id] = staged
				ca.stats.Staged++
				ca.stats.WANFetches++ // the copy crossed the WAN on our behalf
				ca.mu.Unlock()
				_ = ca.cache.Put(id.String(), frame)
				return frame, AccessWAN, nil
			}
		}
		// Routing failed; fall back to the direct path below.
	}

	var lastErr error
	for _, ex := range exs {
		verb := "wan"
		if ca.cfg.EdgeAddr != "" {
			ex = edge.RewriteExNode(ex, ca.cfg.EdgeAddr, id.String())
			verb = "edge"
		}
		var frame []byte
		var st lors.DownloadStats
		var err error
		prof.Do(ctx, func(lctx context.Context) {
			frame, st, err = ca.download(lctx, ex, dl)
		}, prof.KeyClass, "agent_fetch", prof.KeyVerb, verb)
		ca.addTransferStats(st)
		if err != nil {
			lastErr = err
			continue
		}
		_ = ca.cache.Put(id.String(), frame)
		// Classify by who actually served the bytes: only a download whose
		// every extent came off the edge tier avoided the WAN from this
		// agent's seat; any origin-replica failover keeps the wan class.
		class := AccessWAN
		if ea := ca.cfg.EdgeAddr; ea != "" && st.ExtentFetches > 0 &&
			st.ServedBy[ea] == st.ExtentFetches {
			class = AccessEdge
		}
		ca.mu.Lock()
		if class == AccessEdge {
			ca.stats.EdgeFetches++
		} else {
			ca.stats.WANFetches++
		}
		ca.mu.Unlock()
		return frame, class, nil
	}
	return nil, AccessWAN, fmt.Errorf("agent: all exNode replicas failed for %v: %w", id, lastErr)
}

// replicaPrefer composes the replica-ordering bias: the edge tier (when
// configured) always sorts first, the configured ReplicaBias breaks ties
// among everything else.
func (ca *ClientAgent) replicaPrefer() func(depot string) float64 {
	bias := ca.cfg.ReplicaBias
	eaddr := ca.cfg.EdgeAddr
	if eaddr == "" {
		return bias
	}
	return func(depot string) float64 {
		if depot == eaddr {
			return math.Inf(-1)
		}
		if bias != nil {
			return bias(depot)
		}
		return 0
	}
}

// OnUserMove tells the agent where the cursor is. It reorders the staging
// queue and (if enabled) launches quadrant prefetches. Prefetch transfers
// run asynchronously; errors are counted, not surfaced.
func (ca *ClientAgent) OnUserMove(sp geom.Spherical) {
	ca.mu.Lock()
	ca.cursor = sp
	ca.haveCur = true
	ca.mu.Unlock()
	select {
	case ca.stageWake <- struct{}{}:
	default:
	}
	if !ca.cfg.Prefetch {
		return
	}
	targets := ca.cfg.Params.QuadrantPrefetch(sp)
	if ca.cfg.PrefetchAllNeighbors {
		i, j := ca.cfg.Params.NearestCamera(sp)
		targets = ca.cfg.Params.Neighbors(ca.cfg.Params.ViewSetOf(i, j))
	}
	if ca.predictor != nil {
		// Trajectory prediction replaces the static quadrant while the
		// cursor is moving; a still cursor (no velocity yet, or stopped)
		// keeps the quadrant targets so coverage never drops to zero.
		if predicted := ca.predictor.Advance(sp); len(predicted) > 0 {
			targets = predicted
		}
	}
	for _, id := range targets {
		if ca.cache.Contains(id.String()) {
			continue
		}
		if ca.flights.Pending(id) || ca.streamPending(id) {
			continue
		}
		ca.registry().Counter(obs.MAgentPrefetches).Inc()
		ca.mu.Lock()
		ca.stats.Prefetches++
		ca.mu.Unlock()
		go func(id lightfield.ViewSetID) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_, _, _ = ca.getViewSet(ctx, id, true)
		}(id)
	}
}

// StartPrestaging launches the aggressive staging stage (paper Figure 5):
// a background loop that third-party-copies every view set onto the LAN
// depot, ordered by proximity to the cursor and reordered as it moves,
// until the whole database is local. The returned channel closes when
// staging completes or ctx/Close stops it.
func (ca *ClientAgent) StartPrestaging(ctx context.Context) (<-chan struct{}, error) {
	if len(ca.cfg.LANDepots) == 0 {
		return nil, errors.New("agent: prestaging needs at least one LAN depot")
	}
	ca.mu.Lock()
	if ca.stageDone != nil {
		done := ca.stageDone
		ca.mu.Unlock()
		return done, nil // already running
	}
	done := make(chan struct{})
	ca.stageDone = done
	ca.mu.Unlock()
	go func() {
		defer close(done)
		ca.prestageLoop(ctx)
	}()
	return done, nil
}

// nextToStage picks the unstaged view set to copy next under the
// configured order policy. claim=true atomically marks it as in-progress
// so concurrent staging workers never duplicate a transfer.
func (ca *ClientAgent) nextToStage(claim bool) (lightfield.ViewSetID, bool) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	cursor := ca.cursor
	if !ca.haveCur {
		cursor = ca.cfg.Params.SetCenterAngles(lightfield.ViewSetID{})
	}
	best := lightfield.ViewSetID{}
	bestDist := math.Inf(1)
	found := false
	for _, id := range ca.cfg.Params.AllViewSets() {
		if _, ok := ca.staged[id]; ok {
			continue
		}
		if ca.staging[id] {
			continue
		}
		if ca.cfg.StageOrderPolicy == StageSequential {
			best, found = id, true // AllViewSets is row-major
			break
		}
		d := ca.cfg.Params.AngularDistToSet(cursor, id)
		if d < bestDist {
			bestDist = d
			best = id
			found = true
		}
	}
	if found && claim {
		ca.staging[best] = true
	}
	return best, found
}

// prestageLoop runs StageParallelism concurrent staging workers until the
// database is localized or the agent stops.
func (ca *ClientAgent) prestageLoop(ctx context.Context) {
	var wg sync.WaitGroup
	for w := 0; w < ca.cfg.StageParallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ca.stageWorker(ctx)
		}()
	}
	wg.Wait()
}

func (ca *ClientAgent) stageWorker(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ca.stopCh:
			return
		default:
		}
		if ca.cfg.SuppressStageOnMiss {
			ca.mu.Lock()
			busy := ca.wanBusy > 0
			ca.mu.Unlock()
			if busy {
				select {
				case <-time.After(time.Millisecond):
				case <-ctx.Done():
					return
				case <-ca.stopCh:
					return
				}
				continue
			}
		}
		id, ok := ca.nextToStage(true)
		if !ok {
			return // entire dataset localized or claimed
		}
		err := ca.stageOne(ctx, id)
		ca.mu.Lock()
		delete(ca.staging, id)
		if err != nil {
			ca.registry().Counter(obs.MAgentStageErrors).Inc()
			ca.stats.StageErrors++
			// Record a tombstone so the loop terminates; the fetch path
			// ignores nil entries.
			ca.staged[id] = nil
		}
		ca.mu.Unlock()
	}
}

// stageOne copies one view set to the LAN depot via third-party copy.
func (ca *ClientAgent) stageOne(ctx context.Context, id lightfield.ViewSetID) error {
	exs, err := ca.resolveExNodes(ctx, id)
	if err != nil {
		return err
	}
	staged, err := ca.stage(ctx, exs[0])
	if err != nil {
		return err
	}
	ca.registry().Counter(obs.MAgentStaged).Inc()
	ca.mu.Lock()
	ca.staged[id] = staged
	ca.stats.Staged++
	ca.mu.Unlock()
	return nil
}

// StagedCount reports how many view sets are currently staged on the LAN
// depot (successful copies only).
func (ca *ClientAgent) StagedCount() int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	n := 0
	for _, ex := range ca.staged {
		if ex != nil {
			n++
		}
	}
	return n
}

// IsStaged reports whether a specific view set has been staged.
func (ca *ClientAgent) IsStaged(id lightfield.ViewSetID) bool {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.staged[id] != nil
}

// DropCached removes a view set frame from the agent cache. It exists for
// benchmarks and tests that need to force a specific access class.
func (ca *ClientAgent) DropCached(id lightfield.ViewSetID) {
	ca.cache.Remove(id.String())
}

// DropStaged forgets the staged copy of a view set, forcing the next miss
// to the WAN. Benchmark/test hook.
func (ca *ClientAgent) DropStaged(id lightfield.ViewSetID) {
	ca.mu.Lock()
	delete(ca.staged, id)
	ca.mu.Unlock()
}
