package agent

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"lonviz/internal/edge"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/obs"
)

// ViewSetStream is one view set fetch exposed as a stream: Reader yields
// the compressed frame in order as each extent's checksum is verified,
// while later extents are still in flight. The viewer feeds it straight
// into codec inflation, overlapping decompression with communication
// instead of serializing them behind the last stripe.
type ViewSetStream struct {
	// Reader yields the compressed frame bytes in order; reads block
	// until verified bytes are available and return io.EOF at the end.
	Reader io.Reader

	done chan struct{}
	rep  AccessReport
	err  error
}

// Report blocks until the underlying transfer finishes and returns its
// access report. After a successful decode from Reader it returns
// immediately — inflation cannot outrun the last verified byte.
func (s *ViewSetStream) Report() (AccessReport, error) {
	<-s.done
	return s.rep, s.err
}

// ViewSetStreamer is implemented by sources that can hand out view set
// bytes before the whole transfer completes. The Viewer type-asserts its
// source against this to enable the decompress-while-downloading path.
type ViewSetStreamer interface {
	GetViewSetStream(ctx context.Context, id lightfield.ViewSetID) (*ViewSetStream, error)
}

// immediateStream wraps an already-complete frame (cache hits, coalesced
// fetches) in the stream interface.
func immediateStream(frame []byte, rep AccessReport) *ViewSetStream {
	s := &ViewSetStream{Reader: bytes.NewReader(frame), done: make(chan struct{}), rep: rep}
	close(s.done)
	return s
}

// GetViewSetStream is GetViewSet with incremental delivery: the returned
// stream's Reader serves the compressed frame as extents verify. Cache
// hits and requests that can piggyback on an in-flight coalesced fetch
// return a complete frame immediately; misses start a download whose
// destination buffer the stream shares (the frame crosses process memory
// once: socket → frame buffer → inflater).
func (ca *ClientAgent) GetViewSetStream(ctx context.Context, id lightfield.ViewSetID) (*ViewSetStream, error) {
	if !ca.cfg.Params.ValidID(id) {
		return nil, fmt.Errorf("agent: view set %v outside database", id)
	}
	start := time.Now()
	reg := ca.registry()
	if frame, ok := ca.cache.Get(id.String()); ok {
		ca.recordHit(reg, id, false)
		return immediateStream(frame, AccessReport{
			ID: id, Class: AccessHit, Comm: time.Since(start), Bytes: len(frame),
		}), nil
	}
	// An identical buffered fetch is already in flight (piggyback on it),
	// or the config routes misses through a staging copy (a two-step
	// transfer with no streamable single download): the buffered path
	// handles both.
	if ca.flights.Pending(id) || ca.cfg.RouteMissesThroughDepot {
		frame, rep, err := ca.GetViewSet(ctx, id)
		if err != nil {
			return nil, err
		}
		return immediateStream(frame, rep), nil
	}

	// Coalesce onto an identical in-flight streaming fetch, or claim
	// leadership of a new one. N viewers browsing to the same view set
	// cost one depot transfer on this path too — the overload story
	// depends on streaming moves coalescing exactly like buffered ones.
	ca.mu.Lock()
	if fl := ca.streams[id]; fl != nil {
		ca.mu.Unlock()
		return ca.attachStream(ctx, reg, id, fl, start)
	}
	fl := &streamFlight{ready: make(chan struct{}), done: make(chan struct{})}
	ca.streams[id] = fl
	ca.mu.Unlock()

	reg.Counter(obs.MAgentMisses).Inc()
	ca.mu.Lock()
	ex := ca.staged[id]
	ca.mu.Unlock()
	staged := ex != nil
	if !staged {
		exs, err := ca.resolveExNodes(ctx, id)
		if err != nil {
			ca.abortStream(id, fl, err)
			return nil, err
		}
		ex = exs[0]
		if ca.cfg.EdgeAddr != "" {
			ex = edge.RewriteExNode(ex, ca.cfg.EdgeAddr, id.String())
		}
	}

	buf := make([]byte, ex.Length)
	sb := lors.NewStreamBuffer(buf)
	fl.sb = sb
	fl.bytes = len(buf)
	close(fl.ready)
	dl := ca.downloadOpts()
	dl.OnPrefix = sb.Advance
	s := &ViewSetStream{Reader: sb.Reader(), done: make(chan struct{})}
	// The flight is shared, so it detaches from the leader's cancellation
	// (FetchTimeout bounds it instead): one impatient caller must not kill
	// the download its followers are reading.
	fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), ca.cfg.FetchTimeout)
	go func() {
		defer func() {
			ca.mu.Lock()
			delete(ca.streams, id)
			ca.mu.Unlock()
			close(fl.done)
		}()
		defer close(s.done)
		defer cancel()
		if !staged {
			ca.mu.Lock()
			ca.wanBusy++
			ca.mu.Unlock()
			defer func() {
				ca.mu.Lock()
				ca.wanBusy--
				ca.mu.Unlock()
			}()
		}
		st, err := lors.DownloadInto(fctx, ex, buf, dl)
		ca.addTransferStats(st)
		if err != nil {
			if staged {
				// Staged copy gone (lease expiry/revocation): forget it so
				// the next access resolves fresh instead of failing again.
				ca.mu.Lock()
				delete(ca.staged, id)
				ca.mu.Unlock()
			}
			s.err = err
			fl.err = err
			sb.Fail(err)
			return
		}
		class := AccessWAN
		if staged {
			class = AccessLANDepot
		} else if ea := ca.cfg.EdgeAddr; ea != "" && st.ExtentFetches > 0 &&
			st.ServedBy[ea] == st.ExtentFetches {
			class = AccessEdge
		}
		_ = ca.cache.Put(id.String(), buf)
		ca.mu.Lock()
		switch class {
		case AccessLANDepot:
			ca.stats.LANFetches++
		case AccessEdge:
			ca.stats.EdgeFetches++
		default:
			ca.stats.WANFetches++
		}
		ca.mu.Unlock()
		comm := time.Since(start)
		s.rep = AccessReport{ID: id, Class: class, Comm: comm, Bytes: len(buf)}
		reg.Histogram(obs.Label(obs.MAgentFetchMs, "class", class.String()), obs.LatencyBucketsMs...).
			Observe(float64(comm) / 1e6)
	}()
	return s, nil
}

// streamFlight is one in-flight streaming fetch that later identical
// requests attach to: the leader downloads into the shared buffer while
// every follower reads the same bytes through its own cursor.
type streamFlight struct {
	ready chan struct{}      // closed once sb exists (or setup failed)
	sb    *lors.StreamBuffer // nil after ready means setup failed
	bytes int
	done  chan struct{} // closed after err is final
	err   error
}

// streamPending reports whether a streaming fetch of id is in flight.
func (ca *ClientAgent) streamPending(id lightfield.ViewSetID) bool {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.streams[id] != nil
}

// abortStream fails a stream flight that never produced a buffer
// (exNode resolution failed), releasing any followers blocked on ready.
func (ca *ClientAgent) abortStream(id lightfield.ViewSetID, fl *streamFlight, err error) {
	fl.err = err
	ca.mu.Lock()
	delete(ca.streams, id)
	ca.mu.Unlock()
	close(fl.ready)
	close(fl.done)
}

// attachStream coalesces a streaming request onto an identical in-flight
// fetch. The follower pays no depot work, so on success it gets the same
// accounting as a buffered coalesced flight: a hit, plus the coalesce
// counters overload dashboards watch.
func (ca *ClientAgent) attachStream(ctx context.Context, reg *obs.Registry, id lightfield.ViewSetID, fl *streamFlight, start time.Time) (*ViewSetStream, error) {
	select {
	case <-fl.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if fl.sb == nil {
		return nil, fl.err
	}
	s := &ViewSetStream{Reader: fl.sb.Reader(), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		<-fl.done
		if fl.err != nil {
			s.err = fl.err
			return
		}
		reg.Counter(obs.MAgentCoalesced).Inc()
		ca.mu.Lock()
		ca.stats.Coalesced++
		ca.mu.Unlock()
		ca.recordHit(reg, id, false)
		s.rep = AccessReport{ID: id, Class: AccessHit, Comm: time.Since(start), Bytes: fl.bytes}
	}()
	return s, nil
}
