package agent

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"lonviz/internal/dvs"
	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
)

// rig is a miniature deployment: depots, a DVS, and a server agent over a
// tiny procedural database.
type rig struct {
	params    lightfield.Params
	depots    []string
	lanDepot  string
	dvsServer *dvs.Server
	dvsClient *dvs.Client
	sa        *ServerAgent
	saAddr    string
}

func tinyParams() lightfield.Params { return lightfield.ScaledParams(45, 2, 6) } // 2x4 sets

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{params: tinyParams()}
	for i := 0; i < 3; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		r.depots = append(r.depots, addr)
	}
	// LAN depot for staging tests.
	d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 24, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	lanSrv := ibp.NewServer(d)
	r.lanDepot, err = lanSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lanSrv.Close() })

	r.dvsServer = dvs.NewServer("")
	dvsAddr, err := r.dvsServer.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.dvsServer.Close() })
	r.dvsClient = &dvs.Client{Addr: dvsAddr}

	gen, err := lightfield.NewProceduralGenerator(r.params, 77)
	if err != nil {
		t.Fatal(err)
	}
	r.sa, err = NewServerAgent(ServerAgentConfig{
		Dataset: "neghip",
		Gen:     gen,
		Depots:  r.depots,
		DVS:     r.dvsClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.sa.Close() })
	r.saAddr, err = r.sa.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) newClientAgent(t *testing.T, mutate func(*ClientAgentConfig)) *ClientAgent {
	t.Helper()
	cfg := ClientAgentConfig{
		Dataset:    "neghip",
		Params:     r.params,
		DVS:        r.dvsClient,
		CacheBytes: 1 << 22,
		LANDepots:  []string{r.lanDepot},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ca, err := NewClientAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)
	return ca
}

func TestServerAgentValidation(t *testing.T) {
	gen, _ := lightfield.NewProceduralGenerator(tinyParams(), 1)
	if _, err := NewServerAgent(ServerAgentConfig{Gen: gen, Depots: []string{"a:1"}}); err == nil {
		t.Error("missing dataset accepted")
	}
	if _, err := NewServerAgent(ServerAgentConfig{Dataset: "d", Depots: []string{"a:1"}}); err == nil {
		t.Error("missing generator accepted")
	}
	if _, err := NewServerAgent(ServerAgentConfig{Dataset: "d", Gen: gen}); err == nil {
		t.Error("missing depots accepted")
	}
}

func TestServerAgentRequestPublishes(t *testing.T) {
	r := newRig(t)
	id := lightfield.ViewSetID{R: 1, C: 2}
	xml, err := r.sa.Request(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	// DVS must now know the view set; the exNode must download to a
	// decodable frame.
	docs, err := r.dvsClient.Get(context.Background(), dvs.Key{Dataset: "neghip", ViewSet: id.String()})
	if err != nil || len(docs) == 0 {
		t.Fatalf("DVS after publish: %v (%d docs)", err, len(docs))
	}
	ca := r.newClientAgent(t, nil)
	frame, rep, err := ca.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != AccessWAN {
		t.Errorf("first access class = %v", rep.Class)
	}
	vs, err := lightfield.DecodeViewSet(frame, r.params)
	if err != nil {
		t.Fatal(err)
	}
	if vs.ID != id {
		t.Errorf("decoded ID = %v", vs.ID)
	}
	_ = xml
}

func TestServerAgentRejectsBadID(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.Request(context.Background(), lightfield.ViewSetID{R: 99, C: 0}); err == nil {
		t.Error("out-of-range request accepted")
	}
}

func TestServerAgentConcurrentRequests(t *testing.T) {
	r := newRig(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for _, id := range r.params.AllViewSets() {
		wg.Add(1)
		go func(id lightfield.ViewSetID) {
			defer wg.Done()
			if _, err := r.sa.Request(context.Background(), id); err != nil {
				errs <- err
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := r.sa.Stats()
	if st.Rendered != int64(r.params.NumViewSets()) {
		t.Errorf("rendered = %d", st.Rendered)
	}
}

func TestServerAgentDuplicateRequestsCoalesce(t *testing.T) {
	r := newRig(t)
	id := lightfield.ViewSetID{R: 0, C: 0}
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.sa.Request(context.Background(), id); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// All five requests succeed; the generator may run once or a few
	// times depending on arrival, but never five times strictly — at
	// minimum the waiters map coalesces simultaneous arrivals.
	if st := r.sa.Stats(); st.Rendered > 3 {
		t.Errorf("rendered %d times for 5 concurrent identical requests", st.Rendered)
	}
}

func TestPrecomputeAllFillsDVS(t *testing.T) {
	r := newRig(t)
	out, err := r.sa.PrecomputeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != r.params.NumViewSets() {
		t.Fatalf("precomputed %d of %d", len(out), r.params.NumViewSets())
	}
	for _, id := range r.params.AllViewSets() {
		if _, err := r.dvsClient.Get(context.Background(), dvs.Key{Dataset: "neghip", ViewSet: id.String()}); err != nil {
			t.Errorf("DVS missing %v: %v", id, err)
		}
	}
}

func TestRemoteRenderProtocol(t *testing.T) {
	r := newRig(t)
	xml, err := RequestRemote(context.Background(), nil, r.saAddr, "neghip", "r01c03")
	if err != nil {
		t.Fatal(err)
	}
	if len(xml) == 0 {
		t.Fatal("empty exnode")
	}
	// Bad dataset and bad key produce errors, not hangs.
	if _, err := RequestRemote(context.Background(), nil, r.saAddr, "wrong", "r00c00"); err == nil {
		t.Error("wrong dataset accepted")
	}
	if _, err := RequestRemote(context.Background(), nil, r.saAddr, "neghip", "garbage"); err == nil {
		t.Error("garbage key accepted")
	}
}

func TestDVSOnDemandViaServerAgent(t *testing.T) {
	r := newRig(t)
	// Wire the DVS root to the server agent for on-demand generation.
	r.dvsServer.Generate = GenerateFunc(nil)
	if err := r.dvsServer.RegisterAgent("neghip", r.saAddr); err != nil {
		t.Fatal(err)
	}
	// Client agent asks for a set nobody has rendered: the DVS forwards to
	// the server agent, which renders and uploads; the client agent then
	// downloads it.
	ca := r.newClientAgent(t, nil)
	frame, rep, err := ca.GetViewSet(context.Background(), lightfield.ViewSetID{R: 1, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != AccessWAN || len(frame) == 0 {
		t.Errorf("on-demand access = %+v (%d bytes)", rep, len(frame))
	}
}

func TestParseViewSetKey(t *testing.T) {
	id, err := ParseViewSetKey("r03c11")
	if err != nil || id != (lightfield.ViewSetID{R: 3, C: 11}) {
		t.Errorf("parse = %v, %v", id, err)
	}
	for _, bad := range []string{"", "r3", "c3r4", "rXcY", "r-03c11x"} {
		if _, err := ParseViewSetKey(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestClientAgentCacheHit(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)
	id := lightfield.ViewSetID{R: 0, C: 1}
	_, rep1, err := ca.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Class != AccessWAN {
		t.Errorf("first access = %v", rep1.Class)
	}
	_, rep2, err := ca.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Class != AccessHit {
		t.Errorf("second access = %v", rep2.Class)
	}
	if rep2.Comm > rep1.Comm {
		t.Errorf("hit latency %v exceeds WAN latency %v", rep2.Comm, rep1.Comm)
	}
	st := ca.Stats()
	if st.Hits != 1 || st.WANFetches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestClientAgentPrefetchPopulatesCache(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, func(c *ClientAgentConfig) { c.Prefetch = true })
	// Move to the center of set (1,2); quadrant prefetch targets neighbors.
	sp := r.params.SetCenterAngles(lightfield.ViewSetID{R: 1, C: 2})
	ca.OnUserMove(sp)
	// Prefetch is async; wait for the predicted sets to land.
	preds := r.params.QuadrantPrefetch(sp)
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, id := range preds {
			if !ca.cache.Contains(id.String()) {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prefetch never completed for %v", preds)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ca.Stats().Prefetches == 0 {
		t.Error("prefetches not counted")
	}
}

func TestClientAgentPrestagingFullDataset(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)
	done, err := ca.StartPrestaging(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("prestaging did not finish")
	}
	if got := ca.StagedCount(); got != r.params.NumViewSets() {
		t.Fatalf("staged %d of %d", got, r.params.NumViewSets())
	}
	// A fresh fetch of an uncached set now comes from the LAN depot.
	id := lightfield.ViewSetID{R: 1, C: 3}
	_, rep, err := ca.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != AccessLANDepot {
		t.Errorf("post-staging access class = %v", rep.Class)
	}
	// Starting again returns the same done channel, no double work.
	done2, err := ca.StartPrestaging(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done2:
	default:
		t.Error("second StartPrestaging returned an open channel")
	}
}

func TestClientAgentStagingOrderFollowsCursor(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)
	target := lightfield.ViewSetID{R: 1, C: 3}
	ca.OnUserMove(r.params.SetCenterAngles(target))
	// Without starting the loop, ask the policy directly: the nearest
	// unstaged set must be the cursor's set.
	id, ok := ca.nextToStage(false)
	if !ok || id != target {
		t.Errorf("nextToStage = %v, want %v", id, target)
	}
	// Sequential policy ignores the cursor.
	seq := r.newClientAgent(t, func(c *ClientAgentConfig) { c.StageOrderPolicy = StageSequential })
	seq.OnUserMove(r.params.SetCenterAngles(target))
	if id, ok := seq.nextToStage(false); !ok || id != (lightfield.ViewSetID{R: 0, C: 0}) {
		t.Errorf("sequential nextToStage = %v", id)
	}
}

func TestClientAgentStagedFallbackToWAN(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)
	id := lightfield.ViewSetID{R: 0, C: 2}
	if err := ca.stageOne(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	// Sabotage the staged exNode (simulates lease expiry / revocation).
	ca.mu.Lock()
	for i := range ca.staged[id].Extents {
		for j := range ca.staged[id].Extents[i].Replicas {
			ca.staged[id].Extents[i].Replicas[j].ReadCap = "gone"
		}
	}
	ca.mu.Unlock()
	_, rep, err := ca.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != AccessWAN {
		t.Errorf("fallback class = %v", rep.Class)
	}
	if ca.IsStaged(id) {
		t.Error("dead staged entry not forgotten")
	}
}

func TestViewerMoveDecodeRender(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)
	v, err := NewViewer(r.params, ca)
	if err != nil {
		t.Fatal(err)
	}
	sp := r.params.SetCenterAngles(lightfield.ViewSetID{R: 1, C: 1})
	rec, err := v.MoveTo(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Class != AccessWAN || rec.Total <= 0 || rec.Bytes == 0 {
		t.Errorf("first move record = %+v", rec)
	}
	if rec.Decompress <= 0 {
		t.Error("decompression time not recorded")
	}
	// Second move within the same view set: client-side hit.
	sp2 := sp
	sp2.Phi += 0.01
	rec2, err := v.MoveTo(context.Background(), sp2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Class != AccessHit || rec2.Total != 0 {
		t.Errorf("within-set move record = %+v", rec2)
	}
	// Rendering works from the decoded cache.
	im, stats, err := v.Render(sp, r.params.OuterRadius*1.6, 24)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Filled == 0 {
		t.Error("viewer render filled nothing")
	}
	if im.Res != 24 {
		t.Errorf("render res = %d", im.Res)
	}
	if len(v.Records()) != 2 {
		t.Errorf("records = %d", len(v.Records()))
	}
}

func TestViewerDecodedCacheEviction(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)
	v, err := NewViewer(r.params, ca)
	if err != nil {
		t.Fatal(err)
	}
	v.MaxDecoded = 2
	ids := r.params.AllViewSets()[:3]
	for _, id := range ids {
		if _, err := v.MoveTo(context.Background(), r.params.SetCenterAngles(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := v.ViewSet(ids[0]); ok {
		t.Error("oldest decoded set not evicted")
	}
	if _, ok := v.ViewSet(ids[2]); !ok {
		t.Error("current decoded set evicted")
	}
}

func TestAccessClassString(t *testing.T) {
	if AccessHit.String() != "hit" || AccessLANDepot.String() != "lan-depot" || AccessWAN.String() != "wan" {
		t.Error("AccessClass strings wrong")
	}
	if AccessClass(9).String() == "" {
		t.Error("unknown class string empty")
	}
}

func TestViewerValidation(t *testing.T) {
	if _, err := NewViewer(tinyParams(), nil); err == nil {
		t.Error("nil source accepted")
	}
	bad := tinyParams()
	bad.Res = 0
	r := newRig(t)
	ca := r.newClientAgent(t, nil)
	if _, err := NewViewer(bad, ca); err == nil {
		t.Error("bad params accepted")
	}
}

func TestClientAgentValidation(t *testing.T) {
	r := newRig(t)
	if _, err := NewClientAgent(ClientAgentConfig{Params: r.params, DVS: r.dvsClient}); err == nil {
		t.Error("missing dataset accepted")
	}
	if _, err := NewClientAgent(ClientAgentConfig{Dataset: "d", Params: r.params}); err == nil {
		t.Error("missing DVS accepted")
	}
	ca, err := NewClientAgent(ClientAgentConfig{Dataset: "d", Params: r.params, DVS: r.dvsClient})
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if _, _, err := ca.GetViewSet(context.Background(), lightfield.ViewSetID{R: 50, C: 50}); err == nil {
		t.Error("invalid view set accepted")
	}
	noLAN, _ := NewClientAgent(ClientAgentConfig{Dataset: "d", Params: r.params, DVS: r.dvsClient})
	defer noLAN.Close()
	if _, err := noLAN.StartPrestaging(context.Background()); err == nil {
		t.Error("prestaging without LAN depot accepted")
	}
}

func TestQuadrantPrefetchAgreesWithPolicy(t *testing.T) {
	// The agent must prefetch exactly the policy's prediction set.
	p := tinyParams()
	sp := geom.Spherical{Theta: math.Pi/2 + 0.1, Phi: 1.0}
	preds := p.QuadrantPrefetch(sp)
	if len(preds) == 0 {
		t.Fatal("no predictions; pick a different test direction")
	}
}

func TestStageOneUnknownViewSet(t *testing.T) {
	r := newRig(t)
	ca := r.newClientAgent(t, nil)
	// Nothing precomputed and no on-demand generation: staging must fail
	// cleanly.
	err := ca.stageOne(context.Background(), lightfield.ViewSetID{R: 0, C: 0})
	if err == nil {
		t.Error("staging unknown view set succeeded")
	}
}

func TestRefreshStagedLeases(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)
	id := lightfield.ViewSetID{R: 0, C: 0}
	if err := ca.stageOne(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	ca.mu.Lock()
	staged := ca.staged[id]
	ca.mu.Unlock()
	n, err := lors.Refresh(context.Background(), staged, 20*time.Minute, nil)
	if err != nil || n == 0 {
		t.Errorf("refresh staged: %d, %v", n, err)
	}
}

func TestRouteMissesThroughDepot(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, func(c *ClientAgentConfig) { c.RouteMissesThroughDepot = true })
	id := lightfield.ViewSetID{R: 1, C: 1}
	frame, rep, err := ca.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != AccessWAN || len(frame) == 0 {
		t.Fatalf("routed miss = %+v", rep)
	}
	// The routed transfer leaves a staged copy behind.
	if !ca.IsStaged(id) {
		t.Error("routed miss did not leave a staged copy")
	}
	// After dropping only the cache, the next access is a LAN depot fetch.
	ca.DropCached(id)
	_, rep2, err := ca.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Class != AccessLANDepot {
		t.Errorf("post-routing access class = %v", rep2.Class)
	}
	// Frame decodes correctly after the copy+download round trip.
	if _, err := lightfield.DecodeViewSet(frame, r.params); err != nil {
		t.Error(err)
	}
}

func TestRouteMissesFallsBackWithoutDepot(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, func(c *ClientAgentConfig) {
		c.RouteMissesThroughDepot = true
		c.LANDepots = nil
	})
	_, rep, err := ca.GetViewSet(context.Background(), lightfield.ViewSetID{R: 0, C: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != AccessWAN {
		t.Errorf("fallback class = %v", rep.Class)
	}
}

func TestSuppressStageOnMissPausesStager(t *testing.T) {
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, func(c *ClientAgentConfig) { c.SuppressStageOnMiss = true })
	// Mark the agent as busy with a miss; the staging workers must idle.
	ca.mu.Lock()
	ca.wanBusy = 1
	ca.mu.Unlock()
	if _, err := ca.StartPrestaging(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := ca.StagedCount(); got != 0 {
		t.Fatalf("staged %d sets while a miss was outstanding", got)
	}
	// Release the miss: staging proceeds to completion.
	ca.mu.Lock()
	ca.wanBusy = 0
	ca.mu.Unlock()
	deadline := time.Now().Add(20 * time.Second)
	for ca.StagedCount() < r.params.NumViewSets() {
		if time.Now().After(deadline) {
			t.Fatalf("staging stalled at %d of %d", ca.StagedCount(), r.params.NumViewSets())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
