package agent

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"lonviz/internal/codec"
	"lonviz/internal/dvs"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
	"lonviz/internal/overload"
)

// ErrRenderBusy reports that the server agent shed a render request —
// evicted from a full pending queue or dropped because its propagated
// deadline budget was already spent. It wraps ibp.ErrBusy so every layer
// classifies overload sheds with one sentinel: retryable later, not a
// failure of the agent.
var ErrRenderBusy = fmt.Errorf("agent: render request shed: %w", ibp.ErrBusy)

// reasonEvicted labels sheds where a newer request pushed this one out of
// a full pending queue (the latest-first scheduler's load-shedding form).
const reasonEvicted = "evicted"

// ServerAgentConfig wires a server agent to its generator and
// infrastructure.
type ServerAgentConfig struct {
	// Dataset names the database (the DVS key prefix).
	Dataset string
	// Gen renders view sets (ray-casting in production, procedural in
	// experiments).
	Gen lightfield.Generator
	// Depots are the server depots that receive uploaded view sets.
	Depots []string
	// DVS registers exNodes for uploaded view sets; optional (nil for a
	// stand-alone agent whose callers keep the exNodes themselves).
	DVS *dvs.Client
	// StripeSize, Replicas, Lease configure uploads (see lors.UploadOptions).
	StripeSize int64
	Replicas   int
	Lease      time.Duration
	// Level is the codec compression level (codec.DefaultCompression if 0;
	// the paper compresses every view set with zlib before upload).
	Level int
	// Dialer shapes connections to depots and the DVS; nil means plain TCP.
	Dialer ibp.Dialer
	// Workers is the generator parallelism for PrecomputeAll (0 =
	// GOMAXPROCS), standing in for the paper's 32-processor cluster.
	Workers int
	// MaxPending bounds the scheduler's LIFO stack of distinct unrendered
	// view sets. When a new request would push the stack past the bound,
	// the OLDEST pending request is evicted and its waiters are answered
	// with BUSY — under overload the agent keeps only the requests that
	// reflect where users are now, which is the paper's latest-first
	// scheduler taken to its load-shedding conclusion. 0 means unbounded.
	MaxPending int
	// Obs receives upload timings via the lors layer; nil records into
	// obs.Default().
	Obs *obs.Registry
}

// ServerAgent renders view sets on request, compresses them, uploads them
// to server depots, and registers the exNodes with the DVS. Its scheduler
// follows the paper: "Working from the entire collection of requests that
// have been received but not yet rendered, the scheduler chooses the
// latest request to assign to the generator" — i.e. LIFO, because the most
// recent request reflects where the user is now.
type ServerAgent struct {
	cfg ServerAgentConfig

	mu      sync.Mutex
	pending []lightfield.ViewSetID // LIFO stack of unrendered requests
	waiters map[lightfield.ViewSetID][]renderWaiter
	queued  map[lightfield.ViewSetID]bool
	stats   ServerAgentStats
	lis     net.Listener
	wake    chan struct{}
	done    chan struct{}
	once    sync.Once
}

// ServerAgentStats counts agent activity.
type ServerAgentStats struct {
	Requests   int64
	Rendered   int64
	Uploaded   int64
	BytesSent  int64
	DVSUpdates int64
	// Evicted counts waiters shed because a newer request pushed theirs
	// out of a full pending queue; DeadlineDrops counts waiters whose
	// queued request was discarded unrendered because every waiter's
	// deadline had already expired.
	Evicted       int64
	DeadlineDrops int64
}

type renderResult struct {
	exnodeXML []byte
	err       error
}

// renderWaiter is one blocked Request call: its result channel plus the
// caller's context, so the scheduler can drop queued work nobody is
// still waiting for.
type renderWaiter struct {
	ch  chan renderResult
	ctx context.Context
}

// NewServerAgent validates the configuration.
func NewServerAgent(cfg ServerAgentConfig) (*ServerAgent, error) {
	if cfg.Dataset == "" {
		return nil, fmt.Errorf("agent: server agent needs a dataset name")
	}
	if cfg.Gen == nil {
		return nil, fmt.Errorf("agent: server agent needs a generator")
	}
	if len(cfg.Depots) == 0 {
		return nil, fmt.Errorf("agent: server agent needs at least one depot")
	}
	if cfg.Level == 0 {
		cfg.Level = codec.DefaultCompression
	}
	if cfg.Lease == 0 {
		cfg.Lease = 10 * time.Minute
	}
	sa := &ServerAgent{
		cfg:     cfg,
		waiters: make(map[lightfield.ViewSetID][]renderWaiter),
		queued:  make(map[lightfield.ViewSetID]bool),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	sa.initMetrics()
	go sa.schedulerLoop()
	return sa, nil
}

func (sa *ServerAgent) registry() *obs.Registry {
	if sa.cfg.Obs != nil {
		return sa.cfg.Obs
	}
	return obs.Default()
}

// initMetrics eagerly registers the render overload families so load
// dashboards see them at zero before any shed happens.
func (sa *ServerAgent) initMetrics() {
	reg := sa.registry()
	reg.Counter(obs.Label(obs.MAgentRenderShed, "reason", reasonEvicted))
	reg.Counter(obs.Label(obs.MAgentRenderShed, "reason", overload.ReasonDeadline))
	reg.Gauge(obs.MAgentRenderQueueDepth).Set(0)
}

// shed records n shed render waiters and why.
func (sa *ServerAgent) shed(reason string, n int) {
	if n <= 0 {
		return
	}
	sa.registry().Counter(obs.Label(obs.MAgentRenderShed, "reason", reason)).Add(int64(n))
	obs.DefaultLogger().Warn(context.Background(), obs.EvShed,
		"component", "agent", "reason", reason, "dataset", sa.cfg.Dataset)
}

func (sa *ServerAgent) setQueueDepth(n int) {
	sa.registry().Gauge(obs.MAgentRenderQueueDepth).Set(int64(n))
}

// Close stops the scheduler and listener.
func (sa *ServerAgent) Close() error {
	sa.once.Do(func() { close(sa.done) })
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.lis != nil {
		return sa.lis.Close()
	}
	return nil
}

// Stats returns a snapshot of agent counters.
func (sa *ServerAgent) Stats() ServerAgentStats {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.stats
}

// uploadOpts builds the lors options for this agent.
func (sa *ServerAgent) uploadOpts() lors.UploadOptions {
	return lors.UploadOptions{
		Depots:     sa.cfg.Depots,
		StripeSize: sa.cfg.StripeSize,
		Replicas:   sa.cfg.Replicas,
		Lease:      sa.cfg.Lease,
		Policy:     ibp.Stable,
		Dialer:     sa.cfg.Dialer,
		Obs:        sa.cfg.Obs,
	}
}

// RegisterMetrics bridges this agent's counters into reg (scraped as
// agent.server.* at /metrics). Passing nil bridges into obs.Default().
func (sa *ServerAgent) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	reg.RegisterSnapshot("agent.server", func() map[string]float64 {
		st := sa.Stats()
		return map[string]float64{
			"requests":       float64(st.Requests),
			"rendered":       float64(st.Rendered),
			"uploaded":       float64(st.Uploaded),
			"bytes_sent":     float64(st.BytesSent),
			"dvs_updates":    float64(st.DVSUpdates),
			"evicted":        float64(st.Evicted),
			"deadline_drops": float64(st.DeadlineDrops),
		}
	})
}

// renderAndPublish does the full pipeline for one view set: generate,
// compress, upload, register. It returns the exNode XML.
func (sa *ServerAgent) renderAndPublish(ctx context.Context, id lightfield.ViewSetID) ([]byte, error) {
	// CPU attribution: rendering dominates server-agent profiles, so the
	// {class=render} slice separates generation+encode+upload from the
	// request-scheduling machinery around it.
	lctx := prof.Begin1(ctx, prof.KeyClass, "render")
	defer prof.End(ctx)
	ctx = lctx
	p := sa.cfg.Gen.Params()
	vs, err := sa.cfg.Gen.GenerateViewSet(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("agent: generating %v: %w", id, err)
	}
	frame, err := lightfield.EncodeViewSet(vs, p, sa.cfg.Level)
	if err != nil {
		return nil, fmt.Errorf("agent: encoding %v: %w", id, err)
	}
	ex, err := lors.Upload(ctx, id.String(), frame, sa.uploadOpts())
	if err != nil {
		return nil, fmt.Errorf("agent: uploading %v: %w", id, err)
	}
	xml, err := ex.Marshal()
	if err != nil {
		return nil, err
	}
	if sa.cfg.DVS != nil {
		key := dvs.Key{Dataset: sa.cfg.Dataset, ViewSet: id.String()}
		if err := sa.cfg.DVS.Put(ctx, key, xml); err != nil {
			return nil, fmt.Errorf("agent: DVS update for %v: %w", id, err)
		}
		sa.mu.Lock()
		sa.stats.DVSUpdates++
		sa.mu.Unlock()
	}
	sa.mu.Lock()
	sa.stats.Rendered++
	sa.stats.Uploaded++
	sa.stats.BytesSent += int64(len(frame))
	sa.mu.Unlock()
	return xml, nil
}

// Request enqueues a render request and blocks until the scheduler
// completes it (LIFO order among outstanding requests).
func (sa *ServerAgent) Request(ctx context.Context, id lightfield.ViewSetID) ([]byte, error) {
	if !sa.cfg.Gen.Params().ValidID(id) {
		return nil, fmt.Errorf("agent: view set %v outside database", id)
	}
	if ctx.Err() != nil {
		// The propagated deadline budget is already spent: shed instead
		// of queueing work for a caller that has moved on.
		sa.shed(overload.ReasonDeadline, 1)
		return nil, ErrRenderBusy
	}
	ch := make(chan renderResult, 1)
	var evicted []renderWaiter
	sa.mu.Lock()
	sa.stats.Requests++
	sa.waiters[id] = append(sa.waiters[id], renderWaiter{ch: ch, ctx: ctx})
	if !sa.queued[id] {
		sa.queued[id] = true
		sa.pending = append(sa.pending, id) // top of stack = latest
		if sa.cfg.MaxPending > 0 && len(sa.pending) > sa.cfg.MaxPending {
			// Latest request first: evict the OLDEST pending entry —
			// under overload the stale request is least likely to still
			// reflect where its user is.
			old := sa.pending[0]
			sa.pending = append([]lightfield.ViewSetID(nil), sa.pending[1:]...)
			delete(sa.queued, old)
			evicted = sa.waiters[old]
			delete(sa.waiters, old)
			sa.stats.Evicted += int64(len(evicted))
		}
	}
	depth := len(sa.pending)
	sa.mu.Unlock()
	sa.setQueueDepth(depth)
	sa.shed(reasonEvicted, len(evicted))
	for _, w := range evicted {
		w.ch <- renderResult{err: ErrRenderBusy}
	}
	select {
	case sa.wake <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case r := <-ch:
		return r.exnodeXML, r.err
	}
}

// schedulerLoop is the single generator worker, always taking the most
// recently requested view set first.
func (sa *ServerAgent) schedulerLoop() {
	for {
		select {
		case <-sa.done:
			return
		case <-sa.wake:
		}
		for {
			sa.mu.Lock()
			if len(sa.pending) == 0 {
				sa.mu.Unlock()
				break
			}
			id := sa.pending[len(sa.pending)-1] // latest request
			sa.pending = sa.pending[:len(sa.pending)-1]
			delete(sa.queued, id)
			depth := len(sa.pending)
			// Skip the render entirely when no waiter is still live:
			// every caller's deadline expired while the request sat
			// queued, so the work would be pure waste.
			live := false
			ws := sa.waiters[id]
			for _, w := range ws {
				if w.ctx.Err() == nil {
					live = true
					break
				}
			}
			if !live {
				delete(sa.waiters, id)
				sa.stats.DeadlineDrops += int64(len(ws))
				sa.mu.Unlock()
				sa.setQueueDepth(depth)
				sa.shed(overload.ReasonDeadline, len(ws))
				for _, w := range ws {
					w.ch <- renderResult{err: ErrRenderBusy}
				}
				continue
			}
			sa.mu.Unlock()
			sa.setQueueDepth(depth)

			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			xml, err := sa.renderAndPublish(ctx, id)
			cancel()

			sa.mu.Lock()
			ws = sa.waiters[id]
			delete(sa.waiters, id)
			sa.mu.Unlock()
			for _, w := range ws {
				w.ch <- renderResult{exnodeXML: xml, err: err}
			}
		}
	}
}

// PrecomputeAll renders, compresses, uploads and registers the entire
// database — the paper's offline generation path. It returns the exNode
// XML per view set.
func (sa *ServerAgent) PrecomputeAll(ctx context.Context) (map[lightfield.ViewSetID][]byte, error) {
	p := sa.cfg.Gen.Params()
	out := make(map[lightfield.ViewSetID][]byte, p.NumViewSets())
	var outMu sync.Mutex
	ids := p.AllViewSets()
	workers := sa.cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	errs := make([]error, len(ids))
	for i, id := range ids {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id lightfield.ViewSetID) {
			defer wg.Done()
			defer func() { <-sem }()
			xml, err := sa.renderAndPublish(ctx, id)
			if err != nil {
				errs[i] = err
				return
			}
			outMu.Lock()
			out[id] = xml
			outMu.Unlock()
		}(i, id)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- server agent wire protocol ---
//
//	RENDER <dataset> <viewset> -> OK <len>\n<exnode xml> | ERR <msg>

// ListenAndServe exposes the agent's render service on addr (the paper's
// "server monitor ... interface for all such run-time queries").
func (sa *ServerAgent) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	sa.mu.Lock()
	sa.lis = l
	sa.mu.Unlock()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go sa.handleConn(c)
		}
	}()
	return l.Addr().String(), nil
}

func (sa *ServerAgent) handleConn(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		line, err := br.ReadString('\n')
		if err != nil || len(line) > 1024 {
			return
		}
		// Strip the optional trailing tokens before the strict 3-field
		// check: trace= is emitted last, deadline= before it. The trace
		// parents this render's span under the caller; the deadline
		// bounds the render so queued work for departed callers is
		// dropped instead of served.
		f, tc, traced := obs.StripTraceToken(strings.Fields(strings.TrimSpace(line)))
		f, budget, hasBudget := obs.StripDeadlineToken(f)
		if len(f) != 3 || f[0] != "RENDER" || f[1] != sa.cfg.Dataset {
			fmt.Fprintf(bw, "ERR bad request\n")
			bw.Flush()
			return
		}
		id, err := ParseViewSetKey(f[2])
		if err != nil {
			fmt.Fprintf(bw, "ERR %s\n", err)
			bw.Flush()
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		ctx, dcancel := obs.DeadlineContext(ctx, budget, hasBudget)
		var span *obs.Span
		if traced {
			ctx, span = obs.DefaultTracer().StartSpan(obs.ContextWithRemote(ctx, tc), obs.SpanRenderServe)
			span.SetAttr("viewset", f[2])
		}
		xml, err := sa.Request(ctx, id)
		span.Finish()
		dcancel()
		cancel()
		if err != nil {
			if errors.Is(err, ibp.ErrBusy) {
				fmt.Fprintf(bw, "ERR BUSY render request shed, retry later\n")
			} else {
				fmt.Fprintf(bw, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
			}
		} else {
			fmt.Fprintf(bw, "OK %d\n", len(xml))
			bw.Write(xml)
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// RequestRemote asks a remote server agent (by address) to render a view
// set, returning the exNode XML. It is also the standard dvs.GenerateFunc
// implementation.
func RequestRemote(ctx context.Context, dialer ibp.Dialer, agentAddr, dataset, viewSetKey string) ([]byte, error) {
	d := dialer
	if d == nil {
		d = ibp.NetDialer{}
	}
	conn, err := d.Dial(agentAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	} else {
		_ = conn.SetDeadline(time.Now().Add(5 * time.Minute))
	}
	fmt.Fprintf(conn, "RENDER %s %s%s\n", dataset, viewSetKey, obs.LineTokens(ctx))
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("agent: reading render response: %w", err)
	}
	f := strings.Fields(strings.TrimSpace(line))
	if len(f) >= 2 && f[0] == "ERR" && f[1] == "BUSY" {
		// Typed so callers treat an agent shed as retryable, exactly
		// like a depot BUSY; pre-overload agents never emit this shape
		// and fall through to the generic case below.
		return nil, fmt.Errorf("agent: remote render: %s: %w", strings.Join(f[2:], " "), ibp.ErrBusy)
	}
	if len(f) >= 1 && f[0] == "ERR" {
		return nil, fmt.Errorf("agent: remote render: %s", strings.Join(f[1:], " "))
	}
	if len(f) != 2 || f[0] != "OK" {
		return nil, fmt.Errorf("agent: bad render response %q", line)
	}
	n, err := strconv.Atoi(f[1])
	if err != nil || n <= 0 || n > 4<<20 {
		return nil, fmt.Errorf("agent: bad render response length")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// GenerateFunc adapts RequestRemote to the dvs.GenerateFunc signature.
func GenerateFunc(dialer ibp.Dialer) dvs.GenerateFunc {
	return func(ctx context.Context, agentAddr string, key dvs.Key) ([]byte, error) {
		return RequestRemote(ctx, dialer, agentAddr, key.Dataset, key.ViewSet)
	}
}

// ParseViewSetKey parses the "rRRcCC" form produced by ViewSetID.String.
// Only non-negative decimal digits are accepted and no trailing bytes are
// allowed.
func ParseViewSetKey(s string) (lightfield.ViewSetID, error) {
	bad := func() (lightfield.ViewSetID, error) {
		return lightfield.ViewSetID{}, fmt.Errorf("agent: bad view set key %q", s)
	}
	if len(s) < 4 || s[0] != 'r' {
		return bad()
	}
	ci := strings.IndexByte(s, 'c')
	if ci < 2 || ci == len(s)-1 {
		return bad()
	}
	r, err := strconv.Atoi(s[1:ci])
	if err != nil || r < 0 || s[1] == '+' || s[1] == '-' {
		return bad()
	}
	c, err := strconv.Atoi(s[ci+1:])
	if err != nil || c < 0 || s[ci+1] == '+' || s[ci+1] == '-' {
		return bad()
	}
	return lightfield.ViewSetID{R: r, C: c}, nil
}
