package agent

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"lonviz/internal/codec"
	"lonviz/internal/dvs"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
	"lonviz/internal/lors"
	"lonviz/internal/obs"
)

// ServerAgentConfig wires a server agent to its generator and
// infrastructure.
type ServerAgentConfig struct {
	// Dataset names the database (the DVS key prefix).
	Dataset string
	// Gen renders view sets (ray-casting in production, procedural in
	// experiments).
	Gen lightfield.Generator
	// Depots are the server depots that receive uploaded view sets.
	Depots []string
	// DVS registers exNodes for uploaded view sets; optional (nil for a
	// stand-alone agent whose callers keep the exNodes themselves).
	DVS *dvs.Client
	// StripeSize, Replicas, Lease configure uploads (see lors.UploadOptions).
	StripeSize int64
	Replicas   int
	Lease      time.Duration
	// Level is the codec compression level (codec.DefaultCompression if 0;
	// the paper compresses every view set with zlib before upload).
	Level int
	// Dialer shapes connections to depots and the DVS; nil means plain TCP.
	Dialer ibp.Dialer
	// Workers is the generator parallelism for PrecomputeAll (0 =
	// GOMAXPROCS), standing in for the paper's 32-processor cluster.
	Workers int
	// Obs receives upload timings via the lors layer; nil records into
	// obs.Default().
	Obs *obs.Registry
}

// ServerAgent renders view sets on request, compresses them, uploads them
// to server depots, and registers the exNodes with the DVS. Its scheduler
// follows the paper: "Working from the entire collection of requests that
// have been received but not yet rendered, the scheduler chooses the
// latest request to assign to the generator" — i.e. LIFO, because the most
// recent request reflects where the user is now.
type ServerAgent struct {
	cfg ServerAgentConfig

	mu      sync.Mutex
	pending []lightfield.ViewSetID // LIFO stack of unrendered requests
	waiters map[lightfield.ViewSetID][]chan renderResult
	queued  map[lightfield.ViewSetID]bool
	stats   ServerAgentStats
	lis     net.Listener
	wake    chan struct{}
	done    chan struct{}
	once    sync.Once
}

// ServerAgentStats counts agent activity.
type ServerAgentStats struct {
	Requests   int64
	Rendered   int64
	Uploaded   int64
	BytesSent  int64
	DVSUpdates int64
}

type renderResult struct {
	exnodeXML []byte
	err       error
}

// NewServerAgent validates the configuration.
func NewServerAgent(cfg ServerAgentConfig) (*ServerAgent, error) {
	if cfg.Dataset == "" {
		return nil, fmt.Errorf("agent: server agent needs a dataset name")
	}
	if cfg.Gen == nil {
		return nil, fmt.Errorf("agent: server agent needs a generator")
	}
	if len(cfg.Depots) == 0 {
		return nil, fmt.Errorf("agent: server agent needs at least one depot")
	}
	if cfg.Level == 0 {
		cfg.Level = codec.DefaultCompression
	}
	if cfg.Lease == 0 {
		cfg.Lease = 10 * time.Minute
	}
	sa := &ServerAgent{
		cfg:     cfg,
		waiters: make(map[lightfield.ViewSetID][]chan renderResult),
		queued:  make(map[lightfield.ViewSetID]bool),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go sa.schedulerLoop()
	return sa, nil
}

// Close stops the scheduler and listener.
func (sa *ServerAgent) Close() error {
	sa.once.Do(func() { close(sa.done) })
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.lis != nil {
		return sa.lis.Close()
	}
	return nil
}

// Stats returns a snapshot of agent counters.
func (sa *ServerAgent) Stats() ServerAgentStats {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.stats
}

// uploadOpts builds the lors options for this agent.
func (sa *ServerAgent) uploadOpts() lors.UploadOptions {
	return lors.UploadOptions{
		Depots:     sa.cfg.Depots,
		StripeSize: sa.cfg.StripeSize,
		Replicas:   sa.cfg.Replicas,
		Lease:      sa.cfg.Lease,
		Policy:     ibp.Stable,
		Dialer:     sa.cfg.Dialer,
		Obs:        sa.cfg.Obs,
	}
}

// RegisterMetrics bridges this agent's counters into reg (scraped as
// agent.server.* at /metrics). Passing nil bridges into obs.Default().
func (sa *ServerAgent) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	reg.RegisterSnapshot("agent.server", func() map[string]float64 {
		st := sa.Stats()
		return map[string]float64{
			"requests":    float64(st.Requests),
			"rendered":    float64(st.Rendered),
			"uploaded":    float64(st.Uploaded),
			"bytes_sent":  float64(st.BytesSent),
			"dvs_updates": float64(st.DVSUpdates),
		}
	})
}

// renderAndPublish does the full pipeline for one view set: generate,
// compress, upload, register. It returns the exNode XML.
func (sa *ServerAgent) renderAndPublish(ctx context.Context, id lightfield.ViewSetID) ([]byte, error) {
	p := sa.cfg.Gen.Params()
	vs, err := sa.cfg.Gen.GenerateViewSet(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("agent: generating %v: %w", id, err)
	}
	frame, err := lightfield.EncodeViewSet(vs, p, sa.cfg.Level)
	if err != nil {
		return nil, fmt.Errorf("agent: encoding %v: %w", id, err)
	}
	ex, err := lors.Upload(ctx, id.String(), frame, sa.uploadOpts())
	if err != nil {
		return nil, fmt.Errorf("agent: uploading %v: %w", id, err)
	}
	xml, err := ex.Marshal()
	if err != nil {
		return nil, err
	}
	if sa.cfg.DVS != nil {
		key := dvs.Key{Dataset: sa.cfg.Dataset, ViewSet: id.String()}
		if err := sa.cfg.DVS.Put(ctx, key, xml); err != nil {
			return nil, fmt.Errorf("agent: DVS update for %v: %w", id, err)
		}
		sa.mu.Lock()
		sa.stats.DVSUpdates++
		sa.mu.Unlock()
	}
	sa.mu.Lock()
	sa.stats.Rendered++
	sa.stats.Uploaded++
	sa.stats.BytesSent += int64(len(frame))
	sa.mu.Unlock()
	return xml, nil
}

// Request enqueues a render request and blocks until the scheduler
// completes it (LIFO order among outstanding requests).
func (sa *ServerAgent) Request(ctx context.Context, id lightfield.ViewSetID) ([]byte, error) {
	if !sa.cfg.Gen.Params().ValidID(id) {
		return nil, fmt.Errorf("agent: view set %v outside database", id)
	}
	ch := make(chan renderResult, 1)
	sa.mu.Lock()
	sa.stats.Requests++
	sa.waiters[id] = append(sa.waiters[id], ch)
	if !sa.queued[id] {
		sa.queued[id] = true
		sa.pending = append(sa.pending, id) // top of stack = latest
	}
	sa.mu.Unlock()
	select {
	case sa.wake <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case r := <-ch:
		return r.exnodeXML, r.err
	}
}

// schedulerLoop is the single generator worker, always taking the most
// recently requested view set first.
func (sa *ServerAgent) schedulerLoop() {
	for {
		select {
		case <-sa.done:
			return
		case <-sa.wake:
		}
		for {
			sa.mu.Lock()
			if len(sa.pending) == 0 {
				sa.mu.Unlock()
				break
			}
			id := sa.pending[len(sa.pending)-1] // latest request
			sa.pending = sa.pending[:len(sa.pending)-1]
			delete(sa.queued, id)
			sa.mu.Unlock()

			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			xml, err := sa.renderAndPublish(ctx, id)
			cancel()

			sa.mu.Lock()
			ws := sa.waiters[id]
			delete(sa.waiters, id)
			sa.mu.Unlock()
			for _, ch := range ws {
				ch <- renderResult{exnodeXML: xml, err: err}
			}
		}
	}
}

// PrecomputeAll renders, compresses, uploads and registers the entire
// database — the paper's offline generation path. It returns the exNode
// XML per view set.
func (sa *ServerAgent) PrecomputeAll(ctx context.Context) (map[lightfield.ViewSetID][]byte, error) {
	p := sa.cfg.Gen.Params()
	out := make(map[lightfield.ViewSetID][]byte, p.NumViewSets())
	var outMu sync.Mutex
	ids := p.AllViewSets()
	workers := sa.cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	errs := make([]error, len(ids))
	for i, id := range ids {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id lightfield.ViewSetID) {
			defer wg.Done()
			defer func() { <-sem }()
			xml, err := sa.renderAndPublish(ctx, id)
			if err != nil {
				errs[i] = err
				return
			}
			outMu.Lock()
			out[id] = xml
			outMu.Unlock()
		}(i, id)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- server agent wire protocol ---
//
//	RENDER <dataset> <viewset> -> OK <len>\n<exnode xml> | ERR <msg>

// ListenAndServe exposes the agent's render service on addr (the paper's
// "server monitor ... interface for all such run-time queries").
func (sa *ServerAgent) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	sa.mu.Lock()
	sa.lis = l
	sa.mu.Unlock()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go sa.handleConn(c)
		}
	}()
	return l.Addr().String(), nil
}

func (sa *ServerAgent) handleConn(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		line, err := br.ReadString('\n')
		if err != nil || len(line) > 1024 {
			return
		}
		// Strip an optional trailing trace token before the strict
		// 3-field check, and parent this render's span under the caller.
		f, tc, traced := obs.StripTraceToken(strings.Fields(strings.TrimSpace(line)))
		if len(f) != 3 || f[0] != "RENDER" || f[1] != sa.cfg.Dataset {
			fmt.Fprintf(bw, "ERR bad request\n")
			bw.Flush()
			return
		}
		id, err := ParseViewSetKey(f[2])
		if err != nil {
			fmt.Fprintf(bw, "ERR %s\n", err)
			bw.Flush()
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		var span *obs.Span
		if traced {
			ctx, span = obs.DefaultTracer().StartSpan(obs.ContextWithRemote(ctx, tc), obs.SpanRenderServe)
			span.SetAttr("viewset", f[2])
		}
		xml, err := sa.Request(ctx, id)
		span.Finish()
		cancel()
		if err != nil {
			fmt.Fprintf(bw, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		} else {
			fmt.Fprintf(bw, "OK %d\n", len(xml))
			bw.Write(xml)
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// RequestRemote asks a remote server agent (by address) to render a view
// set, returning the exNode XML. It is also the standard dvs.GenerateFunc
// implementation.
func RequestRemote(ctx context.Context, dialer ibp.Dialer, agentAddr, dataset, viewSetKey string) ([]byte, error) {
	d := dialer
	if d == nil {
		d = ibp.NetDialer{}
	}
	conn, err := d.Dial(agentAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	} else {
		_ = conn.SetDeadline(time.Now().Add(5 * time.Minute))
	}
	if tok := obs.TraceToken(ctx); tok != "" {
		fmt.Fprintf(conn, "RENDER %s %s %s\n", dataset, viewSetKey, tok)
	} else {
		fmt.Fprintf(conn, "RENDER %s %s\n", dataset, viewSetKey)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("agent: reading render response: %w", err)
	}
	f := strings.Fields(strings.TrimSpace(line))
	if len(f) >= 1 && f[0] == "ERR" {
		return nil, fmt.Errorf("agent: remote render: %s", strings.Join(f[1:], " "))
	}
	if len(f) != 2 || f[0] != "OK" {
		return nil, fmt.Errorf("agent: bad render response %q", line)
	}
	n, err := strconv.Atoi(f[1])
	if err != nil || n <= 0 || n > 4<<20 {
		return nil, fmt.Errorf("agent: bad render response length")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// GenerateFunc adapts RequestRemote to the dvs.GenerateFunc signature.
func GenerateFunc(dialer ibp.Dialer) dvs.GenerateFunc {
	return func(ctx context.Context, agentAddr string, key dvs.Key) ([]byte, error) {
		return RequestRemote(ctx, dialer, agentAddr, key.Dataset, key.ViewSet)
	}
}

// ParseViewSetKey parses the "rRRcCC" form produced by ViewSetID.String.
// Only non-negative decimal digits are accepted and no trailing bytes are
// allowed.
func ParseViewSetKey(s string) (lightfield.ViewSetID, error) {
	bad := func() (lightfield.ViewSetID, error) {
		return lightfield.ViewSetID{}, fmt.Errorf("agent: bad view set key %q", s)
	}
	if len(s) < 4 || s[0] != 'r' {
		return bad()
	}
	ci := strings.IndexByte(s, 'c')
	if ci < 2 || ci == len(s)-1 {
		return bad()
	}
	r, err := strconv.Atoi(s[1:ci])
	if err != nil || r < 0 || s[1] == '+' || s[1] == '-' {
		return bad()
	}
	c, err := strconv.Atoi(s[ci+1:])
	if err != nil || c < 0 || s[ci+1] == '+' || s[ci+1] == '-' {
		return bad()
	}
	return lightfield.ViewSetID{R: r, C: c}, nil
}
