package agent

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lonviz/internal/geom"
	"lonviz/internal/lightfield"
)

func startRemoteAgent(t *testing.T) (*rig, *RemoteSource, *ClientAgent) {
	t.Helper()
	r := newRig(t)
	if _, err := r.sa.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)
	srv, err := NewClientAgentServer(ca, "neghip")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return r, &RemoteSource{Addr: addr, Dataset: "neghip"}, ca
}

func TestRemoteGetViewSet(t *testing.T) {
	r, src, _ := startRemoteAgent(t)
	id := lightfield.ViewSetID{R: 1, C: 2}
	frame, rep, err := src.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != AccessWAN || rep.Bytes != len(frame) {
		t.Errorf("report = %+v", rep)
	}
	vs, err := lightfield.DecodeViewSet(frame, r.params)
	if err != nil {
		t.Fatal(err)
	}
	if vs.ID != id {
		t.Errorf("decoded ID = %v", vs.ID)
	}
	// Second fetch: the agent's cache answers.
	_, rep2, err := src.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Class != AccessHit {
		t.Errorf("second class = %v", rep2.Class)
	}
}

func TestRemoteMoveDrivesPrefetch(t *testing.T) {
	r, src, ca := startRemoteAgent(t)
	// Enable prefetch on a second agent? Simpler: the default agent has
	// prefetch off; MOVE still updates the cursor. Verify via staging
	// order preference.
	target := lightfield.ViewSetID{R: 1, C: 3}
	src.OnUserMove(r.params.SetCenterAngles(target))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if id, ok := ca.nextToStage(false); ok && id == target {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cursor update never reached the agent")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRemoteViewerEndToEnd(t *testing.T) {
	r, src, _ := startRemoteAgent(t)
	v, err := NewViewer(r.params, src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := v.MoveTo(context.Background(), r.params.SetCenterAngles(lightfield.ViewSetID{R: 0, C: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Bytes == 0 || rec.Decompress <= 0 {
		t.Errorf("record = %+v", rec)
	}
	im, stats, err := v.Render(r.params.SetCenterAngles(lightfield.ViewSetID{R: 0, C: 1}), r.params.OuterRadius*1.6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Filled == 0 || im.Res != 16 {
		t.Error("remote viewer render failed")
	}
}

func TestRemoteProtocolErrors(t *testing.T) {
	_, src, _ := startRemoteAgent(t)
	conn, err := net.Dial("tcp", src.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	cases := []struct{ req, wantPrefix string }{
		{"GETVS wrongds r00c00\n", "ERR unknown dataset"},
		{"GETVS neghip garbage\n", "ERR"},
		{"MOVE a b\n", "ERR bad angles"},
		{"STATS\n", "OK "},
	}
	buf := make([]byte, 512)
	for _, tc := range cases {
		if _, err := conn.Write([]byte(tc.req)); err != nil {
			t.Fatal(err)
		}
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("%q: %v", tc.req, err)
		}
		if !strings.HasPrefix(string(buf[:n]), tc.wantPrefix) {
			t.Errorf("%q -> %q, want prefix %q", tc.req, buf[:n], tc.wantPrefix)
		}
	}
	// Out-of-range but well-formed key yields ERR (from the agent).
	if _, err := conn.Write([]byte("GETVS neghip r90c90\n")); err != nil {
		t.Fatal(err)
	}
	n, err := conn.Read(buf)
	if err != nil || !strings.HasPrefix(string(buf[:n]), "ERR") {
		t.Errorf("out-of-range key -> %q, %v", buf[:n], err)
	}
}

func TestRemoteMultipleClients(t *testing.T) {
	r, src, _ := startRemoteAgent(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := &RemoteSource{Addr: src.Addr, Dataset: "neghip"}
			ids := r.params.AllViewSets()
			id := ids[g%len(ids)]
			if _, _, err := local.GetViewSet(context.Background(), id); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNewClientAgentServerValidation(t *testing.T) {
	if _, err := NewClientAgentServer(nil, "d"); err == nil {
		t.Error("nil agent accepted")
	}
	r := newRig(t)
	ca := r.newClientAgent(t, nil)
	if _, err := NewClientAgentServer(ca, ""); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestRemoteSourceBadAddr(t *testing.T) {
	src := &RemoteSource{Addr: "127.0.0.1:1", Dataset: "d", Timeout: time.Second}
	if _, _, err := src.GetViewSet(context.Background(), lightfield.ViewSetID{}); err == nil {
		t.Error("dead agent accepted")
	}
	// OnUserMove must not panic on a dead agent.
	src.OnUserMove(geom.Spherical{Theta: 1, Phi: 1})
}
