package agent

import (
	"bytes"
	"context"
	"testing"

	"lonviz/internal/lightfield"
)

// TestGetViewSetStreamMatchesBuffered proves the streaming path delivers
// byte-identical frames to GetViewSet across miss and hit, with sane
// access classes.
func TestGetViewSetStreamMatchesBuffered(t *testing.T) {
	r := newRig(t)
	id := lightfield.ViewSetID{R: 0, C: 1}
	if _, err := r.sa.Request(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)

	// Miss: streamed decode must see the exact frame the buffered path
	// would return.
	stream, err := ca.GetViewSetStream(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	if _, err := streamed.ReadFrom(stream.Reader); err != nil {
		t.Fatal(err)
	}
	rep, err := stream.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != AccessWAN {
		t.Fatalf("miss class = %v, want wan", rep.Class)
	}
	if rep.Bytes != streamed.Len() {
		t.Fatalf("report bytes = %d, streamed %d", rep.Bytes, streamed.Len())
	}
	frame, _, err := ca.GetViewSet(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), frame) {
		t.Fatal("streamed frame differs from buffered frame")
	}

	// Hit: served from cache, complete immediately.
	stream, err = ca.GetViewSetStream(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = stream.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != AccessHit {
		t.Fatalf("hit class = %v, want hit", rep.Class)
	}

	// The frame must decode to a valid view set either way.
	if _, err := lightfield.DecodeViewSet(frame, r.params); err != nil {
		t.Fatal(err)
	}
}

// TestViewerUsesStreamingPath checks the viewer's fast path produces a
// decodable move with coherent latency accounting over a real agent.
func TestViewerUsesStreamingPath(t *testing.T) {
	r := newRig(t)
	id := lightfield.ViewSetID{R: 1, C: 0}
	if _, err := r.sa.Request(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	ca := r.newClientAgent(t, nil)
	v, err := NewViewer(r.params, ca)
	if err != nil {
		t.Fatal(err)
	}
	sp := r.params.SetCenterAngles(id)
	rec, err := v.MoveTo(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Class != AccessWAN && rec.Class != AccessHit {
		t.Fatalf("unexpected class %v", rec.Class)
	}
	if rec.Total < rec.Comm {
		t.Fatalf("total %v < comm %v", rec.Total, rec.Comm)
	}
	if _, ok := v.ViewSet(id); !ok {
		t.Fatal("view set not decoded after streaming move")
	}
}
