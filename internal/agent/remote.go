package agent

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"lonviz/internal/geom"
	"lonviz/internal/ibp"
	"lonviz/internal/lightfield"
)

// The client <-> client agent protocol (the paper runs them on separate
// machines in the department LAN):
//
//	GETVS <dataset> <rRRcCC>  -> OK <class> <len>\n<frame> | ERR <msg>
//	MOVE <theta> <phi>        -> OK
//	STATS                     -> OK <hits> <lan> <wan> <staged>

// ClientAgentServer exposes a ClientAgent to remote clients over TCP. One
// client agent can serve multiple clients (paper section 3.5), which is
// why requests are handled concurrently per connection.
type ClientAgentServer struct {
	Agent   *ClientAgent
	Dataset string

	mu  sync.Mutex
	lis net.Listener
}

// NewClientAgentServer wraps an agent for network service.
func NewClientAgentServer(ca *ClientAgent, dataset string) (*ClientAgentServer, error) {
	if ca == nil {
		return nil, fmt.Errorf("agent: nil client agent")
	}
	if dataset == "" {
		return nil, fmt.Errorf("agent: empty dataset")
	}
	return &ClientAgentServer{Agent: ca, Dataset: dataset}, nil
}

// ListenAndServe starts serving on addr and returns the bound address.
func (s *ClientAgentServer) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.lis = l
	s.mu.Unlock()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go s.handle(c)
		}
	}()
	return l.Addr().String(), nil
}

// Close stops the listener.
func (s *ClientAgentServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis != nil {
		return s.lis.Close()
	}
	return nil
}

func (s *ClientAgentServer) handle(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 64*1024)
	bw := bufio.NewWriterSize(c, 64*1024)
	for {
		line, err := br.ReadString('\n')
		if err != nil || len(line) > 1024 {
			return
		}
		f := strings.Fields(strings.TrimSpace(line))
		keep := s.dispatch(bw, f)
		if bw.Flush() != nil || !keep {
			return
		}
	}
}

func (s *ClientAgentServer) dispatch(bw *bufio.Writer, f []string) bool {
	switch {
	case len(f) == 3 && f[0] == "GETVS":
		if f[1] != s.Dataset {
			fmt.Fprintf(bw, "ERR unknown dataset %s\n", f[1])
			return true
		}
		id, err := ParseViewSetKey(f[2])
		if err != nil {
			fmt.Fprintf(bw, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
			return true
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		frame, rep, err := s.Agent.GetViewSet(ctx, id)
		cancel()
		if err != nil {
			fmt.Fprintf(bw, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
			return true
		}
		fmt.Fprintf(bw, "OK %s %d\n", rep.Class, len(frame))
		bw.Write(frame)
		return true
	case len(f) == 3 && f[0] == "MOVE":
		theta, err1 := strconv.ParseFloat(f[1], 64)
		phi, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			fmt.Fprintf(bw, "ERR bad angles\n")
			return true
		}
		s.Agent.OnUserMove(geom.Spherical{Theta: theta, Phi: phi})
		fmt.Fprintf(bw, "OK\n")
		return true
	case len(f) == 1 && f[0] == "STATS":
		st := s.Agent.Stats()
		fmt.Fprintf(bw, "OK %d %d %d %d\n", st.Hits, st.LANFetches, st.WANFetches, st.Staged)
		return true
	default:
		fmt.Fprintf(bw, "ERR bad request\n")
		return false
	}
}

// RemoteSource is a ViewSetSource backed by a remote client agent. It
// keeps one persistent connection per concurrent request via a small pool.
type RemoteSource struct {
	Addr    string
	Dataset string
	Dialer  ibp.Dialer
	Timeout time.Duration
}

var _ ViewSetSource = (*RemoteSource)(nil)

func (r *RemoteSource) dial() (net.Conn, error) {
	d := r.Dialer
	if d == nil {
		d = ibp.NetDialer{}
	}
	conn, err := d.Dial(r.Addr)
	if err != nil {
		return nil, err
	}
	timeout := r.Timeout
	if timeout == 0 {
		timeout = 2 * time.Minute
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	return conn, nil
}

// GetViewSet implements ViewSetSource over the wire.
func (r *RemoteSource) GetViewSet(ctx context.Context, id lightfield.ViewSetID) ([]byte, AccessReport, error) {
	start := time.Now()
	rep := AccessReport{ID: id}
	conn, err := r.dial()
	if err != nil {
		return nil, rep, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	fmt.Fprintf(conn, "GETVS %s %s\n", r.Dataset, id)
	br := bufio.NewReaderSize(conn, 64*1024)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, rep, fmt.Errorf("agent: remote getvs: %w", err)
	}
	f := strings.Fields(strings.TrimSpace(line))
	if len(f) >= 1 && f[0] == "ERR" {
		return nil, rep, fmt.Errorf("agent: remote getvs: %s", strings.Join(f[1:], " "))
	}
	if len(f) != 3 || f[0] != "OK" {
		return nil, rep, fmt.Errorf("agent: bad getvs response %q", line)
	}
	switch f[1] {
	case AccessHit.String():
		rep.Class = AccessHit
	case AccessLANDepot.String():
		rep.Class = AccessLANDepot
	case AccessWAN.String():
		rep.Class = AccessWAN
	case AccessEdge.String():
		rep.Class = AccessEdge
	default:
		return nil, rep, fmt.Errorf("agent: unknown access class %q", f[1])
	}
	n, err := strconv.Atoi(f[2])
	if err != nil || n <= 0 || n > 256<<20 {
		return nil, rep, fmt.Errorf("agent: bad getvs length")
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(br, frame); err != nil {
		return nil, rep, err
	}
	rep.Bytes = n
	rep.Comm = time.Since(start)
	return frame, rep, nil
}

// OnUserMove implements ViewSetSource; errors are dropped (cursor updates
// are advisory).
func (r *RemoteSource) OnUserMove(sp geom.Spherical) {
	conn, err := r.dial()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(conn, "MOVE %g %g\n", sp.Theta, sp.Phi)
	_, _ = bufio.NewReader(conn).ReadString('\n')
}
