// Package agent implements the two runtime brokers of the streaming model
// (paper Figure 3): the server agent, which renders view sets on demand,
// uploads them to server depots and registers them with the DVS; and the
// client agent, which serves clients from an LRU cache, prefetches along
// the quadrant policy, and aggressively prestages the database to a LAN
// depot with third-party copies.
//
// Both agents are instrumented through internal/obs: the client agent
// wraps every fetch in an agent.getviewset span with resolve/download/
// stage children and records per-class latency, cache hit/miss, and
// prefetch-usefulness metrics; RegisterMetrics bridges the per-instance
// Stats counters onto a registry for the /metrics endpoint.
package agent

import (
	"container/list"
	"fmt"
	"sync"
)

// LRU is a byte-budget LRU cache from string keys to byte slices. Entries
// may be pinned to exempt them from eviction (e.g. the client's current
// view set). It is safe for concurrent use.
type LRU struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	// onEvict, when set, is called with each key the cache drops (budget
	// evictions and explicit Removes), outside the cache lock.
	onEvict func(key string)

	hits, misses, evictions int64
}

type lruEntry struct {
	key    string
	val    []byte
	pinned bool
}

// NewLRU creates a cache holding at most capacity bytes of values.
func NewLRU(capacity int64) (*LRU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("agent: non-positive cache capacity %d", capacity)
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}, nil
}

// Get returns the cached value and whether it was present, refreshing
// recency. The returned slice must not be modified by callers.
func (c *LRU) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Contains reports presence without affecting recency or stats.
func (c *LRU) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// SetOnEvict registers fn to be called with each key the cache drops,
// whether by budget eviction or explicit Remove. The callback runs after
// the cache lock is released, so it may take other locks (the client
// agent uses it to clear prefetch-provenance marks for frames that left
// the cache unconsumed).
func (c *LRU) SetOnEvict(fn func(key string)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// notifyEvicted runs the eviction callback outside the lock.
func (c *LRU) notifyEvicted(keys []string) {
	if len(keys) == 0 {
		return
	}
	c.mu.Lock()
	fn := c.onEvict
	c.mu.Unlock()
	if fn == nil {
		return
	}
	for _, k := range keys {
		fn(k)
	}
}

// Put inserts or replaces a value, evicting least-recently-used unpinned
// entries as needed. Values larger than the whole capacity are rejected.
func (c *LRU) Put(key string, val []byte) error {
	if int64(len(val)) > c.capacity {
		return fmt.Errorf("agent: value of %d bytes exceeds cache capacity %d", len(val), c.capacity)
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.used += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&lruEntry{key: key, val: val})
		c.items[key] = el
		c.used += int64(len(val))
	}
	evicted := c.evictLocked()
	c.mu.Unlock()
	c.notifyEvicted(evicted)
	return nil
}

// evictLocked removes unpinned LRU entries until within budget, returning
// the evicted keys for the post-unlock callback.
func (c *LRU) evictLocked() []string {
	var evicted []string
	el := c.ll.Back()
	for c.used > c.capacity && el != nil {
		prev := el.Prev()
		e := el.Value.(*lruEntry)
		if !e.pinned {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.used -= int64(len(e.val))
			c.evictions++
			evicted = append(evicted, e.key)
		}
		el = prev
	}
	return evicted
}

// Pin marks a key as non-evictable. Pinning an absent key is a no-op and
// returns false.
func (c *LRU) Pin(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	el.Value.(*lruEntry).pinned = true
	return true
}

// Unpin clears the pin and re-applies the budget.
func (c *LRU) Unpin(key string) {
	c.mu.Lock()
	var evicted []string
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).pinned = false
		evicted = c.evictLocked()
	}
	c.mu.Unlock()
	c.notifyEvicted(evicted)
}

// Remove deletes a key if present.
func (c *LRU) Remove(key string) {
	c.mu.Lock()
	removed := false
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.used -= int64(len(e.val))
		removed = true
	}
	c.mu.Unlock()
	if removed {
		c.notifyEvicted([]string{key})
	}
}

// CacheStats is a point-in-time view of cache accounting.
type CacheStats struct {
	Capacity, Used          int64
	Entries                 int
	Hits, Misses, Evictions int64
}

// Stats returns current accounting.
func (c *LRU) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Used:      c.used,
		Entries:   len(c.items),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
