package agent

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lonviz/internal/geom"
	"lonviz/internal/lightfield"
	"lonviz/internal/render"
)

// ViewSetSource is what a Viewer needs from its client agent: the
// in-process *ClientAgent implements it, and so does the remote TCP proxy.
type ViewSetSource interface {
	GetViewSet(ctx context.Context, id lightfield.ViewSetID) ([]byte, AccessReport, error)
	OnUserMove(sp geom.Spherical)
}

// AccessRecord is the client-side view of one view set access — the
// quantity plotted in Figures 8-12: Comm is the communication latency
// (Figure 12), Decompress the zlib inflation time (Figure 8), and Total
// the latency observed at the client (Figures 9-11).
type AccessRecord struct {
	ID         lightfield.ViewSetID
	Class      AccessClass
	Comm       time.Duration
	Decompress time.Duration
	Total      time.Duration
	Bytes      int
}

// Viewer is the client process (paper section 3.5): it takes user input,
// asks the client agent for the view set covering the current view angle,
// decompresses it, and renders novel views by pure table lookup. It keeps
// a small decoded-view-set cache — the paper notes low-resolution devices
// need none, while workstations want "some level of local caching".
type Viewer struct {
	P      lightfield.Params
	Source ViewSetSource
	// MaxDecoded bounds the decoded view set cache (default 4; 1 models a
	// PDA holding only the current view set).
	MaxDecoded int

	mu      sync.Mutex
	decoded map[lightfield.ViewSetID]*lightfield.ViewSet
	order   []lightfield.ViewSetID // FIFO for eviction
	current lightfield.ViewSetID
	records []AccessRecord
}

// NewViewer validates params and builds a viewer.
func NewViewer(p lightfield.Params, src ViewSetSource) (*Viewer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("agent: viewer needs a view set source")
	}
	return &Viewer{P: p, Source: src, MaxDecoded: 4, decoded: make(map[lightfield.ViewSetID]*lightfield.ViewSet)}, nil
}

// MoveTo processes one cursor movement: it informs the agent (driving
// prefetch and staging order), and if the new view angle leaves the
// current view set, requests and decompresses the needed one. The returned
// record reflects what the user experienced; moves within the already
// decoded view set return a zero-latency record with Class AccessHit.
func (v *Viewer) MoveTo(ctx context.Context, sp geom.Spherical) (AccessRecord, error) {
	v.Source.OnUserMove(sp)
	i, j := v.P.NearestCamera(sp)
	id := v.P.ViewSetOf(i, j)

	v.mu.Lock()
	_, have := v.decoded[id]
	v.mu.Unlock()
	if have {
		rec := AccessRecord{ID: id, Class: AccessHit}
		v.mu.Lock()
		v.current = id
		v.records = append(v.records, rec)
		v.mu.Unlock()
		return rec, nil
	}

	start := time.Now()
	// Streaming fast path: when the source can deliver bytes as extents
	// verify, inflate while the download is still in flight. Decompress is
	// then the residual tail after the last byte arrived (Total − Comm),
	// not a serialized phase. A stream failure falls back to the buffered
	// path below rather than failing the move.
	if src, ok := v.Source.(ViewSetStreamer); ok {
		if rec, ok := v.moveToStreaming(ctx, src, id, start); ok {
			return rec, nil
		}
	}
	frame, rep, err := v.Source.GetViewSet(ctx, id)
	if err != nil {
		return AccessRecord{}, err
	}
	dstart := time.Now()
	vs, err := lightfield.DecodeViewSet(frame, v.P)
	if err != nil {
		return AccessRecord{}, fmt.Errorf("agent: decoding view set %v: %w", id, err)
	}
	dElapsed := time.Since(dstart)
	rec := AccessRecord{
		ID:         id,
		Class:      rep.Class,
		Comm:       rep.Comm,
		Decompress: dElapsed,
		Total:      time.Since(start),
		Bytes:      rep.Bytes,
	}
	v.mu.Lock()
	v.insertDecoded(id, vs)
	v.current = id
	v.records = append(v.records, rec)
	v.mu.Unlock()
	return rec, nil
}

// moveToStreaming attempts the decompress-while-downloading path; false
// means the caller should retry via the buffered path.
func (v *Viewer) moveToStreaming(ctx context.Context, src ViewSetStreamer, id lightfield.ViewSetID, start time.Time) (AccessRecord, bool) {
	stream, err := src.GetViewSetStream(ctx, id)
	if err != nil {
		return AccessRecord{}, false
	}
	vs, derr := lightfield.DecodeViewSetFrom(stream.Reader, v.P)
	rep, rerr := stream.Report()
	if derr != nil || rerr != nil {
		return AccessRecord{}, false
	}
	total := time.Since(start)
	dec := total - rep.Comm
	if dec < 0 {
		dec = 0
	}
	rec := AccessRecord{
		ID:         id,
		Class:      rep.Class,
		Comm:       rep.Comm,
		Decompress: dec,
		Total:      total,
		Bytes:      rep.Bytes,
	}
	v.mu.Lock()
	v.insertDecoded(id, vs)
	v.current = id
	v.records = append(v.records, rec)
	v.mu.Unlock()
	return rec, true
}

// insertDecoded adds to the decoded cache with FIFO eviction; caller holds
// the lock.
func (v *Viewer) insertDecoded(id lightfield.ViewSetID, vs *lightfield.ViewSet) {
	maxN := v.MaxDecoded
	if maxN <= 0 {
		maxN = 1
	}
	if _, ok := v.decoded[id]; !ok {
		v.order = append(v.order, id)
	}
	v.decoded[id] = vs
	for len(v.order) > maxN {
		old := v.order[0]
		v.order = v.order[1:]
		if old != id {
			delete(v.decoded, old)
		}
	}
}

// ViewSet implements lightfield.Provider over the decoded cache, so the
// viewer itself is the renderer's data source.
func (v *Viewer) ViewSet(id lightfield.ViewSetID) (*lightfield.ViewSet, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vs, ok := v.decoded[id]
	return vs, ok
}

// Render reconstructs the novel view from direction sp at the given
// display resolution using whatever view sets are decoded locally.
func (v *Viewer) Render(sp geom.Spherical, dist float64, res int) (*render.Image, lightfield.RenderStats, error) {
	r, err := lightfield.NewRenderer(v.P, v)
	if err != nil {
		return nil, lightfield.RenderStats{}, err
	}
	cam, err := v.P.ViewerCamera(sp, dist, res)
	if err != nil {
		return nil, lightfield.RenderStats{}, err
	}
	return r.RenderView(cam)
}

// Records returns a copy of all access records so far, in order.
func (v *Viewer) Records() []AccessRecord {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]AccessRecord, len(v.records))
	copy(out, v.records)
	return out
}

// Current returns the view set the viewer considers current.
func (v *Viewer) Current() lightfield.ViewSetID {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.current
}
