package agent

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestLRUValidation(t *testing.T) {
	if _, err := NewLRU(0); err == nil {
		t.Error("zero capacity accepted")
	}
	c, err := NewLRU(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("big", make([]byte, 11)); err == nil {
		t.Error("oversize value accepted")
	}
}

func TestLRUBasics(t *testing.T) {
	c, _ := NewLRU(100)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", []byte("hello"))
	v, ok := c.Get("a")
	if !ok || string(v) != "hello" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	// Replace updates size accounting.
	c.Put("a", []byte("a much longer value than before"))
	st := c.Stats()
	if st.Used != 31 || st.Entries != 1 {
		t.Errorf("stats after replace = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c, _ := NewLRU(30)
	c.Put("a", make([]byte, 10))
	c.Put("b", make([]byte, 10))
	c.Put("c", make([]byte, 10))
	c.Get("a") // a is now most recent; b is LRU
	c.Put("d", make([]byte, 10))
	if c.Contains("b") {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Errorf("%s missing", k)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestLRUPinning(t *testing.T) {
	c, _ := NewLRU(20)
	c.Put("keep", make([]byte, 10))
	if !c.Pin("keep") {
		t.Fatal("pin failed")
	}
	if c.Pin("absent") {
		t.Error("pinning absent key reported success")
	}
	c.Put("b", make([]byte, 10))
	c.Put("c", make([]byte, 10)) // would evict "keep" if unpinned
	if !c.Contains("keep") {
		t.Error("pinned entry evicted")
	}
	if c.Contains("b") {
		t.Error("unpinned LRU entry survived over pinned")
	}
	c.Unpin("keep")
	c.Put("d", make([]byte, 10))
	// After unpinning, "keep" becomes evictable again (it is LRU now).
	if c.Contains("keep") && c.Stats().Used > 20 {
		t.Error("budget exceeded after unpin")
	}
}

func TestLRURemove(t *testing.T) {
	c, _ := NewLRU(100)
	c.Put("a", make([]byte, 40))
	c.Remove("a")
	if c.Contains("a") || c.Stats().Used != 0 {
		t.Error("remove failed")
	}
	c.Remove("a") // idempotent
}

func TestLRUHitMissCounters(t *testing.T) {
	c, _ := NewLRU(100)
	c.Put("a", []byte("x"))
	c.Get("a")
	c.Get("a")
	c.Get("nope")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("counters = %+v", st)
	}
}

// Property (DESIGN.md): size accounting always matches contents and never
// exceeds capacity, across random operation sequences with pinning.
func TestLRUAccountingQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := NewLRU(256)
		if err != nil {
			return false
		}
		pinned := 0
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%16)
			switch op % 5 {
			case 0, 1:
				c.Put(key, make([]byte, int(op%64)+1))
			case 2:
				c.Get(key)
			case 3:
				// Bound pins so the budget stays satisfiable.
				if pinned < 3 && c.Pin(key) {
					pinned++
				}
			case 4:
				c.Remove(key)
			}
			st := c.Stats()
			if st.Used < 0 {
				return false
			}
		}
		// Unpin everything: budget must then hold.
		for i := 0; i < 16; i++ {
			c.Unpin(fmt.Sprintf("k%d", i))
		}
		st := c.Stats()
		return st.Used <= st.Capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c, _ := NewLRU(1 << 16)
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("g%d-%d", g, i%20)
				c.Put(key, make([]byte, 64))
				c.Get(key)
			}
			done <- true
		}(g)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	st := c.Stats()
	if st.Used > st.Capacity {
		t.Errorf("budget exceeded: %+v", st)
	}
}
