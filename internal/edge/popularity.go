package edge

import (
	"sort"
	"sync"
	"time"
)

// HotItem is one entry of the decayed popularity ranking.
type HotItem struct {
	// Hint is the view-set identifier recorded at access time.
	Hint string
	// Count is the exponentially decayed access count: an entry accessed
	// once per half-life settles near 2, a cold entry decays toward zero.
	Count float64
}

// Popularity tracks windowed view-set access counts with exponential
// decay: recent demand dominates, stale hot spots fade with the
// configured half-life. It is the edge's demand signal — lftop's hot-set
// pane reads it through the edge.hot.* snapshot keys and the steward's
// hot-set replicator uses it to decide what to push toward the edge ahead
// of demand.
type Popularity struct {
	halfLife time.Duration
	now      func() time.Time // injectable for tests

	mu     sync.Mutex
	counts map[string]float64
	stamp  time.Time // decay applied up to here
}

// NewPopularity builds a tracker with the given decay half-life.
func NewPopularity(halfLife time.Duration) *Popularity {
	if halfLife <= 0 {
		halfLife = 30 * time.Second
	}
	return &Popularity{halfLife: halfLife, now: time.Now, counts: make(map[string]float64)}
}

// decayLocked folds elapsed time into the counts. Entries that have
// decayed below noise are dropped so the map stays bounded by the set of
// recently active view sets.
func (p *Popularity) decayLocked(now time.Time) {
	if p.stamp.IsZero() {
		p.stamp = now
		return
	}
	dt := now.Sub(p.stamp)
	if dt <= 0 {
		return
	}
	p.stamp = now
	// 2^(-dt/halfLife) without math.Pow in the hot path: halve per whole
	// half-life, then linear-interpolate the remainder (accurate enough
	// for a ranking signal).
	factor := 1.0
	for dt >= p.halfLife {
		factor /= 2
		dt -= p.halfLife
	}
	factor *= 1 - 0.5*float64(dt)/float64(p.halfLife)
	for k, v := range p.counts {
		v *= factor
		if v < 0.01 {
			delete(p.counts, k)
			continue
		}
		p.counts[k] = v
	}
}

// Record counts one access of hint (empty hints are ignored).
func (p *Popularity) Record(hint string) {
	if hint == "" {
		return
	}
	p.mu.Lock()
	p.decayLocked(p.now())
	p.counts[hint]++
	p.mu.Unlock()
}

// Top returns the n hottest view sets, hottest first (ties broken by hint
// for determinism).
func (p *Popularity) Top(n int) []HotItem {
	p.mu.Lock()
	p.decayLocked(p.now())
	out := make([]HotItem, 0, len(p.counts))
	for k, v := range p.counts {
		out = append(out, HotItem{Hint: k, Count: v})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Hint < out[j].Hint
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
