package edge

import (
	"context"
	"fmt"
	"strings"

	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
)

// Composite capabilities route one extent read through the edge tier: the
// edge replica's read capability encodes the origin depot and its real
// read capability, so the edge can fill on a miss without any side-channel
// mapping state. Format:
//
//	edge!<hint>!<origin-depot>!<origin-read-cap>
//
// The hint names the view set being read (popularity tracking and hot-set
// replication key on it) and must not contain '!'; the origin read cap is
// the final segment, so origin capability syntax is never constrained.
const capScheme = "edge"

// Cap is a decoded composite edge capability.
type Cap struct {
	// Hint names the view set this extent belongs to (popularity key).
	Hint string
	// OriginDepot is the authoritative depot's host:port.
	OriginDepot string
	// OriginCap is the read capability valid at OriginDepot.
	OriginCap string
}

// Encode renders the composite capability string.
func (c Cap) Encode() string {
	return capScheme + "!" + c.Hint + "!" + c.OriginDepot + "!" + c.OriginCap
}

// ParseCap decodes a composite capability; ok is false for anything that
// is not one (a plain depot read cap, for instance).
func ParseCap(s string) (Cap, bool) {
	parts := strings.SplitN(s, "!", 4)
	if len(parts) != 4 || parts[0] != capScheme || parts[2] == "" || parts[3] == "" {
		return Cap{}, false
	}
	return Cap{Hint: parts[1], OriginDepot: parts[2], OriginCap: parts[3]}, true
}

// RewriteExNode returns a copy of ex with an edge-tier replica prepended
// to every extent: depot = edgeAddr, read cap = the composite capability
// naming the extent's first origin replica, alloc offset = the origin's
// (the edge forwards offsets verbatim). Origin replicas stay in place for
// failover, and the edge replica carries no manage cap, so lease
// refresh/free passes skip it. Callers combine this with a Prefer bias
// that ranks edgeAddr first to make the edge the preferred replica.
//
// The first origin replica is chosen deterministically: all clients
// resolve the same exNode document from the DVS, so they produce the same
// composite capability and share one cache entry per extent.
func RewriteExNode(ex *exnode.ExNode, edgeAddr, hint string) *exnode.ExNode {
	if ex == nil || edgeAddr == "" {
		return ex
	}
	out := ex.Clone()
	for i := range out.Extents {
		x := &out.Extents[i]
		if len(x.Replicas) == 0 {
			continue
		}
		if x.Replicas[0].Depot == edgeAddr {
			continue // already rewritten
		}
		origin := x.Replicas[0]
		edgeRep := exnode.Replica{
			Depot:       edgeAddr,
			ReadCap:     Cap{Hint: hint, OriginDepot: origin.Depot, OriginCap: origin.ReadCap}.Encode(),
			AllocOffset: origin.AllocOffset,
		}
		x.Replicas = append([]exnode.Replica{edgeRep}, x.Replicas...)
	}
	return out
}

// Warm pulls every extent of ex through the edge at edgeAddr, filling the
// edge cache ahead of client demand (the steward's hot-set replication
// primitive). ex is the origin exNode; it is rewritten here. dialer shapes
// the connection to the edge (nil: plain TCP). Bytes are verified against
// the extent checksums so a corrupt warm surfaces instead of poisoning
// later reads.
func Warm(ctx context.Context, ex *exnode.ExNode, edgeAddr, hint string, dialer ibp.Dialer) error {
	rew := RewriteExNode(ex, edgeAddr, hint)
	cl := &ibp.Client{Addr: edgeAddr, Dialer: dialer}
	for _, x := range rew.SortedExtents() {
		if len(x.Replicas) == 0 || x.Replicas[0].Depot != edgeAddr {
			return fmt.Errorf("edge: warm %q: extent at %d has no edge replica", hint, x.Offset)
		}
		rep := x.Replicas[0]
		data, err := cl.Load(ctx, rep.ReadCap, rep.AllocOffset, x.Length)
		if err != nil {
			return fmt.Errorf("edge: warm %q: extent at %d: %w", hint, x.Offset, err)
		}
		if err := x.VerifyData(data); err != nil {
			return fmt.Errorf("edge: warm %q: %w", hint, err)
		}
	}
	return nil
}
