package edge

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
	"lonviz/internal/obs"
)

// startDepot runs an in-memory depot holding payload and returns its
// address plus the read capability and a teardown.
func startDepot(t *testing.T, payload []byte) (addr, readCap string, srv *ibp.Server) {
	t.Helper()
	depot, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 20, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv = ibp.NewServer(depot)
	addr, err = srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	caps, err := depot.Allocate(int64(len(payload)), time.Hour, ibp.Stable)
	if err != nil {
		t.Fatal(err)
	}
	if err := depot.Store(caps.Write, 0, payload); err != nil {
		t.Fatal(err)
	}
	return addr, caps.Read, srv
}

func TestCapRoundTrip(t *testing.T) {
	orig := Cap{Hint: "r01c02", OriginDepot: "10.0.0.7:6714", OriginCap: "ibp!weird!cap/with=stuff"}
	got, ok := ParseCap(orig.Encode())
	if !ok || got != orig {
		t.Fatalf("roundtrip: got %+v ok=%v, want %+v", got, ok, orig)
	}
	if _, ok := ParseCap("plain-depot-cap"); ok {
		t.Fatal("plain cap parsed as composite")
	}
	if _, ok := ParseCap("edge!h!!cap"); ok {
		t.Fatal("empty origin depot accepted")
	}
}

func TestEdgeServeHitMissAndPopularity(t *testing.T) {
	payload := bytes.Repeat([]byte("viewset-bytes."), 64)
	depotAddr, readCap, _ := startDepot(t, payload)

	reg := obs.NewRegistry()
	cache, err := NewCache(CacheConfig{CapacityBytes: 1 << 20, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	esrv := NewServer(cache)
	esrv.Obs = reg
	edgeAddr, err := esrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer esrv.Close()

	comp := Cap{Hint: "r00c01", OriginDepot: depotAddr, OriginCap: readCap}.Encode()
	cl := &ibp.Client{Addr: edgeAddr}
	ctx := context.Background()

	got, err := cl.Load(ctx, comp, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("first load (miss+fill): %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fill returned wrong bytes")
	}
	got, err = cl.Load(ctx, comp, 0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("second load (hit): %v", err)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 fill", st)
	}
	top := cache.Popularity().Top(4)
	if len(top) != 1 || top[0].Hint != "r00c01" || top[0].Count < 1.5 {
		t.Fatalf("popularity top = %+v, want r00c01 with ~2 accesses", top)
	}

	// Plain depot caps are refused: the edge serves only composite reads.
	if _, err := cl.Load(ctx, readCap, 0, 8); err == nil {
		t.Fatal("edge served a non-composite capability")
	}
	// STATUS reports capacity/used/entries like a depot.
	if capacity, used, entries, err := cl.Status(ctx); err != nil || capacity != 1<<20 || used == 0 || entries != 1 {
		t.Fatalf("STATUS = (%d, %d, %d, %v), want capacity/used/entries", capacity, used, entries, err)
	}
}

func TestEdgeFillFailureFallsThrough(t *testing.T) {
	payload := []byte("some bytes")
	depotAddr, readCap, depotSrv := startDepot(t, payload)
	cache, err := NewCache(CacheConfig{CapacityBytes: 1 << 20, FillTimeout: 2 * time.Second, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	esrv := NewServer(cache)
	edgeAddr, err := esrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer esrv.Close()

	depotSrv.Close() // origin down: fills must fail, not wedge
	comp := Cap{Hint: "r00c00", OriginDepot: depotAddr, OriginCap: readCap}.Encode()
	cl := &ibp.Client{Addr: edgeAddr}
	if _, err := cl.Load(context.Background(), comp, 0, int64(len(payload))); err == nil {
		t.Fatal("fill against a dead origin succeeded")
	}
	if st := cache.Stats(); st.FillErrors == 0 {
		t.Fatalf("stats = %+v, want fill errors recorded", st)
	}
}

func TestEdgeSingleFlightCoalescesFills(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 4096)
	depotAddr, readCap, _ := startDepot(t, payload)
	cache, err := NewCache(CacheConfig{CapacityBytes: 1 << 20, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	comp := Cap{Hint: "r01c01", OriginDepot: depotAddr, OriginCap: readCap}

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _, err := cache.Load(context.Background(), comp, 0, int64(len(payload)))
			if err == nil && !bytes.Equal(data, payload) {
				err = errors.New("wrong bytes")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	// All callers were misses (nothing cached when they checked), but the
	// single-flight group must not have filled once per caller.
	if st := cache.Stats(); st.Fills >= callers {
		t.Fatalf("stats = %+v, want fills coalesced below %d callers", st, callers)
	}
}

func TestEdgeCacheEviction(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 1024)
	depotAddr, readCap, _ := startDepot(t, payload)
	// One shard barely two entries wide forces evictions.
	cache, err := NewCache(CacheConfig{CapacityBytes: 2500, Shards: 1, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		comp := Cap{Hint: fmt.Sprintf("r00c%02d", i), OriginDepot: depotAddr, OriginCap: readCap}
		// Distinct ranges make distinct cache keys.
		if _, _, err := cache.Load(ctx, comp, int64(i), 1000); err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions under a 2.5KB budget", st)
	}
	if st.Used > 2500 {
		t.Fatalf("stats = %+v, want used within budget", st)
	}
}

func TestRewriteExNodeAndWarm(t *testing.T) {
	payload := bytes.Repeat([]byte("warm-me."), 128)
	depotAddr, readCap, _ := startDepot(t, payload)
	ex := &exnode.ExNode{
		Name:   "r02c03",
		Length: int64(len(payload)),
		Extents: []exnode.Extent{{
			Offset: 0, Length: int64(len(payload)),
			Checksum: exnode.ChecksumOf(payload),
			Replicas: []exnode.Replica{{Depot: depotAddr, ReadCap: readCap, ManageCap: "m"}},
		}},
	}
	cache, err := NewCache(CacheConfig{CapacityBytes: 1 << 20, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	esrv := NewServer(cache)
	edgeAddr, err := esrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer esrv.Close()

	rew := RewriteExNode(ex, edgeAddr, "r02c03")
	if err := rew.Validate(); err != nil {
		t.Fatalf("rewritten exNode invalid: %v", err)
	}
	rep := rew.Extents[0].Replicas[0]
	if rep.Depot != edgeAddr || rep.ManageCap != "" {
		t.Fatalf("edge replica = %+v, want edge depot with no manage cap", rep)
	}
	if len(rew.Extents[0].Replicas) != 2 {
		t.Fatal("origin replica lost during rewrite")
	}
	if ex.Extents[0].Replicas[0].Depot != depotAddr {
		t.Fatal("rewrite mutated the source exNode")
	}
	// Idempotent: a second rewrite adds nothing.
	if again := RewriteExNode(rew, edgeAddr, "r02c03"); len(again.Extents[0].Replicas) != 2 {
		t.Fatal("second rewrite duplicated the edge replica")
	}

	if err := Warm(context.Background(), ex, edgeAddr, "r02c03", nil); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if st := cache.Stats(); st.Fills != 1 || st.Entries != 1 {
		t.Fatalf("stats after warm = %+v, want the extent cached", st)
	}
	// A client read after the warm is a pure edge hit.
	cl := &ibp.Client{Addr: edgeAddr}
	got, err := cl.Load(context.Background(), rep.ReadCap, rep.AllocOffset, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-warm load: %v", err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want post-warm read to hit", st)
	}
}
