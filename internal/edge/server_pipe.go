package edge

// Pipelined (tagged multiplexed) mode for the edge server. The edge
// speaks the same PIPELINE handshake and framing as depots, so the
// client agent's PipePool treats an edge address exactly like a depot
// address: one persistent connection, all stripes of a view set in
// flight at once. Every edge verb is payload-free, which makes this loop
// a strict simplification of the depot's — nothing to consume before
// dispatch, and sheds always keep the connection.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"lonviz/internal/ibp"
	"lonviz/internal/obs"
	"lonviz/internal/overload"
)

// pipelineGrant validates a PIPELINE handshake, returning the granted
// window or a refusal message (sent as ERR PROTO → client goes serial).
func (s *Server) pipelineGrant(f []string) (int, string) {
	if s.PipelineWindow < 0 {
		return 0, "pipelining disabled"
	}
	if len(f) != 2 {
		return 0, "PIPELINE wants 1 arg"
	}
	req, err := strconv.Atoi(f[1])
	if err != nil || req <= 0 {
		return 0, "bad PIPELINE window"
	}
	max := s.PipelineWindow
	if max == 0 {
		max = ibp.DefaultPipelineWindow
	}
	return min(req, max), ""
}

// tagWriter serializes tagged responses onto one connection.
type tagWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

func (w *tagWriter) write(tag uint64, head, body []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	fmt.Fprintf(w.bw, "T%d ", tag)
	if _, err := w.bw.Write(head); err != nil {
		w.err = err
		return err
	}
	if len(body) > 0 {
		if _, err := w.bw.Write(body); err != nil {
			w.err = err
			return err
		}
	}
	w.err = w.bw.Flush()
	return w.err
}

// servePipelined runs the tagged loop until the client hangs up or
// commits a protocol error.
func (s *Server) servePipelined(c net.Conn, br *bufio.Reader, window int) {
	reg := s.registry()
	tw := &tagWriter{bw: bufio.NewWriterSize(c, 64*1024)}
	slots := make(chan struct{}, window)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		line, err := readLine(br)
		if err != nil {
			return
		}
		f := strings.Fields(line)
		f, tc, traced := obs.StripTraceToken(f)
		f, budget, hasBudget := obs.StripDeadlineToken(f)
		f, tag, tagged := ibp.StripTagToken(f)
		if !tagged || len(f) == 0 {
			return // untagged request on a pipelined connection: fatal
		}
		slots <- struct{}{}
		wg.Add(1)
		go func(f []string, tag uint64, tc obs.TraceContext, traced bool,
			budget time.Duration, hasBudget bool) {
			defer wg.Done()
			defer func() { <-slots }()
			s.servePipelinedOne(tw, reg, c, f, tag, tc, traced, budget, hasBudget)
		}(f, tag, tc, traced, budget, hasBudget)
	}
}

func (s *Server) servePipelinedOne(tw *tagWriter, reg *obs.Registry, c net.Conn,
	f []string, tag uint64, tc obs.TraceContext, traced bool,
	budget time.Duration, hasBudget bool) {
	verb := f[0]
	var span *obs.Span
	sctx := context.Background()
	if traced {
		sctx, span = s.tracer().StartSpan(obs.ContextWithRemote(sctx, tc), obs.SpanEdgeServe)
		span.SetAttr("op", verb)
		span.SetAttr("peer", c.RemoteAddr().String())
	}
	rctx, cancel := obs.DeadlineContext(sctx, budget, hasBudget)
	start := time.Now()
	var head, body []byte
	release, admitErr := s.acquire(rctx, reg)
	if admitErr != nil {
		reason := overload.Reason(admitErr)
		reg.Counter(obs.Label(obs.MEdgeShed, "reason", reason)).Inc()
		obs.DefaultLogger().Warn(context.Background(), obs.EvShed,
			"component", "edge", "reason", reason, "op", verb)
		head = errCodeLine(codeBusy, reason)
	} else {
		head, body = s.execTagged(rctx, f)
		release()
	}
	cancel()
	err := tw.write(tag, head, body)
	reg.Histogram(obs.Label(obs.MEdgeServeMs, "op", verb), obs.LatencyBucketsMs...).
		Observe(float64(time.Since(start)) / 1e6)
	if bytes.HasPrefix(head, []byte("ERR")) {
		span.SetAttr("err", "1")
	}
	span.Finish()
	if err != nil {
		c.Close()
	}
}

// execTagged executes one pipelined request. The LOAD body is the cached
// entry itself (immutable once published), written straight to the
// socket with no intermediate buffer.
func (s *Server) execTagged(ctx context.Context, f []string) (head, body []byte) {
	switch f[0] {
	case "LOAD":
		if len(f) != 4 {
			return errCodeLine(codeProto, "LOAD wants 3 args"), nil
		}
		offset, err1 := strconv.ParseInt(f[2], 10, 64)
		length, err2 := strconv.ParseInt(f[3], 10, 64)
		if err1 != nil || err2 != nil || length < 0 || length > maxTransfer {
			return errCodeLine(codeProto, "bad LOAD numbers"), nil
		}
		cp, ok := ParseCap(f[1])
		if !ok {
			return errCodeLine(codeNoCap, "not an edge composite capability"), nil
		}
		data, _, err := s.Cache.Load(ctx, cp, offset, length)
		if err != nil {
			return errCodeLine(codeInternal, "fill: "+err.Error()), nil
		}
		return []byte(fmt.Sprintf("OK %d\n", len(data))), data
	case "STATUS":
		if len(f) != 1 {
			return errCodeLine(codeProto, "STATUS wants no args"), nil
		}
		st := s.Cache.Stats()
		return []byte(fmt.Sprintf("OK %d %d %d\n", st.Capacity, st.Used, st.Entries)), nil
	default:
		return errCodeLine(codeProto, "unknown verb "+f[0]), nil
	}
}

// errCodeLine renders one "ERR <CODE> <msg>\n" response as bytes.
func errCodeLine(code, msg string) []byte {
	var buf bytes.Buffer
	writeErrCode(&buf, code, msg)
	return buf.Bytes()
}
