package edge

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"lonviz/internal/obs"
	"lonviz/internal/overload"
)

// Wire limits mirror the IBP protocol the edge speaks a subset of.
const (
	maxLineLen  = 4096
	maxTransfer = 64 << 20
)

// Wire error codes (the IBP client maps these back to its typed errors,
// so BUSY becomes ibp.ErrBusy and lors fails over to an origin replica
// without a health penalty).
const (
	codeNoCap    = "NOCAP"
	codeProto    = "PROTO"
	codeBusy     = "BUSY"
	codeInternal = "INTERNAL"
)

// Server exposes a Cache over the IBP LOAD/STATUS wire subset. A client
// agent holding a rewritten exNode talks to it exactly as it would to a
// depot: `LOAD <composite-cap> <offset> <length>` answered with
// `OK <len>` plus payload, errors answered with the IBP error line so the
// unmodified lors failover path handles edge outages by falling back to
// the origin replicas.
type Server struct {
	Cache *Cache
	// PipelineWindow caps the in-flight window granted to clients that
	// negotiate the IBP PIPELINE verb (the edge speaks the same tagged
	// multiplexed mode as depots, so one agent connection can stream a
	// whole view set of stripes without per-stripe round trips). 0 means
	// ibp.DefaultPipelineWindow; negative disables pipelining.
	PipelineWindow int
	// Admission bounds concurrent request execution like the depot's gate:
	// past the limit, requests shed with ERR BUSY and lors retries the
	// origin replica. nil admits everything but still sheds requests whose
	// propagated deadline budget is exhausted.
	Admission *overload.Gate
	// Logf logs server events; nil disables logging.
	Logf func(format string, args ...interface{})
	// Obs receives the edge.* serve metrics; nil records into obs.Default().
	Obs *obs.Registry
	// Tracer receives server-side spans for traced requests; nil records
	// into obs.DefaultTracer().
	Tracer *obs.Tracer

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool

	metricsOnce sync.Once
}

// NewServer wraps a cache.
func NewServer(c *Cache) *Server {
	return &Server{Cache: c, conns: make(map[net.Conn]bool)}
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) tracer() *obs.Tracer {
	if s.Tracer != nil {
		return s.Tracer
	}
	return obs.DefaultTracer()
}

func (s *Server) registry() *obs.Registry {
	if s.Obs != nil {
		return s.Obs
	}
	return obs.Default()
}

// initMetrics eagerly registers the shed family so /metrics shows it at
// zero on an idle edge (the check.sh smoke greps before traffic arrives).
func (s *Server) initMetrics() {
	s.metricsOnce.Do(func() {
		reg := s.registry()
		reg.Counter(obs.Label(obs.MEdgeShed, "reason", overload.ReasonQueueFull))
		reg.Counter(obs.MEdgeHits)
		reg.Counter(obs.MEdgeMisses)
		reg.Counter(obs.MEdgeFills)
	})
}

// Serve accepts connections on l until Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("edge: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.initMetrics()
	for {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = true
		s.mu.Unlock()
		go s.handle(c)
	}
}

// ListenAndServe listens on addr and serves in a new goroutine, returning
// the bound address (useful with ":0").
func (s *Server) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(l); err != nil {
			s.logf("edge server on %s stopped: %v", l.Addr(), err)
		}
	}()
	return l.Addr().String(), nil
}

// Close stops the listener and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = make(map[net.Conn]bool)
	return err
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) handle(c net.Conn) {
	defer c.Close()
	defer s.removeConn(c)
	defer func() {
		if r := recover(); r != nil {
			log.Printf("edge: panic handling %v: %v", c.RemoteAddr(), r)
		}
	}()
	reg := s.registry()
	s.initMetrics()
	br := bufio.NewReaderSize(c, 64*1024)
	ew := &respSniffer{w: c}
	bw := bufio.NewWriterSize(ew, 64*1024)
	for {
		line, err := readLine(br)
		if err != nil {
			return
		}
		// Trailing trace=/deadline= tokens ride the request line exactly as
		// on the depot protocol: strip both before argument-count checks,
		// parent this request's span under the caller's, and bound the
		// request context with the propagated budget.
		f := strings.Fields(line)
		f, tc, traced := obs.StripTraceToken(f)
		f, budget, hasBudget := obs.StripDeadlineToken(f)
		verb := ""
		if len(f) > 0 {
			verb = f[0]
		}
		var span *obs.Span
		sctx := context.Background()
		if traced {
			sctx, span = s.tracer().StartSpan(obs.ContextWithRemote(sctx, tc), obs.SpanEdgeServe)
			span.SetAttr("op", verb)
			span.SetAttr("peer", c.RemoteAddr().String())
		}
		// PIPELINE upgrades the connection to tagged multiplexed mode,
		// mirroring the depot handshake (see docs/PROTOCOL.md).
		if verb == "PIPELINE" {
			granted, grantErr := s.pipelineGrant(f)
			if grantErr != "" {
				writeErrCode(bw, codeProto, grantErr)
				span.Finish()
				bw.Flush()
				return
			}
			fmt.Fprintf(bw, "OK %d\n", granted)
			span.Finish()
			if bw.Flush() != nil {
				return
			}
			s.servePipelined(c, br, granted)
			return
		}
		rctx, cancel := obs.DeadlineContext(sctx, budget, hasBudget)
		ew.reset()
		start := time.Now()
		release, admitErr := s.acquire(rctx, reg)
		var keep bool
		if admitErr != nil {
			reason := overload.Reason(admitErr)
			reg.Counter(obs.Label(obs.MEdgeShed, "reason", reason)).Inc()
			obs.DefaultLogger().Warn(context.Background(), obs.EvShed,
				"component", "edge", "reason", reason, "op", verb)
			writeErrCode(bw, codeBusy, reason)
			// Unlike the depot, every edge verb is payload-free, so the
			// connection stays synchronized after a shed and is kept open.
			keep = true
		} else {
			keep = s.dispatch(rctx, bw, f)
			release()
		}
		cancel()
		flushErr := bw.Flush()
		reg.Histogram(obs.Label(obs.MEdgeServeMs, "op", verb), obs.LatencyBucketsMs...).
			Observe(float64(time.Since(start)) / 1e6)
		if ew.sawErr {
			span.SetAttr("err", "1")
		}
		span.Finish()
		if !keep || flushErr != nil {
			return
		}
	}
}

// acquire runs one request through admission control; with Admission nil
// it still sheds requests whose propagated budget is already exhausted.
func (s *Server) acquire(ctx context.Context, reg *obs.Registry) (func(), error) {
	g := s.Admission
	if g == nil {
		if ctx.Err() != nil {
			return nil, &overload.ShedError{Reason: overload.ReasonDeadline}
		}
		return func() {}, nil
	}
	release, err := g.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	return release, nil
}

// dispatch executes one request; the returned bool says whether to keep
// the connection (false after protocol-fatal errors).
func (s *Server) dispatch(ctx context.Context, bw *bufio.Writer, f []string) bool {
	if len(f) == 0 {
		writeErrCode(bw, codeProto, "empty request")
		return false
	}
	switch f[0] {
	case "LOAD":
		return s.doLoad(ctx, bw, f)
	case "STATUS":
		return s.doStatus(bw, f)
	default:
		// The edge is read-only: ALLOCATE/STORE/etc. belong on depots.
		writeErrCode(bw, codeProto, "unknown verb "+f[0])
		return false
	}
}

func (s *Server) doLoad(ctx context.Context, bw *bufio.Writer, f []string) bool {
	if len(f) != 4 {
		writeErrCode(bw, codeProto, "LOAD wants 3 args")
		return false
	}
	offset, err1 := strconv.ParseInt(f[2], 10, 64)
	length, err2 := strconv.ParseInt(f[3], 10, 64)
	if err1 != nil || err2 != nil || length < 0 || length > maxTransfer {
		writeErrCode(bw, codeProto, "bad LOAD numbers")
		return false
	}
	cp, ok := ParseCap(f[1])
	if !ok {
		writeErrCode(bw, codeNoCap, "not an edge composite capability")
		return true
	}
	data, _, err := s.Cache.Load(ctx, cp, offset, length)
	if err != nil {
		writeErrCode(bw, codeInternal, "fill: "+err.Error())
		return true
	}
	fmt.Fprintf(bw, "OK %d\n", len(data))
	bw.Write(data)
	return true
}

func (s *Server) doStatus(bw *bufio.Writer, f []string) bool {
	if len(f) != 1 {
		writeErrCode(bw, codeProto, "STATUS wants no args")
		return false
	}
	st := s.Cache.Stats()
	fmt.Fprintf(bw, "OK %d %d %d\n", st.Capacity, st.Used, st.Entries)
	return true
}

func writeErrCode(w io.Writer, code, msg string) {
	fmt.Fprintf(w, "ERR %s %s\n", code, sanitize(msg))
}

// sanitize keeps error messages single-line.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' || s[i] == '\r' {
			out = append(out, ' ')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// respSniffer classifies each response by its first flushed chunk.
type respSniffer struct {
	w      io.Writer
	wrote  bool
	sawErr bool
}

func (w *respSniffer) reset() { w.wrote, w.sawErr = false, false }

func (w *respSniffer) Write(p []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.sawErr = strings.HasPrefix(string(p[:min(3, len(p))]), "ERR")
	}
	return w.w.Write(p)
}

// readLine reads one \n-terminated line with a length cap.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", fmt.Errorf("edge: overlong request line")
	}
	return line, nil
}
