// Package edge implements the cooperative edge cache tier: a shared,
// multi-tenant read-through cache that sits between client agents and the
// depot pool, close to the consumers (Bethel et al.'s "network data cache"
// argument applied to the paper's view-set streaming). It speaks the IBP
// line protocol's LOAD/STATUS subset, so a rewritten exNode replica makes
// it a drop-in preferred replica for the existing lors download path: the
// first client to miss pulls the view set through the edge across the WAN,
// and every later client — any tenant, any agent — hits it at LAN cost.
//
// The cache core is a sharded, byte-capacity-bounded LRU with single-flight
// fills: concurrent misses on the same extent coalesce into one origin
// fetch. A popularity tracker (windowed access counts with exponential
// decay) rides every request and is exported through obs, so lftop, the
// TSDB, and the steward's hot-set replicator all see the same hot set.
package edge

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"lonviz/internal/ibp"
	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
	"lonviz/internal/singleflight"
)

// CacheConfig sizes and wires one edge cache.
type CacheConfig struct {
	// CapacityBytes bounds the total cached payload (required).
	CapacityBytes int64
	// Shards is the number of independent LRU shards (default 16, clamped
	// so every shard holds at least one typical extent).
	Shards int
	// Dialer shapes connections to origin depots on fills; nil means plain
	// TCP.
	Dialer ibp.Dialer
	// FillTimeout bounds one origin fill (default 30s). Fills run detached
	// from any single waiter's cancellation — the extent someone else is
	// waiting on must not die with the first impatient client — so this,
	// not the caller's deadline, stops a wedged fill.
	FillTimeout time.Duration
	// HalfLife is the popularity tracker's decay half-life (default 30s).
	HalfLife time.Duration
	// PipelineWindow caps in-flight requests on the cache's pipelined
	// origin connections: fills ride one persistent multiplexed
	// connection per depot instead of dialing per extent (serial
	// fallback for depots that don't speak PIPELINE). 0 means
	// ibp.DefaultPipelineWindow; negative forces serial dials.
	PipelineWindow int
	// Obs receives the edge.* metric families; nil records into
	// obs.Default().
	Obs *obs.Registry
}

// CacheStats is a point-in-time view of edge cache accounting.
type CacheStats struct {
	Capacity, Used int64
	Entries        int
	// Hits/Misses classify LOADs against the cached set; Fills counts
	// origin fetches actually performed (single-flight: concurrent misses
	// on one extent fill once), Coalesced the misses that piggybacked on
	// an in-flight fill, FillErrors the fills that failed.
	Hits, Misses, Fills, FillErrors, Coalesced int64
	Evictions                                  int64
	// BytesServed is payload bytes answered to clients (hits and fills).
	BytesServed int64
	// FilledSets is the number of distinct view sets that crossed the WAN
	// at least once (distinct fill hints) — the denominator-free form of
	// the "each view set fetched from the depot at most once" claim.
	FilledSets int
	// Refills counts fills of an extent the cache had already filled
	// before (possible only after an eviction); zero means every extent
	// crossed the WAN exactly once.
	Refills int64
}

// Cache is the sharded single-flight read-through cache core.
type Cache struct {
	cfg    CacheConfig
	shards []*cacheShard
	// flights coalesces concurrent fills of the same extent.
	flights singleflight.Group[string, []byte]
	pop     *Popularity
	// pipes holds one persistent pipelined connection per origin depot;
	// fills load straight into the cache entry's buffer over it.
	pipes *ibp.PipePool

	hits, misses, fills, fillErrors, coalesced, bytesServed atomic.Int64

	// fillMu guards the fill-history sets behind FilledSets/Refills.
	fillMu      sync.Mutex
	filledKeys  map[string]struct{}
	filledHints map[string]struct{}
	refills     int64
}

// cacheShard is one independently locked LRU over extent payloads.
type cacheShard struct {
	mu        sync.Mutex
	capacity  int64
	used      int64
	order     []string // front = least recent
	items     map[string][]byte
	evictions int64
}

// NewCache builds an edge cache.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("edge: non-positive cache capacity %d", cfg.CapacityBytes)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	// Every shard must be able to hold at least one typical extent; with a
	// tiny total budget, fewer shards beat shards that can cache nothing.
	for cfg.Shards > 1 && cfg.CapacityBytes/int64(cfg.Shards) < 256<<10 {
		cfg.Shards /= 2
	}
	if cfg.FillTimeout <= 0 {
		cfg.FillTimeout = 30 * time.Second
	}
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = 30 * time.Second
	}
	c := &Cache{
		cfg:         cfg,
		pop:         NewPopularity(cfg.HalfLife),
		filledKeys:  make(map[string]struct{}),
		filledHints: make(map[string]struct{}),
		pipes: &ibp.PipePool{
			Dialer:  cfg.Dialer,
			Window:  cfg.PipelineWindow,
			Timeout: cfg.FillTimeout,
			Obs:     cfg.Obs,
		},
	}
	per := cfg.CapacityBytes / int64(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, &cacheShard{
			capacity: per,
			items:    make(map[string][]byte),
		})
	}
	return c, nil
}

// registry resolves the metrics destination.
func (c *Cache) registry() *obs.Registry {
	if c.cfg.Obs != nil {
		return c.cfg.Obs
	}
	return obs.Default()
}

// Popularity exposes the cache's hot-set tracker (the steward's
// replication feed and lftop's hot-set pane read it).
func (c *Cache) Popularity() *Popularity { return c.pop }

// Close tears down the cache's pipelined origin connections.
func (c *Cache) Close() { c.pipes.Close() }

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// cacheKey names one cached extent: the origin allocation plus the exact
// byte range. Every client resolves the same exNode from the DVS, so the
// key is identical across tenants and the first fill serves them all.
func cacheKey(cap Cap, off, length int64) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d", cap.OriginDepot, cap.OriginCap, off, length)
}

// Load serves one extent read through the cache: a hit returns cached
// bytes, a miss fills from the origin depot (single-flight per extent) and
// caches the result. hit reports the cache outcome for access-class
// accounting.
func (c *Cache) Load(ctx context.Context, cp Cap, off, length int64) (data []byte, hit bool, err error) {
	reg := c.registry()
	c.pop.Record(cp.Hint)
	key := cacheKey(cp, off, length)
	sh := c.shard(key)
	if data, ok := sh.get(key); ok {
		c.hits.Add(1)
		c.bytesServed.Add(int64(len(data)))
		reg.Counter(obs.MEdgeHits).Inc()
		reg.Counter(obs.MEdgeBytesServed).Add(int64(len(data)))
		return data, true, nil
	}
	c.misses.Add(1)
	reg.Counter(obs.MEdgeMisses).Inc()
	data, shared, err := c.flights.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
		fctx, cancel := context.WithTimeout(fctx, c.cfg.FillTimeout)
		defer cancel()
		return c.fill(fctx, cp, off, length)
	})
	if err != nil {
		return nil, false, err
	}
	if shared {
		c.coalesced.Add(1)
		reg.Counter(obs.MEdgeCoalesced).Inc()
	}
	c.bytesServed.Add(int64(len(data)))
	reg.Counter(obs.MEdgeBytesServed).Add(int64(len(data)))
	return data, false, nil
}

// fill fetches one extent from its origin depot and caches it.
func (c *Cache) fill(ctx context.Context, cp Cap, off, length int64) ([]byte, error) {
	reg := c.registry()
	// CPU attribution: miss-path origin fetches profile under
	// {class=edge_fill, depot=<origin>}, separating fill cost from the
	// hit path and naming the depot a stuck fill is waiting on.
	lctx := prof.Begin2(ctx, prof.KeyClass, "edge_fill", prof.KeyDepot, cp.OriginDepot)
	defer prof.End(ctx)
	ctx = lctx
	_, span := obs.DefaultTracer().StartSpan(ctx, obs.SpanEdgeFill)
	span.SetAttr("origin", cp.OriginDepot)
	defer span.Finish()
	start := time.Now()
	// The cache entry is allocated once at its final size and filled off
	// the wire in place — no staging buffer, and a persistent pipelined
	// connection to the origin when the depot speaks PIPELINE.
	data := make([]byte, length)
	err := c.pipes.LoadInto(ctx, cp.OriginDepot, cp.OriginCap, off, data)
	reg.Histogram(obs.MEdgeFillMs, obs.LatencyBucketsMs...).Observe(float64(time.Since(start)) / 1e6)
	if err != nil {
		c.fillErrors.Add(1)
		reg.Counter(obs.MEdgeFillErrors).Inc()
		span.SetAttr("err", err.Error())
		obs.DefaultLogger().Warn(ctx, obs.EvEdgeFillErr,
			"origin", cp.OriginDepot, "hint", cp.Hint, "err", err.Error())
		return nil, err
	}
	c.fills.Add(1)
	reg.Counter(obs.MEdgeFills).Inc()
	key := cacheKey(cp, off, length)
	c.fillMu.Lock()
	if _, again := c.filledKeys[key]; again {
		c.refills++
	} else {
		c.filledKeys[key] = struct{}{}
	}
	if cp.Hint != "" {
		c.filledHints[cp.Hint] = struct{}{}
	}
	c.fillMu.Unlock()
	c.shard(key).put(key, data)
	return data, nil
}

// Stats returns current accounting.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Capacity:    c.cfg.CapacityBytes,
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Fills:       c.fills.Load(),
		FillErrors:  c.fillErrors.Load(),
		Coalesced:   c.coalesced.Load(),
		BytesServed: c.bytesServed.Load(),
	}
	c.fillMu.Lock()
	st.FilledSets = len(c.filledHints)
	st.Refills = c.refills
	c.fillMu.Unlock()
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Used += sh.used
		st.Entries += len(sh.items)
		st.Evictions += sh.evictions
		sh.mu.Unlock()
	}
	return st
}

// RegisterMetrics bridges the cache accounting and the hot set onto reg
// (scraped as edge.* at /metrics); passing nil bridges into obs.Default().
// Hot-set entries appear as edge.hot.<viewset> with their decayed counts.
func (c *Cache) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	reg.RegisterSnapshot("edge", func() map[string]float64 {
		st := c.Stats()
		hitRate := 0.0
		if total := st.Hits + st.Misses; total > 0 {
			hitRate = float64(st.Hits) / float64(total)
		}
		out := map[string]float64{
			"cache.capacity":  float64(st.Capacity),
			"cache.used":      float64(st.Used),
			"cache.entries":   float64(st.Entries),
			"cache.evictions": float64(st.Evictions),
			"cache.hit_rate":  hitRate,
		}
		for _, it := range c.pop.Top(16) {
			out["hot."+it.Hint] = it.Count
		}
		return out
	})
}

// get returns the cached payload and refreshes recency.
func (s *cacheShard) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.touch(key)
	return data, true
}

// touch moves key to the most-recent end of the order list.
func (s *cacheShard) touch(key string) {
	for i, k := range s.order {
		if k == key {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = key
			return
		}
	}
}

// put inserts a payload, evicting least-recently-used entries past the
// shard budget. Payloads larger than the whole shard are served but not
// cached.
func (s *cacheShard) put(key string, data []byte) {
	if int64(len(data)) > s.capacity {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.items[key]; ok {
		s.used -= int64(len(old))
		s.touch(key)
	} else {
		s.order = append(s.order, key)
	}
	s.items[key] = data
	s.used += int64(len(data))
	for s.used > s.capacity && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		s.used -= int64(len(s.items[victim]))
		delete(s.items, victim)
		s.evictions++
	}
}
