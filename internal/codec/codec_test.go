package codec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/iotest"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	data := []byte("hello hello hello light field view set payload payload")
	for _, level := range []int{BestSpeed, DefaultCompression, BestCompression} {
		frame, err := Compress(data, level)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		got, err := Decompress(frame)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("level %d: round trip mismatch", level)
		}
	}
}

func TestEmptyPayload(t *testing.T) {
	frame, err := Compress(nil, DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d bytes", len(got))
	}
}

func TestInvalidLevel(t *testing.T) {
	if _, err := Compress([]byte("x"), 42); err == nil {
		t.Error("expected error for invalid level")
	}
}

func TestCompressibleDataShrinks(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 4096)
	frame, err := Compress(data, DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) >= len(data)/4 {
		t.Errorf("repetitive data compressed to %d of %d", len(frame), len(data))
	}
	r, err := Ratio(frame)
	if err != nil {
		t.Fatal(err)
	}
	if r < 4 {
		t.Errorf("Ratio = %v", r)
	}
	n, err := UncompressedLen(frame)
	if err != nil || n != len(data) {
		t.Errorf("UncompressedLen = %d, %v", n, err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	data := make([]byte, 4096)
	rng := rand.New(rand.NewSource(8))
	rng.Read(data)
	frame, err := Compress(data, DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"truncated header": func(f []byte) []byte { return f[:5] },
		"bad magic":        func(f []byte) []byte { f[0] = 'X'; return f },
		"length lie": func(f []byte) []byte {
			f[5] ^= 0xff
			return f
		},
		"crc flip": func(f []byte) []byte {
			f[9] ^= 0x01
			return f
		},
		"body corruption": func(f []byte) []byte {
			f[len(f)/2] ^= 0x40
			return f
		},
		"truncated body": func(f []byte) []byte { return f[:len(f)-10] },
	}
	for name, mutate := range cases {
		cp := append([]byte{}, frame...)
		if _, err := Decompress(mutate(cp)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v is not ErrCorrupt", name, err)
		}
	}
}

func TestRatioAndLenRejectGarbage(t *testing.T) {
	if _, err := Ratio([]byte("junk")); err == nil {
		t.Error("Ratio accepted junk")
	}
	if _, err := UncompressedLen([]byte{1, 2}); err == nil {
		t.Error("UncompressedLen accepted junk")
	}
}

// Property: round trip is identity for arbitrary payloads at every level.
func TestRoundTripQuick(t *testing.T) {
	f := func(data []byte, pick uint8) bool {
		levels := []int{BestSpeed, DefaultCompression, BestCompression}
		level := levels[int(pick)%len(levels)]
		frame, err := Compress(data, level)
		if err != nil {
			return false
		}
		got, err := Decompress(frame)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: decompressing random noise never succeeds silently with wrong
// content — it either errors or (astronomically unlikely) round-trips.
func TestDecompressNoiseQuick(t *testing.T) {
	f := func(noise []byte) bool {
		_, err := Decompress(noise)
		return err != nil || len(noise) >= headerLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecompressFromMatchesBuffered(t *testing.T) {
	data := bytes.Repeat([]byte("streaming payload "), 4096)
	frame, err := Compress(data, DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the frame through a reader that trickles small chunks, like a
	// download in progress.
	got, err := DecompressFrom(iotest.OneByteReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed decompress mismatch")
	}
	// Corruption in the body must still surface.
	bad := append([]byte(nil), frame...)
	bad[len(bad)/2] ^= 0xff
	if _, err := DecompressFrom(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt stream accepted")
	}
	// Truncation surfaces as ErrCorrupt, not a hang.
	if _, err := DecompressFrom(bytes.NewReader(frame[:len(frame)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
