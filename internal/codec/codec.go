// Package codec implements the lossless compression framing used for view
// sets on the wire and in depot storage. The paper compresses each view set
// with zlib (its reference [1]); we add a small frame around the zlib
// stream carrying the uncompressed length and a CRC-32 so corruption
// surfaces as an error rather than garbage pixels.
//
// Frame layout: magic "LVZ1", uint8 level, uint32 origLen, uint32 crc32
// (IEEE, of the uncompressed data), then the raw zlib stream.
package codec

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

var frameMagic = []byte("LVZ1")

const headerLen = 4 + 1 + 4 + 4

// Compression levels re-exported so callers do not import compress/zlib.
const (
	BestSpeed          = zlib.BestSpeed
	DefaultCompression = zlib.DefaultCompression
	BestCompression    = zlib.BestCompression
)

// ErrCorrupt is returned when a frame fails structural or checksum
// validation.
var ErrCorrupt = errors.New("codec: corrupt frame")

// Compress frames and zlib-compresses data at the given level (use
// DefaultCompression when unsure).
func Compress(data []byte, level int) ([]byte, error) {
	if level != DefaultCompression && (level < zlib.NoCompression || level > zlib.BestCompression) {
		return nil, fmt.Errorf("codec: invalid compression level %d", level)
	}
	var buf bytes.Buffer
	buf.Grow(headerLen + len(data)/4)
	buf.Write(frameMagic)
	lvl := byte(level & 0xff)
	buf.WriteByte(lvl)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(data)))
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(data))
	buf.Write(u32[:])
	zw, err := zlib.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress validates and decodes a frame produced by Compress.
func Decompress(frame []byte) ([]byte, error) {
	if len(frame) < headerLen {
		return nil, fmt.Errorf("%w: frame shorter than header", ErrCorrupt)
	}
	if !bytes.Equal(frame[:4], frameMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	origLen := binary.LittleEndian.Uint32(frame[5:9])
	wantCRC := binary.LittleEndian.Uint32(frame[9:13])
	zr, err := zlib.NewReader(bytes.NewReader(frame[headerLen:]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	out := make([]byte, 0, origLen)
	outBuf := bytes.NewBuffer(out)
	// Limit reads to origLen+1 so a lying header cannot balloon memory.
	n, err := io.Copy(outBuf, io.LimitReader(zr, int64(origLen)+1))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if n != int64(origLen) {
		return nil, fmt.Errorf("%w: length %d, header says %d", ErrCorrupt, n, origLen)
	}
	data := outBuf.Bytes()
	if crc32.ChecksumIEEE(data) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return data, nil
}

// DecompressFrom validates and decodes a frame read incrementally from r
// — the streaming counterpart of Decompress. Because zlib inflates as
// input arrives, handing it a reader that tracks a download in progress
// (lors.StreamBuffer) overlaps decompression with communication instead
// of serializing them. The output buffer is sized exactly from the frame
// header before inflation starts.
func DecompressFrom(r io.Reader) ([]byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:4], frameMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	origLen := binary.LittleEndian.Uint32(hdr[5:9])
	wantCRC := binary.LittleEndian.Uint32(hdr[9:13])
	zr, err := zlib.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	out := make([]byte, origLen)
	if _, err := io.ReadFull(zr, out); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// A lying header must not pass: the stream has to end exactly here.
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("%w: payload longer than header says", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(out) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return out, nil
}

// Ratio returns the compression ratio (uncompressed/compressed) of a frame
// without decompressing it. Returns an error for malformed frames.
func Ratio(frame []byte) (float64, error) {
	if len(frame) < headerLen || !bytes.Equal(frame[:4], frameMagic) {
		return 0, ErrCorrupt
	}
	origLen := binary.LittleEndian.Uint32(frame[5:9])
	if len(frame) == 0 {
		return 0, ErrCorrupt
	}
	return float64(origLen) / float64(len(frame)), nil
}

// UncompressedLen returns the original payload length recorded in a frame
// header.
func UncompressedLen(frame []byte) (int, error) {
	if len(frame) < headerLen || !bytes.Equal(frame[:4], frameMagic) {
		return 0, ErrCorrupt
	}
	return int(binary.LittleEndian.Uint32(frame[5:9])), nil
}
