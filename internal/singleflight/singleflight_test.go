package singleflight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCoalescesConcurrentCalls(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	gate := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	sharedCount := atomic.Int32{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Let all callers pile onto the flight, then release it.
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
	if sharedCount.Load() == 0 {
		t.Fatal("no caller reported shared")
	}
	if g.InFlight() != 0 {
		t.Fatal("flight not unlinked after completion")
	}
}

func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group[int, string]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), i, func(context.Context) (string, error) {
				calls.Add(1)
				return fmt.Sprint(i), nil
			})
			if err != nil || v != fmt.Sprint(i) {
				t.Errorf("key %d: %q %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Fatalf("calls = %d, want 8", calls.Load())
	}
}

// TestCancellerDoesNotKillFlight is the ctx-detach contract: the caller
// that STARTED the flight cancels; the second caller still gets the
// result, and the flight's context stays live throughout.
func TestCancellerDoesNotKillFlight(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	flightCancelled := atomic.Bool{}

	ctx1, cancel1 := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx1, "k", func(fctx context.Context) (int, error) {
			close(started)
			<-release
			if fctx.Err() != nil {
				flightCancelled.Store(true)
			}
			return 7, nil
		})
		errs <- err
	}()
	<-started

	// Second caller joins the same flight.
	got := make(chan int, 1)
	joinErr := make(chan error, 1)
	go func() {
		v, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			t.Error("second caller started its own flight")
			return 0, nil
		})
		if !shared {
			t.Error("second caller did not share the flight")
		}
		got <- v
		joinErr <- err
	}()
	for g.InFlight() != 1 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let the second caller register

	// The leader gives up: it must return immediately with its ctx.Err.
	cancel1()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceller returned %v, want context.Canceled", err)
	}

	// The flight, however, keeps running for the second caller.
	close(release)
	if err := <-joinErr; err != nil {
		t.Fatalf("surviving waiter: %v", err)
	}
	if v := <-got; v != 7 {
		t.Fatalf("surviving waiter got %d", v)
	}
	if flightCancelled.Load() {
		t.Fatal("flight ctx was cancelled by a single departing caller")
	}
}

// TestLastWaiterCancelsFlight: when EVERY caller abandons, the flight's
// detached context is cancelled so it stops burning depot capacity.
func TestLastWaiterCancelsFlight(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	ctxSeen := make(chan context.Context, 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(fctx context.Context) (int, error) {
			ctxSeen <- fctx
			close(started)
			<-fctx.Done()
			return 0, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller returned %v", err)
	}
	fctx := <-ctxSeen
	select {
	case <-fctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("flight ctx not cancelled after last waiter left")
	}
	if g.InFlight() != 0 {
		t.Fatal("abandoned flight still linked")
	}
}

// TestConcurrentCancellationStorm hammers join/cancel races under -race:
// many callers with short staggered deadlines against a slow flight,
// repeated across rounds; survivors must always get the value, quitters
// their own ctx error, and the group must end fully drained.
func TestConcurrentCancellationStorm(t *testing.T) {
	var g Group[int, int]
	for round := 0; round < 20; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := context.Background()
				if i%2 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i)*time.Millisecond)
					defer cancel()
				}
				v, _, err := g.Do(ctx, round, func(fctx context.Context) (int, error) {
					select {
					case <-time.After(20 * time.Millisecond):
						return round, nil
					case <-fctx.Done():
						return 0, fctx.Err()
					}
				})
				if err == nil && v != round {
					t.Errorf("round %d caller %d got %d", round, i, v)
				}
				if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Errorf("round %d caller %d: %v", round, i, err)
				}
			}(i)
		}
		wg.Wait()
	}
	// Flights may briefly outlive their last waiter; drain before the
	// leak check.
	deadline := time.Now().Add(2 * time.Second)
	for g.InFlight() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.InFlight() != 0 {
		t.Fatalf("%d flights leaked", g.InFlight())
	}
}
