// Package singleflight coalesces concurrent identical fetches: when N
// callers ask for the same key at once, one flight does the work and all
// N share the result. The stack uses it so a burst of clients browsing
// to the same view set costs one depot fetch, not N (the shared-cache
// coalescing argument of the network-data-cache literature).
//
// Unlike a bare duplicate-suppression map, the flight runs under a
// context DETACHED from any single caller: values (trace context) are
// inherited from the first caller, but its cancellation is not. A caller
// that gives up stops waiting immediately and gets its own ctx.Err();
// the flight keeps running for the remaining waiters and is cancelled
// only when the last waiter leaves. One impatient client can therefore
// never kill the fetch everyone else is riding on.
package singleflight

import (
	"context"
	"sync"
)

// flight is one in-progress call shared by its waiters.
type flight[V any] struct {
	done    chan struct{} // closed when val/err are set
	cancel  context.CancelFunc
	waiters int
	val     V
	err     error
}

// Group coalesces calls by key. The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu      sync.Mutex
	flights map[K]*flight[V]
}

// Do returns fn's result for key. Concurrent calls with the same key
// share one execution of fn; shared reports whether this caller joined
// a flight another caller started. fn runs under a context that
// inherits the leader's values but detaches from every caller's
// cancellation; it is cancelled when the last waiter abandons the
// flight. A caller whose own ctx ends while waiting returns its
// ctx.Err() immediately without disturbing the flight.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func(context.Context) (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[K]*flight[V])
	}
	f := g.flights[key]
	shared = f != nil
	if f == nil {
		fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		f = &flight[V]{done: make(chan struct{}), cancel: cancel}
		g.flights[key] = f
		go g.run(key, f, fctx, fn)
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		g.leave(key, f)
		return f.val, shared, f.err
	case <-ctx.Done():
		g.leave(key, f)
		var zero V
		return zero, shared, ctx.Err()
	}
}

// run executes the flight and publishes its result.
func (g *Group[K, V]) run(key K, f *flight[V], fctx context.Context, fn func(context.Context) (V, error)) {
	v, err := fn(fctx)
	g.mu.Lock()
	f.val, f.err = v, err
	// Later callers start a fresh flight: results are not cached here
	// (the agent's LRU is the cache); only concurrency is coalesced.
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
	close(f.done)
	f.cancel() // release the detached context's resources
}

// leave unregisters one waiter; the last waiter to abandon a still-
// running flight cancels it (nobody wants the result anymore) and
// unlinks it so the next caller starts fresh.
func (g *Group[K, V]) leave(key K, f *flight[V]) {
	g.mu.Lock()
	f.waiters--
	finished := false
	select {
	case <-f.done:
		finished = true
	default:
	}
	abandon := f.waiters == 0 && !finished
	if abandon && g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
	if abandon {
		f.cancel()
	}
}

// InFlight reports the number of distinct keys currently being fetched
// (load gauges).
func (g *Group[K, V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}

// Pending reports whether a flight for key is currently running.
func (g *Group[K, V]) Pending(key K) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.flights[key]
	return ok
}
