package lors

import (
	"context"
	"sort"
	"sync"
	"time"

	"lonviz/internal/obs"
)

// HealthConfig tunes the depot circuit breaker.
type HealthConfig struct {
	// FailureThreshold is the number of consecutive failures that opens a
	// depot's circuit (default 3).
	FailureThreshold int
	// Cooldown is how long an open circuit refuses traffic before allowing
	// a half-open probe (default 5s).
	Cooldown time.Duration
	// Now overrides the clock; nil uses time.Now. Tests inject a fake
	// clock to make cooldown expiry deterministic.
	Now func() time.Time
	// Obs receives circuit-trip counters and the open-circuit gauge
	// (lors.circuit.*); nil records into obs.Default().
	Obs *obs.Registry
}

func (c *HealthConfig) defaults() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// DepotHealth is a snapshot of one depot's breaker state.
type DepotHealth struct {
	Depot               string
	ConsecutiveFailures int
	Failures, Successes int64
	// Open reports whether the circuit currently refuses traffic.
	Open bool
	// OpenUntil is when the cooldown ends (zero if the circuit is closed).
	OpenUntil time.Time
}

// HealthTracker is a consecutive-failure circuit breaker over depot
// addresses, shared by every fetch, prefetch, and prestage path of a
// client so none of them keeps hammering a dead or flapping depot. After
// FailureThreshold consecutive failures a depot's circuit opens: Allow
// returns false until the cooldown expires, at which point traffic is
// admitted again (half-open) and the next result closes or re-opens it.
// All methods are safe for concurrent use and safe on a nil receiver
// (a nil tracker allows everything and records nothing).
type HealthTracker struct {
	mu     sync.Mutex
	cfg    HealthConfig
	depots map[string]*depotState
}

type depotState struct {
	consecFails         int
	failures, successes int64
	openUntil           time.Time
}

// NewHealthTracker builds a tracker; a zero config gets the defaults.
func NewHealthTracker(cfg HealthConfig) *HealthTracker {
	cfg.defaults()
	return &HealthTracker{cfg: cfg, depots: make(map[string]*depotState)}
}

func (h *HealthTracker) state(addr string) *depotState {
	st, ok := h.depots[addr]
	if !ok {
		st = &depotState{}
		h.depots[addr] = st
	}
	return st
}

// Allow reports whether traffic to the depot is admitted. It is false only
// while the depot's circuit is open and the cooldown has not expired.
func (h *HealthTracker) Allow(addr string) bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.depots[addr]
	if !ok || st.openUntil.IsZero() {
		return true
	}
	return !h.cfg.Now().Before(st.openUntil)
}

// ReportSuccess records a successful operation, closing the circuit.
func (h *HealthTracker) ReportSuccess(addr string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state(addr)
	st.successes++
	st.consecFails = 0
	if !st.openUntil.IsZero() {
		registryOr(h.cfg.Obs).Gauge(obs.MLorsCircuitOpen).Add(-1)
	}
	st.openUntil = time.Time{}
}

// ReportFailure records a failed operation. Crossing the threshold (or
// failing a half-open probe) opens the circuit for one cooldown.
func (h *HealthTracker) ReportFailure(addr string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state(addr)
	st.failures++
	st.consecFails++
	if st.consecFails >= h.cfg.FailureThreshold {
		if st.openUntil.IsZero() {
			// Closed -> open transition: count the trip and raise the gauge.
			// A half-open probe failure merely extends the existing cooldown.
			reg := registryOr(h.cfg.Obs)
			reg.Counter(obs.MLorsCircuitTrips).Inc()
			reg.Gauge(obs.MLorsCircuitOpen).Add(1)
			obs.DefaultLogger().Warn(context.Background(), obs.EvLorsCircuitOpen, "depot", addr)
		}
		st.openUntil = h.cfg.Now().Add(h.cfg.Cooldown)
	}
}

// Snapshot returns the breaker state of every observed depot, sorted by
// address.
func (h *HealthTracker) Snapshot() []DepotHealth {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.cfg.Now()
	out := make([]DepotHealth, 0, len(h.depots))
	for addr, st := range h.depots {
		out = append(out, DepotHealth{
			Depot:               addr,
			ConsecutiveFailures: st.consecFails,
			Failures:            st.failures,
			Successes:           st.successes,
			Open:                !st.openUntil.IsZero() && now.Before(st.openUntil),
			OpenUntil:           st.openUntil,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Depot < out[j].Depot })
	return out
}

// Open reports whether the depot's circuit is currently open.
func (h *HealthTracker) Open(addr string) bool { return !h.Allow(addr) }

// allowedReplicas filters a replica list down to depots whose circuit
// admits traffic. It never invents capacity: when every replica is
// circuit-open the empty slice is returned and the caller decides whether
// to fail fast or wait out a cooldown.
func allowedReplicas[T any](h *HealthTracker, reps []T, depotOf func(T) string) []T {
	if h == nil {
		return reps
	}
	out := make([]T, 0, len(reps))
	for _, r := range reps {
		if h.Allow(depotOf(r)) {
			out = append(out, r)
		}
	}
	return out
}
