package lors

import (
	"errors"
	"net"

	"bytes"
	"context"
	"lonviz/internal/exnode"
	"lonviz/internal/netsim"
	"math/rand"
	"testing"
	"time"

	"lonviz/internal/ibp"
)

// depotFarm starts n depots and returns their addresses.
func depotFarm(t *testing.T, n int, capacity int64) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: capacity, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr
	}
	return addrs
}

func testPayload(n int, seed int64) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(300*1024, 1) // 300 KiB over 64 KiB stripes
	ex, err := Upload(context.Background(), "obj1", data, UploadOptions{
		Depots:     depots,
		StripeSize: 64 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Length != int64(len(data)) {
		t.Errorf("exnode length = %d", ex.Length)
	}
	if len(ex.Extents) != 5 {
		t.Errorf("extents = %d, want 5", len(ex.Extents))
	}
	// Stripes must land on more than one depot.
	if len(ex.Depots()) < 2 {
		t.Errorf("striping used only %v", ex.Depots())
	}
	got, stats, err := Download(context.Background(), ex, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("download mismatch")
	}
	if stats.Bytes != int64(len(data)) || stats.ExtentFetches != 5 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestUploadReplication(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(100*1024, 2)
	ex, err := Upload(context.Background(), "obj2", data, UploadOptions{
		Depots:     depots,
		StripeSize: 32 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rf := ex.ReplicationFactor(); rf != 2 {
		t.Errorf("replication factor = %d", rf)
	}
	for _, ext := range ex.Extents {
		if ext.Replicas[0].Depot == ext.Replicas[1].Depot {
			t.Error("replicas placed on the same depot")
		}
	}
}

func TestUploadValidation(t *testing.T) {
	if _, err := Upload(context.Background(), "x", []byte("d"), UploadOptions{}); err == nil {
		t.Error("no depots accepted")
	}
	if _, err := Upload(context.Background(), "x", []byte("d"), UploadOptions{
		Depots:   []string{"a:1"},
		Replicas: 2,
	}); err == nil {
		t.Error("replicas > distinct depots accepted")
	}
}

func TestUploadEmptyObject(t *testing.T) {
	depots := depotFarm(t, 1, 1024)
	ex, err := Upload(context.Background(), "empty", nil, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Download(context.Background(), ex, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty object downloaded %d bytes", len(got))
	}
}

func TestDownloadFailoverToReplica(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(64*1024, 3)
	ex, err := Upload(context.Background(), "obj3", data, UploadOptions{
		Depots:     depots,
		StripeSize: 16 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Poison the first replica of every extent so failover must kick in.
	for i := range ex.Extents {
		ex.Extents[i].Replicas[0].ReadCap = "poisoned"
	}
	got, stats, err := Download(context.Background(), ex, DownloadOptions{
		Rand: rand.New(rand.NewSource(0)), // deterministic shuffle
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("failover download mismatch")
	}
	if stats.FailedAttempts == 0 {
		t.Error("poisoned replicas never tried; test ineffective")
	}
}

func TestDownloadAllReplicasDead(t *testing.T) {
	depots := depotFarm(t, 2, 1<<20)
	data := testPayload(8*1024, 4)
	ex, err := Upload(context.Background(), "obj4", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex.Extents {
		for j := range ex.Extents[i].Replicas {
			ex.Extents[i].Replicas[j].ReadCap = "gone"
		}
	}
	if _, _, err := Download(context.Background(), ex, DownloadOptions{}); err == nil {
		t.Error("download with dead replicas succeeded")
	}
}

func TestDownloadRaceReplicas(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(96*1024, 5)
	ex, err := Upload(context.Background(), "obj5", data, UploadOptions{
		Depots:     depots,
		StripeSize: 32 * 1024,
		Replicas:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Download(context.Background(), ex, DownloadOptions{RaceReplicas: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("raced download mismatch")
	}
	if stats.ReplicaTries < 9 { // 3 extents x 3 replicas all launched
		t.Errorf("race tried %d replicas, want 9", stats.ReplicaTries)
	}
	// Racing with one poisoned replica still succeeds.
	for i := range ex.Extents {
		ex.Extents[i].Replicas[0].ReadCap = "poisoned"
	}
	got, _, err = Download(context.Background(), ex, DownloadOptions{RaceReplicas: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("raced download with poison mismatch")
	}
}

func TestDownloadCancellation(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(64*1024, 6)
	ex, err := Upload(context.Background(), "obj6", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Download(ctx, ex, DownloadOptions{}); err == nil {
		t.Error("canceled download succeeded")
	}
}

func TestRefreshAndFree(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(32*1024, 7)
	ex, err := Upload(context.Background(), "obj7", data, UploadOptions{
		Depots:     depots,
		StripeSize: 16 * 1024,
		Lease:      2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Refresh(context.Background(), ex, 30*time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ex.Extents) {
		t.Errorf("refreshed %d of %d", n, len(ex.Extents))
	}
	if err := Free(context.Background(), ex, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Download(context.Background(), ex, DownloadOptions{}); err == nil {
		t.Error("download after free succeeded")
	}
}

func TestCopyToStagesWholeObject(t *testing.T) {
	src := depotFarm(t, 3, 1<<22)
	lanDepot := depotFarm(t, 1, 1<<22)[0]
	data := testPayload(128*1024, 8)
	ex, err := Upload(context.Background(), "obj8", data, UploadOptions{
		Depots:     src,
		StripeSize: 32 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	staged, err := CopyTo(context.Background(), ex, lanDepot, CopyOptions{Lease: time.Minute, Policy: ibp.Volatile})
	if err != nil {
		t.Fatal(err)
	}
	if deps := staged.Depots(); len(deps) != 1 || deps[0] != lanDepot {
		t.Errorf("staged depots = %v", deps)
	}
	got, _, err := Download(context.Background(), staged, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("staged copy mismatch")
	}
}

func TestCopyToSurvivesOneDeadSource(t *testing.T) {
	src := depotFarm(t, 2, 1<<22)
	lanDepot := depotFarm(t, 1, 1<<22)[0]
	data := testPayload(32*1024, 9)
	ex, err := Upload(context.Background(), "obj9", data, UploadOptions{
		Depots:     src,
		StripeSize: 16 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Poison one replica per extent; CopyTo must fail over to the other.
	for i := range ex.Extents {
		ex.Extents[i].Replicas[0].ReadCap = "poisoned"
	}
	staged, err := CopyTo(context.Background(), ex, lanDepot, CopyOptions{Lease: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Download(context.Background(), staged, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("failover staging mismatch")
	}
}

func TestUploadSkipsFullDepot(t *testing.T) {
	// One depot too small to take anything, one large: upload succeeds by
	// walking past the refusal.
	small := depotFarm(t, 1, 10)
	big := depotFarm(t, 1, 1<<22)
	data := testPayload(16*1024, 10)
	ex, err := Upload(context.Background(), "obj10", data, UploadOptions{
		Depots:     []string{small[0], big[0]},
		StripeSize: 8 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ex.Depots() {
		if d == small[0] {
			t.Error("stripe placed on undersized depot")
		}
	}
}

// depotRig starts one depot and returns its handle, address, and server so
// tests can inspect accounting or take the depot down.
func depotRig(t *testing.T, capacity int64) (*ibp.Depot, string, *ibp.Server) {
	t.Helper()
	d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: capacity, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := ibp.NewServer(d)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return d, addr, srv
}

func TestUploadWritesExtentChecksums(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(100*1024, 20)
	ex, err := Upload(context.Background(), "ck", data, UploadOptions{
		Depots:     depots,
		StripeSize: 32 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ext := range ex.SortedExtents() {
		if ext.Checksum == "" {
			t.Fatalf("extent at %d has no checksum", ext.Offset)
		}
		want := exnode.ChecksumOf(data[ext.Offset : ext.Offset+ext.Length])
		if ext.Checksum != want {
			t.Errorf("extent at %d checksum = %s, want %s", ext.Offset, ext.Checksum, want)
		}
	}
	if ex.Checksum != exnode.ChecksumOf(data) {
		t.Errorf("object checksum = %s", ex.Checksum)
	}
}

func TestDownloadRejectsCorruptPayload(t *testing.T) {
	depots := depotFarm(t, 1, 1<<22)
	data := testPayload(24*1024, 21)
	ex, err := Upload(context.Background(), "corrupt-all", data, UploadOptions{
		Depots:     depots,
		StripeSize: 8 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every connection to the only depot silently flips a payload byte:
	// without a clean replica the download must fail, not return garbage.
	fd := netsim.NewFaultDialer(nil, 1)
	fd.SetFault(depots[0], netsim.FaultProfile{CorruptProb: 1})
	_, stats, err := Download(context.Background(), ex, DownloadOptions{Dialer: fd})
	if err == nil {
		t.Fatal("corrupted download succeeded")
	}
	if !errors.Is(err, exnode.ErrChecksum) {
		t.Errorf("error = %v, want checksum mismatch", err)
	}
	if stats.ChecksumErrors == 0 {
		t.Errorf("stats = %+v, expected checksum errors", stats)
	}
}

func TestDownloadFailsOverOnCorruption(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(128*1024, 22)
	ex, err := Upload(context.Background(), "corrupt-one", data, UploadOptions{
		Depots:     depots,
		StripeSize: 8 * 1024, // 16 extents, each replicated on both depots
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One depot corrupts every payload; the other is clean. Every extent
	// must come back checksum-clean via failover, and with 16 extents the
	// seeded shuffle is guaranteed to try the corrupt depot first at least
	// once, so the corruption path is exercised.
	fd := netsim.NewFaultDialer(nil, 2)
	fd.SetFault(depots[0], netsim.FaultProfile{CorruptProb: 1})
	got, stats, err := Download(context.Background(), ex, DownloadOptions{
		Dialer:      fd,
		Parallelism: 1,
		Rand:        rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("failover download mismatch")
	}
	if stats.ChecksumErrors == 0 || stats.FailedAttempts == 0 {
		t.Errorf("stats = %+v, expected detected corruption and failovers", stats)
	}
}

func TestDownloadBackoffBetweenPasses(t *testing.T) {
	depots := depotFarm(t, 1, 1<<20)
	data := testPayload(4*1024, 23)
	ex, err := Upload(context.Background(), "backoff", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	ex.Extents[0].Replicas[0].ReadCap = "poisoned"
	start := time.Now()
	_, stats, err := Download(context.Background(), ex, DownloadOptions{
		Retries:     3,
		BackoffBase: 40 * time.Millisecond,
		BackoffMax:  time.Second,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("poisoned download succeeded")
	}
	if stats.ReplicaTries != 3 {
		t.Errorf("tries = %d, want 3 passes", stats.ReplicaTries)
	}
	// Two backoffs with jitter in [d/2, d): pass 2 waits >= 20ms, pass 3
	// waits >= 40ms.
	if elapsed < 60*time.Millisecond {
		t.Errorf("3 passes finished in %v; backoff not applied", elapsed)
	}
}

func TestDownloadBackoffHonorsCancellation(t *testing.T) {
	depots := depotFarm(t, 1, 1<<20)
	data := testPayload(4*1024, 24)
	ex, err := Upload(context.Background(), "backoff-cancel", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	ex.Extents[0].Replicas[0].ReadCap = "poisoned"
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = Download(ctx, ex, DownloadOptions{
		Retries:     10,
		BackoffBase: 10 * time.Second, // would take ~ forever without ctx
	})
	if err == nil {
		t.Fatal("cancelled download succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; backoff ignored ctx", elapsed)
	}
}

func TestDownloadCircuitBreakerSkipsOpenDepot(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(96*1024, 25)
	ex, err := Upload(context.Background(), "breaker", data, UploadOptions{
		Depots:     depots,
		StripeSize: 16 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Now()
	health := NewHealthTracker(HealthConfig{
		FailureThreshold: 1,
		Cooldown:         time.Hour,
		Now:              func() time.Time { return clock },
	})
	fd := netsim.NewFaultDialer(nil, 3)
	fd.Kill(depots[0])
	opts := DownloadOptions{Dialer: fd, Health: health, Rand: rand.New(rand.NewSource(1))}
	got, _, err := Download(context.Background(), ex, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("download mismatch with one dead depot")
	}
	if !health.Open(depots[0]) {
		t.Fatal("dead depot's circuit never opened")
	}
	// With the circuit open, further downloads send zero requests to the
	// dead depot for the whole cooldown.
	before := fd.Dials(depots[0])
	for i := 0; i < 5; i++ {
		got, stats, err := Download(context.Background(), ex, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("download mismatch during cooldown")
		}
		if stats.Skipped == 0 {
			t.Errorf("run %d: stats = %+v, expected skipped replicas", i, stats)
		}
	}
	if after := fd.Dials(depots[0]); after != before {
		t.Errorf("circuit-open depot dialed %d times during cooldown", after-before)
	}
	// After the cooldown the depot is probed again (half-open) and, being
	// healthy again, closes its circuit.
	fd.Revive(depots[0])
	clock = clock.Add(2 * time.Hour)
	if !health.Allow(depots[0]) {
		t.Fatal("cooldown expiry did not re-admit the depot")
	}
	if _, _, err := Download(context.Background(), ex, opts); err != nil {
		t.Fatal(err)
	}
}

func TestRaceReplicasSkipsOpenCircuits(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(32*1024, 26)
	ex, err := Upload(context.Background(), "race-breaker", data, UploadOptions{
		Depots:   depots,
		Replicas: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	health := NewHealthTracker(HealthConfig{FailureThreshold: 1, Cooldown: time.Hour})
	health.ReportFailure(depots[0]) // opens immediately at threshold 1
	fd := netsim.NewFaultDialer(nil, 4)
	got, stats, err := Download(context.Background(), ex, DownloadOptions{
		Dialer:       fd,
		RaceReplicas: true,
		Health:       health,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("raced download mismatch")
	}
	if stats.Skipped == 0 {
		t.Errorf("stats = %+v, expected the open-circuit replica skipped", stats)
	}
	if n := fd.Dials(depots[0]); n != 0 {
		t.Errorf("open-circuit depot dialed %d times by the race", n)
	}
}

// storeFailDialer passes connections through but kills any whose request
// starts with STORE — allocations succeed, stores fail, FREEs succeed.
type storeFailDialer struct{}

func (storeFailDialer) Dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &storeFailConn{Conn: c}, nil
}

type storeFailConn struct {
	net.Conn
	decided bool
	allow   bool
}

func (c *storeFailConn) Write(b []byte) (int, error) {
	if !c.decided {
		c.decided = true
		c.allow = !bytes.HasPrefix(b, []byte("STORE"))
	}
	if !c.allow {
		c.Conn.Close()
		return 0, errors.New("injected store failure")
	}
	return c.Conn.Write(b)
}

func TestUploadFreesOrphanedAllocationOnStoreFailure(t *testing.T) {
	bad, badAddr, _ := depotRig(t, 1<<22)
	_, goodAddr, _ := depotRig(t, 1<<22)
	data := testPayload(8*1024, 27)
	// Stores to the bad depot fail after its allocation succeeded; the
	// stripe must free the orphan and place the replica on the good depot.
	// Only the bad depot routes through the store-killing dialer.
	fd := routeDialer{badAddr: storeFailDialer{}}
	ex, err := Upload(context.Background(), "orphan", data, UploadOptions{
		Depots: []string{badAddr, goodAddr},
		Dialer: fd,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ex.Depots() {
		if d == badAddr {
			t.Error("replica recorded on the store-failing depot")
		}
	}
	if st := bad.Stat(); st.Used != 0 || st.Allocations != 0 {
		t.Errorf("orphaned allocation leaked: used=%d allocs=%d", st.Used, st.Allocations)
	}
}

// routeDialer sends one address through a special dialer and everything
// else over plain TCP.
type routeDialer map[string]ibp.Dialer

func (r routeDialer) Dial(addr string) (net.Conn, error) {
	if d, ok := r[addr]; ok {
		return d.Dial(addr)
	}
	return net.Dial("tcp", addr)
}

func TestDownloadCancellationMidDispatch(t *testing.T) {
	depots := depotFarm(t, 2, 1<<24)
	data := testPayload(512*1024, 28)
	ex, err := Upload(context.Background(), "cancel-mid", data, UploadOptions{
		Depots:     depots,
		StripeSize: 16 * 1024, // 32 extents
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel while extents are still queued behind the parallelism gate;
	// the dispatcher must drain and report ctx.Err(), not deadlock.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var derr error
	go func() {
		defer close(done)
		_, _, derr = Download(ctx, ex, DownloadOptions{Parallelism: 1})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled download never returned")
	}
	if derr == nil {
		t.Skip("download finished before cancellation; nothing to assert")
	}
	if !errors.Is(derr, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", derr)
	}
}

func TestRefreshDepotDown(t *testing.T) {
	_, addr, srv := depotRig(t, 1<<20)
	data := testPayload(4*1024, 29)
	ex, err := Upload(context.Background(), "refresh-down", data, UploadOptions{Depots: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	n, err := Refresh(context.Background(), ex, time.Minute, nil)
	if err == nil {
		t.Error("refresh against a dead depot reported success")
	}
	if n != 0 {
		t.Errorf("refreshed %d extents on a dead depot", n)
	}
}

func TestRefreshMissingManageCaps(t *testing.T) {
	depots := depotFarm(t, 1, 1<<20)
	data := testPayload(4*1024, 30)
	ex, err := Upload(context.Background(), "refresh-nomanage", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex.Extents {
		for j := range ex.Extents[i].Replicas {
			ex.Extents[i].Replicas[j].ManageCap = ""
		}
	}
	// A read-only consumer's exNode has nothing to refresh: zero successes
	// and no error.
	n, err := Refresh(context.Background(), ex, time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("refreshed %d extents without manage caps", n)
	}
}

func TestRefreshPartialSuccess(t *testing.T) {
	_, liveAddr, _ := depotRig(t, 1<<22)
	_, deadAddr, deadSrv := depotRig(t, 1<<22)
	data := testPayload(16*1024, 31)
	ex, err := Upload(context.Background(), "refresh-partial", data, UploadOptions{
		Depots:     []string{liveAddr, deadAddr},
		StripeSize: 8 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadSrv.Close()
	// 2 extents x 2 replicas; the 2 on the dead depot fail, the 2 on the
	// live one succeed — partial success counts only the live ones and is
	// not an error.
	n, err := Refresh(context.Background(), ex, time.Minute, nil)
	if err != nil {
		t.Fatalf("partial refresh reported error: %v", err)
	}
	if n != 2 {
		t.Errorf("refreshed %d replicas, want 2", n)
	}
}

func TestFreeDepotDownReportsError(t *testing.T) {
	_, liveAddr, _ := depotRig(t, 1<<22)
	_, deadAddr, deadSrv := depotRig(t, 1<<22)
	data := testPayload(8*1024, 32)
	ex, err := Upload(context.Background(), "free-partial", data, UploadOptions{
		Depots:     []string{liveAddr, deadAddr},
		StripeSize: 8 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadSrv.Close()
	if err := Free(context.Background(), ex, nil); err == nil {
		t.Error("free with a dead depot reported total success")
	}
	// The live depot's replica must be gone despite the dead one failing.
	live := 0
	for _, ext := range ex.Extents {
		for _, rep := range ext.Replicas {
			if rep.Depot != liveAddr {
				continue
			}
			live++
			cl := &ibp.Client{Addr: rep.Depot, Timeout: 2 * time.Second}
			if _, err := cl.Load(context.Background(), rep.ReadCap, rep.AllocOffset, 1); err == nil {
				t.Error("replica still readable after Free")
			}
		}
	}
	if live == 0 {
		t.Fatal("test built no replicas on the live depot")
	}
}

func TestFreeMissingManageCapsIsNoop(t *testing.T) {
	depots := depotFarm(t, 1, 1<<20)
	data := testPayload(4*1024, 33)
	ex, err := Upload(context.Background(), "free-nomanage", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex.Extents {
		for j := range ex.Extents[i].Replicas {
			ex.Extents[i].Replicas[j].ManageCap = ""
		}
	}
	if err := Free(context.Background(), ex, nil); err != nil {
		t.Errorf("free without manage caps errored: %v", err)
	}
	// Nothing was freed: data still downloads.
	got, _, err := Download(context.Background(), ex, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("payload gone after no-op free")
	}
}

func TestUploadRecordsLeaseExpiry(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(32*1024, 21)
	before := time.Now()
	ex, err := Upload(context.Background(), "obj21", data, UploadOptions{
		Depots:     depots,
		StripeSize: 16 * 1024,
		Replicas:   2,
		Lease:      10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every placed replica carries a recorded expiry near now+lease (the
	// client-side estimate is conservative: taken before allocation).
	lo := before.Add(9 * time.Minute)
	hi := time.Now().Add(11 * time.Minute)
	for _, x := range ex.Extents {
		for _, r := range x.Replicas {
			exp := r.Expiry()
			if exp.IsZero() {
				t.Fatalf("replica on %s has no recorded expiry", r.Depot)
			}
			if exp.Before(lo) || exp.After(hi) {
				t.Errorf("replica expiry %v outside [%v, %v]", exp, lo, hi)
			}
		}
	}
	if h := ex.LeaseHorizon(); h.IsZero() || h.Before(lo) {
		t.Errorf("lease horizon = %v", h)
	}
}

func TestRefreshUpdatesRecordedExpiry(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(16*1024, 22)
	ex, err := Upload(context.Background(), "obj22", data, UploadOptions{
		Depots: depots,
		Lease:  2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	oldHorizon := ex.LeaseHorizon()
	if _, err := Refresh(context.Background(), ex, 30*time.Minute, nil); err != nil {
		t.Fatal(err)
	}
	h := ex.LeaseHorizon()
	if !h.After(oldHorizon) {
		t.Errorf("refresh did not advance horizon: %v -> %v", oldHorizon, h)
	}
	// The depot granted the requested term, so the recorded expiry must be
	// the depot's answer (~now+30m), not a client guess.
	if h.Before(time.Now().Add(29 * time.Minute)) {
		t.Errorf("horizon %v does not reflect the 30m renewal", h)
	}
}

func TestDownloadPreferOrdersReplicas(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(128*1024, 23)
	ex, err := Upload(context.Background(), "prefer", data, UploadOptions{
		Depots:     depots,
		StripeSize: 8 * 1024, // 16 extents, each replicated on both depots
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// depots[0] corrupts every payload. With a Prefer score marking it
	// expensive (as obs.DepotLatencyBias would after a latency regression),
	// every extent must be served by depots[1] on the first try — the bias
	// overrides the shuffle for all 16 extents across any seed.
	fd := netsim.NewFaultDialer(nil, 3)
	fd.SetFault(depots[0], netsim.FaultProfile{CorruptProb: 1})
	for seed := int64(1); seed <= 5; seed++ {
		got, stats, err := Download(context.Background(), ex, DownloadOptions{
			Dialer:      fd,
			Parallelism: 1,
			Rand:        rand.New(rand.NewSource(seed)),
			Prefer: func(depot string) float64 {
				if depot == depots[0] {
					return 1000 // slow depot: avoid
				}
				return 0 // no history: no penalty
			},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("seed %d: payload mismatch", seed)
		}
		if stats.FailedAttempts != 0 || stats.ChecksumErrors != 0 {
			t.Errorf("seed %d: stats = %+v, biased download still touched the corrupt depot", seed, stats)
		}
	}
}
