package lors

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"lonviz/internal/ibp"
)

// depotFarm starts n depots and returns their addresses.
func depotFarm(t *testing.T, n int, capacity int64) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: capacity, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr
	}
	return addrs
}

func testPayload(n int, seed int64) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(300*1024, 1) // 300 KiB over 64 KiB stripes
	ex, err := Upload(context.Background(), "obj1", data, UploadOptions{
		Depots:     depots,
		StripeSize: 64 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Length != int64(len(data)) {
		t.Errorf("exnode length = %d", ex.Length)
	}
	if len(ex.Extents) != 5 {
		t.Errorf("extents = %d, want 5", len(ex.Extents))
	}
	// Stripes must land on more than one depot.
	if len(ex.Depots()) < 2 {
		t.Errorf("striping used only %v", ex.Depots())
	}
	got, stats, err := Download(context.Background(), ex, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("download mismatch")
	}
	if stats.Bytes != int64(len(data)) || stats.ExtentFetches != 5 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestUploadReplication(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(100*1024, 2)
	ex, err := Upload(context.Background(), "obj2", data, UploadOptions{
		Depots:     depots,
		StripeSize: 32 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rf := ex.ReplicationFactor(); rf != 2 {
		t.Errorf("replication factor = %d", rf)
	}
	for _, ext := range ex.Extents {
		if ext.Replicas[0].Depot == ext.Replicas[1].Depot {
			t.Error("replicas placed on the same depot")
		}
	}
}

func TestUploadValidation(t *testing.T) {
	if _, err := Upload(context.Background(), "x", []byte("d"), UploadOptions{}); err == nil {
		t.Error("no depots accepted")
	}
	if _, err := Upload(context.Background(), "x", []byte("d"), UploadOptions{
		Depots:   []string{"a:1"},
		Replicas: 2,
	}); err == nil {
		t.Error("replicas > distinct depots accepted")
	}
}

func TestUploadEmptyObject(t *testing.T) {
	depots := depotFarm(t, 1, 1024)
	ex, err := Upload(context.Background(), "empty", nil, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Download(context.Background(), ex, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty object downloaded %d bytes", len(got))
	}
}

func TestDownloadFailoverToReplica(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(64*1024, 3)
	ex, err := Upload(context.Background(), "obj3", data, UploadOptions{
		Depots:     depots,
		StripeSize: 16 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Poison the first replica of every extent so failover must kick in.
	for i := range ex.Extents {
		ex.Extents[i].Replicas[0].ReadCap = "poisoned"
	}
	got, stats, err := Download(context.Background(), ex, DownloadOptions{
		Rand: rand.New(rand.NewSource(0)), // deterministic shuffle
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("failover download mismatch")
	}
	if stats.FailedAttempts == 0 {
		t.Error("poisoned replicas never tried; test ineffective")
	}
}

func TestDownloadAllReplicasDead(t *testing.T) {
	depots := depotFarm(t, 2, 1<<20)
	data := testPayload(8*1024, 4)
	ex, err := Upload(context.Background(), "obj4", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex.Extents {
		for j := range ex.Extents[i].Replicas {
			ex.Extents[i].Replicas[j].ReadCap = "gone"
		}
	}
	if _, _, err := Download(context.Background(), ex, DownloadOptions{}); err == nil {
		t.Error("download with dead replicas succeeded")
	}
}

func TestDownloadRaceReplicas(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(96*1024, 5)
	ex, err := Upload(context.Background(), "obj5", data, UploadOptions{
		Depots:     depots,
		StripeSize: 32 * 1024,
		Replicas:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Download(context.Background(), ex, DownloadOptions{RaceReplicas: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("raced download mismatch")
	}
	if stats.ReplicaTries < 9 { // 3 extents x 3 replicas all launched
		t.Errorf("race tried %d replicas, want 9", stats.ReplicaTries)
	}
	// Racing with one poisoned replica still succeeds.
	for i := range ex.Extents {
		ex.Extents[i].Replicas[0].ReadCap = "poisoned"
	}
	got, _, err = Download(context.Background(), ex, DownloadOptions{RaceReplicas: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("raced download with poison mismatch")
	}
}

func TestDownloadCancellation(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(64*1024, 6)
	ex, err := Upload(context.Background(), "obj6", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Download(ctx, ex, DownloadOptions{}); err == nil {
		t.Error("canceled download succeeded")
	}
}

func TestRefreshAndFree(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(32*1024, 7)
	ex, err := Upload(context.Background(), "obj7", data, UploadOptions{
		Depots:     depots,
		StripeSize: 16 * 1024,
		Lease:      2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Refresh(context.Background(), ex, 30*time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ex.Extents) {
		t.Errorf("refreshed %d of %d", n, len(ex.Extents))
	}
	if err := Free(context.Background(), ex, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Download(context.Background(), ex, DownloadOptions{}); err == nil {
		t.Error("download after free succeeded")
	}
}

func TestCopyToStagesWholeObject(t *testing.T) {
	src := depotFarm(t, 3, 1<<22)
	lanDepot := depotFarm(t, 1, 1<<22)[0]
	data := testPayload(128*1024, 8)
	ex, err := Upload(context.Background(), "obj8", data, UploadOptions{
		Depots:     src,
		StripeSize: 32 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	staged, err := CopyTo(context.Background(), ex, lanDepot, time.Minute, ibp.Volatile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if deps := staged.Depots(); len(deps) != 1 || deps[0] != lanDepot {
		t.Errorf("staged depots = %v", deps)
	}
	got, _, err := Download(context.Background(), staged, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("staged copy mismatch")
	}
}

func TestCopyToSurvivesOneDeadSource(t *testing.T) {
	src := depotFarm(t, 2, 1<<22)
	lanDepot := depotFarm(t, 1, 1<<22)[0]
	data := testPayload(32*1024, 9)
	ex, err := Upload(context.Background(), "obj9", data, UploadOptions{
		Depots:     src,
		StripeSize: 16 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Poison one replica per extent; CopyTo must fail over to the other.
	for i := range ex.Extents {
		ex.Extents[i].Replicas[0].ReadCap = "poisoned"
	}
	staged, err := CopyTo(context.Background(), ex, lanDepot, time.Minute, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Download(context.Background(), staged, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("failover staging mismatch")
	}
}

func TestUploadSkipsFullDepot(t *testing.T) {
	// One depot too small to take anything, one large: upload succeeds by
	// walking past the refusal.
	small := depotFarm(t, 1, 10)
	big := depotFarm(t, 1, 1<<22)
	data := testPayload(16*1024, 10)
	ex, err := Upload(context.Background(), "obj10", data, UploadOptions{
		Depots:     []string{small[0], big[0]},
		StripeSize: 8 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ex.Depots() {
		if d == small[0] {
			t.Error("stripe placed on undersized depot")
		}
	}
}
