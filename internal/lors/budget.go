package lors

import (
	"sync"
)

// RetryBudget is a token-bucket clamp on retry amplification. Every
// first-pass extent fetch earns Ratio tokens (capped at Burst); every
// retry pass spends one. While depots are healthy the bucket stays full
// and isolated failures retry freely, but during a brownout — when most
// fetches are failing and everything wants to retry — the bucket drains
// and further retry passes are refused, capping the cluster-wide load a
// slow depot fleet sees at roughly (1+Ratio)× the offered load instead
// of Retries×. The companion circuit breaker (HealthTracker) removes
// individually dead depots; the budget bounds the aggregate storm when
// everything is merely slow.
//
// A nil *RetryBudget allows every retry, so the clamp is strictly
// opt-in. One budget is meant to be shared across all downloads of a
// client agent (like the HealthTracker), which is what makes the cap
// cluster-wide rather than per-request.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

// Default retry-budget tuning: each first attempt earns a tenth of a
// retry, up to 10 banked retries.
const (
	DefaultRetryRatio = 0.1
	DefaultRetryBurst = 10
)

// NewRetryBudget builds a budget earning ratio tokens per recorded
// attempt with at most burst banked. Non-positive arguments take the
// defaults. The bucket starts full so cold-start failures can retry.
func NewRetryBudget(ratio, burst float64) *RetryBudget {
	if ratio <= 0 {
		ratio = DefaultRetryRatio
	}
	if burst <= 0 {
		burst = DefaultRetryBurst
	}
	return &RetryBudget{tokens: burst, ratio: ratio, burst: burst}
}

// RecordAttempt credits the budget for one first-pass fetch.
func (b *RetryBudget) RecordAttempt() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// AllowRetry spends one token if available and reports whether the
// retry may proceed.
func (b *RetryBudget) AllowRetry() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current balance (tests and gauges).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
