package lors

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"lonviz/internal/ibp"
	"lonviz/internal/overload"
)

func TestRetryBudgetTokenBucket(t *testing.T) {
	b := NewRetryBudget(0.5, 2)
	if !b.AllowRetry() || !b.AllowRetry() {
		t.Fatal("full bucket refused banked retries")
	}
	if b.AllowRetry() {
		t.Fatal("empty bucket allowed a retry")
	}
	b.RecordAttempt()
	if b.AllowRetry() {
		t.Fatal("half a token spent as a whole one")
	}
	b.RecordAttempt()
	if !b.AllowRetry() {
		t.Fatal("earned token refused")
	}
	// The bucket caps at burst.
	for i := 0; i < 100; i++ {
		b.RecordAttempt()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
}

func TestRetryBudgetNilAllows(t *testing.T) {
	var b *RetryBudget
	b.RecordAttempt()
	if !b.AllowRetry() {
		t.Fatal("nil budget refused a retry")
	}
}

// TestRetryBudgetCapsAmplification: with every replica dead and a large
// Retries, an empty shared budget fails extents after the first pass
// instead of burning Retries× passes of depot load.
func TestRetryBudgetCapsAmplification(t *testing.T) {
	depots := depotFarm(t, 2, 1<<20)
	data := testPayload(8*1024, 9)
	ex, err := Upload(context.Background(), "objbudget", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex.Extents {
		for j := range ex.Extents[i].Replicas {
			ex.Extents[i].Replicas[j].ReadCap = "poisoned"
		}
	}
	budget := NewRetryBudget(0.001, 1)
	if !budget.AllowRetry() {
		t.Fatal("draining the bucket")
	}
	_, stats, err := Download(context.Background(), ex, DownloadOptions{
		Retries: 10,
		Budget:  budget,
		Rand:    rand.New(rand.NewSource(0)),
	})
	if err == nil {
		t.Fatal("download of poisoned object succeeded")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("error = %v, want retry budget exhausted", err)
	}
	if stats.BudgetExhausted == 0 {
		t.Fatalf("stats = %+v, want BudgetExhausted > 0", stats)
	}
	// One first pass per extent, no retry passes: tries stay bounded by
	// the replica count instead of Retries× it.
	maxTries := 0
	for _, e := range ex.Extents {
		maxTries += len(e.Replicas)
	}
	if stats.ReplicaTries > maxTries {
		t.Fatalf("replica tries = %d > %d: budget did not clamp retries", stats.ReplicaTries, maxTries)
	}
}

// TestBusyFailsOverWithoutTrippingCircuit: a depot shedding with BUSY is
// retryable-elsewhere — the download succeeds off the replica, the busy
// depot's circuit stays closed, and the shed is accounted separately
// from failures.
func TestBusyFailsOverWithoutTrippingCircuit(t *testing.T) {
	// Two depots, one object replicated on both.
	var srvs []*ibp.Server
	var addrs []string
	for i := 0; i < 2; i++ {
		d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 20, MaxLease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := ibp.NewServer(d)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs = append(srvs, srv)
		addrs = append(addrs, addr)
	}
	data := testPayload(8*1024, 11)
	ex, err := Upload(context.Background(), "objbusy", data, UploadOptions{
		Depots:   addrs,
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Depot 0 starts shedding everything: zero-slot queue, slot held.
	srvs[0].Admission = overload.NewGate(1, 0, 10*time.Millisecond)
	release, err := srvs[0].Admission.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	health := NewHealthTracker(HealthConfig{})
	var totalBusy int
	for pass := 0; pass < 5; pass++ {
		got, stats, err := Download(context.Background(), ex, DownloadOptions{
			Health: health,
			Rand:   rand.New(rand.NewSource(int64(pass))),
		})
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pass %d: payload mismatch", pass)
		}
		totalBusy += stats.BusyRejections
		if stats.FailedAttempts != 0 {
			t.Fatalf("pass %d: BUSY counted as failure: %+v", pass, stats)
		}
	}
	if totalBusy == 0 {
		t.Fatal("shuffle never tried the busy depot; test ineffective")
	}
	if !health.Allow(addrs[0]) {
		t.Fatal("BUSY rejections tripped the circuit breaker")
	}
}

// TestBusyTypedAcrossWire pins that the BUSY code survives the protocol
// round trip as a typed error lors can classify.
func TestBusyTypedAcrossWire(t *testing.T) {
	d, err := ibp.NewDepot(ibp.DepotConfig{Capacity: 1 << 20, MaxLease: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := ibp.NewServer(d)
	srv.Admission = overload.NewGate(1, 0, 10*time.Millisecond)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	release, err := srv.Admission.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	cl := &ibp.Client{Addr: addr}
	if _, err := cl.Load(context.Background(), "cap", 0, 8); !errors.Is(err, ibp.ErrBusy) {
		t.Fatalf("load against shedding depot: %v, want ibp.ErrBusy", err)
	}
}
