// Package lors implements the Logistical Runtime System layer of the
// network storage stack (paper Figure 1): tools that compose primitive IBP
// operations into whole-object transfers. Upload stripes an object across
// depots with replication and returns an exNode; Download reassembles the
// object with multi-threaded parallel reads, replica failover, and
// optional replica racing — the high-performance wide-area download
// algorithms of Plank et al. (paper reference [14]).
package lors

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"sync"
	"time"

	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
)

// UploadOptions configures Upload.
type UploadOptions struct {
	// Depots are candidate depot addresses; stripes round-robin across
	// them. Required, at least Replicas distinct entries.
	Depots []string
	// StripeSize is the extent size in bytes (default 256 KiB).
	StripeSize int64
	// Replicas is the number of copies per stripe on distinct depots
	// (default 1).
	Replicas int
	// Lease is the allocation lease requested from depots (default 10m).
	Lease time.Duration
	// Policy is the IBP allocation policy (default Stable).
	Policy ibp.Policy
	// Dialer shapes depot connections; nil means plain TCP.
	Dialer ibp.Dialer
	// Parallelism bounds concurrent stripe uploads (default 4).
	Parallelism int
}

func (o *UploadOptions) defaults() error {
	if len(o.Depots) == 0 {
		return errors.New("lors: no depots")
	}
	if o.StripeSize <= 0 {
		o.StripeSize = 256 * 1024
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	distinct := map[string]bool{}
	for _, d := range o.Depots {
		distinct[d] = true
	}
	if o.Replicas > len(distinct) {
		return fmt.Errorf("lors: %d replicas need %d distinct depots, have %d",
			o.Replicas, o.Replicas, len(distinct))
	}
	if o.Lease == 0 {
		o.Lease = 10 * time.Minute
	}
	if o.Policy == "" {
		o.Policy = ibp.Stable
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	return nil
}

func (o *UploadOptions) client(addr string) *ibp.Client {
	return &ibp.Client{Addr: addr, Dialer: o.Dialer}
}

// Upload stripes data across depots and returns the exNode describing it.
// Each stripe is stored on Replicas distinct depots chosen round-robin.
func Upload(ctx context.Context, name string, data []byte, opts UploadOptions) (*exnode.ExNode, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	ex := &exnode.ExNode{
		Name:     name,
		Length:   int64(len(data)),
		Checksum: fmt.Sprintf("crc32:%08x", crc32.ChecksumIEEE(data)),
	}
	if len(data) == 0 {
		return ex, nil
	}
	type job struct {
		idx         int
		offset, end int64
	}
	var jobs []job
	for off := int64(0); off < int64(len(data)); off += opts.StripeSize {
		end := off + opts.StripeSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		jobs = append(jobs, job{idx: len(jobs), offset: off, end: end})
	}
	extents := make([]exnode.Extent, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	for _, j := range jobs {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			ext, err := uploadStripe(ctx, data[j.offset:j.end], j, opts)
			extents[j.idx] = ext
			errs[j.idx] = err
		}(j)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	ex.Extents = extents
	if err := ex.Validate(); err != nil {
		return nil, fmt.Errorf("lors: built invalid exnode: %w", err)
	}
	return ex, nil
}

// uploadStripe stores one stripe on Replicas distinct depots.
func uploadStripe(ctx context.Context, chunk []byte, j struct {
	idx         int
	offset, end int64
}, opts UploadOptions) (exnode.Extent, error) {
	ext := exnode.Extent{Offset: j.offset, Length: j.end - j.offset}
	placed := 0
	tried := map[string]bool{}
	// Start each stripe on a different depot for balance, then walk.
	for step := 0; placed < opts.Replicas && step < 2*len(opts.Depots); step++ {
		if err := ctx.Err(); err != nil {
			return ext, err
		}
		addr := opts.Depots[(j.idx+step)%len(opts.Depots)]
		if tried[addr] {
			continue
		}
		tried[addr] = true
		cl := opts.client(addr)
		caps, err := cl.Allocate(ext.Length, opts.Lease, opts.Policy)
		if err != nil {
			continue // admission refusal or dead depot: try the next
		}
		if err := cl.Store(caps.Write, 0, chunk); err != nil {
			continue
		}
		ext.Replicas = append(ext.Replicas, exnode.Replica{
			Depot:     addr,
			ReadCap:   caps.Read,
			ManageCap: caps.Manage,
		})
		placed++
	}
	if placed < opts.Replicas {
		return ext, fmt.Errorf("lors: stripe at %d: placed %d of %d replicas", j.offset, placed, opts.Replicas)
	}
	return ext, nil
}

// DownloadOptions configures Download.
type DownloadOptions struct {
	// Dialer shapes depot connections; nil means plain TCP.
	Dialer ibp.Dialer
	// Parallelism bounds concurrent extent downloads (default 4). This is
	// the paper's "simultaneous downloads in parallel" knob.
	Parallelism int
	// RaceReplicas fetches every replica of an extent concurrently and
	// takes the first success, instead of sequential failover. Higher
	// throughput variance resistance at the cost of redundant transfer
	// (progressive-redundancy download, reference [14]).
	RaceReplicas bool
	// Retries is how many times the full replica list is retried per
	// extent before giving up (default 1, i.e. one pass).
	Retries int
	// Rand orders replica attempts; nil uses a time-seeded source.
	Rand *rand.Rand
}

func (o *DownloadOptions) defaults() {
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	if o.Retries <= 0 {
		o.Retries = 1
	}
}

// DownloadStats reports transfer accounting for one Download call.
type DownloadStats struct {
	Bytes          int64 // payload bytes assembled
	ExtentFetches  int   // extents fetched
	ReplicaTries   int   // replica load attempts, including failures
	FailedAttempts int   // failed replica loads
}

// Download reassembles an exNode's payload from the network.
func Download(ctx context.Context, ex *exnode.ExNode, opts DownloadOptions) ([]byte, DownloadStats, error) {
	opts.defaults()
	var stats DownloadStats
	if err := ex.Validate(); err != nil {
		return nil, stats, err
	}
	out := make([]byte, ex.Length)
	extents := ex.SortedExtents()
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	errs := make([]error, len(extents))
	var statsMu sync.Mutex
	for i, ext := range extents {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, ext exnode.Extent) {
			defer wg.Done()
			defer func() { <-sem }()
			st, err := fetchExtent(ctx, ext, out[ext.Offset:ext.Offset+ext.Length], opts)
			statsMu.Lock()
			stats.ReplicaTries += st.ReplicaTries
			stats.FailedAttempts += st.FailedAttempts
			stats.ExtentFetches++
			statsMu.Unlock()
			errs[i] = err
		}(i, ext)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	stats.Bytes = ex.Length
	return out, stats, nil
}

// fetchExtent fills dst with one extent's bytes using failover or racing.
func fetchExtent(ctx context.Context, ext exnode.Extent, dst []byte, opts DownloadOptions) (DownloadStats, error) {
	var stats DownloadStats
	replicas := append([]exnode.Replica{}, ext.Replicas...)
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	rng.Shuffle(len(replicas), func(i, j int) { replicas[i], replicas[j] = replicas[j], replicas[i] })

	if opts.RaceReplicas && len(replicas) > 1 {
		data, st, err := raceReplicas(ctx, ext, replicas, opts)
		stats.ReplicaTries += st.ReplicaTries
		stats.FailedAttempts += st.FailedAttempts
		if err != nil {
			return stats, err
		}
		copy(dst, data)
		return stats, nil
	}

	var lastErr error
	for attempt := 0; attempt < opts.Retries; attempt++ {
		for _, rep := range replicas {
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			stats.ReplicaTries++
			cl := &ibp.Client{Addr: rep.Depot, Dialer: opts.Dialer}
			data, err := cl.Load(rep.ReadCap, rep.AllocOffset, ext.Length)
			if err != nil {
				stats.FailedAttempts++
				lastErr = err
				continue
			}
			copy(dst, data)
			return stats, nil
		}
	}
	return stats, fmt.Errorf("lors: extent at %d: all %d replicas failed: %w",
		ext.Offset, len(replicas), lastErr)
}

// raceReplicas launches all replicas concurrently and returns the first
// success.
func raceReplicas(ctx context.Context, ext exnode.Extent, replicas []exnode.Replica, opts DownloadOptions) ([]byte, DownloadStats, error) {
	var stats DownloadStats
	type result struct {
		data []byte
		err  error
	}
	ch := make(chan result, len(replicas))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for _, rep := range replicas {
		stats.ReplicaTries++
		go func(rep exnode.Replica) {
			cl := &ibp.Client{Addr: rep.Depot, Dialer: opts.Dialer}
			// The IBP client has its own timeout; context cancellation here
			// just abandons the result.
			data, err := cl.Load(rep.ReadCap, rep.AllocOffset, ext.Length)
			select {
			case ch <- result{data, err}:
			case <-cctx.Done():
			}
		}(rep)
	}
	var lastErr error
	for i := 0; i < len(replicas); i++ {
		select {
		case <-ctx.Done():
			return nil, stats, ctx.Err()
		case r := <-ch:
			if r.err == nil {
				return r.data, stats, nil
			}
			stats.FailedAttempts++
			lastErr = r.err
		}
	}
	return nil, stats, fmt.Errorf("lors: extent at %d: race lost on all %d replicas: %w",
		ext.Offset, len(replicas), lastErr)
}

// Refresh extends the lease on every replica allocation that carries a
// manage capability, returning the number of successful extensions. The
// client agent uses it to keep cached-on-depot view sets alive.
func Refresh(ctx context.Context, ex *exnode.ExNode, lease time.Duration, dialer ibp.Dialer) (int, error) {
	if err := ex.Validate(); err != nil {
		return 0, err
	}
	ok := 0
	var lastErr error
	for _, ext := range ex.Extents {
		for _, rep := range ext.Replicas {
			if rep.ManageCap == "" {
				continue
			}
			if err := ctx.Err(); err != nil {
				return ok, err
			}
			cl := &ibp.Client{Addr: rep.Depot, Dialer: dialer}
			if _, err := cl.Extend(rep.ManageCap, lease); err != nil {
				lastErr = err
				continue
			}
			ok++
		}
	}
	if ok == 0 && lastErr != nil {
		return 0, lastErr
	}
	return ok, nil
}

// Free releases every replica allocation with a manage capability.
func Free(ctx context.Context, ex *exnode.ExNode, dialer ibp.Dialer) error {
	var lastErr error
	for _, ext := range ex.Extents {
		for _, rep := range ext.Replicas {
			if rep.ManageCap == "" {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			cl := &ibp.Client{Addr: rep.Depot, Dialer: dialer}
			if err := cl.Free(rep.ManageCap); err != nil {
				lastErr = err
			}
		}
	}
	return lastErr
}

// CopyTo replicates the whole object onto the target depot with third-party
// copies executed by the source depots, returning a new exNode whose
// extents point at the target. This is the primitive behind prestaging view
// sets to a LAN depot (paper Figure 5): no payload bytes traverse the
// caller.
func CopyTo(ctx context.Context, ex *exnode.ExNode, targetAddr string, lease time.Duration, policy ibp.Policy, dialer ibp.Dialer) (*exnode.ExNode, error) {
	return CopyToStriped(ctx, ex, []string{targetAddr}, lease, policy, dialer)
}

// CopyToStriped stages the object across several target depots, assigning
// extents round-robin — the paper's configuration stripes staged view sets
// "across four depots attached to the client agent by a 1Gb/s LAN".
func CopyToStriped(ctx context.Context, ex *exnode.ExNode, targets []string, lease time.Duration, policy ibp.Policy, dialer ibp.Dialer) (*exnode.ExNode, error) {
	if len(targets) == 0 {
		return nil, errors.New("lors: no staging targets")
	}
	if err := ex.Validate(); err != nil {
		return nil, err
	}
	if policy == "" {
		policy = ibp.Volatile // staged copies are cache, soft by default
	}
	out := &exnode.ExNode{Name: ex.Name, Length: ex.Length, Checksum: ex.Checksum}
	for k, ext := range ex.SortedExtents() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		targetAddr := targets[k%len(targets)]
		target := &ibp.Client{Addr: targetAddr, Dialer: dialer}
		caps, err := target.Allocate(ext.Length, lease, policy)
		if err != nil {
			return nil, fmt.Errorf("lors: staging allocation on %s: %w", targetAddr, err)
		}
		copied := false
		var lastErr error
		// Sort replica attempts deterministically for reproducible tests.
		reps := append([]exnode.Replica{}, ext.Replicas...)
		sort.Slice(reps, func(i, j int) bool { return reps[i].Depot < reps[j].Depot })
		for _, rep := range reps {
			src := &ibp.Client{Addr: rep.Depot, Dialer: dialer}
			if err := src.Copy(rep.ReadCap, rep.AllocOffset, ext.Length, targetAddr, caps.Write, 0); err != nil {
				lastErr = err
				continue
			}
			copied = true
			break
		}
		if !copied {
			return nil, fmt.Errorf("lors: staging extent at %d failed: %w", ext.Offset, lastErr)
		}
		out.Extents = append(out.Extents, exnode.Extent{
			Offset: ext.Offset,
			Length: ext.Length,
			Replicas: []exnode.Replica{{
				Depot:     targetAddr,
				ReadCap:   caps.Read,
				ManageCap: caps.Manage,
			}},
		})
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("lors: staged exnode invalid: %w", err)
	}
	return out, nil
}
