// Package lors implements the Logistical Runtime System layer of the
// network storage stack (paper Figure 1): tools that compose primitive IBP
// operations into whole-object transfers. Upload stripes an object across
// depots with replication and returns an exNode; Download reassembles the
// object with multi-threaded parallel reads, replica failover, and
// optional replica racing — the high-performance wide-area download
// algorithms of Plank et al. (paper reference [14]).
//
// The layer is self-healing over degraded links, not just dead ones:
// every extent carries a CRC32 written at upload time and verified on
// every load (a corrupted payload counts as a failed attempt and triggers
// failover), replica-list passes are separated by bounded exponential
// backoff with jitter, and an optional HealthTracker circuit breaker
// steers traffic away from depots that keep failing.
//
// Every transfer records into an internal/obs registry (the Obs field on
// the option structs; nil means the process-wide default): download,
// upload, and staging latency histograms, byte counters, failover and
// checksum counters, and circuit-breaker trip/open metrics — the
// lors.* families of docs/OBSERVABILITY.md.
package lors

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"lonviz/internal/bufpool"
	"lonviz/internal/exnode"
	"lonviz/internal/ibp"
	"lonviz/internal/obs"
)

// registryOr resolves the metrics destination for an options struct.
func registryOr(reg *obs.Registry) *obs.Registry {
	if reg != nil {
		return reg
	}
	return obs.Default()
}

// observeMs records elapsed time into a named latency histogram.
func observeMs(reg *obs.Registry, name string, elapsed time.Duration) {
	reg.Histogram(name, obs.LatencyBucketsMs...).Observe(float64(elapsed) / 1e6)
}

// replicaRand orders replica attempts when DownloadOptions.Rand is nil. A
// single package-level seeded source behind a mutex is cheaper than a
// source per fetch, and two extents fetched in the same nanosecond no
// longer shuffle identically.
var (
	replicaRandMu sync.Mutex
	replicaRand   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// lockedShuffle shuffles reps with rng (or the package source when rng is
// nil) under the package mutex, so one *rand.Rand shared across the
// concurrent extent fetches of a Download is safe.
func lockedShuffle(rng *rand.Rand, reps []exnode.Replica) {
	replicaRandMu.Lock()
	defer replicaRandMu.Unlock()
	if rng == nil {
		rng = replicaRand
	}
	rng.Shuffle(len(reps), func(i, j int) { reps[i], reps[j] = reps[j], reps[i] })
}

// lockedFloat64 draws one uniform sample for backoff jitter.
func lockedFloat64(rng *rand.Rand) float64 {
	replicaRandMu.Lock()
	defer replicaRandMu.Unlock()
	if rng == nil {
		rng = replicaRand
	}
	return rng.Float64()
}

// UploadOptions configures Upload.
type UploadOptions struct {
	// Depots are candidate depot addresses; stripes round-robin across
	// them. Required, at least Replicas distinct entries.
	Depots []string
	// StripeSize is the extent size in bytes (default 256 KiB).
	StripeSize int64
	// Replicas is the number of copies per stripe on distinct depots
	// (default 1).
	Replicas int
	// Lease is the allocation lease requested from depots (default 10m).
	Lease time.Duration
	// Policy is the IBP allocation policy (default Stable).
	Policy ibp.Policy
	// Dialer shapes depot connections; nil means plain TCP.
	Dialer ibp.Dialer
	// Parallelism bounds concurrent stripe uploads (default 4).
	Parallelism int
	// Timeout bounds each IBP operation (0 uses the ibp default, 30s).
	Timeout time.Duration
	// Obs receives upload timings and byte counters (lors.upload.*); nil
	// records into obs.Default().
	Obs *obs.Registry
}

func (o *UploadOptions) defaults() error {
	if len(o.Depots) == 0 {
		return errors.New("lors: no depots")
	}
	if o.StripeSize <= 0 {
		o.StripeSize = 256 * 1024
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	distinct := map[string]bool{}
	for _, d := range o.Depots {
		distinct[d] = true
	}
	if o.Replicas > len(distinct) {
		return fmt.Errorf("lors: %d replicas need %d distinct depots, have %d",
			o.Replicas, o.Replicas, len(distinct))
	}
	if o.Lease == 0 {
		o.Lease = 10 * time.Minute
	}
	if o.Policy == "" {
		o.Policy = ibp.Stable
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	return nil
}

func (o *UploadOptions) client(addr string) *ibp.Client {
	return &ibp.Client{Addr: addr, Dialer: o.Dialer, Timeout: o.Timeout, Obs: o.Obs}
}

// Upload stripes data across depots and returns the exNode describing it.
// Each stripe is stored on Replicas distinct depots chosen round-robin,
// and each extent records the CRC32 of its payload so downloads can detect
// depot-side corruption.
func Upload(ctx context.Context, name string, data []byte, opts UploadOptions) (*exnode.ExNode, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	defer func(start time.Time) {
		observeMs(registryOr(opts.Obs), obs.MLorsUploadMs, time.Since(start))
	}(time.Now())
	ex := &exnode.ExNode{
		Name:     name,
		Length:   int64(len(data)),
		Checksum: exnode.ChecksumOf(data),
	}
	if len(data) == 0 {
		return ex, nil
	}
	type job struct {
		idx         int
		offset, end int64
	}
	var jobs []job
	for off := int64(0); off < int64(len(data)); off += opts.StripeSize {
		end := off + opts.StripeSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		jobs = append(jobs, job{idx: len(jobs), offset: off, end: end})
	}
	extents := make([]exnode.Extent, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	for _, j := range jobs {
		// Acquire a slot inside a select so cancellation cannot strand the
		// dispatcher behind workers that hold every slot.
		select {
		case <-ctx.Done():
			errs[j.idx] = ctx.Err()
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			ext, err := uploadStripe(ctx, data[j.offset:j.end], j, opts)
			extents[j.idx] = ext
			errs[j.idx] = err
		}(j)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	ex.Extents = extents
	if err := ex.Validate(); err != nil {
		return nil, fmt.Errorf("lors: built invalid exnode: %w", err)
	}
	return ex, nil
}

// uploadStripe stores one stripe on Replicas distinct depots.
func uploadStripe(ctx context.Context, chunk []byte, j struct {
	idx         int
	offset, end int64
}, opts UploadOptions) (exnode.Extent, error) {
	reg := registryOr(opts.Obs)
	defer func(start time.Time) {
		observeMs(reg, obs.MLorsStripeMs, time.Since(start))
	}(time.Now())
	ext := exnode.Extent{
		Offset:   j.offset,
		Length:   j.end - j.offset,
		Checksum: exnode.ChecksumOf(chunk),
	}
	placed := 0
	tried := map[string]bool{}
	// Recorded lease expiry for the replicas placed below. Measured before
	// the allocations, so it never overstates what the depot granted.
	expiry := time.Now().Add(opts.Lease)
	// Start each stripe on a different depot for balance, then walk.
	for step := 0; placed < opts.Replicas && step < 2*len(opts.Depots); step++ {
		if err := ctx.Err(); err != nil {
			return ext, err
		}
		addr := opts.Depots[(j.idx+step)%len(opts.Depots)]
		if tried[addr] {
			continue
		}
		tried[addr] = true
		cl := opts.client(addr)
		caps, err := cl.Allocate(ctx, ext.Length, opts.Lease, opts.Policy)
		if err != nil {
			continue // admission refusal or dead depot: try the next
		}
		if err := cl.Store(ctx, caps.Write, 0, chunk); err != nil {
			// The allocation succeeded but the store didn't: free it so a
			// half-written depot isn't left holding a leaked allocation
			// until lease expiry.
			_ = cl.Free(context.WithoutCancel(ctx), caps.Manage)
			continue
		}
		rep := exnode.Replica{
			Depot:     addr,
			ReadCap:   caps.Read,
			ManageCap: caps.Manage,
		}
		rep.SetExpiry(expiry)
		ext.Replicas = append(ext.Replicas, rep)
		reg.Counter(obs.MLorsUploadBytes).Add(ext.Length)
		placed++
	}
	if placed < opts.Replicas {
		return ext, fmt.Errorf("lors: stripe at %d: placed %d of %d replicas", j.offset, placed, opts.Replicas)
	}
	return ext, nil
}

// DownloadOptions configures Download.
type DownloadOptions struct {
	// Dialer shapes depot connections; nil means plain TCP.
	Dialer ibp.Dialer
	// Parallelism bounds concurrent extent downloads (default 4). This is
	// the paper's "simultaneous downloads in parallel" knob.
	Parallelism int
	// RaceReplicas fetches every replica of an extent concurrently and
	// takes the first success, instead of sequential failover. Higher
	// throughput variance resistance at the cost of redundant transfer
	// (progressive-redundancy download, reference [14]).
	RaceReplicas bool
	// Retries is how many times the full replica list is retried per
	// extent before giving up (default 1, i.e. one pass).
	Retries int
	// BackoffBase is the delay before the second replica-list pass; each
	// further pass doubles it, capped at BackoffMax, with uniform jitter
	// in [1/2, 1) of the computed delay (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the between-pass delay (default 2s).
	BackoffMax time.Duration
	// Timeout bounds each IBP operation (0 uses the ibp default, 30s).
	Timeout time.Duration
	// Health, when set, is consulted before every replica attempt and told
	// about every outcome: replicas on circuit-open depots are skipped for
	// the cooldown, so a dead or flapping depot is not hammered.
	Health *HealthTracker
	// Budget, when set, caps retry amplification across every download
	// sharing it: a retry pass that finds the token bucket empty fails the
	// extent instead of re-hammering depots that are slow precisely
	// because everyone is retrying. nil allows every configured retry.
	Budget *RetryBudget
	// Rand orders replica attempts; nil uses the package-level seeded
	// source.
	Rand *rand.Rand
	// Prefer, when set, scores a depot for replica ordering: after the
	// shuffle, replicas are stable-sorted by ascending score, so
	// lower-scoring depots are attempted first while equal scores keep
	// the shuffled spread. obs.DepotLatencyBias builds the standard
	// score (recent p99 round-trip from the TSDB history), steering
	// downloads away from depots whose latency has regressed before
	// their circuit ever trips.
	Prefer func(depot string) float64
	// Pipes, when set, carries extent loads over persistent pipelined
	// depot connections (ibp.PipePool): payloads land directly in the
	// caller's destination buffer with no intermediate allocation, and
	// depots that don't speak PIPELINE fall back to one-shot serial
	// clients automatically. nil dials a serial connection per attempt.
	Pipes *ibp.PipePool
	// OnPrefix, when set, is invoked with the byte length of the
	// verified contiguous prefix of the object each time it grows — the
	// hook streaming consumers (codec.DecompressFrom over a
	// lors.StreamBuffer) use to decompress while later extents are still
	// in flight. Calls are serialized and the argument is strictly
	// increasing, ending with the object length on success. The callback
	// must not block: it runs on extent-fetch goroutines.
	OnPrefix func(n int64)
	// Obs receives download timings and transfer counters
	// (lors.download.*); nil records into obs.Default().
	Obs *obs.Registry
	// Tracer receives per-extent and per-attempt spans (lors.extent /
	// lors.attempt) when the download runs under an active trace; nil
	// records into obs.DefaultTracer().
	Tracer *obs.Tracer
}

func (o *DownloadOptions) defaults() {
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	if o.Retries <= 0 {
		o.Retries = 1
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
}

func (o *DownloadOptions) client(addr string) *ibp.Client {
	return &ibp.Client{Addr: addr, Dialer: o.Dialer, Timeout: o.Timeout, Obs: o.Obs}
}

// loadInto fetches one replica's payload directly into dst, over the
// pipelined pool when one is configured and a fresh serial connection
// otherwise. len(dst) is the requested length.
func (o *DownloadOptions) loadInto(ctx context.Context, rep exnode.Replica, dst []byte) error {
	if o.Pipes != nil {
		return o.Pipes.LoadInto(ctx, rep.Depot, rep.ReadCap, rep.AllocOffset, dst)
	}
	return o.client(rep.Depot).LoadInto(ctx, rep.ReadCap, rep.AllocOffset, dst)
}

// span opens a child span when the download is actually being traced
// (propagation on AND an active parent span in ctx); otherwise it returns
// ctx unchanged and a nil (inert) span, so untraced downloads pay no
// tracing allocations. The returned context carries the span, which is
// what makes the ibp client stamp the attempt's own span ID onto the
// wire token — a failover retry is then visible as sibling lors.attempt
// spans in the merged tree, each with its depot-side ibp.serve child.
func (o *DownloadOptions) span(ctx context.Context, name string) (context.Context, *obs.Span) {
	if !obs.PropagationEnabled() || obs.SpanFromContext(ctx) == nil {
		return ctx, nil
	}
	tr := o.Tracer
	if tr == nil {
		tr = obs.DefaultTracer()
	}
	return tr.StartSpan(ctx, name)
}

// backoff sleeps before retry pass attempt (1-based), ctx-aware.
func (o *DownloadOptions) backoff(ctx context.Context, attempt int) error {
	d := o.BackoffBase << (attempt - 1)
	if d > o.BackoffMax || d <= 0 {
		d = o.BackoffMax
	}
	// Jitter into [d/2, d) so retrying extents don't synchronize.
	d = d/2 + time.Duration(lockedFloat64(o.Rand)*float64(d/2))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// DownloadStats reports transfer accounting for one Download call.
type DownloadStats struct {
	Bytes           int64 // payload bytes assembled
	ExtentFetches   int   // extents fetched
	ReplicaTries    int   // replica load attempts, including failures
	FailedAttempts  int   // failed replica loads (refusals, errors, corruption)
	ChecksumErrors  int   // failed attempts that were checksum mismatches
	Skipped         int   // replicas skipped because their depot's circuit was open
	BusyRejections  int   // attempts shed by depot admission control (BUSY)
	BudgetExhausted int   // retry passes refused by the retry budget
	// ServedBy counts successful extent serves per depot address, so
	// callers can tell which tier actually delivered the bytes (every
	// extent served by the edge tier vs. any WAN depot crossing). nil
	// until the first success.
	ServedBy map[string]int
}

// served records one successful extent serve from depot.
func (s *DownloadStats) served(depot string) {
	if s.ServedBy == nil {
		s.ServedBy = make(map[string]int)
	}
	s.ServedBy[depot]++
}

// add accumulates per-extent stats into a download-wide total.
func (s *DownloadStats) add(o DownloadStats) {
	s.ReplicaTries += o.ReplicaTries
	s.FailedAttempts += o.FailedAttempts
	s.ChecksumErrors += o.ChecksumErrors
	s.Skipped += o.Skipped
	s.BusyRejections += o.BusyRejections
	s.BudgetExhausted += o.BudgetExhausted
	for depot, n := range o.ServedBy {
		if s.ServedBy == nil {
			s.ServedBy = make(map[string]int)
		}
		s.ServedBy[depot] += n
	}
}

// Download reassembles an exNode's payload from the network.
func Download(ctx context.Context, ex *exnode.ExNode, opts DownloadOptions) ([]byte, DownloadStats, error) {
	out := make([]byte, ex.Length)
	stats, err := DownloadInto(ctx, ex, out, opts)
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// DownloadInto reassembles an exNode's payload directly into dst, whose
// length must equal the exNode length. Extent payloads travel from the
// depot socket into dst with no intermediate buffer (failover path), so
// callers that own a long-lived frame buffer cross process memory once.
// When OnPrefix is set, it fires as the verified contiguous prefix grows.
func DownloadInto(ctx context.Context, ex *exnode.ExNode, dst []byte, opts DownloadOptions) (DownloadStats, error) {
	opts.defaults()
	var stats DownloadStats
	reg := registryOr(opts.Obs)
	defer func(start time.Time) {
		observeMs(reg, obs.MLorsDownloadMs, time.Since(start))
		reg.Counter(obs.MLorsDownloadBytes).Add(stats.Bytes)
		reg.Counter(obs.MLorsReplicaTries).Add(int64(stats.ReplicaTries))
		reg.Counter(obs.MLorsFailedAttempts).Add(int64(stats.FailedAttempts))
		reg.Counter(obs.MLorsChecksumErrors).Add(int64(stats.ChecksumErrors))
		reg.Counter(obs.MLorsSkippedReplicas).Add(int64(stats.Skipped))
		reg.Counter(obs.MLorsBusyRejections).Add(int64(stats.BusyRejections))
		reg.Counter(obs.MLorsRetryBudgetExhausted).Add(int64(stats.BudgetExhausted))
	}(time.Now())
	if err := ex.Validate(); err != nil {
		return stats, err
	}
	if int64(len(dst)) != ex.Length {
		return stats, fmt.Errorf("lors: destination is %d bytes, object is %d", len(dst), ex.Length)
	}
	extents := ex.SortedExtents()
	// Verified-prefix tracking for streaming consumers: extents complete
	// out of order, so completion advances a frontier over the sorted
	// extent list and reports the contiguous byte count covered so far.
	var prefixMu sync.Mutex
	completed := make([]bool, len(extents))
	frontier := 0
	notifyDone := func(i int) {
		if opts.OnPrefix == nil {
			return
		}
		prefixMu.Lock()
		defer prefixMu.Unlock()
		completed[i] = true
		advanced := false
		for frontier < len(extents) && completed[frontier] {
			frontier++
			advanced = true
		}
		if !advanced {
			return
		}
		prefix := ex.Length
		if frontier < len(extents) {
			prefix = extents[frontier].Offset
		}
		opts.OnPrefix(prefix)
	}
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	errs := make([]error, len(extents))
	var statsMu sync.Mutex
	for i, ext := range extents {
		select {
		case <-ctx.Done():
			errs[i] = ctx.Err()
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int, ext exnode.Extent) {
			defer wg.Done()
			defer func() { <-sem }()
			st, err := fetchExtent(ctx, ext, dst[ext.Offset:ext.Offset+ext.Length], opts)
			statsMu.Lock()
			stats.add(st)
			stats.ExtentFetches++
			statsMu.Unlock()
			errs[i] = err
			if err == nil {
				notifyDone(i)
			}
		}(i, ext)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	stats.Bytes = ex.Length
	return stats, nil
}

// errAllCircuitsOpen reports an extent whose every replica sits behind an
// open circuit; retries wait out the backoff and look again.
var errAllCircuitsOpen = errors.New("lors: every replica depot is circuit-open")

// fetchExtent fills dst with one extent's bytes using failover or racing.
// Loaded bytes are verified against the extent checksum before use: a
// corrupted payload is a failed attempt, never returned data.
func fetchExtent(ctx context.Context, ext exnode.Extent, dst []byte, opts DownloadOptions) (DownloadStats, error) {
	var stats DownloadStats
	reg := registryOr(opts.Obs)
	defer func(start time.Time) {
		observeMs(reg, obs.MLorsExtentMs, time.Since(start))
	}(time.Now())
	ctx, espan := opts.span(ctx, obs.SpanLorsExtent)
	espan.SetAttr("offset", strconv.FormatInt(ext.Offset, 10))
	espan.SetAttr("length", strconv.FormatInt(ext.Length, 10))
	defer espan.Finish()
	replicas := append([]exnode.Replica{}, ext.Replicas...)
	lockedShuffle(opts.Rand, replicas)
	if opts.Prefer != nil {
		// Score once per depot, then order best-first. The sort is stable
		// over the shuffle so unbiased depots still spread load.
		scores := make(map[string]float64, len(replicas))
		for _, r := range replicas {
			if _, ok := scores[r.Depot]; !ok {
				scores[r.Depot] = opts.Prefer(r.Depot)
			}
		}
		sort.SliceStable(replicas, func(i, j int) bool {
			return scores[replicas[i].Depot] < scores[replicas[j].Depot]
		})
	}

	if opts.RaceReplicas && len(replicas) > 1 {
		st, err := raceReplicas(ctx, ext, dst, replicas, opts)
		stats.add(st)
		return stats, err
	}

	opts.Budget.RecordAttempt()
	var lastErr error
	for attempt := 0; attempt < opts.Retries; attempt++ {
		if attempt > 0 {
			// A cancelled download must stop here, before the backoff
			// sleep and the next replica pass, so abandoned clients stop
			// burning depot capacity the moment they leave.
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			// The retry budget is the cluster-wide storm clamp: when most
			// fetches are failing, the shared bucket drains and extents
			// fail fast instead of multiplying load on slow depots.
			if !opts.Budget.AllowRetry() {
				stats.BudgetExhausted++
				return stats, fmt.Errorf("lors: extent at %d: retry budget exhausted after %d passes: %w",
					ext.Offset, attempt, lastErr)
			}
			reg.Counter(obs.MLorsRetryPasses).Inc()
			if err := opts.backoff(ctx, attempt); err != nil {
				return stats, err
			}
		}
		candidates := allowedReplicas(opts.Health, replicas,
			func(r exnode.Replica) string { return r.Depot })
		stats.Skipped += len(replicas) - len(candidates)
		if len(candidates) == 0 {
			lastErr = errAllCircuitsOpen
			continue
		}
		for _, rep := range candidates {
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			stats.ReplicaTries++
			actx, aspan := opts.span(ctx, obs.SpanLorsAttempt)
			aspan.SetAttr("depot", rep.Depot)
			// The payload lands straight in dst; a failed verify leaves
			// garbage there, overwritten by the next attempt and never
			// reported upward as success.
			err := opts.loadInto(actx, rep, dst)
			if err == nil {
				if verr := ext.VerifyData(dst); verr != nil {
					stats.ChecksumErrors++
					err = verr
				}
			}
			if err != nil {
				aspan.SetAttr("err", err.Error())
				aspan.Finish()
				if ctxErr := ctx.Err(); ctxErr != nil {
					return stats, ctxErr
				}
				if errors.Is(err, ibp.ErrBusy) {
					// BUSY is a healthy depot shedding load, not a depot
					// failure: fail over to the next replica without
					// tripping its circuit, so capacity rejoins the pool
					// the moment the burst passes.
					stats.BusyRejections++
					lastErr = err
					continue
				}
				stats.FailedAttempts++
				opts.Health.ReportFailure(rep.Depot)
				obs.DefaultLogger().Warn(actx, obs.EvLorsFailover,
					"extent", strconv.FormatInt(ext.Offset, 10),
					"replica", rep.Depot, "err", err.Error())
				lastErr = err
				continue
			}
			aspan.Finish()
			opts.Health.ReportSuccess(rep.Depot)
			stats.served(rep.Depot)
			return stats, nil
		}
	}
	return stats, fmt.Errorf("lors: extent at %d: all %d replicas failed: %w",
		ext.Offset, len(replicas), lastErr)
}

// raceReplicas launches all replicas concurrently and copies the first
// verified success into dst. Losers are genuinely cancelled: the shared
// context is cancelled on the first verified success, which yanks their
// in-flight transfers. Each racer loads into its own pooled scratch
// buffer — racers cannot share dst — so the race costs one tracked copy
// (the winner's) instead of one allocation per contender.
func raceReplicas(ctx context.Context, ext exnode.Extent, dst []byte, replicas []exnode.Replica, opts DownloadOptions) (DownloadStats, error) {
	var stats DownloadStats
	candidates := allowedReplicas(opts.Health, replicas,
		func(r exnode.Replica) string { return r.Depot })
	stats.Skipped += len(replicas) - len(candidates)
	if len(candidates) == 0 {
		return stats, fmt.Errorf("lors: extent at %d: %w", ext.Offset, errAllCircuitsOpen)
	}
	type result struct {
		depot string
		data  []byte
		err   error
	}
	// Buffered to len(candidates) so every racer's unconditional send
	// completes; whatever the receive loop doesn't consume is drained (and
	// its buffer pooled) by drainRest.
	ch := make(chan result, len(candidates))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	drainRest := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				r := <-ch
				bufpool.Put(r.data)
			}
		}()
	}
	for _, rep := range candidates {
		stats.ReplicaTries++
		go func(rep exnode.Replica) {
			actx, aspan := opts.span(cctx, obs.SpanLorsAttempt)
			aspan.SetAttr("depot", rep.Depot)
			aspan.SetAttr("race", "1")
			data := bufpool.Get(int(ext.Length))
			err := opts.loadInto(actx, rep, data)
			if err == nil {
				if verr := ext.VerifyData(data); verr != nil {
					err = verr
				}
			}
			if err != nil {
				aspan.SetAttr("err", err.Error())
				if !errors.Is(err, ibp.ErrBusy) {
					// BUSY loses the race without tripping the circuit.
					opts.Health.ReportFailure(rep.Depot)
				}
			} else {
				opts.Health.ReportSuccess(rep.Depot)
			}
			aspan.Finish()
			ch <- result{rep.Depot, data, err}
		}(rep)
	}
	var lastErr error
	for i := 0; i < len(candidates); i++ {
		select {
		case <-ctx.Done():
			drainRest(len(candidates) - i)
			return stats, ctx.Err()
		case r := <-ch:
			if r.err == nil {
				stats.served(r.depot)
				bufpool.CopyTracked(dst, r.data)
				bufpool.Put(r.data)
				drainRest(len(candidates) - i - 1)
				return stats, nil
			}
			bufpool.Put(r.data)
			if errors.Is(r.err, ibp.ErrBusy) {
				stats.BusyRejections++
			} else {
				stats.FailedAttempts++
				if errors.Is(r.err, exnode.ErrChecksum) {
					stats.ChecksumErrors++
				}
			}
			lastErr = r.err
		}
	}
	return stats, fmt.Errorf("lors: extent at %d: race lost on all %d replicas: %w",
		ext.Offset, len(candidates), lastErr)
}

// Refresh extends the lease on every replica allocation that carries a
// manage capability, returning the number of successful extensions and
// recording each renewed expiry on the replica. The client agent uses it
// to keep cached-on-depot view sets alive.
func Refresh(ctx context.Context, ex *exnode.ExNode, lease time.Duration, dialer ibp.Dialer) (int, error) {
	if err := ex.Validate(); err != nil {
		return 0, err
	}
	ok := 0
	var lastErr error
	for i := range ex.Extents {
		for j := range ex.Extents[i].Replicas {
			rep := &ex.Extents[i].Replicas[j]
			if rep.ManageCap == "" {
				continue
			}
			if err := ctx.Err(); err != nil {
				return ok, err
			}
			cl := &ibp.Client{Addr: rep.Depot, Dialer: dialer}
			exp, err := cl.Extend(ctx, rep.ManageCap, lease)
			if err != nil {
				lastErr = err
				continue
			}
			rep.SetExpiry(exp)
			ok++
		}
	}
	if ok == 0 && lastErr != nil {
		return 0, lastErr
	}
	return ok, nil
}

// Free releases every replica allocation with a manage capability.
func Free(ctx context.Context, ex *exnode.ExNode, dialer ibp.Dialer) error {
	var lastErr error
	for _, ext := range ex.Extents {
		for _, rep := range ext.Replicas {
			if rep.ManageCap == "" {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			cl := &ibp.Client{Addr: rep.Depot, Dialer: dialer}
			if err := cl.Free(ctx, rep.ManageCap); err != nil {
				lastErr = err
			}
		}
	}
	return lastErr
}

// CopyOptions configures CopyTo/CopyToStriped staging transfers.
type CopyOptions struct {
	// Lease is the allocation lease on the staging targets (required).
	Lease time.Duration
	// Policy is the target allocation policy; empty means Volatile, since
	// staged copies are cache and should yield to hard allocations.
	Policy ibp.Policy
	// Dialer shapes depot connections; nil means plain TCP.
	Dialer ibp.Dialer
	// Timeout bounds each IBP operation (0 uses the ibp default, 30s).
	Timeout time.Duration
	// Health steers source-replica choice away from circuit-open depots
	// and records staging outcomes, like DownloadOptions.Health.
	Health *HealthTracker
	// Obs receives staging timings and counters (lors.stage.*); nil
	// records into obs.Default().
	Obs *obs.Registry
}

func (o *CopyOptions) client(addr string) *ibp.Client {
	return &ibp.Client{Addr: addr, Dialer: o.Dialer, Timeout: o.Timeout, Obs: o.Obs}
}

// CopyTo replicates the whole object onto the target depot with third-party
// copies executed by the source depots, returning a new exNode whose
// extents point at the target. This is the primitive behind prestaging view
// sets to a LAN depot (paper Figure 5): no payload bytes traverse the
// caller.
func CopyTo(ctx context.Context, ex *exnode.ExNode, targetAddr string, opts CopyOptions) (*exnode.ExNode, error) {
	return CopyToStriped(ctx, ex, []string{targetAddr}, opts)
}

// CopyToStriped stages the object across several target depots, assigning
// extents round-robin — the paper's configuration stripes staged view sets
// "across four depots attached to the client agent by a 1Gb/s LAN". Extent
// checksums carry over to the staged exNode, so reads from the staging
// depot are verified exactly like reads from the origin.
func CopyToStriped(ctx context.Context, ex *exnode.ExNode, targets []string, opts CopyOptions) (*exnode.ExNode, error) {
	if len(targets) == 0 {
		return nil, errors.New("lors: no staging targets")
	}
	reg := registryOr(opts.Obs)
	defer func(start time.Time) {
		observeMs(reg, obs.MLorsStageMs, time.Since(start))
	}(time.Now())
	if err := ex.Validate(); err != nil {
		return nil, err
	}
	if opts.Policy == "" {
		opts.Policy = ibp.Volatile // staged copies are cache, soft by default
	}
	out := &exnode.ExNode{Name: ex.Name, Length: ex.Length, Checksum: ex.Checksum}
	for k, ext := range ex.SortedExtents() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		targetAddr := targets[k%len(targets)]
		caps, err := opts.client(targetAddr).Allocate(ctx, ext.Length, opts.Lease, opts.Policy)
		if err != nil {
			opts.Health.ReportFailure(targetAddr)
			return nil, fmt.Errorf("lors: staging allocation on %s: %w", targetAddr, err)
		}
		opts.Health.ReportSuccess(targetAddr)
		copied := false
		var lastErr error
		// Sort replica attempts deterministically for reproducible tests.
		reps := append([]exnode.Replica{}, ext.Replicas...)
		sort.Slice(reps, func(i, j int) bool { return reps[i].Depot < reps[j].Depot })
		reps = allowedReplicas(opts.Health, reps,
			func(r exnode.Replica) string { return r.Depot })
		if len(reps) == 0 {
			lastErr = errAllCircuitsOpen
		}
		for _, rep := range reps {
			if err := opts.client(rep.Depot).Copy(ctx, rep.ReadCap, rep.AllocOffset, ext.Length, targetAddr, caps.Write, 0); err != nil {
				opts.Health.ReportFailure(rep.Depot)
				lastErr = err
				continue
			}
			opts.Health.ReportSuccess(rep.Depot)
			copied = true
			break
		}
		if !copied {
			return nil, fmt.Errorf("lors: staging extent at %d failed: %w", ext.Offset, lastErr)
		}
		reg.Counter(obs.MLorsStageExtents).Inc()
		out.Extents = append(out.Extents, exnode.Extent{
			Offset:   ext.Offset,
			Length:   ext.Length,
			Checksum: ext.Checksum,
			Replicas: []exnode.Replica{{
				Depot:     targetAddr,
				ReadCap:   caps.Read,
				ManageCap: caps.Manage,
			}},
		})
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("lors: staged exnode invalid: %w", err)
	}
	return out, nil
}
