package lors

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"

	"lonviz/internal/ibp"
)

func TestStreamBufferReadFollowsAdvance(t *testing.T) {
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = byte(i)
	}
	sb := NewStreamBuffer(buf)
	r := sb.Reader()

	sb.Advance(10)
	got := make([]byte, 4)
	if n, err := r.Read(got); n != 4 || err != nil {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, buf[:4]) {
		t.Fatal("wrong bytes")
	}

	// A read past the prefix blocks until Advance publishes more.
	done := make(chan struct{})
	rest := make([]byte, 200)
	var total int
	go func() {
		defer close(done)
		pos := 4
		for {
			n, err := r.Read(rest[total:])
			total += n
			pos += n
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
		}
	}()
	sb.Advance(50)
	sb.Advance(100)
	<-done
	if total != 96 {
		t.Fatalf("read %d bytes after pos 4, want 96", total)
	}
	if !bytes.Equal(rest[:96], buf[4:]) {
		t.Fatal("streamed bytes mismatch")
	}
}

func TestStreamBufferFailUnblocksReaders(t *testing.T) {
	sb := NewStreamBuffer(make([]byte, 64))
	r := sb.Reader()
	boom := errors.New("boom")
	var wg sync.WaitGroup
	wg.Add(1)
	var got error
	go func() {
		defer wg.Done()
		_, got = r.Read(make([]byte, 8))
	}()
	sb.Fail(boom)
	wg.Wait()
	if !errors.Is(got, boom) {
		t.Fatalf("read error = %v, want boom", got)
	}
}

func TestDownloadIntoPrefixCallback(t *testing.T) {
	depots := depotFarm(t, 2, 1<<22)
	data := testPayload(256*1024, 7)
	ex, err := Upload(context.Background(), "obj", data, UploadOptions{
		Depots:     depots,
		StripeSize: 64 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(data))
	var mu sync.Mutex
	var prefixes []int64
	_, err = DownloadInto(context.Background(), ex, dst, DownloadOptions{
		OnPrefix: func(n int64) {
			mu.Lock()
			prefixes = append(prefixes, n)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("payload mismatch")
	}
	if len(prefixes) == 0 {
		t.Fatal("OnPrefix never fired")
	}
	for i := 1; i < len(prefixes); i++ {
		if prefixes[i] <= prefixes[i-1] {
			t.Fatalf("prefixes not strictly increasing: %v", prefixes)
		}
	}
	if prefixes[len(prefixes)-1] != int64(len(data)) {
		t.Fatalf("final prefix = %d, want %d", prefixes[len(prefixes)-1], len(data))
	}
}

func TestDownloadIntoWrongLength(t *testing.T) {
	depots := depotFarm(t, 1, 1<<20)
	data := testPayload(4096, 3)
	ex, err := Upload(context.Background(), "obj", data, UploadOptions{Depots: depots})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DownloadInto(context.Background(), ex, make([]byte, 17), DownloadOptions{}); err == nil {
		t.Fatal("short destination accepted")
	}
}

// TestDownloadPipelinedPool proves the whole lors path works over a
// shared pipelined connection pool, including replica racing with pooled
// scratch buffers.
func TestDownloadPipelinedPool(t *testing.T) {
	depots := depotFarm(t, 3, 1<<22)
	data := testPayload(300*1024, 11)
	ex, err := Upload(context.Background(), "obj", data, UploadOptions{
		Depots:     depots,
		StripeSize: 64 * 1024,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := &ibp.PipePool{}
	defer pool.Close()
	for _, race := range []bool{false, true} {
		got, _, err := Download(context.Background(), ex, DownloadOptions{
			Pipes:        pool,
			RaceReplicas: race,
		})
		if err != nil {
			t.Fatalf("race=%v: %v", race, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("race=%v: payload mismatch", race)
		}
	}
	for _, d := range depots {
		if pool.Mode(d) == "serial" {
			t.Fatalf("depot %s fell back to serial", d)
		}
	}
}
