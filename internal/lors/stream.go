package lors

import (
	"fmt"
	"io"
	"sync"
)

// StreamBuffer couples a DownloadInto in flight with readers that want
// the bytes as they are verified: wire OnPrefix to Advance and readers
// see each extent the moment its checksum passes, while later extents
// are still downloading. This is what lets the viewer start inflating a
// compressed view set before the last stripe lands (decompress-while-
// downloading), without the download ever copying into a pipe — readers
// share the single destination buffer.
//
// The zero value is not usable; call NewStreamBuffer. One writer
// (Advance/Fail/Abort) and any number of Reader()s may run concurrently.
type StreamBuffer struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	n    int64 // verified contiguous prefix
	err  error // terminal failure, sticky
}

// NewStreamBuffer wraps the destination buffer a DownloadInto is filling.
func NewStreamBuffer(buf []byte) *StreamBuffer {
	s := &StreamBuffer{buf: buf}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Advance publishes that buf[:n] is verified. It is shaped to be used
// directly as DownloadOptions.OnPrefix. n never decreases.
func (s *StreamBuffer) Advance(n int64) {
	s.mu.Lock()
	if n > s.n {
		s.n = n
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Fail terminates the stream: blocked and future reads past the verified
// prefix return err. Call it when DownloadInto returns an error so
// readers don't wait forever.
func (s *StreamBuffer) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("lors: stream failed")
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Bytes returns the shared destination buffer. Only the verified prefix
// is meaningful; callers that waited for a reader's EOF may use all of it.
func (s *StreamBuffer) Bytes() []byte { return s.buf }

// Reader returns an independent cursor over the stream. Reads block
// until verified bytes are available, return io.EOF after the full
// buffer is consumed, and surface the Fail error once the verified
// prefix is exhausted.
func (s *StreamBuffer) Reader() io.Reader { return &streamReader{s: s} }

type streamReader struct {
	s   *StreamBuffer
	pos int64
}

func (r *streamReader) Read(p []byte) (int, error) {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for r.pos >= s.n {
		if r.pos >= int64(len(s.buf)) {
			return 0, io.EOF
		}
		if s.err != nil {
			return 0, s.err
		}
		s.cond.Wait()
	}
	n := copy(p, s.buf[r.pos:s.n])
	r.pos += int64(n)
	return n, nil
}
