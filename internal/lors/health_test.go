package lors

import (
	"testing"
	"time"
)

// fakeClock is an adjustable clock for deterministic cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker(threshold int, cooldown time.Duration) (*HealthTracker, *fakeClock) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealthTracker(HealthConfig{
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		Now:              clock.now,
	})
	return h, clock
}

func TestHealthTrackerOpensAtThreshold(t *testing.T) {
	h, _ := newTestTracker(3, time.Minute)
	const d = "depot:6714"
	h.ReportFailure(d)
	h.ReportFailure(d)
	if !h.Allow(d) {
		t.Fatal("circuit opened below threshold")
	}
	h.ReportFailure(d)
	if h.Allow(d) {
		t.Fatal("circuit still closed at threshold")
	}
	if !h.Open(d) {
		t.Fatal("Open disagrees with Allow")
	}
}

func TestHealthTrackerCooldownExpiry(t *testing.T) {
	h, clock := newTestTracker(1, time.Minute)
	const d = "depot:6714"
	h.ReportFailure(d)
	if h.Allow(d) {
		t.Fatal("circuit not open")
	}
	clock.advance(59 * time.Second)
	if h.Allow(d) {
		t.Fatal("circuit closed before cooldown expired")
	}
	clock.advance(2 * time.Second)
	if !h.Allow(d) {
		t.Fatal("cooldown expiry did not half-open the circuit")
	}
	// A failed half-open probe re-opens for another full cooldown.
	h.ReportFailure(d)
	if h.Allow(d) {
		t.Fatal("failed probe left the circuit closed")
	}
	clock.advance(61 * time.Second)
	if !h.Allow(d) {
		t.Fatal("second cooldown never expired")
	}
}

func TestHealthTrackerSuccessResets(t *testing.T) {
	h, _ := newTestTracker(3, time.Minute)
	const d = "depot:6714"
	h.ReportFailure(d)
	h.ReportFailure(d)
	h.ReportSuccess(d)
	// The streak restarted: two more failures must not open the circuit.
	h.ReportFailure(d)
	h.ReportFailure(d)
	if !h.Allow(d) {
		t.Fatal("non-consecutive failures opened the circuit")
	}
	h.ReportFailure(d)
	if h.Allow(d) {
		t.Fatal("threshold reached but circuit closed")
	}
	// A successful half-open probe closes an open circuit immediately.
	h.ReportSuccess(d)
	if !h.Allow(d) {
		t.Fatal("success did not close the circuit")
	}
}

func TestHealthTrackerSnapshot(t *testing.T) {
	h, _ := newTestTracker(2, time.Minute)
	h.ReportSuccess("b:1")
	h.ReportFailure("a:1")
	h.ReportFailure("a:1")
	snap := h.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d depots, want 2", len(snap))
	}
	if snap[0].Depot != "a:1" || snap[1].Depot != "b:1" {
		t.Errorf("snapshot not sorted: %+v", snap)
	}
	if !snap[0].Open || snap[0].Failures != 2 || snap[0].ConsecutiveFailures != 2 {
		t.Errorf("a:1 state = %+v", snap[0])
	}
	if snap[1].Open || snap[1].Successes != 1 {
		t.Errorf("b:1 state = %+v", snap[1])
	}
}

func TestHealthTrackerNilSafe(t *testing.T) {
	var h *HealthTracker
	h.ReportFailure("x:1")
	h.ReportSuccess("x:1")
	if !h.Allow("x:1") {
		t.Error("nil tracker refused traffic")
	}
	if h.Open("x:1") {
		t.Error("nil tracker reported an open circuit")
	}
	if h.Snapshot() != nil {
		t.Error("nil tracker returned a snapshot")
	}
	reps := []string{"a", "b"}
	if got := allowedReplicas(h, reps, func(s string) string { return s }); len(got) != 2 {
		t.Errorf("nil tracker filtered replicas: %v", got)
	}
}

func TestAllowedReplicasFilters(t *testing.T) {
	h, _ := newTestTracker(1, time.Minute)
	h.ReportFailure("bad:1")
	reps := []string{"good:1", "bad:1", "good:2"}
	got := allowedReplicas(h, reps, func(s string) string { return s })
	if len(got) != 2 || got[0] != "good:1" || got[1] != "good:2" {
		t.Errorf("filtered = %v", got)
	}
	// All circuits open -> empty, never a panic or fallback.
	h.ReportFailure("good:1")
	h.ReportFailure("good:2")
	if got := allowedReplicas(h, reps, func(s string) string { return s }); len(got) != 0 {
		t.Errorf("all-open filter returned %v", got)
	}
}
