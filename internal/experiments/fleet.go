package experiments

import (
	"context"

	"lonviz/internal/agent"
	"lonviz/internal/session"
)

// FleetRun is one multi-client benchmark outcome: the per-client session
// results plus the shared client agent's coalescing/overload accounting.
type FleetRun struct {
	Clients  int
	Accesses int // per client
	Result   *session.FleetResult
	Agent    agent.ClientAgentStats
}

// FleetExperiment drives clients concurrent seeded sessions against one
// case-2 (WAN streaming) deployment. All viewers share the deployment's
// client agent — the paper's agent-per-site shape — so identical in-flight
// requests coalesce and the cache is contended the way a departmental
// install would contend it. Client i browses with seed cfg.Seed+i.
func FleetExperiment(ctx context.Context, cfg Config, paperRes, clients int) (*FleetRun, error) {
	d, err := Deploy(ctx, cfg, ScaleRes(paperRes), Case2WAN)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	res, err := session.RunFleet(ctx, session.FleetOptions{
		Params:    d.Params,
		Clients:   clients,
		Accesses:  cfg.Accesses,
		Seed:      cfg.Seed,
		ThinkTime: cfg.ThinkTime,
		NewViewer: func(i int) (*agent.Viewer, error) {
			v, err := agent.NewViewer(d.Params, d.CA)
			if err != nil {
				return nil, err
			}
			v.MaxDecoded = 1
			return v, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &FleetRun{
		Clients:  clients,
		Accesses: cfg.Accesses,
		Result:   res,
		Agent:    d.CA.Stats(),
	}, nil
}
