// Edge-fleet experiment: the cooperative-cache claim measured head to
// head. Two legs run against one case-2 (WAN streaming) deployment —
// first a fleet of clients each with an isolated private cache (the
// pre-edge baseline), then the same fleet sharing one edge cache tier.
// The isolated leg's hit rate is bounded by each client's own history;
// the shared leg adds every neighbor's history, so the fleet-aggregate
// hit rate climbs and each view set crosses the WAN at most once.

package experiments

import (
	"context"
	"fmt"
	"sync"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/edge"
	"lonviz/internal/obs"
	"lonviz/internal/session"
)

// EdgeFleetOptions shapes one shared-vs-isolated comparison.
type EdgeFleetOptions struct {
	// Clients is the fleet size (default 10).
	Clients int
	// EdgeAddr points the shared leg at an already-running lfedged. Empty
	// starts an in-process edge on loopback, routed at LAN cost.
	EdgeAddr string
	// EdgeCacheBytes sizes the in-process edge (default 64 MiB; ignored
	// with an external EdgeAddr).
	EdgeCacheBytes int64
	// Trajectory turns on trajectory-predictive prefetch for the shared
	// leg (the isolated leg always runs the quadrant baseline).
	Trajectory bool
}

// EdgeFleetRun is the comparison outcome.
type EdgeFleetRun struct {
	Clients  int
	Accesses int // per client
	// Shared ran through the edge tier; Isolated is the per-client-cache
	// baseline.
	Shared, Isolated *session.FleetResult
	// SharedAgents/IsolatedAgents sum every client agent's accounting for
	// the corresponding leg.
	SharedAgents, IsolatedAgents agent.ClientAgentStats
	// EdgeStats is the in-process edge's final accounting (zero when the
	// shared leg used an external lfedged).
	EdgeStats edge.CacheStats
	// External marks a run against an external lfedged.
	External bool
}

// SharedHitRate is the shared leg's fleet-aggregate WAN-free rate. Every
// access the edge tier served is edge-classed at the agents even when the
// edge itself had to fill over the WAN, so the raw cooperative rate would
// read 1.0 whenever the edge is up. Each distinct view set the edge
// filled crossed the WAN exactly once for the whole fleet; charging one
// access per filled set yields a figure comparable with the isolated
// leg's local hit rate (a fleet of one would score exactly its private
// cache rate). With an external lfedged the fill history is not visible
// in-process and the raw cooperative rate is returned as-is.
func (r *EdgeFleetRun) SharedHitRate() float64 {
	rate := r.Shared.CooperativeHitRate()
	if r.External {
		return rate
	}
	if total := r.Shared.Accesses(); total > 0 {
		rate -= float64(r.EdgeStats.FilledSets) / float64(total)
	}
	if rate < 0 {
		rate = 0
	}
	return rate
}

// IsolatedHitRate is the baseline leg's local-cache hit rate.
func (r *EdgeFleetRun) IsolatedHitRate() float64 { return r.Isolated.HitRate() }

// sumAgentStats folds per-client agent accounting into one fleet total.
func sumAgentStats(agents []*agent.ClientAgent) agent.ClientAgentStats {
	var out agent.ClientAgentStats
	for _, ca := range agents {
		st := ca.Stats()
		out.Hits += st.Hits
		out.LANFetches += st.LANFetches
		out.WANFetches += st.WANFetches
		out.EdgeFetches += st.EdgeFetches
		out.Prefetches += st.Prefetches
		out.Staged += st.Staged
		out.StageErrors += st.StageErrors
		out.ReplicaTries += st.ReplicaTries
		out.FailedAttempts += st.FailedAttempts
		out.ChecksumErrors += st.ChecksumErrors
		out.Coalesced += st.Coalesced
		out.BusyRejections += st.BusyRejections
		out.BudgetExhausted += st.BudgetExhausted
	}
	return out
}

// edgeFleetLeg runs one fleet with a fresh client agent (and private
// cache) per client, pointed at edgeAddr when non-empty.
func edgeFleetLeg(ctx context.Context, d *Deployment, clients int, edgeAddr string, trajectory bool) (*session.FleetResult, agent.ClientAgentStats, error) {
	var mu sync.Mutex
	var agents []*agent.ClientAgent
	defer func() {
		for _, ca := range agents {
			ca.Close()
		}
	}()
	res, err := session.RunFleet(ctx, session.FleetOptions{
		Params:    d.Params,
		Clients:   clients,
		Accesses:  d.Cfg.Accesses,
		Seed:      d.Cfg.Seed,
		ThinkTime: d.Cfg.ThinkTime,
		NewViewer: func(i int) (*agent.Viewer, error) {
			ca, err := agent.NewClientAgent(agent.ClientAgentConfig{
				Dataset:              "neghip",
				Params:               d.Params,
				DVS:                  &dvs.Client{Addr: d.DVSAddr, Dialer: d.Dialer},
				Dialer:               d.Dialer,
				CacheBytes:           d.Cfg.CacheBytes,
				Prefetch:             !d.Cfg.NoPrefetch,
				PrefetchAllNeighbors: d.Cfg.PrefetchAllNeighbors,
				EdgeAddr:             edgeAddr,
				TrajectoryPrefetch:   trajectory,
			})
			if err != nil {
				return nil, err
			}
			mu.Lock()
			agents = append(agents, ca)
			mu.Unlock()
			v, err := agent.NewViewer(d.Params, ca)
			if err != nil {
				return nil, err
			}
			v.MaxDecoded = 1
			return v, nil
		},
	})
	if err != nil {
		return nil, agent.ClientAgentStats{}, err
	}
	return res, sumAgentStats(agents), nil
}

// EdgeFleetExperiment deploys one case-2 system, runs the isolated
// baseline leg and then the shared-edge leg, and returns both. Client i
// browses with seed cfg.Seed+i in both legs, so the cursor paths — and
// hence the demand each leg must serve — are identical.
func EdgeFleetExperiment(ctx context.Context, cfg Config, paperRes int, opts EdgeFleetOptions) (*EdgeFleetRun, error) {
	if opts.Clients <= 0 {
		opts.Clients = 10
	}
	if opts.EdgeCacheBytes <= 0 {
		opts.EdgeCacheBytes = 64 << 20
	}
	d, err := Deploy(ctx, cfg, ScaleRes(paperRes), Case2WAN)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	run := &EdgeFleetRun{Clients: opts.Clients, Accesses: cfg.Accesses}

	// Baseline first: every client on its own, no edge tier.
	run.Isolated, run.IsolatedAgents, err = edgeFleetLeg(ctx, d, opts.Clients, "", false)
	if err != nil {
		return nil, fmt.Errorf("experiments: isolated leg: %w", err)
	}

	edgeAddr := opts.EdgeAddr
	var cache *edge.Cache
	if edgeAddr == "" {
		// In-process edge: fills cross the deployment's shaped WAN (the
		// dialer carries the WAN routes to the server depots), clients
		// reach the edge itself at LAN cost.
		cache, err = edge.NewCache(edge.CacheConfig{
			CapacityBytes: opts.EdgeCacheBytes,
			Dialer:        d.Dialer,
			Obs:           obs.NewRegistry(),
		})
		if err != nil {
			return nil, err
		}
		esrv := edge.NewServer(cache)
		edgeAddr, err = esrv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer esrv.Close()
		d.Dialer.SetRoute(edgeAddr, cfg.LAN)
	} else {
		run.External = true
		d.Dialer.SetRoute(edgeAddr, cfg.LAN)
	}

	run.Shared, run.SharedAgents, err = edgeFleetLeg(ctx, d, opts.Clients, edgeAddr, opts.Trajectory)
	if err != nil {
		return nil, fmt.Errorf("experiments: shared leg: %w", err)
	}
	if cache != nil {
		run.EdgeStats = cache.Stats()
	}
	return run, nil
}
