package experiments

import (
	"context"
	"fmt"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/codec"
	"lonviz/internal/geom"
	"lonviz/internal/lightfield"
	"lonviz/internal/session"
)

// PaperResolutions are the sample-view resolutions of the paper's
// evaluation.
var PaperResolutions = []int{200, 300, 400, 500, 600}

// LatencyResolutions are the resolutions of Figures 8-12.
var LatencyResolutions = []int{200, 300, 500}

// Fig7Row is one bar pair of Figure 7: database size with and without
// compression at one resolution.
type Fig7Row struct {
	// PaperRes is the resolution label from the paper; Res is the scaled
	// resolution actually measured.
	PaperRes, Res int
	// PaperScaleUncompressedGB is the analytic size of the full 144x72
	// lattice database at PaperRes (4 B/px as the paper reports).
	PaperScaleUncompressedGB float64
	// PaperScaleCompressedGB extrapolates the measured ratio to paper scale.
	PaperScaleCompressedGB float64
	// MeasuredUncompressedMB / MeasuredCompressedMB are the scaled
	// database's real sizes.
	MeasuredUncompressedMB, MeasuredCompressedMB float64
	// Ratio is the measured lossless compression ratio.
	Ratio float64
	// AvgViewSetMB is the mean compressed view set size (paper: 1.2-7.8 MB
	// across 200..600).
	AvgViewSetMB float64
}

// Fig7 regenerates Figure 7 (total LFD size, compressed and uncompressed,
// across resolutions) plus the in-text compression-ratio and view-set-size
// numbers. Sizes are measured on the scaled lattice and extrapolated to
// the paper's lattice analytically.
func Fig7(ctx context.Context, cfg Config) ([]Fig7Row, error) {
	rows := make([]Fig7Row, 0, len(PaperResolutions))
	for _, paperRes := range PaperResolutions {
		res := ScaleRes(paperRes)
		p := cfg.ParamsAt(res)
		gen, err := lightfield.NewProceduralGenerator(p, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var compressed int64
		for _, id := range p.AllViewSets() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			vs, err := gen.GenerateViewSet(ctx, id)
			if err != nil {
				return nil, err
			}
			frame, err := lightfield.EncodeViewSet(vs, p, codec.DefaultCompression)
			if err != nil {
				return nil, err
			}
			compressed += int64(len(frame))
		}
		uncompressed := p.UncompressedDBBytes()
		ratio := float64(uncompressed) / float64(compressed)
		paperP := lightfield.PaperParams(paperRes)
		paperUncomp := float64(paperP.PaperDBBytes())
		rows = append(rows, Fig7Row{
			PaperRes:                 paperRes,
			Res:                      res,
			PaperScaleUncompressedGB: paperUncomp / 1e9,
			PaperScaleCompressedGB:   paperUncomp / ratio / 1e9,
			MeasuredUncompressedMB:   float64(uncompressed) / 1e6,
			MeasuredCompressedMB:     float64(compressed) / 1e6,
			Ratio:                    ratio,
			AvgViewSetMB:             float64(paperP.PaperDBBytes()) / ratio / float64(paperP.NumViewSets()) / 1e6,
		})
	}
	return rows, nil
}

// CaseRun bundles one session's records with its deployment metadata.
type CaseRun struct {
	Case    Case
	Res     int // scaled resolution
	Records []agent.AccessRecord
}

// LatencyExperiment runs the three cases at one paper resolution and
// returns the per-case records — the data behind Figures 9, 10 and 11
// (client-observed latency) and Figure 12 (communication latency).
func LatencyExperiment(ctx context.Context, cfg Config, paperRes int) ([]CaseRun, error) {
	res := ScaleRes(paperRes)
	out := make([]CaseRun, 0, 3)
	for _, cs := range []Case{Case1LAN, Case2WAN, Case3Staged} {
		recs, err := RunCase(ctx, cfg, res, cs)
		if err != nil {
			return nil, fmt.Errorf("experiments: case %d at %d: %w", cs, paperRes, err)
		}
		out = append(out, CaseRun{Case: cs, Res: res, Records: recs})
	}
	return out, nil
}

// Fig8 regenerates Figure 8: the per-access decompression time during the
// orchestrated session, per resolution. The paper measures it on the
// client during the case-2 style streaming run; decompression cost depends
// only on the frames, so one case-2 run per resolution suffices.
func Fig8(ctx context.Context, cfg Config) (map[int][]float64, error) {
	out := make(map[int][]float64, len(LatencyResolutions))
	for _, paperRes := range LatencyResolutions {
		recs, err := RunCase(ctx, cfg, ScaleRes(paperRes), Case2WAN)
		if err != nil {
			return nil, err
		}
		out[paperRes] = session.DecompressSeconds(recs)
	}
	return out, nil
}

// RatesResult reproduces the section 4.3 analysis at 500x500: the WAN
// access rate during the initial phase (paper: 28% with the LAN depot vs
// 69% without) and the cache hit rate (paper: 33% vs 28%).
type RatesResult struct {
	InitialPhase2, InitialPhase3 int
	WANRate2, WANRate3           float64
	HitRate2, HitRate3           float64
}

// Rates computes the rate analysis from the two WAN cases at one paper
// resolution (the paper uses 500).
func Rates(ctx context.Context, cfg Config, paperRes int) (RatesResult, error) {
	res := ScaleRes(paperRes)
	recs2, err := RunCase(ctx, cfg, res, Case2WAN)
	if err != nil {
		return RatesResult{}, err
	}
	recs3, err := RunCase(ctx, cfg, res, Case3Staged)
	if err != nil {
		return RatesResult{}, err
	}
	r := RatesResult{
		InitialPhase2: session.InitialPhaseLength(recs2),
		InitialPhase3: session.InitialPhaseLength(recs3),
	}
	// The paper compares both cases over the same early window ("During
	// the initial phase ... 28% in case 3, compared to 69% in Case 2").
	// Use the first half of the session as that window.
	window := len(recs2) / 2
	r.WANRate2 = session.WANRate(recs2, window)
	r.WANRate3 = session.WANRate(recs3, window)
	r.HitRate2 = session.HitRate(recs2, len(recs2))
	r.HitRate3 = session.HitRate(recs3, len(recs3))
	return r, nil
}

// FPSResult is the client-side rendering rate at one display resolution.
type FPSResult struct {
	DisplayRes int
	// FPS is the paper-mode rate: nearest-sample table lookup.
	FPS float64
	// BlendFPS is the quadrilinear (4-camera blend) rate.
	BlendFPS float64
}

// ClientFPS measures the pure light field rendering rate on the client —
// the paper reports above 30 frames per second even at 500x500 because
// rendering is table lookup. The measurement uses a fully local decoded
// database (no network), matching the paper's claim about the rendering
// stage alone.
func ClientFPS(ctx context.Context, cfg Config, displayResolutions []int) ([]FPSResult, error) {
	p := cfg.ParamsAt(64)
	gen, err := lightfield.NewProceduralGenerator(p, cfg.Seed)
	if err != nil {
		return nil, err
	}
	db, err := lightfield.BuildDatabase(ctx, gen, 0)
	if err != nil {
		return nil, err
	}
	r, err := lightfield.NewRenderer(p, lightfield.MapProvider(db.Sets))
	if err != nil {
		return nil, err
	}
	out := make([]FPSResult, 0, len(displayResolutions))
	measure := func(res int, blend bool) (float64, error) {
		r.Blend = blend
		sp := geom.Spherical{Theta: 1.3, Phi: 0.7}
		const frames = 8
		start := time.Now()
		for f := 0; f < frames; f++ {
			// Vary the view slightly, as interaction would.
			sp.Phi += 0.002
			cam, err := p.ViewerCamera(sp, p.OuterRadius*1.6, res)
			if err != nil {
				return 0, err
			}
			if _, _, err := r.RenderView(cam); err != nil {
				return 0, err
			}
		}
		return frames / time.Since(start).Seconds(), nil
	}
	for _, res := range displayResolutions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nearest, err := measure(res, false)
		if err != nil {
			return nil, err
		}
		blend, err := measure(res, true)
		if err != nil {
			return nil, err
		}
		out = append(out, FPSResult{DisplayRes: res, FPS: nearest, BlendFPS: blend})
	}
	return out, nil
}
