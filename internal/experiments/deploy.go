// Package experiments reproduces the paper's evaluation (Figures 7-12 and
// the section 4.3 rate analysis). It deploys the full system on loopback —
// IBP depots, L-Bone, DVS, server agent, client agent, viewer — with
// netsim-shaped links standing in for the paper's Knoxville-to-California
// WAN and departmental LAN, then runs the orchestrated 58-access sessions
// of section 4.2 under the three cases:
//
//	Case 1: LFD stored in LAN, client agent prefetch.
//	Case 2: LFD in the WAN (California), client agent prefetch.
//	Case 3: LFD in the WAN + aggressive prestaging to LAN depots.
package experiments

import (
	"context"
	"fmt"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/dvs"
	"lonviz/internal/ibp"
	"lonviz/internal/lbone"
	"lonviz/internal/lightfield"
	"lonviz/internal/netsim"
	"lonviz/internal/session"
)

// Case selects the streaming configuration of section 4.2.
type Case int

const (
	// Case1LAN stores the database on LAN-attached depots.
	Case1LAN Case = 1
	// Case2WAN streams from remote depots with prefetching only.
	Case2WAN Case = 2
	// Case3Staged streams from remote depots with LAN-depot prestaging.
	Case3Staged Case = 3
)

// Config scales the experiment. The default shrinks the paper's setup so
// the whole suite runs in seconds while preserving latency orderings; see
// DESIGN.md section 4 for the mapping.
type Config struct {
	// StepDeg and L define the lattice (paper: 2.5 and 6).
	StepDeg float64
	L       int
	// Seed drives the procedural dataset and cursor script.
	Seed int64
	// Accesses is the session length (paper: 58).
	Accesses int
	// ThinkTime paces cursor movements.
	ThinkTime time.Duration
	// WAN and LAN are the link profiles for remote and local depots.
	WAN, LAN netsim.LinkProfile
	// NumWANDepots and NumLANDepots size the two pools (paper: 3 and 4).
	NumWANDepots, NumLANDepots int
	// CacheBytes is the client agent cache budget.
	CacheBytes int64
	// StripeSize for uploads; 0 lets lors pick.
	StripeSize int64
	// NoPrefetch disables the quadrant prefetch policy (ablation; the
	// paper always prefetches).
	NoPrefetch bool
	// PrefetchAllNeighbors prefetches the whole 8-neighborhood instead of
	// the quadrant prediction (ablation).
	PrefetchAllNeighbors bool
	// SuppressStageOnMiss enables the section 4.3 mitigation of pausing
	// staging while a miss is served (ablation).
	SuppressStageOnMiss bool
	// StageOrderPolicy selects staging order (ablation; default proximity).
	StageOrderPolicy agent.StageOrder
	// StageParallelism is the number of concurrent staging transfers.
	StageParallelism int
	// Replicas is the number of copies per stripe across server depots
	// (default 1; the paper's deployment replicated view sets across its
	// three California depots).
	Replicas int
}

// DefaultConfig returns the CI-scale configuration.
func DefaultConfig() Config {
	return Config{
		StepDeg:   10, // 18x36 lattice
		L:         3,  // 6x12 = 72 view sets, 7.5 degree windows
		Seed:      1,
		Accesses:  session.PaperAccessCount,
		ThinkTime: 80 * time.Millisecond,
		WAN: netsim.LinkProfile{
			Name: "wan", Latency: 35 * time.Millisecond,
			Bandwidth: 768 << 10, Shared: true,
		},
		LAN: netsim.LinkProfile{
			Name: "lan", Latency: 300 * time.Microsecond,
			Bandwidth: 60 << 20, Shared: true,
		},
		NumWANDepots:     3,
		NumLANDepots:     4,
		CacheBytes:       16 << 20,
		StripeSize:       64 << 10,
		StageParallelism: 12,
	}
}

// PaperConfig returns the full-scale lattice (2.5 degrees, l=6). Sessions
// at paper resolutions take minutes; use for -full runs only.
func PaperConfig() Config {
	c := DefaultConfig()
	c.StepDeg = 2.5
	c.L = 6
	return c
}

// ParamsAt returns the database geometry at a sample-view resolution.
func (c Config) ParamsAt(res int) lightfield.Params {
	return lightfield.ScaledParams(c.StepDeg, c.L, res)
}

// ScaleRes maps a paper sample-view resolution (200..600) to the scaled
// resolution used by the default config: one quarter, so 200 -> 50,
// 300 -> 75, ..., 600 -> 150.
func ScaleRes(paperRes int) int { return paperRes / 4 }

// Deployment is one fully wired system instance.
type Deployment struct {
	Cfg    Config
	Case   Case
	Params lightfield.Params

	WANDepots []string
	LANDepots []string
	// WANDepotClosers shut down individual server depots — failure
	// injection hooks for tests.
	WANDepotClosers []func()
	DVSAddr         string
	Dialer          *netsim.Dialer

	SA *agent.ServerAgent
	CA *agent.ClientAgent

	closers []func()
}

// Close tears down all servers.
func (d *Deployment) Close() {
	for i := len(d.closers) - 1; i >= 0; i-- {
		d.closers[i]()
	}
}

func (d *Deployment) addCloser(f func()) { d.closers = append(d.closers, f) }

// startDepot launches one IBP depot with enough capacity for the whole
// database plus staging slack, returning its address.
func startDepot(capacity int64, copyDialer ibp.Dialer) (string, func(), error) {
	dep, err := ibp.NewDepot(ibp.DepotConfig{Capacity: capacity, MaxLease: time.Hour})
	if err != nil {
		return "", nil, err
	}
	srv := ibp.NewServer(dep)
	srv.CopyDialer = copyDialer
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	return addr, func() { srv.Close() }, nil
}

// Deploy builds the system for one case at one resolution and precomputes
// the database (the paper's offline generation on the cluster).
func Deploy(ctx context.Context, cfg Config, res int, cs Case) (*Deployment, error) {
	p := cfg.ParamsAt(res)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Deployment{Cfg: cfg, Case: cs, Params: p}
	ok := false
	defer func() {
		if !ok {
			d.Close()
		}
	}()

	// The client-side dialer: every route defaults to LAN; server depots
	// and the DVS get WAN routes in cases 2 and 3.
	d.Dialer = netsim.NewDialer(cfg.LAN)

	dbBytes := p.UncompressedDBBytes() // generous: compressed is ~6x less
	capacity := dbBytes + dbBytes/2 + (8 << 20)

	// Server depots perform third-party copies toward the LAN depots
	// (case 3); those transfers cross the WAN once, so the copy dialer on
	// the source depot carries the WAN profile.
	copyDialer := netsim.NewDialer(cfg.WAN)
	copyDialer.ShareBucketsWith(d.Dialer) // one physical WAN pipe

	serverProfile := cfg.WAN
	if cs == Case1LAN {
		serverProfile = cfg.LAN
	}
	for i := 0; i < cfg.NumWANDepots; i++ {
		addr, closer, err := startDepot(capacity, copyDialer)
		if err != nil {
			return nil, err
		}
		d.addCloser(closer)
		d.WANDepots = append(d.WANDepots, addr)
		d.WANDepotClosers = append(d.WANDepotClosers, closer)
		d.Dialer.SetRoute(addr, serverProfile)
	}
	for i := 0; i < cfg.NumLANDepots; i++ {
		addr, closer, err := startDepot(capacity, nil)
		if err != nil {
			return nil, err
		}
		d.addCloser(closer)
		d.LANDepots = append(d.LANDepots, addr)
		d.Dialer.SetRoute(addr, cfg.LAN)
		copyDialer.SetRoute(addr, cfg.WAN) // source depot -> LAN depot crosses the WAN
	}

	// L-Bone directory: server depots far away, LAN depots near the
	// client at the origin.
	lb := lbone.NewServer()
	lbAddr, err := lb.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	d.addCloser(func() { lb.Close() })
	lbClient := &lbone.Client{BaseURL: "http://" + lbAddr}
	for i, addr := range d.WANDepots {
		if err := lbClient.Register(ctx, lbone.DepotRecord{
			Addr: addr, X: 100 + float64(i), Y: 100,
			Capacity: capacity, Free: capacity,
		}); err != nil {
			return nil, err
		}
	}
	for i, addr := range d.LANDepots {
		if err := lbClient.Register(ctx, lbone.DepotRecord{
			Addr: addr, X: 0.5 + 0.1*float64(i), Y: 0,
			Capacity: capacity, Free: capacity,
		}); err != nil {
			return nil, err
		}
	}

	// DVS root; remote in cases 2/3.
	dvsSrv := dvs.NewServer("")
	d.DVSAddr, err = dvsSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	d.addCloser(func() { dvsSrv.Close() })
	d.Dialer.SetRoute(d.DVSAddr, serverProfile)

	// Server agent with the procedural generator (transfer experiments do
	// not pay ray-casting cost; see DESIGN.md substitutions). Uploads use
	// an unshaped dialer: generation happened offline next to the depots.
	gen, err := lightfield.NewProceduralGenerator(p, cfg.Seed)
	if err != nil {
		return nil, err
	}
	d.SA, err = agent.NewServerAgent(agent.ServerAgentConfig{
		Dataset:    "neghip",
		Gen:        gen,
		Depots:     d.WANDepots,
		DVS:        &dvs.Client{Addr: d.DVSAddr},
		StripeSize: cfg.StripeSize,
		Replicas:   cfg.Replicas,
		Workers:    8,
	})
	if err != nil {
		return nil, err
	}
	d.addCloser(func() { d.SA.Close() })
	saAddr, err := d.SA.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	dvsSrv.Generate = agent.GenerateFunc(nil)
	if err := dvsSrv.RegisterAgent("neghip", saAddr); err != nil {
		return nil, err
	}
	if _, err := d.SA.PrecomputeAll(ctx); err != nil {
		return nil, fmt.Errorf("experiments: precompute: %w", err)
	}

	// Client agent. The LAN depots are discovered through the L-Bone, as
	// in the paper ("We use the L-Bone tools to dynamically identify
	// appropriate depots to serve as the network caches").
	var lanForStaging []string
	if cs == Case3Staged {
		near, err := lbClient.Lookup(ctx, 0, 0, cfg.NumLANDepots, 1)
		if err != nil {
			return nil, err
		}
		for _, rec := range near {
			lanForStaging = append(lanForStaging, rec.Addr)
		}
		if len(lanForStaging) == 0 {
			return nil, fmt.Errorf("experiments: L-Bone found no LAN depots")
		}
	}
	d.CA, err = agent.NewClientAgent(agent.ClientAgentConfig{
		Dataset:              "neghip",
		Params:               p,
		DVS:                  &dvs.Client{Addr: d.DVSAddr, Dialer: d.Dialer},
		Dialer:               d.Dialer,
		CacheBytes:           cfg.CacheBytes,
		LANDepots:            lanForStaging,
		Prefetch:             !cfg.NoPrefetch,
		PrefetchAllNeighbors: cfg.PrefetchAllNeighbors,
		SuppressStageOnMiss:  cfg.SuppressStageOnMiss,
		StageOrderPolicy:     cfg.StageOrderPolicy,
		StageParallelism:     cfg.StageParallelism,
	})
	if err != nil {
		return nil, err
	}
	d.addCloser(d.CA.Close)
	ok = true
	return d, nil
}

// RunSession executes the standard orchestrated session against this
// deployment and returns the per-access records. In case 3, aggressive
// prestaging starts when the session starts ("As soon as visualization of
// a dataset begins").
func (d *Deployment) RunSession(ctx context.Context) ([]agent.AccessRecord, error) {
	script, err := session.StandardScript(d.Params, d.Cfg.Accesses, d.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	v, err := agent.NewViewer(d.Params, d.CA)
	if err != nil {
		return nil, err
	}
	// PDA-style client: hold only the current view set, so every set
	// transition is a view set request, as in the paper's counting.
	v.MaxDecoded = 1
	if d.Case == Case3Staged {
		if _, err := d.CA.StartPrestaging(ctx); err != nil {
			return nil, err
		}
	}
	return session.Run(ctx, v, script, session.RunOptions{ThinkTime: d.Cfg.ThinkTime})
}

// RunCase deploys, runs one session, and tears down.
func RunCase(ctx context.Context, cfg Config, res int, cs Case) ([]agent.AccessRecord, error) {
	d, err := Deploy(ctx, cfg, res, cs)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	return d.RunSession(ctx)
}
