package experiments

import (
	"context"
	"testing"
	"time"

	"lonviz/internal/agent"
	"lonviz/internal/netsim"
	"lonviz/internal/session"
)

// fastConfig shrinks everything for unit-test speed: short sessions, mild
// shaping, a small lattice and small views.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.StepDeg = 30 // 6x12 lattice
	cfg.L = 3        // 2x4 = 8 view sets
	cfg.Accesses = 12
	cfg.ThinkTime = 5 * time.Millisecond
	cfg.WAN = netsim.LinkProfile{Name: "wan", Latency: 15 * time.Millisecond, Bandwidth: 4 << 20, Shared: true}
	cfg.LAN = netsim.LinkProfile{Name: "lan", Latency: 200 * time.Microsecond, Bandwidth: 60 << 20, Shared: true}
	return cfg
}

func TestRunCase1AllLocalish(t *testing.T) {
	recs, err := RunCase(context.Background(), fastConfig(), 16, Case1LAN)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Fatalf("records = %d", len(recs))
	}
	// Case 1 never uses a LAN staging depot; accesses are WAN-class
	// transfers over LAN-shaped links or cache hits.
	for i, r := range recs {
		if r.Class == agent.AccessLANDepot {
			t.Errorf("access %d used a staging depot in case 1", i)
		}
		if r.Total <= 0 && r.Class != agent.AccessHit {
			t.Errorf("access %d has non-positive latency", i)
		}
	}
}

func TestRunCase2SlowerThanCase1(t *testing.T) {
	cfg := fastConfig()
	recs1, err := RunCase(context.Background(), cfg, 16, Case1LAN)
	if err != nil {
		t.Fatal(err)
	}
	recs2, err := RunCase(context.Background(), cfg, 16, Case2WAN)
	if err != nil {
		t.Fatal(err)
	}
	m1 := mean(session.TotalSeconds(recs1))
	m2 := mean(session.TotalSeconds(recs2))
	if m2 <= m1 {
		t.Errorf("case 2 mean latency %.4fs not slower than case 1 %.4fs", m2, m1)
	}
}

func TestRunCase3StagingImproves(t *testing.T) {
	// Prefetch off isolates the LAN depot's contribution: without it, the
	// two cases differ only in where misses are served from.
	cfg := fastConfig()
	cfg.NoPrefetch = true
	cfg.Accesses = 20
	recs2, err := RunCase(context.Background(), cfg, 16, Case2WAN)
	if err != nil {
		t.Fatal(err)
	}
	recs3, err := RunCase(context.Background(), cfg, 16, Case3Staged)
	if err != nil {
		t.Fatal(err)
	}
	// Case 3 must serve from the LAN depot, and (the paper's core claim)
	// must reach the WAN on fewer accesses than case 2, because staging
	// localizes the database.
	counts3 := session.ClassCounts(recs3)
	counts2 := session.ClassCounts(recs2)
	t.Logf("case2 classes: %v; case3 classes: %v", counts2, counts3)
	if counts3[agent.AccessLANDepot] == 0 {
		t.Error("case 3 never used the LAN depot")
	}
	if counts3[agent.AccessWAN] >= counts2[agent.AccessWAN] {
		t.Errorf("case 3 WAN accesses (%d) not below case 2 (%d)",
			counts3[agent.AccessWAN], counts2[agent.AccessWAN])
	}
	// Mean latency must not regress materially.
	m3 := mean(session.TotalSeconds(recs3))
	m2 := mean(session.TotalSeconds(recs2))
	if m3 > m2*1.2 {
		t.Errorf("case 3 mean %.4fs much worse than case 2 %.4fs", m3, m2)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

func TestFig7Shape(t *testing.T) {
	cfg := fastConfig()
	rows, err := Fig7(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperResolutions) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Ratio < 3 || r.Ratio > 10 {
			t.Errorf("res %d: ratio %.2f outside the plausible band", r.PaperRes, r.Ratio)
		}
		if i > 0 {
			// Sizes grow with resolution (the quadratic shape of Fig 7).
			if rows[i].PaperScaleUncompressedGB <= rows[i-1].PaperScaleUncompressedGB {
				t.Error("uncompressed size not increasing with resolution")
			}
			if rows[i].MeasuredCompressedMB <= rows[i-1].MeasuredCompressedMB {
				t.Error("compressed size not increasing with resolution")
			}
		}
	}
	// Paper endpoints: ~1.5 GB at 200^2, ~14 GB at 600^2, compressed max
	// around 2 GB.
	if rows[0].PaperScaleUncompressedGB < 1.2 || rows[0].PaperScaleUncompressedGB > 2.0 {
		t.Errorf("200^2 paper-scale size %.2f GB, want ~1.5", rows[0].PaperScaleUncompressedGB)
	}
	last := rows[len(rows)-1]
	if last.PaperScaleUncompressedGB < 12 || last.PaperScaleUncompressedGB > 16 {
		t.Errorf("600^2 paper-scale size %.2f GB, want ~14", last.PaperScaleUncompressedGB)
	}
	if last.PaperScaleCompressedGB > 4 {
		t.Errorf("600^2 compressed %.2f GB, paper reports ~2", last.PaperScaleCompressedGB)
	}
}

func TestClientFPSAbove30(t *testing.T) {
	cfg := fastConfig()
	res, err := ClientFPS(context.Background(), cfg, []int{125})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].FPS < 30 {
		t.Errorf("FPS at 125 display = %.1f, want >= 30 (paper claims >30 at 500)", res[0].FPS)
	}
}

func TestDeployWiring(t *testing.T) {
	cfg := fastConfig()
	d, err := Deploy(context.Background(), cfg, 16, Case3Staged)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(d.WANDepots) != cfg.NumWANDepots || len(d.LANDepots) != cfg.NumLANDepots {
		t.Errorf("depot pools = %d/%d", len(d.WANDepots), len(d.LANDepots))
	}
	// The client dialer must route server depots over the WAN profile and
	// LAN depots over the LAN profile in case 3.
	for _, addr := range d.WANDepots {
		if d.Dialer.RouteTo(addr).Name != "wan" {
			t.Errorf("server depot %s not routed via WAN", addr)
		}
	}
	for _, addr := range d.LANDepots {
		if d.Dialer.RouteTo(addr).Name != "lan" {
			t.Errorf("LAN depot %s not routed via LAN", addr)
		}
	}
}

func TestScaleRes(t *testing.T) {
	if ScaleRes(200) != 50 || ScaleRes(600) != 150 {
		t.Errorf("ScaleRes = %d, %d", ScaleRes(200), ScaleRes(600))
	}
}

// TestDepotFailureWithReplication injects a server depot crash in the
// middle of a session. With two replicas per stripe, the LoRS failover
// path keeps every access succeeding; the weak "best effort" semantics of
// IBP (paper 2.2) are survivable at the application layer.
func TestDepotFailureWithReplication(t *testing.T) {
	cfg := fastConfig()
	cfg.Replicas = 2
	cfg.NoPrefetch = true // deterministic access pattern
	d, err := Deploy(context.Background(), cfg, 16, Case2WAN)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	v, err := agent.NewViewer(d.Params, d.CA)
	if err != nil {
		t.Fatal(err)
	}
	v.MaxDecoded = 1
	script, err := session.StandardScript(d.Params, 16, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range script.Moves {
		if i == 5 {
			d.WANDepotClosers[0]() // one of three depots dies
		}
		if _, err := v.MoveTo(context.Background(), sp); err != nil {
			t.Fatalf("move %d after depot failure: %v", i, err)
		}
	}
}

// TestDepotFailureWithoutReplication documents the contrast: with a
// single replica, accesses whose stripes lived only on the dead depot
// fail. The session may or may not hit such a stripe, but the system
// must fail with an error rather than wrong data.
func TestDepotFailureWithoutReplication(t *testing.T) {
	cfg := fastConfig()
	cfg.NoPrefetch = true
	d, err := Deploy(context.Background(), cfg, 16, Case2WAN)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Kill all three server depots: every miss must now error.
	for _, closer := range d.WANDepotClosers {
		closer()
	}
	v, err := agent.NewViewer(d.Params, d.CA)
	if err != nil {
		t.Fatal(err)
	}
	script, err := session.StandardScript(d.Params, 4, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	for _, sp := range script.Moves {
		if _, err := v.MoveTo(context.Background(), sp); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Error("no access failed with every depot dead")
	}
}

func TestQGROrdering(t *testing.T) {
	// The paper's observation: case 2's QGR is significantly slower than
	// cases 1 and 3. With a 30ms budget, case 1 passes at the fastest
	// think time while case 2 needs a much longer one.
	cfg := fastConfig()
	cfg.Accesses = 10
	results, err := QGRComparison(context.Background(), cfg, 200, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byCase := map[Case]QGRResult{}
	for _, r := range results {
		byCase[r.Case] = r
		t.Logf("case %d: minThink=%v worst=%v rate=%.1f/s", r.Case, r.MinThink, r.WorstLatency, r.MovesPerSecond)
	}
	if byCase[Case2WAN].MinThink < byCase[Case1LAN].MinThink {
		t.Errorf("case 2 QGR think (%v) faster than case 1 (%v)",
			byCase[Case2WAN].MinThink, byCase[Case1LAN].MinThink)
	}
	if byCase[Case1LAN].MovesPerSecond == 0 {
		t.Error("case 1 never met the budget; budget or shaping miscalibrated")
	}
}
