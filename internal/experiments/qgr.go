package experiments

import (
	"context"
	"time"
)

// QGRResult reports the Quality Guaranteed Rate measurement for one case:
// the fastest cursor movement rate (shortest think time between view set
// transitions) at which every access still completes within the latency
// budget. The paper (section 4.2) defines QGR as the "sufficiently slow
// rate of user movement" under which prefetching and caching hide all
// transfer latency, and observes that case 2's QGR is "significantly
// slower" than cases 1 and 3.
type QGRResult struct {
	Case Case
	// MinThink is the shortest think time that kept every access under
	// Budget (the inverse of the QGR: smaller = faster allowed movement).
	MinThink time.Duration
	// MovesPerSecond is the corresponding movement rate.
	MovesPerSecond float64
	// WorstLatency is the worst access latency observed at MinThink.
	WorstLatency time.Duration
}

// QGR measures the quality-guaranteed movement rate for one case at one
// scaled resolution by sweeping think times from fast to slow and taking
// the first at which no access exceeds budget. The sweep is geometric;
// candidates are bounded by [4ms, 2s].
func QGR(ctx context.Context, cfg Config, res int, cs Case, budget time.Duration) (QGRResult, error) {
	out := QGRResult{Case: cs}
	candidates := []time.Duration{
		4 * time.Millisecond,
		16 * time.Millisecond,
		64 * time.Millisecond,
		256 * time.Millisecond,
		1024 * time.Millisecond,
		2048 * time.Millisecond,
	}
	for _, think := range candidates {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		c := cfg
		c.ThinkTime = think
		recs, err := RunCase(ctx, c, res, cs)
		if err != nil {
			return out, err
		}
		worst := time.Duration(0)
		// The first access always pays a cold transfer in every case; QGR
		// is about steady-state movement, so skip index 0.
		for _, r := range recs[1:] {
			if r.Total > worst {
				worst = r.Total
			}
		}
		if worst <= budget {
			out.MinThink = think
			out.WorstLatency = worst
			out.MovesPerSecond = 1 / (think + worst).Seconds()
			return out, nil
		}
		// Slowing down has stopped helping: the worst access is dominated
		// by unhidden transfer latency, which no think time can fix. Stop
		// sweeping (the paper's case-2-at-high-resolution regime).
		if think >= 8*budget && worst > 2*budget {
			break
		}
	}
	// Even the slowest candidate failed the budget: report it as the
	// (unattained) bound.
	out.MinThink = candidates[len(candidates)-1]
	out.MovesPerSecond = 0
	return out, nil
}

// QGRComparison measures all three cases, reproducing the section 4.2
// observation ordering (case 2's QGR much slower than cases 1 and 3).
func QGRComparison(ctx context.Context, cfg Config, paperRes int, budget time.Duration) ([]QGRResult, error) {
	res := ScaleRes(paperRes)
	// Short sessions keep the sweep fast; the steady-state worst access is
	// what matters.
	c := cfg
	if c.Accesses > 20 {
		c.Accesses = 20
	}
	out := make([]QGRResult, 0, 3)
	for _, cs := range []Case{Case1LAN, Case2WAN, Case3Staged} {
		r, err := QGR(ctx, c, res, cs, budget)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
