package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Fatal("nil gate reported load")
	}
}

func TestGateBoundsInFlight(t *testing.T) {
	g := NewGate(2, 0, 10*time.Millisecond)
	r1, err1 := g.Acquire(context.Background())
	r2, err2 := g.Acquire(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if g.InFlight() != 2 {
		t.Fatalf("inflight = %d", g.InFlight())
	}
	// Queue capacity 0: the third request sheds immediately.
	if _, err := g.Acquire(context.Background()); Reason(err) != ReasonQueueFull {
		t.Fatalf("third acquire: %v", err)
	}
	r1()
	r3, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r2()
	r3()
	if g.InFlight() != 0 {
		t.Fatalf("inflight after drain = %d", g.InFlight())
	}
}

func TestGateQueueWaitTimesOut(t *testing.T) {
	g := NewGate(1, 4, 20*time.Millisecond)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = g.Acquire(context.Background())
	if Reason(err) != ReasonQueueWait {
		t.Fatalf("queued acquire: %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("shed before MaxWait elapsed")
	}
	if !errors.Is(err, ErrShed) {
		t.Fatal("shed error does not unwrap to ErrShed")
	}
}

func TestGateShedsExpiredDeadline(t *testing.T) {
	g := NewGate(4, 4, time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(ctx); Reason(err) != ReasonDeadline {
		t.Fatalf("expired ctx: %v", err)
	}

	// A waiter whose deadline expires while queued is shed too.
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGate(1, 4, time.Second)
	r2, _ := g2.Acquire(context.Background())
	wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer wcancel()
	if _, err := g2.Acquire(wctx); Reason(err) != ReasonDeadline {
		t.Fatalf("queued-then-expired: %v", err)
	}
	r2()
	release()
}

func TestGateConcurrentLoad(t *testing.T) {
	g := NewGate(4, 8, 50*time.Millisecond)
	var wg sync.WaitGroup
	var mu sync.Mutex
	peak, admitted, shed := int64(0), 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background())
			if err != nil {
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			mu.Lock()
			admitted++
			if n := g.InFlight(); n > peak {
				peak = n
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			release()
		}()
	}
	wg.Wait()
	if peak > 4 {
		t.Fatalf("inflight peaked at %d > 4", peak)
	}
	if admitted == 0 || shed == 0 {
		t.Fatalf("admitted=%d shed=%d, want both nonzero", admitted, shed)
	}
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", g.InFlight(), g.Queued())
	}
}
