// Package overload holds the shared admission-control primitives of the
// stack's overload-robustness layer. A Gate bounds how many requests a
// server executes at once, lets a small queue of waiters ride out short
// bursts, and sheds everything beyond that explicitly — the caller turns
// a shed into a BUSY wire rejection so clients retry elsewhere instead
// of piling onto a depot that is already the problem. Deadlines
// propagated over the wire (obs.DeadlineToken) compose naturally: a
// waiter whose context expires while queued is shed instead of served.
package overload

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Shed reasons, used as the {reason=...} label on shed counters.
const (
	// ReasonDeadline: the request's deadline budget was exhausted before
	// a slot opened (or before it was even considered).
	ReasonDeadline = "deadline"
	// ReasonQueueFull: the wait queue was already at capacity.
	ReasonQueueFull = "queue_full"
	// ReasonQueueWait: the request waited MaxWait without getting a slot.
	ReasonQueueWait = "queue_wait"
)

// ErrShed is the sentinel all shed errors unwrap to.
var ErrShed = errors.New("overload: shed")

// ShedError reports one shed admission attempt and its reason.
type ShedError struct {
	Reason string
}

// Error implements error.
func (e *ShedError) Error() string { return "overload: shed (" + e.Reason + ")" }

// Unwrap lets errors.Is(err, ErrShed) classify any shed.
func (e *ShedError) Unwrap() error { return ErrShed }

// Reason extracts the shed reason from an error chain, or "" when err is
// not a shed.
func Reason(err error) string {
	var se *ShedError
	if errors.As(err, &se) {
		return se.Reason
	}
	return ""
}

// Gate is a bounded-concurrency admission controller. A nil *Gate admits
// everything (all methods are nil-safe), so optional admission control
// needs no call-site guards.
type Gate struct {
	sem      chan struct{}
	maxQueue int64
	maxWait  time.Duration
	queued   atomic.Int64
	inflight atomic.Int64
}

// NewGate builds a gate admitting maxInFlight concurrent requests with
// up to maxQueue more waiting at most maxWait (default 1s) for a slot.
// maxInFlight <= 0 returns nil: admission disabled.
func NewGate(maxInFlight, maxQueue int, maxWait time.Duration) *Gate {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if maxWait <= 0 {
		maxWait = time.Second
	}
	return &Gate{
		sem:      make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		maxWait:  maxWait,
	}
}

// Acquire admits one request: it returns a release func the caller must
// invoke when the request finishes, or a *ShedError when the request
// must be rejected. A context that is already done (deadline budget
// spent in flight) is shed immediately without consuming a slot.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	if ctx.Err() != nil {
		return nil, &ShedError{Reason: ReasonDeadline}
	}
	select {
	case g.sem <- struct{}{}:
		g.inflight.Add(1)
		return g.release, nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return nil, &ShedError{Reason: ReasonQueueFull}
	}
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		g.inflight.Add(1)
		return g.release, nil
	case <-ctx.Done():
		return nil, &ShedError{Reason: ReasonDeadline}
	case <-timer.C:
		return nil, &ShedError{Reason: ReasonQueueWait}
	}
}

func (g *Gate) release() {
	g.inflight.Add(-1)
	<-g.sem
}

// InFlight reports requests currently executing.
func (g *Gate) InFlight() int64 {
	if g == nil {
		return 0
	}
	return g.inflight.Load()
}

// Queued reports requests currently waiting for a slot.
func (g *Gate) Queued() int64 {
	if g == nil {
		return 0
	}
	return g.queued.Load()
}
