// Fault injection: the paper's value proposition is that LoN-based
// browsing keeps working over a lossy, variable WAN, not just a clean one.
// FaultDialer wraps any dialer with deterministic, per-depot failure
// behaviour — refused connections, mid-stream drops, stalls that hang
// until the operation deadline, silent payload corruption, and latency
// spikes — so resilience tests can kill or degrade one specific depot and
// replay the exact same fault sequence from a seed.

package netsim

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// FaultProfile describes the failure behaviour injected on connections to
// one address. Probabilities are in [0,1]; a zero profile injects nothing.
type FaultProfile struct {
	// RefuseProb is the probability a dial fails outright (connection
	// refused) — the clean failure mode.
	RefuseProb float64
	// DropProb is the per-read probability the connection dies mid-stream
	// (the peer socket is closed under the reader).
	DropProb float64
	// StallProb is the per-connection probability that reads hang until
	// the connection deadline expires — the degraded-link failure mode
	// that distinguishes a sick depot from a dead one.
	StallProb float64
	// StallMax caps a stall on connections that carry no deadline
	// (default 2s), so an unbounded reader cannot hang a test forever.
	StallMax time.Duration
	// CorruptProb is the per-connection probability that one payload byte
	// is silently flipped. Corruption skips everything up to and including
	// the first newline, so protocol status lines survive and only the
	// binary payload is poisoned — the failure only checksums can catch.
	CorruptProb float64
	// SpikeProb is the per-connection probability of an added Spike delay
	// before the first read (a latency spike, not a failure).
	SpikeProb float64
	// Spike is the delay added when a spike fires (default 100ms).
	Spike time.Duration
}

func (p FaultProfile) zero() bool {
	return p.RefuseProb == 0 && p.DropProb == 0 && p.StallProb == 0 &&
		p.CorruptProb == 0 && p.SpikeProb == 0
}

// ErrInjectedRefusal is returned (wrapped) when a dial is refused by the
// fault layer.
var ErrInjectedRefusal = fmt.Errorf("netsim: injected connection refusal")

// ErrInjectedDrop is returned (wrapped) when a read dies mid-stream.
var ErrInjectedDrop = fmt.Errorf("netsim: injected connection drop")

// FaultDialer wraps an inner dialer (nil means plain TCP) with per-address
// fault profiles. All randomness comes from one seeded source, so a fixed
// seed replays the same fault decisions given the same operation sequence.
// It also counts dials per address, which lets tests assert that a
// circuit-open depot receives zero requests during its cooldown.
type FaultDialer struct {
	mu       sync.Mutex
	inner    UnderlyingDialer
	rng      *rand.Rand
	profiles map[string]FaultProfile
	fallback FaultProfile
	dials    map[string]int
	refused  map[string]int
}

// UnderlyingDialer is the connection source a FaultDialer wraps;
// *netsim.Dialer and ibp.NetDialer both satisfy it.
type UnderlyingDialer interface {
	Dial(addr string) (net.Conn, error)
}

// netDial is the nil-inner fallback.
type netDial struct{}

func (netDial) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// NewFaultDialer wraps inner (nil = plain TCP) with a deterministic fault
// source.
func NewFaultDialer(inner UnderlyingDialer, seed int64) *FaultDialer {
	if inner == nil {
		inner = netDial{}
	}
	return &FaultDialer{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed)),
		profiles: make(map[string]FaultProfile),
		dials:    make(map[string]int),
		refused:  make(map[string]int),
	}
}

// SetFault assigns a fault profile for connections to addr.
func (f *FaultDialer) SetFault(addr string, p FaultProfile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.profiles[addr] = p
}

// SetFallback assigns the profile used for addresses without their own.
func (f *FaultDialer) SetFallback(p FaultProfile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fallback = p
}

// Kill makes every dial to addr fail — a dead depot.
func (f *FaultDialer) Kill(addr string) { f.SetFault(addr, FaultProfile{RefuseProb: 1}) }

// Revive clears addr's profile — the depot is healthy again.
func (f *FaultDialer) Revive(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.profiles, addr)
}

// Dials reports how many connection attempts (including refused ones) have
// targeted addr.
func (f *FaultDialer) Dials(addr string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dials[addr]
}

// Refused reports how many dials to addr were refused by injection.
func (f *FaultDialer) Refused(addr string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.refused[addr]
}

// chance draws one seeded Bernoulli decision; callers must hold f.mu.
func (f *FaultDialer) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return f.rng.Float64() < p
}

// Dial implements the ibp.Dialer contract with faults applied. Per-
// connection decisions (stall, corrupt, spike) are drawn at dial time so a
// connection's fate is fixed by the seed and dial order.
func (f *FaultDialer) Dial(addr string) (net.Conn, error) {
	f.mu.Lock()
	p, ok := f.profiles[addr]
	if !ok {
		p = f.fallback
	}
	f.dials[addr]++
	if p.zero() {
		f.mu.Unlock()
		return f.inner.Dial(addr)
	}
	if f.chance(p.RefuseProb) {
		f.refused[addr]++
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: dial %s", ErrInjectedRefusal, addr)
	}
	fc := &faultConn{dialer: f, profile: p}
	fc.stall = f.chance(p.StallProb)
	fc.corrupt = f.chance(p.CorruptProb)
	if f.chance(p.SpikeProb) {
		fc.spike = p.Spike
		if fc.spike <= 0 {
			fc.spike = 100 * time.Millisecond
		}
	}
	f.mu.Unlock()
	conn, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	fc.Conn = conn
	return fc, nil
}

// dropChance draws a per-read drop decision.
func (f *FaultDialer) dropChance(p float64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.chance(p)
}

// faultConn applies a connection's drawn fate to its reads.
type faultConn struct {
	net.Conn
	dialer  *FaultDialer
	profile FaultProfile
	stall   bool
	corrupt bool
	spike   time.Duration

	spikeOnce sync.Once

	deadlineMu sync.Mutex
	deadline   time.Time

	sawNewline bool
	corrupted  bool
}

// SetDeadline records the deadline so stalls know when to give up, then
// forwards it.
func (c *faultConn) SetDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.deadline = t
	c.deadlineMu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline records and forwards, like SetDeadline.
func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.deadline = t
	c.deadlineMu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// stallOut sleeps until the recorded deadline (re-read in small steps so a
// cancellation that moves the deadline into the past takes effect), then
// reports a timeout — exactly what a hung remote looks like to the reader.
func (c *faultConn) stallOut() error {
	max := c.profile.StallMax
	if max <= 0 {
		max = 2 * time.Second
	}
	end := time.Now().Add(max)
	for {
		c.deadlineMu.Lock()
		dl := c.deadline
		c.deadlineMu.Unlock()
		if !dl.IsZero() && dl.Before(end) {
			end = dl
		}
		remaining := time.Until(end)
		if remaining <= 0 {
			return os.ErrDeadlineExceeded
		}
		step := 5 * time.Millisecond
		if remaining < step {
			step = remaining
		}
		time.Sleep(step)
	}
}

// Read applies, in order: the latency spike, the stall, the mid-stream
// drop, and payload corruption.
func (c *faultConn) Read(b []byte) (int, error) {
	c.spikeOnce.Do(func() {
		if c.spike > 0 {
			time.Sleep(c.spike)
		}
	})
	if c.stall {
		return 0, c.stallOut()
	}
	if c.dialer.dropChance(c.profile.DropProb) {
		c.Conn.Close()
		return 0, fmt.Errorf("%w: read", ErrInjectedDrop)
	}
	n, err := c.Conn.Read(b)
	if n > 0 && c.corrupt && !c.corrupted {
		c.corruptPayload(b[:n])
	}
	return n, err
}

// corruptPayload flips one bit of the first byte that lies beyond the
// response status line, so the wire protocol stays intact and only the
// binary payload is poisoned.
func (c *faultConn) corruptPayload(b []byte) {
	i := 0
	if !c.sawNewline {
		for ; i < len(b); i++ {
			if b[i] == '\n' {
				c.sawNewline = true
				i++
				break
			}
		}
	}
	if c.sawNewline && i < len(b) {
		b[i] ^= 0x80
		c.corrupted = true
	}
}
