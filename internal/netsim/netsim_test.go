package netsim

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected TCP pair over loopback.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestShapePassesData(t *testing.T) {
	c, s := pipePair(t)
	sc := Shape(c, ProfileLocal)
	msg := []byte("view set bytes")
	go func() { s.Write(msg) }()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("got %q", buf)
	}
}

func TestLatencyAppliedOnce(t *testing.T) {
	c, s := pipePair(t)
	p := LinkProfile{Name: "test", Latency: 50 * time.Millisecond}
	sc := Shape(c, p)
	go func() {
		s.Write([]byte("a"))
		time.Sleep(10 * time.Millisecond)
		s.Write([]byte("b"))
	}()
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	first := time.Since(start)
	if first < 50*time.Millisecond {
		t.Errorf("first read took %v, want >= 50ms", first)
	}
	start = time.Now()
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	second := time.Since(start)
	if second > 45*time.Millisecond {
		t.Errorf("second read took %v; latency applied more than once", second)
	}
}

func TestBandwidthLimit(t *testing.T) {
	c, s := pipePair(t)
	// 1 MiB/s with tiny burst: transferring 256 KiB beyond the burst
	// should take roughly 0.2s.
	p := LinkProfile{Name: "slow", Bandwidth: 1 << 20, Burst: 32 * 1024}
	sc := Shape(c, p)
	payload := make([]byte, 256*1024)
	go func() {
		s.Write(payload)
	}()
	start := time.Now()
	if _, err := io.ReadFull(sc, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// (256-32) KiB at 1 MiB/s = ~218ms minimum.
	if elapsed < 150*time.Millisecond {
		t.Errorf("transfer took %v, bandwidth limit not enforced", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("transfer took %v, limiter far too slow", elapsed)
	}
}

func TestUnlimitedProfileFast(t *testing.T) {
	c, s := pipePair(t)
	sc := Shape(c, ProfileLocal)
	payload := make([]byte, 1<<20)
	go func() { s.Write(payload) }()
	start := time.Now()
	if _, err := io.ReadFull(sc, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("unshaped transfer took %v", elapsed)
	}
}

func TestScaledProfile(t *testing.T) {
	p := LinkProfile{Latency: 100 * time.Millisecond, Bandwidth: 1000}
	s := p.Scaled(10)
	if s.Latency != 10*time.Millisecond {
		t.Errorf("scaled latency = %v", s.Latency)
	}
	if s.Bandwidth != 10000 {
		t.Errorf("scaled bandwidth = %d", s.Bandwidth)
	}
	if got := p.Scaled(0); got != p {
		t.Error("Scaled(0) should be identity")
	}
	u := LinkProfile{Latency: time.Second}
	if got := u.Scaled(4); got.Bandwidth != 0 {
		t.Error("scaling must keep unlimited bandwidth unlimited")
	}
}

func TestShapeListener(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := ShapeListener(inner, LinkProfile{Name: "x", Latency: time.Millisecond})
	defer l.Close()
	go func() {
		c, err := net.Dial("tcp", l.Addr().String())
		if err == nil {
			c.Write([]byte("hi"))
			c.Close()
		}
	}()
	c, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *netsim.Conn", c)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
}

func TestDialerRoutes(t *testing.T) {
	d := NewDialer(ProfileLocal)
	d.SetRoute("10.0.0.1:5000", ProfileWAN)
	if got := d.RouteTo("10.0.0.1:5000"); got.Name != "wan" {
		t.Errorf("RouteTo = %+v", got)
	}
	if got := d.RouteTo("10.0.0.2:5000"); got.Name != "local" {
		t.Errorf("fallback RouteTo = %+v", got)
	}
}

func TestDialerDialShapes(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Write([]byte("pong"))
			c.Close()
		}
	}()
	d := NewDialer(ProfileLocal)
	d.SetRoute(l.Addr().String(), LinkProfile{Name: "slowlink", Latency: 30 * time.Millisecond})
	start := time.Now()
	c, err := d.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("dial returned in %v, handshake latency not applied", elapsed)
	}
	sc, ok := c.(*Conn)
	if !ok {
		t.Fatalf("dialed conn is %T", c)
	}
	if sc.Profile().Name != "slowlink" {
		t.Errorf("profile = %+v", sc.Profile())
	}
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestDialerConnectionRefused(t *testing.T) {
	d := NewDialer(ProfileLocal)
	d.DialTimeout = 200 * time.Millisecond
	if _, err := d.Dial("127.0.0.1:1"); err == nil {
		t.Error("expected connection error")
	}
}

func TestTokenBucketLongRunRate(t *testing.T) {
	tb := newTokenBucket(1<<20, 1024) // 1 MiB/s, 1 KiB burst
	start := time.Now()
	total := 0
	for total < 200*1024 {
		tb.wait(16 * 1024)
		total += 16 * 1024
	}
	elapsed := time.Since(start).Seconds()
	rate := float64(total) / elapsed
	if rate > 1.4*float64(1<<20) {
		t.Errorf("long-run rate %.0f B/s exceeds limit", rate)
	}
}

func TestSharedBucketContention(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 128*1024)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				c.Write(payload)
				c.Close()
			}(c)
		}
	}()
	// Shared 1 MiB/s across two concurrent transfers of 128 KiB each:
	// total 256 KiB must take >= ~0.2s beyond the burst; unshared would
	// run both at full rate.
	p := LinkProfile{Name: "bottleneck", Bandwidth: 1 << 20, Burst: 16 * 1024, Shared: true}
	d := NewDialer(p)
	start := time.Now()
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			c, err := d.Dial(l.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			_, err = io.ReadFull(c, make([]byte, len(payload)))
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 256 KiB - 16 KiB burst at 1 MiB/s ~= 234ms minimum if shared.
	if elapsed < 180*time.Millisecond {
		t.Errorf("two shared transfers took %v; bucket not shared", elapsed)
	}
}
