// Package netsim simulates wide-area and local-area network conditions
// over real TCP connections on the loopback interface. The paper's
// experiments span a real WAN (UT Knoxville to three depots in California)
// and a 1 Gb/s departmental LAN; reproducing them deterministically
// requires controlling latency and bandwidth, so every simulated link runs
// through a shaper that injects propagation delay and enforces a
// token-bucket rate limit on both directions.
//
// Shaping wraps net.Conn, so the IBP wire protocol, the L-Bone, and the
// DVS all run over genuinely concurrent sockets — the code paths are the
// real ones, only the physics are scaled.
package netsim

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// LinkProfile describes one direction-symmetric link.
type LinkProfile struct {
	// Name labels the profile in logs and metrics.
	Name string
	// Latency is the one-way propagation delay added to every read.
	Latency time.Duration
	// Bandwidth is the sustained rate in bytes per second (0 = unlimited).
	Bandwidth int64
	// Burst is the token bucket depth in bytes; defaults to one RTT of
	// bandwidth or 64 KiB, whichever is larger.
	Burst int64
	// Shared makes all connections dialed with this profile (through one
	// Dialer) share a single token bucket, modeling a common bottleneck
	// link. Concurrent transfers then contend for bandwidth — the effect
	// behind the paper's inflated LAN depot latency while prestaging runs.
	Shared bool
}

// Common profiles approximating the paper's topology at laptop scale.
var (
	// ProfileWAN models the UTK <-> California path: ~35 ms one-way,
	// ~40 Mb/s per stream (the paper's LoRS downloads sustained tens of
	// Mb/s on Abilene/ESNet).
	ProfileWAN = LinkProfile{Name: "wan", Latency: 35 * time.Millisecond, Bandwidth: 5 * 1024 * 1024}
	// ProfileLAN models the department LAN: 0.2 ms, 1 Gb/s.
	ProfileLAN = LinkProfile{Name: "lan", Latency: 200 * time.Microsecond, Bandwidth: 125 * 1024 * 1024}
	// ProfileLocal is effectively unshaped loopback.
	ProfileLocal = LinkProfile{Name: "local"}
)

// Scaled returns a copy of the profile with latency divided by f and
// bandwidth multiplied by f — used to shrink experiment wall-clock time
// while preserving latency/bandwidth orderings.
func (p LinkProfile) Scaled(f float64) LinkProfile {
	if f <= 0 {
		return p
	}
	out := p
	out.Latency = time.Duration(float64(p.Latency) / f)
	if p.Bandwidth > 0 {
		out.Bandwidth = int64(float64(p.Bandwidth) * f)
	}
	return out
}

func (p LinkProfile) burst() int64 {
	if p.Burst > 0 {
		return p.Burst
	}
	b := int64(64 * 1024)
	if p.Bandwidth > 0 {
		rttBytes := int64(float64(p.Bandwidth) * (2 * p.Latency.Seconds()))
		if rttBytes > b {
			b = rttBytes
		}
	}
	return b
}

// tokenBucket is a thread-safe byte rate limiter.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst int64) *tokenBucket {
	return &tokenBucket{
		rate:   float64(rate),
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// wait blocks until n bytes may pass, then consumes them. Requests larger
// than the burst are split implicitly by consuming in full and waiting out
// the deficit, which preserves long-run rate.
func (tb *tokenBucket) wait(n int) {
	if tb == nil || tb.rate <= 0 {
		return
	}
	tb.mu.Lock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.tokens -= float64(n)
	var sleep time.Duration
	if tb.tokens < 0 {
		sleep = time.Duration(-tb.tokens / tb.rate * float64(time.Second))
	}
	tb.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

// Conn shapes an underlying net.Conn. Reads are delayed by the link latency
// (modeling one-way propagation of the bytes that just arrived) and paced
// by the token bucket.
type Conn struct {
	net.Conn
	profile LinkProfile
	bucket  *tokenBucket
	// firstByte delays only the first read to model propagation without
	// adding per-segment latency (TCP pipelines segments within a stream).
	latencyOnce sync.Once
}

// Shape wraps c with the given profile. A zero profile passes through.
func Shape(c net.Conn, p LinkProfile) *Conn {
	var tb *tokenBucket
	if p.Bandwidth > 0 {
		tb = newTokenBucket(p.Bandwidth, p.burst())
	}
	return &Conn{Conn: c, profile: p, bucket: tb}
}

// Read implements net.Conn with shaping applied.
func (c *Conn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.latencyOnce.Do(func() {
			if c.profile.Latency > 0 {
				time.Sleep(c.profile.Latency)
			}
		})
		c.bucket.wait(n)
	}
	return n, err
}

// Profile returns the link profile of the connection.
func (c *Conn) Profile() LinkProfile { return c.profile }

// Listener shapes every accepted connection with a fixed profile.
type Listener struct {
	net.Listener
	profile LinkProfile
}

// ShapeListener wraps l so all accepted conns are shaped with p.
func ShapeListener(l net.Listener, p LinkProfile) *Listener {
	return &Listener{Listener: l, profile: p}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Shape(c, l.profile), nil
}

// Dialer dials with a per-destination link profile, shaping the client
// side of the connection. The zero Dialer dials unshaped.
type Dialer struct {
	mu       sync.RWMutex
	profiles map[string]LinkProfile // addr -> profile
	fallback LinkProfile
	shared   map[string]*tokenBucket // profile name -> shared bucket
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

// NewDialer returns a Dialer whose default profile is fallback.
func NewDialer(fallback LinkProfile) *Dialer {
	return &Dialer{
		profiles: make(map[string]LinkProfile),
		fallback: fallback,
		shared:   make(map[string]*tokenBucket),
	}
}

// sharedBucket returns (creating on first use) the common bucket for a
// Shared profile.
func (d *Dialer) sharedBucket(p LinkProfile) *tokenBucket {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.shared == nil {
		d.shared = make(map[string]*tokenBucket)
	}
	tb, ok := d.shared[p.Name]
	if !ok {
		tb = newTokenBucket(p.Bandwidth, p.burst())
		d.shared[p.Name] = tb
	}
	return tb
}

// SetRoute assigns a profile for connections to addr (exact match on the
// dialed address string).
func (d *Dialer) SetRoute(addr string, p LinkProfile) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.profiles[addr] = p
}

// RouteTo returns the profile that would shape a connection to addr.
func (d *Dialer) RouteTo(addr string) LinkProfile {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if p, ok := d.profiles[addr]; ok {
		return p
	}
	return d.fallback
}

// Dial connects to addr over TCP and shapes the result. The connect
// handshake itself also pays the route's latency once, modeling SYN
// propagation.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	p := d.RouteTo(addr)
	timeout := d.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, err)
	}
	if p.Latency > 0 {
		time.Sleep(p.Latency)
	}
	sc := Shape(c, p)
	if p.Shared && p.Bandwidth > 0 {
		sc.bucket = d.sharedBucket(p)
	}
	return sc, nil
}

// ShareBucketsWith makes d draw Shared-profile bandwidth from the same
// token buckets as o, modeling distinct dialers whose traffic crosses one
// physical bottleneck (e.g. client downloads and depot-to-depot staging
// both traversing the same WAN uplink). Call before issuing any dials.
func (d *Dialer) ShareBucketsWith(o *Dialer) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.shared == nil {
		o.shared = make(map[string]*tokenBucket)
	}
	shared := o.shared
	o.mu.Unlock()
	d.mu.Lock()
	d.shared = shared
	d.mu.Unlock()
}
