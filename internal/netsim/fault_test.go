package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// echoServer accepts connections and writes payload to each, then closes.
func echoServer(t *testing.T, payload []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(payload)
			}(c)
		}
	}()
	return ln.Addr().String()
}

func TestFaultDialerPassthrough(t *testing.T) {
	addr := echoServer(t, []byte("OK 2\nhi"))
	fd := NewFaultDialer(nil, 1)
	conn, err := fd.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "OK 2\nhi" {
		t.Errorf("passthrough read %q", got)
	}
	if fd.Dials(addr) != 1 || fd.Refused(addr) != 0 {
		t.Errorf("dials=%d refused=%d", fd.Dials(addr), fd.Refused(addr))
	}
}

func TestFaultDialerKillRevive(t *testing.T) {
	addr := echoServer(t, []byte("x"))
	fd := NewFaultDialer(nil, 2)
	fd.Kill(addr)
	for i := 0; i < 3; i++ {
		if _, err := fd.Dial(addr); !errors.Is(err, ErrInjectedRefusal) {
			t.Fatalf("dial %d: err = %v, want injected refusal", i, err)
		}
	}
	if fd.Dials(addr) != 3 || fd.Refused(addr) != 3 {
		t.Errorf("dials=%d refused=%d, want 3/3", fd.Dials(addr), fd.Refused(addr))
	}
	fd.Revive(addr)
	conn, err := fd.Dial(addr)
	if err != nil {
		t.Fatalf("dial after revive: %v", err)
	}
	conn.Close()
	if fd.Refused(addr) != 3 {
		t.Errorf("revived dial counted as refused")
	}
}

func TestFaultDialerSeedDeterminism(t *testing.T) {
	addr := echoServer(t, []byte("x"))
	outcomes := func(seed int64) []bool {
		fd := NewFaultDialer(nil, seed)
		fd.SetFault(addr, FaultProfile{RefuseProb: 0.5})
		out := make([]bool, 32)
		for i := range out {
			conn, err := fd.Dial(addr)
			out[i] = err == nil
			if conn != nil {
				conn.Close()
			}
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at dial %d", i)
		}
	}
	c := outcomes(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 32-dial sequences")
	}
}

func TestFaultDialerCorruptsOnePayloadByte(t *testing.T) {
	payload := append([]byte("OK 64\n"), bytes.Repeat([]byte{0x41}, 64)...)
	addr := echoServer(t, payload)
	fd := NewFaultDialer(nil, 3)
	fd.SetFault(addr, FaultProfile{CorruptProb: 1})
	conn, err := fd.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("read %d bytes, want %d", len(got), len(payload))
	}
	// The status line must survive untouched; exactly one later byte flips.
	if !bytes.Equal(got[:6], payload[:6]) {
		t.Errorf("status line corrupted: %q", got[:6])
	}
	diffs := 0
	for i := 6; i < len(got); i++ {
		if got[i] != payload[i] {
			diffs++
			if got[i] != payload[i]^0x80 {
				t.Errorf("byte %d changed %#x -> %#x, not a single bit-flip", i, payload[i], got[i])
			}
		}
	}
	if diffs != 1 {
		t.Errorf("%d payload bytes corrupted, want exactly 1", diffs)
	}
}

func TestFaultDialerStallHonorsDeadline(t *testing.T) {
	addr := echoServer(t, []byte("never delivered"))
	fd := NewFaultDialer(nil, 4)
	fd.SetFault(addr, FaultProfile{StallProb: 1, StallMax: 10 * time.Second})
	conn, err := fd.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	elapsed := time.Since(start)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read err = %v, want deadline exceeded", err)
	}
	if elapsed < 40*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("stall lasted %v, want ~50ms", elapsed)
	}
}

func TestFaultDialerStallCapWithoutDeadline(t *testing.T) {
	addr := echoServer(t, []byte("never delivered"))
	fd := NewFaultDialer(nil, 5)
	fd.SetFault(addr, FaultProfile{StallProb: 1, StallMax: 30 * time.Millisecond})
	conn, err := fd.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline-less stall ran %v despite 30ms cap", elapsed)
	}
}

func TestFaultDialerDropClosesConn(t *testing.T) {
	addr := echoServer(t, bytes.Repeat([]byte{1}, 1024))
	fd := NewFaultDialer(nil, 6)
	fd.SetFault(addr, FaultProfile{DropProb: 1})
	conn, err := fd.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Read(make([]byte, 16)); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("read err = %v, want injected drop", err)
	}
	// The underlying socket is dead: subsequent reads keep failing.
	if _, err := conn.Read(make([]byte, 16)); err == nil {
		t.Error("read after drop succeeded")
	}
}

func TestFaultDialerSpikeDelaysFirstRead(t *testing.T) {
	addr := echoServer(t, []byte("data"))
	fd := NewFaultDialer(nil, 7)
	fd.SetFault(addr, FaultProfile{SpikeProb: 1, Spike: 60 * time.Millisecond})
	conn, err := fd.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Read(make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("first read returned in %v; spike not applied", elapsed)
	}
	// The spike fires once: later reads are not delayed.
	start = time.Now()
	conn.Read(make([]byte, 4)) // EOF, immaterial
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("second read delayed %v; spike re-fired", elapsed)
	}
}

func TestFaultDialerFallbackProfile(t *testing.T) {
	addr := echoServer(t, []byte("x"))
	fd := NewFaultDialer(nil, 8)
	fd.SetFallback(FaultProfile{RefuseProb: 1})
	if _, err := fd.Dial(addr); !errors.Is(err, ErrInjectedRefusal) {
		t.Fatalf("fallback profile not applied: %v", err)
	}
	// A per-address profile overrides the fallback.
	fd.SetFault(addr, FaultProfile{})
	conn, err := fd.Dial(addr)
	if err != nil {
		t.Fatalf("per-address override not applied: %v", err)
	}
	conn.Close()
}

func TestFaultDialerWrapsInnerDialer(t *testing.T) {
	addr := echoServer(t, []byte("via inner"))
	inner := NewDialer(LinkProfile{Name: "lan"})
	fd := NewFaultDialer(inner, 9)
	conn, err := fd.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "via inner" {
		t.Errorf("read %q through inner dialer", got)
	}
}
