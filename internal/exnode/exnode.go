// Package exnode implements the exNode: an XML-encoded data structure that
// aggregates IBP capabilities, mapping the extents of a logical file onto
// allocations spread across network depots — the network analogue of a
// Unix inode (paper section 2.2). An exNode is the only thing a client
// needs to cache to retrieve a view set from the network: it names, for
// every extent of the payload, one or more replicas, each a (depot
// address, read capability, offset) triple.
package exnode

import (
	"encoding/xml"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"
)

// Replica locates one copy of an extent on a depot.
type Replica struct {
	// Depot is the depot's host:port.
	Depot string `xml:"depot,attr"`
	// ReadCap authorizes reads of the allocation holding this copy.
	ReadCap string `xml:"read,attr"`
	// ManageCap authorizes probing/extending the allocation lease. It may
	// be empty for read-only consumers.
	ManageCap string `xml:"manage,attr,omitempty"`
	// AllocOffset is where the extent's bytes start within the allocation.
	AllocOffset int64 `xml:"allocOffset,attr"`
	// ExpiresMs is the allocation's lease expiry in Unix milliseconds,
	// recorded at upload time and updated on every renewal. Zero means
	// unknown (exNodes published before lease tracking existed). It is
	// advisory — the depot's clock is authoritative — but it lets
	// maintenance tooling see renewal deadlines without probing every
	// depot on every scan.
	ExpiresMs int64 `xml:"expires,attr,omitempty"`
}

// Expiry returns the recorded lease expiry, or the zero time when the
// replica predates lease tracking.
func (r *Replica) Expiry() time.Time {
	if r.ExpiresMs == 0 {
		return time.Time{}
	}
	return time.UnixMilli(r.ExpiresMs)
}

// SetExpiry records a lease expiry (the zero time clears it).
func (r *Replica) SetExpiry(t time.Time) {
	if t.IsZero() {
		r.ExpiresMs = 0
		return
	}
	r.ExpiresMs = t.UnixMilli()
}

// Extent maps [Offset, Offset+Length) of the logical file to replicas.
type Extent struct {
	Offset int64 `xml:"offset,attr"`
	Length int64 `xml:"length,attr"`
	// Checksum is the integrity token ("crc32:%08x") of this extent's
	// payload bytes, written at upload time. Empty on exNodes produced
	// before checksums existed; consumers accept those unverified.
	Checksum string    `xml:"checksum,attr,omitempty"`
	Replicas []Replica `xml:"replica"`
}

// ChecksumOf returns the canonical integrity token for payload bytes, the
// format stored in Extent.Checksum and ExNode.Checksum.
func ChecksumOf(data []byte) string {
	return fmt.Sprintf("crc32:%08x", crc32.ChecksumIEEE(data))
}

// ErrChecksum reports payload bytes that do not match their recorded
// extent checksum.
var ErrChecksum = errors.New("exnode: payload checksum mismatch")

// VerifyData checks payload bytes against the extent checksum. Extents
// without a checksum accept anything (legacy exNodes). A mismatch means
// the depot returned corrupted bytes: callers must treat it like a failed
// replica load and fail over rather than use the data.
func (x *Extent) VerifyData(data []byte) error {
	if x.Checksum == "" {
		return nil
	}
	if got := ChecksumOf(data); got != x.Checksum {
		return fmt.Errorf("%w: extent at %d: payload %s, recorded %s", ErrChecksum, x.Offset, got, x.Checksum)
	}
	return nil
}

// ExNode aggregates the extents of one logical object.
type ExNode struct {
	XMLName xml.Name `xml:"exnode"`
	// Name is the logical object name (e.g. a view set key).
	Name string `xml:"name,attr"`
	// Length is the total logical size in bytes.
	Length int64 `xml:"length,attr"`
	// Checksum optionally carries an integrity token for the whole object
	// (the view set codec frames already embed a CRC; this is free-form).
	Checksum string   `xml:"checksum,attr,omitempty"`
	Extents  []Extent `xml:"extent"`
}

// Validate checks structural invariants: extents sorted by offset must
// exactly tile [0, Length) with no gaps or overlaps, and every extent
// needs at least one replica with a depot and read capability.
func (e *ExNode) Validate() error {
	if e.Length < 0 {
		return fmt.Errorf("exnode %q: negative length %d", e.Name, e.Length)
	}
	if e.Length == 0 {
		if len(e.Extents) != 0 {
			return fmt.Errorf("exnode %q: zero length with %d extents", e.Name, len(e.Extents))
		}
		return nil
	}
	ext := make([]Extent, len(e.Extents))
	copy(ext, e.Extents)
	sort.Slice(ext, func(i, j int) bool { return ext[i].Offset < ext[j].Offset })
	var pos int64
	for i, x := range ext {
		if x.Length <= 0 {
			return fmt.Errorf("exnode %q: extent %d has non-positive length %d", e.Name, i, x.Length)
		}
		if x.Offset != pos {
			return fmt.Errorf("exnode %q: extent at %d leaves gap/overlap (expected offset %d)", e.Name, x.Offset, pos)
		}
		if len(x.Replicas) == 0 {
			return fmt.Errorf("exnode %q: extent at %d has no replicas", e.Name, x.Offset)
		}
		for j, r := range x.Replicas {
			if r.Depot == "" || r.ReadCap == "" {
				return fmt.Errorf("exnode %q: extent at %d replica %d missing depot or read cap", e.Name, x.Offset, j)
			}
			if r.AllocOffset < 0 {
				return fmt.Errorf("exnode %q: extent at %d replica %d negative alloc offset", e.Name, x.Offset, j)
			}
		}
		pos += x.Length
	}
	if pos != e.Length {
		return fmt.Errorf("exnode %q: extents cover %d of %d bytes", e.Name, pos, e.Length)
	}
	return nil
}

// SortedExtents returns the extents in offset order without mutating the
// exNode.
func (e *ExNode) SortedExtents() []Extent {
	out := make([]Extent, len(e.Extents))
	copy(out, e.Extents)
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// ReplicationFactor returns the minimum number of replicas across extents
// (0 for an empty exNode).
func (e *ExNode) ReplicationFactor() int {
	if len(e.Extents) == 0 {
		return 0
	}
	minReps := len(e.Extents[0].Replicas)
	for _, x := range e.Extents[1:] {
		if len(x.Replicas) < minReps {
			minReps = len(x.Replicas)
		}
	}
	return minReps
}

// LeaseHorizon returns the earliest recorded replica lease expiry, or the
// zero time when no replica records one. A maintenance pass whose horizon
// is comfortably in the future can skip per-depot probing.
func (e *ExNode) LeaseHorizon() time.Time {
	var horizon time.Time
	for _, x := range e.Extents {
		for _, r := range x.Replicas {
			exp := r.Expiry()
			if exp.IsZero() {
				continue
			}
			if horizon.IsZero() || exp.Before(horizon) {
				horizon = exp
			}
		}
	}
	return horizon
}

// Clone returns a deep copy sharing no slices with the receiver, so one
// copy can be mutated (lease renewals, replica repair) while the other is
// read concurrently.
func (e *ExNode) Clone() *ExNode {
	out := *e
	out.Extents = make([]Extent, len(e.Extents))
	for i, x := range e.Extents {
		out.Extents[i] = x
		out.Extents[i].Replicas = append([]Replica(nil), x.Replicas...)
	}
	return &out
}

// Depots returns the distinct depot addresses referenced, sorted.
func (e *ExNode) Depots() []string {
	set := map[string]bool{}
	for _, x := range e.Extents {
		for _, r := range x.Replicas {
			set[r.Depot] = true
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Marshal encodes the exNode as indented XML with the standard header.
func (e *ExNode) Marshal() ([]byte, error) {
	body, err := xml.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("exnode: marshal: %w", err)
	}
	return append([]byte(xml.Header), body...), nil
}

// Unmarshal decodes and validates an exNode from XML.
func Unmarshal(data []byte) (*ExNode, error) {
	var e ExNode
	if err := xml.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("exnode: unmarshal: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Read decodes an exNode from a stream.
func Read(r io.Reader) (*ExNode, error) {
	data, err := io.ReadAll(io.LimitReader(r, 16<<20))
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}
