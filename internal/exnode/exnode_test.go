package exnode

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleExNode() *ExNode {
	return &ExNode{
		Name:   "r03c11",
		Length: 300,
		Extents: []Extent{
			{Offset: 0, Length: 100, Replicas: []Replica{
				{Depot: "ca1:6714", ReadCap: "aaa", ManageCap: "mmm"},
				{Depot: "ca2:6714", ReadCap: "bbb", AllocOffset: 64},
			}},
			{Offset: 100, Length: 100, Replicas: []Replica{
				{Depot: "ca2:6714", ReadCap: "ccc"},
			}},
			{Offset: 200, Length: 100, Replicas: []Replica{
				{Depot: "ca3:6714", ReadCap: "ddd"},
			}},
		},
	}
}

func TestValidateGood(t *testing.T) {
	if err := sampleExNode().Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &ExNode{Name: "empty", Length: 0}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty exnode: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ExNode)
	}{
		{"negative length", func(e *ExNode) { e.Length = -1 }},
		{"gap", func(e *ExNode) { e.Extents[1].Offset = 150 }},
		{"overlap", func(e *ExNode) { e.Extents[1].Offset = 50 }},
		{"short coverage", func(e *ExNode) { e.Length = 400 }},
		{"zero-length extent", func(e *ExNode) { e.Extents[0].Length = 0; e.Extents[0].Offset = 0 }},
		{"no replicas", func(e *ExNode) { e.Extents[2].Replicas = nil }},
		{"missing depot", func(e *ExNode) { e.Extents[0].Replicas[0].Depot = "" }},
		{"missing read cap", func(e *ExNode) { e.Extents[0].Replicas[1].ReadCap = "" }},
		{"negative alloc offset", func(e *ExNode) { e.Extents[0].Replicas[0].AllocOffset = -3 }},
		{"zero length with extents", func(e *ExNode) { e.Length = 0 }},
	}
	for _, tc := range cases {
		e := sampleExNode()
		tc.mutate(e)
		if err := e.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestValidateUnsortedExtentsOK(t *testing.T) {
	e := sampleExNode()
	e.Extents[0], e.Extents[2] = e.Extents[2], e.Extents[0]
	if err := e.Validate(); err != nil {
		t.Errorf("unsorted but tiling extents rejected: %v", err)
	}
	sorted := e.SortedExtents()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Offset < sorted[i-1].Offset {
			t.Fatal("SortedExtents not sorted")
		}
	}
	// Original slice order unchanged.
	if e.Extents[0].Offset != 200 {
		t.Error("SortedExtents mutated the exNode")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	e := sampleExNode()
	e.Checksum = "crc32:deadbeef"
	data, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("<exnode")) || !bytes.Contains(data, []byte("replica")) {
		t.Errorf("XML missing expected elements:\n%s", data)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != e.Name || got.Length != e.Length || got.Checksum != e.Checksum {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Extents) != 3 {
		t.Fatalf("extents = %d", len(got.Extents))
	}
	if got.Extents[0].Replicas[1].AllocOffset != 64 {
		t.Error("alloc offset lost in round trip")
	}
	if got.Extents[0].Replicas[0].ManageCap != "mmm" {
		t.Error("manage cap lost in round trip")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := Unmarshal([]byte("<not-xml")); err == nil {
		t.Error("garbage accepted")
	}
	// Well-formed XML that fails validation.
	bad := `<exnode name="x" length="10"></exnode>`
	if _, err := Unmarshal([]byte(bad)); err == nil {
		t.Error("uncovered exnode accepted")
	}
}

func TestReadStream(t *testing.T) {
	data, _ := sampleExNode().Marshal()
	got, err := Read(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "r03c11" {
		t.Errorf("Name = %q", got.Name)
	}
}

func TestDepotsAndReplicationFactor(t *testing.T) {
	e := sampleExNode()
	depots := e.Depots()
	want := []string{"ca1:6714", "ca2:6714", "ca3:6714"}
	if len(depots) != len(want) {
		t.Fatalf("depots = %v", depots)
	}
	for i := range want {
		if depots[i] != want[i] {
			t.Errorf("depots[%d] = %q", i, depots[i])
		}
	}
	if rf := e.ReplicationFactor(); rf != 1 {
		t.Errorf("replication factor = %d, want 1 (min across extents)", rf)
	}
	if rf := (&ExNode{}).ReplicationFactor(); rf != 0 {
		t.Errorf("empty replication factor = %d", rf)
	}
}

// Property: any exNode built as a clean striping (contiguous equal stripes,
// k replicas) validates and round-trips through XML.
func TestStripedExNodeQuick(t *testing.T) {
	f := func(stripesRaw, repsRaw, stripeLenRaw uint8) bool {
		stripes := int(stripesRaw%8) + 1
		reps := int(repsRaw%3) + 1
		stripeLen := int64(stripeLenRaw%100) + 1
		e := &ExNode{Name: "q", Length: int64(stripes) * stripeLen}
		for s := 0; s < stripes; s++ {
			x := Extent{Offset: int64(s) * stripeLen, Length: stripeLen}
			for r := 0; r < reps; r++ {
				x.Replicas = append(x.Replicas, Replica{
					Depot:   "d:1",
					ReadCap: "rc",
				})
			}
			e.Extents = append(e.Extents, x)
		}
		if e.Validate() != nil {
			return false
		}
		data, err := e.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return got.Length == e.Length && len(got.Extents) == stripes && got.ReplicationFactor() == reps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
