package exnode

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleExNode() *ExNode {
	return &ExNode{
		Name:   "r03c11",
		Length: 300,
		Extents: []Extent{
			{Offset: 0, Length: 100, Replicas: []Replica{
				{Depot: "ca1:6714", ReadCap: "aaa", ManageCap: "mmm"},
				{Depot: "ca2:6714", ReadCap: "bbb", AllocOffset: 64},
			}},
			{Offset: 100, Length: 100, Replicas: []Replica{
				{Depot: "ca2:6714", ReadCap: "ccc"},
			}},
			{Offset: 200, Length: 100, Replicas: []Replica{
				{Depot: "ca3:6714", ReadCap: "ddd"},
			}},
		},
	}
}

func TestValidateGood(t *testing.T) {
	if err := sampleExNode().Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &ExNode{Name: "empty", Length: 0}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty exnode: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ExNode)
	}{
		{"negative length", func(e *ExNode) { e.Length = -1 }},
		{"gap", func(e *ExNode) { e.Extents[1].Offset = 150 }},
		{"overlap", func(e *ExNode) { e.Extents[1].Offset = 50 }},
		{"short coverage", func(e *ExNode) { e.Length = 400 }},
		{"zero-length extent", func(e *ExNode) { e.Extents[0].Length = 0; e.Extents[0].Offset = 0 }},
		{"no replicas", func(e *ExNode) { e.Extents[2].Replicas = nil }},
		{"missing depot", func(e *ExNode) { e.Extents[0].Replicas[0].Depot = "" }},
		{"missing read cap", func(e *ExNode) { e.Extents[0].Replicas[1].ReadCap = "" }},
		{"negative alloc offset", func(e *ExNode) { e.Extents[0].Replicas[0].AllocOffset = -3 }},
		{"zero length with extents", func(e *ExNode) { e.Length = 0 }},
	}
	for _, tc := range cases {
		e := sampleExNode()
		tc.mutate(e)
		if err := e.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestValidateUnsortedExtentsOK(t *testing.T) {
	e := sampleExNode()
	e.Extents[0], e.Extents[2] = e.Extents[2], e.Extents[0]
	if err := e.Validate(); err != nil {
		t.Errorf("unsorted but tiling extents rejected: %v", err)
	}
	sorted := e.SortedExtents()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Offset < sorted[i-1].Offset {
			t.Fatal("SortedExtents not sorted")
		}
	}
	// Original slice order unchanged.
	if e.Extents[0].Offset != 200 {
		t.Error("SortedExtents mutated the exNode")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	e := sampleExNode()
	e.Checksum = "crc32:deadbeef"
	data, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("<exnode")) || !bytes.Contains(data, []byte("replica")) {
		t.Errorf("XML missing expected elements:\n%s", data)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != e.Name || got.Length != e.Length || got.Checksum != e.Checksum {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Extents) != 3 {
		t.Fatalf("extents = %d", len(got.Extents))
	}
	if got.Extents[0].Replicas[1].AllocOffset != 64 {
		t.Error("alloc offset lost in round trip")
	}
	if got.Extents[0].Replicas[0].ManageCap != "mmm" {
		t.Error("manage cap lost in round trip")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := Unmarshal([]byte("<not-xml")); err == nil {
		t.Error("garbage accepted")
	}
	// Well-formed XML that fails validation.
	bad := `<exnode name="x" length="10"></exnode>`
	if _, err := Unmarshal([]byte(bad)); err == nil {
		t.Error("uncovered exnode accepted")
	}
}

func TestReadStream(t *testing.T) {
	data, _ := sampleExNode().Marshal()
	got, err := Read(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "r03c11" {
		t.Errorf("Name = %q", got.Name)
	}
}

func TestDepotsAndReplicationFactor(t *testing.T) {
	e := sampleExNode()
	depots := e.Depots()
	want := []string{"ca1:6714", "ca2:6714", "ca3:6714"}
	if len(depots) != len(want) {
		t.Fatalf("depots = %v", depots)
	}
	for i := range want {
		if depots[i] != want[i] {
			t.Errorf("depots[%d] = %q", i, depots[i])
		}
	}
	if rf := e.ReplicationFactor(); rf != 1 {
		t.Errorf("replication factor = %d, want 1 (min across extents)", rf)
	}
	if rf := (&ExNode{}).ReplicationFactor(); rf != 0 {
		t.Errorf("empty replication factor = %d", rf)
	}
}

// Property: any exNode built as a clean striping (contiguous equal stripes,
// k replicas) validates and round-trips through XML.
func TestStripedExNodeQuick(t *testing.T) {
	f := func(stripesRaw, repsRaw, stripeLenRaw uint8) bool {
		stripes := int(stripesRaw%8) + 1
		reps := int(repsRaw%3) + 1
		stripeLen := int64(stripeLenRaw%100) + 1
		e := &ExNode{Name: "q", Length: int64(stripes) * stripeLen}
		for s := 0; s < stripes; s++ {
			x := Extent{Offset: int64(s) * stripeLen, Length: stripeLen}
			for r := 0; r < reps; r++ {
				x.Replicas = append(x.Replicas, Replica{
					Depot:   "d:1",
					ReadCap: "rc",
				})
			}
			e.Extents = append(e.Extents, x)
		}
		if e.Validate() != nil {
			return false
		}
		data, err := e.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return got.Length == e.Length && len(got.Extents) == stripes && got.ReplicationFactor() == reps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExpiryRoundTrip(t *testing.T) {
	e := sampleExNode()
	exp := time.Now().Add(30 * time.Minute).Truncate(time.Millisecond)
	e.Extents[0].Replicas[0].SetExpiry(exp)

	data, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Extents[0].Replicas[0].Expiry().Equal(exp) {
		t.Errorf("expiry = %v, want %v", got.Extents[0].Replicas[0].Expiry(), exp)
	}
	// Replicas without a recorded lease stay unknown after the round trip.
	if !got.Extents[0].Replicas[1].Expiry().IsZero() {
		t.Errorf("unset expiry round-tripped to %v", got.Extents[0].Replicas[1].Expiry())
	}
}

func TestExpiryBackwardCompat(t *testing.T) {
	// exNodes published before lease tracking existed have no expires
	// attribute; they must parse and report an unknown expiry.
	xml := `<exnode name="old" length="10">
  <extent offset="0" length="10">
    <replica depot="d:1" read="r" manage="m" allocOffset="0"></replica>
  </extent>
</exnode>`
	e, err := Unmarshal([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Extents[0].Replicas[0].Expiry().IsZero() {
		t.Errorf("legacy replica reports expiry %v", e.Extents[0].Replicas[0].Expiry())
	}
	// And marshalling a lease-free replica must not emit the attribute, so
	// older consumers see byte-identical structure.
	out, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "expires") {
		t.Errorf("marshal of legacy exNode emitted expires attribute:\n%s", out)
	}
}

func TestSetExpiryZeroClears(t *testing.T) {
	var r Replica
	r.SetExpiry(time.UnixMilli(1234))
	if r.ExpiresMs != 1234 {
		t.Fatalf("ExpiresMs = %d", r.ExpiresMs)
	}
	r.SetExpiry(time.Time{})
	if r.ExpiresMs != 0 || !r.Expiry().IsZero() {
		t.Errorf("zero time did not clear expiry: %d", r.ExpiresMs)
	}
}

func TestLeaseHorizon(t *testing.T) {
	e := sampleExNode()
	if !e.LeaseHorizon().IsZero() {
		t.Errorf("horizon with no recorded leases = %v", e.LeaseHorizon())
	}
	late := time.Now().Add(time.Hour)
	early := time.Now().Add(10 * time.Minute)
	e.Extents[0].Replicas[0].SetExpiry(late)
	e.Extents[2].Replicas[0].SetExpiry(early)
	if got := e.LeaseHorizon(); !got.Equal(time.UnixMilli(early.UnixMilli())) {
		t.Errorf("horizon = %v, want earliest %v", got, early)
	}
}

func TestClone(t *testing.T) {
	e := sampleExNode()
	c := e.Clone()
	c.Extents[0].Replicas[0].Depot = "mutated:1"
	c.Extents[1].Replicas = append(c.Extents[1].Replicas, Replica{Depot: "new:1", ReadCap: "x"})
	if e.Extents[0].Replicas[0].Depot != "ca1:6714" {
		t.Error("clone shares replica storage with original")
	}
	if len(e.Extents[1].Replicas) != 1 {
		t.Error("append to clone grew the original")
	}
	if err := e.Validate(); err != nil {
		t.Error(err)
	}
}
