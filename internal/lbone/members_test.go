package lbone

import (
	"context"
	"testing"
)

func TestMembersListsEveryKindLookupOnlyDepots(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := &Client{BaseURL: "http://" + addr}
	ctx := context.Background()

	recs := []DepotRecord{
		{Addr: "depot1:6714", Kind: KindDepot, Capacity: 500, Free: 400, MetricsAddr: "depot1:9001"},
		{Addr: "depot2:6714", Capacity: 500, Free: 400}, // bare records stay depots
		{Addr: "edge1:6730", Kind: KindEdge, MetricsAddr: "edge1:9002"},
		{Addr: "steward1", Kind: KindSteward, MetricsAddr: "steward1:9003"},
		{Addr: "agent1:8080", Kind: KindAgent, MetricsAddr: "agent1:9004"},
	}
	for _, rec := range recs {
		if err := cl.Register(ctx, rec); err != nil {
			t.Fatalf("register %s: %v", rec.Addr, err)
		}
	}

	// /members returns the whole fleet, sorted, with kinds and metrics
	// addresses intact.
	members, err := cl.Members(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != len(recs) {
		t.Fatalf("members = %d records, want %d", len(members), len(recs))
	}
	byAddr := make(map[string]DepotRecord, len(members))
	for i, m := range members {
		if i > 0 && members[i-1].Addr > m.Addr {
			t.Fatalf("members not sorted: %q before %q", members[i-1].Addr, m.Addr)
		}
		byAddr[m.Addr] = m
	}
	if m := byAddr["edge1:6730"]; m.Kind != KindEdge || m.MetricsAddr != "edge1:9002" {
		t.Fatalf("edge record = %+v", m)
	}
	if m := byAddr["depot2:6714"]; !m.IsDepot() {
		t.Fatalf("bare record lost depot-ness: %+v", m)
	}

	// Lookup hands out only storage depots: an edge or steward must never
	// be selected as an allocation target.
	depots, err := cl.Lookup(ctx, 0, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(depots) != 2 {
		t.Fatalf("lookup = %+v, want the two depots only", depots)
	}
	for _, d := range depots {
		if !d.IsDepot() {
			t.Fatalf("lookup returned non-depot %+v", d)
		}
	}
}

func TestRegisterRejectsUnknownKind(t *testing.T) {
	s := NewServer()
	if err := s.Register(DepotRecord{Addr: "x:1", Kind: "router"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
