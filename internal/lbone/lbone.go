// Package lbone implements the Logistical Backbone: the resource directory
// that lets applications "find the closest set of IBP depots that can
// satisfy the needs of an application" (paper section 2.2). Depots register
// themselves with simulated network coordinates and capacity; clients query
// for the nearest live depots with enough free space. The paper's system
// uses it to pick the network caches near the client.
//
// The service speaks JSON over HTTP (net/http), in contrast to IBP's raw
// TCP protocol — mirroring how the real L-Bone was a higher-level service
// above the depot fabric.
package lbone

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lonviz/internal/obs"
)

// Member kinds. Depot lookups only ever return depots; the other kinds
// exist so the fleet scraper can discover every process of a deployment
// through the one directory that already tracks liveness.
const (
	KindDepot   = "depot"
	KindEdge    = "edge"
	KindSteward = "steward"
	KindAgent   = "agent"
)

// DepotRecord describes one registered directory member. Despite the
// historical name it covers non-depot members too (Kind below); depots
// remain the only kind Lookup returns.
type DepotRecord struct {
	// Addr is the member's service endpoint (host:port) — the IBP address
	// for depots, the cache address for edges.
	Addr string `json:"addr"`
	// Kind classifies the member: "" or "depot" (storage, returned by
	// lookups), "edge", "steward", "agent" (discovery-only).
	Kind string `json:"kind,omitempty"`
	// MetricsAddr is the member's observability endpoint (-metrics-addr),
	// the address a fleet scraper pulls /metrics from. Optional.
	MetricsAddr string `json:"metricsAddr,omitempty"`
	// X, Y are simulated network coordinates; distance in this plane
	// stands in for network proximity.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Capacity and Free report storage in bytes (zero for non-depots).
	Capacity int64 `json:"capacity"`
	Free     int64 `json:"free"`
	// LastSeen is set by the server on registration.
	LastSeen time.Time `json:"lastSeen,omitempty"`
}

// IsDepot reports whether the record is a storage depot (the only kind
// lookups return).
func (r DepotRecord) IsDepot() bool {
	return r.Kind == "" || r.Kind == KindDepot
}

// Server is the directory. Depots re-register periodically (heartbeat);
// records older than TTL are considered dead and filtered from lookups.
type Server struct {
	// TTL is the registration freshness window (default 30s).
	TTL time.Duration
	// Clock supplies time (for tests); nil means time.Now.
	Clock func() time.Time
	// Tracer receives the server-side request spans opened for traced
	// requests (those carrying an X-Lonviz-Trace header); nil records into
	// obs.DefaultTracer().
	Tracer *obs.Tracer

	mu      sync.Mutex
	records map[string]DepotRecord
	httpSrv *http.Server
}

// NewServer creates an empty directory.
func NewServer() *Server {
	return &Server{TTL: 30 * time.Second, records: make(map[string]DepotRecord)}
}

func (s *Server) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// Register upserts a member record (also the heartbeat path).
func (s *Server) Register(rec DepotRecord) error {
	if rec.Addr == "" {
		return fmt.Errorf("lbone: record missing addr")
	}
	switch rec.Kind {
	case "", KindDepot, KindEdge, KindSteward, KindAgent:
	default:
		return fmt.Errorf("lbone: unknown member kind %q", rec.Kind)
	}
	if rec.Capacity < 0 || rec.Free < 0 || rec.Free > rec.Capacity {
		return fmt.Errorf("lbone: implausible capacity %d/%d", rec.Free, rec.Capacity)
	}
	rec.LastSeen = s.now()
	s.mu.Lock()
	s.records[rec.Addr] = rec
	s.mu.Unlock()
	return nil
}

// Sweep drops every record whose heartbeat is older than TTL and returns
// how many were dropped. Lookup sweeps implicitly; a directory serving a
// maintenance service (the steward's repair path) can also sweep on a
// timer so dead depots age out even between queries.
func (s *Server) Sweep() int {
	cutoff := s.now().Add(-s.TTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for addr, rec := range s.records {
		if rec.LastSeen.Before(cutoff) {
			delete(s.records, addr)
			dropped++
		}
	}
	return dropped
}

// Lookup returns up to n live depots with at least minFree bytes free,
// sorted by distance from (x, y). n <= 0 means all.
func (s *Server) Lookup(x, y float64, n int, minFree int64) []DepotRecord {
	return s.LookupExcluding(x, y, n, minFree, nil)
}

// LookupExcluding is Lookup with an exclusion list: depots whose address
// appears in exclude are never returned. Repair tooling uses it to ask
// for fresh depots that do not already hold a replica of the extent being
// re-replicated.
func (s *Server) LookupExcluding(x, y float64, n int, minFree int64, exclude []string) []DepotRecord {
	excluded := make(map[string]bool, len(exclude))
	for _, addr := range exclude {
		excluded[addr] = true
	}
	cutoff := s.now().Add(-s.TTL)
	s.mu.Lock()
	out := make([]DepotRecord, 0, len(s.records))
	for addr, rec := range s.records {
		if rec.LastSeen.Before(cutoff) {
			delete(s.records, addr)
			continue
		}
		if rec.IsDepot() && rec.Free >= minFree && !excluded[addr] {
			out = append(out, rec)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		di := math.Hypot(out[i].X-x, out[i].Y-y)
		dj := math.Hypot(out[j].X-x, out[j].Y-y)
		if di != dj {
			return di < dj
		}
		return out[i].Addr < out[j].Addr
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Members returns every live member record of any kind, sorted by
// address — the fleet scraper's discovery sweep. Stale records are
// dropped on the way through, like Lookup does.
func (s *Server) Members() []DepotRecord {
	cutoff := s.now().Add(-s.TTL)
	s.mu.Lock()
	out := make([]DepotRecord, 0, len(s.records))
	for addr, rec := range s.records {
		if rec.LastSeen.Before(cutoff) {
			delete(s.records, addr)
			continue
		}
		out = append(out, rec)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// ServeHTTP implements http.Handler with three endpoints:
// POST /register (DepotRecord JSON body), GET /lookup, and GET /members
// (every live member of any kind). Requests carrying an X-Lonviz-Trace
// header get a server-side span parented under the calling client's span.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if tc, ok := obs.ExtractHTTP(r.Header); ok {
		tracer := s.Tracer
		if tracer == nil {
			tracer = obs.DefaultTracer()
		}
		_, span := tracer.StartSpan(obs.ContextWithRemote(r.Context(), tc), obs.SpanLBoneServe)
		span.SetAttr("op", strings.TrimPrefix(r.URL.Path, "/"))
		defer span.Finish()
	}
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/register":
		var rec DepotRecord
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&rec); err != nil {
			http.Error(w, "bad record: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Register(rec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case r.Method == http.MethodGet && r.URL.Path == "/lookup":
		q := r.URL.Query()
		x, _ := strconv.ParseFloat(q.Get("x"), 64)
		y, _ := strconv.ParseFloat(q.Get("y"), 64)
		n, _ := strconv.Atoi(q.Get("n"))
		minFree, _ := strconv.ParseInt(q.Get("minfree"), 10, 64)
		var exclude []string
		if ex := q.Get("exclude"); ex != "" {
			exclude = strings.Split(ex, ",")
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.LookupExcluding(x, y, n, minFree, exclude)); err != nil {
			// Too late to change the status; the client's decoder will fail.
			return
		}
	case r.Method == http.MethodGet && r.URL.Path == "/members":
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Members()); err != nil {
			return
		}
	default:
		http.NotFound(w, r)
	}
}

// ListenAndServe starts the directory on addr (":0" for ephemeral) and
// returns the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s}
	go s.httpSrv.Serve(l)
	return l.Addr().String(), nil
}

// Close stops the HTTP server if started with ListenAndServe.
func (s *Server) Close() error {
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

// Client talks to a directory server over HTTP.
type Client struct {
	// BaseURL is "http://host:port".
	BaseURL string
	// HTTP is the client to use; nil means http.DefaultClient.
	HTTP *http.Client
	// Obs receives per-operation latency histograms and error counters
	// (lbone.op.*); nil records into obs.Default().
	Obs *obs.Registry
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// observeOp records one directory operation's latency and outcome.
func (c *Client) observeOp(op string, start time.Time, err error) {
	reg := c.Obs
	if reg == nil {
		reg = obs.Default()
	}
	reg.Histogram(obs.Label(obs.MLBoneOpMs, "op", op), obs.LatencyBucketsMs...).
		Observe(float64(time.Since(start)) / 1e6)
	if err != nil {
		reg.Counter(obs.Label(obs.MLBoneOpErrors, "op", op)).Inc()
	}
}

// Register registers (or heartbeats) a depot record. The context's trace
// context (if any) rides the X-Lonviz-Trace header.
func (c *Client) Register(ctx context.Context, rec DepotRecord) (err error) {
	defer func(start time.Time) { c.observeOp("register", start, err) }(time.Now())
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectHTTP(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("lbone: register: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("lbone: register: status %s", resp.Status)
	}
	return nil
}

// Lookup queries the nearest live depots.
func (c *Client) Lookup(ctx context.Context, x, y float64, n int, minFree int64) ([]DepotRecord, error) {
	return c.LookupExcluding(ctx, x, y, n, minFree, nil)
}

// LookupExcluding queries the nearest live depots whose address is not in
// exclude (server-side filtering, so n counts usable results).
func (c *Client) LookupExcluding(ctx context.Context, x, y float64, n int, minFree int64, exclude []string) (recs []DepotRecord, err error) {
	defer func(start time.Time) { c.observeOp("lookup", start, err) }(time.Now())
	u := fmt.Sprintf("%s/lookup?x=%g&y=%g&n=%d&minfree=%d", c.BaseURL, x, y, n, minFree)
	if len(exclude) > 0 {
		u += "&exclude=" + url.QueryEscape(strings.Join(exclude, ","))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	obs.InjectHTTP(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("lbone: lookup: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("lbone: lookup: status %s", resp.Status)
	}
	var out []DepotRecord
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("lbone: lookup decode: %w", err)
	}
	return out, nil
}

// Members fetches every live directory member of any kind — the fleet
// scraper's discovery path.
func (c *Client) Members(ctx context.Context) (recs []DepotRecord, err error) {
	defer func(start time.Time) { c.observeOp("members", start, err) }(time.Now())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/members", nil)
	if err != nil {
		return nil, err
	}
	obs.InjectHTTP(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("lbone: members: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("lbone: members: status %s", resp.Status)
	}
	var out []DepotRecord
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("lbone: members decode: %w", err)
	}
	return out, nil
}

// Heartbeat runs a registration loop every interval until stop is closed.
// It is the depot-side liveness mechanism.
func (c *Client) Heartbeat(rec func() DepotRecord, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if err := c.Register(context.Background(), rec()); err != nil {
			// Best effort: the directory may be briefly unreachable.
			_ = err
		}
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}
