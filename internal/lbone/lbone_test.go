package lbone

import (
	"context"
	"sync"
	"testing"
	"time"
)

type stubClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *stubClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stubClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestRegisterValidation(t *testing.T) {
	s := NewServer()
	if err := s.Register(DepotRecord{}); err == nil {
		t.Error("empty addr accepted")
	}
	if err := s.Register(DepotRecord{Addr: "a:1", Capacity: 10, Free: 20}); err == nil {
		t.Error("free > capacity accepted")
	}
	if err := s.Register(DepotRecord{Addr: "a:1", Capacity: 100, Free: 50}); err != nil {
		t.Error(err)
	}
}

func TestLookupSortsByDistance(t *testing.T) {
	s := NewServer()
	s.Register(DepotRecord{Addr: "far:1", X: 100, Y: 100, Capacity: 1000, Free: 1000})
	s.Register(DepotRecord{Addr: "near:1", X: 1, Y: 1, Capacity: 1000, Free: 1000})
	s.Register(DepotRecord{Addr: "mid:1", X: 10, Y: 10, Capacity: 1000, Free: 1000})
	got := s.Lookup(0, 0, 0, 0)
	if len(got) != 3 || got[0].Addr != "near:1" || got[1].Addr != "mid:1" || got[2].Addr != "far:1" {
		t.Errorf("lookup order = %+v", got)
	}
	// Limit n.
	if got := s.Lookup(0, 0, 2, 0); len(got) != 2 || got[0].Addr != "near:1" {
		t.Errorf("limited lookup = %+v", got)
	}
}

func TestLookupFiltersCapacity(t *testing.T) {
	s := NewServer()
	s.Register(DepotRecord{Addr: "small:1", Capacity: 100, Free: 10})
	s.Register(DepotRecord{Addr: "big:1", Capacity: 1000, Free: 900})
	got := s.Lookup(0, 0, 0, 500)
	if len(got) != 1 || got[0].Addr != "big:1" {
		t.Errorf("capacity filter = %+v", got)
	}
}

func TestLookupExpiresStale(t *testing.T) {
	clk := &stubClock{now: time.Unix(0, 0)}
	s := NewServer()
	s.Clock = clk.Now
	s.TTL = 10 * time.Second
	s.Register(DepotRecord{Addr: "old:1", Capacity: 10, Free: 10})
	clk.Advance(5 * time.Second)
	s.Register(DepotRecord{Addr: "fresh:1", Capacity: 10, Free: 10})
	clk.Advance(7 * time.Second) // old is now 12s stale, fresh 7s
	got := s.Lookup(0, 0, 0, 0)
	if len(got) != 1 || got[0].Addr != "fresh:1" {
		t.Errorf("stale filtering = %+v", got)
	}
	// Re-registration revives.
	s.Register(DepotRecord{Addr: "old:1", Capacity: 10, Free: 10})
	if got := s.Lookup(0, 0, 0, 0); len(got) != 2 {
		t.Errorf("after heartbeat = %+v", got)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := &Client{BaseURL: "http://" + addr}
	if err := cl.Register(context.Background(), DepotRecord{Addr: "depot1:6714", X: 3, Y: 4, Capacity: 500, Free: 400}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Register(context.Background(), DepotRecord{Addr: "depot2:6714", X: 30, Y: 40, Capacity: 500, Free: 400}); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Lookup(context.Background(), 0, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Addr != "depot1:6714" {
		t.Errorf("lookup = %+v", got)
	}
	if got[0].LastSeen.IsZero() {
		t.Error("LastSeen not stamped by server")
	}
}

func TestHTTPRejectsBadRequests(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := &Client{BaseURL: "http://" + addr}
	if err := cl.Register(context.Background(), DepotRecord{}); err == nil {
		t.Error("register without addr accepted over HTTP")
	}
	// Unknown path 404s; client Lookup reports non-200.
	badClient := &Client{BaseURL: "http://" + addr + "/nope"}
	if _, err := badClient.Lookup(context.Background(), 0, 0, 1, 0); err == nil {
		t.Error("lookup against bad path succeeded")
	}
}

func TestHeartbeatLoop(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := &Client{BaseURL: "http://" + addr}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cl.Heartbeat(func() DepotRecord {
			return DepotRecord{Addr: "hb:1", Capacity: 10, Free: 5}
		}, 10*time.Millisecond, stop)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := s.Lookup(0, 0, 0, 0); len(got) == 1 && got[0].Addr == "hb:1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
}

func TestSweepDropsStaleRecords(t *testing.T) {
	clk := &stubClock{now: time.Unix(0, 0)}
	s := NewServer()
	s.Clock = clk.Now
	s.TTL = 10 * time.Second
	s.Register(DepotRecord{Addr: "a:1", Capacity: 10, Free: 10})
	clk.Advance(6 * time.Second)
	s.Register(DepotRecord{Addr: "b:1", Capacity: 10, Free: 10})

	if n := s.Sweep(); n != 0 {
		t.Errorf("premature sweep dropped %d", n)
	}
	clk.Advance(6 * time.Second) // a is 12s stale, b 6s
	if n := s.Sweep(); n != 1 {
		t.Errorf("sweep dropped %d, want 1", n)
	}
	if got := s.Lookup(0, 0, 0, 0); len(got) != 1 || got[0].Addr != "b:1" {
		t.Errorf("after sweep = %+v", got)
	}
	// Idempotent: nothing left to drop.
	if n := s.Sweep(); n != 0 {
		t.Errorf("second sweep dropped %d", n)
	}
}

func TestLookupExcluding(t *testing.T) {
	s := NewServer()
	for i, a := range []string{"a:1", "b:1", "c:1"} {
		if err := s.Register(DepotRecord{Addr: a, X: float64(i), Capacity: 10, Free: 10}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.LookupExcluding(0, 0, 0, 0, []string{"a:1", "c:1"})
	if len(got) != 1 || got[0].Addr != "b:1" {
		t.Errorf("exclusion = %+v", got)
	}
	// n counts usable results: excluding the nearest still yields n others.
	got = s.LookupExcluding(0, 0, 2, 0, []string{"a:1"})
	if len(got) != 2 || got[0].Addr != "b:1" || got[1].Addr != "c:1" {
		t.Errorf("n after exclusion = %+v", got)
	}
}

func TestHTTPLookupExcluding(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := &Client{BaseURL: "http://" + addr}
	for i, a := range []string{"a:1", "b:1", "c:1"} {
		if err := cl.Register(context.Background(), DepotRecord{Addr: a, X: float64(i), Capacity: 10, Free: 10}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.LookupExcluding(context.Background(), 0, 0, 2, 0, []string{"a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Addr != "b:1" || got[1].Addr != "c:1" {
		t.Errorf("HTTP exclusion = %+v", got)
	}
	// No exclusions behaves like plain Lookup.
	got, err = cl.LookupExcluding(context.Background(), 0, 0, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Addr != "a:1" {
		t.Errorf("empty exclusion = %+v", got)
	}
}
