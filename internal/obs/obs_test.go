package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterMonotonic(t *testing.T) {
	c := NewCounter()
	c.Add(5)
	c.Add(-3) // ignored: counters are monotonic
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestNilMetricsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must record nothing")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("nil histogram quantile = %g, want 0", q)
	}
	var r *Registry
	r.Counter("x").Inc() // must not panic
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	// Bucket bounds are inclusive upper edges: 0.5 and 1 land in <=1,
	// 2 in <=10, 50 in <=100, 1000 overflows.
	want := map[string]int64{"1": 2, "10": 1, "100": 1, "+Inf": 1}
	for k, n := range want {
		if s.Buckets[k] != n {
			t.Fatalf("bucket %q = %d, want %d (all: %v)", k, s.Buckets[k], n, s.Buckets)
		}
	}
	if s.Min != 0.5 || s.Max != 1000 {
		t.Fatalf("min/max = %g/%g, want 0.5/1000", s.Min, s.Max)
	}
	if got, want := s.Sum, 1053.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 100 observations uniform over (0,100] with bucket edges every 10:
	// interpolated quantiles should land within one bucket width of truth.
	h := NewHistogram(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 10},
		{0.95, 95, 10},
		{0.99, 99, 10},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("q%g = %g, want %g +/- %g", tc.q*100, got, tc.want, tc.tol)
		}
		if got <= 0 || got > 100 {
			t.Fatalf("q%g = %g out of observed range", tc.q*100, got)
		}
	}
	// Quantiles must be monotone in q.
	if !(h.Quantile(0.5) <= h.Quantile(0.95) && h.Quantile(0.95) <= h.Quantile(0.99)) {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(50)
	h.Observe(70)
	// Everything overflows: quantiles clamp at the max observed value.
	if got := h.Quantile(0.99); got != 70 {
		t.Fatalf("overflow q99 = %g, want 70", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.Buckets != nil {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBucketsMs...)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%1000) + 0.25)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	var bucketSum int64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if s.Min != 0.25 || s.Max != 999.25 {
		t.Fatalf("min/max = %g/%g, want 0.25/999.25", s.Min, s.Max)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c2 := r.Counter("a.b")
	if c1 != c2 {
		t.Fatal("same name must return same counter")
	}
	h1 := r.Histogram("h", 1, 2)
	h2 := r.Histogram("h", 5, 6) // later bounds ignored
	if h1 != h2 {
		t.Fatal("same name must return same histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type clash must panic")
		}
	}()
	r.Gauge("a.b")
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h", 1, 10).Observe(5)
	r.RegisterSnapshot("comp", func() map[string]float64 {
		return map[string]float64{"hits": 4, "rate": 0.5}
	})
	snap := r.Snapshot()
	if snap["c"] != int64(3) || snap["g"] != int64(-2) {
		t.Fatalf("scalar snapshot wrong: %v", snap)
	}
	hs, ok := snap["h"].(HistogramSnapshot)
	if !ok || hs.Count != 1 {
		t.Fatalf("histogram snapshot wrong: %#v", snap["h"])
	}
	if snap["comp.hits"] != 4.0 || snap["comp.rate"] != 0.5 {
		t.Fatalf("snapshot closure not inlined: %v", snap)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "c" || names[1] != "g" || names[2] != "h" {
		t.Fatalf("names = %v", names)
	}
}

func TestLabel(t *testing.T) {
	got := Label("ibp.op.ms", "op", "LOAD", "depot", "d1:80")
	want := "ibp.op.ms{depot=d1:80,op=LOAD}"
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
	if Label("x") != "x" {
		t.Fatal("no labels must leave name unchanged")
	}
	if BaseName(got) != "ibp.op.ms" || BaseName("plain") != "plain" {
		t.Fatal("BaseName must strip the label block")
	}
}
