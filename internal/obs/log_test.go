package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestLoggerLevelsAndRing(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, 4)
	ctx := context.Background()
	l.Debug(ctx, "dropped.event") // below default info level
	l.Info(ctx, "kept.one", "k", "v")
	l.Warn(ctx, "kept.two")
	l.Error(ctx, "kept.three")

	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("ring has %d events, want 3: %+v", len(evs), evs)
	}
	if evs[0].Name != "kept.one" || evs[0].Level != "info" {
		t.Errorf("first event = %+v", evs[0])
	}
	if len(evs[0].Fields) != 1 || evs[0].Fields[0] != (Field{Key: "k", Value: "v"}) {
		t.Errorf("fields = %+v", evs[0].Fields)
	}
	// Seq is monotonic even across the dropped event.
	if evs[1].Seq <= evs[0].Seq || evs[2].Seq <= evs[1].Seq {
		t.Errorf("seq not monotonic: %d %d %d", evs[0].Seq, evs[1].Seq, evs[2].Seq)
	}
	if !strings.Contains(buf.String(), "event=kept.one") {
		t.Errorf("kv line output missing event: %q", buf.String())
	}

	l.SetLevel(LevelDebug)
	l.Debug(ctx, "now.kept")
	if evs := l.Events(); evs[len(evs)-1].Name != "now.kept" {
		t.Error("debug event dropped after SetLevel(debug)")
	}
}

func TestLoggerRingEviction(t *testing.T) {
	l := NewLogger(nil, 3)
	for i := 0; i < 5; i++ {
		l.Info(context.Background(), "ev", "i", string(rune('a'+i)))
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("ring = %d events, want 3", len(evs))
	}
	// Oldest first, holding the 3 newest (c, d, e).
	if evs[0].Fields[0].Value != "c" || evs[2].Fields[0].Value != "e" {
		t.Errorf("ring order = %+v", evs)
	}
}

func TestLoggerTraceStamping(t *testing.T) {
	l := NewLogger(nil, 8)
	tr := NewTracer(8)
	ctx, span := tr.StartSpan(context.Background(), "x")
	l.Info(ctx, "traced.event")
	l.Info(context.Background(), "untraced.event")
	span.Finish()

	evs := l.Events()
	if evs[0].TraceID != span.TraceID || evs[0].SpanID != span.ID {
		t.Errorf("traced event = %x/%x, want %x/%x", evs[0].TraceID, evs[0].SpanID, span.TraceID, span.ID)
	}
	if evs[1].TraceID != 0 || evs[1].SpanID != 0 {
		t.Errorf("untraced event stamped %x/%x", evs[1].TraceID, evs[1].SpanID)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, 8)
	l.SetFormat(FormatJSON)
	l.Info(context.Background(), "json.event", "key", "value with spaces")
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &ev); err != nil {
		t.Fatalf("json line does not parse: %v (%q)", err, buf.String())
	}
	if ev.Name != "json.event" || ev.Fields[0].Value != "value with spaces" {
		t.Errorf("decoded event = %+v", ev)
	}
}

func TestLoggerKVQuoting(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, 8)
	l.Info(context.Background(), "q.event", "msg", "has spaces", "plain", "bare")
	line := buf.String()
	if !strings.Contains(line, `msg="has spaces"`) {
		t.Errorf("kv line did not quote spaced value: %q", line)
	}
	if !strings.Contains(line, "plain=bare") {
		t.Errorf("kv line quoted a bare value: %q", line)
	}
}

func TestNilLoggerInert(t *testing.T) {
	var l *Logger
	l.Info(context.Background(), "nothing") // must not panic
	l.Error(context.Background(), "nothing")
	if evs := l.Events(); evs != nil {
		t.Errorf("nil logger events = %v", evs)
	}
}

func TestLoggerHandlerTraceFilter(t *testing.T) {
	l := NewLogger(nil, 8)
	tr := NewTracer(8)
	ctx, span := tr.StartSpan(context.Background(), "x")
	l.Info(ctx, "in.trace")
	l.Info(context.Background(), "outside")
	span.Finish()

	req := httptest.NewRequest("GET", "/debug/events?trace="+
		strings.ToLower(strings.TrimLeft(traceHex(span.TraceID), "0")), nil)
	rr := httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, req)
	var evs []Event
	if err := json.Unmarshal(rr.Body.Bytes(), &evs); err != nil {
		t.Fatalf("handler body: %v", err)
	}
	if len(evs) != 1 || evs[0].Name != "in.trace" {
		t.Errorf("filtered events = %+v, want just in.trace", evs)
	}

	rr = httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/events?trace=zzz", nil))
	if rr.Code != 400 {
		t.Errorf("bad trace filter -> HTTP %d, want 400", rr.Code)
	}
}

func traceHex(id uint64) string {
	const digits = "0123456789abcdef"
	buf := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		buf[i] = digits[id&0xf]
		id >>= 4
	}
	return string(buf)
}

func TestConfigureDefaultLogger(t *testing.T) {
	if err := ConfigureDefaultLogger("warn", "json"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ConfigureDefaultLogger("info", "kv") }()
	if lv := DefaultLogger().Level(); lv != LevelWarn {
		t.Errorf("default level = %v, want warn", lv)
	}
	if err := ConfigureDefaultLogger("nope", "kv"); err == nil {
		t.Error("bad level accepted")
	}
	if err := ConfigureDefaultLogger("info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}
