package slo

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lonviz/internal/obs"
)

// Alert states.
const (
	// StatePending: the rule is breached but has not held For yet.
	StatePending = "pending"
	// StateFiring: the breach held For; subscribers were notified.
	StateFiring = "firing"
	// StateResolved: a previously firing alert evaluated clean for
	// ClearAfter; retained for /debug/alerts history.
	StateResolved = "resolved"
)

// Alert is one rule instance's externally visible state, as served at
// /debug/alerts and delivered to subscribers on firing/resolved
// transitions.
type Alert struct {
	// Rule is the rule name.
	Rule string `json:"rule"`
	// Severity is the rule's severity ("warn" | "critical").
	Severity string `json:"severity"`
	// Scope is the rule's scope ("node" | "fleet") — subscribers use it
	// to tell a local breach from a cluster-wide one.
	Scope string `json:"scope,omitempty"`
	// Instance is the labeled metric name the alert tracks
	// ("ibp.depot.ms{depot=127.0.0.1:6714}"), empty for aggregate rules.
	Instance string `json:"instance,omitempty"`
	// Labels are the instance's parsed labels (e.g. depot=host:port) —
	// the steward keys targeted audits off Labels["depot"].
	Labels map[string]string `json:"labels,omitempty"`
	// State is pending | firing | resolved.
	State string `json:"state"`
	// Since is when the alert entered its current state.
	Since time.Time `json:"since"`
	// Value is the last evaluated value (quantile ms, ratio, or fast
	// burn multiple, by rule kind); Threshold is the rule's limit.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Reason is the human-readable breach (or recovery) description.
	Reason string `json:"reason"`
}

// EngineConfig configures NewEngine.
type EngineConfig struct {
	// DB is the history the rules evaluate against.
	DB *obs.TSDB
	// Rules to evaluate; empty means DefaultRules().
	Rules []Rule
	// Registry receives the slo.* engine metrics; nil means obs.Default().
	Registry *obs.Registry
	// Tracer records the slo.evaluate span on passes with transitions;
	// nil means obs.DefaultTracer().
	Tracer *obs.Tracer
	// Logger receives slo.alert transition events; nil means
	// obs.DefaultLogger().
	Logger *obs.Logger
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// alertState is the engine's internal per-(rule, instance) state machine:
// ok -> pending (breach seen) -> firing (breach held For) -> ok again
// only after ClearAfter of continuous clean evaluations.
type alertState struct {
	rule     *Rule
	instance string
	labels   map[string]string
	state    string // "ok" | StatePending | StateFiring
	since    time.Time
	breachAt time.Time // start of the current continuous breach
	cleanAt  time.Time // start of the current continuous clean run while firing
	value    float64
	reason   string
}

// Engine evaluates SLO rules against a TSDB. All methods are safe for
// concurrent use and on a nil receiver (the -metrics-addr-off path holds
// a nil engine).
type Engine struct {
	db     *obs.TSDB
	rules  []Rule
	reg    *obs.Registry
	tracer *obs.Tracer
	logger *obs.Logger
	clock  func() time.Time

	mu       sync.Mutex
	states   map[string]*alertState
	resolved []Alert // bounded history of resolutions, newest last
	subs     []func(Alert)
}

// NewEngine builds an engine. It starts no goroutines: drive it by
// wiring Evaluate as the TSDB's OnSample hook (slo.Start does).
func NewEngine(cfg EngineConfig) *Engine {
	rules := cfg.Rules
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.DefaultLogger()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Engine{
		db:     cfg.DB,
		rules:  rules,
		reg:    reg,
		tracer: tracer,
		logger: logger,
		clock:  clock,
		states: make(map[string]*alertState),
	}
}

// Rules returns the rule set the engine evaluates.
func (e *Engine) Rules() []Rule {
	if e == nil {
		return nil
	}
	return e.rules
}

// Subscribe registers fn to be called (synchronously, from the
// evaluation pass) on every transition to firing and to resolved. The
// steward's alert-triggered repair plugs in here; callbacks must not
// block.
func (e *Engine) Subscribe(fn func(Alert)) {
	if e == nil || fn == nil {
		return
	}
	e.mu.Lock()
	e.subs = append(e.subs, fn)
	e.mu.Unlock()
}

// parseLabels extracts the {k=v,...} block of a labeled metric name.
func parseLabels(name string) map[string]string {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return nil
	}
	out := make(map[string]string)
	for _, kv := range strings.Split(name[i+1:len(name)-1], ",") {
		if k, v, ok := strings.Cut(kv, "="); ok {
			out[k] = v
		}
	}
	return out
}

// verdict is one rule instance's evaluation outcome.
type verdict struct {
	instance string
	valid    bool // enough data to have an opinion
	breach   bool
	value    float64
	reason   string
}

// Evaluate runs one pass over every rule. It is a no-op on a nil engine
// and allocates nothing in that case (the off path's AllocsPerRun guard
// covers it).
func (e *Engine) Evaluate() {
	if e == nil {
		return
	}
	now := e.clock()

	var verdicts []struct {
		rule *Rule
		v    verdict
	}
	for i := range e.rules {
		r := &e.rules[i]
		for _, v := range e.evaluateRule(r) {
			verdicts = append(verdicts, struct {
				rule *Rule
				v    verdict
			}{r, v})
		}
	}

	e.mu.Lock()
	var transitions []Alert
	seen := make(map[string]bool, len(verdicts))
	for _, rv := range verdicts {
		key := rv.rule.Name + "|" + rv.v.instance
		seen[key] = true
		st := e.states[key]
		if st == nil {
			st = &alertState{
				rule:     rv.rule,
				instance: rv.v.instance,
				labels:   parseLabels(rv.v.instance),
				state:    "ok",
			}
			e.states[key] = st
		}
		if a, changed := st.step(now, rv.v); changed {
			transitions = append(transitions, a)
			if a.State == StateResolved {
				e.resolved = append(e.resolved, a)
				if len(e.resolved) > 32 {
					e.resolved = e.resolved[len(e.resolved)-32:]
				}
			}
		}
	}
	// Instances that vanished from the TSDB (e.g. a depot no longer being
	// talked to) evaluate as clean so a firing alert can still resolve.
	for key, st := range e.states {
		if seen[key] {
			continue
		}
		if a, changed := st.step(now, verdict{instance: st.instance}); changed {
			transitions = append(transitions, a)
			if a.State == StateResolved {
				e.resolved = append(e.resolved, a)
			}
		}
	}
	firing := 0
	for _, st := range e.states {
		if st.state == StateFiring {
			firing++
		}
	}
	subs := e.subs
	e.mu.Unlock()

	e.reg.Counter(obs.MSLOEvaluations).Inc()
	e.reg.Gauge(obs.MSLOAlertsFiring).Set(int64(firing))

	if len(transitions) == 0 {
		return
	}
	// One span per pass-with-transitions (not per pass: that would flood
	// the trace ring at the sampling rate); the slo.alert events stamp
	// its trace ID so /debug/alerts changes join against /debug/traces.
	ctx, span := e.tracer.StartSpan(context.Background(), obs.SpanSLOEvaluate)
	span.SetAttr("transitions", strconv.Itoa(len(transitions)))
	for _, a := range transitions {
		e.reg.Counter(obs.Label(obs.MSLOTransitions, "to", a.State)).Inc()
		kv := []string{
			"rule", a.Rule, "instance", a.Instance, "state", a.State,
			"severity", a.Severity,
			"value", strconv.FormatFloat(a.Value, 'f', 3, 64),
			"threshold", strconv.FormatFloat(a.Threshold, 'f', 3, 64),
		}
		if a.State == StateFiring {
			e.logger.Warn(ctx, obs.EvSLOAlert, kv...)
		} else {
			e.logger.Info(ctx, obs.EvSLOAlert, kv...)
		}
		for _, fn := range subs {
			fn(a)
		}
	}
	span.Finish()
}

// step advances one state machine with a fresh verdict, returning the
// externally visible alert and whether a reportable transition (to
// firing or to resolved) happened. Pending entries/exits are tracked but
// not reported to subscribers. Caller holds e.mu.
func (st *alertState) step(now time.Time, v verdict) (Alert, bool) {
	breach := v.valid && v.breach
	if v.valid || breach {
		st.value = v.value
		st.reason = v.reason
	}
	switch st.state {
	case "ok":
		if breach {
			st.breachAt = now
			if st.rule.For <= 0 {
				st.state = StateFiring
				st.since = now
				return st.alert(StateFiring), true
			}
			st.state = StatePending
			st.since = now
		}
	case StatePending:
		if !breach {
			// One clean sample cancels a pending alert: flap damping on the
			// way up is the For window itself.
			st.state = "ok"
			st.breachAt = time.Time{}
			return Alert{}, false
		}
		if now.Sub(st.breachAt) >= st.rule.For.D() {
			st.state = StateFiring
			st.since = now
			return st.alert(StateFiring), true
		}
	case StateFiring:
		if breach {
			st.cleanAt = time.Time{} // the clean run is broken
			return Alert{}, false
		}
		if st.cleanAt.IsZero() {
			st.cleanAt = now
		}
		if now.Sub(st.cleanAt) >= st.rule.ClearAfter.D() {
			st.state = "ok"
			st.since = now
			st.cleanAt = time.Time{}
			st.breachAt = time.Time{}
			return st.alert(StateResolved), true
		}
	}
	return Alert{}, false
}

// alert renders the state machine as an external Alert in the given
// state.
func (st *alertState) alert(state string) Alert {
	return Alert{
		Rule:      st.rule.Name,
		Severity:  st.rule.Severity,
		Scope:     st.rule.Scope,
		Instance:  st.instance,
		Labels:    st.labels,
		State:     state,
		Since:     st.since,
		Value:     st.value,
		Threshold: st.rule.threshold(),
		Reason:    st.reason,
	}
}

// threshold is the rule's limit in the units of Alert.Value.
func (r *Rule) threshold() float64 {
	switch r.Kind {
	case KindLatencyQuantile:
		return r.ThresholdMs
	case KindErrorRate:
		return r.MaxRatio
	case KindBurnRate:
		return r.FastBurn
	case KindGaugeThreshold:
		if r.MaxValue != nil {
			return *r.MaxValue
		}
		if r.MinValue != nil {
			return *r.MinValue
		}
	}
	return 0
}

// evaluateRule computes the verdicts of one rule: one per instance for
// expanded families, a single aggregate verdict otherwise.
func (e *Engine) evaluateRule(r *Rule) []verdict {
	switch r.Kind {
	case KindLatencyQuantile:
		return e.evalLatency(r)
	case KindGaugeThreshold:
		return e.evalGauge(r)
	case KindErrorRate:
		v, ratio, total := e.ratio(r.ErrorMetric, r.TotalMetric, r.Window.D())
		v.breach = ratio > r.MaxRatio
		v.value = ratio
		v.valid = total >= float64(r.MinCount)
		v.reason = fmt.Sprintf("%s/%s = %.3f over %s (limit %.3f)",
			r.ErrorMetric, r.TotalMetric, ratio, r.Window.D(), r.MaxRatio)
		return []verdict{v}
	case KindBurnRate:
		budget := 1 - r.Objective
		fv, fRatio, fTotal := e.ratio(r.ErrorMetric, r.TotalMetric, r.FastWindow.D())
		_, sRatio, _ := e.ratio(r.ErrorMetric, r.TotalMetric, r.SlowWindow.D())
		fastBurn := fRatio / budget
		slowBurn := sRatio / budget
		fv.valid = fTotal >= float64(r.MinCount)
		fv.breach = fastBurn > r.FastBurn && slowBurn > r.SlowBurn
		fv.value = fastBurn
		fv.reason = fmt.Sprintf("budget burn %.1fx/%s and %.1fx/%s (limits %.1fx, %.1fx)",
			fastBurn, r.FastWindow.D(), slowBurn, r.SlowWindow.D(), r.FastBurn, r.SlowBurn)
		return []verdict{fv}
	}
	return nil
}

// evalLatency expands the histogram family into per-instance verdicts.
func (e *Engine) evalLatency(r *Rule) []verdict {
	var names []string
	if strings.ContainsRune(r.Metric, '{') {
		names = []string{r.Metric}
	} else {
		for _, name := range e.db.Names() {
			if obs.BaseName(name) == r.Metric {
				names = append(names, name)
			}
		}
	}
	out := make([]verdict, 0, len(names))
	for _, name := range names {
		q, n := e.db.QuantileOver(name, r.Quantile, r.Window.D())
		out = append(out, verdict{
			instance: name,
			valid:    n >= int64(r.MinCount),
			breach:   q > r.ThresholdMs,
			value:    q,
			reason: fmt.Sprintf("p%g %.1fms over %s (limit %.1fms, n=%d)",
				r.Quantile*100, q, r.Window.D(), r.ThresholdMs, n),
		})
	}
	return out
}

// evalGauge expands a gauge family into per-instance verdicts against
// the rule's [min_value, max_value] band, using each series' latest
// sample. A series with no samples yet has no opinion.
func (e *Engine) evalGauge(r *Rule) []verdict {
	var names []string
	if strings.ContainsRune(r.Metric, '{') {
		names = []string{r.Metric}
	} else {
		for _, name := range e.db.Names() {
			if obs.BaseName(name) == r.Metric {
				names = append(names, name)
			}
		}
	}
	out := make([]verdict, 0, len(names))
	for _, name := range names {
		pt, ok := e.db.Latest(name)
		if !ok {
			out = append(out, verdict{instance: name})
			continue
		}
		v := pt.V
		breach := false
		reason := ""
		switch {
		case r.MinValue != nil && v < *r.MinValue:
			breach = true
			reason = fmt.Sprintf("%s = %.3f below floor %.3f", name, v, *r.MinValue)
		case r.MaxValue != nil && v > *r.MaxValue:
			breach = true
			reason = fmt.Sprintf("%s = %.3f above ceiling %.3f", name, v, *r.MaxValue)
		default:
			reason = fmt.Sprintf("%s = %.3f within bounds", name, v)
		}
		out = append(out, verdict{
			instance: name,
			valid:    true,
			breach:   breach,
			value:    v,
			reason:   reason,
		})
	}
	return out
}

// ratio sums the reset-aware increases of every instance of two families
// over the window and returns err/total (0 when total is 0).
func (e *Engine) ratio(errFamily, totalFamily string, window time.Duration) (verdict, float64, float64) {
	var errInc, totInc float64
	for _, name := range e.db.Names() {
		switch obs.BaseName(name) {
		case errFamily:
			d, _ := e.db.Delta(name, window)
			errInc += d
		case totalFamily:
			d, _ := e.db.Delta(name, window)
			totInc += d
		}
	}
	ratio := 0.0
	if totInc > 0 {
		ratio = errInc / totInc
	}
	return verdict{}, ratio, totInc
}

// Alerts returns the active (pending and firing) alerts plus the
// retained resolution history, stable-sorted: firing first, then
// pending, then resolved, each newest first.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Alert
	for _, st := range e.states {
		if st.state == StatePending || st.state == StateFiring {
			out = append(out, st.alert(st.state))
		}
	}
	out = append(out, e.resolved...)
	rank := map[string]int{StateFiring: 0, StatePending: 1, StateResolved: 2}
	sort.SliceStable(out, func(i, j int) bool {
		if rank[out[i].State] != rank[out[j].State] {
			return rank[out[i].State] < rank[out[j].State]
		}
		return out[i].Since.After(out[j].Since)
	})
	return out
}

// Firing returns just the firing alerts.
func (e *Engine) Firing() []Alert {
	var out []Alert
	for _, a := range e.Alerts() {
		if a.State == StateFiring {
			out = append(out, a)
		}
	}
	return out
}

// HealthError reports a non-nil error while any critical alert fires —
// the obs.ServeOptions.Health hook that degrades /healthz to 503. The
// error text names the firing rule(s), so the probe body says what broke.
func (e *Engine) HealthError() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var names []string
	for _, st := range e.states {
		if st.state == StateFiring && st.rule.Severity == SeverityCritical {
			n := st.rule.Name
			if st.instance != "" {
				n += "(" + st.instance + ")"
			}
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	return fmt.Errorf("slo: critical alert firing: %s", strings.Join(names, ", "))
}

// alertsResponse is the /debug/alerts JSON shape.
type alertsResponse struct {
	Firing int     `json:"firing"`
	Alerts []Alert `json:"alerts"`
}

// Handler serves the alert state as JSON at /debug/alerts.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		alerts := e.Alerts()
		resp := alertsResponse{Alerts: alerts}
		if resp.Alerts == nil {
			resp.Alerts = []Alert{}
		}
		for _, a := range alerts {
			if a.State == StateFiring {
				resp.Firing++
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
