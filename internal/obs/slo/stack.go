package slo

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"time"

	"lonviz/internal/bufpool"
	"lonviz/internal/obs"
	"lonviz/internal/obs/prof"
)

// Options configures Start, the one-call observability stack every
// command wires behind -metrics-addr.
type Options struct {
	// Addr is the -metrics-addr listen address. Empty disables the whole
	// stack: Start returns an inert Stack that serves nothing, samples
	// nothing, and starts no goroutines.
	Addr string
	// Registry to sample and serve; nil means obs.Default().
	Registry *obs.Registry
	// Tracer to serve at /debug/traces; nil means obs.DefaultTracer().
	Tracer *obs.Tracer
	// RulesPath is the -slo-config value: a JSON rule file, or empty for
	// DefaultRules().
	RulesPath string
	// SampleInterval is the -tsdb-interval value (default 1s). The TSDB
	// retention tiers scale with it: interval×300 at full resolution,
	// then 10×interval×360.
	SampleInterval time.Duration
	// Logger receives alert transition events; nil means
	// obs.DefaultLogger().
	Logger *obs.Logger
	// ProfRates is the -prof-rates value: enable mutex and block
	// profiling (SetMutexProfileFraction(100), SetBlockProfileRate(1ms))
	// so capture bundles carry contention evidence. Off by default — the
	// rates add a small cost to every contended lock.
	ProfRates bool
	// CaptureCPUProfile is how long the flight recorder's CPU profile
	// records per bundle (default 2s).
	CaptureCPUProfile time.Duration
	// CaptureCooldown is the minimum spacing between automatic captures
	// (default 2m) — a flapping alert cannot thrash the process.
	CaptureCooldown time.Duration
	// Clock overrides time.Now (tests).
	Clock func() time.Time
	// Extra handlers are mounted on the stack's mux alongside its own
	// endpoints (the fleet scraper's /debug/fleet arrives this way).
	// Paths colliding with the stack's own endpoints are ignored.
	Extra map[string]http.Handler
	// ExtraHealth hooks are combined with the engine's HealthError: the
	// first non-nil error degrades /healthz to 503. The fleet engine's
	// critical alerts plug in here so a cluster-scope breach is visible
	// on the steward's own liveness probe.
	ExtraHealth []func() error
}

// Stack is a running observability stack: the HTTP server, the sampling
// TSDB, the SLO engine, and the readiness latch, with one Close. All
// methods are nil-safe and safe on the inert (Addr=="") stack, so
// commands hold one unconditionally.
type Stack struct {
	// Server is the bound obs endpoint (nil when disabled).
	Server *obs.Server
	// TSDB is the sampling store (nil when disabled).
	TSDB *obs.TSDB
	// Engine is the SLO evaluator (nil when disabled).
	Engine *Engine
	// Ready is the /readyz latch (nil when disabled).
	Ready *obs.Readiness
	// Recorder is the flight recorder behind /debug/capture (nil when
	// disabled).
	Recorder *prof.Recorder

	stop     chan struct{}
	stopOnce sync.Once
}

// Start builds and runs the stack: it loads the rules, wires the engine
// as the TSDB's per-sample hook, serves /metrics, /debug/tsdb,
// /debug/alerts, the degradable /healthz and the /readyz latch on
// opts.Addr, and starts the single sampling goroutine. With an empty
// Addr it returns an inert Stack and starts nothing.
func Start(opts Options) (*Stack, error) {
	if opts.Addr == "" {
		return &Stack{}, nil
	}
	rules := []Rule(nil)
	if opts.RulesPath != "" {
		var err error
		rules, err = LoadRules(opts.RulesPath)
		if err != nil {
			return nil, err
		}
	}
	interval := opts.SampleInterval
	if interval <= 0 {
		interval = time.Second
	}
	// Every process with metrics on moves payload through the shared
	// buffer pool, so the stack bridges its counters here instead of
	// asking each command to remember to.
	bufpool.RegisterMetrics(opts.Registry)

	// Runtime self-profiling rides the same gate: the harvester refreshes
	// the runtime.* families at the top of every sampling pass, the label
	// gate makes the hot-path pprof attribution live, and -prof-rates
	// (optionally) turns on contention profiling for capture bundles.
	harvester := prof.NewHarvester(opts.Registry)
	prof.SetLabelsEnabled(true)
	if opts.ProfRates {
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(int(time.Millisecond))
	}

	var engine *Engine
	db := obs.NewTSDB(obs.TSDBConfig{
		Registry:  opts.Registry,
		Tiers:     obs.DefaultTiers(interval),
		Clock:     opts.Clock,
		PreSample: harvester.Harvest,
		// Evaluation rides the sampling pass: no second timer goroutine,
		// and every evaluation sees a fresh sample.
		OnSample: func() { engine.Evaluate() },
	})
	engine = NewEngine(EngineConfig{
		DB:       db,
		Rules:    rules,
		Registry: opts.Registry,
		Tracer:   opts.Tracer,
		Logger:   opts.Logger,
		Clock:    opts.Clock,
	})
	ready := obs.NewReadiness()

	recorder := prof.NewRecorder(prof.RecorderConfig{
		Registry:   opts.Registry,
		Tracer:     opts.Tracer,
		Logger:     opts.Logger,
		TSDB:       db,
		CPUProfile: opts.CaptureCPUProfile,
		Cooldown:   opts.CaptureCooldown,
		Clock:      opts.Clock,
	})
	// The flight recorder subscribes next to steward.AlertTrigger: a
	// critical alert crossing into firing records a forensic bundle
	// automatically, while the evidence is still live.
	engine.Subscribe(func(a Alert) {
		if a.State == StateFiring && a.Severity == SeverityCritical {
			recorder.TriggerAsync("alert:"+a.Rule, a.Reason)
		}
	})

	extra := map[string]http.Handler{
		"/debug/alerts":   engine.Handler(),
		"/debug/capture":  recorder.Handler(),
		"/debug/capture/": recorder.Handler(),
	}
	for path, h := range opts.Extra {
		if _, taken := extra[path]; !taken {
			extra[path] = h
		}
	}
	health := engine.HealthError
	if len(opts.ExtraHealth) > 0 {
		hooks := append([]func() error{engine.HealthError}, opts.ExtraHealth...)
		health = func() error {
			for _, h := range hooks {
				if h == nil {
					continue
				}
				if err := h(); err != nil {
					return err
				}
			}
			return nil
		}
	}
	srv, err := obs.ServeWith(opts.Addr, obs.ServeOptions{
		Registry: opts.Registry,
		Tracer:   opts.Tracer,
		TSDB:     db,
		Ready:    ready,
		Health:   health,
		Extra:    extra,
	})
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	go db.Run(stop, interval)
	return &Stack{Server: srv, TSDB: db, Engine: engine, Ready: ready, Recorder: recorder, stop: stop}, nil
}

// Addr returns the bound listen address ("" when disabled).
func (s *Stack) Addr() string {
	if s == nil {
		return ""
	}
	return s.Server.Addr()
}

// Enabled reports whether the stack is actually serving.
func (s *Stack) Enabled() bool { return s != nil && s.Server != nil }

// SetStatus records the current startup phase for /readyz.
func (s *Stack) SetStatus(phase string) {
	if s == nil {
		return
	}
	s.Ready.SetStatus(phase)
}

// MarkReady flips /readyz to 200.
func (s *Stack) MarkReady() {
	if s == nil {
		return
	}
	s.Ready.MarkReady()
}

// Subscribe registers an alert-transition callback (no-op when
// disabled).
func (s *Stack) Subscribe(fn func(Alert)) {
	if s == nil {
		return
	}
	s.Engine.Subscribe(fn)
}

// ReplicaBias builds the depot-latency replica-selection score from the
// stack's TSDB (nil when disabled, which disables biasing downstream).
func (s *Stack) ReplicaBias(window time.Duration) func(string) float64 {
	if s == nil {
		return nil
	}
	return obs.DepotLatencyBias(s.TSDB, window)
}

// Close stops the sampling goroutine, interrupts and waits out any
// in-flight capture, and drains the HTTP server. Safe on nil and on the
// inert stack, and idempotent.
func (s *Stack) Close(ctx context.Context) error {
	if s == nil {
		return nil
	}
	if s.stop != nil {
		s.stopOnce.Do(func() { close(s.stop) })
	}
	s.Recorder.Close()
	return s.Server.Close(ctx)
}
