package slo

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lonviz/internal/obs"
)

// fakeClock is a manually advanced clock shared by TSDB and engine.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.UnixMilli(1_700_000_000_000)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// latencyHarness wires one latency-quantile rule over one histogram with a
// shared fake clock, driven one tick at a time.
type latencyHarness struct {
	t     *testing.T
	clock *fakeClock
	reg   *obs.Registry
	db    *obs.TSDB
	eng   *Engine
	hist  *obs.Histogram

	mu          sync.Mutex
	transitions []Alert
}

func newLatencyHarness(t *testing.T, rule Rule) *latencyHarness {
	t.Helper()
	if err := rule.Validate(); err != nil {
		t.Fatalf("rule: %v", err)
	}
	h := &latencyHarness{t: t, clock: newFakeClock(), reg: obs.NewRegistry()}
	h.db = obs.NewTSDB(obs.TSDBConfig{
		Registry: h.reg,
		Tiers:    []obs.Tier{{Step: time.Second, Slots: 300}},
		Clock:    h.clock.Now,
	})
	h.eng = NewEngine(EngineConfig{
		DB:       h.db,
		Rules:    []Rule{rule},
		Registry: h.reg,
		Clock:    h.clock.Now,
	})
	h.eng.Subscribe(func(a Alert) {
		h.mu.Lock()
		h.transitions = append(h.transitions, a)
		h.mu.Unlock()
	})
	h.hist = h.reg.Histogram("test.ms", 1, 10, 100, 1000)
	return h
}

// tick observes n samples of value ms, samples the TSDB, evaluates, and
// advances the clock one second.
func (h *latencyHarness) tick(ms float64, n int) {
	for i := 0; i < n; i++ {
		h.hist.Observe(ms)
	}
	h.db.Sample()
	h.eng.Evaluate()
	h.clock.Advance(time.Second)
}

func (h *latencyHarness) states() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.transitions))
	for i, a := range h.transitions {
		out[i] = a.State
	}
	return out
}

func testLatencyRule() Rule {
	return Rule{
		Name:        "test-latency",
		Severity:    SeverityCritical,
		Kind:        KindLatencyQuantile,
		Metric:      "test.ms",
		Quantile:    0.5,
		ThresholdMs: 100,
		// Window covers exactly the last tick's observations; For and
		// ClearAfter provide the hysteresis under test.
		Window:     Duration(1500 * time.Millisecond),
		For:        Duration(2 * time.Second),
		ClearAfter: Duration(4 * time.Second),
		MinCount:   1,
	}
}

func TestEngineFiresAfterForAndResolvesAfterClearAfter(t *testing.T) {
	h := newLatencyHarness(t, testLatencyRule())

	h.tick(500, 20) // breach -> pending
	h.tick(500, 20) // 1s held < For
	if got := h.states(); len(got) != 0 {
		t.Fatalf("fired before For elapsed: %v", got)
	}
	h.tick(500, 20) // 2s held -> firing
	if got := h.states(); len(got) != 1 || got[0] != StateFiring {
		t.Fatalf("transitions after For = %v, want [firing]", got)
	}
	if err := h.eng.HealthError(); err == nil || !strings.Contains(err.Error(), "test-latency") {
		t.Fatalf("HealthError while firing = %v, want to name test-latency", err)
	}

	// Clean run with the ClearAfter hold: no resolve until it has been
	// continuously clean that long.
	h.tick(5, 20)
	h.tick(5, 20)
	h.tick(5, 20)
	h.tick(5, 20)
	if got := h.states(); len(got) != 1 {
		t.Fatalf("resolved before ClearAfter elapsed: %v", got)
	}
	h.tick(5, 20) // 4s of continuous clean -> resolved
	if got := h.states(); len(got) != 2 || got[1] != StateResolved {
		t.Fatalf("transitions = %v, want [firing resolved]", got)
	}
	if err := h.eng.HealthError(); err != nil {
		t.Fatalf("HealthError after resolve = %v, want nil", err)
	}
}

// TestEngineNoFlap pins the damping in both directions: a single bad
// sample never fires a healthy rule, and a single good sample never
// resolves a firing one.
func TestEngineNoFlap(t *testing.T) {
	h := newLatencyHarness(t, testLatencyRule())

	// One bad tick among good ones: pending is entered and cancelled, no
	// firing transition reaches subscribers.
	h.tick(5, 20)
	h.tick(500, 20)
	h.tick(5, 20)
	h.tick(5, 20)
	if got := h.states(); len(got) != 0 {
		t.Fatalf("one bad sample produced transitions %v, want none", got)
	}

	// Now drive to firing, then break the clean run with one bad tick: the
	// ClearAfter countdown must restart, not resolve.
	h.tick(500, 20)
	h.tick(500, 20)
	h.tick(500, 20)
	if got := h.states(); len(got) != 1 || got[0] != StateFiring {
		t.Fatalf("setup transitions = %v, want [firing]", got)
	}
	h.tick(5, 20)   // clean run starts
	h.tick(500, 20) // one bad sample breaks it
	h.tick(5, 20)   // clean restarts
	h.tick(5, 20)
	h.tick(5, 20)
	if got := h.states(); len(got) != 1 {
		t.Fatalf("resolved across a broken clean run: %v", got)
	}
	h.tick(5, 20)
	h.tick(5, 20) // 4s continuous clean since the restart -> resolved
	if got := h.states(); len(got) != 2 || got[1] != StateResolved {
		t.Fatalf("transitions = %v, want [firing resolved]", got)
	}
}

// TestEngineVanishedInstanceResolves proves an alert on a labeled series
// that stops being sampled (depot no longer contacted) still resolves.
func TestEngineVanishedInstanceResolves(t *testing.T) {
	rule := testLatencyRule()
	h := newLatencyHarness(t, rule)
	h.tick(500, 20)
	h.tick(500, 20)
	h.tick(500, 20)
	if got := h.states(); len(got) != 1 || got[0] != StateFiring {
		t.Fatalf("setup transitions = %v, want [firing]", got)
	}
	// Stop observing entirely: the window drains below MinCount, verdicts
	// turn invalid, and invalid counts as clean for the ClearAfter run.
	for i := 0; i < 6; i++ {
		h.db.Sample()
		h.eng.Evaluate()
		h.clock.Advance(time.Second)
	}
	if got := h.states(); len(got) != 2 || got[1] != StateResolved {
		t.Fatalf("transitions = %v, want [firing resolved] after traffic stopped", got)
	}
}

func TestEngineBurnRateNeedsBothWindows(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	db := obs.NewTSDB(obs.TSDBConfig{
		Registry: reg,
		Tiers:    []obs.Tier{{Step: time.Second, Slots: 300}},
		Clock:    clock.Now,
	})
	rule := Rule{
		Name:        "test-burn",
		Kind:        KindBurnRate,
		ErrorMetric: "test.errors",
		TotalMetric: "test.total",
		Objective:   0.9, // 10% error budget
		FastWindow:  Duration(3 * time.Second),
		SlowWindow:  Duration(60 * time.Second),
		FastBurn:    2,
		SlowBurn:    1,
		For:         0, // fire immediately on breach; windows are the damping
		ClearAfter:  Duration(2 * time.Second),
		MinCount:    1,
	}
	if err := rule.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(EngineConfig{DB: db, Rules: []Rule{rule}, Registry: reg, Clock: clock.Now})
	var fired []Alert
	eng.Subscribe(func(a Alert) {
		if a.State == StateFiring {
			fired = append(fired, a)
		}
	})
	errs := reg.Counter("test.errors")
	total := reg.Counter("test.total")

	// A long healthy history: 60 ticks of pure success.
	for i := 0; i < 60; i++ {
		total.Add(10)
		db.Sample()
		eng.Evaluate()
		clock.Advance(time.Second)
	}
	// A 2-tick error spike: the fast window burns hot, but the slow window
	// is still diluted by the healthy hour — no alert.
	for i := 0; i < 2; i++ {
		total.Add(10)
		errs.Add(5)
		db.Sample()
		eng.Evaluate()
		clock.Advance(time.Second)
	}
	if len(fired) != 0 {
		t.Fatalf("fast-only spike fired %d alerts (%+v), want 0 — slow window must gate", len(fired), fired)
	}
	// Sustained errors long enough to push the slow window past 1x budget
	// burn too: now it fires.
	for i := 0; i < 30 && len(fired) == 0; i++ {
		total.Add(10)
		errs.Add(5)
		db.Sample()
		eng.Evaluate()
		clock.Advance(time.Second)
	}
	if len(fired) == 0 {
		t.Fatal("sustained burn never fired")
	}
	if fired[0].Rule != "test-burn" {
		t.Errorf("fired rule = %q", fired[0].Rule)
	}
}

func TestEngineHandlerJSON(t *testing.T) {
	h := newLatencyHarness(t, testLatencyRule())
	srv := httptest.NewServer(h.eng.Handler())
	defer srv.Close()

	// Empty engine: alerts must be [] (not null) so jq-style consumers and
	// the check.sh smoke never trip over null.
	body := func() string {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}
	var doc struct {
		Firing int     `json:"firing"`
		Alerts []Alert `json:"alerts"`
	}
	raw := body()
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("alerts JSON: %v\n%s", err, raw)
	}
	if doc.Alerts == nil {
		t.Fatalf("empty alerts serialized as null: %s", raw)
	}

	h.tick(500, 20)
	h.tick(500, 20)
	h.tick(500, 20)
	raw = body()
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Firing != 1 || len(doc.Alerts) != 1 || doc.Alerts[0].State != StateFiring {
		t.Fatalf("alerts doc = %+v, want one firing", doc)
	}
	if doc.Alerts[0].Rule != "test-latency" {
		t.Errorf("alert rule = %q", doc.Alerts[0].Rule)
	}
}

func TestParseRules(t *testing.T) {
	// Wrapped object form, duration as string and as seconds-number.
	rules, err := ParseRules([]byte(`{"rules": [{
		"name": "lat", "kind": "latency_quantile", "metric": "x.ms",
		"quantile": 0.99, "threshold_ms": 250, "window": "30s", "for": 10
	}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Window.D() != 30*time.Second || rules[0].For.D() != 10*time.Second {
		t.Fatalf("parsed %+v", rules)
	}
	if rules[0].Severity != SeverityWarn {
		t.Errorf("default severity = %q, want warn", rules[0].Severity)
	}
	if rules[0].MinCount != 1 {
		t.Errorf("default min_count = %d, want 1", rules[0].MinCount)
	}

	// Bare array form.
	if _, err := ParseRules([]byte(`[{"name": "e", "kind": "error_rate",
		"error_metric": "x.err", "total_metric": "x.tot", "max_ratio": 0.5, "window": "1m"}]`)); err != nil {
		t.Fatalf("bare array: %v", err)
	}

	// Duplicate names rejected.
	if _, err := ParseRules([]byte(`[
		{"name": "d", "kind": "error_rate", "error_metric": "a", "total_metric": "b", "max_ratio": 0.5, "window": "1m"},
		{"name": "d", "kind": "error_rate", "error_metric": "a", "total_metric": "b", "max_ratio": 0.5, "window": "1m"}]`)); err == nil {
		t.Error("duplicate rule names accepted")
	}

	// Kind-specific validation.
	if _, err := ParseRules([]byte(`[{"name": "bad", "kind": "latency_quantile", "metric": "x"}]`)); err == nil {
		t.Error("latency rule without quantile/threshold accepted")
	}
	if _, err := ParseRules([]byte(`[{"name": "bad", "kind": "nope"}]`)); err == nil {
		t.Error("unknown kind accepted")
	}

	// The shipped defaults must validate.
	for _, r := range DefaultRules() {
		r := r
		if err := r.Validate(); err != nil {
			t.Errorf("default rule %s: %v", r.Name, err)
		}
	}
}

// TestStackLifecycle exercises the full slo.Start path: readiness
// transitions, mounted endpoints, and shutdown.
func TestStackLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	stack, err := Start(Options{
		Addr:           "127.0.0.1:0",
		Registry:       reg,
		SampleInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close(context.Background())
	if !stack.Enabled() {
		t.Fatal("stack not enabled")
	}
	base := "http://" + stack.Addr()

	status := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	stack.SetStatus("warming up")
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz before MarkReady = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz with no firing alerts = %d, want 200", got)
	}
	stack.MarkReady()
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz after MarkReady = %d, want 200", got)
	}
	if got := status("/debug/alerts"); got != http.StatusOK {
		t.Errorf("/debug/alerts = %d", got)
	}
	if got := status("/debug/tsdb"); got != http.StatusOK {
		t.Errorf("/debug/tsdb = %d", got)
	}

	// The sampler must produce history on its own: poke a counter and wait
	// for at least two samples to land.
	reg.Counter("stack.test").Add(1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		pts := stack.TSDB.Points("stack.test", time.Now().Add(-time.Minute))
		if len(pts) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampler produced %d points in 5s, want >=2", len(pts))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := stack.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestOffPathInert pins the -metrics-addr-off contract: Start with no
// address must spawn no goroutines, and every method on the inert stack
// and nil engine must be an allocation-free no-op.
func TestOffPathInert(t *testing.T) {
	before := countGoroutines()
	stack, err := Start(Options{Addr: ""})
	if err != nil {
		t.Fatal(err)
	}
	if stack.Enabled() {
		t.Fatal("empty-addr stack claims enabled")
	}
	if after := countGoroutines(); after > before {
		t.Errorf("inert Start spawned goroutines: %d -> %d", before, after)
	}
	if stack.ReplicaBias(time.Minute) != nil {
		t.Error("inert stack ReplicaBias should be nil")
	}
	var eng *Engine
	if n := testing.AllocsPerRun(100, func() {
		eng.Evaluate()
		stack.SetStatus("x")
		stack.MarkReady()
		stack.Subscribe(nil)
		if eng.HealthError() != nil {
			t.Fatal("nil engine unhealthy")
		}
	}); n != 0 {
		t.Errorf("off path allocates %v per run, want 0", n)
	}
	if err := stack.Close(context.Background()); err != nil {
		t.Errorf("inert close: %v", err)
	}
}

func countGoroutines() int {
	// Settle briefly so finished goroutines from earlier tests retire.
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}
