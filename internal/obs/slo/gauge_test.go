package slo

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lonviz/internal/obs"
)

// gaugeHarness drives one gauge_threshold rule over snapshot-fed float
// series, the way the fleet scraper feeds replica coverage.
type gaugeHarness struct {
	clock *fakeClock
	reg   *obs.Registry
	db    *obs.TSDB
	eng   *Engine

	mu          sync.Mutex
	vals        map[string]float64
	transitions []Alert
}

func newGaugeHarness(t *testing.T, rule Rule) *gaugeHarness {
	t.Helper()
	if err := rule.Validate(); err != nil {
		t.Fatalf("rule: %v", err)
	}
	h := &gaugeHarness{clock: newFakeClock(), reg: obs.NewRegistry(), vals: map[string]float64{}}
	h.reg.RegisterSnapshot("fleet", func() map[string]float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		out := make(map[string]float64, len(h.vals))
		for k, v := range h.vals {
			out[k] = v
		}
		return out
	})
	h.db = obs.NewTSDB(obs.TSDBConfig{
		Registry: h.reg,
		Tiers:    []obs.Tier{{Step: time.Second, Slots: 300}},
		Clock:    h.clock.Now,
	})
	h.eng = NewEngine(EngineConfig{
		DB:       h.db,
		Rules:    []Rule{rule},
		Registry: h.reg,
		Clock:    h.clock.Now,
	})
	h.eng.Subscribe(func(a Alert) {
		h.mu.Lock()
		h.transitions = append(h.transitions, a)
		h.mu.Unlock()
	})
	return h
}

func (h *gaugeHarness) tick(vals map[string]float64) {
	h.mu.Lock()
	h.vals = vals
	h.mu.Unlock()
	h.db.Sample()
	h.eng.Evaluate()
	h.clock.Advance(time.Second)
}

func (h *gaugeHarness) last() (Alert, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.transitions) == 0 {
		return Alert{}, false
	}
	return h.transitions[len(h.transitions)-1], true
}

func TestGaugeThresholdFiresBelowFloorAndResolves(t *testing.T) {
	rule := Rule{
		Name:       "coverage",
		Severity:   SeverityCritical,
		Kind:       KindGaugeThreshold,
		Scope:      ScopeFleet,
		Metric:     "fleet.replica.coverage.min",
		MinValue:   Float(2),
		ClearAfter: Duration(2 * time.Second),
	}
	h := newGaugeHarness(t, rule)

	h.tick(map[string]float64{"replica.coverage.min": 2}) // at the floor: ok
	if a, ok := h.last(); ok {
		t.Fatalf("unexpected transition %+v at the floor", a)
	}
	h.tick(map[string]float64{"replica.coverage.min": 1}) // breach
	a, ok := h.last()
	if !ok || a.State != StateFiring {
		t.Fatalf("want firing after breach, got %+v (ok=%v)", a, ok)
	}
	if a.Scope != ScopeFleet {
		t.Fatalf("alert scope = %q, want %q", a.Scope, ScopeFleet)
	}
	if err := h.eng.HealthError(); err == nil {
		t.Fatal("HealthError nil while critical gauge alert fires")
	}

	// Recovery holds for ClearAfter before resolving.
	h.tick(map[string]float64{"replica.coverage.min": 2})
	h.tick(map[string]float64{"replica.coverage.min": 2})
	h.tick(map[string]float64{"replica.coverage.min": 2})
	if a, _ := h.last(); a.State != StateResolved {
		t.Fatalf("want resolved after recovery, got %+v", a)
	}
	if err := h.eng.HealthError(); err != nil {
		t.Fatalf("HealthError after resolve: %v", err)
	}
}

func TestGaugeThresholdCeiling(t *testing.T) {
	rule := Rule{
		Name:     "degraded",
		Severity: SeverityCritical,
		Kind:     KindGaugeThreshold,
		Scope:    ScopeFleet,
		Metric:   "fleet.depots.degraded_ratio",
		MaxValue: Float(0.25),
	}
	h := newGaugeHarness(t, rule)
	h.tick(map[string]float64{"depots.degraded_ratio": 0.5})
	a, ok := h.last()
	if !ok || a.State != StateFiring {
		t.Fatalf("want firing above ceiling, got %+v (ok=%v)", a, ok)
	}
	if a.Threshold != 0.25 {
		t.Fatalf("threshold = %v, want 0.25", a.Threshold)
	}
}

func TestGaugeThresholdExpandsLabeledInstances(t *testing.T) {
	rule := Rule{
		Name:     "per-exnode",
		Severity: SeverityWarn,
		Kind:     KindGaugeThreshold,
		Metric:   "fleet.replica.coverage",
		MinValue: Float(2),
	}
	h := newGaugeHarness(t, rule)
	h.tick(map[string]float64{
		obs.Label("replica.coverage", "exnode", "a"): 3,
		obs.Label("replica.coverage", "exnode", "b"): 1,
	})
	h.tick(map[string]float64{
		obs.Label("replica.coverage", "exnode", "a"): 3,
		obs.Label("replica.coverage", "exnode", "b"): 1,
	})
	a, ok := h.last()
	if !ok || a.State != StateFiring {
		t.Fatalf("want firing for the under-covered instance, got %+v (ok=%v)", a, ok)
	}
	if !strings.Contains(a.Instance, "exnode=b") {
		t.Fatalf("firing instance %q, want the exnode=b series", a.Instance)
	}
}

func TestGaugeThresholdValidate(t *testing.T) {
	bad := []Rule{
		{Name: "x", Severity: SeverityWarn, Kind: KindGaugeThreshold},                                                       // no metric
		{Name: "x", Severity: SeverityWarn, Kind: KindGaugeThreshold, Metric: "m"},                                          // no bound
		{Name: "x", Severity: SeverityWarn, Kind: KindGaugeThreshold, Metric: "m", MinValue: Float(3), MaxValue: Float(1)},  // min > max
		{Name: "x", Severity: SeverityWarn, Kind: KindGaugeThreshold, Metric: "m", MinValue: Float(1), Scope: "datacenter"}, // bad scope
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: Validate() accepted %+v", i, r)
		}
	}
	good := Rule{Name: "x", Severity: SeverityWarn, Kind: KindGaugeThreshold, Metric: "m", MinValue: Float(1)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	if good.Scope != ScopeNode {
		t.Fatalf("default scope = %q, want %q", good.Scope, ScopeNode)
	}
}

func TestFleetDefaultRulesValidateAndScope(t *testing.T) {
	rules := FleetDefaultRules(3)
	if len(rules) == 0 {
		t.Fatal("no fleet default rules")
	}
	names := make(map[string]bool)
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			t.Fatalf("rule %s: %v", r.Name, err)
		}
		if r.Scope != ScopeFleet {
			t.Fatalf("rule %s scope = %q, want fleet", r.Name, r.Scope)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"fleet-replica-coverage", "fleet-depots-degraded", "fleet-shed-burn"} {
		if !names[want] {
			t.Fatalf("missing rule %s (have %v)", want, names)
		}
	}
	// The coverage floor tracks the deployment's replication factor.
	for _, r := range rules {
		if r.Name == "fleet-replica-coverage" && (r.MinValue == nil || *r.MinValue != 3) {
			t.Fatalf("coverage floor = %v, want 3", r.MinValue)
		}
	}
}
