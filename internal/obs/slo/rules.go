// Package slo evaluates service-level objectives against the obs.TSDB's
// retained history and turns breaches into alerts the rest of the stack
// can act on: /debug/alerts for operators, a degraded /healthz for load
// balancers, the structured event log for forensics, and subscriber
// callbacks for the steward's alert-triggered repairs.
//
// Rules are declarative and JSON-loadable (-slo-config); DefaultRules
// ships a generous built-in set so every daemon has basic coverage with
// no configuration. Three rule kinds cover the stack's needs:
//
//   - latency_quantile: a windowed quantile of one histogram family
//     (expanded per label instance, so "ibp.depot.ms" yields one alert
//     stream per depot) must stay under a threshold.
//   - error_rate: the ratio of one counter family's increase to
//     another's over a window must stay under a ceiling.
//   - burn_rate: multi-window error-budget burn (the fast/slow-burn
//     pattern): the alert fires only when both the fast and the slow
//     window burn the budget faster than their limits, which pages
//     quickly on a cliff yet ignores short blips.
//   - gauge_threshold: the latest value of one gauge family (expanded
//     per label instance) must stay inside a [min_value, max_value]
//     band. The fleet tier's replica-coverage and degraded-ratio rules
//     are gauge thresholds over cluster aggregates.
//
// Evaluation runs synchronously from the TSDB's sampling pass and is
// flap-damped by hysteresis: a breach must hold for `for` before firing,
// and a firing alert must pass continuously for `clear_after` before
// resolving, so one good (or bad) sample never flips state.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"lonviz/internal/obs"
)

// Duration is a time.Duration that unmarshals from JSON as either a Go
// duration string ("30s", "5m") or a number of seconds.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("slo: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("slo: bad duration %s (want \"30s\" or seconds)", b)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Rule kinds.
const (
	KindLatencyQuantile = "latency_quantile"
	KindErrorRate       = "error_rate"
	KindBurnRate        = "burn_rate"
	// KindGaugeThreshold watches the latest value of a gauge family: the
	// alert breaches when the value leaves the [min_value, max_value]
	// band (whichever bounds are set). It is the fleet tier's workhorse —
	// replica coverage below the replication factor, degraded-depot ratio
	// above a ceiling — but works on any node-local gauge too.
	KindGaugeThreshold = "gauge_threshold"
)

// Rule scopes: where the rule's inputs come from and who acts on it.
const (
	// ScopeNode rules read one process's own TSDB (the default).
	ScopeNode = "node"
	// ScopeFleet rules read the cluster TSDB a fleet scraper maintains:
	// their metrics are fleet.* aggregates folded from every member.
	ScopeFleet = "fleet"
)

// Severities.
const (
	SeverityWarn = "warn"
	// SeverityCritical alerts additionally degrade /healthz to 503 while
	// firing.
	SeverityCritical = "critical"
)

// Rule is one declarative SLO. Fields apply per Kind; see the package
// comment and docs/OBSERVABILITY.md for the format.
type Rule struct {
	// Name identifies the rule in alerts, events, and the /healthz reason.
	Name string `json:"name"`
	// Severity is "warn" (default) or "critical".
	Severity string `json:"severity,omitempty"`
	// Kind selects the evaluation: latency_quantile | error_rate |
	// burn_rate | gauge_threshold.
	Kind string `json:"kind"`
	// Scope is "node" (default: the process's own TSDB) or "fleet" (a
	// cluster TSDB maintained by a fleet scraper). Scope does not change
	// evaluation — it documents provenance and is carried on alerts so
	// subscribers can tell a local breach from a cluster-wide one.
	Scope string `json:"scope,omitempty"`

	// Metric (latency_quantile) is the histogram family to watch; every
	// labeled instance ("ibp.depot.ms{depot=...}") gets its own alert
	// stream. An exact labeled name watches just that instance.
	Metric string `json:"metric,omitempty"`
	// Quantile (latency_quantile) in (0,1), e.g. 0.99.
	Quantile float64 `json:"quantile,omitempty"`
	// ThresholdMs (latency_quantile): the quantile must stay under this.
	ThresholdMs float64 `json:"threshold_ms,omitempty"`

	// ErrorMetric / TotalMetric (error_rate, burn_rate) are counter or
	// histogram families; every instance's increase is summed, so the
	// ratio is fleet-wide per process.
	ErrorMetric string `json:"error_metric,omitempty"`
	TotalMetric string `json:"total_metric,omitempty"`
	// MaxRatio (error_rate): errors/total must stay under this.
	MaxRatio float64 `json:"max_ratio,omitempty"`

	// MinValue / MaxValue (gauge_threshold) bound the gauge's latest
	// value: v < MinValue (when set) or v > MaxValue (when set) breaches.
	// At least one must be set; a gauge family expands per label instance
	// like latency_quantile does. Metric names the gauge family.
	MinValue *float64 `json:"min_value,omitempty"`
	MaxValue *float64 `json:"max_value,omitempty"`

	// Objective (burn_rate) is the availability target, e.g. 0.99; the
	// error budget is 1-Objective.
	Objective float64 `json:"objective,omitempty"`
	// FastWindow/SlowWindow (burn_rate) are the two evaluation windows;
	// FastBurn/SlowBurn are the budget-burn multiples each must exceed
	// for the alert to fire.
	FastWindow Duration `json:"fast_window,omitempty"`
	SlowWindow Duration `json:"slow_window,omitempty"`
	FastBurn   float64  `json:"fast_burn,omitempty"`
	SlowBurn   float64  `json:"slow_burn,omitempty"`

	// Window is the evaluation window (latency_quantile, error_rate).
	Window Duration `json:"window,omitempty"`
	// For is how long a breach must hold before the alert fires
	// (0 fires on the first breached evaluation).
	For Duration `json:"for,omitempty"`
	// ClearAfter is how long a firing alert must evaluate clean before it
	// resolves (default: max(For, one window); never less than one
	// sample, so a single good sample cannot resolve — nor a single bad
	// sample re-fire — the hysteresis the flap-damping tests pin).
	ClearAfter Duration `json:"clear_after,omitempty"`
	// MinCount is the minimum observations (quantile) or total increase
	// (ratios) the window must hold before the rule has an opinion
	// (default 1). Under it the rule evaluates clean.
	MinCount int `json:"min_count,omitempty"`
}

// Validate checks the rule is well-formed.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("slo: rule with empty name")
	}
	switch r.Severity {
	case "":
		r.Severity = SeverityWarn
	case SeverityWarn, SeverityCritical:
	default:
		return fmt.Errorf("slo: rule %q: bad severity %q (want warn|critical)", r.Name, r.Severity)
	}
	switch r.Scope {
	case "":
		r.Scope = ScopeNode
	case ScopeNode, ScopeFleet:
	default:
		return fmt.Errorf("slo: rule %q: bad scope %q (want node|fleet)", r.Name, r.Scope)
	}
	if r.MinCount <= 0 {
		r.MinCount = 1
	}
	switch r.Kind {
	case KindLatencyQuantile:
		if r.Metric == "" {
			return fmt.Errorf("slo: rule %q: latency_quantile needs metric", r.Name)
		}
		if r.Quantile <= 0 || r.Quantile >= 1 {
			return fmt.Errorf("slo: rule %q: quantile must be in (0,1)", r.Name)
		}
		if r.ThresholdMs <= 0 {
			return fmt.Errorf("slo: rule %q: threshold_ms must be positive", r.Name)
		}
		if r.Window <= 0 {
			return fmt.Errorf("slo: rule %q: window must be positive", r.Name)
		}
	case KindErrorRate:
		if r.ErrorMetric == "" || r.TotalMetric == "" {
			return fmt.Errorf("slo: rule %q: error_rate needs error_metric and total_metric", r.Name)
		}
		if r.MaxRatio <= 0 {
			return fmt.Errorf("slo: rule %q: max_ratio must be positive", r.Name)
		}
		if r.Window <= 0 {
			return fmt.Errorf("slo: rule %q: window must be positive", r.Name)
		}
	case KindBurnRate:
		if r.ErrorMetric == "" || r.TotalMetric == "" {
			return fmt.Errorf("slo: rule %q: burn_rate needs error_metric and total_metric", r.Name)
		}
		if r.Objective <= 0 || r.Objective >= 1 {
			return fmt.Errorf("slo: rule %q: objective must be in (0,1)", r.Name)
		}
		if r.FastWindow <= 0 || r.SlowWindow <= 0 {
			return fmt.Errorf("slo: rule %q: burn_rate needs fast_window and slow_window", r.Name)
		}
		if r.FastBurn <= 0 || r.SlowBurn <= 0 {
			return fmt.Errorf("slo: rule %q: burn_rate needs fast_burn and slow_burn", r.Name)
		}
	case KindGaugeThreshold:
		if r.Metric == "" {
			return fmt.Errorf("slo: rule %q: gauge_threshold needs metric", r.Name)
		}
		if r.MinValue == nil && r.MaxValue == nil {
			return fmt.Errorf("slo: rule %q: gauge_threshold needs min_value and/or max_value", r.Name)
		}
		if r.MinValue != nil && r.MaxValue != nil && *r.MinValue > *r.MaxValue {
			return fmt.Errorf("slo: rule %q: min_value above max_value", r.Name)
		}
	default:
		return fmt.Errorf("slo: rule %q: unknown kind %q", r.Name, r.Kind)
	}
	if r.ClearAfter <= 0 {
		ca := r.For
		if r.Window > ca {
			ca = r.Window
		}
		if ca <= 0 {
			ca = Duration(30 * time.Second)
		}
		r.ClearAfter = ca
	}
	return nil
}

// ruleFile is the on-disk shape of -slo-config.
type ruleFile struct {
	Rules []Rule `json:"rules"`
}

// LoadRules reads and validates a JSON rule file: either {"rules":[...]}
// or a bare array of rules.
func LoadRules(path string) ([]Rule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo: reading rules: %w", err)
	}
	return ParseRules(b)
}

// ParseRules parses and validates rule JSON.
func ParseRules(b []byte) ([]Rule, error) {
	var rf ruleFile
	if err := json.Unmarshal(b, &rf); err != nil {
		var bare []Rule
		if err2 := json.Unmarshal(b, &bare); err2 != nil {
			return nil, fmt.Errorf("slo: parsing rules: %w", err)
		}
		rf.Rules = bare
	}
	seen := make(map[string]bool, len(rf.Rules))
	for i := range rf.Rules {
		if err := rf.Rules[i].Validate(); err != nil {
			return nil, err
		}
		if seen[rf.Rules[i].Name] {
			return nil, fmt.Errorf("slo: duplicate rule name %q", rf.Rules[i].Name)
		}
		seen[rf.Rules[i].Name] = true
	}
	return rf.Rules, nil
}

// DefaultRules is the built-in rule set every daemon runs when no
// -slo-config is given: generous thresholds meant to stay silent on a
// healthy deployment and fire on order-of-magnitude regressions.
func DefaultRules() []Rule {
	rules := []Rule{
		{
			Name:        "depot-latency-p99",
			Severity:    SeverityCritical,
			Kind:        KindLatencyQuantile,
			Metric:      obs.MIBPDepotMs,
			Quantile:    0.99,
			ThresholdMs: 2500,
			Window:      Duration(time.Minute),
			For:         Duration(10 * time.Second),
			ClearAfter:  Duration(30 * time.Second),
			MinCount:    20,
		},
		{
			Name:        "ibp-error-ratio",
			Severity:    SeverityCritical,
			Kind:        KindErrorRate,
			ErrorMetric: obs.MIBPOpErrors,
			TotalMetric: obs.MIBPOpMs,
			MaxRatio:    0.5,
			Window:      Duration(time.Minute),
			For:         Duration(10 * time.Second),
			ClearAfter:  Duration(30 * time.Second),
			MinCount:    20,
		},
		{
			// Shed-to-served ratio: shed requests never reach dispatch, so
			// the denominator counts only the work that got through. A
			// sustained shed volume above a quarter of served volume means
			// the depot is in real overload, not absorbing a blip.
			Name:        "ibp-shed-rate",
			Severity:    SeverityWarn,
			Kind:        KindErrorRate,
			ErrorMetric: obs.MIBPShed,
			TotalMetric: obs.MIBPOpMs,
			MaxRatio:    0.25,
			Window:      Duration(time.Minute),
			For:         Duration(10 * time.Second),
			ClearAfter:  Duration(30 * time.Second),
			MinCount:    20,
		},
		{
			// Runtime pathology degrades /healthz like any request-path
			// burn: a process pausing 250ms+ for GC at p99 is effectively
			// down for latency-sensitive browsing no matter what its
			// request metrics claim.
			Name:        "runtime-gc-pause-p99",
			Severity:    SeverityCritical,
			Kind:        KindLatencyQuantile,
			Metric:      obs.MRuntimeGCPauseMs,
			Quantile:    0.99,
			ThresholdMs: 250,
			Window:      Duration(time.Minute),
			For:         Duration(10 * time.Second),
			ClearAfter:  Duration(30 * time.Second),
			MinCount:    5,
		},
		{
			// Runnable goroutines waiting ~1s for a thread means the
			// process is CPU-starved; every deadline in flight is burning
			// in the scheduler queue, not in useful work.
			Name:        "runtime-sched-latency-p99",
			Severity:    SeverityCritical,
			Kind:        KindLatencyQuantile,
			Metric:      obs.MRuntimeSchedLatencyMs,
			Quantile:    0.99,
			ThresholdMs: 1000,
			Window:      Duration(time.Minute),
			For:         Duration(10 * time.Second),
			ClearAfter:  Duration(30 * time.Second),
			MinCount:    100,
		},
		{
			Name:        "lors-failover-burn",
			Severity:    SeverityWarn,
			Kind:        KindBurnRate,
			ErrorMetric: obs.MLorsFailedAttempts,
			TotalMetric: obs.MLorsReplicaTries,
			Objective:   0.9,
			FastWindow:  Duration(time.Minute),
			SlowWindow:  Duration(10 * time.Minute),
			FastBurn:    6,
			SlowBurn:    3,
			ClearAfter:  Duration(time.Minute),
			MinCount:    20,
		},
	}
	for i := range rules {
		// Defaults are authored valid; Validate also fills derived fields.
		if err := rules[i].Validate(); err != nil {
			panic(err)
		}
	}
	return rules
}

// Float is a convenience for authoring gauge_threshold bounds in code.
func Float(v float64) *float64 { return &v }

// FleetDefaultRules is the built-in rule set a fleet scraper evaluates
// against its cluster TSDB. replication is the deployment's intended
// replica count: coverage below it means some published exNode has lost
// redundancy and a single further failure can lose data availability.
func FleetDefaultRules(replication int) []Rule {
	if replication <= 0 {
		replication = 1
	}
	rules := []Rule{
		{
			// The fleet's reason to exist: replica coverage is recomputed
			// from live membership every scrape, so a depot death moves it
			// immediately — no For damping, the membership TTL already
			// absorbed the flap.
			Name:       "fleet-replica-coverage",
			Severity:   SeverityCritical,
			Kind:       KindGaugeThreshold,
			Scope:      ScopeFleet,
			Metric:     obs.MFleetCoverageMin,
			MinValue:   Float(float64(replication)),
			ClearAfter: Duration(2 * time.Second),
		},
		{
			// More than a quarter of depots down or degraded: the cluster
			// is losing capacity faster than replication can hide.
			Name:       "fleet-depots-degraded",
			Severity:   SeverityCritical,
			Kind:       KindGaugeThreshold,
			Scope:      ScopeFleet,
			Metric:     obs.MFleetDegradedRatio,
			MaxValue:   Float(0.25),
			ClearAfter: Duration(2 * time.Second),
		},
		{
			// Fleet-wide shed burn: members shedding work faster than the
			// error budget allows, cluster-wide — the overload is systemic,
			// not one hot depot.
			Name:        "fleet-shed-burn",
			Severity:    SeverityWarn,
			Kind:        KindBurnRate,
			Scope:       ScopeFleet,
			ErrorMetric: obs.MFleetShed,
			TotalMetric: obs.MFleetServed,
			Objective:   0.95,
			FastWindow:  Duration(time.Minute),
			SlowWindow:  Duration(10 * time.Minute),
			FastBurn:    6,
			SlowBurn:    3,
			ClearAfter:  Duration(time.Minute),
			MinCount:    20,
		},
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			panic(err)
		}
	}
	return rules
}
