package obs

// A fixed-memory, in-process time-series store over the metrics
// registry. The TSDB samples every registered metric on an interval into
// per-series ring buffers with tiered downsampling (by default 1 s
// resolution for 5 minutes and 10 s resolution for 1 hour), turning the
// instantaneous /metrics snapshot into enough history to answer "has
// depot p99 degraded over the last ten minutes?" — the question the SLO
// engine (internal/obs/slo) asks on every evaluation, and the one lftop's
// history mode renders as sparklines.
//
// Counters and gauges are stored as raw sampled values; histograms store
// the cumulative per-bucket counts, so any two samples subtract into an
// exact distribution of the observations between them. Because every
// series is cumulative, downsampling is pure decimation: the coarse tier
// keeps one sample per step and loses no information a rate or windowed
// quantile query needs. All memory is allocated up front when a series is
// first seen; steady-state sampling reuses the rings.
//
// The store is nil-safe throughout: with -metrics-addr off no TSDB is
// constructed, and a nil *TSDB samples nothing, answers empty, and spawns
// nothing — the off path stays zero-goroutine and zero-alloc (pinned by
// TestTSDBOffPathAllocs).

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point is one sample of a series: unix-millisecond timestamp and value.
// For histogram series the value is the cumulative observation count.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Tier is one retention tier of the TSDB: a ring of Slots samples spaced
// Step apart, covering Step×Slots of history.
type Tier struct {
	Step  time.Duration `json:"step"`
	Slots int           `json:"slots"`
}

// Span is the history window the tier covers.
func (t Tier) Span() time.Duration { return t.Step * time.Duration(t.Slots) }

// DefaultTiers returns the standard two-tier layout scaled to the
// sampling interval: full resolution for 300 samples, then 10× coarser
// for 360 samples. At the default 1 s interval that is 1s×5m + 10s×1h,
// the layout named in docs/OBSERVABILITY.md.
func DefaultTiers(step time.Duration) []Tier {
	if step <= 0 {
		step = time.Second
	}
	return []Tier{
		{Step: step, Slots: 300},
		{Step: 10 * step, Slots: 360},
	}
}

// TSDBConfig configures NewTSDB.
type TSDBConfig struct {
	// Registry to sample; nil means Default().
	Registry *Registry
	// Tiers of retention, finest first. Empty means DefaultTiers(1s).
	Tiers []Tier
	// PreSample, when set, runs synchronously at the top of every sampling
	// pass, before the registry is read — the hook the runtime harvester
	// (internal/obs/prof) refreshes the runtime.* families from, so every
	// retained sample sees runtime state no older than the tick.
	PreSample func()
	// OnSample, when set, runs synchronously after every sampling pass —
	// the hook the SLO engine evaluates from, so evaluation needs no
	// second timer goroutine and always sees a fresh sample.
	OnSample func()
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// tsdbSeries is the retained history of one metric name across all tiers.
type tsdbSeries struct {
	name   string
	hist   bool
	bounds []float64 // histogram upper bounds (shared, not owned)
	tiers  []*tsdbRing
}

// tsdbRing is one tier's ring for one series. Scalar series fill times
// and vals; histogram series fill times, counts, sums, and buckets
// (cumulative per-bucket observation counts, preallocated per slot).
type tsdbRing struct {
	stepMs  int64
	times   []int64
	vals    []float64
	counts  []int64
	sums    []float64
	buckets [][]int64
	pos, n  int
	lastT   int64 // timestamp of the newest accepted sample
}

// TSDB is the fixed-memory time-series store. All methods are safe for
// concurrent use and on a nil receiver.
type TSDB struct {
	reg       *Registry
	tiers     []Tier
	preSample func()
	onSample  func()
	clock     func() time.Time

	mu     sync.RWMutex
	series map[string]*tsdbSeries

	// sampleMu serializes Sample passes: Run owns the only periodic
	// caller, but Sample is exported and must stay safe under direct
	// concurrent calls (the scratch buffers below are shared).
	sampleMu sync.Mutex
	// scratch buffers reused across sampling passes to keep the
	// steady-state pass allocation-light.
	scratchNames []string
	scratchVals  []scratchMetric
	scratchSnaps []scratchSnapshot
}

type scratchMetric struct {
	name string
	m    any
}

type scratchSnapshot struct {
	prefix string
	fn     func() map[string]float64
}

// NewTSDB builds a store over the registry. It starts no goroutines; the
// caller drives it with Sample or Run.
func NewTSDB(cfg TSDBConfig) *TSDB {
	reg := cfg.Registry
	if reg == nil {
		reg = Default()
	}
	tiers := cfg.Tiers
	if len(tiers) == 0 {
		tiers = DefaultTiers(time.Second)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &TSDB{
		reg:       reg,
		tiers:     tiers,
		preSample: cfg.PreSample,
		onSample:  cfg.OnSample,
		clock:     clock,
		series:    make(map[string]*tsdbSeries),
	}
}

// Tiers returns the retention layout.
func (db *TSDB) Tiers() []Tier {
	if db == nil {
		return nil
	}
	return db.tiers
}

// Run samples every interval until stop closes. It blocks; callers own
// the goroutine (slo.Start wires this behind -metrics-addr).
func (db *TSDB) Run(stop <-chan struct{}, interval time.Duration) {
	if db == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			db.Sample()
		}
	}
}

// Sample records one pass over the registry into every series, then runs
// the OnSample hook. No-op on nil.
func (db *TSDB) Sample() {
	if db == nil {
		return
	}
	now := db.clock().UnixMilli()
	db.sampleMu.Lock()
	defer db.sampleMu.Unlock()

	// The PreSample hook runs under sampleMu so harvesters that keep
	// previous-snapshot state need no locking of their own.
	if db.preSample != nil {
		db.preSample()
	}

	// Collect metric references and snapshot closures under the registry
	// lock, then drop it: closures take component locks (agent.Stats,
	// depot.Stat) that must not nest under the registry's.
	db.scratchVals = db.scratchVals[:0]
	db.scratchSnaps = db.scratchSnaps[:0]
	db.reg.mu.Lock()
	for name, m := range db.reg.metrics {
		db.scratchVals = append(db.scratchVals, scratchMetric{name, m})
	}
	for prefix, fn := range db.reg.snapshots {
		db.scratchSnaps = append(db.scratchSnaps, scratchSnapshot{prefix, fn})
	}
	db.reg.mu.Unlock()

	db.mu.Lock()
	for _, sm := range db.scratchVals {
		switch v := sm.m.(type) {
		case *Counter:
			db.record(sm.name, now, float64(v.Value()))
		case *Gauge:
			db.record(sm.name, now, float64(v.Value()))
		case *Histogram:
			db.recordHist(sm.name, now, v)
		}
	}
	db.mu.Unlock()

	// Snapshot closures run outside both locks, then their values are
	// recorded like gauges.
	for _, ss := range db.scratchSnaps {
		vals := ss.fn()
		db.mu.Lock()
		for k, v := range vals {
			db.record(ss.prefix+"."+k, now, v)
		}
		db.mu.Unlock()
	}

	if db.onSample != nil {
		db.onSample()
	}
}

// record stores one scalar sample. Caller holds db.mu.
func (db *TSDB) record(name string, now int64, v float64) {
	s := db.series[name]
	if s == nil {
		s = db.newSeries(name, false, nil)
	}
	for i, r := range s.tiers {
		if !r.accepts(now, i == 0) {
			continue
		}
		r.times[r.pos] = now
		r.vals[r.pos] = v
		r.advance(now)
	}
}

// recordHist stores one histogram sample: cumulative count, sum, and
// per-bucket counts. Caller holds db.mu.
func (db *TSDB) recordHist(name string, now int64, h *Histogram) {
	s := db.series[name]
	if s == nil {
		s = db.newSeries(name, true, h.bounds)
	}
	count := h.count.Load()
	sum := math.Float64frombits(h.sum.Load())
	for i, r := range s.tiers {
		if !r.accepts(now, i == 0) {
			continue
		}
		r.times[r.pos] = now
		r.counts[r.pos] = count
		r.sums[r.pos] = sum
		slot := r.buckets[r.pos]
		for j := range h.counts {
			slot[j] = h.counts[j].Load()
		}
		r.advance(now)
	}
}

// accepts reports whether the ring should take a sample at now. The
// finest tier takes every pass; coarser tiers decimate, keeping one
// sample per step (with 10% tolerance for ticker jitter).
func (r *tsdbRing) accepts(now int64, finest bool) bool {
	if finest || r.lastT == 0 {
		return true
	}
	return now-r.lastT >= r.stepMs-r.stepMs/10
}

func (r *tsdbRing) advance(now int64) {
	r.lastT = now
	r.pos = (r.pos + 1) % len(r.times)
	if r.n < len(r.times) {
		r.n++
	}
}

// newSeries allocates the full tiered storage for one name. Caller holds
// db.mu.
func (db *TSDB) newSeries(name string, hist bool, bounds []float64) *tsdbSeries {
	s := &tsdbSeries{name: name, hist: hist, bounds: bounds}
	for _, t := range db.tiers {
		r := &tsdbRing{
			stepMs: t.Step.Milliseconds(),
			times:  make([]int64, t.Slots),
		}
		if hist {
			r.counts = make([]int64, t.Slots)
			r.sums = make([]float64, t.Slots)
			r.buckets = make([][]int64, t.Slots)
			slab := make([]int64, t.Slots*(len(bounds)+1))
			for i := range r.buckets {
				r.buckets[i] = slab[i*(len(bounds)+1) : (i+1)*(len(bounds)+1)]
			}
		} else {
			r.vals = make([]float64, t.Slots)
		}
		s.tiers = append(s.tiers, r)
	}
	db.series[name] = s
	return s
}

// SeriesInfo describes one retained series for the /debug/tsdb index.
type SeriesInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // "scalar" | "histogram"
	Samples int    `json:"samples"`
}

// Names returns the retained series names, sorted.
func (db *TSDB) Names() []string {
	if db == nil {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.series))
	for name := range db.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Series returns the index of retained series, sorted by name.
func (db *TSDB) Series() []SeriesInfo {
	if db == nil {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]SeriesInfo, 0, len(db.series))
	for name, s := range db.series {
		kind := "scalar"
		if s.hist {
			kind = "histogram"
		}
		out = append(out, SeriesInfo{Name: name, Kind: kind, Samples: s.tiers[0].n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// pickRing chooses the finest tier whose retention still covers since;
// if none does, the coarsest. Caller holds db.mu (read).
func (s *tsdbSeries) pickRing(now, since int64) *tsdbRing {
	for _, r := range s.tiers {
		span := r.stepMs * int64(len(r.times))
		if now-since <= span {
			return r
		}
	}
	return s.tiers[len(s.tiers)-1]
}

// scan calls fn for each retained sample with time >= since, oldest
// first. Caller holds db.mu (read).
func (r *tsdbRing) scan(since int64, fn func(i int)) {
	start := r.pos - r.n
	if start < 0 {
		start += len(r.times)
	}
	for k := 0; k < r.n; k++ {
		i := (start + k) % len(r.times)
		if r.times[i] >= since {
			fn(i)
		}
	}
}

// Points returns the raw samples of a series since the given time
// (oldest first), choosing the finest tier that covers the window. For
// histogram series the value is the cumulative observation count.
func (db *TSDB) Points(name string, since time.Time) []Point {
	if db == nil {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[name]
	if s == nil {
		return nil
	}
	r := s.pickRing(db.clock().UnixMilli(), since.UnixMilli())
	var out []Point
	r.scan(since.UnixMilli(), func(i int) {
		v := 0.0
		if s.hist {
			v = float64(r.counts[i])
		} else {
			v = r.vals[i]
		}
		out = append(out, Point{T: r.times[i], V: v})
	})
	return out
}

// Latest returns the newest sample of a series.
func (db *TSDB) Latest(name string) (Point, bool) {
	if db == nil {
		return Point{}, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[name]
	if s == nil || s.tiers[0].n == 0 {
		return Point{}, false
	}
	r := s.tiers[0]
	i := r.pos - 1
	if i < 0 {
		i += len(r.times)
	}
	if s.hist {
		return Point{T: r.times[i], V: float64(r.counts[i])}, true
	}
	return Point{T: r.times[i], V: r.vals[i]}, true
}

// counterIncrease folds a cumulative series into its total increase,
// Prometheus-style: a decrease between adjacent samples is a counter
// reset, and the post-reset value is the increase since the reset.
func counterIncrease(pts []Point) float64 {
	inc := 0.0
	for i := 1; i < len(pts); i++ {
		if d := pts[i].V - pts[i-1].V; d >= 0 {
			inc += d
		} else {
			inc += pts[i].V
		}
	}
	return inc
}

// Delta returns the reset-aware increase of a cumulative series over the
// trailing window, and the number of samples it was computed from.
func (db *TSDB) Delta(name string, window time.Duration) (float64, int) {
	pts := db.windowPoints(name, window)
	if len(pts) < 2 {
		return 0, len(pts)
	}
	return counterIncrease(pts), len(pts)
}

// Rate returns the reset-aware per-second rate of a cumulative series
// over the trailing window. ok is false with fewer than two samples.
func (db *TSDB) Rate(name string, window time.Duration) (float64, bool) {
	pts := db.windowPoints(name, window)
	if len(pts) < 2 {
		return 0, false
	}
	dt := float64(pts[len(pts)-1].T-pts[0].T) / 1000
	if dt <= 0 {
		return 0, false
	}
	return counterIncrease(pts) / dt, true
}

func (db *TSDB) windowPoints(name string, window time.Duration) []Point {
	if db == nil {
		return nil
	}
	since := db.clock().Add(-window)
	return db.Points(name, since)
}

// QuantileOver estimates the q-th quantile of a histogram series over
// the trailing window by subtracting the oldest in-window sample's
// cumulative buckets from the newest and interpolating inside the
// containing bucket, exactly as Histogram.Quantile does for the
// all-time distribution. The second return is the number of
// observations the window held: callers gate on it (an empty window has
// no quantile). A counter reset inside the window falls back to the
// newest sample's full distribution.
func (db *TSDB) QuantileOver(name string, q float64, window time.Duration) (float64, int64) {
	if db == nil {
		return 0, 0
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[name]
	if s == nil || !s.hist {
		return 0, 0
	}
	now := db.clock().UnixMilli()
	since := now - window.Milliseconds()
	r := s.pickRing(now, since)
	first, last := -1, -1
	r.scan(since, func(i int) {
		if first < 0 {
			first = i
		}
		last = i
	})
	if last < 0 {
		return 0, 0
	}
	nb := len(s.bounds) + 1
	delta := make([]int64, nb)
	count := r.counts[last]
	if first != last {
		count -= r.counts[first]
	} else {
		first = -1
	}
	if count < 0 { // reset inside the window: use the newest alone
		first = -1
		count = r.counts[last]
	}
	for j := 0; j < nb; j++ {
		delta[j] = r.buckets[last][j]
		if first >= 0 {
			delta[j] -= r.buckets[first][j]
		}
	}
	if count <= 0 {
		return 0, 0
	}
	return quantileFromBuckets(s.bounds, delta, count, q), count
}

// quantileFromBuckets interpolates the q-th quantile of a bucketed
// distribution (bounds ascending, counts per bucket with one overflow
// bucket appended, total = sum of counts).
func quantileFromBuckets(bounds []float64, counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	cum := int64(0)
	for i, n := range counts {
		if n <= 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(bounds) {
				// Overflow bucket: saturate at the largest bound.
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return bounds[len(bounds)-1]
}

// RateSeries renders a cumulative series as pointwise per-second rates
// between consecutive samples (reset-aware), for sparklines.
func (db *TSDB) RateSeries(name string, since time.Time) []Point {
	pts := db.Points(name, since)
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := float64(pts[i].T-pts[i-1].T) / 1000
		if dt <= 0 {
			continue
		}
		d := pts[i].V - pts[i-1].V
		if d < 0 {
			d = pts[i].V
		}
		out = append(out, Point{T: pts[i].T, V: d / dt})
	}
	return out
}

// QuantileSeries renders a histogram series as a sliding-window quantile
// evaluated at each retained sample time since the given time.
func (db *TSDB) QuantileSeries(name string, q float64, window time.Duration, since time.Time) []Point {
	if db == nil {
		return nil
	}
	db.mu.RLock()
	s := db.series[name]
	db.mu.RUnlock()
	if s == nil || !s.hist {
		return nil
	}
	raw := db.Points(name, since)
	out := make([]Point, 0, len(raw))
	now := db.clock()
	for _, p := range raw {
		back := now.Sub(time.UnixMilli(p.T)) + window
		v, n := db.QuantileOver(name, q, back)
		if n == 0 {
			continue
		}
		out = append(out, Point{T: p.T, V: v})
	}
	return out
}

// DepotLatencyBias builds a replica-selection score from the depot
// latency history: each depot scores its p99 round-trip over the window
// (ms), unknown depots score 0 (no history is no penalty). Wire it into
// lors.DownloadOptions.Prefer (lower is better) so downloads drift away
// from depots whose latency has regressed. Returns nil on a nil TSDB so
// callers can pass it through unconditionally.
func DepotLatencyBias(db *TSDB, window time.Duration) func(depot string) float64 {
	if db == nil {
		return nil
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	return func(depot string) float64 {
		v, n := db.QuantileOver(Label(MIBPDepotMs, "depot", depot), 0.99, window)
		if n == 0 {
			return 0
		}
		return v
	}
}

// tsdbResponse is the JSON shape of one /debug/tsdb series query.
type tsdbResponse struct {
	Name   string  `json:"name"`
	Agg    string  `json:"agg"`
	Points []Point `json:"points"`
}

// tsdbIndex is the JSON shape of the /debug/tsdb series listing.
type tsdbIndex struct {
	Tiers  []tsdbTierInfo `json:"tiers"`
	Series []SeriesInfo   `json:"series"`
}

type tsdbTierInfo struct {
	StepMs int64 `json:"step_ms"`
	Slots  int   `json:"slots"`
}

// parseSince interprets the since query parameter: a Go duration
// ("5m", "30s") meaning "this far back", or absolute unix milliseconds.
// Empty means the full finest-tier window.
func parseSince(v string, now time.Time, fallback time.Duration) (time.Time, bool) {
	if v == "" {
		return now.Add(-fallback), true
	}
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		return now.Add(-d), true
	}
	if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.UnixMilli(ms), true
	}
	return time.Time{}, false
}

// Handler serves the store: no parameters list the retained series;
// ?name=<series>&since=<dur|unixms>&agg=raw|rate|p50|p95|p99[&window=<dur>]
// returns points. See docs/OBSERVABILITY.md for the query grammar.
func (db *TSDB) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if db == nil {
			_ = enc.Encode(tsdbIndex{})
			return
		}
		q := req.URL.Query()
		name := q.Get("name")
		if name == "" {
			idx := tsdbIndex{Series: db.Series()}
			for _, t := range db.tiers {
				idx.Tiers = append(idx.Tiers, tsdbTierInfo{StepMs: t.Step.Milliseconds(), Slots: t.Slots})
			}
			_ = enc.Encode(idx)
			return
		}
		now := db.clock()
		fallback := db.tiers[0].Span()
		since, ok := parseSince(q.Get("since"), now, fallback)
		if !ok {
			http.Error(w, "bad since (want duration or unix ms)", http.StatusBadRequest)
			return
		}
		window := time.Minute
		if v := q.Get("window"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				http.Error(w, "bad window (want duration)", http.StatusBadRequest)
				return
			}
			window = d
		}
		agg := q.Get("agg")
		if agg == "" {
			agg = "raw"
		}
		resp := tsdbResponse{Name: name, Agg: agg}
		switch {
		case agg == "raw":
			resp.Points = db.Points(name, since)
		case agg == "rate":
			resp.Points = db.RateSeries(name, since)
		case strings.HasPrefix(agg, "p"):
			pct, err := strconv.ParseFloat(agg[1:], 64)
			if err != nil || pct <= 0 || pct >= 100 {
				http.Error(w, "bad agg (want raw|rate|p<1-99>)", http.StatusBadRequest)
				return
			}
			resp.Points = db.QuantileSeries(name, pct/100, window, since)
		default:
			http.Error(w, "bad agg (want raw|rate|p<1-99>)", http.StatusBadRequest)
			return
		}
		_ = enc.Encode(resp)
	})
}
