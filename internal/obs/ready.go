package obs

// Startup readiness, served at /readyz. Liveness (/healthz) answers "is
// the process up and within SLO"; readiness answers "has it finished
// starting" — a depot that is still scanning its root, a server agent
// still precomputing, a steward still adopting are alive but not yet
// ready, and load balancers / smoke tests should wait on /readyz rather
// than sleep on log lines. Nil-safe throughout so commands can hold one
// unconditionally.

import (
	"sync"
	"sync/atomic"
)

// Readiness is a one-way ready latch with a human-readable startup
// phase. The zero value is "starting".
type Readiness struct {
	ready  atomic.Bool
	mu     sync.Mutex
	status string
}

// NewReadiness returns a not-ready latch.
func NewReadiness() *Readiness { return &Readiness{} }

// SetStatus records the current startup phase (shown in the /readyz 503
// body while starting). No-op after MarkReady or on nil.
func (r *Readiness) SetStatus(phase string) {
	if r == nil || r.ready.Load() {
		return
	}
	r.mu.Lock()
	r.status = phase
	r.mu.Unlock()
}

// MarkReady flips the latch; /readyz turns 200. Idempotent, nil-safe.
func (r *Readiness) MarkReady() {
	if r == nil {
		return
	}
	r.ready.Store(true)
}

// Ready reports whether MarkReady has run. A nil latch reports true:
// commands that never wire readiness are considered always-ready, so
// /readyz stays useful as a plain liveness fallback.
func (r *Readiness) Ready() bool {
	return r == nil || r.ready.Load()
}

// Status returns the last recorded startup phase.
func (r *Readiness) Status() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}
