package obs

// Deadline propagation: the overload-control half of context propagation.
//
// A client whose context carries a deadline tells the server how much time
// its request has left with one optional trailing line-protocol token
// "deadline=<ms>" (remaining milliseconds, base 10). Servers re-derive an
// absolute deadline from their own clock, so only the remaining budget —
// not a wall-clock timestamp — crosses the wire and clock skew between
// hosts cannot invert it. A depot or server agent that sees an exhausted
// budget drops the work instead of serving a client that has already
// moved on.
//
// The token rides next to the trace= token and follows the same
// compatibility contract: it is emitted ONLY when propagation is enabled
// (Serve / SetPropagation), pre-propagation servers never see it, and
// with propagation off DeadlineToken returns "" without allocating —
// TestDeadlineTokenDisabledAllocs pins that down. On the wire the client
// emits "... deadline=<ms> trace=<tid>/<sid>"; servers strip trace first
// (it is last), then deadline.

import (
	"context"
	"strconv"
	"strings"
	"time"
)

// deadlinePrefix marks the optional trailing deadline field on line
// protocols.
const deadlinePrefix = "deadline="

// DeadlineToken returns the request-line token "deadline=<ms>" for the
// remaining budget of ctx's deadline, or "" when propagation is disabled
// or ctx has no deadline. An already-expired deadline yields
// "deadline=0", telling the server to drop the request outright. The ""
// path performs no allocation.
func DeadlineToken(ctx context.Context) string {
	if !propagationOn.Load() {
		return ""
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return ""
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 0 {
		ms = 0
	}
	return deadlinePrefix + strconv.FormatInt(ms, 10)
}

// ParseDeadlineToken parses one request-line field. ok is true only for a
// well-formed "deadline=<ms>" token with a non-negative integer budget;
// any other field returns false.
func ParseDeadlineToken(field string) (time.Duration, bool) {
	if !strings.HasPrefix(field, deadlinePrefix) {
		return 0, false
	}
	ms, err := strconv.ParseInt(field[len(deadlinePrefix):], 10, 64)
	if err != nil || ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// StripDeadlineToken removes a trailing deadline token from parsed
// request fields, returning the remaining fields and the remaining
// budget (if present). Servers call it after StripTraceToken (the trace
// token is emitted last) and before argument-count checks.
func StripDeadlineToken(fields []string) ([]string, time.Duration, bool) {
	if len(fields) == 0 {
		return fields, 0, false
	}
	d, ok := ParseDeadlineToken(fields[len(fields)-1])
	if !ok {
		return fields, 0, false
	}
	return fields[:len(fields)-1], d, true
}

// LineTokens returns the optional trailing tokens for one request line:
// "" (no allocation) when propagation is off or ctx carries neither a
// deadline nor a span, otherwise " deadline=<ms>", " trace=<tid>/<sid>",
// or both in that order, with a leading space so callers can append it
// directly before the terminating newline.
func LineTokens(ctx context.Context) string {
	if !propagationOn.Load() {
		return ""
	}
	dtok := DeadlineToken(ctx)
	ttok := TraceToken(ctx)
	switch {
	case dtok == "" && ttok == "":
		return ""
	case dtok == "":
		return " " + ttok
	case ttok == "":
		return " " + dtok
	default:
		return " " + dtok + " " + ttok
	}
}

// DeadlineContext applies a remaining budget parsed off the wire to a
// server-side context: it returns ctx bounded by now+remaining and the
// cancel func that must be called when request handling ends. With
// ok=false it returns ctx unchanged and a no-op cancel, so call sites
// need no branch.
func DeadlineContext(ctx context.Context, remaining time.Duration, ok bool) (context.Context, context.CancelFunc) {
	if !ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, remaining)
}
