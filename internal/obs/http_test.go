package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpointJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("ibp.bytes_in").Add(42)
	r.Histogram(Label(MIBPOpMs, "op", "LOAD"), LatencyBucketsMs...).Observe(3.5)
	r.RegisterSnapshot("agent", func() map[string]float64 {
		return map[string]float64{"cache.hit_rate": 0.75}
	})
	tr := NewTracer(8)
	_, s := tr.StartSpan(context.Background(), "root")
	s.Finish()

	srv := httptest.NewServer(NewMux(r, tr))
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if snap["ibp.bytes_in"] != 42.0 {
		t.Fatalf("counter missing: %v", snap)
	}
	hist, ok := snap["ibp.op.ms{op=LOAD}"].(map[string]any)
	if !ok {
		t.Fatalf("histogram missing: %v", snap)
	}
	for _, k := range []string{"count", "sum", "p50", "p95", "p99", "buckets"} {
		if _, ok := hist[k]; !ok {
			t.Fatalf("histogram snapshot missing %q: %v", k, hist)
		}
	}
	if snap["agent.cache.hit_rate"] != 0.75 {
		t.Fatalf("snapshot bridge missing: %v", snap)
	}

	// /debug/vars serves the same metrics in expvar's flat-object shape,
	// merged with the stdlib expvar variables.
	vars := get(t, srv.URL+"/debug/vars")
	var vm map[string]any
	if err := json.Unmarshal(vars, &vm); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, vars)
	}
	if _, ok := vm["memstats"]; !ok {
		t.Fatal("/debug/vars must include stdlib expvar memstats")
	}
	if vm["ibp.bytes_in"] != 42.0 {
		t.Fatalf("/debug/vars must include registry metrics: %v", vm["ibp.bytes_in"])
	}

	// /debug/traces dumps completed spans.
	traces := get(t, srv.URL+"/debug/traces")
	var spans []map[string]any
	if err := json.Unmarshal(traces, &spans); err != nil {
		t.Fatalf("/debug/traces is not JSON: %v\n%s", err, traces)
	}
	if len(spans) != 1 || spans[0]["name"] != "root" {
		t.Fatalf("traces = %v", spans)
	}

	// /debug/pprof/ responds with the profile index.
	if !strings.Contains(string(get(t, srv.URL+"/debug/pprof/")), "goroutine") {
		t.Fatal("/debug/pprof/ must serve the pprof index")
	}

	if strings.TrimSpace(string(get(t, srv.URL+"/healthz"))) != "ok" {
		t.Fatal("/healthz must answer ok")
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	defer SetPropagation(false)
	r := NewRegistry()
	r.Counter("x").Inc()
	srv, err := Serve("127.0.0.1:0", r, NewTracer(4))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if !PropagationEnabled() {
		t.Fatal("Serve must enable trace propagation")
	}
	body := get(t, "http://"+srv.Addr()+"/metrics")
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap["x"] != 1.0 {
		t.Fatalf("snapshot = %v", snap)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Close is nil-safe so commands can hold a handle unconditionally.
	var nilSrv *Server
	if err := nilSrv.Close(context.Background()); err != nil {
		t.Fatalf("nil close: %v", err)
	}
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return body
}
