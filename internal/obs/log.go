package obs

// Structured, leveled event logging correlated with the active trace.
//
// Every event carries a monotonic sequence number, a level, a short
// dotted event name (the "what"), free key=value fields (the "which"),
// and — when the context carries a span — the active trace and span IDs,
// so a log line can be joined against /debug/traces and against the other
// hosts' logs sharing the trace. Events render to the writer as one line
// each, either key=value (human tails) or JSON (machine shippers), and
// are additionally retained in a bounded ring served at /debug/events,
// NetLogger-style: ssh-less forensics for "what was this process doing
// around the slow frame".

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders event severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel parses "debug" | "info" | "warn" | "error".
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// Log line formats.
const (
	// FormatKV renders events as space-separated key=value lines.
	FormatKV = "kv"
	// FormatJSON renders events as one JSON object per line.
	FormatJSON = "json"
)

// Event is one recorded log event.
type Event struct {
	// Seq is a per-logger monotonic sequence number (gap-free while the
	// process lives; readers use it to detect ring overwrites).
	Seq uint64 `json:"seq"`
	// Time is the event timestamp.
	Time time.Time `json:"time"`
	// Level is the severity.
	Level string `json:"level"`
	// Name is the dotted event name ("ibp.serve", "lors.failover", ...).
	// Canonical names are declared in names.go next to the metrics.
	Name string `json:"event"`
	// TraceID/SpanID tie the event to the active span, zero when the
	// context carried none.
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
	// Fields are the event's key=value pairs, in call order.
	Fields []Field `json:"fields,omitempty"`
}

// Field is one ordered key=value pair of an event.
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Logger is a leveled, trace-correlated event log. The zero value is
// unusable; use NewLogger or DefaultLogger. A nil logger drops every
// event, so optional instrumentation needs no guards.
type Logger struct {
	level  atomic.Int32
	format atomic.Value // string: FormatKV | FormatJSON
	seq    atomic.Uint64

	mu   sync.Mutex
	w    io.Writer
	ring []Event
	pos  int
	n    int
}

// NewLogger builds a logger writing to w (nil silences line output; the
// ring still fills) retaining up to capacity events (default 1024).
func NewLogger(w io.Writer, capacity int) *Logger {
	if capacity <= 0 {
		capacity = 1024
	}
	l := &Logger{w: w, ring: make([]Event, capacity)}
	l.level.Store(int32(LevelInfo))
	l.format.Store(FormatKV)
	return l
}

var (
	defLoggerOnce sync.Once
	defLogger     *Logger
)

// DefaultLogger returns the process-wide logger (stderr, 1024-event
// ring), the one -metrics-addr endpoints expose at /debug/events.
func DefaultLogger() *Logger {
	defLoggerOnce.Do(func() { defLogger = NewLogger(os.Stderr, 1024) })
	return defLogger
}

// ConfigureDefaultLogger applies the -log-level/-log-format flag values to
// the process-wide logger.
func ConfigureDefaultLogger(level, format string) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	switch format {
	case FormatKV, FormatJSON:
	default:
		return fmt.Errorf("obs: unknown log format %q (want kv|json)", format)
	}
	l := DefaultLogger()
	l.SetLevel(lv)
	l.SetFormat(format)
	return nil
}

// SetLevel sets the minimum recorded level.
func (l *Logger) SetLevel(lv Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(lv))
}

// Level returns the minimum recorded level.
func (l *Logger) Level() Level {
	if l == nil {
		return LevelInfo
	}
	return Level(l.level.Load())
}

// SetFormat selects the line rendering (FormatKV or FormatJSON; anything
// else is ignored).
func (l *Logger) SetFormat(format string) {
	if l == nil || (format != FormatKV && format != FormatJSON) {
		return
	}
	l.format.Store(format)
}

// Enabled reports whether events at lv would be recorded — cheap enough
// to guard expensive attribute construction.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.level.Load())
}

// Debug records a debug event. kv is alternating key, value pairs (an odd
// trailing key gets an empty value).
func (l *Logger) Debug(ctx context.Context, name string, kv ...string) {
	l.log(ctx, LevelDebug, name, kv)
}

// Info records an info event.
func (l *Logger) Info(ctx context.Context, name string, kv ...string) {
	l.log(ctx, LevelInfo, name, kv)
}

// Warn records a warning event.
func (l *Logger) Warn(ctx context.Context, name string, kv ...string) {
	l.log(ctx, LevelWarn, name, kv)
}

// Error records an error event.
func (l *Logger) Error(ctx context.Context, name string, kv ...string) {
	l.log(ctx, LevelError, name, kv)
}

func (l *Logger) log(ctx context.Context, lv Level, name string, kv []string) {
	if !l.Enabled(lv) {
		return
	}
	ev := Event{
		Seq:   l.seq.Add(1),
		Time:  time.Now(),
		Level: lv.String(),
		Name:  name,
	}
	if tc, ok := ContextFrom(ctx); ok {
		ev.TraceID = tc.TraceID
		ev.SpanID = tc.SpanID
	}
	if len(kv) > 0 {
		if len(kv)%2 != 0 {
			kv = append(kv, "")
		}
		ev.Fields = make([]Field, 0, len(kv)/2)
		for i := 0; i < len(kv); i += 2 {
			ev.Fields = append(ev.Fields, Field{Key: kv[i], Value: kv[i+1]})
		}
	}
	line := l.render(ev)
	l.mu.Lock()
	l.ring[l.pos] = ev
	l.pos = (l.pos + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	w := l.w
	if w != nil {
		_, _ = io.WriteString(w, line)
	}
	l.mu.Unlock()
}

// render produces the newline-terminated output line for an event.
func (l *Logger) render(ev Event) string {
	if f, _ := l.format.Load().(string); f == FormatJSON {
		b, err := json.Marshal(ev)
		if err != nil {
			return ""
		}
		return string(b) + "\n"
	}
	var b strings.Builder
	b.Grow(96)
	b.WriteString("ts=")
	b.WriteString(ev.Time.Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(ev.Level)
	b.WriteString(" event=")
	b.WriteString(ev.Name)
	if ev.TraceID != 0 {
		b.WriteString(" trace=")
		b.WriteString(strconv.FormatUint(ev.TraceID, 16))
		b.WriteString("/")
		b.WriteString(strconv.FormatUint(ev.SpanID, 16))
	}
	for _, f := range ev.Fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(f.Value))
	}
	b.WriteByte('\n')
	return b.String()
}

// quoteIfNeeded quotes values containing spaces, quotes, or control
// characters so kv lines stay machine-splittable.
func quoteIfNeeded(v string) string {
	if strings.ContainsAny(v, " \t\n\r\"=") || v == "" {
		return strconv.Quote(v)
	}
	return v
}

// Events returns the retained events, oldest first.
func (l *Logger) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	start := l.pos - l.n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Handler serves the event ring as JSON, oldest first. The optional
// ?trace=<hex trace id> query filters to events of one trace.
func (l *Logger) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		events := l.Events()
		if v := r.URL.Query().Get("trace"); v != "" {
			id, err := strconv.ParseUint(v, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			kept := events[:0]
			for _, ev := range events {
				if ev.TraceID == id {
					kept = append(kept, ev)
				}
			}
			events = kept
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
}
