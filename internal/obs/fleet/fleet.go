// Package fleet is the cluster tier of the observability stack: one
// process (in practice the steward, behind -fleet-scrape) discovers
// every member of a deployment, scrapes each member's observability
// endpoint on a poll interval, and folds the results into a cluster
// TSDB of per-node series and fleet-wide aggregates that a fleet-scope
// SLO engine evaluates.
//
// Node-local observability answers "is this process healthy"; the
// questions the paper's deployment actually raises — is every published
// exNode still replication-factor covered, what fraction of the depot
// fabric is degraded, is the cluster shedding work faster than the
// error budget allows — only exist across processes. The fleet scraper
// owns exactly that cross-process view:
//
//   - Discovery: the L-Bone directory's /members sweep (every daemon
//     already heartbeats there for liveness) plus a static peer list
//     for processes that do not register.
//   - Scrape: parallel fan-out over the membership, each member under a
//     bounded per-peer deadline, pulling /metrics, /healthz,
//     /debug/alerts, and the /debug/tsdb index.
//   - Fold: reset-aware per-member counter deltas accumulate into
//     monotonic cluster series (fleet.shed, fleet.served, fleet.fps);
//     per-node gauges and p99s are mirrored under a node=<addr> label;
//     replica coverage is recomputed from live depot membership every
//     pass so a dying depot moves it immediately.
//   - Evaluate: a fleet-scope slo.Engine runs over the cluster TSDB
//     (slo.FleetDefaultRules by default), feeding the same alert
//     plumbing node rules use — /healthz degradation, slo.alert
//     events, flight-recorder captures — at cluster scope.
//
// /debug/fleet serves the health matrix (topology, per-node state,
// version, uptime, latency) plus the aggregates and active fleet
// alerts; /debug/fleet/tsdb serves the cluster TSDB with the standard
// query grammar. A nil *Fleet is inert: every method no-ops, and the
// disabled path allocates nothing.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lonviz/internal/lbone"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
)

// Member states in the health matrix.
const (
	StateUp       = "up"
	StateDegraded = "degraded"
	StateDown     = "down"
)

// Config configures New.
type Config struct {
	// Self is this process's own metrics address, reported in the
	// /debug/fleet topology (and scraped like any member when it also
	// appears in Peers).
	Self string
	// LBone, when set, is swept for members each pass: every registered
	// record carrying a MetricsAddr joins the fleet.
	LBone *lbone.Client
	// Peers are static metrics addresses scraped regardless of registry
	// state (never pruned).
	Peers []string
	// Interval is the poll interval (default 5s).
	Interval time.Duration
	// PeerTimeout bounds each member request (default
	// obs.DefaultPeerTimeout). The whole fan-out completes within
	// roughly one timeout, so a 10-member scrape fits one poll interval
	// even with members hanging.
	PeerTimeout time.Duration
	// Replication is the deployment's intended replica count, the floor
	// the fleet-replica-coverage rule holds fleet.replica.coverage.min
	// to (default 1). Ignored when Rules is set.
	Replication int
	// Rules overrides slo.FleetDefaultRules(Replication).
	Rules []slo.Rule
	// Coverage, when set, is called each pass with the depot service
	// addresses currently up and returns per-exNode replica coverage
	// (steward.ReplicaCoverage bound to the adopted set).
	Coverage func(upDepots map[string]bool) map[string]float64
	// OnMemberState is called (from the scrape pass; must not block) on
	// every member state transition. The steward triggers targeted
	// audits off depots going down.
	OnMemberState func(m Member, from string)
	// PruneAfter is how long a discovered member stays in the matrix
	// (marked down) after leaving the registry sweep before it is
	// dropped (default 5m).
	PruneAfter time.Duration
	// Registry receives the fleet's cluster series; nil means a fresh
	// registry with a raised label budget. Exposed for tests.
	Registry *obs.Registry
	// Tracer records fleet.scrape spans on passes with member
	// transitions; nil means obs.DefaultTracer().
	Tracer *obs.Tracer
	// Logger receives fleet.member events; nil means obs.DefaultLogger().
	Logger *obs.Logger
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// Member is one row of the health matrix.
type Member struct {
	// Addr is the member's metrics address — the scrape target and the
	// node=<addr> label value of its cluster series.
	Addr string `json:"addr"`
	// Kind is the member's directory kind (depot|edge|steward|agent),
	// or "peer" for static -fleet-peers entries.
	Kind string `json:"kind"`
	// ServiceAddr is the member's service endpoint from the directory
	// (the IBP address for depots), empty for static peers.
	ServiceAddr string `json:"service_addr,omitempty"`
	// State is up | degraded | down.
	State string `json:"state"`
	// Since is when the member entered its current state.
	Since time.Time `json:"since"`
	// LastScrape is the last successful /metrics pull.
	LastScrape time.Time `json:"last_scrape,omitempty"`
	// UptimeS is the member's process.uptime_s as scraped.
	UptimeS float64 `json:"uptime_s,omitempty"`
	// Version is the member's binary name (from /debug/vars cmdline),
	// fetched once per up-transition.
	Version string `json:"version,omitempty"`
	// Health is the degraded reason from the member's /healthz.
	Health string `json:"health,omitempty"`
	// AlertsFiring is the member's own firing alert count.
	AlertsFiring int `json:"alerts_firing,omitempty"`
	// Series is the member's retained TSDB series count.
	Series int `json:"series,omitempty"`
	// P99Ms is the member's served-op p99 (max across the scraped
	// histogram families), the latency column of the matrix.
	P99Ms float64 `json:"p99_ms,omitempty"`
	// Err is the last scrape failure, empty while healthy.
	Err string `json:"err,omitempty"`
	// Static marks -fleet-peers entries (never pruned).
	Static bool `json:"static,omitempty"`
}

// HotItem is one hint's aggregated edge-tier popularity across every
// edge member (the cluster-demand feed for the hot-set replicator).
type HotItem struct {
	Hint  string `json:"hint"`
	Count int64  `json:"count"`
}

// memberState is the scraper's internal per-member record.
type memberState struct {
	Member
	missingSince time.Time          // absent from the discovery sweep since
	prev         map[string]float64 // reset-aware counter fold state
	prevTime     time.Time          // when prev was captured (rate base)
}

// scalarFoldFamilies are the scalar families mirrored per node into the
// cluster TSDB (summed over the member's label instances, re-labeled
// node=<addr>).
var scalarFoldFamilies = []string{
	obs.MIBPShed, obs.MDVSShed, obs.MEdgeShed, obs.MAgentRenderShed,
	obs.MIBPInflight, obs.MIBPQueueDepth,
	obs.MEdgeHits, obs.MEdgeMisses, obs.MEdgeFills,
	obs.MLorsFailedAttempts, obs.MSLOAlertsFiring,
}

// histFoldFamilies are the histogram families whose per-member p99 is
// mirrored as fleet.node.p99.ms{family=,node=}.
var histFoldFamilies = []string{
	obs.MIBPServerOpMs, obs.MEdgeServeMs, obs.MAgentFetchMs, obs.MDVSOpMs,
}

// shedFamilies sum into the fleet.shed accumulator; servedFamilies
// (histogram counts) into fleet.served; fpsFamilies (histogram counts)
// into the fleet.fps rate.
var (
	shedFamilies   = []string{obs.MIBPShed, obs.MDVSShed, obs.MEdgeShed, obs.MAgentRenderShed}
	servedFamilies = []string{obs.MIBPServerOpMs, obs.MEdgeServeMs, obs.MDVSOpMs}
	fpsFamilies    = []string{obs.MAgentFetchMs}
)

// Fleet is a running federation scraper. All exported methods are safe
// for concurrent use and on a nil receiver.
type Fleet struct {
	cfg      Config
	interval time.Duration
	pc       *obs.PeerClient
	reg      *obs.Registry
	db       *obs.TSDB
	engine   *slo.Engine
	tracer   *obs.Tracer
	logger   *obs.Logger
	clock    func() time.Time

	mu          sync.Mutex
	members     map[string]*memberState // keyed by metrics addr
	folded      map[string]float64      // the "fleet" snapshot served to the TSDB
	hot         map[string]int64        // aggregated edge.hot.<hint> counts
	shedTotal   float64
	servedTotal float64
	lastPass    time.Time
	lastPassMs  float64
}

// New builds a fleet scraper. It starts no goroutines; drive it with
// Run (or Scrape directly in tests).
func New(cfg Config) *Fleet {
	interval := cfg.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if cfg.PruneAfter <= 0 {
		cfg.PruneAfter = 5 * time.Minute
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.DefaultLogger()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
		// The cluster registry holds one series set per member; give it
		// label headroom beyond the node-local default.
		reg.MaxLabelInstances = 1024
	}
	f := &Fleet{
		cfg:      cfg,
		interval: interval,
		pc:       &obs.PeerClient{Timeout: cfg.PeerTimeout},
		reg:      reg,
		tracer:   tracer,
		logger:   logger,
		clock:    clock,
		members:  make(map[string]*memberState),
		folded:   make(map[string]float64),
		hot:      make(map[string]int64),
	}
	f.db = obs.NewTSDB(obs.TSDBConfig{
		Registry: reg,
		Tiers:    obs.DefaultTiers(interval),
		Clock:    cfg.Clock,
		// Fleet rules ride the sampling pass like node rules do.
		OnSample: func() { f.engine.Evaluate() },
	})
	rules := cfg.Rules
	if len(rules) == 0 {
		rules = slo.FleetDefaultRules(cfg.Replication)
	}
	f.engine = slo.NewEngine(slo.EngineConfig{
		DB:       f.db,
		Rules:    rules,
		Registry: reg,
		Tracer:   tracer,
		Logger:   logger,
		Clock:    cfg.Clock,
	})
	// The folded aggregates enter the cluster TSDB as the "fleet"
	// snapshot: float-valued, rebuilt each scrape pass.
	reg.RegisterSnapshot("fleet", f.snapshotFolded)
	for _, peer := range cfg.Peers {
		f.members[peer] = &memberState{Member: Member{
			Addr: peer, Kind: "peer", State: StateDown, Since: clock(), Static: true,
		}}
	}
	return f
}

func (f *Fleet) snapshotFolded() map[string]float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]float64, len(f.folded))
	for k, v := range f.folded {
		out[k] = v
	}
	return out
}

// SetSelf records the hosting process's own metrics address for the
// /debug/fleet topology. Separate from Config because the address is
// only known after the observability stack binds (New runs before
// slo.Start so the fleet handlers can ride Options.Extra).
func (f *Fleet) SetSelf(addr string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.cfg.Self = addr
	f.mu.Unlock()
}

// AddStaticPeer adds one never-pruned scrape target at runtime — the
// hosting process adds its own bound address this way, so the fleet
// view includes the scraper itself.
func (f *Fleet) AddStaticPeer(addr, kind string) {
	if f == nil || addr == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m := f.members[addr]; m != nil {
		m.Static = true
		if kind != "" {
			m.Kind = kind
		}
		return
	}
	f.members[addr] = &memberState{Member: Member{
		Addr: addr, Kind: kind, State: StateDown, Since: f.clock(), Static: true,
	}}
}

// Interval returns the poll interval.
func (f *Fleet) Interval() time.Duration {
	if f == nil {
		return 0
	}
	return f.interval
}

// TSDB returns the cluster TSDB (nil on a nil fleet).
func (f *Fleet) TSDB() *obs.TSDB {
	if f == nil {
		return nil
	}
	return f.db
}

// Engine returns the fleet-scope SLO engine (nil on a nil fleet).
func (f *Fleet) Engine() *slo.Engine {
	if f == nil {
		return nil
	}
	return f.engine
}

// Subscribe registers an alert-transition callback on the fleet engine.
func (f *Fleet) Subscribe(fn func(slo.Alert)) {
	if f == nil {
		return
	}
	f.engine.Subscribe(fn)
}

// HealthError reports a non-nil error while any fleet-scope critical
// alert fires — plugged into the hosting process's /healthz via
// slo.Options.ExtraHealth.
func (f *Fleet) HealthError() error {
	if f == nil {
		return nil
	}
	return f.engine.HealthError()
}

// Members returns the health matrix rows, sorted by address.
func (f *Fleet) Members() []Member {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Member, 0, len(f.members))
	for _, m := range f.members {
		out = append(out, m.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Aggregates returns the current folded cluster aggregates.
func (f *Fleet) Aggregates() map[string]float64 {
	if f == nil {
		return nil
	}
	return f.snapshotFolded()
}

// HotItems returns the top-n hints by aggregated edge-tier popularity
// across every edge member — the cluster-demand feed the hot-set
// replicator warms from.
func (f *Fleet) HotItems(n int) []HotItem {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]HotItem, 0, len(f.hot))
	for hint, count := range f.hot {
		out = append(out, HotItem{Hint: hint, Count: count})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Hint < out[j].Hint
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Run polls until stop closes: discover, scrape, fold, sample, evaluate
// — one pass immediately, then every interval.
func (f *Fleet) Run(stop <-chan struct{}) {
	if f == nil {
		return
	}
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		f.ScrapeOnce(context.Background())
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

// ScrapeOnce runs one full pass: scrape + fold, then a cluster TSDB
// sample (which runs the fleet rule evaluation).
func (f *Fleet) ScrapeOnce(ctx context.Context) {
	if f == nil {
		return
	}
	f.Scrape(ctx)
	f.db.Sample()
}

// peerMetrics is one member's parsed /metrics snapshot.
type peerMetrics struct {
	scalars map[string]float64
	hists   map[string]histValue
}

type histValue struct {
	count int64
	p99   float64
}

// scrapeResult is one member's raw pull before folding.
type scrapeResult struct {
	metrics      *peerMetrics
	err          error // /metrics failure: the member is down
	health       string
	healthOK     bool
	alertsFiring int
	series       int
	softErrs     int // tsdb/alerts pulls that failed while metrics succeeded
}

// Scrape runs discovery plus the parallel member fan-out and folds the
// results into the cluster registry. Exposed separately from ScrapeOnce
// for tests that drive sampling themselves.
func (f *Fleet) Scrape(ctx context.Context) {
	if f == nil {
		return
	}
	start := f.clock()
	f.discover(ctx)

	f.mu.Lock()
	targets := make([]*memberState, 0, len(f.members))
	for _, m := range f.members {
		targets = append(targets, m)
	}
	f.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].Addr < targets[j].Addr })

	results := make([]scrapeResult, len(targets))
	var wg sync.WaitGroup
	for i, m := range targets {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i] = f.scrapeMember(ctx, addr)
		}(i, m.Addr)
	}
	wg.Wait()

	f.fold(targets, results, start)
}

// discover sweeps the directory and reconciles the membership: new
// records join, records gone from the sweep are marked down and pruned
// after PruneAfter, static peers persist.
func (f *Fleet) discover(ctx context.Context) {
	if f.cfg.LBone == nil {
		return
	}
	recs, err := f.cfg.LBone.Members(ctx)
	if err != nil {
		// A briefly unreachable directory must not tear down the matrix:
		// keep scraping the known membership.
		f.reg.Counter(obs.Label(obs.MFleetScrapeErrors, "node", "lbone")).Inc()
		return
	}
	now := f.clock()
	seen := make(map[string]bool, len(recs))
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, rec := range recs {
		if rec.MetricsAddr == "" {
			continue
		}
		seen[rec.MetricsAddr] = true
		m := f.members[rec.MetricsAddr]
		if m == nil {
			kind := rec.Kind
			if kind == "" {
				kind = lbone.KindDepot
			}
			m = &memberState{Member: Member{
				Addr: rec.MetricsAddr, Kind: kind, ServiceAddr: rec.Addr,
				State: StateDown, Since: now,
			}}
			f.members[rec.MetricsAddr] = m
		}
		m.ServiceAddr = rec.Addr
		if rec.Kind != "" {
			m.Kind = rec.Kind
		}
		m.missingSince = time.Time{}
	}
	for addr, m := range f.members {
		if m.Static || seen[addr] {
			continue
		}
		if m.missingSince.IsZero() {
			m.missingSince = now
		}
		if now.Sub(m.missingSince) > f.cfg.PruneAfter {
			delete(f.members, addr)
		}
	}
}

// scrapeMember pulls one member's observability documents. /metrics is
// load-bearing: its failure marks the member down. /healthz decides
// up-vs-degraded. /debug/alerts and the /debug/tsdb index are
// best-effort enrichments — a malformed or missing payload counts a
// scrape error but the member stays up (the member is alive; its
// telemetry is what is broken).
func (f *Fleet) scrapeMember(ctx context.Context, addr string) scrapeResult {
	var res scrapeResult
	var raw map[string]json.RawMessage
	if err := f.pc.GetJSON(ctx, addr, "/metrics", nil, &raw); err != nil {
		res.err = err
		return res
	}
	res.metrics = parseMetrics(raw)

	status, body, err := f.pc.Get(ctx, addr, "/healthz", nil)
	switch {
	case err != nil:
		res.health = "healthz unreachable: " + err.Error()
	case status == 200:
		res.healthOK = true
	default:
		var deg struct {
			Reason string `json:"reason"`
		}
		_ = json.Unmarshal(body, &deg)
		if deg.Reason == "" {
			deg.Reason = fmt.Sprintf("healthz status %d", status)
		}
		res.health = deg.Reason
	}

	var alerts struct {
		Firing int `json:"firing"`
	}
	if err := f.pc.GetJSON(ctx, addr, "/debug/alerts", nil, &alerts); err == nil {
		res.alertsFiring = alerts.Firing
	}
	// Plain obs.Serve members have no /debug/alerts; a 404 there is not
	// an error worth counting. The tsdb index below is expected of every
	// stack member, so its failure (including malformed JSON) is.
	var idx struct {
		Series []struct {
			Name string `json:"name"`
		} `json:"series"`
	}
	if err := f.pc.GetJSON(ctx, addr, "/debug/tsdb", nil, &idx); err != nil {
		res.softErrs++
	} else {
		res.series = len(idx.Series)
	}
	return res
}

// parseMetrics splits a /metrics document into scalars and histogram
// summaries, dropping anything unparseable.
func parseMetrics(raw map[string]json.RawMessage) *peerMetrics {
	pm := &peerMetrics{
		scalars: make(map[string]float64, len(raw)),
		hists:   make(map[string]histValue),
	}
	for name, msg := range raw {
		var v float64
		if err := json.Unmarshal(msg, &v); err == nil {
			pm.scalars[name] = v
			continue
		}
		var h struct {
			Count int64   `json:"count"`
			P99   float64 `json:"p99"`
		}
		if err := json.Unmarshal(msg, &h); err == nil {
			pm.hists[name] = histValue{count: h.Count, p99: h.P99}
		}
	}
	return pm
}

// sumFamily sums every instance of one scalar family.
func (pm *peerMetrics) sumFamily(family string) (float64, bool) {
	total, found := 0.0, false
	for name, v := range pm.scalars {
		if obs.BaseName(name) == family {
			total += v
			found = true
		}
	}
	return total, found
}

// histFamily folds every instance of one histogram family: summed
// counts, max p99.
func (pm *peerMetrics) histFamily(family string) (count int64, maxP99 float64, found bool) {
	for name, h := range pm.hists {
		if obs.BaseName(name) == family {
			count += h.count
			if h.p99 > maxP99 {
				maxP99 = h.p99
			}
			found = true
		}
	}
	return count, maxP99, found
}

// delta folds one member's cumulative value into a reset-aware
// increase: a decrease means the member restarted, and the post-restart
// value is the increase since the restart.
func (m *memberState) delta(key string, cur float64) float64 {
	if m.prev == nil {
		m.prev = make(map[string]float64)
	}
	prev, ok := m.prev[key]
	m.prev[key] = cur
	if !ok {
		// First sight of this counter contributes nothing: its history
		// predates the fleet's watch.
		return 0
	}
	d := cur - prev
	if d < 0 {
		d = cur
	}
	return d
}

// fold reconciles scrape results into member states and the cluster
// series. One pass, one lock hold.
func (f *Fleet) fold(targets []*memberState, results []scrapeResult, start time.Time) {
	now := f.clock()
	elapsed := now.Sub(start)

	type transition struct {
		m    Member
		from string
	}
	var transitions []transition

	f.mu.Lock()
	folded := make(map[string]float64, len(f.folded))
	hot := make(map[string]int64)
	states := map[string]int{StateUp: 0, StateDegraded: 0, StateDown: 0}
	depotsTotal, depotsNotUp := 0, 0
	upDepots := make(map[string]bool)
	var depotP99s []float64
	var shedDelta, servedDelta, fpsDelta float64
	var edgeHits, edgeMisses float64
	var ratePeriod float64 // seconds covered by the counter deltas

	for i, m := range targets {
		if _, live := f.members[m.Addr]; !live {
			continue // pruned by discovery mid-pass
		}
		res := results[i]
		from := m.State
		switch {
		case res.err != nil:
			m.State = StateDown
			m.Err = res.err.Error()
			m.Health = ""
			m.AlertsFiring = 0
			if !m.missingSince.IsZero() {
				m.Err = "left registry: " + m.Err
			}
			f.reg.Counter(obs.Label(obs.MFleetScrapeErrors, "node", m.Addr)).Inc()
		case !res.healthOK:
			m.State = StateDegraded
			m.Err = ""
			m.Health = res.health
		default:
			m.State = StateUp
			m.Err = ""
			m.Health = ""
		}
		if res.softErrs > 0 {
			f.reg.Counter(obs.Label(obs.MFleetScrapeErrors, "node", m.Addr)).Add(int64(res.softErrs))
		}
		if m.State != from {
			m.Since = now
			if from == "" {
				from = "new"
			}
			transitions = append(transitions, transition{m.Member, from})
		}
		states[m.State]++
		if m.Kind == lbone.KindDepot {
			depotsTotal++
			if m.State == StateUp {
				if m.ServiceAddr != "" {
					upDepots[m.ServiceAddr] = true
				}
			} else {
				depotsNotUp++
			}
		}

		if res.metrics == nil {
			continue
		}
		pm := res.metrics
		m.LastScrape = now
		m.AlertsFiring = res.alertsFiring
		if res.series > 0 {
			m.Series = res.series
		}
		if up, ok := pm.scalars[obs.MProcessUptime]; ok {
			// An uptime below the member's previous reading is a restart
			// even when every counter happens to still be monotonic.
			if up < m.UptimeS {
				m.prev = nil
			}
			m.UptimeS = up
		}
		if m.Version == "" {
			m.Version = f.fetchVersion(m.Addr)
		}

		// Per-pass rate base: seconds since this member's previous fold.
		if !m.prevTime.IsZero() {
			if s := now.Sub(m.prevTime).Seconds(); s > ratePeriod {
				ratePeriod = s
			}
		}
		m.prevTime = now

		// Per-node scalar mirrors.
		for _, family := range scalarFoldFamilies {
			if v, ok := pm.sumFamily(family); ok {
				folded[obs.Label(family, "node", m.Addr)] = v
			}
		}
		// Per-node p99 mirrors and the member latency column.
		m.P99Ms = 0
		for _, family := range histFoldFamilies {
			if _, p99, ok := pm.histFamily(family); ok {
				folded[obs.Label("node.p99.ms", "family", family, "node", m.Addr)] = p99
				if p99 > m.P99Ms {
					m.P99Ms = p99
				}
			}
		}
		if m.Kind == lbone.KindDepot && m.State == StateUp {
			if _, p99, ok := pm.histFamily(obs.MIBPServerOpMs); ok {
				depotP99s = append(depotP99s, p99)
			}
		}

		// Cluster accumulators from reset-aware deltas.
		for _, family := range shedFamilies {
			if v, ok := pm.sumFamily(family); ok {
				shedDelta += m.delta("shed:"+family, v)
			}
		}
		for _, family := range servedFamilies {
			if count, _, ok := pm.histFamily(family); ok {
				servedDelta += m.delta("served:"+family, float64(count))
			}
		}
		for _, family := range fpsFamilies {
			if count, _, ok := pm.histFamily(family); ok {
				fpsDelta += m.delta("fps:"+family, float64(count))
			}
		}
		if v, ok := pm.sumFamily(obs.MEdgeHits); ok {
			edgeHits += v
			edgeMisses, _ = pm.sumFamily(obs.MEdgeMisses)
		}
		// Edge demand: the edge snapshot exports per-hint popularity as
		// edge.hot.<hint> counts.
		for name, v := range pm.scalars {
			if hint, ok := strings.CutPrefix(name, "edge.hot."); ok {
				hot[hint] += int64(v)
			}
		}
	}

	f.shedTotal += shedDelta
	f.servedTotal += servedDelta
	folded["shed"] = f.shedTotal
	folded["served"] = f.servedTotal
	if ratePeriod > 0 {
		folded["fps"] = fpsDelta / ratePeriod
	}
	if edgeHits+edgeMisses > 0 {
		folded["edge.hit_rate"] = edgeHits / (edgeHits + edgeMisses)
	}
	if depotsTotal > 0 {
		folded["depots.degraded_ratio"] = float64(depotsNotUp) / float64(depotsTotal)
	}
	if len(depotP99s) > 0 {
		minP, maxP := depotP99s[0], depotP99s[0]
		for _, p := range depotP99s[1:] {
			if p < minP {
				minP = p
			}
			if p > maxP {
				maxP = p
			}
		}
		folded["depot.latency.spread.ms"] = maxP - minP
	}
	if f.cfg.Coverage != nil {
		coverage := f.cfg.Coverage(upDepots)
		minCov, has := 0.0, false
		for name, cov := range coverage {
			folded[obs.Label("replica.coverage", "exnode", name)] = cov
			if !has || cov < minCov {
				minCov, has = cov, true
			}
		}
		if has {
			folded["replica.coverage.min"] = minCov
		}
	}
	f.folded = folded
	f.hot = hot
	f.lastPass = now
	f.lastPassMs = float64(elapsed) / float64(time.Millisecond)
	onState := f.cfg.OnMemberState
	f.mu.Unlock()

	for state, n := range states {
		f.reg.Gauge(obs.Label(obs.MFleetMembers, "state", state)).Set(int64(n))
	}
	f.reg.Counter(obs.MFleetScrapes).Inc()
	f.reg.Histogram(obs.MFleetScrapeMs, obs.LatencyBucketsMs...).Observe(f.lastPassMs)

	if len(transitions) == 0 {
		return
	}
	// One span per pass-with-transitions; the fleet.member events stamp
	// its trace ID so matrix changes join against /debug/traces.
	ctx, span := f.tracer.StartSpan(context.Background(), obs.SpanFleetScrape)
	span.SetAttr("transitions", fmt.Sprintf("%d", len(transitions)))
	for _, tr := range transitions {
		kv := []string{
			"node", tr.m.Addr, "kind", tr.m.Kind,
			"from", tr.from, "to", tr.m.State,
		}
		if tr.m.Err != "" {
			kv = append(kv, "err", tr.m.Err)
		}
		if tr.m.State == StateUp {
			f.logger.Info(ctx, obs.EvFleetMember, kv...)
		} else {
			f.logger.Warn(ctx, obs.EvFleetMember, kv...)
		}
		if onState != nil {
			onState(tr.m, tr.from)
		}
	}
	span.Finish()
}

// fetchVersion pulls the member's binary name from its /debug/vars
// cmdline — once per up-transition, not per pass.
func (f *Fleet) fetchVersion(addr string) string {
	var vars struct {
		Cmdline []string `json:"cmdline"`
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.pc.Timeout+obs.DefaultPeerTimeout)
	defer cancel()
	if err := f.pc.GetJSON(ctx, addr, "/debug/vars", nil, &vars); err != nil || len(vars.Cmdline) == 0 {
		return ""
	}
	name := vars.Cmdline[0]
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}
