package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"lonviz/internal/obs/slo"
)

// fleetResponse is the /debug/fleet JSON shape.
type fleetResponse struct {
	// Self is the hosting process's own metrics address.
	Self string `json:"self,omitempty"`
	// Updated is the end of the last scrape pass; ScrapeMs its duration.
	Updated  time.Time `json:"updated,omitempty"`
	ScrapeMs float64   `json:"scrape_ms,omitempty"`
	// Interval is the poll interval in seconds.
	IntervalS float64 `json:"interval_s"`
	// Members is the health matrix, sorted by address.
	Members []Member `json:"members"`
	// Aggregates are the folded cluster series' current values (the
	// same values the cluster TSDB retains as fleet.*).
	Aggregates map[string]float64 `json:"aggregates"`
	// Firing counts fleet-scope alerts currently firing; Alerts is the
	// fleet engine's full alert state.
	Firing int         `json:"firing"`
	Alerts []slo.Alert `json:"alerts"`
}

func (f *Fleet) response() fleetResponse {
	resp := fleetResponse{
		IntervalS:  f.interval.Seconds(),
		Members:    f.Members(),
		Aggregates: f.Aggregates(),
		Alerts:     f.engine.Alerts(),
	}
	if resp.Members == nil {
		resp.Members = []Member{}
	}
	if resp.Alerts == nil {
		resp.Alerts = []slo.Alert{}
	}
	for _, a := range resp.Alerts {
		if a.State == slo.StateFiring {
			resp.Firing++
		}
	}
	f.mu.Lock()
	resp.Self = f.cfg.Self
	resp.Updated = f.lastPass
	resp.ScrapeMs = f.lastPassMs
	f.mu.Unlock()
	return resp
}

// Handler serves the fleet view at /debug/fleet: the topology and
// health matrix, cluster aggregates, and active fleet alerts — JSON by
// default, a human-readable matrix with ?format=text.
func (f *Fleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f == nil {
			http.Error(w, "fleet scraping disabled", http.StatusNotFound)
			return
		}
		resp := f.response()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			renderText(w, resp)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}

// TSDBHandler serves the cluster TSDB at /debug/fleet/tsdb with the
// standard /debug/tsdb query grammar.
func (f *Fleet) TSDBHandler() http.Handler {
	if f == nil {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "fleet scraping disabled", http.StatusNotFound)
		})
	}
	return f.db.Handler()
}

// renderText writes the fleet view as an operator-readable matrix.
func renderText(w http.ResponseWriter, resp fleetResponse) {
	fmt.Fprintf(w, "fleet  self=%s  interval=%.0fs  last scrape %.1fms", resp.Self, resp.IntervalS, resp.ScrapeMs)
	if !resp.Updated.IsZero() {
		fmt.Fprintf(w, "  updated %s", resp.Updated.Format(time.RFC3339))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-26s %-8s %-9s %-10s %8s %8s %7s  %s\n",
		"NODE", "KIND", "STATE", "VERSION", "UPTIME", "P99MS", "ALERTS", "NOTE")
	for _, m := range resp.Members {
		note := m.Err
		if note == "" {
			note = m.Health
		}
		fmt.Fprintf(w, "%-26s %-8s %-9s %-10s %8s %8.1f %7d  %s\n",
			m.Addr, m.Kind, m.State, m.Version,
			formatUptime(m.UptimeS), m.P99Ms, m.AlertsFiring, note)
	}
	fmt.Fprintln(w)
	keys := make([]string, 0, len(resp.Aggregates))
	for k := range resp.Aggregates {
		if strings.Contains(k, "{node=") || strings.Contains(k, ",node=") {
			continue // per-node mirrors: the matrix above covers them
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "fleet.%-32s %.3f\n", k, resp.Aggregates[k])
	}
	if len(resp.Alerts) > 0 {
		fmt.Fprintln(w)
		for _, a := range resp.Alerts {
			fmt.Fprintf(w, "alert %-24s %-9s %-8s %s\n", a.Rule, a.State, a.Severity, a.Reason)
		}
	}
}

func formatUptime(s float64) string {
	if s <= 0 {
		return "-"
	}
	d := time.Duration(s * float64(time.Second)).Round(time.Second)
	return d.String()
}
