package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lonviz/internal/lbone"
	"lonviz/internal/obs"
	"lonviz/internal/obs/slo"
)

// fakeClock drives the fleet's fold timestamps and the fleet engine.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.UnixMilli(1_700_000_000_000)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// fakeMember is a scrape target with controllable documents.
type fakeMember struct {
	srv *httptest.Server

	mu           sync.Mutex
	metrics      map[string]any
	healthStatus int
	healthBody   string
	alertsFiring int
	tsdbBody     string // raw /debug/tsdb override (malformed-payload tests)
	delay        time.Duration
}

func newFakeMember(t *testing.T) *fakeMember {
	t.Helper()
	m := &fakeMember{metrics: map[string]any{}, healthStatus: 200}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		m.mu.Lock()
		delay, snap := m.delay, make(map[string]any, len(m.metrics))
		for k, v := range m.metrics {
			snap[k] = v
		}
		m.mu.Unlock()
		time.Sleep(delay)
		_ = json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		m.mu.Lock()
		status, body := m.healthStatus, m.healthBody
		m.mu.Unlock()
		w.WriteHeader(status)
		if body != "" {
			_, _ = w.Write([]byte(body))
		} else {
			_, _ = w.Write([]byte("ok"))
		}
	})
	mux.HandleFunc("/debug/alerts", func(w http.ResponseWriter, _ *http.Request) {
		m.mu.Lock()
		firing := m.alertsFiring
		m.mu.Unlock()
		_ = json.NewEncoder(w).Encode(map[string]any{"firing": firing})
	})
	mux.HandleFunc("/debug/tsdb", func(w http.ResponseWriter, _ *http.Request) {
		m.mu.Lock()
		body := m.tsdbBody
		m.mu.Unlock()
		if body == "" {
			body = `{"tiers":[],"series":[{"name":"a"},{"name":"b"}]}`
		}
		_, _ = w.Write([]byte(body))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"cmdline": []string{"/usr/bin/depotd"}})
	})
	m.srv = httptest.NewServer(mux)
	t.Cleanup(m.srv.Close)
	return m
}

func (m *fakeMember) addr() string { return strings.TrimPrefix(m.srv.URL, "http://") }

func (m *fakeMember) set(key string, v any) {
	m.mu.Lock()
	m.metrics[key] = v
	m.mu.Unlock()
}

func (m *fakeMember) setHealth(status int, body string) {
	m.mu.Lock()
	m.healthStatus, m.healthBody = status, body
	m.mu.Unlock()
}

// hist is a /metrics histogram document the way obs renders one.
func hist(count int64, p99 float64) map[string]any {
	return map[string]any{"count": count, "p99": p99}
}

func memberByAddr(f *Fleet, addr string) (Member, bool) {
	for _, m := range f.Members() {
		if m.Addr == addr {
			return m, true
		}
	}
	return Member{}, false
}

func TestScrapeStatesUpDegradedDown(t *testing.T) {
	up := newFakeMember(t)
	up.set(obs.MProcessUptime, 120.5)
	up.set(obs.Label(obs.MIBPServerOpMs, "op", "load"), hist(10, 7.5))

	degraded := newFakeMember(t)
	degraded.setHealth(503, `{"status":"degraded","reason":"slo: critical alert firing: x"}`)
	degraded.mu.Lock()
	degraded.alertsFiring = 2
	degraded.mu.Unlock()

	down := newFakeMember(t)
	downAddr := down.addr()
	down.srv.Close()

	reg := obs.NewRegistry()
	f := New(Config{
		Peers:    []string{up.addr(), degraded.addr(), downAddr},
		Registry: reg,
	})
	f.Scrape(context.Background())

	m, _ := memberByAddr(f, up.addr())
	if m.State != StateUp || m.Err != "" {
		t.Fatalf("up member = %+v", m)
	}
	if m.UptimeS != 120.5 {
		t.Fatalf("uptime = %v, want 120.5", m.UptimeS)
	}
	if m.P99Ms != 7.5 {
		t.Fatalf("p99 = %v, want 7.5", m.P99Ms)
	}
	if m.Version != "depotd" {
		t.Fatalf("version = %q, want depotd (from /debug/vars cmdline)", m.Version)
	}
	if m.Series != 2 {
		t.Fatalf("series = %d, want 2", m.Series)
	}

	m, _ = memberByAddr(f, degraded.addr())
	if m.State != StateDegraded {
		t.Fatalf("degraded member = %+v", m)
	}
	if !strings.Contains(m.Health, "critical alert firing") {
		t.Fatalf("degraded reason not surfaced: %q", m.Health)
	}
	if m.AlertsFiring != 2 {
		t.Fatalf("alerts firing = %d, want 2", m.AlertsFiring)
	}

	m, _ = memberByAddr(f, downAddr)
	if m.State != StateDown || m.Err == "" {
		t.Fatalf("down member = %+v", m)
	}

	// Self-accounting lands in the supplied registry.
	snap := reg.Snapshot()
	if v, _ := snap[obs.Label(obs.MFleetMembers, "state", StateUp)].(int64); v != 1 {
		t.Fatalf("members{state=up} = %v", snap[obs.Label(obs.MFleetMembers, "state", StateUp)])
	}
	if v, _ := snap[obs.Label(obs.MFleetMembers, "state", StateDown)].(int64); v != 1 {
		t.Fatalf("members{state=down} = %v", snap[obs.Label(obs.MFleetMembers, "state", StateDown)])
	}
	if v, _ := snap[obs.MFleetScrapes].(int64); v != 1 {
		t.Fatalf("scrapes = %v, want 1", snap[obs.MFleetScrapes])
	}
	// The per-node p99 mirror entered the cluster aggregates.
	agg := f.Aggregates()
	key := obs.Label("node.p99.ms", "family", obs.MIBPServerOpMs, "node", up.addr())
	if agg[key] != 7.5 {
		t.Fatalf("aggregate %s = %v, want 7.5", key, agg[key])
	}
}

func TestSlowPeerBoundedByDeadline(t *testing.T) {
	slow := newFakeMember(t)
	slow.mu.Lock()
	slow.delay = 3 * time.Second
	slow.mu.Unlock()

	f := New(Config{
		Peers:       []string{slow.addr()},
		PeerTimeout: 100 * time.Millisecond,
	})
	start := time.Now()
	f.Scrape(context.Background())
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("scrape took %v; the peer deadline did not bound the hang", elapsed)
	}
	if m, _ := memberByAddr(f, slow.addr()); m.State != StateDown {
		t.Fatalf("hung peer = %+v, want down", m)
	}
}

func TestMalformedTSDBPayloadKeepsMemberUp(t *testing.T) {
	m := newFakeMember(t)
	m.mu.Lock()
	m.tsdbBody = `{"series": [{"name": truncated...`
	m.mu.Unlock()

	reg := obs.NewRegistry()
	f := New(Config{Peers: []string{m.addr()}, Registry: reg})
	f.Scrape(context.Background())

	got, _ := memberByAddr(f, m.addr())
	if got.State != StateUp {
		t.Fatalf("member with broken telemetry = %+v, want up (the process is alive)", got)
	}
	snap := reg.Snapshot()
	errKey := obs.Label(obs.MFleetScrapeErrors, "node", m.addr())
	if v, _ := snap[errKey].(int64); v != 1 {
		t.Fatalf("scrape.errors{node=} = %v, want 1", snap[errKey])
	}
}

func TestCounterResetFoldsAsRestart(t *testing.T) {
	m := newFakeMember(t)
	shedKey := obs.Label(obs.MIBPShed, "reason", "queue_full")
	f := New(Config{Peers: []string{m.addr()}})
	ctx := context.Background()

	m.set(shedKey, 100.0)
	f.Scrape(ctx) // first sight: history predates the watch, contributes 0
	if got := f.Aggregates()["shed"]; got != 0 {
		t.Fatalf("shed after first scrape = %v, want 0", got)
	}
	m.set(shedKey, 150.0)
	f.Scrape(ctx)
	if got := f.Aggregates()["shed"]; got != 50 {
		t.Fatalf("shed after increase = %v, want 50", got)
	}
	// The counter dropping means the process restarted: the post-restart
	// value is the increase since the restart, and the cluster total keeps
	// climbing instead of jumping backwards.
	m.set(shedKey, 10.0)
	f.Scrape(ctx)
	if got := f.Aggregates()["shed"]; got != 60 {
		t.Fatalf("shed after reset = %v, want 60", got)
	}
}

func TestUptimeDropResetsFoldState(t *testing.T) {
	m := newFakeMember(t)
	shedKey := obs.Label(obs.MIBPShed, "reason", "queue_full")
	f := New(Config{Peers: []string{m.addr()}})
	ctx := context.Background()

	m.set(obs.MProcessUptime, 300.0)
	m.set(shedKey, 100.0)
	f.Scrape(ctx)
	m.set(shedKey, 120.0)
	f.Scrape(ctx) // +20
	// Restart with a coincidentally higher counter: uptime dropping is the
	// only signal, and it must clear the fold state (first-sight again).
	m.set(obs.MProcessUptime, 2.0)
	m.set(shedKey, 500.0)
	f.Scrape(ctx)
	if got := f.Aggregates()["shed"]; got != 20 {
		t.Fatalf("shed after uptime-drop restart = %v, want 20 (restart history must not count)", got)
	}
	m.set(shedKey, 510.0)
	f.Scrape(ctx)
	if got := f.Aggregates()["shed"]; got != 30 {
		t.Fatalf("shed after post-restart increase = %v, want 30", got)
	}
}

// fakeLBone serves a controllable /members list the way lboned does.
type fakeLBone struct {
	srv *httptest.Server
	mu  sync.Mutex
	rec []lbone.DepotRecord
}

func newFakeLBone(t *testing.T) *fakeLBone {
	t.Helper()
	lb := &fakeLBone{}
	mux := http.NewServeMux()
	mux.HandleFunc("/members", func(w http.ResponseWriter, _ *http.Request) {
		lb.mu.Lock()
		recs := append([]lbone.DepotRecord(nil), lb.rec...)
		lb.mu.Unlock()
		_ = json.NewEncoder(w).Encode(recs)
	})
	lb.srv = httptest.NewServer(mux)
	t.Cleanup(lb.srv.Close)
	return lb
}

func (lb *fakeLBone) setRecords(recs ...lbone.DepotRecord) {
	lb.mu.Lock()
	lb.rec = recs
	lb.mu.Unlock()
}

func TestDiscoveryChurnMarksDownThenPrunes(t *testing.T) {
	member := newFakeMember(t)
	lb := newFakeLBone(t)
	lb.setRecords(lbone.DepotRecord{
		Addr: "d1:6714", Kind: lbone.KindDepot, MetricsAddr: member.addr(),
	})

	clock := newFakeClock()
	var transMu sync.Mutex
	var transitions []string
	f := New(Config{
		LBone:      &lbone.Client{BaseURL: lb.srv.URL},
		PruneAfter: time.Minute,
		Clock:      clock.Now,
		OnMemberState: func(m Member, from string) {
			transMu.Lock()
			transitions = append(transitions, from+">"+m.State)
			transMu.Unlock()
		},
	})
	ctx := context.Background()

	f.Scrape(ctx)
	m, ok := memberByAddr(f, member.addr())
	if !ok || m.State != StateUp || m.Kind != lbone.KindDepot || m.ServiceAddr != "d1:6714" {
		t.Fatalf("discovered member = %+v (ok=%v)", m, ok)
	}

	// The node leaves the registry and dies: marked down with the churn
	// spelled out, but retained for the prune window.
	lb.setRecords()
	member.srv.Close()
	clock.Advance(30 * time.Second)
	f.Scrape(ctx)
	m, ok = memberByAddr(f, member.addr())
	if !ok {
		t.Fatal("member pruned before PruneAfter elapsed")
	}
	if m.State != StateDown || !strings.HasPrefix(m.Err, "left registry: ") {
		t.Fatalf("churned member = %+v, want down with left-registry err", m)
	}

	clock.Advance(time.Minute + time.Second)
	f.Scrape(ctx)
	if _, ok := memberByAddr(f, member.addr()); ok {
		t.Fatal("member still in matrix after PruneAfter")
	}

	transMu.Lock()
	defer transMu.Unlock()
	want := []string{"down>up", "up>down"}
	if len(transitions) != len(want) || transitions[0] != want[0] || transitions[1] != want[1] {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

func TestUnreachableLBoneKeepsMatrix(t *testing.T) {
	member := newFakeMember(t)
	lb := newFakeLBone(t)
	lb.setRecords(lbone.DepotRecord{Addr: "d1:6714", Kind: lbone.KindDepot, MetricsAddr: member.addr()})

	reg := obs.NewRegistry()
	f := New(Config{LBone: &lbone.Client{BaseURL: lb.srv.URL}, Registry: reg})
	ctx := context.Background()
	f.Scrape(ctx)
	lb.srv.Close()
	f.Scrape(ctx)

	if m, ok := memberByAddr(f, member.addr()); !ok || m.State != StateUp {
		t.Fatalf("member after directory outage = %+v (ok=%v), want still up", m, ok)
	}
	errKey := obs.Label(obs.MFleetScrapeErrors, "node", "lbone")
	if v, _ := reg.Snapshot()[errKey].(int64); v == 0 {
		t.Fatal("directory outage not counted")
	}
}

func TestTenMemberScrapeFitsOnePollInterval(t *testing.T) {
	const members = 10
	const delay = 300 * time.Millisecond
	peers := make([]string, 0, members)
	for i := 0; i < members; i++ {
		m := newFakeMember(t)
		m.mu.Lock()
		m.delay = delay
		m.mu.Unlock()
		peers = append(peers, m.addr())
	}
	f := New(Config{Peers: peers, Interval: 5 * time.Second, PeerTimeout: 2 * time.Second})
	start := time.Now()
	f.Scrape(context.Background())
	elapsed := time.Since(start)
	// Serial would be ≥ 10×300ms across four documents each; the parallel
	// fan-out must complete well inside the poll interval.
	if elapsed > f.Interval() {
		t.Fatalf("10-member scrape took %v, poll interval is %v", elapsed, f.Interval())
	}
	for _, p := range peers {
		if m, _ := memberByAddr(f, p); m.State != StateUp {
			t.Fatalf("member %s = %+v, want up", p, m)
		}
	}
}

func TestCoverageRuleLifecycleThroughFleetEngine(t *testing.T) {
	depot := newFakeMember(t)
	lb := newFakeLBone(t)
	lb.setRecords(lbone.DepotRecord{Addr: "d1:6714", Kind: lbone.KindDepot, MetricsAddr: depot.addr()})

	clock := newFakeClock()
	f := New(Config{
		LBone:       &lbone.Client{BaseURL: lb.srv.URL},
		Replication: 2,
		Clock:       clock.Now,
		Coverage: func(up map[string]bool) map[string]float64 {
			// Coverage follows live depot membership: full when d1 is up,
			// a lone replica when it is not.
			if up["d1:6714"] {
				return map[string]float64{"vs-0": 2, "vs-1": 2}
			}
			return map[string]float64{"vs-0": 1, "vs-1": 2}
		},
	})
	var alerts []slo.Alert
	var alertMu sync.Mutex
	f.Subscribe(func(a slo.Alert) {
		alertMu.Lock()
		alerts = append(alerts, a)
		alertMu.Unlock()
	})
	ctx := context.Background()

	tick := func() {
		f.ScrapeOnce(ctx)
		clock.Advance(time.Second)
	}

	tick()
	if got := f.Aggregates()["replica.coverage.min"]; got != 2 {
		t.Fatalf("coverage.min with depot up = %v, want 2", got)
	}
	if err := f.HealthError(); err != nil {
		t.Fatalf("healthy fleet reports %v", err)
	}

	depot.srv.Close()
	tick()
	if got := f.Aggregates()["replica.coverage.min"]; got != 1 {
		t.Fatalf("coverage.min with depot down = %v, want 1", got)
	}
	if err := f.HealthError(); err == nil {
		t.Fatal("HealthError nil while replica coverage is below the replication factor")
	}
	alertMu.Lock()
	var firing *slo.Alert
	for i := range alerts {
		if alerts[i].State == slo.StateFiring && alerts[i].Rule == "fleet-replica-coverage" {
			firing = &alerts[i]
		}
	}
	alertMu.Unlock()
	if firing == nil {
		t.Fatalf("no fleet-replica-coverage firing transition delivered (alerts: %+v)", alerts)
	}
	if firing.Severity != slo.SeverityCritical || firing.Scope != slo.ScopeFleet {
		t.Fatalf("firing alert = %+v", firing)
	}
}

func TestEdgeDemandAggregatesIntoHotItems(t *testing.T) {
	e1 := newFakeMember(t)
	e1.set("edge.hot.vs-a", 5.0)
	e1.set("edge.hot.vs-b", 2.0)
	e2 := newFakeMember(t)
	e2.set("edge.hot.vs-a", 4.0)
	e2.set("edge.hot.vs-c", 3.0)

	f := New(Config{Peers: []string{e1.addr(), e2.addr()}})
	f.Scrape(context.Background())

	items := f.HotItems(2)
	if len(items) != 2 {
		t.Fatalf("hot items = %+v", items)
	}
	if items[0].Hint != "vs-a" || items[0].Count != 9 {
		t.Fatalf("hottest = %+v, want vs-a summed across edges (9)", items[0])
	}
	if items[1].Hint != "vs-c" || items[1].Count != 3 {
		t.Fatalf("second = %+v, want vs-c (3)", items[1])
	}
}

func TestNilFleetIsInertAndAllocFree(t *testing.T) {
	var f *Fleet
	ctx := context.Background()
	// Every disabled-path call must be a no-op...
	f.Scrape(ctx)
	f.ScrapeOnce(ctx)
	f.Run(nil) // returns immediately on nil
	f.Subscribe(nil)
	f.SetSelf("x")
	f.AddStaticPeer("x", "peer")
	if f.Members() != nil || f.Aggregates() != nil || f.HotItems(3) != nil {
		t.Fatal("nil fleet returned data")
	}
	if f.HealthError() != nil || f.TSDB() != nil || f.Engine() != nil || f.Interval() != 0 {
		t.Fatal("nil fleet not inert")
	}
	// ...and allocation-free: a process without -fleet-scrape pays nothing.
	allocs := testing.AllocsPerRun(100, func() {
		f.ScrapeOnce(ctx)
		_ = f.Members()
		_ = f.Aggregates()
		_ = f.HotItems(8)
		_ = f.HealthError()
	})
	if allocs != 0 {
		t.Fatalf("disabled fleet path allocates %v per run, want 0", allocs)
	}
}

func TestHandlerServesMatrixJSONAndText(t *testing.T) {
	up := newFakeMember(t)
	up.set(obs.MProcessUptime, 60.0)
	f := New(Config{Peers: []string{up.addr()}, Replication: 1})
	f.SetSelf("self:9000")
	f.ScrapeOnce(context.Background())

	// JSON: the health matrix plus aggregates and alert state.
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var doc struct {
		Self    string `json:"self"`
		Members []struct {
			Addr  string `json:"addr"`
			State string `json:"state"`
		} `json:"members"`
		Aggregates map[string]float64 `json:"aggregates"`
		Alerts     []slo.Alert        `json:"alerts"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decoding /debug/fleet: %v", err)
	}
	if doc.Self != "self:9000" {
		t.Fatalf("self = %q", doc.Self)
	}
	if len(doc.Members) != 1 || doc.Members[0].State != StateUp {
		t.Fatalf("members = %+v", doc.Members)
	}

	// Text: the operator matrix.
	rr = httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet?format=text", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "NODE") || !strings.Contains(body, up.addr()) {
		t.Fatalf("text matrix missing member row:\n%s", body)
	}

	// The cluster TSDB handler answers with a series index containing the
	// fleet family.
	rr = httptest.NewRecorder()
	f.TSDBHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet/tsdb", nil))
	if !strings.Contains(rr.Body.String(), `"fleet.`) {
		t.Fatalf("cluster TSDB index has no fleet.* series:\n%s", rr.Body.String())
	}

	// A nil fleet serves 404s, not panics (the disabled steward path).
	var nilF *Fleet
	rr = httptest.NewRecorder()
	nilF.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("nil handler status %d, want 404", rr.Code)
	}
	rr = httptest.NewRecorder()
	nilF.TSDBHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet/tsdb", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("nil tsdb handler status %d, want 404", rr.Code)
	}
}
