package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestDeadlineTokenRoundTrip(t *testing.T) {
	SetPropagation(true)
	defer SetPropagation(false)

	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	tok := DeadlineToken(ctx)
	if !strings.HasPrefix(tok, "deadline=") {
		t.Fatalf("token %q lacks prefix", tok)
	}
	d, ok := ParseDeadlineToken(tok)
	if !ok {
		t.Fatalf("ParseDeadlineToken(%q) not ok", tok)
	}
	if d <= 0 || d > 1500*time.Millisecond {
		t.Fatalf("remaining budget %v out of range", d)
	}
}

func TestDeadlineTokenExpired(t *testing.T) {
	SetPropagation(true)
	defer SetPropagation(false)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	tok := DeadlineToken(ctx)
	if tok != "deadline=0" {
		t.Fatalf("expired deadline token = %q, want deadline=0", tok)
	}
	d, ok := ParseDeadlineToken(tok)
	if !ok || d != 0 {
		t.Fatalf("parse of %q = %v, %v", tok, d, ok)
	}
}

func TestDeadlineTokenNoDeadline(t *testing.T) {
	SetPropagation(true)
	defer SetPropagation(false)
	if tok := DeadlineToken(context.Background()); tok != "" {
		t.Fatalf("token without deadline = %q, want empty", tok)
	}
}

func TestParseDeadlineTokenRejectsMalformed(t *testing.T) {
	for _, f := range []string{"", "deadline=", "deadline=-5", "deadline=abc", "deadline=1.5", "trace=1/2", "1500"} {
		if _, ok := ParseDeadlineToken(f); ok {
			t.Errorf("ParseDeadlineToken(%q) accepted", f)
		}
	}
}

func TestStripDeadlineToken(t *testing.T) {
	fields := []string{"LOAD", "cap", "0", "10", "deadline=250"}
	rest, d, ok := StripDeadlineToken(fields)
	if !ok || d != 250*time.Millisecond {
		t.Fatalf("strip = %v, %v", d, ok)
	}
	if len(rest) != 4 || rest[3] != "10" {
		t.Fatalf("rest = %v", rest)
	}
	// Non-token trailing field is untouched.
	rest, _, ok = StripDeadlineToken([]string{"STATUS"})
	if ok || len(rest) != 1 {
		t.Fatalf("STATUS stripped: %v %v", rest, ok)
	}
}

// TestStripTokenOrder exercises the full wire order: servers strip trace
// (emitted last) first, then deadline.
func TestStripTokenOrder(t *testing.T) {
	fields := []string{"RENDER", "neghip", "3/4", "deadline=900", "trace=ab/cd"}
	rest, tc, traced := StripTraceToken(fields)
	if !traced || tc.TraceID != 0xab || tc.SpanID != 0xcd {
		t.Fatalf("trace strip = %+v, %v", tc, traced)
	}
	rest, d, ok := StripDeadlineToken(rest)
	if !ok || d != 900*time.Millisecond {
		t.Fatalf("deadline strip = %v, %v", d, ok)
	}
	if len(rest) != 3 || rest[0] != "RENDER" || rest[2] != "3/4" {
		t.Fatalf("rest = %v", rest)
	}
}

func TestLineTokens(t *testing.T) {
	SetPropagation(true)
	defer SetPropagation(false)

	if got := LineTokens(context.Background()); got != "" {
		t.Fatalf("no-deadline no-span tokens = %q", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	got := LineTokens(ctx)
	if !strings.HasPrefix(got, " deadline=") || strings.Contains(got, "trace=") {
		t.Fatalf("deadline-only tokens = %q", got)
	}
	tr := NewTracer(8)
	sctx, span := tr.StartSpan(ctx, "test")
	defer span.Finish()
	got = LineTokens(sctx)
	di := strings.Index(got, "deadline=")
	ti := strings.Index(got, "trace=")
	if di < 0 || ti < 0 || di > ti {
		t.Fatalf("combined tokens = %q, want deadline before trace", got)
	}
}

func TestDeadlineContext(t *testing.T) {
	ctx, cancel := DeadlineContext(context.Background(), 0, true)
	defer cancel()
	<-ctx.Done() // expires immediately
	if ctx.Err() == nil {
		t.Fatal("zero-budget context did not expire")
	}
	ctx2, cancel2 := DeadlineContext(context.Background(), 0, false)
	defer cancel2()
	if _, has := ctx2.Deadline(); has {
		t.Fatal("ok=false applied a deadline")
	}
}

// TestDeadlineTokenDisabledAllocs pins the zero-cost contract: with
// propagation off, instrumented clients pay no allocation per request.
func TestDeadlineTokenDisabledAllocs(t *testing.T) {
	SetPropagation(false)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if n := testing.AllocsPerRun(100, func() {
		if DeadlineToken(ctx) != "" {
			t.Fatal("token emitted while disabled")
		}
	}); n != 0 {
		t.Fatalf("DeadlineToken allocated %.1f times while disabled", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if LineTokens(ctx) != "" {
			t.Fatal("tokens emitted while disabled")
		}
	}); n != 0 {
		t.Fatalf("LineTokens allocated %.1f times while disabled", n)
	}
}
