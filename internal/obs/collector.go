package obs

// Collector: reassembling one end-to-end trace from many processes.
//
// Each process retains only its own completed spans (Tracer ring, served
// at /debug/traces). A span created under a remote parent knows the
// caller's trace and span IDs but the caller's spans live in the
// caller's ring — so the full tree for one request exists nowhere until
// someone joins the halves. The Collector is that someone: given a trace
// ID and a set of peer /metrics-style endpoints, it pulls each peer's
// /debug/traces?trace=<id>, merges the records with the local tracer's,
// and renders one indented tree, client-side and depot-side spans
// interleaved in parent order.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Collector pulls trace exports from peer observability endpoints.
type Collector struct {
	// Local, when non-nil, contributes the local tracer's spans under
	// source "local".
	Local *Tracer
	// Peers are base endpoint addresses ("host:port" or "http://host:port")
	// whose /debug/traces will be queried.
	Peers []string
	// Client is the HTTP client used for pulls.
	Client *http.Client
	// PeerTimeout bounds each peer fetch (default 5s). Peers are queried
	// in parallel, so the whole collect completes within roughly one
	// timeout even when several peers hang.
	PeerTimeout time.Duration
}

func (c *Collector) peerClient() *PeerClient {
	to := c.PeerTimeout
	if to <= 0 {
		to = 5 * time.Second
	}
	return &PeerClient{HTTP: c.Client, Timeout: to}
}

// peerURL normalizes a peer address into its /debug/traces URL.
func peerURL(peer string, traceID uint64) string {
	u := PeerBaseURL(peer) + "/debug/traces"
	if traceID != 0 {
		u += "?trace=" + url.QueryEscape(strconv.FormatUint(traceID, 16))
	}
	return u
}

// Collect gathers every span of traceID (0 = all retained spans) from
// the local tracer and all peers. Peers are fetched in parallel, each
// under its own bounded deadline, so one hung peer delays the merge by
// at most PeerTimeout instead of stalling every fetch behind it.
// Unreachable peers are skipped and reported in errs; the merge proceeds
// with what answered — a partial tree beats none when a depot died
// mid-request, which is exactly when you want the trace.
func (c *Collector) Collect(ctx context.Context, traceID uint64) (spans []SpanRecord, errs []error) {
	if c.Local != nil {
		for _, rec := range c.Local.Export(traceID) {
			rec.Source = "local"
			spans = append(spans, rec)
		}
	}
	pc := c.peerClient()
	type result struct {
		recs []SpanRecord
		err  error
	}
	results := make([]result, len(c.Peers))
	var wg sync.WaitGroup
	for i, peer := range c.Peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			recs, err := c.fetch(ctx, pc, peer, traceID)
			results[i] = result{recs, err}
		}(i, peer)
	}
	wg.Wait()
	// Results merge in peer order, so output is deterministic regardless
	// of which peer answered first.
	for i, peer := range c.Peers {
		if results[i].err != nil {
			errs = append(errs, fmt.Errorf("peer %s: %w", peer, results[i].err))
			continue
		}
		for _, rec := range results[i].recs {
			rec.Source = peer
			spans = append(spans, rec)
		}
	}
	return spans, errs
}

func (c *Collector) fetch(ctx context.Context, pc *PeerClient, peer string, traceID uint64) ([]SpanRecord, error) {
	var query url.Values
	if traceID != 0 {
		query = url.Values{"trace": {strconv.FormatUint(traceID, 16)}}
	}
	var recs []SpanRecord
	if err := pc.GetJSON(ctx, peer, "/debug/traces", query, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// TraceTree is one merged trace: every collected span of a single trace
// ID, indexed for tree traversal.
type TraceTree struct {
	TraceID uint64
	Spans   []SpanRecord
}

// BuildTrees groups collected spans by trace ID, dropping duplicates
// (the same span can arrive from two pulls), and returns the trees
// sorted by earliest span start.
func BuildTrees(spans []SpanRecord) []*TraceTree {
	byTrace := make(map[uint64]*TraceTree)
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if s.TraceID == 0 || seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		tt := byTrace[s.TraceID]
		if tt == nil {
			tt = &TraceTree{TraceID: s.TraceID}
			byTrace[s.TraceID] = tt
		}
		tt.Spans = append(tt.Spans, s)
	}
	trees := make([]*TraceTree, 0, len(byTrace))
	for _, tt := range byTrace {
		sort.Slice(tt.Spans, func(i, j int) bool { return tt.Spans[i].Start.Before(tt.Spans[j].Start) })
		trees = append(trees, tt)
	}
	sort.Slice(trees, func(i, j int) bool {
		return trees[i].Spans[0].Start.Before(trees[j].Spans[0].Start)
	})
	return trees
}

// Duration is the wall-clock extent of the tree (first start to last end).
func (tt *TraceTree) Duration() time.Duration {
	if len(tt.Spans) == 0 {
		return 0
	}
	first := tt.Spans[0].Start
	var last time.Time
	for _, s := range tt.Spans {
		if end := s.Start.Add(time.Duration(s.DurMs * float64(time.Millisecond))); end.After(last) {
			last = end
		}
	}
	return last.Sub(first)
}

// Render writes the trace as an indented ASCII tree, children under
// parents in start order. Spans whose parent was not collected (e.g. an
// unreachable peer) surface as extra roots rather than vanishing.
func (tt *TraceTree) Render(w io.Writer) {
	byID := make(map[uint64]SpanRecord, len(tt.Spans))
	children := make(map[uint64][]SpanRecord)
	for _, s := range tt.Spans {
		byID[s.ID] = s
	}
	var roots []SpanRecord
	for _, s := range tt.Spans {
		if s.ParentID != 0 {
			if _, ok := byID[s.ParentID]; ok {
				children[s.ParentID] = append(children[s.ParentID], s)
				continue
			}
		}
		roots = append(roots, s)
	}
	fmt.Fprintf(w, "trace %x  (%d spans, %.1fms)\n",
		tt.TraceID, len(tt.Spans), float64(tt.Duration())/float64(time.Millisecond))
	var walk func(s SpanRecord, depth int)
	walk = func(s SpanRecord, depth int) {
		indent := strings.Repeat("  ", depth)
		src := ""
		if s.Source != "" && s.Source != "local" {
			src = " @" + s.Source
		}
		attrs := renderAttrs(s.Attrs)
		fmt.Fprintf(w, "%s%s  %.1fms%s%s\n", indent, s.Name, s.DurMs, src, attrs)
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}
}

func renderAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("  {")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(attrs[k])
	}
	b.WriteString("}")
	return b.String()
}
