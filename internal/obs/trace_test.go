package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanParentChildOrdering(t *testing.T) {
	tr := NewTracer(16)
	ctx := context.Background()

	ctx, root := tr.StartSpan(ctx, "root")
	cctx, child := tr.StartSpan(ctx, "child")
	_, grand := tr.StartSpan(cctx, "grandchild")

	if root.ParentID != 0 {
		t.Fatalf("root parent = %d, want 0", root.ParentID)
	}
	if child.ParentID != root.ID || grand.ParentID != child.ID {
		t.Fatalf("parent links wrong: root=%d child=%d->%d grand=%d->%d",
			root.ID, child.ID, child.ParentID, grand.ID, grand.ParentID)
	}
	if child.TraceID != root.TraceID || grand.TraceID != root.TraceID {
		t.Fatal("children must inherit the root trace ID")
	}

	grand.SetAttr("k", "v")
	grand.Finish()
	child.Finish()
	root.Finish()
	root.Finish() // idempotent

	done := tr.Completed()
	if len(done) != 3 {
		t.Fatalf("completed = %d spans, want 3", len(done))
	}
	// Completion order: innermost first.
	if done[0].Name != "grandchild" || done[1].Name != "child" || done[2].Name != "root" {
		t.Fatalf("order = %s,%s,%s", done[0].Name, done[1].Name, done[2].Name)
	}
	if done[0].Attrs["k"] != "v" {
		t.Fatal("attr lost")
	}
	for _, s := range done {
		if s.End.Before(s.Start) {
			t.Fatalf("span %s ends before it starts", s.Name)
		}
	}
	if !(done[2].End.After(done[0].End) || done[2].End.Equal(done[0].End)) {
		t.Fatal("root must finish at or after grandchild")
	}
}

func TestSpanFromContext(t *testing.T) {
	tr := NewTracer(4)
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context must carry no span")
	}
	ctx, s := tr.StartSpan(context.Background(), "op")
	if SpanFromContext(ctx) != s {
		t.Fatal("context must carry the started span")
	}
	s.Finish()
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		_, s := tr.StartSpan(context.Background(), "s")
		s.Finish()
	}
	done := tr.Completed()
	if len(done) != 3 {
		t.Fatalf("ring holds %d, want 3", len(done))
	}
	// Oldest first, and the two oldest spans were evicted. IDs are
	// sequential above the tracer's random base, so compare relatively:
	// the survivors are the 3rd..5th spans issued.
	if done[0].ID != tr.base+3 || done[2].ID != tr.base+5 {
		t.Fatalf("ring ids = %d..%d, want base+3..base+5 (base %d)", done[0].ID, done[2].ID, tr.base)
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer must issue nil spans")
	}
	s.SetAttr("a", "b")
	s.Finish()
	if s.Duration() != 0 {
		t.Fatal("nil span duration must be 0")
	}
	if ctx == nil {
		t.Fatal("context must survive")
	}
	if tr.Completed() != nil {
		t.Fatal("nil tracer has no spans")
	}
}

func TestSpanDuration(t *testing.T) {
	tr := NewTracer(4)
	_, s := tr.StartSpan(context.Background(), "d")
	time.Sleep(2 * time.Millisecond)
	s.Finish()
	if d := s.Duration(); d < 2*time.Millisecond {
		t.Fatalf("duration %v too short", d)
	}
}
