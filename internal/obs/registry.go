package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics. Accessors are get-or-create: the first
// caller of a name decides its type, later callers of the same name and
// type share the instance, and a type clash panics (it is a programming
// error, caught by the first scrape in any test). All methods are safe
// for concurrent use; a nil registry is inert, so instrumented code can
// record unconditionally.
type Registry struct {
	// MaxLabelInstances caps how many labeled instances one metric family
	// may register (0 means DefaultMaxLabelInstances). Beyond the cap,
	// new label sets fold into a per-family "other" instance and the
	// obs.label_overflow counter increments — a misbehaving depot list
	// cannot grow /metrics (and every TSDB series built on it) without
	// bound. Set before first use; it is read under the registry lock.
	MaxLabelInstances int

	mu        sync.Mutex
	metrics   map[string]any
	snapshots map[string]func() map[string]float64
	families  map[string]int // labeled instances registered per family
}

// DefaultMaxLabelInstances is the per-family labeled-instance cap when
// Registry.MaxLabelInstances is unset: comfortably above any sane
// deployment's depot count, far below what would bloat a scrape.
const DefaultMaxLabelInstances = 64

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:   make(map[string]any),
		snapshots: make(map[string]func() map[string]float64),
		families:  make(map[string]int),
	}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry that instrumented packages
// record into when no registry is injected. Daemons serve it via
// -metrics-addr.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

func lookup[T any](r *Registry, name string, mk func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as %T, was %T", name, *new(T), m))
		}
		return t
	}
	// Cardinality guard: a new labeled instance past the family cap folds
	// into the "other" instance instead of registering. The original name
	// never enters the map, so overflowing lookups keep landing here —
	// the overflow counter tallies every folded recording, not just the
	// first.
	if base := BaseName(name); base != name {
		maxInst := r.MaxLabelInstances
		if maxInst <= 0 {
			maxInst = DefaultMaxLabelInstances
		}
		if r.families == nil {
			r.families = make(map[string]int)
		}
		if r.families[base] >= maxInst {
			r.overflowLocked()
			name = foldLabels(name)
			if m, ok := r.metrics[name]; ok {
				t, ok := m.(T)
				if !ok {
					panic(fmt.Sprintf("obs: metric %q re-registered as %T, was %T", name, *new(T), m))
				}
				return t
			}
		} else {
			r.families[base]++
		}
	}
	t := mk()
	r.metrics[name] = t
	return t
}

// overflowLocked bumps the obs.label_overflow counter without re-entering
// lookup (the caller holds r.mu).
func (r *Registry) overflowLocked() {
	c, ok := r.metrics[MObsLabelOverflow].(*Counter)
	if !ok {
		c = NewCounter()
		r.metrics[MObsLabelOverflow] = c
	}
	c.Inc()
}

// foldLabels rewrites every label value of a labeled metric name to
// "other", preserving the keys: "ibp.depot.ms{depot=h1:99}" becomes
// "ibp.depot.ms{depot=other}". Overflowing instances of one family all
// collapse onto the same bounded set of names.
func foldLabels(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name
	}
	var kv []string
	for _, pair := range strings.Split(name[i+1:len(name)-1], ",") {
		k, _, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		kv = append(kv, k, "other")
	}
	return Label(name[:i], kv...)
}

// Counter returns the counter registered under name, creating it if
// needed. Nil registries return a nil (inert) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return lookup(r, name, NewCounter)
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return lookup(r, name, NewGauge)
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds if needed (empty bounds = LatencyBucketsMs).
// Bounds are fixed at creation; later callers' bounds are ignored.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Histogram { return NewHistogram(bounds...) })
}

// RegisterSnapshot bridges an existing stats struct into the registry:
// fn is polled at scrape time and its entries appear as prefix.key. It
// replaces any previous snapshot under the same prefix, so a restarted
// component can re-register. The closure must be safe to call from any
// goroutine.
func (r *Registry) RegisterSnapshot(prefix string, fn func() map[string]float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snapshots[prefix] = fn
}

// Names returns the registered metric names, sorted (snapshot prefixes
// excluded).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot renders every metric to a JSON-ready flat map: counters and
// gauges as numbers, histograms as HistogramSnapshot objects, snapshot
// closures inlined under their prefix.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	metrics := make(map[string]any, len(r.metrics))
	for name, m := range r.metrics {
		metrics[name] = m
	}
	snaps := make(map[string]func() map[string]float64, len(r.snapshots))
	for prefix, fn := range r.snapshots {
		snaps[prefix] = fn
	}
	r.mu.Unlock()

	for name, m := range metrics {
		switch v := m.(type) {
		case *Counter:
			out[name] = v.Value()
		case *Gauge:
			out[name] = v.Value()
		case *Histogram:
			out[name] = v.Snapshot()
		}
	}
	// Snapshot closures run outside the registry lock: they take component
	// locks (agent.Stats, depot.Stat) that must not nest under ours.
	for prefix, fn := range snaps {
		for k, v := range fn() {
			out[prefix+"."+k] = v
		}
	}
	return out
}

// WriteJSON writes the snapshot as pretty-printed JSON, sorted by key —
// the flat name->value object of expvar's /debug/vars.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry snapshot as JSON.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
